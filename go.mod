module clustersoc

go 1.22
