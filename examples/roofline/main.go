// Extended-roofline analysis (the paper's Sec. III-B.3 contribution):
// place every GPGPU workload on the model under both networks and show
// how the network roof binds hpl and tealeaf3d on 1 GbE and lifts away on
// 10 GbE — the Fig. 4 / Table II result.
//
//	go run ./examples/roofline
package main

import (
	"fmt"
	"log"
	"math"

	"clustersoc/internal/core"
)

func main() {
	const scale = 0.08
	workloads := []string{"hpl", "jacobi", "cloverleaf", "tealeaf2d", "tealeaf3d", "alexnet", "googlenet"}

	for _, netName := range []struct {
		choice core.NetworkChoice
		label  string
	}{{core.GigE, "1 GbE"}, {core.TenGigE, "10 GbE"}} {
		cfg := core.TX1(8, netName.choice)
		m := core.RooflineModel(cfg, false)
		fmt.Printf("== %s: peak %.1f GFLOPS, ridge OI %.2f, ridge NI %.1f\n",
			netName.label, m.PeakFlops/1e9, m.RidgeOI(), m.RidgeNI())
		fmt.Printf("%-12s %8s %9s %12s %7s  %s\n", "workload", "OI", "NI", "GFLOPS/node", "%peak", "limit")
		for _, w := range workloads {
			single := w == "alexnet" || w == "googlenet"
			res, err := core.Run(cfg, w, scale)
			if err != nil {
				log.Fatal(err)
			}
			a := core.RooflineOf(cfg, res, single)
			ni := "inf"
			if !math.IsInf(a.NI, 1) {
				ni = fmt.Sprintf("%9.1f", a.NI)
			}
			fmt.Printf("%-12s %8.2f %9s %12.2f %6.1f%%  %s\n",
				w, a.OI, ni, a.Throughput/1e9, a.PercentOfPeak, a.Limit)
		}
		fmt.Println()
	}
	fmt.Println("Equations (1)-(3): attainable = min(peak, memBW x OI, netBW x NI).")
	fmt.Println("The intensities are workload properties — upgrading the NIC moves the")
	fmt.Println("roof, not the points.")
}
