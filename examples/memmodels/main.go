// CUDA memory-management models on an integrated-GPU SoC (Sec. III-B.5 /
// Table III): run the jacobi solver under host-and-device copies,
// zero-copy, and unified memory, and show the TX1's zero-copy cache
// bypass destroying performance while unified memory matches explicit
// copies.
//
//	go run ./examples/memmodels
package main

import (
	"fmt"
	"log"

	"clustersoc/internal/core"
	"clustersoc/internal/cuda"
	"clustersoc/internal/units"
)

func main() {
	const scale = 0.08
	spec := core.TX1(8, core.TenGigE)

	fmt.Println("jacobi on the 8-node TX1 cluster under the three CUDA memory models")
	fmt.Printf("%-16s %10s %10s %14s %14s\n", "model", "runtime", "L2 util", "L2 read rate", "mem stalls")

	var base float64
	for _, model := range []cuda.MemModel{cuda.HostDevice, cuda.ZeroCopy, cuda.Unified} {
		res, err := core.RunWithMemModel(spec, "jacobi", scale, model)
		if err != nil {
			log.Fatal(err)
		}
		if model == cuda.HostDevice {
			base = res.Runtime
		}
		fmt.Printf("%-16s %10s %9.0f%% %14s %13.0f%%\n",
			model.String(),
			units.Seconds(res.Runtime),
			100*res.GPU.L2Utilization(),
			units.Rate(res.GPU.L2ReadThroughput()),
			100*res.GPU.MemoryStallFraction())
		if model == cuda.ZeroCopy {
			fmt.Printf("%16s zero-copy runs %.1fx slower: the TX1 bypasses the GPU cache\n",
				"", res.Runtime/base)
			fmt.Printf("%16s hierarchy on zero-copy mappings to stay coherent\n", "")
		}
	}

	fmt.Println("\nUnified memory keeps the cache hierarchy (and the programmer's sanity):")
	fmt.Println("it migrates pages transparently at essentially host-and-device cost.")
}
