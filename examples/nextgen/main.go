// Next-generation what-if: the companion thesis (Fox, 2017) moves the
// proposed cluster from Jetson TX1 to Jetson TX2 boards — faster Pascal
// SMs, double the memory bandwidth, the same board-power class. This
// example re-runs representative workloads on the TX2 configuration, and
// answers the scheduling question the paper defers (Sec. III-B.6) with
// the hetsched package: a dynamic task queue finds the optimal CPU:GPU
// split that the Fig. 7 sweep searched for by hand.
//
//	go run ./examples/nextgen
package main

import (
	"fmt"
	"log"

	"clustersoc/internal/core"
	"clustersoc/internal/hetsched"
	"clustersoc/internal/soc"
	"clustersoc/internal/units"
)

func main() {
	const scale = 0.15

	fmt.Println("== TX1 -> TX2: the proposed organization, one generation later")
	fmt.Printf("%-11s %12s %12s %9s\n", "workload", "8x TX1", "8x TX2", "speedup")
	for _, w := range []string{"hpl", "jacobi", "tealeaf3d", "googlenet"} {
		tx1, err := core.Run(core.TX1(8, core.TenGigE), w, scale)
		if err != nil {
			log.Fatal(err)
		}
		tx2, err := core.Run(core.TX2(8, core.TenGigE), w, scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %12s %12s %8.2fx\n", w,
			units.Seconds(tx1.Runtime), units.Seconds(tx2.Runtime), tx1.Runtime/tx2.Runtime)
	}

	fmt.Println("\n== Heterogeneous scheduling: static sweep vs dynamic task queue")
	node := soc.JetsonTX1()
	engines := []hetsched.Engine{
		{Name: "gpu", Flops: node.GPU.PeakFP64() * node.GPU.Efficiency},
		{Name: "cpu-core", Flops: 1.5e9},
	}
	total := 1e12 // one node's share of an hpl-sized update
	fmt.Printf("%-22s %10s\n", "schedule", "makespan")
	for _, ratio := range []float64{1.0, 0.9, 0.7, 0.5} {
		res, err := hetsched.Static(engines, total, []float64{ratio, 1 - ratio})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("static GPU ratio %.1f    %10s\n", ratio, units.Seconds(res.Makespan))
	}
	opt, _ := hetsched.Static(engines, total, hetsched.OptimalFraction(engines))
	fmt.Printf("static optimal         %10s  (GPU fraction %.3f)\n",
		units.Seconds(opt.Makespan), hetsched.OptimalFraction(engines)[0])
	dyn := hetsched.Dynamic(engines, hetsched.SplitTasks(total, 512))
	fmt.Printf("dynamic task queue     %10s  (no speeds known in advance)\n",
		units.Seconds(dyn.Makespan))
	fmt.Println("\nThe greedy queue lands on the optimal split automatically — the")
	fmt.Println("scheduling answer behind Fig. 7's observation that collocated CPU+GPU")
	fmt.Println("execution improves energy efficiency.")
}
