// Quickstart: build the paper's proposed cluster — eight Jetson TX1
// boards on 10 GbE — run High Performance Linpack on it, and print the
// numbers the paper's Table IV reports: throughput and energy efficiency.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"clustersoc/internal/core"
	"clustersoc/internal/units"
)

func main() {
	// The proposed organization: mobile-class ARM SoCs with integrated
	// GPGPUs, upgraded from the stock 1 GbE to 10 GbE NICs.
	spec := core.TX1(8, core.TenGigE)

	// Run hpl at a quarter of the paper's problem size (the shapes are
	// scale-invariant; 1.0 reproduces N = 20480).
	res, err := core.Run(spec, "hpl", 0.25)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("High Performance Linpack on", spec.Name)
	fmt.Printf("  runtime:            %s\n", units.Seconds(res.Runtime))
	fmt.Printf("  throughput:         %s\n", units.Flops(res.Throughput))
	fmt.Printf("  average power:      %.1f W\n", res.AvgPowerWatts)
	fmt.Printf("  energy efficiency:  %.1f MFLOPS/W\n", res.MFLOPSPerWatt())
	fmt.Printf("  network traffic:    %s\n", units.Bytes(res.NetBytes))

	// The same run on the stock 1 GbE shows why the paper upgrades the
	// network.
	slow, err := core.Run(core.TX1(8, core.GigE), "hpl", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith the stock 1 GbE the same run takes %s — the 10 GbE NICs buy a %.2fx speedup\n",
		units.Seconds(slow.Runtime), slow.Runtime/res.Runtime)
}
