// ImageNet classification on the cluster (the paper's Sec. IV-B AI
// scenario): JPEGs stream from the NFS server, get decoded on the CPU,
// and the integrated GPU runs the GoogleNet forward pass — a pipeline
// whose feed rate depends on the cluster's CPU:GPU balance. The example
// compares the 8-node TX1 scale-out with the 2x GTX 980 scale-up system
// and shows the Fig. 10 effect.
//
//	go run ./examples/imagenet
package main

import (
	"fmt"
	"log"

	"clustersoc/internal/core"
	"clustersoc/internal/nn"
	"clustersoc/internal/units"
)

func main() {
	// The model itself is real: the library builds GoogleNet
	// layer-for-layer and accounts its arithmetic exactly.
	net := nn.GoogleNet()
	fmt.Printf("model: %s — %.1f M parameters, %.2f GFLOP/image\n\n",
		net.Name, float64(net.TotalParams())/1e6, net.TotalFLOPs()/units.GFLOP)

	const scale = 0.5 // 4096 images

	for _, workload := range []string{"alexnet", "googlenet"} {
		scaleOut, err := core.Run(core.TX1(8, core.TenGigE), workload, scale)
		if err != nil {
			log.Fatal(err)
		}
		scaleUp, err := core.Run(core.GTX980(2), workload, scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", workload)
		fmt.Printf("  8x TX1 (scale-out):   %8s  %7.1f W  %6.0f MFLOPS/W\n",
			units.Seconds(scaleOut.Runtime), scaleOut.AvgPowerWatts, scaleOut.MFLOPSPerWatt())
		fmt.Printf("  2x GTX 980 (scale-up):%8s  %7.1f W  %6.0f MFLOPS/W\n",
			units.Seconds(scaleUp.Runtime), scaleUp.AvgPowerWatts, scaleUp.MFLOPSPerWatt())
		fmt.Printf("  speedup vs scale-up:        %.2fx\n", scaleUp.Runtime/scaleOut.Runtime)
		fmt.Printf("  unhalted CPU cycles/s ratio: %.2fx (the CPU:GPU balance of Fig. 10)\n\n",
			scaleOut.UnhaltedCPUCyclesPerSec/scaleUp.UnhaltedCPUCyclesPerSec)
	}

	fmt.Println("The scale-out cluster feeds its GPUs from eight decode cores where the")
	fmt.Println("discrete system has two — which is why the AI pipelines are the workloads")
	fmt.Println("that benefit most from the proposed organization.")
}
