// Extensions beyond the paper's measurements: two what-ifs its discussion
// motivates but its hardware could not run.
//
//  1. FP16 inference — the TX1's Tegra Maxwell runs half precision at 2x
//     the FP32 rate, while the desktop GM204 (GTX 980) has no fast FP16
//     path (1/64). The paper ran Caffe in FP32 everywhere; this example
//     shows what turning FP16 on does to the Fig. 9/10 comparison.
//
//  2. GPUDirect — Sec. III-B.2 notes the TX1 lacks it, so every halo
//     exchange pays device->host->NIC staging. This example replays the
//     most transfer-bound workload with a hypothetical GPUDirect NIC.
//
//     go run ./examples/extensions
package main

import (
	"fmt"
	"log"

	"clustersoc/internal/core"
	"clustersoc/internal/units"
	"clustersoc/internal/workloads"
)

func main() {
	const scale = 0.25

	fmt.Println("== Extension 1: FP16 inference (googlenet, 8-node TX1 vs 2x GTX 980)")
	for _, half := range []bool{false, true} {
		prec := "FP32"
		if half {
			prec = "FP16"
		}
		tx, err := core.RunWithConfig(core.TX1(8, core.TenGigE), "googlenet",
			workloads.Config{Scale: scale, HalfPrecision: half})
		if err != nil {
			log.Fatal(err)
		}
		gtx, err := core.RunWithConfig(core.GTX980(2), "googlenet",
			workloads.Config{Scale: scale, HalfPrecision: half})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s:  TX1 %9s   GTX %9s   TX1 speedup vs GTX: %.2fx\n",
			prec, units.Seconds(tx.Runtime), units.Seconds(gtx.Runtime), gtx.Runtime/tx.Runtime)
	}
	fmt.Println("  FP16 widens the SoC's lead: the Tegra doubles while the GM204 has no")
	fmt.Println("  fast half-precision path — the asymmetry that made mobile parts the")
	fmt.Println("  inference platform of the following years.")

	fmt.Println("\n== Extension 2: GPUDirect what-if (tealeaf3d, 8-node TX1, 10 GbE)")
	base, err := core.Run(core.TX1(8, core.TenGigE), "tealeaf3d", scale)
	if err != nil {
		log.Fatal(err)
	}
	direct := core.TX1(8, core.TenGigE)
	direct.GPUDirect = true
	gd, err := core.Run(direct, "tealeaf3d", scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  staged through the host: %s\n", units.Seconds(base.Runtime))
	fmt.Printf("  hypothetical GPUDirect:  %s  (%.1f%% faster)\n",
		units.Seconds(gd.Runtime), 100*(base.Runtime/gd.Runtime-1))
	fmt.Println("  The staging copies are small next to tealeaf3d's wire time, which is")
	fmt.Println("  why the paper's network upgrade mattered more than GPUDirect would have.")
}
