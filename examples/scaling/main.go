// Strong-scaling study (Sec. III-B.4 / Figs. 5-6): trace a workload
// across cluster sizes, fit and extrapolate its speedup curve, and
// decompose the parallel efficiency into eta = LB * Ser * Trf with
// DIMEMAS-style ideal-network and ideal-load-balance replays.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"clustersoc/internal/core"
)

func main() {
	const scale = 0.05
	sizes := []int{1, 2, 4, 6, 8}

	fmt.Println("strong scaling on the 10 GbE TX1 cluster")
	fmt.Printf("%-11s %8s %8s %8s | %6s %6s %6s | %9s %9s\n",
		"workload", "S(4)", "S(8)", "S(64)*", "LB", "Ser", "Trf", "idealNet", "idealLB")

	for _, w := range []string{"hpl", "jacobi", "cloverleaf", "tealeaf2d", "tealeaf3d", "ft", "cg", "mg"} {
		res, err := core.Scalability(core.TX1(8, core.TenGigE), w, sizes, scale)
		if err != nil {
			log.Fatal(err)
		}
		e := res.Efficiency
		fmt.Printf("%-11s %8.2f %8.2f %8.2f | %6.2f %6.2f %6.2f | %8.2fx %8.2fx\n",
			w, res.Speedups[2], res.Speedups[4], res.Fit.Speedup(64),
			e.LB, e.Ser, e.Trf,
			res.IdealNetworkGain, res.IdealLoadBalanceGain)
	}

	fmt.Println("\n* fitted T(P) = a + b/P + c ln P extrapolation (Fig. 5/6 dashed curves)")
	fmt.Println("Reading the decomposition: Trf < 1 blames the interconnect (ft, tealeaf3d),")
	fmt.Println("LB < 1 blames uneven work (cg), Ser < 1 blames dependency chains (hpl's")
	fmt.Println("panel factorization, lu's wavefront).")
}
