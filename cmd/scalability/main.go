// Command scalability runs the Sec. III-B.4 strong-scaling methodology
// for one workload: trace runs across cluster sizes, fit and extrapolate
// the speedup curve, and decompose the parallel efficiency into
// eta = LB * Ser * Trf with ideal-network / ideal-load-balance replays.
//
//	scalability -workload tealeaf3d
//	scalability -workload ft -net 1g -extrapolate 128
//	scalability -workload cg -critpath -trace-out cg.trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"clustersoc/internal/cluster"
	"clustersoc/internal/core"
	"clustersoc/internal/critpath"
	"clustersoc/internal/obs"
	"clustersoc/internal/runner"
)

func main() {
	var (
		workload    = flag.String("workload", "hpl", "workload to study")
		netArg      = flag.String("net", "10g", "network: 1g or 10g")
		scale       = flag.Float64("scale", 0.08, "problem scale")
		extrapolate = flag.Int("extrapolate", 64, "extrapolate the fitted curve to this many nodes")
		parallel    = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = sequential)")
		check       = flag.Bool("check", false, "audit every simulated scenario with simcheck; violations fail the run")
		profile     = flag.Bool("profile", false, "collect per-scenario observability profiles and write a scalability.profile.json sidecar")
		critPath    = flag.Bool("critpath", false, "record causal event graphs, print the largest run's blame table, and write a scalability.critpath.json sidecar (inspect with cmd/whatif)")
		traceOut    = flag.String("trace-out", "", "write a Chrome/Perfetto trace of the largest traced run to this file")
		storeDir    = flag.String("store", os.Getenv("CLUSTERSOC_STORE"), "persistent content-addressed result store directory (default $CLUSTERSOC_STORE): warm entries decode instead of re-simulating")
		pdes        = flag.Bool("pdes", false, "run eligible scenarios under conservative PDES (partitioned by node); results stay bit-identical to sequential runs")
		pdesW       = flag.Int("pdes-workers", 4, "PDES worker pool size (with -pdes)")
	)
	flag.Parse()

	if *pdes {
		cluster.SetPDES(*pdesW)
	}

	net := core.TenGigE
	if *netArg == "1g" {
		net = core.GigE
	}
	sizes := []int{1, 2, 4, 6, 8}
	session := core.NewSession(*parallel)
	session.SetChecking(*check)
	session.SetProfiling(*profile)
	session.SetCritPath(*critPath)
	if *storeDir != "" {
		st, err := runner.OpenStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		session.SetStore(st)
	}
	cfg := core.TX1(8, net)
	res, err := session.Scalability(cfg, *workload, sizes, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := session.Stats()
	fmt.Fprintf(os.Stderr, "run-plane: %d scenarios submitted, %d simulated, %d duplicates served from cache (%d workers, peak %d in flight, %.1fs simulation wall)\n",
		st.Submitted, st.Simulated, st.Hits, session.Runner().Workers(), st.MaxInFlight, st.WallSeconds)
	if ps := session.Runner().Store(); ps != nil {
		fmt.Fprintf(os.Stderr, "store: %d hits, %d misses, %d writes, %d corrupt (%s, schema %d)\n",
			st.StoreHits, st.StoreMisses, st.StoreWrites, st.StoreCorrupt, ps.Dir(), ps.Schema())
	}
	if *check {
		fmt.Fprintf(os.Stderr, "simcheck: %d scenario(s) audited — no invariant violations\n", st.Audited)
	}

	fmt.Printf("strong scaling of %s on the TX1 cluster (%s)\n\n", *workload, *netArg)
	fmt.Println("  nodes   runtime(s)   speedup")
	for i, n := range res.Nodes {
		fmt.Printf("  %5d   %10.3f   %7.2f\n", n, res.Runtimes[i], res.Speedups[i])
	}
	fmt.Printf("\nfit: T(P) = %.3g + %.3g/P + %.3g ln P   (r2 = %.3f)\n",
		res.Fit.A, res.Fit.B, res.Fit.C, res.Fit.R2)
	fmt.Println("\n  extrapolated speedups:")
	for _, p := range []int{8, 16, 32, *extrapolate} {
		fmt.Printf("  %5d nodes: %6.2f\n", p, res.Fit.Speedup(p))
	}
	e := res.Efficiency
	fmt.Printf("\nefficiency decomposition at 8 nodes (eta = LB x Ser x Trf):\n")
	fmt.Printf("  LB  (load balance)   %.3f\n", e.LB)
	fmt.Printf("  Ser (serialization)  %.3f\n", e.Ser)
	fmt.Printf("  Trf (data transfer)  %.3f\n", e.Trf)
	fmt.Printf("  eta                  %.3f\n", e.Eta)
	fmt.Printf("\nwhat-if replays at 8 nodes:\n")
	fmt.Printf("  ideal network would speed the run up %.2fx\n", res.IdealNetworkGain)
	fmt.Printf("  ideal load balance would speed it up %.2fx\n", res.IdealLoadBalanceGain)

	// The largest traced run is already cached by Scalability, so the
	// exports below join the cache instead of re-simulating.
	largest := sizes[len(sizes)-1]
	if *traceOut != "" || *critPath {
		point, err := session.ScalabilityPoint(cfg, *workload, largest, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *critPath && point.CritPath != nil {
			fmt.Printf("\ncritical-path blame at %d nodes:\n%s\n%s", largest,
				point.CritPath.BlameTable(), point.CritPath.WhatIfTable())
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			var path []obs.PathSlice
			if point.CritPath != nil {
				path = point.CritPath.PathSlices()
			}
			if err := obs.WriteChromeTraceWithPath(f, point.Trace, obs.TraceSnapshot(point.Trace), path); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("\nwrote Chrome trace of the %d-node run to %s (open in chrome://tracing or ui.perfetto.dev)\n", largest, *traceOut)
		}
	}
	if *profile {
		writeSidecar("scalability.profile.json", func(f *os.File) error {
			return obs.WriteProfiles(f, session.Profiles())
		}, len(session.Profiles()), "profiles")
	}
	if *critPath {
		writeSidecar("scalability.critpath.json", func(f *os.File) error {
			return critpath.WriteReports(f, session.CritPathReports())
		}, len(session.CritPathReports()), "critical-path reports")
	}
}

// writeSidecar creates path and fills it with write, reporting the count.
func writeSidecar(path string, write func(*os.File) error, n int, what string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d %s to %s\n", n, what, path)
}
