// Command netbench runs the two network micro-benchmarks the paper uses
// to characterize its NICs — an iperf-style streaming throughput test and
// the ping-pong latency test from the HPCC Latency-Bandwidth suite — on
// the simulated cluster, and a STREAM run on the host to show the real
// kernel behind the soc configs' memory-bandwidth calibration.
//
//	netbench            # both NICs
//	netbench -stream    # also run host STREAM (real arrays, real time)
package main

import (
	"flag"
	"fmt"

	"clustersoc/internal/kernels"
	"clustersoc/internal/mpi"
	"clustersoc/internal/network"
	"clustersoc/internal/sim"
	"clustersoc/internal/units"
)

// iperf measures one long stream between two nodes.
func iperf(prof network.Profile) float64 {
	e := sim.NewEngine()
	nw := network.New(e, 2, prof)
	total := 1.0 * units.GB
	_, arrival := nw.Deliver(0, 1, total)
	e.Run()
	return total / arrival
}

// pingpong measures the small-message round trip through the MPI layer.
func pingpong(prof network.Profile, rounds int) float64 {
	e := sim.NewEngine()
	nw := network.New(e, 2, prof)
	c := mpi.NewComm(e, nw, []int{0, 1})
	for r := 0; r < 2; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Process) {
			for i := 0; i < rounds; i++ {
				if r == 0 {
					c.Send(p, 0, 1, i, 8)
					c.Recv(p, 0, 1, i)
				} else {
					c.Recv(p, 1, 0, i)
					c.Send(p, 1, 0, i, 8)
				}
			}
		})
	}
	total := e.Run()
	return total / float64(rounds)
}

func main() {
	stream := flag.Bool("stream", false, "also run the real STREAM kernels on this host")
	rounds := flag.Int("rounds", 1000, "ping-pong rounds")
	flag.Parse()

	fmt.Println("simulated NIC characterization (the paper's iperf + ping-pong numbers):")
	for _, prof := range []network.Profile{network.GigE, network.TenGigE} {
		bw := iperf(prof)
		rtt := pingpong(prof, *rounds)
		fmt.Printf("  %-6s  throughput %6.2f Gb/s   ping-pong RTT %6.1f us\n",
			prof.Name, bw*8/1e9, rtt/units.Microsecond)
	}
	fmt.Println("\n  (paper: 0.94 -> 3.3 Gb/s and 200 -> 50 us moving 1 GbE -> 10 GbE)")

	if *stream {
		fmt.Println("\nhost STREAM (real kernels; calibrates the soc MemBandwidth fields):")
		for _, r := range kernels.RunStream(1<<24, 3) {
			fmt.Printf("  %-6s %10s\n", r.Name, units.Rate(r.BytesPer))
		}
	}
}
