// Command simd serves the run-plane over HTTP: simulation as a service.
//
// Clients POST batches of scenario requests to /simulate and read results
// back as an NDJSON stream, one line per scenario in completion order.
// Every request resolves to the run-plane's canonical fingerprint and is
// served through the cache tiers — in-memory map, persistent store, then
// simulation — with duplicate in-flight requests coalesced across
// clients, a bounded admission queue (429 + Retry-After under pressure),
// and per-client token-bucket rate limits. /statusz reports the serving,
// run-plane, and store counters; SIGINT/SIGTERM drains gracefully.
//
//	simd -store /var/cache/clustersoc          # durable, shared answers
//	simd -addr :9000 -rate 50 -burst 100       # rate-limited public face
//	curl -d '{"requests":[{"workload":"cg"}]}' localhost:8080/simulate
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clustersoc/internal/runner"
	"clustersoc/internal/simd"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		storeDir   = flag.String("store", os.Getenv("CLUSTERSOC_STORE"), "persistent content-addressed result store directory (default $CLUSTERSOC_STORE); strongly recommended: it makes every answer durable and shared across replicas")
		parallel   = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		maxPending = flag.Int("max-pending", 256, "admission bound: max admitted-but-unfinished scenarios before batches get 429")
		maxBatch   = flag.Int("max-batch", 0, "max scenarios per POST (0 = max-pending)")
		rate       = flag.Float64("rate", 0, "per-client rate limit in scenario requests/s (0 = unlimited)")
		burst      = flag.Int("burst", 0, "per-client burst size (0 = max(1, rate))")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight streams on shutdown")
	)
	flag.Parse()

	r := runner.New(*parallel)
	if *storeDir != "" {
		st, err := runner.OpenStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simd:", err)
			os.Exit(1)
		}
		r.SetStore(st)
	}
	s, err := simd.NewServer(simd.Config{
		Runner:     r,
		MaxPending: *maxPending,
		MaxBatch:   *maxBatch,
		RatePerSec: *rate,
		Burst:      *burst,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	fmt.Fprintf(os.Stderr, "simd: serving on %s (%d workers", *addr, r.Workers())
	if ps := r.Store(); ps != nil {
		fmt.Fprintf(os.Stderr, ", store %s schema %d", ps.Dir(), ps.Schema())
	}
	fmt.Fprintln(os.Stderr, ")")

	select {
	case err := <-done:
		// The listener failed before any signal (bad address, port taken).
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "simd: %s — draining (up to %s for in-flight streams)\n", got, *drainWait)
	}

	// Drain: stop admitting, then let http.Server.Shutdown wait for the
	// active NDJSON streams to finish.
	s.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "simd: drain timeout exceeded, aborting in-flight streams:", err)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "simd:", err)
	}

	st := r.Stats()
	fmt.Fprintf(os.Stderr, "run-plane: %d scenarios submitted, %d simulated, %d duplicates served from cache (%d workers, peak %d in flight, %.1fs simulation wall)\n",
		st.Submitted, st.Simulated, st.Hits, r.Workers(), st.MaxInFlight, st.WallSeconds)
	if ps := r.Store(); ps != nil {
		fmt.Fprintf(os.Stderr, "store: %d hits, %d misses, %d writes, %d corrupt (%s, schema %d)\n",
			st.StoreHits, st.StoreMisses, st.StoreWrites, st.StoreCorrupt, ps.Dir(), ps.Schema())
	}
}
