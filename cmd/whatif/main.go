// Command whatif inspects *.critpath.json sidecars written by the
// critical-path analyzer (-critpath on cmd/experiments, cmd/scalability,
// or cmd/clustersim): per-component blame tables for where the makespan
// went, what-if speedup bounds, per-link slack, and diffs between two
// sidecars of the same scenarios.
//
//	whatif experiments.critpath.json
//	whatif -slack 5 scalability.critpath.json
//	whatif -diff before.critpath.json after.critpath.json
package main

import (
	"flag"
	"fmt"
	"os"

	"clustersoc/internal/critpath"
)

func main() {
	var (
		diff  = flag.Bool("diff", false, "diff two sidecars: reports are matched by scenario, and per-component deltas are printed for each pair")
		slack = flag.Int("slack", 0, "also print the top-N tightest per-link slack rows of every report (0 = off)")
	)
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "whatif -diff needs exactly two sidecar files")
			os.Exit(2)
		}
		a, b := readSidecar(flag.Arg(0)), readSidecar(flag.Arg(1))
		if len(a) == 1 && len(b) == 1 {
			// One report each: compare directly, so two configurations of
			// the same workload (1GbE vs 10GbE) diff without label games.
			fmt.Print(critpath.Diff(a[0], b[0]))
			return
		}
		byScenario := make(map[string]*critpath.Report, len(b))
		for _, r := range b {
			byScenario[r.Scenario] = r
		}
		matched := 0
		for _, ra := range a {
			rb, ok := byScenario[ra.Scenario]
			if !ok {
				fmt.Fprintf(os.Stderr, "whatif: scenario %q only in %s, skipped\n", ra.Scenario, flag.Arg(0))
				continue
			}
			if matched > 0 {
				fmt.Println()
			}
			fmt.Print(critpath.Diff(ra, rb))
			matched++
		}
		if matched == 0 {
			fmt.Fprintln(os.Stderr, "whatif: no scenarios in common")
			os.Exit(1)
		}
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: whatif [-slack N] sidecar.critpath.json...   or   whatif -diff a.critpath.json b.critpath.json")
		os.Exit(2)
	}
	first := true
	for _, path := range flag.Args() {
		for _, r := range readSidecar(path) {
			if !first {
				fmt.Println()
			}
			first = false
			fmt.Print(r.BlameTable())
			fmt.Println()
			fmt.Print(r.WhatIfTable())
			if *slack > 0 && len(r.Links) > 0 {
				fmt.Println()
				fmt.Print(r.SlackTable(*slack))
			}
		}
	}
}

// readSidecar loads one sidecar or exits with its error.
func readSidecar(path string) []*critpath.Report {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	reports, err := critpath.ReadReports(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		os.Exit(1)
	}
	return reports
}
