// Command simload drives a running simd server and reports sustained
// throughput, tail latency, and cache-tier accounting — the tool behind
// the warm/cold QPS study in EXPERIMENTS.md and the CI warm-path check.
//
// It cycles a deck of scenario requests (workloads x cluster sizes)
// across concurrent clients, each POSTing NDJSON batches and timing
// every response line. 429 refusals honour Retry-After. The summary
// counts responses by serving tier, so a warm run is provable: against a
// pre-warmed store every line reports store or memory and the final
// line says "0 simulated".
//
//	simload -addr http://localhost:8080 -duration 5s
//	simload -workloads cg,mg -sizes 2,4,6,8 -scale 0.05 -dump warm.tsv
//
// -dump writes one "fingerprint<TAB>result-JSON" line per distinct
// scenario, sorted by fingerprint: two runs against the same store must
// produce byte-identical dumps (cmp(1) in CI), and any in-run divergence
// between duplicate responses is an error.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"clustersoc/internal/runner"
	"clustersoc/internal/simd"
)

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:8080", "simd server base URL")
		clients   = flag.Int("clients", 4, "concurrent client connections")
		duration  = flag.Duration("duration", 3*time.Second, "how long to keep posting batches")
		batchSize = flag.Int("batch", 8, "scenarios per POST")
		workloads = flag.String("workloads", "cg,mg,ft,lu", "comma-separated workload deck")
		sizes     = flag.String("sizes", "2,4,6,8", "comma-separated cluster sizes")
		netName   = flag.String("network", "10GbE", "NIC for every request")
		scale     = flag.Float64("scale", 0.08, "problem scale for every request")
		dump      = flag.String("dump", "", "write fingerprint-sorted result lines to this file (byte-identical across runs on one store)")
		reqWarm   = flag.Bool("require-warm", false, "exit 1 if any response was freshly simulated")
	)
	flag.Parse()

	deck := buildDeck(*workloads, *sizes, *netName, *scale)
	if len(deck) == 0 {
		fmt.Fprintln(os.Stderr, "simload: empty request deck")
		os.Exit(2)
	}

	agg := &aggregate{counts: map[string]int{}, results: map[string][]byte{}}
	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client(c, *addr, deck, *batchSize, deadline, agg)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if *dump != "" {
		if err := agg.writeDump(*dump); err != nil {
			fmt.Fprintln(os.Stderr, "simload:", err)
			os.Exit(1)
		}
	}
	fmt.Print(agg.report(elapsed))
	if agg.errs > 0 {
		os.Exit(1)
	}
	if *reqWarm && agg.counts[runner.SourceSimulated] > 0 {
		fmt.Fprintf(os.Stderr, "simload: -require-warm: %d responses were freshly simulated\n", agg.counts[runner.SourceSimulated])
		os.Exit(1)
	}
}

// buildDeck expands the workload x size grid into the request cycle.
func buildDeck(workloads, sizes, network string, scale float64) []simd.Request {
	var deck []simd.Request
	for _, w := range strings.Split(workloads, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		for _, s := range strings.Split(sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "simload: bad size %q: %v\n", s, err)
				os.Exit(2)
			}
			deck = append(deck, simd.Request{Workload: w, Nodes: n, Network: network, Scale: scale})
		}
	}
	return deck
}

// aggregate collects every client's observations under one lock.
type aggregate struct {
	mu        sync.Mutex
	latencies []time.Duration // per response line, from batch POST
	counts    map[string]int  // responses by source
	coalesced int
	retried   int // 429s honoured
	errs      int
	results   map[string][]byte // fingerprint -> result JSON (divergence is an error)
}

// line is the subset of the stream schema simload consumes; Result stays
// raw so the dump preserves the server's exact bytes.
type line struct {
	Fingerprint string          `json:"fingerprint"`
	Source      string          `json:"source"`
	Coalesced   bool            `json:"coalesced"`
	Result      json.RawMessage `json:"result"`
	Error       string          `json:"error"`
}

func client(id int, addr string, deck []simd.Request, batchSize int, deadline time.Time, agg *aggregate) {
	hc := &http.Client{}
	name := fmt.Sprintf("simload-%d", id)
	for i := id * batchSize; time.Now().Before(deadline); i += batchSize {
		batch := simd.Batch{Requests: make([]simd.Request, batchSize)}
		for j := 0; j < batchSize; j++ {
			batch.Requests[j] = deck[(i+j)%len(deck)]
		}
		body, err := json.Marshal(batch)
		if err != nil {
			agg.fail(err)
			return
		}
		req, err := http.NewRequest(http.MethodPost, addr+"/simulate", bytes.NewReader(body))
		if err != nil {
			agg.fail(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client", name)
		posted := time.Now()
		resp, err := hc.Do(req)
		if err != nil {
			agg.fail(err)
			return
		}
		switch resp.StatusCode {
		case http.StatusOK:
			agg.consume(resp, posted)
		case http.StatusTooManyRequests:
			resp.Body.Close()
			agg.backoff(resp, deadline)
		default:
			resp.Body.Close()
			agg.fail(fmt.Errorf("status %d from %s", resp.StatusCode, addr))
			return
		}
	}
}

func (a *aggregate) fail(err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.errs++
	fmt.Fprintln(os.Stderr, "simload:", err)
}

// backoff honours Retry-After (capped by the run deadline).
func (a *aggregate) backoff(resp *http.Response, deadline time.Time) {
	a.mu.Lock()
	a.retried++
	a.mu.Unlock()
	wait := time.Second
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
		wait = time.Duration(ra) * time.Second
	}
	if rem := time.Until(deadline); wait > rem {
		wait = rem
	}
	if wait > 0 {
		time.Sleep(wait)
	}
}

// consume reads one NDJSON stream, timing each line against the POST.
func (a *aggregate) consume(resp *http.Response, posted time.Time) {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		took := time.Since(posted)
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			a.fail(fmt.Errorf("undecodable line: %v", err))
			return
		}
		a.mu.Lock()
		if l.Error != "" {
			a.errs++
			fmt.Fprintf(os.Stderr, "simload: scenario %s: %s\n", l.Fingerprint, l.Error)
		} else {
			a.latencies = append(a.latencies, took)
			a.counts[l.Source]++
			if l.Coalesced {
				a.coalesced++
			}
			if prev, ok := a.results[l.Fingerprint]; ok {
				if !bytes.Equal(prev, l.Result) {
					a.errs++
					fmt.Fprintf(os.Stderr, "simload: scenario %s: result bytes diverge between responses\n", l.Fingerprint)
				}
			} else {
				a.results[l.Fingerprint] = append([]byte(nil), l.Result...)
			}
		}
		a.mu.Unlock()
	}
	if err := sc.Err(); err != nil {
		a.fail(err)
	}
}

// writeDump emits the deduped results sorted by fingerprint: a canonical
// byte-comparable view of everything the server answered.
func (a *aggregate) writeDump(path string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	fps := make([]string, 0, len(a.results))
	for fp := range a.results {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	var b bytes.Buffer
	for _, fp := range fps {
		fmt.Fprintf(&b, "%s\t%s\n", fp, a.results[fp])
	}
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "simload: wrote %d distinct results to %s\n", len(fps), path)
	return nil
}

func (a *aggregate) report(elapsed time.Duration) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.latencies)
	qps := float64(n) / elapsed.Seconds()
	sort.Slice(a.latencies, func(i, j int) bool { return a.latencies[i] < a.latencies[j] })
	pct := func(p float64) time.Duration {
		if n == 0 {
			return 0
		}
		i := int(p * float64(n-1))
		return a.latencies[i]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "simload: %d responses in %.2fs (%.1f resp/s), %d distinct scenarios\n",
		n, elapsed.Seconds(), qps, len(a.results))
	fmt.Fprintf(&b, "sources: %d simulated, %d store, %d memory (%d coalesced); %d rate/queue retries, %d errors\n",
		a.counts[runner.SourceSimulated], a.counts[runner.SourceStore], a.counts[runner.SourceMemory],
		a.coalesced, a.retried, a.errs)
	fmt.Fprintf(&b, "latency: p50=%s p90=%s p99=%s max=%s\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	return b.String()
}
