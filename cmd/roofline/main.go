// Command roofline prints the extended Roofline model (Sec. III-B.3) for
// a system: the memory/compute roof series for plotting and, optionally,
// the placement of a measured workload or of the host machine's own
// calibration kernels.
//
//	roofline -net 10g
//	roofline -net 1g -workload tealeaf3d -nodes 8
//	roofline -host -backend blocked      # time the host's kernels
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"clustersoc/internal/compute"
	"clustersoc/internal/core"
	"clustersoc/internal/perf"
	"clustersoc/internal/units"
)

func main() {
	var (
		netArg   = flag.String("net", "10g", "network: 1g or 10g")
		workload = flag.String("workload", "", "optionally place a workload on the roofline")
		nodes    = flag.Int("nodes", 8, "cluster size for the workload run")
		scale    = flag.Float64("scale", 0.08, "problem scale")
		points   = flag.Int("points", 24, "samples of the roof curve")
		backend  = flag.String("backend", compute.Default().Name(), "compute backend for -host calibration ("+strings.Join(compute.Names(), ", ")+")")
		host     = flag.Bool("host", false, "time the calibration kernels on this machine under -backend and print their measured rates")
		hostN    = flag.Int("host-n", 512, "problem order for -host kernels (GEMM n, n*n vectors and grid)")
	)
	flag.Parse()

	be, err := compute.ByName(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roofline:", err)
		os.Exit(2)
	}
	compute.SetDefault(be)

	net := core.TenGigE
	if *netArg == "1g" {
		net = core.GigE
	}
	cfg := core.TX1(*nodes, net)
	single := *workload == "alexnet" || *workload == "googlenet"
	m := core.RooflineModel(cfg, single)

	fmt.Printf("extended roofline: %s\n", m.Name)
	fmt.Printf("  peak:            %s\n", units.Flops(m.PeakFlops))
	fmt.Printf("  memory roof:     %s (ridge OI %.2f FLOP/B)\n", units.Rate(m.MemBandwidth), m.RidgeOI())
	fmt.Printf("  network roof:    %s (ridge NI %.1f FLOP/B)\n", units.Rate(m.NetBandwidth), m.RidgeNI())
	fmt.Println("\n  OI (FLOP/B)   attainable")
	for _, p := range m.MemorySeries(0.01, 100, *points) {
		fmt.Printf("  %10.3f   %s\n", p.OI, units.Flops(p.Attainable))
	}

	if *host {
		fmt.Printf("\nhost calibration (backend %s, n=%d, best of 3):\n", be.Name(), *hostN)
		fmt.Println("  kernel     OI (FLOP/B)   measured")
		for _, k := range perf.MeasureHostKernels(be, *hostN, 3) {
			fmt.Printf("  %-8s %10.3f   %s\n", k.Name, k.OI(), units.Flops(k.FlopRate()))
		}
	}

	if *workload == "" {
		return
	}
	res, err := core.Run(cfg, *workload, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	a := core.RooflineOf(cfg, res, single)
	ni := "inf"
	if !math.IsInf(a.NI, 1) {
		ni = fmt.Sprintf("%.1f", a.NI)
	}
	fmt.Printf("\nworkload %s on %d node(s):\n", *workload, *nodes)
	fmt.Printf("  operational intensity: %.2f FLOP/B\n", a.OI)
	fmt.Printf("  network intensity:     %s FLOP/B\n", ni)
	fmt.Printf("  throughput:            %s/node\n", units.Flops(a.Throughput))
	fmt.Printf("  attainable peak:       %s/node\n", units.Flops(a.Peak))
	fmt.Printf("  percent of peak:       %.1f%%\n", a.PercentOfPeak)
	fmt.Printf("  limiting factor:       %s\n", a.Limit)
}
