// Command roofline prints the extended Roofline model (Sec. III-B.3) for
// a system: the memory/compute roof series for plotting and, optionally,
// the placement of a measured workload.
//
//	roofline -net 10g
//	roofline -net 1g -workload tealeaf3d -nodes 8
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"clustersoc/internal/core"
	"clustersoc/internal/units"
)

func main() {
	var (
		netArg   = flag.String("net", "10g", "network: 1g or 10g")
		workload = flag.String("workload", "", "optionally place a workload on the roofline")
		nodes    = flag.Int("nodes", 8, "cluster size for the workload run")
		scale    = flag.Float64("scale", 0.08, "problem scale")
		points   = flag.Int("points", 24, "samples of the roof curve")
	)
	flag.Parse()

	net := core.TenGigE
	if *netArg == "1g" {
		net = core.GigE
	}
	cfg := core.TX1(*nodes, net)
	single := *workload == "alexnet" || *workload == "googlenet"
	m := core.RooflineModel(cfg, single)

	fmt.Printf("extended roofline: %s\n", m.Name)
	fmt.Printf("  peak:            %s\n", units.Flops(m.PeakFlops))
	fmt.Printf("  memory roof:     %s (ridge OI %.2f FLOP/B)\n", units.Rate(m.MemBandwidth), m.RidgeOI())
	fmt.Printf("  network roof:    %s (ridge NI %.1f FLOP/B)\n", units.Rate(m.NetBandwidth), m.RidgeNI())
	fmt.Println("\n  OI (FLOP/B)   attainable")
	for _, p := range m.MemorySeries(0.01, 100, *points) {
		fmt.Printf("  %10.3f   %s\n", p.OI, units.Flops(p.Attainable))
	}

	if *workload == "" {
		return
	}
	res, err := core.Run(cfg, *workload, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	a := core.RooflineOf(cfg, res, single)
	ni := "inf"
	if !math.IsInf(a.NI, 1) {
		ni = fmt.Sprintf("%.1f", a.NI)
	}
	fmt.Printf("\nworkload %s on %d node(s):\n", *workload, *nodes)
	fmt.Printf("  operational intensity: %.2f FLOP/B\n", a.OI)
	fmt.Printf("  network intensity:     %s FLOP/B\n", ni)
	fmt.Printf("  throughput:            %s/node\n", units.Flops(a.Throughput))
	fmt.Printf("  attainable peak:       %s/node\n", units.Flops(a.Peak))
	fmt.Printf("  percent of peak:       %.1f%%\n", a.PercentOfPeak)
	fmt.Printf("  limiting factor:       %s\n", a.Limit)
}
