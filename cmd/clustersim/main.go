// Command clustersim runs one workload on a configured cluster and prints
// the measurements the paper reports: runtime, throughput, power, energy
// efficiency, traffic, and counters.
//
// Examples:
//
//	clustersim -workload hpl -nodes 8 -net 10g
//	clustersim -workload ft -system cavium -scale 0.2
//	clustersim -workload googlenet -system gtx980 -nodes 2
package main

import (
	"flag"
	"fmt"
	"os"

	"clustersoc/internal/cluster"
	"clustersoc/internal/critpath"
	"clustersoc/internal/network"
	"clustersoc/internal/runner"
	"clustersoc/internal/soc"
	"clustersoc/internal/units"
	"clustersoc/internal/workloads"
)

func main() {
	var (
		name   = flag.String("workload", "hpl", "workload name (hpl, jacobi, cloverleaf, tealeaf2d, tealeaf3d, alexnet, googlenet, bt, cg, ep, ft, is, lu, mg, sp, hpl-cpu)")
		nodes  = flag.Int("nodes", 8, "number of nodes")
		netArg = flag.String("net", "10g", "network: 1g or 10g")
		system = flag.String("system", "tx1", "system: tx1, cavium, gtx980, xgene")
		scale  = flag.Float64("scale", 1.0, "problem scale in (0,1]")
		list   = flag.Bool("list", false, "list available workloads and exit")
		traceF = flag.String("trace", "", "write an Extrae-style execution trace to this file (replay it with cmd/replay)")
		critP  = flag.String("critpath", "", "record the causal event graph, print the blame and what-if tables, and write a critical-path sidecar to this file ('-' prints tables only; inspect sidecars with cmd/whatif)")
		storeD = flag.String("store", os.Getenv("CLUSTERSOC_STORE"), "persistent content-addressed result store directory (default $CLUSTERSOC_STORE): the run is served from a warm entry when present, simulated and persisted otherwise")
		pdes   = flag.Bool("pdes", false, "run eligible configurations under conservative PDES (partitioned by node); results are bit-identical to sequential runs")
		pdesW  = flag.Int("pdes-workers", 4, "PDES worker pool size (with -pdes)")
	)
	flag.Parse()

	if *pdes {
		cluster.SetPDES(*pdesW)
	}

	if *list {
		for _, w := range workloads.All() {
			kind := "CPU"
			if w.GPUAccelerated() {
				kind = "GPU"
			}
			fmt.Printf("%-12s %s\n", w.Name(), kind)
		}
		return
	}

	w, err := workloads.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prof := network.TenGigE
	if *netArg == "1g" {
		prof = network.GigE
	}

	var cfg cluster.Config
	switch *system {
	case "tx1":
		cfg = cluster.TX1Cluster(*nodes, prof)
		cfg.RanksPerNode = w.RanksPerNode()
	case "cavium":
		// The paper runs 32 MPI processes on the 96-core server — the same
		// rank count as the 8-node TX1 cluster at 4 ranks/node.
		cfg = cluster.CaviumServer(32)
	case "gtx980":
		cfg = cluster.GTX980Cluster(*nodes)
	case "xgene":
		// The related-work server SoC: one X-Gene 1 box, 8 MPI ranks.
		cfg = cluster.Config{
			Name:         "X-Gene 1 server",
			Nodes:        1,
			NodeType:     soc.AppliedMicroXGene(),
			Network:      network.GigE,
			RanksPerNode: 8,
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(1)
	}
	if w.GPUAccelerated() && cfg.NodeType.GPU == nil {
		fmt.Fprintf(os.Stderr, "workload %s needs a GPU; system %s has none\n", w.Name(), *system)
		os.Exit(1)
	}
	if w.GPUAccelerated() {
		cfg.FileServer = true
	}
	if *traceF != "" {
		cfg.Traced = true
	}

	var res cluster.Result
	var report *critpath.Report
	var partitioned bool
	if *storeD != "" {
		// The store tier lives in the run-plane, so a stored run goes
		// through a single-worker runner: a warm entry (including its
		// persisted critical-path report) decodes instead of simulating.
		st, err := runner.OpenStore(*storeD)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rn := runner.New(1)
		rn.SetStore(st)
		rn.SetCritPath(*critP != "")
		rres, err := rn.Run(runner.Scenario{
			Cluster:  cfg,
			Workload: w.Name(),
			Config:   workloads.Config{Scale: *scale},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res = rres.Result
		report = rres.CritPath
		rst := rn.Stats()
		fmt.Fprintf(os.Stderr, "store: %d hits, %d misses, %d writes, %d corrupt (%s, schema %d)\n",
			rst.StoreHits, rst.StoreMisses, rst.StoreWrites, rst.StoreCorrupt, st.Dir(), st.Schema())
	} else {
		cl := cluster.New(cfg)
		if *critP != "" {
			cl.RecordCritPath()
		}
		res = cl.Run(w.Body(workloads.Config{Scale: *scale}))
		partitioned = cl.Partitioned()
		if *critP != "" {
			report = critpath.Analyze(cl.CritPath(),
				fmt.Sprintf("%s on %s", w.Name(), cfg.Name), "", res.Runtime)
		}
	}

	if *traceF != "" {
		f, err := os.Create(*traceF)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := res.Trace.Write(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace:         %s\n", *traceF)
	}

	fmt.Printf("system:        %s\n", res.System)
	fmt.Printf("workload:      %s (scale %.2f)\n", w.Name(), *scale)
	fmt.Printf("ranks:         %d on %d node(s)\n", res.Ranks, res.Nodes)
	if partitioned {
		fmt.Printf("engine:        pdes (%d workers)\n", *pdesW)
	}
	fmt.Printf("runtime:       %s\n", units.Seconds(res.Runtime))
	fmt.Printf("throughput:    %s\n", units.Flops(res.Throughput))
	fmt.Printf("avg power:     %.1f W\n", res.AvgPowerWatts)
	fmt.Printf("energy:        %.1f kJ\n", res.EnergyJoules/1e3)
	fmt.Printf("efficiency:    %.1f MFLOPS/W\n", res.MFLOPSPerWatt())
	fmt.Printf("network:       %s total, %s avg\n", units.Bytes(res.NetBytes), units.Rate(res.NetTrafficRate()))
	fmt.Printf("DRAM:          %s total, %s avg\n", units.Bytes(res.DRAMBytes), units.Rate(res.DRAMTrafficRate()))
	fmt.Printf("CPU busy:      %.1f core-s   GPU busy: %.1f SM-s\n", res.CPUBusySeconds, res.GPUBusySeconds)
	fmt.Printf("IPC:           %.2f   branch miss: %.2f%%   L2 miss: %.1f%%\n",
		res.PMU.IPC(), 100*res.PMU.BranchMissRatio(), 100*res.PMU.L2MissRatio())
	if res.GPU.Launches > 0 {
		fmt.Printf("GPU:           %d launches, L2 util %.2f, mem stalls %.2f\n",
			res.GPU.Launches, res.GPU.L2Utilization(), res.GPU.MemoryStallFraction())
	}
	if report != nil {
		fmt.Printf("\ncritical-path blame:\n%s\n%s", report.BlameTable(), report.WhatIfTable())
		if *critP != "-" {
			f, err := os.Create(*critP)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := critpath.WriteReports(f, []*critpath.Report{report}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("\ncritical path: %s (inspect with cmd/whatif)\n", *critP)
		}
	}
}
