// Command replay re-times a recorded execution trace under a different
// network — the Extrae -> DIMEMAS workflow of Sec. III-B.4 as a pair of
// command-line tools:
//
//	clustersim -workload tealeaf3d -trace run.trace
//	replay -in run.trace                 # summary + efficiency decomposition
//	replay -in run.trace -net ideal      # the ideal-network what-if
//	replay -in run.trace -bw 1.25e9 -lat 5e-6   # a hypothetical NIC
//	replay -in run.trace -ideal-lb       # perfectly balanced load
package main

import (
	"flag"
	"fmt"
	"os"

	"clustersoc/internal/dimemas"
	"clustersoc/internal/network"
	"clustersoc/internal/obs"
	"clustersoc/internal/simcheck"
	"clustersoc/internal/trace"
	"clustersoc/internal/units"
)

func main() {
	var (
		in       = flag.String("in", "", "trace file written by clustersim -trace")
		netArg   = flag.String("net", "10g", "replay network: 1g, 10g, ideal, or custom via -bw/-lat")
		bw       = flag.Float64("bw", 0, "custom bandwidth, bytes/second (overrides -net)")
		lat      = flag.Float64("lat", 0, "custom one-way latency, seconds (with -bw)")
		check    = flag.Bool("check", false, "audit the trace with simcheck (timing sanity, per-rank ordering, send/receive matching) before replaying; violations fail the run")
		idealLB  = flag.Bool("ideal-lb", false, "rescale each phase's compute to the mean (LB = 1)")
		buses    = flag.Int("buses", 0, "DIMEMAS bus-contention limit (0 = contention-free model)")
		timeline = flag.Bool("timeline", false, "render a PARAVER-style per-rank activity view of the measured run")
		profile  = flag.Bool("profile", false, "render the trace's observability metrics (ops, compute/copy/comm-wait time, message sizes)")
		traceOut = flag.String("trace-out", "", "export the measured trace as Chrome/Perfetto trace-event JSON to this file")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "replay: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
	defer f.Close()
	t, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}

	s := t.Summarize()
	fmt.Printf("trace: %d ranks, %d ops, %d messages (%s), measured runtime %s\n",
		s.Ranks, s.Ops, s.Messages, units.Bytes(s.Bytes), units.Seconds(s.Runtime))

	if *check {
		if err := simcheck.Error(simcheck.AuditTrace(t)); err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		fmt.Println("simcheck: trace audited — timing, ordering, and message matching all consistent")
	}

	model := dimemas.NetworkModel{
		IntraBandwidth: network.MemoryPathBandwidth,
		IntraLatency:   network.MemoryPathLatency,
	}
	switch {
	case *bw > 0:
		model.Name = "custom"
		model.Bandwidth = *bw
		model.Latency = *lat
	case *netArg == "ideal":
		model = dimemas.IdealNetwork
	case *netArg == "1g":
		model.Name, model.Bandwidth, model.Latency = "1GbE", network.GigE.Throughput, network.GigE.Latency
	default:
		model.Name, model.Bandwidth, model.Latency = "10GbE", network.TenGigE.Throughput, network.TenGigE.Latency
	}

	replayed := dimemas.Replay(t, dimemas.Options{Net: model, IdealLoadBalance: *idealLB, Buses: *buses})
	fmt.Printf("replayed on %s", model.Name)
	if *buses > 0 {
		fmt.Printf(" (%d buses)", *buses)
	}
	if *idealLB {
		fmt.Print(" with ideal load balance")
	}
	fmt.Printf(": %s  (%.2fx vs measured)\n", units.Seconds(replayed), s.Runtime/replayed)

	e := dimemas.Decompose(t)
	fmt.Printf("\nefficiency decomposition of the measured run:\n")
	fmt.Printf("  LB = %.3f   Ser = %.3f   Trf = %.3f   eta = %.3f\n", e.LB, e.Ser, e.Trf, e.Eta)

	if *timeline {
		fmt.Println()
		fmt.Print(t.Timeline(72))
	}
	if *profile {
		fmt.Println()
		fmt.Print(obs.TraceSnapshot(t).Render())
	}
	if *traceOut != "" {
		out, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		if err := obs.WriteChromeTrace(out, t, obs.TraceSnapshot(t)); err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		if err := out.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote Chrome trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
	}
}
