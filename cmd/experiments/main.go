// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated testbed and prints the data.
//
// The generators declare their scenarios up front and submit them to one
// shared memoized run-plane, so scenarios shared between artifacts (the
// Fig. 1 runs reappear in Fig. 3, Table II, Fig. 9, ...) simulate exactly
// once, concurrently up to -parallel workers. Output is byte-identical
// at any worker count; the run-plane accounting goes to stderr.
//
//	experiments                  # everything, default scale
//	experiments -only fig1,tab6  # a subset
//	experiments -scale 0.25     # closer to paper-sized problems
//	experiments -parallel 1      # sequential run-plane
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"clustersoc/internal/cluster"
	"clustersoc/internal/compute"
	"clustersoc/internal/critpath"
	"clustersoc/internal/experiments"
	"clustersoc/internal/network"
	"clustersoc/internal/obs"
	"clustersoc/internal/plot"
	"clustersoc/internal/runner"
	"clustersoc/internal/simcheck"
)

// artifactKeys is every -only selector, in presentation order.
var artifactKeys = []string{
	"tab1", "fig1", "fig2", "fig3", "fig4", "tab2", "fig5", "fig6",
	"tab3", "fig7", "tab4", "tab5", "tab6", "fig8", "tab7", "fig9",
	"fig10", "weak", "related", "faults",
}

func main() {
	var (
		scale    = flag.Float64("scale", 0.08, "problem scale in (0,1]; shapes are scale-invariant")
		only     = flag.String("only", "", "comma-separated subset: "+strings.Join(artifactKeys, ","))
		jsonPath = flag.String("json", "", "also write every generated artifact as JSON to this file")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = sequential)")
		check    = flag.Bool("check", false, "audit every simulated scenario with simcheck (flow conservation, MPI schedule balance, port utilization) and cross-check the collective cost models; violations fail the run")
		faultsOn = flag.Bool("faults", false, "run the fault-injection study (fault-class matrix + checkpoint-interval sweep); also reachable via -only faults")
		profile  = flag.Bool("profile", false, "collect per-scenario observability profiles: writes a *.profile.json sidecar and a merged metrics summary on stderr")
		critPath = flag.Bool("critpath", false, "record the causal event graph of every simulated scenario and write a *.critpath.json sidecar with per-component blame, slack, and what-if bounds (inspect with cmd/whatif)")
		traceOut = flag.String("trace-out", "", "write a Chrome/Perfetto trace of a representative run (hpl @ 8 nodes, 10GbE) to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the regeneration to this file (host profiling of the simulator itself; written on clean completion)")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile at exit to this file (written on clean completion)")
		backend  = flag.String("backend", compute.Default().Name(), "compute backend executing the calibration kernels ("+strings.Join(compute.Names(), ", ")+"); the artifact tables are analytic and stay byte-identical either way")
		storeDir = flag.String("store", os.Getenv("CLUSTERSOC_STORE"), "persistent content-addressed result store directory (default $CLUSTERSOC_STORE): warm entries decode instead of re-simulating, and results are deterministic so entries never go stale")
		pdes     = flag.Bool("pdes", false, "run eligible scenarios under conservative PDES (partitioned by node); artifacts stay byte-identical to sequential runs")
		pdesW    = flag.Int("pdes-workers", 4, "PDES worker pool size (with -pdes)")
	)
	flag.Parse()

	if *pdes {
		cluster.SetPDES(*pdesW)
	}

	be, err := compute.ByName(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	compute.SetDefault(be)
	if be.Accelerated() {
		fmt.Fprintf(os.Stderr, "experiments: compute backend %s (kernel results may differ from reference in the last bits)\n", be.Name())
	}

	// Host-side pprof of the simulator itself — the engine's allocation
	// and event-loop cost is what these catch; the simulated metrics go
	// through -profile instead. Both are written only when the run exits
	// cleanly (error paths os.Exit past the defers).
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}

	o := experiments.DefaultOptions()
	o.Scale = *scale
	o.Runner = runner.New(*parallel)
	o.Runner.SetProfiling(*profile)
	o.Runner.SetChecking(*check)
	o.Runner.SetCritPath(*critPath)
	if *storeDir != "" {
		st, err := runner.OpenStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		o.Runner.SetStore(st)
	}

	known := map[string]bool{}
	for _, k := range artifactKeys {
		known[k] = true
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			k = strings.TrimSpace(k)
			if !known[k] {
				fmt.Fprintf(os.Stderr, "experiments: unknown -only key %q (known: %s)\n",
					k, strings.Join(artifactKeys, ","))
				os.Exit(2)
			}
			want[k] = true
		}
	}
	sel := func(keys ...string) bool {
		if len(want) == 0 {
			return true
		}
		for _, k := range keys {
			if want[k] {
				return true
			}
		}
		return false
	}

	artifacts := map[string]any{}
	keep := func(key string, v any) { artifacts[key] = v }

	section := func(title string, body func()) {
		fmt.Printf("\n===== %s =====\n", title)
		body()
	}

	if sel("tab1") {
		section("Table I: GPGPU-accelerated workloads", func() { fmt.Print(experiments.Table1()) })
	}
	if sel("fig1", "fig2") {
		section("Fig. 1 + Fig. 2: 10GbE vs 1GbE speedup and energy", func() {
			nc := experiments.Fig1(o)
			keep("fig1_fig2", nc)
			fmt.Print(nc)
			var labels []string
			var speedups, energies []float64
			for _, r := range nc.Rows {
				if r.Nodes == 8 {
					labels = append(labels, r.Workload)
					speedups = append(speedups, r.Speedup())
					energies = append(energies, r.EnergyRatio())
				}
			}
			fmt.Println()
			fmt.Print(plot.Bars("Fig. 1 @8 nodes: speedup using 10GbE vs 1GbE", labels, speedups, 40))
			fmt.Println()
			fmt.Print(plot.Bars("Fig. 2 @8 nodes: normalized energy (10GbE/1GbE; shorter is better)", labels, energies, 40))
			fmt.Printf("average speedup @8 nodes: %.2fx\n", nc.AverageSpeedup(8))
			fmt.Printf("average energy-efficiency improvement @8 nodes: %.1f%%\n", 100*nc.AverageEnergyImprovement(8))
		})
	}
	if sel("fig3") {
		section("Fig. 3: DRAM vs network traffic (8 nodes)", func() {
			tr := experiments.Fig3(o)
			keep("fig3", tr)
			fmt.Print(tr)
			c := plot.Chart{Title: "Fig. 3: per-node traffic (log-log)", XLabel: "network B/s", YLabel: "DRAM B/s",
				LogX: true, LogY: true, Width: 56, Height: 14}
			for _, net := range []string{"1GbE", "10GbE"} {
				var xs, ys []float64
				for _, p := range tr.Points {
					if p.Network == net {
						xs = append(xs, p.NetRate)
						ys = append(ys, p.DRAMRate)
					}
				}
				c.Add(plot.Series{Name: net, X: xs, Y: ys})
			}
			fmt.Println()
			fmt.Print(c.Render())
		})
	}
	if sel("fig4", "tab2") {
		section("Table II + Fig. 4: extended roofline", func() {
			rf := experiments.Table2(o)
			keep("table2_fig4", rf)
			fmt.Print(rf)
			c := plot.Chart{Title: "Fig. 4: DP roofline with measured workloads (log-log)",
				XLabel: "operational intensity FLOP/B", YLabel: "FLOP/s", LogX: true, LogY: true,
				Width: 56, Height: 14}
			var rx, ry []float64
			for _, p := range rf.Series10G {
				rx = append(rx, p.OI)
				ry = append(ry, p.Attainable)
			}
			c.Add(plot.Series{Name: "memory/compute roof", X: rx, Y: ry, Marker: '-'})
			var wx, wy []float64
			for _, r := range rf.Rows {
				if r.Network == "10GbE" && r.Workload != "alexnet" && r.Workload != "googlenet" {
					wx = append(wx, r.OI)
					wy = append(wy, r.Throughput)
				}
			}
			c.Add(plot.Series{Name: "measured workloads (10GbE)", X: wx, Y: wy, Marker: 'o'})
			fmt.Println()
			fmt.Print(c.Render())
		})
	}
	if sel("fig5") {
		section("Fig. 5: GPGPU scalability", func() {
			s5 := experiments.Fig5(o)
			keep("fig5", s5)
			fmt.Print(s5)
			fmt.Println()
			fmt.Print(scalingChart("Fig. 5: measured speedups (10GbE)", s5))
		})
	}
	if sel("fig6") {
		section("Fig. 6: NPB scalability", func() {
			s6 := experiments.Fig6(o)
			keep("fig6", s6)
			fmt.Print(s6)
			fmt.Println()
			fmt.Print(scalingChart("Fig. 6: measured speedups (10GbE)", s6))
		})
	}
	if sel("tab3") {
		section("Table III: CUDA memory-management models (jacobi)", func() {
			m := experiments.Table3(o)
			keep("table3", m)
			fmt.Print(m)
		})
	}
	if sel("fig7") {
		section("Fig. 7: hpl energy efficiency vs GPU/CPU work ratio", func() {
			wr := experiments.Fig7(o)
			keep("fig7", wr)
			fmt.Print(wr)
		})
	}
	if sel("tab4") {
		section("Table IV: CPU/GPU/collocated hpl", func() {
			c := experiments.Table4(o)
			keep("table4", c)
			fmt.Print(c)
		})
	}
	if sel("tab5") {
		section("Table V: many-core ARM server vs TX1 configuration", func() { fmt.Print(experiments.Table5()) })
	}
	if sel("tab6", "fig8") {
		section("Table VI + Fig. 8: Cavium ThunderX comparison and PLS", func() {
			cc := experiments.Table6(o)
			keep("table6_fig8", cc)
			fmt.Print(cc)
		})
	}
	if sel("tab7") {
		section("Table VII: discrete vs integrated GPGPU configuration", func() { fmt.Print(experiments.Table7()) })
	}
	if sel("fig9") {
		section("Fig. 9: TX1 cluster vs 2x GTX 980", func() {
			d := experiments.Fig9(o)
			keep("fig9", d)
			fmt.Print(d)
		})
	}
	if sel("fig10") {
		section("Fig. 10: AI workload CPU:GPU balance", func() {
			a := experiments.Fig10(o)
			keep("fig10", a)
			fmt.Print(a)
		})
	}
	if sel("related") {
		section("Extension: NPB across ARM server generations", func() {
			rw := experiments.RelatedWorkCompare(o)
			keep("related", rw)
			fmt.Print(rw)
		})
	}
	if sel("weak") {
		section("Extension: weak-scaling hpl (Tibidabo's regime)", func() {
			ws := experiments.WeakScaling(o)
			keep("weak", ws)
			fmt.Print(ws)
			fmt.Printf("weak-scaling efficiency @8 nodes: %.2f\n", ws.Efficiency())
		})
	}
	// The fault study is opt-in (-faults or -only faults): it extends the
	// paper rather than reproducing it, and keeping it out of the default
	// set keeps the default artifacts identical to the fault-free golden
	// capture.
	if *faultsOn || want["faults"] {
		section("Extension: fault injection and checkpoint-interval sweep", func() {
			fs := experiments.Faults(o)
			keep("faults", fs)
			fmt.Print(fs)
		})
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := experiments.WriteArtifactsJSON(f, artifacts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d artifacts to %s\n", len(artifacts), *jsonPath)
	}
	// The traced run goes first so its profile (when -profile is on)
	// lands in the sidecar with the rest.
	if *traceOut != "" {
		writeChromeTrace(o, *traceOut)
	}
	if *profile {
		writeProfileSidecar(o, *jsonPath)
	}
	if *critPath {
		writeCritPathSidecar(o, *jsonPath)
	}

	if *check {
		if err := simcheck.Error(simcheck.AuditCollectives()); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: collective cost models:", err)
			os.Exit(1)
		}
	}

	st := o.Runner.Stats()
	fmt.Fprintf(os.Stderr, "run-plane: %d scenarios submitted, %d simulated, %d duplicates served from cache (%d workers, peak %d in flight, %.1fs simulation wall)\n",
		st.Submitted, st.Simulated, st.Hits, o.Runner.Workers(), st.MaxInFlight, st.WallSeconds)
	if ps := o.Runner.Store(); ps != nil {
		fmt.Fprintf(os.Stderr, "store: %d hits, %d misses, %d writes, %d corrupt (%s, schema %d)\n",
			st.StoreHits, st.StoreMisses, st.StoreWrites, st.StoreCorrupt, ps.Dir(), ps.Schema())
	}
	if *check {
		fmt.Fprintf(os.Stderr, "simcheck: %d scenario(s) audited, collective cost models verified — no invariant violations\n", st.Audited)
	}
}

// writeProfileSidecar writes the run-plane's collected profiles next to
// the artifact JSON (or to experiments.profile.json without -json) and
// renders the merged simulated metrics on stderr.
func writeProfileSidecar(o experiments.Options, jsonPath string) {
	sidecar := "experiments.profile.json"
	if jsonPath != "" {
		sidecar = strings.TrimSuffix(jsonPath, ".json") + ".profile.json"
	}
	profs := o.Runner.Profiles()
	f, err := os.Create(sidecar)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := obs.WriteProfiles(f, profs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %d profiles to %s\n", len(profs), sidecar)

	snaps := make([]obs.Snapshot, 0, len(profs))
	for _, p := range profs {
		snaps = append(snaps, p.Sim)
	}
	fmt.Fprintf(os.Stderr, "merged simulated metrics across %d profiled scenarios:\n", len(profs))
	fmt.Fprint(os.Stderr, obs.Merge(snaps...).Render())
}

// writeCritPathSidecar writes the run-plane's collected critical-path
// reports next to the artifact JSON (or to experiments.critpath.json
// without -json).
func writeCritPathSidecar(o experiments.Options, jsonPath string) {
	sidecar := "experiments.critpath.json"
	if jsonPath != "" {
		sidecar = strings.TrimSuffix(jsonPath, ".json") + ".critpath.json"
	}
	reports := o.Runner.Reports()
	f, err := os.Create(sidecar)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := critpath.WriteReports(f, reports); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %d critical-path reports to %s (inspect with cmd/whatif)\n", len(reports), sidecar)
}

// writeChromeTrace simulates the representative traced scenario (hpl on
// the paper's 8-node 10 GbE cluster) and exports it for chrome://tracing
// or ui.perfetto.dev. With -critpath the export carries a highlighted
// critical-path track above the per-node lanes.
func writeChromeTrace(o experiments.Options, path string) {
	sc, err := experiments.TracedScenario(o, "hpl", 8, network.TenGigE)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := o.Runner.Run(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var snap obs.Snapshot
	if res.Profile != nil {
		snap = res.Profile.Sim
	} else {
		snap = obs.TraceSnapshot(res.Trace)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var highlight []obs.PathSlice
	if res.CritPath != nil {
		highlight = res.CritPath.PathSlices()
	}
	if err := obs.WriteChromeTraceWithPath(f, res.Trace, snap, highlight); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote Chrome trace of %s to %s (open in chrome://tracing or ui.perfetto.dev)\n", sc.Cluster.Name, path)
}

// scalingChart draws the measured speedup curves of a scalability study.
func scalingChart(title string, s *experiments.Scaling) string {
	c := plot.Chart{Title: title, XLabel: "nodes", YLabel: "speedup", Width: 56, Height: 14}
	for _, curve := range s.Curves {
		var xs, ys []float64
		for i, n := range curve.Nodes {
			xs = append(xs, float64(n))
			ys = append(ys, curve.Speedup10G(i))
		}
		c.Add(plot.Series{Name: curve.Workload, X: xs, Y: ys})
	}
	return c.Render()
}
