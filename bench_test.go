// Package clustersoc's top-level benchmarks regenerate every table and
// figure of the paper's evaluation (one benchmark per artifact; see
// DESIGN.md's experiment index) plus ablation benches on the design
// choices the models encode. Each benchmark iteration reproduces the full
// artifact, so b.N = 1 runs are the normal mode:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig1 -benchtime=1x
package clustersoc

import (
	"testing"

	"clustersoc/internal/core"
	"clustersoc/internal/cuda"
	"clustersoc/internal/experiments"
	"clustersoc/internal/kernels"
	"clustersoc/internal/nn"
	"clustersoc/internal/workloads"
)

// benchOptions keeps the artifact regenerations quick; shapes are
// scale-invariant (see internal/workloads).
func benchOptions() experiments.Options {
	return experiments.Options{Scale: 0.04, Sizes: []int{2, 4, 8}}
}

// --- One benchmark per paper artifact -----------------------------------

func BenchmarkFig1NetworkSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nc := experiments.Fig1(benchOptions())
		b.ReportMetric(nc.AverageSpeedup(8), "avg-speedup@8")
	}
}

func BenchmarkFig2NetworkEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nc := experiments.Fig1(benchOptions())
		b.ReportMetric(100*nc.AverageEnergyImprovement(8), "avg-energy-gain-%@8")
	}
}

func BenchmarkFig3TrafficScatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := experiments.Fig3(benchOptions())
		p := tr.Point("hpl", "10GbE")
		b.ReportMetric(p.DRAMRate/1e9, "hpl-dram-GB/s")
	}
}

func BenchmarkFig4RooflineSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rf := experiments.Table2(benchOptions())
		b.ReportMetric(float64(len(rf.Series10G)), "roof-points")
	}
}

func BenchmarkTable2Roofline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rf := experiments.Table2(benchOptions())
		b.ReportMetric(rf.Row("hpl", "10GbE").PercentOfPeak, "hpl-%peak@10G")
	}
}

func BenchmarkFig5GPUScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Fig5(benchOptions())
		c := s.Curve("hpl")
		b.ReportMetric(c.Speedup10G(len(c.Nodes)-1), "hpl-speedup@8")
	}
}

func BenchmarkFig6NPBScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.Fig6(benchOptions())
		c := s.Curve("ft")
		b.ReportMetric(c.IdealNetGain(len(c.Nodes)-1), "ft-idealnet-gain")
	}
}

func BenchmarkTable3MemModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.Table3(benchOptions())
		b.ReportMetric(m.Row(8, cuda.ZeroCopy).RuntimeNorm, "zerocopy-slowdown@8")
	}
}

func BenchmarkFig7WorkRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wr := experiments.Fig7(benchOptions())
		b.ReportMetric(wr.At(8, 0.5).Normalized, "eff@ratio0.5")
	}
}

func BenchmarkTable4Collocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := experiments.Table4(benchOptions())
		both := c.Row("CPU+GPU", "10GbE", 8)
		gpu := c.Row("GPU", "10GbE", 8)
		b.ReportMetric(both.MFLOPSPerWatt/gpu.MFLOPSPerWatt, "colloc-eff-gain")
	}
}

func BenchmarkTable6CaviumCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cc := experiments.Table6(benchOptions())
		b.ReportMetric(cc.Row("mg").NormRuntime, "mg-cavium-slowdown")
	}
}

func BenchmarkFig8PLSCounters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cc := experiments.Table6(benchOptions())
		b.ReportMetric(float64(cc.Components95), "pls-components")
	}
}

func BenchmarkFig9DiscreteGPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Fig9(benchOptions())
		b.ReportMetric(d.Row("googlenet", 8).NormRuntime, "googlenet-vs-gtx")
	}
}

func BenchmarkFig10AIBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := experiments.Fig10(benchOptions())
		b.ReportMetric(a.Row("googlenet", 8).NormCPUCyclesSec, "cpu-cycles-ratio")
	}
}

// --- Ablation benches on the design choices DESIGN.md calls out ---------

// Ablation: the 10 GbE upgrade on the most network-bound workload.
func BenchmarkAblationNetworkChoice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		slow, _ := core.Run(core.TX1(8, core.GigE), "tealeaf3d", 0.04)
		fast, _ := core.Run(core.TX1(8, core.TenGigE), "tealeaf3d", 0.04)
		b.ReportMetric(slow.Runtime/fast.Runtime, "tealeaf3d-10g-speedup")
	}
}

// Ablation: zero-copy vs explicit copies on the integrated GPU.
func BenchmarkAblationZeroCopy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hd, _ := core.RunWithMemModel(core.TX1(4, core.TenGigE), "jacobi", 0.04, cuda.HostDevice)
		zc, _ := core.RunWithMemModel(core.TX1(4, core.TenGigE), "jacobi", 0.04, cuda.ZeroCopy)
		b.ReportMetric(zc.Runtime/hd.Runtime, "zerocopy-slowdown")
	}
}

// Ablation: the hpl work split between GPU and a CPU core (Fig. 7's
// underlying mechanism).
func BenchmarkAblationHPLWorkSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		all, _ := core.Run(core.TX1(4, core.TenGigE), "hpl", 0.04)
		b.ReportMetric(all.MFLOPSPerWatt(), "MFLOPS/W")
	}
}

// --- Micro-benchmarks on the real numeric kernels -----------------------

func BenchmarkKernelLUFactor(b *testing.B) {
	n := 128
	a := kernels.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, float64((i*31+j*17)%97)/97)
		}
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	b.SetBytes(int64(n * n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kernels.Factor(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelJacobiSweep(b *testing.B) {
	n := 256
	u, v, f := kernels.NewGrid2D(n, n), kernels.NewGrid2D(n, n), kernels.NewGrid2D(n, n)
	b.SetBytes(int64(kernels.JacobiSweepBytes(n, n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.JacobiStep(v, u, f, 1.0/float64(n+1))
		u, v = v, u
	}
}

func BenchmarkKernelFFT2D(b *testing.B) {
	nx, ny := 128, 128
	data := make([]complex128, nx*ny)
	for i := range data {
		data[i] = complex(float64(i%17), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kernels.FFT2D(data, nx, ny, i%2 == 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelCGHeat2D(b *testing.B) {
	op := &kernels.HeatOperator2D{NX: 64, NY: 64, Tau: 0.25}
	rhs := make([]float64, op.Len())
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, op.Len())
		if _, err := kernels.ConjugateGradient(op, x, rhs, 1e-8, 400); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelBucketSort(b *testing.B) {
	keys := kernels.NewNPBRandom(314159265).Keys(1<<16, 1<<19)
	b.SetBytes(int64(len(keys) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.BucketSort(keys, 1<<19, 16)
	}
}

func BenchmarkKernelEulerStep(b *testing.B) {
	s := kernels.NewEulerState(128, 128)
	s.Energy.Set(64, 64, 10/(s.Gamma-1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(1e-4, 1.0/128)
	}
}

func BenchmarkKernelEP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		kernels.EmbarrassinglyParallel(1<<16, 314159265)
	}
}

func BenchmarkNNAlexNetAccounting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := nn.AlexNet()
		b.ReportMetric(net.TotalFLOPs()/1e9, "GFLOP/image")
	}
}

func BenchmarkNNGoogleNetForward(b *testing.B) {
	net := nn.GoogleNet()
	// Forward a small inception module rather than the full 3 GFLOP graph
	// per iteration; the full graph is exercised by the nn tests.
	in := nn.NewTensor(nn.Shape{C: 3, H: 56, W: 56})
	layer := net.Layers[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Forward(in)
	}
}

// Simulator throughput: events per second on a communication-heavy run.
// events/s is the engine's headline metric — wall-clock event throughput,
// the number every artifact regeneration is bounded by.
func BenchmarkSimulatorEventRate(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.TX1(8, core.TenGigE), "cg", 0.04)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
		b.ReportMetric(res.Runtime, "simulated-s")
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(events)/sec, "events/s")
	}
}

// Extension ablation: FP16 inference on the Tegra vs the desktop Maxwell.
func BenchmarkAblationFP16Inference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fp32, _ := core.RunWithConfig(core.TX1(4, core.TenGigE), "googlenet",
			workloads.Config{Scale: 0.04})
		fp16, _ := core.RunWithConfig(core.TX1(4, core.TenGigE), "googlenet",
			workloads.Config{Scale: 0.04, HalfPrecision: true})
		b.ReportMetric(fp32.Runtime/fp16.Runtime, "fp16-speedup")
	}
}

// Extension ablation: hypothetical GPUDirect on the most transfer-bound
// workload.
func BenchmarkAblationGPUDirect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		staged, _ := core.Run(core.TX1(4, core.TenGigE), "tealeaf3d", 0.04)
		cfg := core.TX1(4, core.TenGigE)
		cfg.GPUDirect = true
		direct, _ := core.Run(cfg, "tealeaf3d", 0.04)
		b.ReportMetric(staged.Runtime/direct.Runtime, "gpudirect-speedup")
	}
}

// Extension: weak-scaling hpl (the Tibidabo regime of the related work).
func BenchmarkExtensionWeakScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := experiments.WeakScaling(benchOptions())
		b.ReportMetric(ws.Efficiency(), "weak-efficiency@8")
	}
}
