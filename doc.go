// Package clustersoc reproduces "Understanding the Role of
// GPGPU-accelerated SoC-based ARM Clusters" (Azimi, Fox, Reda — IEEE
// CLUSTER 2017) as a Go library: a deterministic discrete-event simulator
// of the paper's Jetson TX1 cluster and its comparison systems, real
// implementations of the numeric algorithms behind every benchmark, the
// extended Roofline model, and the trace-replay scalability methodology.
//
// Start at internal/core for the library API, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record. The top-level benchmarks in this package
// regenerate every table and figure of the paper's evaluation:
//
//	go test -bench=. -benchmem
package clustersoc
