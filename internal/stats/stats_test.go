package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeastSquaresExact(t *testing.T) {
	// y = 2 + 3x, exactly.
	x := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{2, 5, 8, 11}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-2) > 1e-9 || math.Abs(beta[1]-3) > 1e-9 {
		t.Fatalf("beta = %v, want [2 3]", beta)
	}
}

func TestLeastSquaresSingular(t *testing.T) {
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}} // collinear columns
	if _, err := LeastSquares(x, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected singular-system error")
	}
}

func TestRSquared(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	if r := RSquared(obs, obs); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect fit r2 = %v", r)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if r := RSquared(obs, mean); math.Abs(r) > 1e-12 {
		t.Errorf("mean predictor r2 = %v, want 0", r)
	}
}

func TestFitScalingRecoversModel(t *testing.T) {
	truth := ScalingFit{A: 2, B: 40, C: 0.8}
	ps := []int{1, 2, 4, 6, 8}
	ts := make([]float64, len(ps))
	for i, p := range ps {
		ts[i] = truth.Predict(p)
	}
	fit, err := FitScaling(ps, ts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.A-2) > 1e-6 || math.Abs(fit.B-40) > 1e-6 || math.Abs(fit.C-0.8) > 1e-6 {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.R2 < 0.999999 {
		t.Fatalf("r2 = %v on exact data", fit.R2)
	}
	// Extrapolation is monotone here and saturates per Amdahl.
	if fit.Speedup(16) <= fit.Speedup(8) && truth.Predict(16) < truth.Predict(8) {
		t.Error("speedup extrapolation inconsistent")
	}
}

func TestFitScalingNeedsPoints(t *testing.T) {
	if _, err := FitScaling([]int{2, 4}, []float64{1, 2}); err == nil {
		t.Fatal("expected error with 2 points")
	}
}

func TestSpeedupAtOneIsOne(t *testing.T) {
	f := func(a, b, c uint8) bool {
		fit := ScalingFit{A: float64(a) + 1, B: float64(b) + 1, C: float64(c) * 0.01}
		return math.Abs(fit.Speedup(1)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// PLS on data with a single dominant driver must rank that variable first
// and recover a usable regression.
func TestPLS1FindsDominantVariable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, m := 16, 6
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			x[i][j] = rng.NormFloat64()
		}
		// y driven by var 2 strongly, var 4 less so.
		y[i] = 5*x[i][2] + 2*x[i][4] + 0.01*rng.NormFloat64()
	}
	res, err := PLS1(x, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopVariables(2)
	if top[0] != 2 {
		t.Fatalf("top variable = %d, want 2 (std coeffs %v)", top[0], res.StdCoeffs)
	}
	if top[1] != 4 {
		t.Errorf("second variable = %d, want 4", top[1])
	}
	// Predictions should track y closely.
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = res.Predict(x[i])
	}
	if r2 := RSquared(y, pred); r2 < 0.95 {
		t.Fatalf("PLS r2 = %v", r2)
	}
}

// With y an exact linear function of X and enough components, PLS must
// reproduce OLS-quality coefficients.
func TestPLS1ExactLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, m := 12, 3
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 1 + 2*x[i][0] - 3*x[i][1] + 0.5*x[i][2]
	}
	res, err := PLS1(x, y, m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, -3, 0.5}
	for j, w := range want {
		if math.Abs(res.Coeffs[j]-w) > 1e-6 {
			t.Fatalf("coeffs = %v, want %v", res.Coeffs, want)
		}
	}
	if math.Abs(res.Intercept-1) > 1e-6 {
		t.Fatalf("intercept = %v", res.Intercept)
	}
}

func TestPLSVarianceExplainedMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, m := 10, 5
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = make([]float64, m)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
		y[i] = x[i][0] + rng.NormFloat64()
	}
	res, err := PLS1(x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, v := range res.XVarianceExplained {
		if v < prev-1e-9 || v > 1+1e-9 {
			t.Fatalf("variance explained not monotone in [0,1]: %v", res.XVarianceExplained)
		}
		prev = v
	}
	if got := res.ComponentsFor(0.0); got != 1 {
		t.Errorf("ComponentsFor(0) = %d", got)
	}
}

func TestPLSConstantColumnHarmless(t *testing.T) {
	x := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	y := []float64{2, 4, 6, 8}
	res, err := PLS1(x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Predict([]float64{5, 5})-10) > 1e-6 {
		t.Fatalf("prediction with constant column broken: %v", res.Predict([]float64{5, 5}))
	}
}

// Three points at only two distinct cluster sizes pass the length check but
// leave the design matrix rank-deficient: FitScaling must reject the input
// with a clear error rather than surface a singular-system failure (or, for
// near-duplicate floats, a garbage fit).
func TestFitScalingNeedsDistinctSizes(t *testing.T) {
	_, err := FitScaling([]int{4, 4, 8}, []float64{10.1, 9.9, 6})
	if err == nil {
		t.Fatal("expected error with only 2 distinct P values")
	}
	// Repeated measurements are fine as long as three sizes appear.
	if _, err := FitScaling([]int{2, 2, 4, 8}, []float64{20.1, 19.9, 11, 7}); err != nil {
		t.Fatalf("repeated measurements at distinct sizes rejected: %v", err)
	}
}
