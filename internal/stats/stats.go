// Package stats implements the statistical machinery of the paper's
// analyses: ordinary least squares with r-squared (the scalability-curve
// fits of Figs. 5 and 6 report average r² values), the NIPALS partial
// least squares (PLS1) regression used in Sec. IV-A to identify which
// performance counters explain the Cavium/TX1 performance gap, and the
// speedup-extrapolation model fit.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	if len(xs) == 0 {
		return 0
	}
	return math.Sqrt(s / float64(len(xs)))
}

// solve performs Gaussian elimination with partial pivoting on the n x n
// system a*x = b, destroying its inputs.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// pivot
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-14 {
			return nil, errors.New("stats: singular system")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// LeastSquares fits y ~ X*beta (no implicit intercept: include a column of
// ones in X if one is wanted) by the normal equations and returns beta.
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	if len(x) != len(y) || len(x) == 0 {
		return nil, fmt.Errorf("stats: dimension mismatch: %d rows vs %d targets", len(x), len(y))
	}
	m := len(x[0])
	xtx := make([][]float64, m)
	xty := make([]float64, m)
	for i := range xtx {
		xtx[i] = make([]float64, m)
	}
	for r := range x {
		if len(x[r]) != m {
			return nil, errors.New("stats: ragged design matrix")
		}
		for i := 0; i < m; i++ {
			xty[i] += x[r][i] * y[r]
			for j := 0; j < m; j++ {
				xtx[i][j] += x[r][i] * x[r][j]
			}
		}
	}
	return solve(xtx, xty)
}

// RSquared returns the coefficient of determination of predictions vs
// observations.
func RSquared(observed, predicted []float64) float64 {
	m := Mean(observed)
	var ssRes, ssTot float64
	for i := range observed {
		d := observed[i] - predicted[i]
		ssRes += d * d
		t := observed[i] - m
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// ScalingFit is a fitted strong-scaling runtime model
//
//	T(P) = a + b/P + c*ln(P)
//
// combining Amdahl's serial term (a), the parallelizable term (b/P), and a
// logarithmic communication term (c ln P) — the standard form for
// tree-collective-dominated codes. It is fit to measured (P, T) pairs and
// used to extrapolate the speedup curves of Figs. 5 and 6.
type ScalingFit struct {
	A, B, C float64
	R2      float64
}

// FitScaling fits the model to measured points. At least three distinct P
// values are required — repeated measurements at the same P are welcome,
// but the three basis functions cannot be separated from fewer than three
// distinct cluster sizes.
func FitScaling(ps []int, ts []float64) (ScalingFit, error) {
	if len(ps) != len(ts) || len(ps) < 3 {
		return ScalingFit{}, errors.New("stats: need >= 3 (P, T) points")
	}
	distinct := map[int]bool{}
	for _, p := range ps {
		distinct[p] = true
	}
	if len(distinct) < 3 {
		return ScalingFit{}, fmt.Errorf("stats: need >= 3 distinct P values to fit T(P) = a + b/P + c*ln(P), got %d", len(distinct))
	}
	x := make([][]float64, len(ps))
	for i, p := range ps {
		fp := float64(p)
		x[i] = []float64{1, 1 / fp, math.Log(fp)}
	}
	beta, err := LeastSquares(x, ts)
	if err != nil {
		return ScalingFit{}, err
	}
	fit := ScalingFit{A: beta[0], B: beta[1], C: beta[2]}
	// A negative communication coefficient has no physical meaning (it
	// sends the extrapolated runtime to zero); refit the pure Amdahl form.
	if fit.C < 0 {
		for i := range x {
			x[i] = x[i][:2]
		}
		if beta2, err2 := LeastSquares(x, ts); err2 == nil {
			fit = ScalingFit{A: beta2[0], B: beta2[1]}
		}
	}
	pred := make([]float64, len(ps))
	for i, p := range ps {
		pred[i] = fit.Predict(p)
	}
	fit.R2 = RSquared(ts, pred)
	return fit, nil
}

// Predict returns the modeled runtime at P nodes.
func (f ScalingFit) Predict(p int) float64 {
	fp := float64(p)
	return f.A + f.B/fp + f.C*math.Log(fp)
}

// Speedup returns the modeled speedup at P nodes relative to 1 node,
// clamped to the physically meaningful range [0, P]: an extrapolated
// strong-scaling curve cannot beat linear, and a fit whose runtime crosses
// zero saturates at linear rather than exploding.
func (f ScalingFit) Speedup(p int) float64 {
	t1 := f.Predict(1)
	tp := f.Predict(p)
	if tp <= 0 || t1 <= 0 {
		return float64(p)
	}
	s := t1 / tp
	if s > float64(p) {
		return float64(p)
	}
	if s < 0 {
		return 0
	}
	return s
}
