package stats

import (
	"errors"
	"math"
	"sort"
)

// PLSResult holds a fitted PLS1 regression.
type PLSResult struct {
	// Coeffs are regression coefficients in the original (unstandardized)
	// variable space, one per column of X; Intercept completes the model.
	Coeffs    []float64
	Intercept float64
	// StdCoeffs are the coefficients on standardized variables — the
	// comparable magnitudes used to rank variable importance.
	StdCoeffs []float64
	// XVarianceExplained[k] is the cumulative fraction of X's variance
	// captured by components 0..k. The paper keeps enough components to
	// explain 95% and lands on three.
	XVarianceExplained []float64
	Components         int
}

// PLS1 fits a partial-least-squares regression of y on X with the NIPALS
// algorithm, using up to maxComponents latent components. X rows are
// observations (benchmarks), columns are variables (counters); this is the
// Sec. IV-A methodology: X holds relative counter values of the Cavium
// server vs the TX1 cluster per benchmark and y the relative performance.
func PLS1(x [][]float64, y []float64, maxComponents int) (*PLSResult, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, errors.New("stats: PLS dimension mismatch")
	}
	m := len(x[0])
	if maxComponents > n-1 {
		maxComponents = n - 1
	}
	if maxComponents > m {
		maxComponents = m
	}
	if maxComponents < 1 {
		return nil, errors.New("stats: not enough data for one component")
	}

	// Standardize.
	xm := make([]float64, m)
	xs := make([]float64, m)
	for j := 0; j < m; j++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = x[i][j]
		}
		xm[j] = Mean(col)
		xs[j] = StdDev(col)
		if xs[j] == 0 {
			xs[j] = 1 // constant column carries no information
		}
	}
	ym, ys := Mean(y), StdDev(y)
	if ys == 0 {
		ys = 1
	}
	xx := make([][]float64, n)
	yy := make([]float64, n)
	totVar := 0.0
	for i := 0; i < n; i++ {
		xx[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			xx[i][j] = (x[i][j] - xm[j]) / xs[j]
			totVar += xx[i][j] * xx[i][j]
		}
		yy[i] = (y[i] - ym) / ys
	}

	var ws, ps, qs [][]float64 // weights, X-loadings; qs stored as 1-vectors
	var explained []float64
	removed := 0.0
	for k := 0; k < maxComponents; k++ {
		// w = X'y / ||X'y||
		w := make([]float64, m)
		norm := 0.0
		for j := 0; j < m; j++ {
			for i := 0; i < n; i++ {
				w[j] += xx[i][j] * yy[i]
			}
			norm += w[j] * w[j]
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			break
		}
		for j := range w {
			w[j] /= norm
		}
		// t = Xw
		t := make([]float64, n)
		tt := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				t[i] += xx[i][j] * w[j]
			}
			tt += t[i] * t[i]
		}
		if tt < 1e-12 {
			break
		}
		// p = X't / t't ; q = y't / t't
		p := make([]float64, m)
		q := 0.0
		for j := 0; j < m; j++ {
			for i := 0; i < n; i++ {
				p[j] += xx[i][j] * t[i]
			}
			p[j] /= tt
		}
		for i := 0; i < n; i++ {
			q += yy[i] * t[i]
		}
		q /= tt
		// Deflate.
		comp := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				d := t[i] * p[j]
				xx[i][j] -= d
				comp += d * d
			}
			yy[i] -= t[i] * q
		}
		removed += comp
		ws = append(ws, w)
		ps = append(ps, p)
		qs = append(qs, []float64{q})
		if totVar > 0 {
			explained = append(explained, removed/totVar)
		} else {
			explained = append(explained, 1)
		}
	}
	k := len(ws)
	if k == 0 {
		return nil, errors.New("stats: PLS found no informative component")
	}

	// B_std = W (P'W)^{-1} Q
	ptw := make([][]float64, k)
	for a := 0; a < k; a++ {
		ptw[a] = make([]float64, k)
		for b := 0; b < k; b++ {
			for j := 0; j < m; j++ {
				ptw[a][b] += ps[a][j] * ws[b][j]
			}
		}
	}
	qv := make([]float64, k)
	for a := 0; a < k; a++ {
		qv[a] = qs[a][0]
	}
	// Solve (P'W) z = Q, then B = W z.
	z, err := solve(ptw, qv)
	if err != nil {
		return nil, err
	}
	bStd := make([]float64, m)
	for j := 0; j < m; j++ {
		for a := 0; a < k; a++ {
			bStd[j] += ws[a][j] * z[a]
		}
	}
	res := &PLSResult{
		StdCoeffs:          bStd,
		Coeffs:             make([]float64, m),
		XVarianceExplained: explained,
		Components:         k,
	}
	inter := ym
	for j := 0; j < m; j++ {
		res.Coeffs[j] = bStd[j] * ys / xs[j]
		inter -= res.Coeffs[j] * xm[j]
	}
	res.Intercept = inter
	return res, nil
}

// ComponentsFor95 returns how many components are needed to explain at
// least frac of X's variance (the paper uses 0.95 and finds three).
func (r *PLSResult) ComponentsFor(frac float64) int {
	for i, v := range r.XVarianceExplained {
		if v >= frac {
			return i + 1
		}
	}
	return r.Components
}

// TopVariables returns the indices of the count variables with the largest
// |standardized coefficient|, in decreasing order of importance — the
// paper picks the top three and gets BR_MIS_PRED, INST_SPEC, and the L2
// miss ratio.
func (r *PLSResult) TopVariables(count int) []int {
	idx := make([]int, len(r.StdCoeffs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return math.Abs(r.StdCoeffs[idx[a]]) > math.Abs(r.StdCoeffs[idx[b]])
	})
	if count > len(idx) {
		count = len(idx)
	}
	return idx[:count]
}

// Predict evaluates the regression on one observation.
func (r *PLSResult) Predict(x []float64) float64 {
	y := r.Intercept
	for j, c := range r.Coeffs {
		y += c * x[j]
	}
	return y
}
