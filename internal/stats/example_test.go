package stats_test

import (
	"fmt"

	"clustersoc/internal/stats"
)

// Fit the Fig. 5/6 strong-scaling model to measured runtimes and
// extrapolate past the measured cluster sizes.
func ExampleFitScaling() {
	ps := []int{1, 2, 4, 6, 8}
	// Synthetic runtimes of an Amdahl-shaped code: 1s serial + 40s
	// parallel + a logarithmic collective term.
	truth := stats.ScalingFit{A: 1, B: 40, C: 0.5}
	ts := make([]float64, len(ps))
	for i, p := range ps {
		ts[i] = truth.Predict(p)
	}
	fit, err := stats.FitScaling(ps, ts)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("r2 = %.3f\n", fit.R2)
	fmt.Printf("speedup at 8 nodes: %.2f\n", fit.Speedup(8))
	fmt.Printf("speedup at 64 nodes: %.2f\n", fit.Speedup(64))
	// Output:
	// r2 = 1.000
	// speedup at 8 nodes: 5.82
	// speedup at 64 nodes: 11.07
}

// The Sec. IV-A methodology: PLS finds which counters explain a
// performance gap.
func ExamplePLS1() {
	// Eight benchmarks, three relative counters; the response is driven
	// by the first counter.
	x := [][]float64{
		{3.0, 1.1, 1.0}, {1.2, 1.0, 1.1}, {2.8, 1.2, 1.0}, {1.0, 1.0, 1.2},
		{2.2, 1.1, 1.1}, {1.5, 1.0, 1.0}, {2.6, 1.2, 1.1}, {1.1, 1.0, 1.2},
	}
	y := []float64{2.4, 0.9, 2.3, 0.7, 1.8, 1.1, 2.1, 0.8}
	res, err := stats.PLS1(x, y, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	top := res.TopVariables(1)
	fmt.Printf("dominant variable: %d\n", top[0])
	fmt.Printf("components for 95%%: %d\n", res.ComponentsFor(0.95))
	// Output:
	// dominant variable: 0
	// components for 95%: 2
}
