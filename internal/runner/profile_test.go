package runner

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"

	"clustersoc/internal/network"
)

// TestProfilingDoesNotChangeResults is the observability layer's hard
// guarantee: enabling instrumentation must not move a single simulated
// byte. It compares a plain Execute against ExecuteProfiled on a real
// simulation, both as Go values and as marshalled artifact JSON.
func TestProfilingDoesNotChangeResults(t *testing.T) {
	for _, sc := range []Scenario{
		tinyScenario("hpl", 2, network.GigE),
		tinyScenario("ft", 2, network.TenGigE),
	} {
		plain, err := Execute(sc)
		if err != nil {
			t.Fatal(err)
		}
		profiled, err := ExecuteProfiled(sc)
		if err != nil {
			t.Fatal(err)
		}
		if profiled.Profile == nil {
			t.Fatalf("%s: ExecuteProfiled returned no profile", sc.Workload)
		}

		// Artifact JSON is byte-identical: Profile is json:"-".
		pb, err := json.Marshal(plain)
		if err != nil {
			t.Fatal(err)
		}
		qb, err := json.Marshal(profiled)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pb, qb) {
			t.Fatalf("%s: artifact JSON differs with profiling enabled", sc.Workload)
		}

		// And the in-memory simulated values match exactly.
		profiled.Profile = nil
		if !reflect.DeepEqual(plain, profiled) {
			t.Fatalf("%s: Result differs with profiling enabled", sc.Workload)
		}
	}
}

// TestProfileSimSectionDeterministic re-profiles one scenario and checks
// the simulated section is byte-identical; only the wall section may vary.
func TestProfileSimSectionDeterministic(t *testing.T) {
	sc := tinyScenario("hpl", 2, network.TenGigE)
	a, err := ExecuteProfiled(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecuteProfiled(sc)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := json.Marshal(a.Profile.Sim)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := json.Marshal(b.Profile.Sim)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("profile Sim sections differ across identical runs:\n%s\nvs\n%s", ab, bb)
	}
	if a.Profile.Fingerprint != sc.Fingerprint() {
		t.Fatalf("profile fingerprint = %q, want the scenario's", a.Profile.Fingerprint)
	}
	for _, name := range []string{"sim.events", "cluster.runtime_s", "network.messages"} {
		if a.Profile.Sim.Value(name) <= 0 {
			t.Errorf("profile metric %s = %g, want > 0", name, a.Profile.Sim.Value(name))
		}
	}
	if _, ok := a.Profile.Sim.Get("network.message_size_bytes"); !ok {
		t.Errorf("profile missing the live message-size histogram")
	}
	if a.Profile.Wall == nil || a.Profile.Wall.Note == "" {
		t.Errorf("profile wall section missing or unlabelled: %+v", a.Profile.Wall)
	}
}

// TestCachedProfileShared: duplicate submissions share the cached
// result's profile rather than re-simulating or re-profiling.
func TestCachedProfileShared(t *testing.T) {
	r := New(2)
	r.SetProfiling(true)
	sc := tinyScenario("hpl", 2, network.GigE)
	a, err := r.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Profile == nil || a.Profile != b.Profile {
		t.Fatalf("cached submission did not share the profile: %p vs %p", a.Profile, b.Profile)
	}
	st := r.Stats()
	if st.Simulated != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 simulated / 1 hit", st)
	}
	profs := r.Profiles()
	if len(profs) != 1 || profs[0] != a.Profile {
		t.Fatalf("Profiles() = %d entries, want the one shared profile", len(profs))
	}
}

func TestProfilesSortedByFingerprint(t *testing.T) {
	r := New(2)
	r.SetProfiling(true)
	scs := []Scenario{
		tinyScenario("hpl", 4, network.TenGigE),
		tinyScenario("hpl", 2, network.GigE),
		tinyScenario("ft", 2, network.GigE),
	}
	if _, err := r.RunAll(scs); err != nil {
		t.Fatal(err)
	}
	profs := r.Profiles()
	if len(profs) != 3 {
		t.Fatalf("got %d profiles, want 3", len(profs))
	}
	for i := 1; i < len(profs); i++ {
		if profs[i-1].Fingerprint >= profs[i].Fingerprint {
			t.Fatalf("profiles not sorted by fingerprint at %d", i)
		}
	}
}

// TestProfilingOffLeavesNoProfile: the default run-plane attaches nothing.
func TestProfilingOffLeavesNoProfile(t *testing.T) {
	r := New(1)
	res, err := r.Run(tinyScenario("hpl", 2, network.GigE))
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Fatalf("unprofiled run carries a profile")
	}
	if got := r.Profiles(); len(got) != 0 {
		t.Fatalf("Profiles() = %d entries, want none", len(got))
	}
}

// TestStatsWallAndOccupancy drives a stubbed executor and checks the new
// Stats fields: wall time accumulates per execution and MaxInFlight
// records the worker-occupancy high-water mark.
func TestStatsWallAndOccupancy(t *testing.T) {
	const workers = 3
	var mu sync.Mutex
	inFlight, peak := 0, 0
	r := stubRunner(workers, func(s Scenario) (Result, error) {
		mu.Lock()
		inFlight++
		if inFlight > peak {
			peak = inFlight
		}
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		mu.Lock()
		inFlight--
		mu.Unlock()
		return Result{}, nil
	})
	scs := make([]Scenario, 6)
	for i := range scs {
		scs[i] = tinyScenario("hpl", i+1, network.GigE)
	}
	if _, err := r.RunAll(scs); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.MaxInFlight < 1 || st.MaxInFlight > workers {
		t.Fatalf("MaxInFlight = %d, want within [1, %d]", st.MaxInFlight, workers)
	}
	mu.Lock()
	observed := peak
	mu.Unlock()
	if st.MaxInFlight < observed {
		t.Fatalf("MaxInFlight = %d below executor-observed peak %d", st.MaxInFlight, observed)
	}
	// 6 runs of >= 5ms each accumulate >= 30ms of worker-seconds.
	if st.WallSeconds < 6*0.005 {
		t.Fatalf("WallSeconds = %g, want >= 0.03", st.WallSeconds)
	}
}
