package runner

import (
	"math/rand"
	"reflect"
	"testing"

	"clustersoc/internal/faults"
	"clustersoc/internal/network"
)

// A scenario with a seeded fault plan is as deterministic as a fault-free
// one: sequential reruns and a shuffled parallel batch must produce
// bit-identical results, including every fault statistic. This is the
// injection plane's core contract — all draws come from seeded streams
// inside the single-threaded engine, so worker scheduling cannot reorder
// them.
func TestFaultPlanDeterminism(t *testing.T) {
	// Measure the fault-free runtime first so the plan's scales are
	// meaningful at the test's tiny workload scale.
	base := tinyScenario("jacobi", 2, network.GigE)
	bres, err := Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	T := bres.Runtime

	s := tinyScenario("jacobi", 2, network.GigE)
	s.Cluster.Faults = &faults.Plan{
		Seed:              1234,
		StragglerFraction: 0.5, StragglerFactor: 1.4,
		DerateFraction: 0.5, LinkDerate: 0.5,
		FlapMTBF: T / 4, FlapSeconds: T / 100,
		MessageLossProb: 0.02,
		CrashMTBF:       2 * T, RestartSeconds: T / 50,
		CheckpointInterval: T / 8, CheckpointSeconds: T / 400,
	}

	first, err := Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	if first.Faults == nil {
		t.Fatal("seeded plan produced no fault stats")
	}
	second, err := Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "sequential rerun", s, first.Result, second.Result)
	if !reflect.DeepEqual(first.Faults, second.Faults) {
		t.Fatalf("fault stats differ across sequential reruns:\n first: %+v\nsecond: %+v",
			*first.Faults, *second.Faults)
	}

	// Parallel runner, shuffled batch with duplicates (cache path too).
	rng := rand.New(rand.NewSource(7))
	batch := make([]Scenario, 6)
	for i := range batch {
		batch[i] = s
	}
	rng.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
	got, err := New(4).RunAll(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		assertIdentical(t, "parallel batch", s, got[i].Result, first.Result)
		if !reflect.DeepEqual(got[i].Faults, first.Faults) {
			t.Fatalf("parallel result %d fault stats differ:\n  got: %+v\n want: %+v",
				i, *got[i].Faults, *first.Faults)
		}
	}

	// Fingerprint soundness: the plan must separate this scenario from the
	// fault-free one, or the memoizing runner would hand back the wrong run.
	if s.Fingerprint() == base.Fingerprint() {
		t.Fatal("fault plan does not participate in the scenario fingerprint")
	}
	s2 := s
	p2 := *s.Cluster.Faults
	p2.Seed = 4321
	s2.Cluster.Faults = &p2
	if s2.Fingerprint() == s.Fingerprint() {
		t.Fatal("plan seed does not participate in the scenario fingerprint")
	}
}
