package runner

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"clustersoc/internal/cluster"
	"clustersoc/internal/network"
	"clustersoc/internal/workloads"
)

// tinyScenario is a fast real simulation for cache/equivalence tests.
func tinyScenario(workload string, nodes int, prof network.Profile) Scenario {
	cfg := cluster.TX1Cluster(nodes, prof)
	w, err := workloads.ByName(workload)
	if err != nil {
		panic(err)
	}
	cfg.RanksPerNode = w.RanksPerNode()
	if w.GPUAccelerated() {
		cfg.FileServer = true
	}
	return Scenario{Cluster: cfg, Workload: workload, Config: workloads.Config{Scale: 0.01}}
}

// stubRunner returns a Runner whose executor is the given function —
// no simulation, controlled timing.
func stubRunner(workers int, exec func(Scenario) (Result, error)) *Runner {
	r := New(workers)
	r.exec = func(s Scenario, _, _, _ bool) (Result, error) { return exec(s) }
	return r
}

func TestFingerprintSeparatesScenarios(t *testing.T) {
	a := tinyScenario("hpl", 2, network.GigE)
	b := tinyScenario("hpl", 2, network.TenGigE)
	c := tinyScenario("hpl", 4, network.GigE)
	d := tinyScenario("cg", 2, network.GigE)
	seen := map[string]string{}
	for _, s := range []Scenario{a, b, c, d} {
		fp := s.Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Fatalf("fingerprint collision: %s == %s", prev, fp)
		}
		seen[fp] = fp
	}
	if a.Fingerprint() != tinyScenario("hpl", 2, network.GigE).Fingerprint() {
		t.Fatal("identical scenarios must share a fingerprint")
	}
}

func TestFingerprintCanonicalizesWorkloadConfig(t *testing.T) {
	base := tinyScenario("hpl", 2, network.TenGigE)
	ratio1 := base
	ratio1.Config.GPUWorkRatio = 1.0
	if base.Fingerprint() != ratio1.Fingerprint() {
		t.Error("GPUWorkRatio 0 (default) and 1.0 (all-GPU) must share a fingerprint")
	}
	half := base
	half.Config.GPUWorkRatio = 0.5
	if base.Fingerprint() == half.Fingerprint() {
		t.Error("distinct work ratios must not share a fingerprint")
	}
	colo := base
	colo.Colocated = []Job{{Workload: "hpl-cpu", RanksPerNode: 3, Config: base.Config}}
	if base.Fingerprint() == colo.Fingerprint() {
		t.Error("a collocated run must not share the solo run's fingerprint")
	}
}

func TestCacheAccounting(t *testing.T) {
	var executed int32
	r := stubRunner(2, func(s Scenario) (Result, error) {
		atomic.AddInt32(&executed, 1)
		return Result{Result: cluster.Result{System: s.Workload}}, nil
	})
	a := tinyScenario("hpl", 2, network.GigE)
	b := tinyScenario("cg", 2, network.GigE)
	batch := []Scenario{a, b, a, a, b} // 5 submissions, 2 distinct
	if _, err := r.RunAll(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(a); err != nil { // cross-batch duplicate
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Submitted != 6 || st.Simulated != 2 || st.Hits != 4 {
		t.Errorf("stats = %+v, want {Submitted:6 Hits:4 Simulated:2}", st)
	}
	if got := atomic.LoadInt32(&executed); got != 2 {
		t.Errorf("executor ran %d times, want 2", got)
	}
}

func TestRunAllKeepsSubmissionOrderUnderSlowFirstScenario(t *testing.T) {
	scenarios := make([]Scenario, 8)
	for i := range scenarios {
		scenarios[i] = tinyScenario("ep", i+1, network.GigE)
	}
	r := stubRunner(4, func(s Scenario) (Result, error) {
		if s.Cluster.Nodes == 1 {
			time.Sleep(50 * time.Millisecond) // adversarially slow first submission
		}
		return Result{Result: cluster.Result{Nodes: s.Cluster.Nodes}}, nil
	})
	res, err := r.RunAll(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range res {
		if got.Nodes != i+1 {
			t.Fatalf("res[%d].Nodes = %d, want %d: results not in submission order", i, got.Nodes, i+1)
		}
	}
}

func TestWorkerPoolBoundRespected(t *testing.T) {
	const workers = 3
	var inFlight, peak int32
	r := stubRunner(workers, func(Scenario) (Result, error) {
		n := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		atomic.AddInt32(&inFlight, -1)
		return Result{}, nil
	})
	scenarios := make([]Scenario, 12)
	for i := range scenarios {
		scenarios[i] = tinyScenario("ep", i+1, network.GigE)
	}
	if _, err := r.RunAll(scenarios); err != nil {
		t.Fatal(err)
	}
	got := atomic.LoadInt32(&peak)
	if got > workers {
		t.Errorf("observed %d concurrent executions, pool bound is %d", got, workers)
	}
	if got < 2 {
		t.Errorf("observed %d concurrent executions, expected the pool to overlap independent scenarios", got)
	}
}

// TestParallelPoolOverlapsWallTime demonstrates the run-plane's speedup
// mechanism independently of host core count: with a sleeping executor,
// four distinct scenarios finish in ~1 slot on 4 workers vs ~4 slots on
// 1 worker.
func TestParallelPoolOverlapsWallTime(t *testing.T) {
	const slot = 40 * time.Millisecond
	sleepy := func(Scenario) (Result, error) {
		time.Sleep(slot)
		return Result{}, nil
	}
	scenarios := make([]Scenario, 4)
	for i := range scenarios {
		scenarios[i] = tinyScenario("ep", i+1, network.GigE)
	}
	run := func(workers int) time.Duration {
		r := stubRunner(workers, sleepy)
		start := time.Now()
		if _, err := r.RunAll(scenarios); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	seq := run(1)
	par := run(4)
	if par >= seq {
		t.Errorf("4 workers (%v) not faster than 1 worker (%v) on independent scenarios", par, seq)
	}
	if par > 3*slot {
		t.Errorf("4 workers took %v for 4 x %v scenarios; pool is not overlapping them", par, slot)
	}
}

func TestRunAllReportsFirstErrorInSubmissionOrder(t *testing.T) {
	r := stubRunner(2, func(s Scenario) (Result, error) {
		if s.Cluster.Nodes%2 == 0 {
			return Result{}, fmt.Errorf("boom at %d nodes", s.Cluster.Nodes)
		}
		return Result{}, nil
	})
	var scenarios []Scenario
	for i := 1; i <= 6; i++ {
		scenarios = append(scenarios, tinyScenario("ep", i, network.GigE))
	}
	_, err := r.RunAll(scenarios)
	if err == nil || err.Error() != "boom at 2 nodes" {
		t.Errorf("err = %v, want the first failing submission's error (boom at 2 nodes)", err)
	}
}

func TestUnknownWorkloadFails(t *testing.T) {
	s := tinyScenario("ep", 2, network.GigE)
	s.Workload = "no-such-workload"
	if _, err := New(1).Run(s); err == nil {
		t.Fatal("expected an error for an unregistered workload")
	}
}

// TestBatchEqualsNaive is the testing/quick property: for any sequence
// of picks from a scenario palette, the deduped concurrent batch returns
// exactly what naive one-at-a-time Execute calls return.
func TestBatchEqualsNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates real scenarios")
	}
	palette := []Scenario{
		tinyScenario("ep", 1, network.GigE),
		tinyScenario("ep", 2, network.TenGigE),
		tinyScenario("cg", 2, network.GigE),
		tinyScenario("hpl", 2, network.TenGigE),
	}
	naive := make([]Result, len(palette))
	for i, s := range palette {
		var err error
		naive[i], err = Execute(s)
		if err != nil {
			t.Fatal(err)
		}
	}
	r := New(4)
	property := func(picks []uint8) bool {
		if len(picks) > 12 {
			picks = picks[:12]
		}
		var batch []Scenario
		var want []Result
		for _, p := range picks {
			i := int(p) % len(palette)
			batch = append(batch, palette[i])
			want = append(want, naive[i])
		}
		got, err := r.RunAll(batch)
		if err != nil {
			return false
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentRunSharesInFlightExecution checks the join path: two
// goroutines submitting the same fingerprint while the first is still
// executing must share one execution.
func TestConcurrentRunSharesInFlightExecution(t *testing.T) {
	var executed int32
	release := make(chan struct{})
	r := stubRunner(4, func(Scenario) (Result, error) {
		atomic.AddInt32(&executed, 1)
		<-release
		return Result{}, nil
	})
	s := tinyScenario("ep", 2, network.GigE)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Run(s); err != nil {
				t.Error(err)
			}
		}()
	}
	for r.Stats().Submitted < 4 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := atomic.LoadInt32(&executed); got != 1 {
		t.Errorf("executor ran %d times for one fingerprint, want 1", got)
	}
	st := r.Stats()
	if st.Hits != 3 || st.Simulated != 1 {
		t.Errorf("stats = %+v, want 3 hits joining 1 simulation", st)
	}
}
