package runner

import (
	"strings"
	"testing"

	"clustersoc/internal/network"
)

// TestCheckedExecutionByteIdentical locks in the simcheck contract: the
// audit is read-only, so a checked execution returns bit-identical
// results to an unchecked one, and a checking run-plane matches a plain
// one scenario for scenario.
func TestCheckedExecutionByteIdentical(t *testing.T) {
	scenarios := []Scenario{
		tinyScenario("hpl", 4, network.TenGigE),
		tinyScenario("jacobi", 2, network.GigE),
		tinyScenario("cg", 3, network.TenGigE),
		tinyScenario("ep", 1, network.GigE),
	}
	for _, s := range scenarios {
		plain, err := Execute(s)
		if err != nil {
			t.Fatal(err)
		}
		checked, err := ExecuteChecked(s)
		if err != nil {
			t.Fatalf("%s/%d failed its audit: %v", s.Workload, s.Cluster.Nodes, err)
		}
		assertIdentical(t, "checked execution", s, checked.Result, plain.Result)
	}

	r := New(2)
	r.SetChecking(true)
	results, err := r.RunAll(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scenarios {
		plain, _ := Execute(s)
		assertIdentical(t, "checking run-plane", s, results[i].Result, plain.Result)
	}
	if st := r.Stats(); st.Audited != len(scenarios) {
		t.Fatalf("Audited = %d, want %d (once per distinct fingerprint)", st.Audited, len(scenarios))
	}
}

// Duplicate submissions join the cached result: the audit runs once per
// fingerprint, not once per submission.
func TestAuditOncePerFingerprint(t *testing.T) {
	r := New(2)
	r.SetChecking(true)
	s := tinyScenario("cg", 2, network.GigE)
	if _, err := r.Run(s); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(s); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Simulated != 1 || st.Audited != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 simulated, 1 audited, 1 cache hit", st)
	}
}

// An audit failure must carry the scenario's identity so a batch failure
// points at the offending run.
func TestCheckedFailureNamesScenario(t *testing.T) {
	r := New(1)
	r.SetChecking(true)
	s := tinyScenario("hpl", 2, network.GigE)
	sawChecked := false
	r.exec = func(s Scenario, _, checked, _ bool) (Result, error) {
		sawChecked = checked
		return defaultExec(s, false, checked, false)
	}
	if _, err := r.Run(s); err != nil {
		t.Fatal(err)
	}
	if !sawChecked {
		t.Fatal("SetChecking(true) did not reach the executor")
	}
	// And the real executor wraps violations with the scenario name: drive
	// it through a scenario that cannot exist to confirm the plumbing
	// returns errors (the audit-failure path shares it).
	if _, err := Execute(Scenario{Workload: "no-such-workload"}); err == nil || !strings.Contains(err.Error(), "no-such-workload") {
		t.Fatalf("executor error plumbing broken: %v", err)
	}
}
