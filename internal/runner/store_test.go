package runner

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"clustersoc/internal/faults"
	"clustersoc/internal/network"
	"clustersoc/internal/store"
	"clustersoc/internal/workloads"
)

// openStore opens a fresh (or shared) store for tests, with polling fast
// enough that singleflight waits resolve in milliseconds.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.SetPollInterval(time.Millisecond)
	return st
}

// TestStoreTierServesAcrossRunners is the tentpole property: a scenario
// simulated by one Runner is served to a completely fresh Runner (a new
// process, as far as the cache is concerned) by decoding the persistent
// entry — zero simulations, identical Result.
func TestStoreTierServesAcrossRunners(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScenario("hpl", 2, network.TenGigE)

	r1 := New(1)
	r1.SetStore(openStore(t, dir))
	want, err := r1.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	st1 := r1.Stats()
	if st1.Simulated != 1 || st1.StoreMisses != 1 || st1.StoreWrites != 1 || st1.StoreHits != 0 {
		t.Fatalf("cold stats: %+v", st1)
	}

	r2 := New(1)
	r2.SetStore(openStore(t, dir))
	got, err := r2.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	st2 := r2.Stats()
	if st2.Simulated != 0 || st2.StoreHits != 1 || st2.StoreMisses != 0 || st2.StoreWrites != 0 {
		t.Fatalf("warm stats: %+v", st2)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("stored result differs from the simulated one")
	}
	if got.Events == 0 || got.Events != want.Events {
		t.Fatalf("Events must survive the store round trip: got %d, want %d", got.Events, want.Events)
	}
}

// TestStoreTierRoundTripsTracedRun covers the heavyweight field: a
// traced scenario's full Extrae-style trace must decode bit-equal, since
// cmd/replay and the scalability methodology consume it.
func TestStoreTierRoundTripsTracedRun(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScenario("cg", 2, network.TenGigE)
	sc.Cluster.Traced = true

	r1 := New(1)
	r1.SetStore(openStore(t, dir))
	want, err := r1.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if want.Trace == nil || len(want.Trace.Ranks) == 0 {
		t.Fatal("setup: traced run produced no trace")
	}
	r2 := New(1)
	r2.SetStore(openStore(t, dir))
	got, err := r2.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats().Simulated != 0 {
		t.Fatal("warm traced run must not simulate")
	}
	if !reflect.DeepEqual(want.Trace, got.Trace) {
		t.Fatal("trace changed in the store round trip")
	}
}

// mangleEntry rewrites the single *.entry file under dir with mut.
func mangleEntry(t *testing.T, dir string, mut func([]byte) []byte) {
	t.Helper()
	var path string
	err := filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && strings.HasSuffix(p, ".entry") {
			path = p
		}
		return err
	})
	if err != nil || path == "" {
		t.Fatalf("no entry file under %s (err %v)", dir, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mut(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreCorruptEntryFallsBackToSimulation is the corruption satellite
// at the run-plane level: truncated entries, zero-byte entries, wrong
// version tags, and garbage payloads each read as a miss, get counted
// corrupt, and are repaired by simulate-and-rewrite — after which a
// fresh Runner hits.
func TestStoreCorruptEntryFallsBackToSimulation(t *testing.T) {
	sc := tinyScenario("hpl", 2, network.GigE)
	fp := sc.Fingerprint()
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string, st *store.Store)
	}{
		{"truncated entry", func(t *testing.T, dir string, _ *store.Store) {
			mangleEntry(t, dir, func(d []byte) []byte { return d[:len(d)/2] })
		}},
		{"zero-byte entry", func(t *testing.T, dir string, _ *store.Store) {
			mangleEntry(t, dir, func([]byte) []byte { return nil })
		}},
		{"wrong version tag", func(t *testing.T, dir string, _ *store.Store) {
			mangleEntry(t, dir, func(d []byte) []byte {
				return []byte(strings.Replace(string(d), "clustersoc-store v1 ", "clustersoc-store v9 ", 1))
			})
		}},
		{"valid container, garbage JSON payload", func(t *testing.T, _ string, st *store.Store) {
			if err := st.Put(fp, []byte("{this is not json")); err != nil {
				t.Fatal(err)
			}
		}},
		{"valid entry for the wrong fingerprint", func(t *testing.T, _ string, st *store.Store) {
			other := tinyScenario("cg", 2, network.GigE)
			data, err := encodeStored(other.Fingerprint(), Result{})
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Put(fp, data); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			seed := New(1)
			seed.SetStore(openStore(t, dir))
			want, err := seed.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, dir, seed.Store())

			r := New(1)
			r.SetStore(openStore(t, dir))
			got, err := r.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			st := r.Stats()
			if st.StoreCorrupt != 1 {
				t.Fatalf("StoreCorrupt = %d, want 1 (%+v)", st.StoreCorrupt, st)
			}
			if st.Simulated != 1 || st.StoreWrites != 1 || st.StoreHits != 0 {
				t.Fatalf("corrupt entry must simulate-and-rewrite: %+v", st)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatal("re-simulated result differs")
			}
			// The rewrite repaired the entry: a fresh Runner now hits.
			r3 := New(1)
			r3.SetStore(openStore(t, dir))
			again, err := r3.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if r3.Stats().StoreHits != 1 || r3.Stats().Simulated != 0 {
				t.Fatalf("repaired entry must serve: %+v", r3.Stats())
			}
			if !reflect.DeepEqual(want, again) {
				t.Fatal("repaired entry decodes to a different result")
			}
		})
	}
}

// TestStoreConcurrentRunnersSingleflight submits the same scenario to
// two Runner instances sharing one store directory at the same time —
// the cross-process sweep case. The per-fingerprint lock file must
// collapse the pair to one simulation, with the other side decoding the
// winner's entry. Run under -race in CI.
func TestStoreConcurrentRunnersSingleflight(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScenario("ep", 2, network.TenGigE)

	runners := []*Runner{New(1), New(1)}
	for _, r := range runners {
		r.SetStore(openStore(t, dir))
	}
	results := make([]Result, len(runners))
	errs := make([]error, len(runners))
	var wg sync.WaitGroup
	for i, r := range runners {
		wg.Add(1)
		go func(i int, r *Runner) {
			defer wg.Done()
			results[i], errs[i] = r.Run(sc)
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("runner %d: %v", i, err)
		}
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatal("concurrent runners disagree on the result")
	}
	simulated, served := 0, 0
	for _, r := range runners {
		st := r.Stats()
		simulated += st.Simulated
		served += st.StoreHits
	}
	if simulated != 1 {
		t.Fatalf("cross-process singleflight must simulate exactly once, simulated %d times", simulated)
	}
	if served != 1 {
		t.Fatalf("the losing runner must be served from the store, served=%d", served)
	}
}

// TestStoreTierWithProfiling pins the observer upgrade protocol: an
// entry persisted without a profile cannot serve a profiling run — the
// run re-simulates with the observer attached and upgrades the entry,
// after which profiled and unprofiled requests both hit.
func TestStoreTierWithProfiling(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScenario("hpl", 2, network.TenGigE)

	plain := New(1)
	plain.SetStore(openStore(t, dir))
	if _, err := plain.Run(sc); err != nil {
		t.Fatal(err)
	}

	prof := New(1)
	prof.SetStore(openStore(t, dir))
	prof.SetProfiling(true)
	res, err := prof.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	st := prof.Stats()
	if st.Simulated != 1 || st.StoreMisses != 1 || st.StoreWrites != 1 {
		t.Fatalf("unprofiled entry must not serve a profiling run: %+v", st)
	}
	if res.Profile == nil {
		t.Fatal("profiling run lost its profile")
	}

	// The upgraded entry now serves profiling runs from disk, profile
	// included — the -profile warm replay is free.
	prof2 := New(1)
	prof2.SetStore(openStore(t, dir))
	prof2.SetProfiling(true)
	res2, err := prof2.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if prof2.Stats().StoreHits != 1 || prof2.Stats().Simulated != 0 {
		t.Fatalf("upgraded entry must serve profiled run: %+v", prof2.Stats())
	}
	if res2.Profile == nil {
		t.Fatal("stored profile not decoded")
	}
	if !reflect.DeepEqual(res.Profile.Sim, res2.Profile.Sim) {
		t.Fatal("stored profile's simulated section differs")
	}
	if len(prof2.Profiles()) != 1 {
		t.Fatal("store-served profile must appear in Profiles() for the sidecar writer")
	}
}

// TestStoreTierWithCritPath mirrors the profiling upgrade for the
// critical-path record, and checks the read-merge: upgrading the entry
// with a critpath report must not drop the profile already stored.
func TestStoreTierWithCritPath(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScenario("hpl", 2, network.TenGigE)

	prof := New(1)
	prof.SetStore(openStore(t, dir))
	prof.SetProfiling(true)
	if _, err := prof.Run(sc); err != nil {
		t.Fatal(err)
	}

	cp := New(1)
	cp.SetStore(openStore(t, dir))
	cp.SetCritPath(true)
	res, err := cp.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Stats().Simulated != 1 {
		t.Fatal("entry without a critpath record must not serve a critpath run")
	}
	if res.CritPath == nil {
		t.Fatal("critpath run lost its report")
	}

	// The upgrade merged: one entry now carries profile AND report.
	both := New(1)
	both.SetStore(openStore(t, dir))
	both.SetProfiling(true)
	both.SetCritPath(true)
	res2, err := both.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if both.Stats().StoreHits != 1 || both.Stats().Simulated != 0 {
		t.Fatalf("merged entry must serve both observers: %+v", both.Stats())
	}
	if res2.Profile == nil || res2.CritPath == nil {
		t.Fatalf("merge dropped a record: profile=%v critpath=%v", res2.Profile != nil, res2.CritPath != nil)
	}
	if len(both.Reports()) != 1 {
		t.Fatal("store-served report must appear in Reports() for the sidecar writer")
	}
}

// TestStoreTierWithChecking pins the audit rule: the simcheck audit
// validates a live simulation, so a checking run never decodes from the
// store — it simulates, audits, and rewrites (keeping stored observer
// records through the read-merge).
func TestStoreTierWithChecking(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScenario("hpl", 2, network.TenGigE)

	prof := New(1)
	prof.SetStore(openStore(t, dir))
	prof.SetProfiling(true)
	if _, err := prof.Run(sc); err != nil {
		t.Fatal(err)
	}

	chk := New(1)
	chk.SetStore(openStore(t, dir))
	chk.SetChecking(true)
	if _, err := chk.Run(sc); err != nil {
		t.Fatal(err)
	}
	st := chk.Stats()
	if st.StoreHits != 0 || st.Simulated != 1 || st.Audited != 1 {
		t.Fatalf("checking must bypass store reads and audit a live run: %+v", st)
	}
	if st.StoreMisses != 0 {
		t.Fatalf("bypassed reads must not count as misses: %+v", st)
	}
	if st.StoreWrites != 1 {
		t.Fatalf("checked execution must still persist: %+v", st)
	}

	// The checked rewrite kept the stored profile.
	prof2 := New(1)
	prof2.SetStore(openStore(t, dir))
	prof2.SetProfiling(true)
	res, err := prof2.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if prof2.Stats().StoreHits != 1 || res.Profile == nil {
		t.Fatalf("checked rewrite dropped the stored profile: %+v", prof2.Stats())
	}
}

// TestStoreInMemoryTierWins: duplicate submissions on one Runner join
// the in-memory entry and never touch the disk tier again.
func TestStoreInMemoryTierWins(t *testing.T) {
	r := New(1)
	r.SetStore(openStore(t, t.TempDir()))
	sc := tinyScenario("hpl", 2, network.GigE)
	first, err := r.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Hits != 1 {
		t.Fatalf("second submission must hit the memory tier: %+v", st)
	}
	if st.StoreMisses != 1 || st.StoreHits != 0 {
		t.Fatalf("disk tier must see exactly the first submission: %+v", st)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("memory-tier hit returned a different result")
	}
}

// TestStoreFingerprintCoverage guards the store against silent key
// collisions: every axis that changes a simulation's outcome — fault
// plans and their seeds, workload parameters, network configuration,
// cluster shape, observer-relevant switches — must move the fingerprint,
// and identical configurations must round-trip to the identical key.
func TestStoreFingerprintCoverage(t *testing.T) {
	base := func() Scenario { return tinyScenario("hpl", 2, network.GigE) }
	variants := map[string]func() Scenario{
		"base": base,
		"fault plan seed 1": func() Scenario {
			s := base()
			s.Cluster.Faults = &faults.Plan{Seed: 1, StragglerFraction: 0.25, StragglerFactor: 1.5}
			return s
		},
		"fault plan seed 2": func() Scenario {
			s := base()
			s.Cluster.Faults = &faults.Plan{Seed: 2, StragglerFraction: 0.25, StragglerFactor: 1.5}
			return s
		},
		"fault plan different class": func() Scenario {
			s := base()
			s.Cluster.Faults = &faults.Plan{Seed: 1, MessageLossProb: 0.01}
			return s
		},
		"fault plan different checkpoint interval": func() Scenario {
			s := base()
			s.Cluster.Faults = &faults.Plan{Seed: 1, CrashMTBF: 3600, CheckpointInterval: 60}
			return s
		},
		"workload scale": func() Scenario {
			s := base()
			s.Config.Scale = 0.02
			return s
		},
		"workload gpu ratio": func() Scenario {
			s := base()
			s.Config.GPUWorkRatio = 0.5
			return s
		},
		"workload half precision": func() Scenario {
			s := base()
			s.Config.HalfPrecision = true
			return s
		},
		"workload weak scaling": func() Scenario {
			s := base()
			s.Config.WeakScaling = true
			return s
		},
		"other workload": func() Scenario {
			s := base()
			s.Workload = "cg"
			return s
		},
		"network 10GbE": func() Scenario { return tinyScenario("hpl", 2, network.TenGigE) },
		"network custom latency": func() Scenario {
			s := base()
			s.Cluster.Network.Latency *= 2
			return s
		},
		"network custom throughput": func() Scenario {
			s := base()
			s.Cluster.Network.Throughput *= 2
			return s
		},
		"more nodes": func() Scenario { return tinyScenario("hpl", 4, network.GigE) },
		"rank density": func() Scenario {
			s := base()
			s.Cluster.RanksPerNode = 2
			return s
		},
		"traced": func() Scenario {
			s := base()
			s.Cluster.Traced = true
			return s
		},
		"gpudirect": func() Scenario {
			s := base()
			s.Cluster.GPUDirect = true
			return s
		},
		"colocated job": func() Scenario {
			s := base()
			s.Colocated = []Job{{Workload: "hpl-cpu", RanksPerNode: 4, Config: workloads.Config{Scale: 0.01}}}
			return s
		},
	}
	seen := map[string]string{}
	for name, mk := range variants {
		fp := mk().Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision between %q and %q:\n%s", prev, name, fp)
		}
		seen[fp] = name
		// Identical construction must round-trip to the identical key —
		// the property that makes cross-process reuse possible at all.
		if mk().Fingerprint() != fp {
			t.Fatalf("%q does not fingerprint deterministically", name)
		}
	}
}

// TestStoreWarmSpeedGuard is the CI perf guard for the tentpole claim: a
// warm store turns a simulation into pure decode, and on the reference
// scenario the decode must be at least 10x faster than simulating.
func TestStoreWarmSpeedGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("timing guard: set BENCH_GUARD=1 to run")
	}
	dir := t.TempDir()
	sc := tinyScenario("cg", 8, network.TenGigE)
	sc.Config.Scale = 0.04

	cold := New(1)
	cold.SetStore(openStore(t, dir))
	start := time.Now()
	if _, err := cold.Run(sc); err != nil {
		t.Fatal(err)
	}
	coldWall := time.Since(start)

	// Best of five warm reads, each through a fresh Runner (cold memory
	// tier, warm disk tier) — the cross-process regeneration case.
	warmWall := time.Duration(1 << 62)
	for i := 0; i < 5; i++ {
		r := New(1)
		r.SetStore(openStore(t, dir))
		start = time.Now()
		if _, err := r.Run(sc); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < warmWall {
			warmWall = d
		}
		if r.Stats().Simulated != 0 {
			t.Fatal("guard invalid: warm read simulated")
		}
	}
	ratio := float64(coldWall) / float64(warmWall)
	t.Logf("cold %v, warm %v: %.1fx", coldWall, warmWall, ratio)
	if ratio < 10 {
		t.Fatalf("warm store read only %.1fx faster than simulating (want >= 10x)", ratio)
	}
}

// BenchmarkStoreRoundTrip pins the store overhead added to the cold
// path: encode + atomic write + read + verify + decode of one real
// result per iteration.
func BenchmarkStoreRoundTrip(b *testing.B) {
	sc := tinyScenario("hpl", 2, network.TenGigE)
	res, err := Execute(sc)
	if err != nil {
		b.Fatal(err)
	}
	fp := sc.Fingerprint()
	st, err := OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := encodeStored(fp, res)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Put(fp, data); err != nil {
			b.Fatal(err)
		}
		back, err := st.Get(fp)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := decodeStored(back, fp); err != nil {
			b.Fatal(err)
		}
	}
}
