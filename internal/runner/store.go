// The persistent second cache tier: under the in-memory fingerprint map
// sits an optional content-addressed on-disk store (internal/store).
// Results are bit-deterministic, so a stored entry is valid forever — a
// warm store turns full artifact regeneration into pure decode, and the
// store's per-key lock files extend the run-plane's singleflight across
// processes: N concurrent sweeps of one scenario grid simulate each
// scenario once between them.
package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"clustersoc/internal/critpath"
	"clustersoc/internal/obs"
	"clustersoc/internal/store"
)

// StoreSchemaVersion is the persisted-result schema. Bump it whenever
// the JSON encoding of a stored entry changes meaning — Result gaining,
// losing, or reinterpreting a field; obs.Profile or critpath.Report
// schema changes; anything that would make an old entry decode into a
// different value than a fresh simulation produces. Bumping re-addresses
// every key, so old entries become unreachable instead of wrong.
const StoreSchemaVersion = 1

// OpenStore opens (creating if needed) a persistent result store rooted
// at dir, addressed with the run-plane's current result schema.
func OpenStore(dir string) (*store.Store, error) {
	return store.Open(dir, StoreSchemaVersion)
}

// SetStore attaches a persistent store as the Runner's second cache
// tier: lookups fall through the in-memory map to the store, and every
// executed scenario is persisted. Attach it before submitting work.
// Entries are shared across processes and runs — the store never
// invalidates, because identical fingerprints produce identical results.
func (r *Runner) SetStore(st *store.Store) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = st
}

// Store returns the attached persistent store (nil when none).
func (r *Runner) Store() *store.Store {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store
}

// storedEntry is the persisted form of one scenario's Result. The
// fields Result excludes from JSON on purpose (Events is a property of
// the simulator, Profile and CritPath live in sidecars) are first-class
// here, so a store hit reconstructs the full in-memory Result — and
// -profile/-critpath replays against a warm store are free.
type storedEntry struct {
	Fingerprint string           `json:"fingerprint"`
	Events      uint64           `json:"events"`
	Result      Result           `json:"result"`
	Profile     *obs.Profile     `json:"profile,omitempty"`
	CritPath    *critpath.Report `json:"critpath,omitempty"`
}

// result reassembles the in-memory Result from a decoded entry.
func (e *storedEntry) result() Result {
	res := e.Result
	res.Events = e.Events
	res.Profile = e.Profile
	res.CritPath = e.CritPath
	return res
}

// encodeStored serializes a Result for the store.
func encodeStored(fp string, res Result) ([]byte, error) {
	e := storedEntry{
		Fingerprint: fp,
		Events:      res.Events,
		Result:      res,
		Profile:     res.Profile,
		CritPath:    res.CritPath,
	}
	return json.Marshal(e)
}

// decodeStored parses a stored payload and verifies it echoes the
// requested fingerprint — the guard against an (astronomically
// unlikely) content-address collision or a misfiled entry.
func decodeStored(data []byte, fp string) (*storedEntry, error) {
	var e storedEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("runner: stored entry undecodable: %w", err)
	}
	if e.Fingerprint != fp {
		return nil, fmt.Errorf("runner: stored entry fingerprint mismatch (got %q)", e.Fingerprint)
	}
	return &e, nil
}

// runTiered resolves one claimed fingerprint through the store tier:
// decode a servable entry, or take the cross-process lock, simulate,
// and persist. Checking always simulates (the simcheck audit needs the
// live cluster, not a decoded result); profiling/critpath requests are
// served from the store only when the entry carries the corresponding
// record, and an execution forced by a missing record rewrites the
// entry with the record added (read-merge keeps the other one).
func (r *Runner) runTiered(s Scenario, fp string, st *store.Store, profiled, checked, critpathOn bool) (Result, string, error) {
	var release func()
	if st != nil {
		if res, ok := r.tryLoad(st, fp, profiled, checked, critpathOn, false); ok {
			return res, SourceStore, nil
		}
		// Cross-process singleflight: take the key's lock, or wait for
		// the holder and decode the entry it persisted (holders persist
		// before releasing, so a clean release means the entry is there).
		// Both the wait and the stale-steal inside TryLock are bounded —
		// worst case we simulate without the lock, which is merely
		// duplicated work installing identical bytes. Re-checks after
		// waiting or winning the lock are quiet so one submission counts
		// at most one store miss.
		//
		// The loop itself consults the deadline: TryLock can fail without
		// leaving a lock file on disk (read-only or full store directory,
		// a store in read-only mode), in which case WaitUnlocked returns
		// true immediately and the load keeps missing — without the
		// deadline check (and the no-holder fast path below) that spun
		// forever.
		deadline := time.Now().Add(st.LockWait())
		for release == nil {
			rel, ok := st.TryLock(fp)
			if ok {
				release = rel
				// Another process may have persisted and released between
				// our first load and the lock; serve that entry.
				if res, ok := r.tryLoad(st, fp, profiled, checked, critpathOn, true); ok {
					release()
					return res, SourceStore, nil
				}
				break
			}
			if time.Now().After(deadline) {
				break // out of patience: simulate without the lock
			}
			if !st.WaitUnlocked(fp, deadline) {
				break // stuck or stale holder: simulate without the lock
			}
			if res, ok := r.tryLoad(st, fp, profiled, checked, critpathOn, true); ok {
				return res, SourceStore, nil
			}
			if !st.Locked(fp) {
				// TryLock failed, yet no lock file exists and there is no
				// entry to serve: the filesystem is refusing locks, and
				// there is no holder to wait for. Simulate without one.
				break
			}
		}
	}
	res, err := r.executeCounted(s, profiled, checked, critpathOn)
	if err == nil && st != nil {
		r.persist(st, fp, res, release != nil)
	}
	if release != nil {
		release()
	}
	return res, SourceSimulated, err
}

// tryLoad attempts to serve fp from the store. Checking bypasses reads
// entirely (the audit needs a live simulation); a corrupt container or
// undecodable payload counts corrupt and falls back to simulation (the
// rewrite repairs the entry). A quiet load is a singleflight re-check:
// it never counts a miss — the submission already counted one — and
// reads through Peek so the store's own counters stay per-submission.
func (r *Runner) tryLoad(st *store.Store, fp string, profiled, checked, critpathOn, quiet bool) (Result, bool) {
	if checked {
		return Result{}, false
	}
	var data []byte
	var err error
	if quiet {
		data, err = st.Peek(fp)
	} else {
		data, err = st.Get(fp)
	}
	if err != nil {
		if !quiet {
			r.mu.Lock()
			if errors.Is(err, store.ErrCorrupt) {
				r.stats.StoreCorrupt++
			}
			r.stats.StoreMisses++
			r.mu.Unlock()
		}
		return Result{}, false
	}
	e, err := decodeStored(data, fp)
	if err != nil {
		// Payload-level corruption is real whichever load saw it.
		st.Invalidate(fp)
		r.mu.Lock()
		r.stats.StoreCorrupt++
		if !quiet {
			r.stats.StoreMisses++
		}
		r.mu.Unlock()
		return Result{}, false
	}
	if (profiled && e.Profile == nil) || (critpathOn && e.CritPath == nil) {
		// The entry predates the requested observer record; simulate with
		// the observer attached and upgrade the entry.
		if !quiet {
			r.mu.Lock()
			r.stats.StoreMisses++
			r.mu.Unlock()
		}
		return Result{}, false
	}
	r.mu.Lock()
	r.stats.StoreHits++
	r.mu.Unlock()
	return e.result(), true
}

// persist writes res under fp, carrying forward any observer record the
// existing entry has that this execution did not produce (results are
// deterministic, so records from different executions are coherent).
// Persistence is best-effort: an encode or write failure leaves the
// store cold for this key, never wrong.
//
// The read-merge is a check-then-act, so two concurrent upgraders (one
// adding a Profile, one adding a CritPath) could each Peek before the
// other's Put and the last writer would drop the other's record. Three
// defenses close that: writers that do not already hold the key's
// singleflight lock take it here when it is free, serializing the merge;
// the merge re-peeks immediately before the Put; and after the Put the
// writer re-reads the entry and, on a detected downgrade (the current
// entry lacking a record this writer knows about), re-merges and
// rewrites. Two writers that both fail to take the lock can still in
// principle interleave pathologically — the residual loss is an optional
// observer record (regenerable, never a wrong result), and every rewrite
// converges toward the union.
func (r *Runner) persist(st *store.Store, fp string, res Result, locked bool) {
	if !locked {
		if rel, ok := st.TryLock(fp); ok {
			locked = true
			defer rel()
		}
	}
	// Re-peek and merge (under the key lock when we hold it): fill the
	// records this execution did not produce from the current entry.
	merge := func() {
		if res.Profile != nil && res.CritPath != nil {
			return
		}
		if data, err := st.Peek(fp); err == nil {
			if prior, err := decodeStored(data, fp); err == nil {
				if res.Profile == nil {
					res.Profile = prior.Profile
				}
				if res.CritPath == nil {
					res.CritPath = prior.CritPath
				}
			}
		}
	}
	write := func() bool {
		data, err := encodeStored(fp, res)
		if err != nil {
			return false
		}
		if st.Put(fp, data) != nil {
			return false
		}
		r.mu.Lock()
		r.stats.StoreWrites++
		r.mu.Unlock()
		return true
	}
	merge()
	if r.persistPrePut != nil {
		r.persistPrePut()
	}
	if !write() {
		return
	}
	// Downgrade detection: if a concurrent writer replaced the entry with
	// one missing a record we hold, merge its records with ours and
	// rewrite. Bounded — each pass only fires when the entry on disk
	// lost information relative to this writer.
	for attempt := 0; attempt < 4; attempt++ {
		if r.persistPreVerify != nil {
			r.persistPreVerify()
		}
		data, err := st.Peek(fp)
		if err != nil {
			return // unreadable or gone: nothing to verify against
		}
		cur, err := decodeStored(data, fp)
		if err != nil {
			return
		}
		if (res.Profile == nil || cur.Profile != nil) && (res.CritPath == nil || cur.CritPath != nil) {
			return // the installed entry covers every record we know about
		}
		if res.Profile == nil {
			res.Profile = cur.Profile
		}
		if res.CritPath == nil {
			res.CritPath = cur.CritPath
		}
		if !write() {
			return
		}
	}
}
