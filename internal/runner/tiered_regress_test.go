package runner

import (
	"sync"
	"testing"
	"time"

	"clustersoc/internal/critpath"
	"clustersoc/internal/network"
	"clustersoc/internal/obs"
)

// TestTieredRunFallsThroughOnUnwritableStore is the busy-spin
// regression: when TryLock persistently fails with no lock file on disk
// (a read-only or full store directory — modeled here by the store's
// read-only mode, which declines lock creation exactly the way EROFS
// does), WaitUnlocked returns true immediately and the load keeps
// missing. Before the fix, the `for release == nil` loop retried that
// cycle forever without consulting the deadline; now it detects that
// there is no holder to wait for and falls through to simulation.
func TestTieredRunFallsThroughOnUnwritableStore(t *testing.T) {
	st := openStore(t, t.TempDir())
	st.SetReadOnly(true)
	// A generous lock wait: the fix must not even burn this much — the
	// no-holder fast path breaks out on the first cycle.
	st.SetLockWait(time.Minute)

	r := New(1)
	r.SetStore(st)
	sc := tinyScenario("cg", 2, network.TenGigE)

	type outcome struct {
		res Result
		out Outcome
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, out, err := r.RunTracked(sc)
		done <- outcome{res, out, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.out.Source != SourceSimulated {
			t.Fatalf("source = %q, want %q", o.out.Source, SourceSimulated)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run spun on the unwritable store instead of falling through to simulation")
	}
	stats := r.Stats()
	if stats.Simulated != 1 {
		t.Fatalf("Simulated = %d, want 1", stats.Simulated)
	}
	if stats.StoreWrites != 0 {
		t.Fatalf("StoreWrites = %d on a read-only store, want 0", stats.StoreWrites)
	}
	if got := st.Counters().Writes; got != 0 {
		t.Fatalf("store recorded %d writes in read-only mode", got)
	}
}

// TestPersistTwoWriterInterleavingKeepsBothRecords is the lost-record
// regression: two upgraders of one entry — one adding a Profile, one
// adding a CritPath — each Peek before the other's Put. Before the fix
// the last writer silently dropped the other's record; now the lockless
// writer detects the downgrade on its post-Put verification read and
// re-merges, so the final entry carries both records.
//
// The interleaving is choreographed with the persist test hooks:
//
//	A (locked):   merge-peek(empty)  .................  put(P)  verify
//	B (lockless):                    merge-peek(empty)          put(C)  verify->repair
//
// i.e. B's Put lands between A's peek and A's Put, and A's Put clobbers
// B's record; B's verification read (which runs after A's Put) sees its
// CritPath gone from the current entry and rewrites the union.
func TestPersistTwoWriterInterleavingKeepsBothRecords(t *testing.T) {
	dir := t.TempDir()
	stA := openStore(t, dir)
	stB := openStore(t, dir)
	sc := tinyScenario("cg", 2, network.TenGigE)
	fp := sc.Fingerprint()

	base, err := Execute(sc)
	if err != nil {
		t.Fatal(err)
	}
	resA := base
	resA.Profile = &obs.Profile{Scenario: "A", Fingerprint: fp}
	resB := base
	resB.CritPath = mustReport(t, sc)

	var (
		aPeeked = make(chan struct{}) // A holds the lock and has merge-peeked
		bPut    = make(chan struct{}) // B's Put has landed
		aPut    = make(chan struct{}) // A's Put has landed
		once    sync.Once
		onceA   sync.Once
		onceB   sync.Once
	)
	rA := New(1)
	rA.persistPrePut = func() {
		once.Do(func() { close(aPeeked) })
		<-bPut // hold A between its merge peek and its Put until B has written
	}
	rA.persistPreVerify = func() {
		onceA.Do(func() { close(aPut) })
	}
	rB := New(1)
	rB.persistPreVerify = func() {
		onceB.Do(func() { close(bPut) })
		<-aPut // B verifies only after A's clobbering Put
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rA.persist(stA, fp, resA, false) // takes the key lock
	}()
	go func() {
		defer wg.Done()
		<-aPeeked
		rB.persist(stB, fp, resB, false) // lock held by A: goes lockless
	}()
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		t.Fatal("choreographed persist interleaving deadlocked")
	}

	data, err := stA.Peek(fp)
	if err != nil {
		t.Fatal(err)
	}
	final, err := decodeStored(data, fp)
	if err != nil {
		t.Fatal(err)
	}
	if final.Profile == nil {
		t.Fatal("final entry dropped writer A's Profile record")
	}
	if final.CritPath == nil {
		t.Fatal("final entry dropped writer B's CritPath record")
	}
}

// TestPersistUnderKeyLockMergesPrior pins the serialized path: an
// upgrader that gets the key lock re-peeks under it and carries the
// existing entry's records forward.
func TestPersistUnderKeyLockMergesPrior(t *testing.T) {
	st := openStore(t, t.TempDir())
	sc := tinyScenario("cg", 2, network.TenGigE)
	fp := sc.Fingerprint()

	base, err := Execute(sc)
	if err != nil {
		t.Fatal(err)
	}
	withProfile := base
	withProfile.Profile = &obs.Profile{Scenario: "prior", Fingerprint: fp}
	r := New(1)
	r.persist(st, fp, withProfile, false)

	withCrit := base
	withCrit.CritPath = mustReport(t, sc)
	r.persist(st, fp, withCrit, false)

	data, err := st.Peek(fp)
	if err != nil {
		t.Fatal(err)
	}
	final, err := decodeStored(data, fp)
	if err != nil {
		t.Fatal(err)
	}
	if final.Profile == nil || final.CritPath == nil {
		t.Fatalf("sequential upgrades must accumulate records (profile %v, critpath %v)",
			final.Profile != nil, final.CritPath != nil)
	}
}

// mustReport produces a real critical-path report for sc, so stored
// entries in these tests round-trip through the full schema.
func mustReport(t *testing.T, sc Scenario) *critpath.Report {
	t.Helper()
	res, err := ExecuteCritPath(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.CritPath == nil {
		t.Fatal("ExecuteCritPath returned no report")
	}
	return res.CritPath
}

// TestRunTrackedOutcomes pins the per-submission accounting the service
// front end reports: the first submission simulates, a duplicate on the
// same Runner is a coalesced memory hit, and a fresh Runner sharing the
// store decodes the persistent entry.
func TestRunTrackedOutcomes(t *testing.T) {
	dir := t.TempDir()
	sc := tinyScenario("cg", 2, network.TenGigE)

	r1 := New(1)
	r1.SetStore(openStore(t, dir))
	_, out, err := r1.RunTracked(sc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != SourceSimulated || out.Coalesced {
		t.Fatalf("cold submission outcome = %+v, want simulated/uncoalesced", out)
	}
	_, out, err = r1.RunTracked(sc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != SourceMemory || !out.Coalesced {
		t.Fatalf("duplicate submission outcome = %+v, want memory/coalesced", out)
	}

	r2 := New(1)
	r2.SetStore(openStore(t, dir))
	_, out, err = r2.RunTracked(sc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != SourceStore || out.Coalesced {
		t.Fatalf("warm-store submission outcome = %+v, want store/uncoalesced", out)
	}
	if st := r2.Stats(); st.Simulated != 0 || st.StoreHits != 1 {
		t.Fatalf("warm-store stats = %+v, want 0 simulated / 1 store hit", st)
	}
}

// TestStatsSnapshotRendersRunnerScope pins the obs rendering /statusz
// merges with the store's snapshot.
func TestStatsSnapshotRendersRunnerScope(t *testing.T) {
	s := Stats{Submitted: 5, Hits: 2, Simulated: 3, StoreHits: 1, MaxInFlight: 2}
	snap := s.Snapshot()
	want := map[string]float64{
		"runner.submitted":     5,
		"runner.hit":           2,
		"runner.simulated":     3,
		"runner.store_hit":     1,
		"runner.max_in_flight": 2,
	}
	for name, v := range want {
		m, ok := snap.Get(name)
		if !ok {
			t.Fatalf("snapshot missing %s", name)
		}
		if m.Value != v {
			t.Fatalf("%s = %v, want %v", name, m.Value, v)
		}
		if !m.NonDeterministic {
			t.Fatalf("%s must be non-deterministic: cache state varies run to run", name)
		}
	}
	if len(snap.Deterministic().Metrics) != 0 {
		t.Fatal("runner stats must never enter deterministic snapshots")
	}
}
