package runner

import (
	"math/rand"
	"reflect"
	"testing"

	"clustersoc/internal/cluster"
	"clustersoc/internal/network"
)

// TestDeterminism is the run-plane's regression contract: the same
// Scenario run twice sequentially, and once under a parallel runner with
// shuffled submission order, yields bit-identical cluster.Result values.
func TestDeterminism(t *testing.T) {
	scenarios := []Scenario{
		tinyScenario("hpl", 2, network.TenGigE),
		tinyScenario("jacobi", 2, network.GigE),
		tinyScenario("cg", 4, network.TenGigE),
		tinyScenario("ep", 1, network.GigE),
	}

	// Two fully independent sequential executions of every scenario.
	first := make([]Result, len(scenarios))
	second := make([]Result, len(scenarios))
	for i, s := range scenarios {
		var err error
		if first[i], err = Execute(s); err != nil {
			t.Fatal(err)
		}
		if second[i], err = Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	for i := range scenarios {
		assertIdentical(t, "sequential rerun", scenarios[i], first[i].Result, second[i].Result)
	}

	// A parallel runner fed the same scenarios in shuffled order, with
	// duplicates so the cache path is exercised too.
	rng := rand.New(rand.NewSource(42))
	var batch []Scenario
	var want []Result
	for round := 0; round < 3; round++ {
		perm := rng.Perm(len(scenarios))
		for _, i := range perm {
			batch = append(batch, scenarios[i])
			want = append(want, first[i])
		}
	}
	got, err := New(4).RunAll(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		assertIdentical(t, "parallel shuffled batch", batch[i], got[i].Result, want[i].Result)
	}
}

// assertIdentical requires bit-identical results, field by field for the
// scalar measurements (exact float equality — determinism means the same
// bits, not close bits) and DeepEqual for the nested structures.
func assertIdentical(t *testing.T, mode string, s Scenario, got, want cluster.Result) {
	t.Helper()
	if got.Runtime != want.Runtime {
		t.Errorf("%s: %s/%d: Runtime %v != %v", mode, s.Workload, s.Cluster.Nodes, got.Runtime, want.Runtime)
	}
	if got.EnergyJoules != want.EnergyJoules {
		t.Errorf("%s: %s/%d: EnergyJoules %v != %v", mode, s.Workload, s.Cluster.Nodes, got.EnergyJoules, want.EnergyJoules)
	}
	if got.NetBytes != want.NetBytes || got.DRAMBytes != want.DRAMBytes {
		t.Errorf("%s: %s/%d: traffic (%v, %v) != (%v, %v)", mode, s.Workload, s.Cluster.Nodes,
			got.NetBytes, got.DRAMBytes, want.NetBytes, want.DRAMBytes)
	}
	if got.FLOPs != want.FLOPs || got.Throughput != want.Throughput {
		t.Errorf("%s: %s/%d: work (%v, %v) != (%v, %v)", mode, s.Workload, s.Cluster.Nodes,
			got.FLOPs, got.Throughput, want.FLOPs, want.Throughput)
	}
	if !reflect.DeepEqual(got.PMU, want.PMU) {
		t.Errorf("%s: %s/%d: PMU counters differ", mode, s.Workload, s.Cluster.Nodes)
	}
	if !reflect.DeepEqual(got.GPU, want.GPU) {
		t.Errorf("%s: %s/%d: GPU metrics differ", mode, s.Workload, s.Cluster.Nodes)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: %s/%d: results not bit-identical", mode, s.Workload, s.Cluster.Nodes)
	}
}
