package runner

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"clustersoc/internal/critpath"
	"clustersoc/internal/network"
)

// critpathBatch is a small mixed batch: two workloads, two fabrics, so
// the parallel plane has genuinely concurrent recorded simulations.
func critpathBatch() []Scenario {
	return []Scenario{
		tinyScenario("hpl", 2, network.GigE),
		tinyScenario("hpl", 2, network.TenGigE),
		tinyScenario("ft", 2, network.GigE),
		tinyScenario("ft", 2, network.TenGigE),
	}
}

// TestCritPathSidecarDeterministicAcrossPlanes locks in the sidecar
// bit-identity guarantee: a sequential run-plane (workers=1) and a
// parallel one (workers=4) must serialize byte-identical critical-path
// sidecars for the same batch. Recording rides the engine goroutine and
// analysis is a pure function of the recorded graph, so worker
// scheduling must never leak into the reports.
func TestCritPathSidecarDeterministicAcrossPlanes(t *testing.T) {
	sidecar := func(workers int) []byte {
		r := New(workers)
		r.SetCritPath(true)
		if _, err := r.RunAll(critpathBatch()); err != nil {
			t.Fatal(err)
		}
		reports := r.Reports()
		if len(reports) != len(critpathBatch()) {
			t.Fatalf("workers=%d: %d reports for %d scenarios", workers, len(reports), len(critpathBatch()))
		}
		var buf bytes.Buffer
		if err := critpath.WriteReports(&buf, reports); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := sidecar(1)
	par := sidecar(4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("critpath sidecar differs between run-planes:\nworkers=1: %s\nworkers=4: %s", seq, par)
	}
}

// TestCritPathDoesNotChangeResults is the recording analogue of the
// profiling guarantee: enabling -critpath must not move a single
// simulated byte, at the Runner layer where caching and run-planes sit.
func TestCritPathDoesNotChangeResults(t *testing.T) {
	plainR := New(2)
	plain, err := plainR.RunAll(critpathBatch())
	if err != nil {
		t.Fatal(err)
	}
	recR := New(2)
	recR.SetCritPath(true)
	recorded, err := recR.RunAll(critpathBatch())
	if err != nil {
		t.Fatal(err)
	}
	pb, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := json.Marshal(recorded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb, rb) {
		t.Fatalf("artifact JSON differs with critpath recording enabled:\noff: %s\non:  %s", pb, rb)
	}
	for i := range recorded {
		if recorded[i].CritPath == nil {
			t.Fatalf("scenario %d: recorded run carries no report", i)
		}
		recorded[i].CritPath = nil
		if !reflect.DeepEqual(plain[i], recorded[i]) {
			t.Fatalf("scenario %d: Result differs with recording enabled", i)
		}
	}
}

// TestCritPathOffLeavesNoReport: with recording off the Runner must not
// attach reports, and Reports() stays empty.
func TestCritPathOffLeavesNoReport(t *testing.T) {
	r := New(2)
	if _, err := r.RunAll(critpathBatch()[:2]); err != nil {
		t.Fatal(err)
	}
	if got := r.Reports(); len(got) != 0 {
		t.Fatalf("recording off but Reports() returned %d reports", len(got))
	}
}
