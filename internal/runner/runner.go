// Package runner is the deterministic parallel run-plane: it executes
// independent scenario simulations on a bounded worker pool and memoizes
// results by scenario fingerprint, so a batch of experiment generators
// sharing one Runner simulates every distinct scenario exactly once.
//
// The simulator itself (internal/sim and everything built on it) is
// single-threaded and deterministic; a Scenario's result depends only on
// the Scenario. That makes independent simulations embarrassingly
// parallel: the Runner exploits it without changing any result —
// parallel and sequential execution produce bit-identical
// cluster.Result values, and RunAll returns results in submission order
// regardless of completion order. Both properties are locked in by the
// determinism tests in this package and the -race CI job.
package runner

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"clustersoc/internal/cluster"
	"clustersoc/internal/critpath"
	"clustersoc/internal/obs"
	"clustersoc/internal/simcheck"
	"clustersoc/internal/store"
	"clustersoc/internal/workloads"
)

// Job names one co-scheduled workload: the Table IV collocation runs the
// GPU hpl and the CPU hpl side by side on the same nodes, NICs, and DRAM.
type Job struct {
	// Workload is a registry name (workloads.ByName).
	Workload string
	// RanksPerNode is the job's own process density on the scenario's
	// nodes (cluster.SpawnWith).
	RanksPerNode int
	Config       workloads.Config
}

// Scenario is one independent simulation: a workload (by registry name)
// on a fully specified system. Identical scenarios — same fingerprint —
// produce identical results, so the Runner simulates each fingerprint at
// most once per cache lifetime.
type Scenario struct {
	Cluster  cluster.Config
	Workload string
	Config   workloads.Config
	// Colocated co-schedules further jobs on the same cluster instance
	// (sharing its nodes, network, and DRAM), as the Table IV
	// CPU+GPU collocation experiment does. Usually empty.
	Colocated []Job
}

// Fingerprint returns the canonical cache key: the cluster fingerprint,
// the workload name, the canonical workload-config key, and any
// co-scheduled jobs.
func (s Scenario) Fingerprint() string {
	var b strings.Builder
	b.WriteString(s.Cluster.Fingerprint())
	b.WriteString("|w=")
	b.WriteString(s.Workload)
	b.WriteString("|")
	b.WriteString(s.Config.Key())
	for _, j := range s.Colocated {
		fmt.Fprintf(&b, "|co=%s/%d/%s", j.Workload, j.RanksPerNode, j.Config.Key())
	}
	return b.String()
}

// Result is a scenario's measurements. Cached results are shared between
// duplicate submissions — treat them (including the PerNode slice and
// the Trace) as immutable.
type Result struct {
	cluster.Result
	// JobThroughputs holds each job's own FLOP/s — the primary workload
	// first, then the Colocated jobs in declaration order. The combined
	// throughput of a collocation run is their sum, the way the paper
	// tallies its simultaneous hpl runs.
	JobThroughputs []float64
	// Profile is the scenario's observability snapshot, present only when
	// the Runner (or ExecuteProfiled) ran with profiling enabled. It is
	// excluded from JSON so result artifacts are byte-identical with and
	// without profiling; sidecar files carry profiles instead. Cached
	// results share one Profile — treat it as immutable.
	Profile *obs.Profile `json:"-"`
	// CritPath is the scenario's critical-path analysis, present only when
	// the Runner (or ExecuteCritPath) ran with recording enabled. Like
	// Profile it is excluded from JSON — *.critpath.json sidecars carry
	// reports — and shared between cached results: treat it as immutable.
	CritPath *critpath.Report `json:"-"`
}

// Stats is the run-plane's accounting, reported by the CLIs. The wall
// fields are host-timing diagnostics: non-deterministic by nature, they
// are reported on stderr only and never enter result artifacts.
type Stats struct {
	// Submitted counts scenarios handed to Run/RunAll.
	Submitted int
	// Hits counts submissions served from the cache — duplicate
	// simulations avoided, including joins on a run already in flight.
	Hits int
	// Simulated counts distinct scenarios actually executed.
	Simulated int
	// Audited counts executed scenarios that passed the simcheck
	// physical-invariant audit (SetChecking). Memoization means each
	// fingerprint is audited at most once per cache lifetime.
	Audited int
	// WallSeconds accumulates the host wall time of every executed
	// simulation (worker-seconds: with N workers busy it advances N times
	// faster than the clock on the wall).
	WallSeconds float64
	// MaxInFlight is the worker-occupancy high-water mark — the most
	// simulations that were ever executing at once.
	MaxInFlight int

	// The Store* fields account the persistent second tier (SetStore);
	// all four stay zero without one. Like the wall fields they are
	// host-side diagnostics — what is on disk varies run to run — and
	// never enter result artifacts.

	// StoreHits counts submissions served by decoding a persistent-store
	// entry instead of simulating.
	StoreHits int
	// StoreMisses counts store lookups that found no servable entry (no
	// entry, a corrupt one, or one missing a requested profile/critpath
	// record). Lookups are bypassed entirely under SetChecking — the
	// audit needs a live simulation — and those do not count.
	StoreMisses int
	// StoreWrites counts entries this Runner persisted.
	StoreWrites int
	// StoreCorrupt counts entries that existed but failed container
	// verification or payload decoding; each was treated as a miss and
	// repaired by simulate-and-rewrite.
	StoreCorrupt int
}

// Snapshot renders the run-plane accounting as a "runner"-scoped obs
// snapshot. The scope is NonDeterministic — cache contents and wall
// times are host-side diagnostics — so these metrics merge cleanly with
// the store's snapshot for a service's /statusz without ever entering
// byte-compared artifacts.
func (s Stats) Snapshot() obs.Snapshot {
	reg := obs.NewRegistry()
	sc := reg.Scope("runner").NonDeterministic()
	sc.Counter("submitted").Add(float64(s.Submitted))
	sc.Counter("hit").Add(float64(s.Hits))
	sc.Counter("simulated").Add(float64(s.Simulated))
	sc.Counter("audited").Add(float64(s.Audited))
	sc.Counter("wall_seconds").Add(s.WallSeconds)
	sc.Gauge("max_in_flight").Set(float64(s.MaxInFlight))
	sc.Counter("store_hit").Add(float64(s.StoreHits))
	sc.Counter("store_miss").Add(float64(s.StoreMisses))
	sc.Counter("store_write").Add(float64(s.StoreWrites))
	sc.Counter("store_corrupt").Add(float64(s.StoreCorrupt))
	return reg.Snapshot()
}

// entry is one memoized scenario. The first submitter executes and
// closes done; later submitters of the same fingerprint block on done
// and share the result.
type entry struct {
	done chan struct{}
	res  Result
	err  error
	// source records how the entry was resolved by its first submitter
	// (SourceStore or SourceSimulated), for Outcome reporting.
	source string
}

// Sources an Outcome can report: which tier served the submission.
const (
	// SourceMemory: served by the in-memory fingerprint map — either a
	// completed cached entry or a join on a run already in flight.
	SourceMemory = "memory"
	// SourceStore: served by decoding a persistent-store entry.
	SourceStore = "store"
	// SourceSimulated: this submission executed the simulation.
	SourceSimulated = "simulated"
)

// Outcome describes how one submission was resolved — the per-request
// accounting a serving front end (cmd/simd) reports back to its clients,
// where Stats only aggregates.
type Outcome struct {
	// Source is the tier that produced this submission's bytes:
	// SourceMemory, SourceStore, or SourceSimulated.
	Source string `json:"source"`
	// Coalesced reports that the submission joined an entry another
	// submission had already installed (completed or still in flight) —
	// the duplicate-request singleflight at work.
	Coalesced bool `json:"coalesced,omitempty"`
}

// Runner is a concurrent, memoizing scenario executor. It is safe for
// use from multiple goroutines.
type Runner struct {
	workers int
	sem     chan struct{}
	// exec runs one scenario; tests substitute it to control timing.
	exec func(s Scenario, profiled, checked, critpathOn bool) (Result, error)

	mu        sync.Mutex
	cache     map[string]*entry
	stats     Stats
	profiling bool
	checking  bool
	critpath  bool
	inFlight  int
	// store is the optional persistent second tier (SetStore): lookups
	// fall through the in-memory map to it, executions persist into it.
	store *store.Store

	// persistPrePut/persistPreVerify are test-only interleaving hooks in
	// the persist path (between the merge peek and the Put, and before
	// each post-Put verification read); nil outside the tests.
	persistPrePut    func()
	persistPreVerify func()
}

// New returns a Runner executing at most workers simulations
// concurrently. workers <= 0 means GOMAXPROCS; workers == 1 is the
// sequential run-plane (still memoizing).
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		workers: workers,
		sem:     make(chan struct{}, workers),
		exec:    defaultExec,
		cache:   map[string]*entry{},
	}
}

// defaultExec is the Runner's executor: Execute, or ExecuteProfiled when
// the run-plane has profiling enabled, with the simcheck audit and
// critical-path recording threaded through when enabled.
func defaultExec(s Scenario, profiled, checked, critpathOn bool) (Result, error) {
	if profiled {
		return executeProfiled(s, checked, critpathOn)
	}
	return execute(s, nil, checked, critpathOn)
}

// Workers returns the worker-pool bound.
func (r *Runner) Workers() int { return r.workers }

// SetProfiling toggles per-scenario observability profiles. Enable it
// before submitting work: scenarios simulated while profiling is off are
// cached without a profile, and later duplicate submissions are served
// from that cache as-is. Profiling never changes simulation results —
// profiled and unprofiled runs of one scenario produce byte-identical
// Result values (locked in by this package's determinism tests).
func (r *Runner) SetProfiling(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.profiling = on
}

// SetChecking toggles the simcheck physical-invariant audit for
// subsequently executed scenarios: each simulation is validated after it
// finishes (flow conservation at every port, send/receive balance in
// every communicator, port-utilization sanity), and a violation fails
// the scenario with the full diagnostic list. The audit is read-only and
// post-run, so results stay byte-identical with checking on — a property
// locked in by this package's determinism tests. Like SetProfiling it
// applies per execution: scenarios already cached are not re-audited.
func (r *Runner) SetChecking(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checking = on
}

// SetCritPath toggles causal event-graph recording and critical-path
// analysis for subsequently executed scenarios (cluster.RecordCritPath +
// critpath.Analyze). Recording is passive — a recorded run's Result is
// byte-identical to an unrecorded one, a property locked in by this
// package's determinism tests. Like SetProfiling it applies per
// execution: scenarios already cached keep whatever they were (or were
// not) recorded with.
func (r *Runner) SetCritPath(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.critpath = on
}

// Reports returns the critical-path reports of every completed,
// successfully simulated scenario, sorted by fingerprint so the
// collection is deterministic regardless of execution order. Reports are
// shared with cached results — treat them as immutable.
func (r *Runner) Reports() []*critpath.Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	var rs []*critpath.Report
	for _, e := range r.cache {
		select {
		case <-e.done:
		default:
			continue // still in flight
		}
		if e.err == nil && e.res.CritPath != nil {
			rs = append(rs, e.res.CritPath)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Fingerprint < rs[j].Fingerprint })
	return rs
}

// Profiles returns the profiles of every completed, successfully
// simulated scenario, sorted by fingerprint so the collection is
// deterministic regardless of execution order. Profiles are shared with
// cached results — treat them as immutable.
func (r *Runner) Profiles() []*obs.Profile {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ps []*obs.Profile
	for _, e := range r.cache {
		select {
		case <-e.done:
		default:
			continue // still in flight
		}
		if e.err == nil && e.res.Profile != nil {
			ps = append(ps, e.res.Profile)
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Fingerprint < ps[j].Fingerprint })
	return ps
}

// Stats returns a snapshot of the cache accounting.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Run executes one scenario (or joins an identical run already cached or
// in flight, or decodes it from the persistent store) and returns its
// measurements.
func (r *Runner) Run(s Scenario) (Result, error) {
	res, _, err := r.RunTracked(s)
	return res, err
}

// RunTracked is Run with per-submission accounting: the Outcome reports
// which cache tier served the submission and whether it coalesced onto
// another submission's entry. The Result is identical to Run's.
func (r *Runner) RunTracked(s Scenario) (Result, Outcome, error) {
	fp := s.Fingerprint()
	r.mu.Lock()
	r.stats.Submitted++
	if e, ok := r.cache[fp]; ok {
		r.stats.Hits++
		r.mu.Unlock()
		<-e.done
		return e.res, Outcome{Source: SourceMemory, Coalesced: true}, e.err
	}
	e := &entry{done: make(chan struct{})}
	r.cache[fp] = e
	r.mu.Unlock()

	r.sem <- struct{}{} // acquire a worker slot
	r.mu.Lock()
	profiled, checked, critpathOn := r.profiling, r.checking, r.critpath
	st := r.store
	r.mu.Unlock()
	e.res, e.source, e.err = r.runTiered(s, fp, st, profiled, checked, critpathOn)
	<-r.sem
	close(e.done)
	return e.res, Outcome{Source: e.source}, e.err
}

// executeCounted runs one scenario through the executor with the
// worker-occupancy, audit, and wall accounting attached. Only actual
// executions pass through here — cache and store hits never do, so
// Stats.Simulated counts simulations, not submissions.
func (r *Runner) executeCounted(s Scenario, profiled, checked, critpathOn bool) (Result, error) {
	r.mu.Lock()
	r.stats.Simulated++
	r.inFlight++
	if r.inFlight > r.stats.MaxInFlight {
		r.stats.MaxInFlight = r.inFlight
	}
	r.mu.Unlock()
	start := time.Now()
	res, err := r.exec(s, profiled, checked, critpathOn)
	wall := time.Since(start).Seconds()
	r.mu.Lock()
	r.inFlight--
	if checked && err == nil {
		r.stats.Audited++
	}
	r.stats.WallSeconds += wall
	r.mu.Unlock()
	return res, err
}

// RunAll executes a batch. Distinct scenarios run concurrently up to the
// worker bound; duplicates (within the batch or against earlier runs)
// simulate once. Results are returned in submission order regardless of
// completion order. The returned error is the first failing scenario's,
// in submission order; results of successful scenarios are valid either
// way.
func (r *Runner) RunAll(scenarios []Scenario) ([]Result, error) {
	results := make([]Result, len(scenarios))
	errs := make([]error, len(scenarios))
	var wg sync.WaitGroup
	for i := range scenarios {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.Run(scenarios[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Execute runs one scenario directly — no cache, no pool, no profiling,
// no audit. It is the reference implementation the determinism tests
// compare against.
func Execute(s Scenario) (Result, error) {
	return execute(s, nil, false, false)
}

// ExecuteChecked is Execute with the simcheck physical-invariant audit:
// the finished simulation is validated and a violation fails the run
// with the full diagnostic list. The Result is byte-identical to
// Execute's — the audit only reads the finished cluster.
func ExecuteChecked(s Scenario) (Result, error) {
	return execute(s, nil, true, false)
}

// ExecuteProfiled is Execute with observability attached: the returned
// Result carries a Profile holding the run's full simulated metric
// snapshot plus host wall time. The simulation itself is unchanged —
// everything but the Profile field is byte-identical to Execute's.
func ExecuteProfiled(s Scenario) (Result, error) {
	return executeProfiled(s, false, false)
}

// ExecuteCritPath is Execute with causal event-graph recording: the
// returned Result carries a CritPath report (blame breakdown, what-if
// bounds, the critical path itself). The simulation is unchanged —
// everything but the CritPath field is byte-identical to Execute's.
func ExecuteCritPath(s Scenario) (Result, error) {
	return execute(s, nil, false, true)
}

func executeProfiled(s Scenario, checked, critpathOn bool) (Result, error) {
	reg := obs.NewRegistry()
	start := time.Now()
	res, err := execute(s, reg, checked, critpathOn)
	wall := time.Since(start).Seconds()
	if err != nil {
		return res, err
	}
	res.Profile = &obs.Profile{
		Scenario:    fmt.Sprintf("%s on %s", s.Workload, s.Cluster.Name),
		Fingerprint: s.Fingerprint(),
		Sim:         reg.Snapshot(),
		Wall:        &obs.WallStats{Note: obs.WallNote, Seconds: wall},
	}
	return res, nil
}

// execute runs one scenario, attaching reg (may be nil) to the cluster
// before any rank spawns. With checked, match-time validation is armed
// before spawning and the finished run is audited against its physical
// invariants; with critpathOn, the causal event graph is recorded and
// analyzed after the run. Neither alters the simulation.
func execute(s Scenario, reg *obs.Registry, checked, critpathOn bool) (Result, error) {
	w, err := workloads.ByName(s.Workload)
	if err != nil {
		return Result{}, err
	}
	var cl *cluster.Cluster
	if reg != nil || checked || critpathOn {
		// Observer hooks thread shared state through the simulation hot
		// path, which a partitioned (PDES) cluster cannot host; these runs
		// stay on the shared sequential calendar. Results are bit-identical
		// either way, so cached entries may serve both kinds of request.
		cl = cluster.NewSequential(s.Cluster)
	} else {
		cl = cluster.New(s.Cluster)
	}
	cl.Instrument(reg)
	if checked {
		cl.EnableChecking()
	}
	if critpathOn {
		cl.RecordCritPath()
	}
	jobs := []*cluster.Job{cl.Spawn(w.Body(s.Config))}
	for _, j := range s.Colocated {
		wj, err := workloads.ByName(j.Workload)
		if err != nil {
			return Result{}, err
		}
		jobs = append(jobs, cl.SpawnWith(j.RanksPerNode, wj.Body(j.Config)))
	}
	res := Result{Result: cl.Finish()}
	for _, j := range jobs {
		res.JobThroughputs = append(res.JobThroughputs, j.Throughput())
	}
	if checked {
		if err := simcheck.Error(simcheck.AuditCluster(cl, res.Result)); err != nil {
			return res, fmt.Errorf("scenario %q on %q failed its audit: %w", s.Workload, s.Cluster.Name, err)
		}
	}
	if critpathOn {
		res.CritPath = critpath.Analyze(cl.CritPath(),
			fmt.Sprintf("%s on %s", s.Workload, s.Cluster.Name), s.Fingerprint(), res.Runtime)
	}
	return res, nil
}
