package mpi

import (
	"math"
	"testing"

	"clustersoc/internal/network"
	"clustersoc/internal/sim"
)

// dropFirst loses the first n cross-node messages it sees.
type dropFirst struct {
	n       int
	seen    int
	timeout float64
}

func (d *dropFirst) Lose(src, dst int, bytes float64) bool {
	d.seen++
	return d.seen <= d.n
}

func (d *dropFirst) Timeout() float64 { return d.timeout }

// A lost message arrives one retransmit timeout plus one wire service later,
// and the retransmitted copy is charged to the retransmission counters, not
// to SentBytes — the payload was sent once even though the wire carried it
// twice.
func TestLostMessageRetransmitted(t *testing.T) {
	e, c := build(2, network.GigE)
	li := &dropFirst{n: 1, timeout: 0.25}
	c.SetLossInjector(li)
	var recvAt float64
	runRanks(e, 2, func(p *sim.Process, rank int) {
		if rank == 0 {
			c.Send(p, 0, 1, 7, 1000)
		} else {
			c.Recv(p, 1, 0, 7)
			recvAt = p.Now()
		}
	})
	svc := 1000 / network.GigE.Throughput
	// First copy would have arrived at svc+latency; the retransmit leaves
	// timeout after the sender's port freed and is itself re-serviced.
	want := svc + li.timeout + svc + network.GigE.Latency
	if math.Abs(recvAt-want) > 1e-9 {
		t.Fatalf("recv at %v, want %v (one timeout + one re-service late)", recvAt, want)
	}
	if got := c.RetransmittedBytes(0); got != 1000 {
		t.Fatalf("retransmitted bytes = %v, want 1000", got)
	}
	if got := c.Retransmissions(0); got != 1 {
		t.Fatalf("retransmissions = %v, want 1", got)
	}
	if got := c.SentBytes(0); got != 1000 {
		t.Fatalf("sent bytes = %v, want 1000 — the retransmit copy must not inflate the payload count", got)
	}
}

// Intra-node messages never traverse the wire and must be exempt from loss.
func TestIntraNodeMessagesNeverLost(t *testing.T) {
	e := sim.NewEngine()
	nw := network.New(e, 1, network.GigE)
	c := NewComm(e, nw, []int{0, 0})
	li := &dropFirst{n: 1000, timeout: 10}
	c.SetLossInjector(li)
	runRanks(e, 2, func(p *sim.Process, rank int) {
		if rank == 0 {
			c.Send(p, 0, 1, 1, 500)
		} else {
			c.Recv(p, 1, 0, 1)
		}
	})
	if li.seen != 0 {
		t.Fatalf("loss injector consulted %d time(s) for intra-node traffic, want 0", li.seen)
	}
	if got := c.Retransmissions(0); got != 0 {
		t.Fatalf("intra-node retransmissions = %v, want 0", got)
	}
}
