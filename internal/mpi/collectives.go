package mpi

import (
	"math/bits"

	"clustersoc/internal/sim"
)

// nextTag returns a fresh collective tag for this rank. All ranks invoke
// collectives in the same program order, so per-rank counters stay in
// lockstep and match across the communicator.
func (c *Comm) nextTag(rank int) int {
	c.cseq[rank]++
	return collTagBase + c.cseq[rank]
}

// highestBit returns the largest power of two <= v (v > 0).
func highestBit(v int) int { return 1 << (bits.Len(uint(v)) - 1) }

// BcastLargeThreshold switches Bcast from the binomial tree to the
// van-de-Geijn scatter + ring-allgather algorithm, whose cost stays near
// 2*bytes/bandwidth regardless of the tree depth — what MPI libraries do
// for large payloads such as hpl's panels. Exported so the simcheck
// cost models know which algorithm a payload selects.
const BcastLargeThreshold = 256 * 1024

// Bcast broadcasts bytes from root to every rank: a binomial tree
// (log2(P) rounds) for small messages, scatter + allgather for large.
//
// Both paths consume exactly two collective tags, so the per-rank tag
// sequence stays in lockstep across the communicator even if a future
// non-uniform payload makes ranks disagree on the size branch (the small
// path simply leaves its second tag unused).
func (c *Comm) Bcast(p *sim.Process, rank, root int, bytes float64) {
	n := c.Size()
	if n == 1 {
		return
	}
	tag := c.nextTag(rank)
	agTag := c.nextTag(rank)
	if bytes >= BcastLargeThreshold && n > 2 {
		c.scatterFromRoot(p, rank, root, bytes, tag)
		c.allgatherWith(p, rank, bytes/float64(n), agTag)
		return
	}
	vrank := (rank - root + n) % n
	real := func(v int) int { return (v + root) % n }

	mask := 1
	if vrank != 0 {
		hb := highestBit(vrank)
		c.Recv(p, rank, real(vrank-hb), tag)
		mask = hb << 1
	}
	for ; vrank+mask < n; mask <<= 1 {
		c.Send(p, rank, real(vrank+mask), tag, bytes)
	}
}

// scatterFromRoot distributes 1/n of bytes to each rank down a binomial
// tree: each hop forwards the portion covering the receiver's subtree.
func (c *Comm) scatterFromRoot(p *sim.Process, rank, root int, bytes float64, tag int) {
	n := c.Size()
	vrank := (rank - root + n) % n
	real := func(v int) int { return (v + root) % n }
	chunk := bytes / float64(n)

	mask := 1
	if vrank != 0 {
		hb := highestBit(vrank)
		c.Recv(p, rank, real(vrank-hb), tag)
		mask = hb << 1
	}
	for ; vrank+mask < n; mask <<= 1 {
		// The receiver owns the subtree [vrank+mask, min(vrank+2*mask, n)).
		sub := mask
		if vrank+mask+sub > n {
			sub = n - vrank - mask
		}
		c.Send(p, rank, real(vrank+mask), tag, chunk*float64(sub))
	}
}

// Reduce combines bytes from every rank onto root with a binomial tree
// (the mirror image of Bcast).
func (c *Comm) Reduce(p *sim.Process, rank, root int, bytes float64) {
	n := c.Size()
	if n == 1 {
		return
	}
	tag := c.nextTag(rank)
	vrank := (rank - root + n) % n
	real := func(v int) int { return (v + root) % n }

	// Receive from children (largest subtree first, mirroring Bcast's send
	// order reversed), then send to parent. In a binomial tree the children
	// of vrank v are v+m for every power of two m > v with v+m < n.
	var children []int
	for m := 1; vrank+m < n; m <<= 1 {
		if m > vrank {
			children = append(children, vrank+m)
		}
	}
	for i := len(children) - 1; i >= 0; i-- {
		c.Recv(p, rank, real(children[i]), tag)
	}
	if vrank != 0 {
		c.Send(p, rank, real(vrank-highestBit(vrank)), tag, bytes)
	}
}

// AllreduceLargeThreshold switches Allreduce from recursive doubling
// (which moves the full vector every round) to Rabenseifner's
// reduce-scatter + allgather, whose volume stays near 2*bytes per rank —
// the large-message algorithm production MPIs use. Exported for the
// simcheck cost models.
const AllreduceLargeThreshold = 512 * 1024

// Allreduce combines bytes across all ranks and leaves the result
// everywhere. Power-of-two communicators use recursive doubling for
// small vectors and Rabenseifner's algorithm for large ones; other sizes
// fall back to Reduce + Bcast.
func (c *Comm) Allreduce(p *sim.Process, rank int, bytes float64) {
	n := c.Size()
	if n == 1 {
		return
	}
	if n&(n-1) != 0 {
		c.Reduce(p, rank, 0, bytes)
		c.Bcast(p, rank, 0, bytes)
		return
	}
	tag := c.nextTag(rank)
	if bytes >= AllreduceLargeThreshold && n > 2 {
		// Reduce-scatter by recursive halving: each round exchanges half
		// of the remaining vector with the partner.
		part := bytes / 2
		for mask := 1; mask < n; mask <<= 1 {
			partner := rank ^ mask
			c.Sendrecv(p, rank, partner, partner, tag+mask, part, part)
			part /= 2
		}
		// Allgather by recursive doubling: the owned 1/n chunk grows back.
		part = bytes / float64(n)
		for mask := n >> 1; mask >= 1; mask >>= 1 {
			partner := rank ^ mask
			c.Sendrecv(p, rank, partner, partner, tag+8*n+mask, part, part)
			part *= 2
		}
		return
	}
	for mask := 1; mask < n; mask <<= 1 {
		partner := rank ^ mask
		c.Sendrecv(p, rank, partner, partner, tag+mask, bytes, bytes)
	}
}

// Barrier synchronizes all ranks (an 8-byte allreduce).
func (c *Comm) Barrier(p *sim.Process, rank int) {
	c.Allreduce(p, rank, 8)
}

// Allgather distributes each rank's bytes-sized contribution to everyone
// using a ring: P-1 rounds, each forwarding one chunk to the right.
func (c *Comm) Allgather(p *sim.Process, rank int, bytes float64) {
	n := c.Size()
	if n == 1 {
		return
	}
	c.allgatherWith(p, rank, bytes, c.nextTag(rank))
}

// allgatherWith is the ring allgather on a caller-supplied tag, shared by
// Allgather and the large-message Bcast (whose tag budget is fixed).
func (c *Comm) allgatherWith(p *sim.Process, rank int, bytes float64, tag int) {
	n := c.Size()
	right := (rank + 1) % n
	left := (rank - 1 + n) % n
	for step := 0; step < n-1; step++ {
		c.Sendrecv(p, rank, right, left, tag, bytes, bytes)
	}
}

// Alltoall exchanges bytesPerPair between every pair of ranks using the
// pairwise-exchange algorithm (P-1 balanced rounds), as large FT/IS
// transposes do.
func (c *Comm) Alltoall(p *sim.Process, rank int, bytesPerPair float64) {
	n := c.Size()
	if n == 1 {
		return
	}
	tag := c.nextTag(rank)
	pow2 := n&(n-1) == 0
	for step := 1; step < n; step++ {
		var sendTo, recvFrom int
		if pow2 {
			sendTo = rank ^ step
			recvFrom = sendTo
		} else {
			sendTo = (rank + step) % n
			recvFrom = (rank - step + n) % n
		}
		c.Sendrecv(p, rank, sendTo, recvFrom, tag+step, bytesPerPair, bytesPerPair)
	}
}

// Gather collects bytes from every rank to root with direct sends (fan-in
// serializes at root's NIC, which is physical).
func (c *Comm) Gather(p *sim.Process, rank, root int, bytes float64) {
	n := c.Size()
	if n == 1 {
		return
	}
	tag := c.nextTag(rank)
	if rank == root {
		for r := 0; r < n; r++ {
			if r != root {
				c.Recv(p, rank, r, tag)
			}
		}
		return
	}
	c.Send(p, rank, root, tag, bytes)
}
