// Package mpi provides a message-passing layer over the simulated network:
// blocking point-to-point operations with tag matching plus the collective
// algorithms the paper's workloads exercise (binomial broadcast and reduce,
// recursive-doubling allreduce, ring allgather, pairwise alltoall).
//
// Sends are eager: a sender blocks only until its NIC has drained the
// message, never on the receiver posting — matching the rendezvous-free
// behaviour of small-to-medium MPI messages and keeping workload models
// deadlock-free by construction.
package mpi

import (
	"fmt"
	"sort"

	"clustersoc/internal/network"
	"clustersoc/internal/sim"
)

// collTagBase namespaces internally generated collective tags away from
// user point-to-point tags.
const collTagBase = 1 << 20

type key struct {
	src, tag int
}

// inboxMsg is one eagerly delivered message that no receive has claimed
// yet. The size rides along so receives that declare an expected size
// (Sendrecv's recvBytes) can be validated against what the peer sent;
// pathID is the PathRecorder's message handle (meaningful only while a
// recorder is attached), threaded through the inbox so the matching
// receive can report which send it completed without a second FIFO.
type inboxMsg struct {
	arrival float64
	bytes   float64
	pathID  int32
}

// recvWaiter is a blocked receiver. expect is the byte count the receive
// declared, or a negative value when it posted no expectation (plain
// Recv carries no size).
type recvWaiter struct {
	p      *sim.Process
	expect float64
}

// Recorder observes point-to-point traffic; internal/trace implements it
// to build replayable execution traces. Collectives are recorded as the
// p2p pattern they decompose into.
type Recorder interface {
	RecordSend(rank, peer, tag int, bytes, start, end float64)
	RecordRecv(rank, peer, tag int, start, end float64)
}

// PathRecorder observes the causal structure of point-to-point traffic at
// a finer grain than Recorder: sends carry the full NIC booking (post,
// drain, arrival, whether the wire copy was a retransmit) and every
// receive completion is reported even when it did not block, because a
// zero-wait receive is still a happens-before edge that a critical-path
// replay must honour. PathSend returns a message handle the communicator
// threads through its own matching structures and hands back to PathRecv,
// so the recorder needs no FIFO of its own. internal/critpath implements
// it.
type PathRecorder interface {
	PathSend(src, dst, tag int, bytes, post, senderFree, arrival float64, retrans bool) int32
	PathRecv(dst int, id int32, post, end float64)
}

// LossInjector decides, per cross-node message, whether the first copy is
// lost on the wire; internal/faults implements it with a deterministic
// per-plan stream. Timeout is the eager-retransmit delay the sender pays
// before the second copy leaves the NIC.
type LossInjector interface {
	Lose(src, dst int, bytes float64) bool
	Timeout() float64
}

// Comm is a communicator over a set of ranks placed on network nodes.
type Comm struct {
	eng      *sim.Engine
	nw       *network.Network
	rankNode []int
	rec      Recorder
	pr       PathRecorder
	// pendingPath carries the PathRecorder handle of a send that matched a
	// blocked receiver, from the send to the receiver's resumption. One
	// slot per rank suffices: ranks are blocking processes, so each has at
	// most one receive in flight (guarded by a panic in Send).
	pendingPath []int32

	boxes   []map[key][]inboxMsg   // per-rank inbox: FIFO per (src,tag)
	waiters []map[key][]recvWaiter // per-rank blocked receivers, FIFO
	cseq    []int                  // per-rank collective sequence number

	// spareBox/spareWaiters recycle the backing arrays of drained
	// inbox/waiter queues. Collective tags are fresh every round, so
	// drained keys are deleted (the maps stay small) — but without
	// recycling, every enqueue on a new key allocates a one-entry slice,
	// which is most of the simulator's steady-state garbage on
	// communication-heavy runs. Stacks, per destination rank: a rank's
	// matching structures are touched either by its own receives or by a
	// sender holding the cross-partition exclusive section on that rank's
	// node, so per-rank stacks stay single-threaded under PDES where a
	// communicator-wide stack would be shared across partitions.
	spareBox     [][][]inboxMsg
	spareWaiters [][][]recvWaiter

	sentBytes []float64 // per-rank bytes passed to Send (incl. intra-node)
	sentMsgs  []uint64
	recvMsgs  []uint64 // per-rank completed receives

	// loss, when non-nil, is the fault plane's message-loss model. A lost
	// message costs a second wire transit (booked after the retransmit
	// timeout) that is charged to retransBytes, not sentBytes — the
	// payload is sent once, the wire carries it twice.
	loss         LossInjector
	retransBytes []float64 // per-rank retransmitted bytes (wire copies beyond the first)
	retransMsgs  []uint64  // per-rank retransmitted messages

	// checking enables the simcheck assertions that have a natural home
	// at match time (declared receive sizes vs the peer's send size).
	// Mismatches are collected, not panicked, so Audit can report every
	// violation of a run with rank/tag/src diagnostics.
	checking   bool
	violations []string
}

// NewComm creates a communicator with one rank per entry of rankNode;
// rankNode[i] is the network node hosting rank i.
func NewComm(e *sim.Engine, nw *network.Network, rankNode []int) *Comm {
	n := len(rankNode)
	c := &Comm{
		eng:       e,
		nw:        nw,
		rankNode:  append([]int(nil), rankNode...),
		boxes:     make([]map[key][]inboxMsg, n),
		waiters:   make([]map[key][]recvWaiter, n),
		cseq:      make([]int, n),
		sentBytes: make([]float64, n),
		sentMsgs:  make([]uint64, n),
		recvMsgs:  make([]uint64, n),

		retransBytes: make([]float64, n),
		retransMsgs:  make([]uint64, n),

		spareBox:     make([][][]inboxMsg, n),
		spareWaiters: make([][][]recvWaiter, n),
	}
	for i := range c.boxes {
		c.boxes[i] = make(map[key][]inboxMsg)
		c.waiters[i] = make(map[key][]recvWaiter)
	}
	return c
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.rankNode) }

// Node returns the network node hosting a rank.
func (c *Comm) Node(rank int) int { return c.rankNode[rank] }

// Network returns the underlying interconnect.
func (c *Comm) Network() *network.Network { return c.nw }

// SentBytes returns the bytes rank has sent so far.
func (c *Comm) SentBytes(rank int) float64 { return c.sentBytes[rank] }

// Messages returns the number of messages rank has sent.
func (c *Comm) Messages(rank int) uint64 { return c.sentMsgs[rank] }

// Receives returns the number of messages rank has received.
func (c *Comm) Receives(rank int) uint64 { return c.recvMsgs[rank] }

func (c *Comm) check(rank int) {
	if rank < 0 || rank >= len(c.rankNode) {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, len(c.rankNode)))
	}
}

// SetRecorder attaches a trace recorder (nil to detach).
func (c *Comm) SetRecorder(r Recorder) { c.rec = r }

// SetPathRecorder attaches a causal-path recorder (nil to detach). The
// hot path pays one nil check per send and receive when detached.
func (c *Comm) SetPathRecorder(pr PathRecorder) {
	c.pr = pr
	if pr != nil && c.pendingPath == nil {
		c.pendingPath = make([]int32, len(c.rankNode))
		for i := range c.pendingPath {
			c.pendingPath[i] = -1
		}
	}
}

// SetLossInjector attaches the fault plane's message-loss model (nil to
// detach). Only cross-node messages can be lost — the intra-node
// shared-memory path is a memcpy, not a wire.
func (c *Comm) SetLossInjector(li LossInjector) { c.loss = li }

// RetransmittedBytes returns the extra wire bytes rank paid to retransmit
// lost messages. These bytes crossed the fabric but are not in SentBytes:
// flow-conservation audits must add them to the send side.
func (c *Comm) RetransmittedBytes(rank int) float64 { return c.retransBytes[rank] }

// Retransmissions returns the number of messages rank had to retransmit.
func (c *Comm) Retransmissions(rank int) uint64 { return c.retransMsgs[rank] }

// SetChecking toggles match-time validation: receives that declare an
// expected size (Sendrecv) are checked against the matched message's
// actual size, and mismatches are collected for Audit. Checking never
// changes message timing — it only observes matches.
func (c *Comm) SetChecking(on bool) { c.checking = on }

// Send transmits bytes from src to dst with a tag, blocking p (the process
// running rank src) until the local NIC has drained the message.
func (c *Comm) Send(p *sim.Process, src, dst, tag int, bytes float64) {
	c.check(src)
	c.check(dst)
	start := p.Now()
	srcNode, dstNode := c.rankNode[src], c.rankNode[dst]
	senderFree, arrival := c.nw.DeliverFrom(p, srcNode, dstNode, bytes)
	c.sentBytes[src] += bytes
	c.sentMsgs[src]++
	retrans := false
	if c.loss != nil && srcNode != dstNode && c.loss.Lose(src, dst, bytes) {
		// Eager retransmit: the first copy is lost, so the payload makes a
		// second wire transit that cannot start before the sender's timeout
		// fires. The receiver sees only the retransmitted copy's arrival,
		// and the sender's buffer is not free until the second copy drains.
		senderFree, arrival = c.nw.DeliverAfterFrom(p, srcNode, dstNode, bytes, senderFree+c.loss.Timeout())
		c.retransBytes[src] += bytes
		c.retransMsgs[src]++
		retrans = true
	}
	// The path recorder must see the message before any matched waiter can
	// resume and report its receive completion.
	pathID := int32(-1)
	if c.pr != nil {
		pathID = c.pr.PathSend(src, dst, tag, bytes, start, senderFree, arrival, retrans)
	}
	k := key{src, tag}
	if ws := c.waiters[dst][k]; len(ws) > 0 {
		w := ws[0]
		if c.pr != nil {
			if c.pendingPath[dst] >= 0 {
				panic(fmt.Sprintf("mpi: rank %d has two matched receives in flight", dst))
			}
			c.pendingPath[dst] = pathID
		}
		if len(ws) == 1 {
			delete(c.waiters[dst], k)
			ws[0] = recvWaiter{} // don't pin the process via the spare
			c.spareWaiters[dst] = append(c.spareWaiters[dst], ws[:0])
		} else {
			c.waiters[dst][k] = ws[1:]
		}
		if c.checking && w.expect >= 0 && w.expect != bytes {
			c.violations = append(c.violations, fmt.Sprintf(
				"rank %d expected %g bytes from rank %d (tag %d) but the sender delivered %g",
				dst, w.expect, src, tag, bytes))
		}
		// Resume through the sender's engine: its clock carries the send
		// time, which is the arithmetic frame the sequential engine uses —
		// and under PDES the receiver may live on a different partition.
		p.Engine().ResumeAt(arrival, w.p)
	} else {
		q := c.boxes[dst][k]
		if q == nil {
			if n := len(c.spareBox[dst]); n > 0 {
				q, c.spareBox[dst] = c.spareBox[dst][n-1], c.spareBox[dst][:n-1]
			}
		}
		c.boxes[dst][k] = append(q, inboxMsg{arrival: arrival, bytes: bytes, pathID: pathID})
	}
	p.SleepUntil(senderFree)
	if c.rec != nil {
		c.rec.RecordSend(src, dst, tag, bytes, start, p.Now())
	}
}

// Recv blocks p (the process running rank dst) until a message from src
// with the tag has fully arrived.
func (c *Comm) Recv(p *sim.Process, dst, src, tag int) {
	c.recvExpect(p, dst, src, tag, -1)
}

// recvExpect is Recv with a declared payload size: expect >= 0 asserts
// (under checking) that the matched message carries exactly that many
// bytes, so an asymmetric-exchange miscount fails the audit loudly
// instead of silently corrupting timings.
func (c *Comm) recvExpect(p *sim.Process, dst, src, tag int, expect float64) {
	c.check(src)
	c.check(dst)
	start := p.Now()
	k := key{src, tag}
	pathID := int32(-1)
	if q := c.boxes[dst][k]; len(q) > 0 {
		m := q[0]
		if len(q) == 1 {
			delete(c.boxes[dst], k)
			c.spareBox[dst] = append(c.spareBox[dst], q[:0])
		} else {
			c.boxes[dst][k] = q[1:]
		}
		if c.checking && expect >= 0 && expect != m.bytes {
			c.violations = append(c.violations, fmt.Sprintf(
				"rank %d expected %g bytes from rank %d (tag %d) but the sender delivered %g",
				dst, expect, src, tag, m.bytes))
		}
		pathID = m.pathID
		p.SleepUntil(m.arrival)
	} else {
		ws := c.waiters[dst][k]
		if ws == nil {
			if n := len(c.spareWaiters[dst]); n > 0 {
				ws, c.spareWaiters[dst] = c.spareWaiters[dst][n-1], c.spareWaiters[dst][:n-1]
			}
		}
		c.waiters[dst][k] = append(ws, recvWaiter{p: p, expect: expect})
		p.Suspend()
		if c.pr != nil {
			pathID = c.pendingPath[dst]
			c.pendingPath[dst] = -1
		}
	}
	c.recvMsgs[dst]++
	if c.pr != nil {
		c.pr.PathRecv(dst, pathID, start, p.Now())
	}
	if c.rec != nil {
		c.rec.RecordRecv(dst, src, tag, start, p.Now())
	}
}

// Sendrecv sends to dst and receives from src (both with the same tag), as
// one deadlock-free exchange. recvBytes declares the expected size of the
// incoming message; under checking a mismatch with the peer's actual send
// size is reported by Audit.
func (c *Comm) Sendrecv(p *sim.Process, me, dst, src, tag int, sendBytes, recvBytes float64) {
	c.Send(p, me, dst, tag, sendBytes)
	c.recvExpect(p, me, src, tag, recvBytes)
}

// Audit returns the communicator's invariant violations at the end of a
// run, as human-readable diagnostics in deterministic order: declared
// receive sizes that did not match the sender (collected under
// SetChecking), send/receive message-count imbalance, messages left in
// inboxes (sent but never received), receivers still suspended, and
// collective tag sequences that diverged across ranks. An empty slice
// means the communicator's schedule balanced exactly.
func (c *Comm) Audit() []string {
	out := append([]string(nil), c.violations...)
	var sent, recvd uint64
	for r := range c.rankNode {
		sent += c.sentMsgs[r]
		recvd += c.recvMsgs[r]
	}
	if sent != recvd {
		out = append(out, fmt.Sprintf("message counts do not balance: %d sent vs %d received", sent, recvd))
	}
	// Only keys with live entries are reported, which keeps Audit
	// independent of how the hot path recycles drained queue storage.
	sortedKeys := func(m map[key][]inboxMsg) []key {
		ks := make([]key, 0, len(m))
		for k := range m {
			if len(m[k]) > 0 {
				ks = append(ks, k)
			}
		}
		sort.Slice(ks, func(i, j int) bool {
			if ks[i].src != ks[j].src {
				return ks[i].src < ks[j].src
			}
			return ks[i].tag < ks[j].tag
		})
		return ks
	}
	for r := range c.boxes {
		for _, k := range sortedKeys(c.boxes[r]) {
			out = append(out, fmt.Sprintf(
				"rank %d inbox holds %d unreceived message(s) from rank %d with tag %d",
				r, len(c.boxes[r][k]), k.src, k.tag))
		}
	}
	for r := range c.waiters {
		ks := make([]key, 0, len(c.waiters[r]))
		for k := range c.waiters[r] {
			if len(c.waiters[r][k]) > 0 {
				ks = append(ks, k)
			}
		}
		sort.Slice(ks, func(i, j int) bool {
			if ks[i].src != ks[j].src {
				return ks[i].src < ks[j].src
			}
			return ks[i].tag < ks[j].tag
		})
		for _, k := range ks {
			out = append(out, fmt.Sprintf(
				"rank %d still has %d receiver(s) suspended waiting on rank %d tag %d",
				r, len(c.waiters[r][k]), k.src, k.tag))
		}
	}
	for r := 1; r < len(c.cseq); r++ {
		if c.cseq[r] != c.cseq[0] {
			out = append(out, fmt.Sprintf(
				"collective tag sequence diverged: rank %d consumed %d tags, rank 0 consumed %d",
				r, c.cseq[r], c.cseq[0]))
		}
	}
	return out
}
