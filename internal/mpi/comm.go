// Package mpi provides a message-passing layer over the simulated network:
// blocking point-to-point operations with tag matching plus the collective
// algorithms the paper's workloads exercise (binomial broadcast and reduce,
// recursive-doubling allreduce, ring allgather, pairwise alltoall).
//
// Sends are eager: a sender blocks only until its NIC has drained the
// message, never on the receiver posting — matching the rendezvous-free
// behaviour of small-to-medium MPI messages and keeping workload models
// deadlock-free by construction.
package mpi

import (
	"fmt"

	"clustersoc/internal/network"
	"clustersoc/internal/sim"
)

// collTagBase namespaces internally generated collective tags away from
// user point-to-point tags.
const collTagBase = 1 << 20

type key struct {
	src, tag int
}

// Recorder observes point-to-point traffic; internal/trace implements it
// to build replayable execution traces. Collectives are recorded as the
// p2p pattern they decompose into.
type Recorder interface {
	RecordSend(rank, peer, tag int, bytes, start, end float64)
	RecordRecv(rank, peer, tag int, start, end float64)
}

// Comm is a communicator over a set of ranks placed on network nodes.
type Comm struct {
	eng      *sim.Engine
	nw       *network.Network
	rankNode []int
	rec      Recorder

	boxes   []map[key][]float64      // per-rank inbox: arrival times, FIFO per (src,tag)
	waiters []map[key][]*sim.Process // per-rank blocked receivers, FIFO
	cseq    []int                    // per-rank collective sequence number

	sentBytes []float64 // per-rank bytes passed to Send (incl. intra-node)
	sentMsgs  []uint64
}

// NewComm creates a communicator with one rank per entry of rankNode;
// rankNode[i] is the network node hosting rank i.
func NewComm(e *sim.Engine, nw *network.Network, rankNode []int) *Comm {
	n := len(rankNode)
	c := &Comm{
		eng:       e,
		nw:        nw,
		rankNode:  append([]int(nil), rankNode...),
		boxes:     make([]map[key][]float64, n),
		waiters:   make([]map[key][]*sim.Process, n),
		cseq:      make([]int, n),
		sentBytes: make([]float64, n),
		sentMsgs:  make([]uint64, n),
	}
	for i := range c.boxes {
		c.boxes[i] = make(map[key][]float64)
		c.waiters[i] = make(map[key][]*sim.Process)
	}
	return c
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.rankNode) }

// Node returns the network node hosting a rank.
func (c *Comm) Node(rank int) int { return c.rankNode[rank] }

// Network returns the underlying interconnect.
func (c *Comm) Network() *network.Network { return c.nw }

// SentBytes returns the bytes rank has sent so far.
func (c *Comm) SentBytes(rank int) float64 { return c.sentBytes[rank] }

// Messages returns the number of messages rank has sent.
func (c *Comm) Messages(rank int) uint64 { return c.sentMsgs[rank] }

func (c *Comm) check(rank int) {
	if rank < 0 || rank >= len(c.rankNode) {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, len(c.rankNode)))
	}
}

// SetRecorder attaches a trace recorder (nil to detach).
func (c *Comm) SetRecorder(r Recorder) { c.rec = r }

// Send transmits bytes from src to dst with a tag, blocking p (the process
// running rank src) until the local NIC has drained the message.
func (c *Comm) Send(p *sim.Process, src, dst, tag int, bytes float64) {
	c.check(src)
	c.check(dst)
	start := p.Now()
	senderFree, arrival := c.nw.Deliver(c.rankNode[src], c.rankNode[dst], bytes)
	c.sentBytes[src] += bytes
	c.sentMsgs[src]++
	k := key{src, tag}
	if ws := c.waiters[dst][k]; len(ws) > 0 {
		w := ws[0]
		if len(ws) == 1 {
			delete(c.waiters[dst], k)
		} else {
			c.waiters[dst][k] = ws[1:]
		}
		c.eng.ResumeAt(arrival, w)
	} else {
		c.boxes[dst][k] = append(c.boxes[dst][k], arrival)
	}
	p.SleepUntil(senderFree)
	if c.rec != nil {
		c.rec.RecordSend(src, dst, tag, bytes, start, p.Now())
	}
}

// Recv blocks p (the process running rank dst) until a message from src
// with the tag has fully arrived.
func (c *Comm) Recv(p *sim.Process, dst, src, tag int) {
	c.check(src)
	c.check(dst)
	start := p.Now()
	k := key{src, tag}
	if q := c.boxes[dst][k]; len(q) > 0 {
		arrival := q[0]
		if len(q) == 1 {
			delete(c.boxes[dst], k)
		} else {
			c.boxes[dst][k] = q[1:]
		}
		p.SleepUntil(arrival)
	} else {
		c.waiters[dst][k] = append(c.waiters[dst][k], p)
		p.Suspend()
	}
	if c.rec != nil {
		c.rec.RecordRecv(dst, src, tag, start, p.Now())
	}
}

// Sendrecv sends to dst and receives from src (both with the same tag), as
// one deadlock-free exchange.
func (c *Comm) Sendrecv(p *sim.Process, me, dst, src, tag int, sendBytes, recvBytes float64) {
	_ = recvBytes // size is carried by the sender's Deliver call
	c.Send(p, me, dst, tag, sendBytes)
	c.Recv(p, me, src, tag)
}
