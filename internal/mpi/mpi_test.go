package mpi

import (
	"math"
	"testing"
	"testing/quick"

	"clustersoc/internal/network"
	"clustersoc/internal/sim"
	"clustersoc/internal/units"
)

// build creates an n-rank communicator, one rank per node.
func build(n int, prof network.Profile) (*sim.Engine, *Comm) {
	e := sim.NewEngine()
	nw := network.New(e, n, prof)
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	return e, NewComm(e, nw, nodes)
}

// runRanks spawns body for every rank and runs to completion.
func runRanks(e *sim.Engine, n int, body func(p *sim.Process, rank int)) float64 {
	for r := 0; r < n; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Process) { body(p, r) })
	}
	return e.Run()
}

func TestSendRecvBasic(t *testing.T) {
	e, c := build(2, network.GigE)
	var recvAt float64
	runRanks(e, 2, func(p *sim.Process, rank int) {
		if rank == 0 {
			c.Send(p, 0, 1, 7, 1*units.MB)
		} else {
			c.Recv(p, 1, 0, 7)
			recvAt = p.Now()
		}
	})
	want := 1*units.MB/network.GigE.Throughput + network.GigE.Latency
	if math.Abs(recvAt-want) > 1e-9 {
		t.Fatalf("recv at %v, want %v", recvAt, want)
	}
}

func TestRecvBeforeSendBlocks(t *testing.T) {
	e, c := build(2, network.GigE)
	order := []string{}
	runRanks(e, 2, func(p *sim.Process, rank int) {
		if rank == 1 {
			c.Recv(p, 1, 0, 3) // posted first, must block
			order = append(order, "recv")
		} else {
			p.Sleep(0.5)
			c.Send(p, 0, 1, 3, 100)
			order = append(order, "send")
		}
	})
	if len(order) != 2 || order[0] != "send" {
		t.Fatalf("order = %v", order)
	}
}

func TestMessageOrderFIFOPerTag(t *testing.T) {
	e, c := build(2, network.TenGigE)
	var times []float64
	runRanks(e, 2, func(p *sim.Process, rank int) {
		if rank == 0 {
			for i := 0; i < 3; i++ {
				c.Send(p, 0, 1, 1, 1*units.MB)
			}
		} else {
			for i := 0; i < 3; i++ {
				c.Recv(p, 1, 0, 1)
				times = append(times, p.Now())
			}
		}
	})
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("non-monotonic arrivals: %v", times)
		}
	}
}

func TestTagsMatchIndependently(t *testing.T) {
	e, c := build(2, network.TenGigE)
	got := []int{}
	runRanks(e, 2, func(p *sim.Process, rank int) {
		if rank == 0 {
			c.Send(p, 0, 1, 10, 100)
			c.Send(p, 0, 1, 20, 100)
		} else {
			c.Recv(p, 1, 0, 20) // out of send order, by tag
			got = append(got, 20)
			c.Recv(p, 1, 0, 10)
			got = append(got, 10)
		}
	})
	if len(got) != 2 || got[0] != 20 || got[1] != 10 {
		t.Fatalf("tag matching broken: %v", got)
	}
}

func TestBcastSmallDeliversToAll(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8, 16} {
		e, c := build(n, network.TenGigE)
		done := 0
		runRanks(e, n, func(p *sim.Process, rank int) {
			c.Bcast(p, rank, 0, 100*units.KB) // below the large threshold
			done++
		})
		if done != n {
			t.Fatalf("n=%d: only %d ranks finished bcast", n, done)
		}
		// A binomial tree moves exactly (n-1) copies of the payload.
		var sent float64
		for r := 0; r < n; r++ {
			sent += c.SentBytes(r)
		}
		if math.Abs(sent-float64(n-1)*100*units.KB) > 1 {
			t.Fatalf("n=%d: bcast moved %v bytes, want %v", n, sent, float64(n-1)*100*units.KB)
		}
	}
}

// Large broadcasts switch to scatter+allgather: volume stays O(2*bytes)
// and the completion time beats the tree for deep communicators.
func TestBcastLargeScatterAllgather(t *testing.T) {
	for _, n := range []int{4, 8, 11} {
		e, c := build(n, network.TenGigE)
		done := 0
		payload := 8 * units.MB
		runRanks(e, n, func(p *sim.Process, rank int) {
			c.Bcast(p, rank, 0, payload)
			done++
		})
		if done != n {
			t.Fatalf("n=%d: %d ranks finished", n, done)
		}
		var sent float64
		for r := 0; r < n; r++ {
			sent += c.SentBytes(r)
		}
		// The ring allgather moves (n-1) chunk-sets = (n-1)/n * n * chunk
		// per rank: (n-1)*payload total. The binomial scatter adds at most
		// log2(n)*payload (each chunk travels at most the tree depth).
		lo := float64(n-1) / float64(n) * payload * float64(n-1)
		hi := float64(n-1)*payload + 3.5*payload
		if sent < lo || sent > hi {
			t.Fatalf("n=%d: large bcast moved %v, want in [%v, %v]", n, sent, lo, hi)
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	e, c := build(5, network.TenGigE)
	done := 0
	runRanks(e, 5, func(p *sim.Process, rank int) {
		c.Bcast(p, rank, 3, 1000)
		done++
	})
	if done != 5 {
		t.Fatalf("%d ranks finished", done)
	}
}

func TestReduceCompletes(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		for root := 0; root < n; root++ {
			e, c := build(n, network.TenGigE)
			done := 0
			runRanks(e, n, func(p *sim.Process, rank int) {
				c.Reduce(p, rank, root, 1000)
				done++
			})
			if done != n {
				t.Fatalf("n=%d root=%d: %d finished", n, root, done)
			}
		}
	}
}

func TestAllreduceByteCountRecursiveDoubling(t *testing.T) {
	n := 8
	e, c := build(n, network.TenGigE)
	bytes := 100 * units.KB // below the Rabenseifner threshold
	runRanks(e, n, func(p *sim.Process, rank int) {
		c.Allreduce(p, rank, bytes)
	})
	var sent float64
	for r := 0; r < n; r++ {
		sent += c.SentBytes(r)
	}
	want := float64(n) * 3 * bytes // log2(8)=3 rounds, every rank sends each round
	if math.Abs(sent-want) > 1 {
		t.Fatalf("allreduce moved %v, want %v", sent, want)
	}
}

func TestAllreduceNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7} {
		e, c := build(n, network.GigE)
		done := 0
		runRanks(e, n, func(p *sim.Process, rank int) {
			c.Allreduce(p, rank, 1000)
			done++
		})
		if done != n {
			t.Fatalf("n=%d: %d finished", n, done)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	n := 4
	e, c := build(n, network.TenGigE)
	var after []float64
	runRanks(e, n, func(p *sim.Process, rank int) {
		p.Sleep(float64(rank)) // staggered arrival; slowest at t=3
		c.Barrier(p, rank)
		after = append(after, p.Now())
	})
	for _, a := range after {
		if a < 3 {
			t.Fatalf("a rank left the barrier at %v before the slowest arrived", a)
		}
	}
}

func TestAlltoallByteCount(t *testing.T) {
	for _, n := range []int{4, 6} {
		e, c := build(n, network.TenGigE)
		per := 100 * units.KB
		runRanks(e, n, func(p *sim.Process, rank int) {
			c.Alltoall(p, rank, per)
		})
		var sent float64
		for r := 0; r < n; r++ {
			sent += c.SentBytes(r)
		}
		want := float64(n) * float64(n-1) * per
		if math.Abs(sent-want) > 1 {
			t.Fatalf("n=%d: alltoall moved %v, want %v", n, sent, want)
		}
	}
}

func TestAllgatherRingByteCount(t *testing.T) {
	n := 5
	e, c := build(n, network.TenGigE)
	per := 10 * units.KB
	runRanks(e, n, func(p *sim.Process, rank int) {
		c.Allgather(p, rank, per)
	})
	var sent float64
	for r := 0; r < n; r++ {
		sent += c.SentBytes(r)
	}
	want := float64(n) * float64(n-1) * per
	if math.Abs(sent-want) > 1 {
		t.Fatalf("allgather moved %v, want %v", sent, want)
	}
}

func TestGather(t *testing.T) {
	n := 6
	e, c := build(n, network.TenGigE)
	done := 0
	runRanks(e, n, func(p *sim.Process, rank int) {
		c.Gather(p, rank, 2, 1000)
		done++
	})
	if done != n {
		t.Fatalf("%d finished", done)
	}
}

// The network choice must matter: the same allreduce is faster on 10 GbE.
func TestFasterNICFasterCollective(t *testing.T) {
	run := func(prof network.Profile) float64 {
		e, c := build(8, prof)
		return runRanks(e, 8, func(p *sim.Process, rank int) {
			c.Allreduce(p, rank, 10*units.MB)
		})
	}
	t1, t10 := run(network.GigE), run(network.TenGigE)
	if t10 >= t1 {
		t.Fatalf("10GbE (%v) not faster than 1GbE (%v)", t10, t1)
	}
	speedup := t1 / t10
	if speedup < 2 {
		t.Errorf("speedup %.2f suspiciously low for a bandwidth-bound collective", speedup)
	}
}

// Intra-node ranks communicate through memory: a 2-rank comm on one node
// beats the same on two nodes.
func TestIntraNodeFaster(t *testing.T) {
	e1 := sim.NewEngine()
	nw1 := network.New(e1, 1, network.GigE)
	c1 := NewComm(e1, nw1, []int{0, 0})
	var tShared float64
	for r := 0; r < 2; r++ {
		r := r
		e1.Spawn("rank", func(p *sim.Process) {
			c1.Allreduce(p, r, 10*units.MB)
			tShared = p.Now()
		})
	}
	e1.Run()

	e2, c2 := build(2, network.GigE)
	tNet := runRanks(e2, 2, func(p *sim.Process, rank int) {
		c2.Allreduce(p, rank, 10*units.MB)
	})
	if tShared >= tNet {
		t.Fatalf("shared memory (%v) not faster than network (%v)", tShared, tNet)
	}
}

// Property: collectives complete (no deadlock, no lost wakeup) for random
// sizes and rank counts.
func TestCollectivesCompleteProperty(t *testing.T) {
	f := func(nRaw, bRaw uint8) bool {
		n := int(nRaw%12) + 1
		root := int(bRaw) % n
		bytes := float64(bRaw)*1000 + 8
		e, c := build(n, network.GigE)
		done := 0
		runRanks(e, n, func(p *sim.Process, rank int) {
			c.Allreduce(p, rank, bytes)
			c.Bcast(p, rank, root, bytes)
			c.Alltoall(p, rank, bytes/8)
			done++
		})
		return done == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Large allreduces switch to Rabenseifner's reduce-scatter + allgather:
// per-rank volume ~2*bytes (vs log2(n)*bytes for recursive doubling), and
// it must be faster for bandwidth-bound payloads.
func TestAllreduceLargeUsesRabenseifner(t *testing.T) {
	n := 8
	e, c := build(n, network.TenGigE)
	payload := 8 * units.MB
	end := runRanks(e, n, func(p *sim.Process, rank int) {
		c.Allreduce(p, rank, payload)
	})
	var sent float64
	for r := 0; r < n; r++ {
		sent += c.SentBytes(r)
	}
	// reduce-scatter: bytes*(1/2+1/4+1/8) ~ 7/8*bytes; allgather the same:
	// total per rank ~ 1.75*bytes, cluster ~ n*1.75*bytes — far below the
	// n*3*bytes of recursive doubling.
	rdVolume := float64(n) * 3 * payload
	if sent >= rdVolume*0.8 {
		t.Fatalf("large allreduce moved %v, expected well under recursive doubling's %v", sent, rdVolume)
	}
	// And it should beat a recursive-doubling run of the same payload in time.
	e2, c2 := build(n, network.TenGigE)
	end2 := runRanks(e2, n, func(p *sim.Process, rank int) {
		// Force the small-message path by splitting into sub-threshold chunks.
		for i := 0; i < 32; i++ {
			c2.Allreduce(p, rank, payload/32)
		}
	})
	if end >= end2 {
		t.Fatalf("Rabenseifner (%v) not faster than chunked recursive doubling (%v)", end, end2)
	}
}
