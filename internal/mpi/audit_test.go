package mpi

import (
	"strings"
	"testing"

	"clustersoc/internal/network"
	"clustersoc/internal/sim"
	"clustersoc/internal/units"
)

// A balanced schedule audits clean: counts match, inboxes drain, tags
// stay in lockstep.
func TestAuditCleanSchedule(t *testing.T) {
	n := 5
	e, c := build(n, network.TenGigE)
	c.SetChecking(true)
	runRanks(e, n, func(p *sim.Process, rank int) {
		c.Allreduce(p, rank, 100*units.KB)
		c.Bcast(p, rank, 2, 1000)
		c.Alltoall(p, rank, 5000)
		if rank == 0 {
			c.Send(p, 0, 1, 9, 100)
		}
		if rank == 1 {
			c.Recv(p, 1, 0, 9)
		}
	})
	if diags := c.Audit(); len(diags) != 0 {
		t.Fatalf("clean schedule audited dirty: %v", diags)
	}
	var sent, recvd uint64
	for r := 0; r < n; r++ {
		sent += c.Messages(r)
		recvd += c.Receives(r)
	}
	if sent == 0 || sent != recvd {
		t.Fatalf("counters: %d sent, %d received", sent, recvd)
	}
}

// A send nobody receives must surface as both a count imbalance and a
// named leftover inbox entry.
func TestAuditFlagsUnreceivedMessage(t *testing.T) {
	e, c := build(2, network.GigE)
	runRanks(e, 2, func(p *sim.Process, rank int) {
		if rank == 0 {
			c.Send(p, 0, 1, 42, 1000)
		}
	})
	diags := c.Audit()
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (imbalance + leftover inbox), got %v", diags)
	}
	if !strings.Contains(diags[0], "1 sent vs 0 received") {
		t.Errorf("imbalance diagnostic missing: %q", diags[0])
	}
	if !strings.Contains(diags[1], "rank 1 inbox holds 1 unreceived message(s) from rank 0 with tag 42") {
		t.Errorf("leftover diagnostic missing rank/tag/src: %q", diags[1])
	}
}

// Sendrecv's declared receive size is validated against the peer's actual
// send under checking — the bug this PR fixes silently discarded it.
func TestSendrecvSizeMismatchAudited(t *testing.T) {
	e, c := build(2, network.TenGigE)
	c.SetChecking(true)
	runRanks(e, 2, func(p *sim.Process, rank int) {
		peer := 1 - rank
		sendBytes := 1000.0
		if rank == 1 {
			sendBytes = 2000 // asymmetric: rank 0's declared 1000 is wrong
		}
		c.Sendrecv(p, rank, peer, peer, 5, sendBytes, 1000)
	})
	diags := c.Audit()
	if len(diags) != 1 {
		t.Fatalf("want exactly the size-mismatch diagnostic, got %v", diags)
	}
	if !strings.Contains(diags[0], "rank 0 expected 1000 bytes from rank 1 (tag 5) but the sender delivered 2000") {
		t.Errorf("mismatch diagnostic wrong: %q", diags[0])
	}
}

// Without checking, a size mismatch is tolerated silently (the historical
// behaviour): timing comes from the sender and the audit stays clean.
func TestSendrecvSizeMismatchIgnoredWithoutChecking(t *testing.T) {
	e, c := build(2, network.TenGigE)
	runRanks(e, 2, func(p *sim.Process, rank int) {
		peer := 1 - rank
		sendBytes := 1000.0
		if rank == 1 {
			sendBytes = 2000
		}
		c.Sendrecv(p, rank, peer, peer, 5, sendBytes, 1000)
	})
	if diags := c.Audit(); len(diags) != 0 {
		t.Fatalf("unchecked run should audit clean, got %v", diags)
	}
}

// The size check must fire on both match orders: sender-first (message
// waits in the inbox) and receiver-first (receiver suspended as a waiter).
func TestSendrecvMismatchBothMatchOrders(t *testing.T) {
	for _, receiverFirst := range []bool{false, true} {
		e, c := build(2, network.TenGigE)
		c.SetChecking(true)
		runRanks(e, 2, func(p *sim.Process, rank int) {
			if rank == 0 {
				if !receiverFirst {
					p.Sleep(1) // let the send land in the inbox first
				}
				c.recvExpect(p, 0, 1, 7, 500)
			} else {
				if receiverFirst {
					p.Sleep(1) // let the receive suspend first
				}
				c.Send(p, 1, 0, 7, 900)
			}
		})
		diags := c.Audit()
		if len(diags) != 1 || !strings.Contains(diags[0], "expected 500 bytes") {
			t.Fatalf("receiverFirst=%v: want one mismatch diagnostic, got %v", receiverFirst, diags)
		}
	}
}

// Bcast must consume the same number of collective tags on its small and
// large paths: a mixed-size sequence (large, small, large) keeps every
// rank's tag counter in lockstep and matches cleanly.
func TestBcastMixedSizesKeepTagsInLockstep(t *testing.T) {
	for _, n := range []int{3, 4, 7, 8} {
		e, c := build(n, network.TenGigE)
		c.SetChecking(true)
		done := 0
		runRanks(e, n, func(p *sim.Process, rank int) {
			c.Bcast(p, rank, 0, float64(BcastLargeThreshold)*4) // van de Geijn
			c.Bcast(p, rank, 1, 1000)                           // binomial
			c.Bcast(p, rank, 0, float64(BcastLargeThreshold))   // van de Geijn again
			c.Allreduce(p, rank, 64)                            // must still match
			done++
		})
		if done != n {
			t.Fatalf("n=%d: only %d ranks finished the mixed-size sequence", n, done)
		}
		if diags := c.Audit(); len(diags) != 0 {
			t.Fatalf("n=%d: mixed-size bcasts broke the schedule: %v", n, diags)
		}
		for r := 1; r < n; r++ {
			if c.cseq[r] != c.cseq[0] {
				t.Fatalf("n=%d: rank %d consumed %d tags, rank 0 consumed %d", n, r, c.cseq[r], c.cseq[0])
			}
		}
		// Both paths must burn exactly two tags per Bcast. A power-of-two
		// allreduce consumes one; the fallback composes reduce (1) + bcast (2).
		want := 3*2 + 1
		if n&(n-1) != 0 {
			want = 3*2 + 3
		}
		if c.cseq[0] != want {
			t.Fatalf("n=%d: 3 bcasts + 1 allreduce consumed %d tags, want %d", n, c.cseq[0], want)
		}
	}
}
