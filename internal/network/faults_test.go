package network

import (
	"math"
	"testing"

	"clustersoc/internal/sim"
)

// fakeFlaps replays a fixed window list, then reports exhaustion.
type fakeFlaps struct {
	ws [][2]float64
	i  int
}

func (f *fakeFlaps) Next() (float64, float64) {
	if f.i >= len(f.ws) {
		return math.Inf(1), math.Inf(1)
	}
	w := f.ws[f.i]
	f.i++
	return w[0], w[1]
}

func TestLinkDerateSlowsService(t *testing.T) {
	e := sim.NewEngine()
	healthy := New(e, 2, TenGigE)
	degraded := New(e, 2, TenGigE)
	degraded.InjectLinkFaults(0, 0.5, nil)
	sfH, _ := healthy.Deliver(0, 1, 1e6)
	sfD, _ := degraded.Deliver(0, 1, 1e6)
	if got, want := sfD, 2*sfH; math.Abs(got-want) > 1e-12*want {
		t.Fatalf("derated sender free at %g, want %g (half throughput)", got, want)
	}
	// The path rate is the min of both endpoints: degrading the receiver
	// must cost the same as degrading the sender.
	rxDeg := New(e, 2, TenGigE)
	rxDeg.InjectLinkFaults(1, 0.5, nil)
	if sfR, _ := rxDeg.Deliver(0, 1, 1e6); sfR != sfD {
		t.Fatalf("receiver-side derate gave %g, sender-side %g — path rate must be the min", sfR, sfD)
	}
}

func TestFlapWindowDelaysBooking(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 2, TenGigE)
	nw.InjectLinkFaults(0, 0, &fakeFlaps{ws: [][2]float64{{1, 2}}})
	var sf float64
	e.Spawn("sender", func(p *sim.Process) {
		p.SleepUntil(1.5) // inside the flap window
		sf, _ = nw.Deliver(0, 1, 1000)
		p.SleepUntil(sf)
	})
	e.Run()
	svc := 1000 / TenGigE.Throughput
	if want := 2 + svc; math.Abs(sf-want) > 1e-12 {
		t.Fatalf("sender free at %g, want %g (service pushed past the flap)", sf, want)
	}
	delays, seconds, cancelled := nw.FlapDelays()
	if delays != 1 || cancelled != 0 {
		t.Fatalf("flap delays = %d (cancelled %d), want 1 (0)", delays, cancelled)
	}
	if math.Abs(seconds-0.5) > 1e-12 {
		t.Fatalf("flap delay seconds = %g, want 0.5", seconds)
	}
}

func TestTrafficBeforeFlapUnaffected(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 2, TenGigE)
	nw.InjectLinkFaults(0, 0, &fakeFlaps{ws: [][2]float64{{10, 20}}})
	sf, _ := nw.Deliver(0, 1, 1000)
	if want := 1000 / TenGigE.Throughput; math.Abs(sf-want) > 1e-15 {
		t.Fatalf("pre-flap booking delayed: sender free %g, want %g", sf, want)
	}
}

func TestForceDownCancelsFlapRestore(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 2, TenGigE)
	nw.InjectLinkFaults(0, 0, &fakeFlaps{ws: [][2]float64{{1, 2}}})
	e.Spawn("sender", func(p *sim.Process) {
		p.SleepUntil(1.2)
		sf, _ := nw.Deliver(0, 1, 1000) // enters the flap, arms the restore timer for t=2
		_ = sf
		nw.ForceDown(0, 1.5, 4) // crash: NIC reset supersedes the flap recovery
		p.SleepUntil(3)
		sf2, _ := nw.Deliver(0, 1, 1000) // inside the outage window: pushed to 4
		if sf2 < 4 {
			p.Sleep(0) // keep determinism; assertion happens after Run
		}
		p.SleepUntil(sf2)
	})
	e.Run()
	_, _, cancelled := nw.FlapDelays()
	if cancelled != 1 {
		t.Fatalf("flap restores cancelled = %d, want 1 (ForceDown must stop the pending timer)", cancelled)
	}
	delays, seconds, _ := nw.FlapDelays()
	// Two delayed bookings: one by the flap (1.2 -> 2), one by the crash
	// outage (3 -> 4).
	if delays != 2 {
		t.Fatalf("delayed bookings = %d, want 2", delays)
	}
	if want := 0.8 + 1.0; math.Abs(seconds-want) > 1e-12 {
		t.Fatalf("delay seconds = %g, want %g", seconds, want)
	}
}

func TestDeliverAfterFloorsServiceStart(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 2, TenGigE)
	svc := 1000 / TenGigE.Throughput
	sf, arrival := nw.DeliverAfter(0, 1, 1000, 5)
	if want := 5 + svc; math.Abs(sf-want) > 1e-12 {
		t.Fatalf("sender free at %g, want %g (floored at 5)", sf, want)
	}
	if want := 5 + svc + TenGigE.Latency; math.Abs(arrival-want) > 1e-12 {
		t.Fatalf("arrival at %g, want %g", arrival, want)
	}
	// A floor in the past is a plain Deliver.
	nw2 := New(e, 2, TenGigE)
	if sf2, _ := nw2.DeliverAfter(0, 1, 1000, -3); sf2 != svc {
		t.Fatalf("past floor changed the booking: %g, want %g", sf2, svc)
	}
}

// TestIntraNodeFlapThenForceDownIterates pins the loopback admission fix:
// escaping a flap window on the intra-node memory path can land the
// service start inside a crash-outage (ForceDown) window, and a single
// admitOne pass would not re-check the forced windows after the move. The
// wire path has always iterated (admit); the loopback path must too.
func TestIntraNodeFlapThenForceDownIterates(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 2, TenGigE)
	// Flap [1,2) flows into outage [2,3): a booking floored at 1.5 escapes
	// the flap to 2, which is exactly inside the outage, and must end up
	// at 3.
	nw.InjectLinkFaults(0, 0, &fakeFlaps{ws: [][2]float64{{1, 2}}})
	nw.ForceDown(0, 2, 3)
	var sf float64
	e.Spawn("sender", func(p *sim.Process) {
		p.SleepUntil(1.5)
		sf, _ = nw.Deliver(0, 0, 1000) // src == dst: memory path
		p.SleepUntil(sf)
	})
	e.Run()
	svc := 1000 / MemoryPathBandwidth
	if want := 3 + svc; math.Abs(sf-want) > 1e-12 {
		t.Fatalf("loopback sender free at %g, want %g (start must clear both windows)", sf, want)
	}
	delays, seconds, _ := nw.FlapDelays()
	if delays != 2 {
		t.Fatalf("flap delays = %d, want 2 (one per window crossed)", delays)
	}
	if math.Abs(seconds-(0.5+1)) > 1e-12 {
		t.Fatalf("flap delay seconds = %g, want 1.5", seconds)
	}
}

// TestIntraNodeForceDownThenFlapIterates is the mirrored interleaving:
// the outage comes first and pushes the start into a later flap window.
func TestIntraNodeForceDownThenFlapIterates(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 2, TenGigE)
	nw.InjectLinkFaults(0, 0, &fakeFlaps{ws: [][2]float64{{2, 2.5}}})
	nw.ForceDown(0, 1, 2)
	var sf float64
	e.Spawn("sender", func(p *sim.Process) {
		p.SleepUntil(1.5)
		sf, _ = nw.Deliver(0, 0, 1000)
		p.SleepUntil(sf)
	})
	e.Run()
	svc := 1000 / MemoryPathBandwidth
	if want := 2.5 + svc; math.Abs(sf-want) > 1e-12 {
		t.Fatalf("loopback sender free at %g, want %g", sf, want)
	}
}

// TestDeliverAfterFloorInsideDownWindow pins DeliverAfter's interaction
// with the fault plane: an `earliest` floor landing inside a down window
// starts service at the window's end, not at the floor.
func TestDeliverAfterFloorInsideDownWindow(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 2, TenGigE)
	nw.ForceDown(0, 2, 3)
	var sf, arr float64
	e.Spawn("sender", func(p *sim.Process) {
		// Called at t=0 with a floor of 2.5 — inside the outage.
		sf, arr = nw.DeliverAfter(0, 1, 1000, 2.5)
		p.SleepUntil(sf)
	})
	e.Run()
	svc := 1000 / TenGigE.Throughput
	if want := 3 + svc; math.Abs(sf-want) > 1e-12 {
		t.Fatalf("sender free at %g, want %g (floor inside outage must slide to its end)", sf, want)
	}
	if want := 3 + svc + TenGigE.Latency; math.Abs(arr-want) > 1e-12 {
		t.Fatalf("arrival at %g, want %g", arr, want)
	}
	delays, seconds, _ := nw.FlapDelays()
	if delays != 1 || math.Abs(seconds-0.5) > 1e-12 {
		t.Fatalf("outage delay accounting = (%d, %g), want (1, 0.5)", delays, seconds)
	}
}
