// Package network models the cluster interconnect: per-node NICs, a
// switch, and the intra-node memory path used when two ranks share a node.
//
// The model is a crossbar: a message occupies its source TX port and its
// destination RX port simultaneously for bytes/throughput seconds (so
// fan-out serializes at the sender and incast serializes at the receiver),
// and one-way wire latency is added on top, pipelined. This reproduces the
// iperf throughput and ping-pong latency numbers the paper measured while
// letting congestion emerge from port queueing.
package network

import (
	"fmt"
	"math"

	"clustersoc/internal/obs"
	"clustersoc/internal/sim"
	"clustersoc/internal/units"
)

// Profile describes one NIC option for the cluster.
type Profile struct {
	Name        string
	Throughput  float64 // effective bytes/second per direction (as iperf measures)
	Latency     float64 // one-way latency in seconds (half the ping-pong RTT)
	PowerWatts  float64 // extra power drawn per node by this NIC
	SwitchWatts float64 // power of the switch serving the cluster
}

// The two network options the paper evaluates. The on-board 1 GbE achieves
// 0.94 Gb/s effective; the Startech 10 GbE card is bound by the TX1's
// PCIe x1 gen2 slot and achieves 3.3 Gb/s, costing ~5 W per node.
// Ping-pong RTTs: 200 us (1 GbE) and 50 us (10 GbE).
var (
	GigE = Profile{
		Name:        "1GbE",
		Throughput:  0.94 * units.Gbps,
		Latency:     100 * units.Microsecond,
		PowerWatts:  0,
		SwitchWatts: 8, // unmanaged Netgear 1 GbE switch
	}
	TenGigE = Profile{
		Name:        "10GbE",
		Throughput:  3.3 * units.Gbps,
		Latency:     25 * units.Microsecond,
		PowerWatts:  5,
		SwitchWatts: 25, // managed 10 GbE switch, amortized over its ports
	}
	// Ideal is the zero-latency, effectively-infinite-bandwidth network used
	// by the DIMEMAS-style ideal-network replay scenario.
	Ideal = Profile{Name: "ideal", Throughput: 1e15, Latency: 0, PowerWatts: 0}
)

// port is one direction of a NIC: a FIFO bandwidth server.
type port struct {
	free      float64
	bytes     float64
	busy      float64
	queuedMax float64     // high-water mark of bytes queued behind the port (instrumented runs only)
	pending   []queuedMsg // bookings not yet in service, pruned lazily (instrumented runs only)
}

// queuedMsg is one booking that had to wait behind the port: it enters
// service at start and counts as backlog until then.
type queuedMsg struct {
	start float64
	bytes float64
}

// Network is the interconnect for a set of nodes.
type Network struct {
	eng     *sim.Engine
	prof    Profile
	tx, rx  []port
	loop    []port // intra-node memory path, one per node
	memBW   float64
	memLat  float64
	fabric  float64 // total bytes through the switch, for statistics
	packets uint64

	// sizeHist, when attached via Instrument, observes every message's
	// size. It doubles as the instrumentation switch: the queued-bytes
	// high-water tracking keys off the same nil check, so an
	// uninstrumented Deliver pays exactly one comparison.
	sizeHist *obs.Histogram
}

// MemoryPathBandwidth is the effective bandwidth of rank-to-rank transfers
// through shared memory on one node (a memcpy: read + write through DRAM).
const MemoryPathBandwidth = 5 * units.GBps

// MemoryPathLatency is the software latency of an intra-node message.
const MemoryPathLatency = 1 * units.Microsecond

// New creates a network connecting nodes through prof.
func New(e *sim.Engine, nodes int, prof Profile) *Network {
	return &Network{
		eng:    e,
		prof:   prof,
		tx:     make([]port, nodes),
		rx:     make([]port, nodes),
		loop:   make([]port, nodes),
		memBW:  MemoryPathBandwidth,
		memLat: MemoryPathLatency,
	}
}

// Profile returns the NIC profile in use.
func (nw *Network) Profile() Profile { return nw.prof }

// Nodes returns the number of attached nodes.
func (nw *Network) Nodes() int { return len(nw.tx) }

// Deliver books a message of the given size from node src to node dst and
// returns (senderFree, arrival): the time the sender's buffer has drained
// and the time the last byte reaches the receiver. Deliver does not block;
// the MPI layer schedules around the returned times.
func (nw *Network) Deliver(src, dst int, bytes float64) (senderFree, arrival float64) {
	if src < 0 || src >= len(nw.tx) || dst < 0 || dst >= len(nw.rx) {
		panic(fmt.Sprintf("network: node out of range: %d -> %d (have %d)", src, dst, len(nw.tx)))
	}
	now := nw.eng.Now()
	nw.packets++
	if src == dst {
		lp := &nw.loop[src]
		start := math.Max(now, lp.free)
		svc := bytes / nw.memBW
		lp.free = start + svc
		lp.bytes += bytes
		lp.busy += svc
		if nw.sizeHist != nil {
			nw.sizeHist.Observe(bytes)
			lp.markQueued(now, start, bytes)
		}
		return lp.free, lp.free + nw.memLat
	}
	t, r := &nw.tx[src], &nw.rx[dst]
	start := math.Max(now, math.Max(t.free, r.free))
	svc := bytes / nw.prof.Throughput
	t.free = start + svc
	r.free = start + svc
	t.bytes += bytes
	r.bytes += bytes
	t.busy += svc
	r.busy += svc
	nw.fabric += bytes
	if nw.sizeHist != nil {
		nw.sizeHist.Observe(bytes)
		t.markQueued(now, start, bytes)
		r.markQueued(now, start, bytes)
	}
	return t.free, t.free + nw.prof.Latency
}

// markQueued updates the port's queued-bytes high-water mark right after
// a booking that enters service at start. Backlog counts only bookings
// still waiting for the port — the message currently in service (and
// everything already drained) is not queued, so a booking on an idle
// port records zero.
func (p *port) markQueued(now, start, bytes float64) {
	live, queued := p.pending[:0], 0.0
	for _, m := range p.pending {
		if m.start > now {
			live = append(live, m)
			queued += m.bytes
		}
	}
	p.pending = live
	if start > now {
		p.pending = append(p.pending, queuedMsg{start: start, bytes: bytes})
		queued += bytes
	}
	if queued > p.queuedMax {
		p.queuedMax = queued
	}
}

// BytesSent returns the total bytes node has transmitted over the wire
// (intra-node traffic excluded).
func (nw *Network) BytesSent(node int) float64 { return nw.tx[node].bytes }

// BytesReceived returns the total bytes node has received over the wire.
func (nw *Network) BytesReceived(node int) float64 { return nw.rx[node].bytes }

// FabricBytes returns the total bytes that crossed the switch.
func (nw *Network) FabricBytes() float64 { return nw.fabric }

// IntraNodeBytes returns bytes moved through node's shared-memory path.
func (nw *Network) IntraNodeBytes(node int) float64 { return nw.loop[node].bytes }

// Messages returns the number of Deliver calls.
func (nw *Network) Messages() uint64 { return nw.packets }

// TXBusy returns the accumulated busy seconds of a node's TX port.
func (nw *Network) TXBusy(node int) float64 { return nw.tx[node].busy }

// RXBusy returns the accumulated busy seconds of a node's RX port.
func (nw *Network) RXBusy(node int) float64 { return nw.rx[node].busy }

// LoopBusy returns the accumulated busy seconds of a node's intra-node
// shared-memory path.
func (nw *Network) LoopBusy(node int) float64 { return nw.loop[node].busy }

// Instrument attaches live observability to the network: every Deliver
// observes the message size and updates per-port queued-bytes high-water
// marks. Nil-safe — Instrument(nil) leaves the network uninstrumented,
// and the uninstrumented Deliver path pays a single nil check.
func (nw *Network) Instrument(s *obs.Scope) {
	if s == nil {
		return
	}
	nw.sizeHist = s.Histogram("message_size_bytes", obs.MessageSizeBuckets)
}

// PublishMetrics exports the interconnect's accounting into a scope:
// switch totals plus, per port, busy seconds, carried bytes, and (on
// instrumented runs) the queued-bytes high-water mark. Ports publish in
// index order, so the snapshot is deterministic.
func (nw *Network) PublishMetrics(s *obs.Scope) {
	if s == nil {
		return
	}
	s.Counter("fabric_bytes").Add(nw.fabric)
	s.Counter("messages").Add(float64(nw.packets))
	for i := range nw.tx {
		ps := s.Scope(fmt.Sprintf("port%d", i))
		ps.Counter("tx_busy_s").Add(nw.tx[i].busy)
		ps.Counter("rx_busy_s").Add(nw.rx[i].busy)
		ps.Counter("tx_bytes").Add(nw.tx[i].bytes)
		ps.Counter("rx_bytes").Add(nw.rx[i].bytes)
		ps.Counter("loop_bytes").Add(nw.loop[i].bytes)
		ps.Gauge("tx_queued_bytes_hw").SetMax(nw.tx[i].queuedMax)
		ps.Gauge("rx_queued_bytes_hw").SetMax(nw.rx[i].queuedMax)
	}
}
