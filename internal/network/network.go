// Package network models the cluster interconnect: per-node NICs, a
// switch, and the intra-node memory path used when two ranks share a node.
//
// The model is a crossbar: a message occupies its source TX port and its
// destination RX port simultaneously for bytes/throughput seconds (so
// fan-out serializes at the sender and incast serializes at the receiver),
// and one-way wire latency is added on top, pipelined. This reproduces the
// iperf throughput and ping-pong latency numbers the paper measured while
// letting congestion emerge from port queueing.
package network

import (
	"fmt"
	"math"

	"clustersoc/internal/obs"
	"clustersoc/internal/sim"
	"clustersoc/internal/units"
)

// Profile describes one NIC option for the cluster.
type Profile struct {
	Name        string
	Throughput  float64 // effective bytes/second per direction (as iperf measures)
	Latency     float64 // one-way latency in seconds (half the ping-pong RTT)
	PowerWatts  float64 // extra power drawn per node by this NIC
	SwitchWatts float64 // power of the switch serving the cluster
}

// The two network options the paper evaluates. The on-board 1 GbE achieves
// 0.94 Gb/s effective; the Startech 10 GbE card is bound by the TX1's
// PCIe x1 gen2 slot and achieves 3.3 Gb/s, costing ~5 W per node.
// Ping-pong RTTs: 200 us (1 GbE) and 50 us (10 GbE).
var (
	GigE = Profile{
		Name:        "1GbE",
		Throughput:  0.94 * units.Gbps,
		Latency:     100 * units.Microsecond,
		PowerWatts:  0,
		SwitchWatts: 8, // unmanaged Netgear 1 GbE switch
	}
	TenGigE = Profile{
		Name:        "10GbE",
		Throughput:  3.3 * units.Gbps,
		Latency:     25 * units.Microsecond,
		PowerWatts:  5,
		SwitchWatts: 25, // managed 10 GbE switch, amortized over its ports
	}
	// Ideal is the zero-latency, effectively-infinite-bandwidth network used
	// by the DIMEMAS-style ideal-network replay scenario.
	Ideal = Profile{Name: "ideal", Throughput: 1e15, Latency: 0, PowerWatts: 0}
)

// port is one direction of a NIC: a FIFO bandwidth server.
type port struct {
	free      float64
	bytes     float64
	busy      float64
	msgs      uint64      // bookings through this port (intra-node path only)
	queuedMax float64     // high-water mark of bytes queued behind the port (instrumented runs only)
	pending   []queuedMsg // bookings not yet in service, pruned lazily (instrumented runs only)
}

// queuedMsg is one booking that had to wait behind the port: it enters
// service at start and counts as backlog until then.
type queuedMsg struct {
	start float64
	bytes float64
}

// FlapSource lazily generates a link's down windows. Next returns the
// next window [start, end); successive windows must not overlap and must
// be non-decreasing in time. start == +Inf means no further flaps.
// Pull-based generation keeps the fault plane termination-safe: windows
// materialize only as traffic reaches them, so an idle link never keeps
// the calendar alive.
type FlapSource interface {
	Next() (start, end float64)
}

// window is one half-open interval during which a link cannot begin
// service (a flap or a crash outage).
type window struct {
	from, to float64
}

// linkFault is the per-node fault state of one NIC (both directions and
// the intra-node path share the node's fate). Allocated only when the
// fault plane injects something, so a fault-free network pays one nil
// check per Deliver.
type linkFault struct {
	derate float64 // throughput multiplier; 0 means unset (healthy)
	flaps  FlapSource

	winFrom, winTo float64    // current flap window; winTo == 0 until first pull
	done           bool       // flap source exhausted
	restore        *sim.Timer // pending flap-restoration timer
	down           bool       // inside a flap the traffic has entered

	forced []window // crash outages, appended in simulation-time order

	flapDelays       uint64  // bookings pushed past a down window
	flapDelaySeconds float64 // total service-start delay those bookings paid
	flapsCancelled   uint64  // flap restorations superseded by a crash
}

// Network is the interconnect for a set of nodes.
type Network struct {
	eng     *sim.Engine
	prof    Profile
	tx, rx  []port
	loop    []port // intra-node memory path, one per node
	memBW   float64
	memLat  float64
	fabric  float64 // total bytes through the switch, for statistics
	packets uint64  // cross-node bookings (intra-node counts live per loop port)

	// sizeHist, when attached via Instrument, observes every message's
	// size. It doubles as the instrumentation switch: the queued-bytes
	// high-water tracking keys off the same nil check, so an
	// uninstrumented Deliver pays exactly one comparison.
	sizeHist *obs.Histogram

	// lf, when non-nil, is the per-node link-fault state installed by the
	// fault-injection plane (internal/faults). A fault-free network keeps
	// it nil, so Deliver pays exactly one comparison.
	lf []linkFault

	// obsD, when non-nil, sees every booking's internal decomposition
	// (service start vs. call time separates queueing from wire time).
	// internal/critpath attaches it; an unobserved Deliver pays one nil
	// check.
	obsD DeliveryObserver
}

// DeliveryObserver sees every Deliver booking with its internal timing:
// post is the call (or floor) time, start the moment the message enters
// service, free when the sender's port drains, arrival when the last byte
// reaches the receiver. src == dst identifies the intra-node memory path.
type DeliveryObserver interface {
	ObserveDelivery(src, dst int, bytes, post, start, free, arrival float64)
}

// MemoryPathBandwidth is the effective bandwidth of rank-to-rank transfers
// through shared memory on one node (a memcpy: read + write through DRAM).
const MemoryPathBandwidth = 5 * units.GBps

// MemoryPathLatency is the software latency of an intra-node message.
const MemoryPathLatency = 1 * units.Microsecond

// New creates a network connecting nodes through prof.
func New(e *sim.Engine, nodes int, prof Profile) *Network {
	return &Network{
		eng:    e,
		prof:   prof,
		tx:     make([]port, nodes),
		rx:     make([]port, nodes),
		loop:   make([]port, nodes),
		memBW:  MemoryPathBandwidth,
		memLat: MemoryPathLatency,
	}
}

// Profile returns the NIC profile in use.
func (nw *Network) Profile() Profile { return nw.prof }

// Nodes returns the number of attached nodes.
func (nw *Network) Nodes() int { return len(nw.tx) }

// Deliver books a message of the given size from node src to node dst and
// returns (senderFree, arrival): the time the sender's buffer has drained
// and the time the last byte reaches the receiver. Deliver does not block;
// the MPI layer schedules around the returned times.
func (nw *Network) Deliver(src, dst int, bytes float64) (senderFree, arrival float64) {
	return nw.deliver(src, dst, bytes, nw.eng.Now(), nw.eng.Now())
}

// DeliverAfter is Deliver with a floor on the service start: the booking
// cannot enter service before `earliest`. The MPI layer uses it for the
// eager-retransmit copy of a lost message, which leaves the NIC only
// after the retransmit timeout has elapsed.
func (nw *Network) DeliverAfter(src, dst int, bytes, earliest float64) (senderFree, arrival float64) {
	return nw.deliver(src, dst, bytes, math.Max(earliest, nw.eng.Now()), nw.eng.Now())
}

// DeliverFrom is Deliver evaluated in p's time frame: the floor and the
// observation timestamp come from p's engine rather than the network's.
// On a sequential run the two clocks are the same object, so the result
// is identical; under PDES p's engine is a partition child, and a booking
// that crosses partitions first parks p until the coordinator grants it
// the cross-partition exclusive section (sim.Engine.AcquireCross).
func (nw *Network) DeliverFrom(p *sim.Process, src, dst int, bytes float64) (senderFree, arrival float64) {
	if src != dst {
		p.Engine().AcquireCross(dst)
	}
	return nw.deliver(src, dst, bytes, p.Now(), p.Now())
}

// DeliverAfterFrom is DeliverAfter in p's time frame (see DeliverFrom).
func (nw *Network) DeliverAfterFrom(p *sim.Process, src, dst int, bytes, earliest float64) (senderFree, arrival float64) {
	if src != dst {
		p.Engine().AcquireCross(dst)
	}
	return nw.deliver(src, dst, bytes, math.Max(earliest, p.Now()), p.Now())
}

func (nw *Network) deliver(src, dst int, bytes, floor, now float64) (senderFree, arrival float64) {
	if src < 0 || src >= len(nw.tx) || dst < 0 || dst >= len(nw.rx) {
		panic(fmt.Sprintf("network: node out of range: %d -> %d (have %d)", src, dst, len(nw.tx)))
	}
	if src == dst {
		lp := &nw.loop[src]
		lp.msgs++
		start := math.Max(floor, lp.free)
		if nw.lf != nil {
			// Iterate to a fixpoint, exactly like the wire path's admit():
			// escaping a flap window can land the start inside a later
			// crash-outage window (or vice versa), and a single admitOne
			// pass does not re-check earlier window kinds after a move.
			for {
				next := nw.admitOne(src, start)
				if next == start {
					break
				}
				start = next
			}
		}
		svc := bytes / nw.memBW
		lp.free = start + svc
		lp.bytes += bytes
		lp.busy += svc
		if nw.sizeHist != nil {
			nw.sizeHist.Observe(bytes)
			lp.markQueued(now, start, bytes)
		}
		if nw.obsD != nil {
			nw.obsD.ObserveDelivery(src, dst, bytes, now, start, lp.free, lp.free+nw.memLat)
		}
		return lp.free, lp.free + nw.memLat
	}
	nw.packets++
	t, r := &nw.tx[src], &nw.rx[dst]
	start := math.Max(floor, math.Max(t.free, r.free))
	rate := nw.prof.Throughput
	if nw.lf != nil {
		start = nw.admit(src, dst, start)
		rate *= math.Min(nw.derate(src), nw.derate(dst))
	}
	svc := bytes / rate
	t.free = start + svc
	r.free = start + svc
	t.bytes += bytes
	r.bytes += bytes
	t.busy += svc
	r.busy += svc
	nw.fabric += bytes
	if nw.sizeHist != nil {
		nw.sizeHist.Observe(bytes)
		t.markQueued(now, start, bytes)
		r.markQueued(now, start, bytes)
	}
	if nw.obsD != nil {
		nw.obsD.ObserveDelivery(src, dst, bytes, now, start, t.free, t.free+nw.prof.Latency)
	}
	return t.free, t.free + nw.prof.Latency
}

// derate returns the node link's effective throughput multiplier.
func (nw *Network) derate(node int) float64 {
	if d := nw.lf[node].derate; d > 0 {
		return d
	}
	return 1
}

// admit pushes a service start past any down windows (flaps, crash
// outages) of both endpoints, iterating to a fixpoint: escaping one
// node's window can land inside the other's. The loop terminates because
// each pass only moves the start forward through a finite set of
// materialized windows.
func (nw *Network) admit(src, dst int, start float64) float64 {
	for {
		next := nw.admitOne(dst, nw.admitOne(src, start))
		if next == start {
			return start
		}
		start = next
	}
}

// admitOne pushes a service start past one node's down windows. Entering
// a flap window for the first time arms that window's restoration timer;
// a later crash on the node cancels it (ForceDown).
func (nw *Network) admitOne(node int, start float64) float64 {
	f := &nw.lf[node]
	for _, w := range f.forced {
		if start >= w.from && start < w.to {
			f.flapDelays++
			f.flapDelaySeconds += w.to - start
			start = w.to
		}
	}
	if f.flaps == nil {
		return start
	}
	// Pull windows until the current one ends after start.
	for !f.done && f.winTo <= start {
		from, to := f.flaps.Next()
		if math.IsInf(from, 1) {
			f.done = true
			break
		}
		f.winFrom, f.winTo = from, to
	}
	if !f.done && start >= f.winFrom && start < f.winTo {
		f.flapDelays++
		f.flapDelaySeconds += f.winTo - start
		if !f.down {
			f.down = true
			end := f.winTo
			f.restore = nw.eng.AfterAt(end, func() {
				f.down = false
				f.restore = nil
			})
		}
		start = f.winTo
	}
	return start
}

// markQueued updates the port's queued-bytes high-water mark right after
// a booking that enters service at start. Backlog counts only bookings
// still waiting for the port — the message currently in service (and
// everything already drained) is not queued, so a booking on an idle
// port records zero.
func (p *port) markQueued(now, start, bytes float64) {
	live, queued := p.pending[:0], 0.0
	for _, m := range p.pending {
		if m.start > now {
			live = append(live, m)
			queued += m.bytes
		}
	}
	p.pending = live
	if start > now {
		p.pending = append(p.pending, queuedMsg{start: start, bytes: bytes})
		queued += bytes
	}
	if queued > p.queuedMax {
		p.queuedMax = queued
	}
}

// InjectLinkFaults installs the fault plane's state for one node's link:
// a throughput derate (0 or 1 = healthy) and an optional lazy flap
// source. Must be called before traffic flows. Injecting a fully healthy
// state (derate 1, nil flaps) still allocates the fault table, so the
// fault plane only calls it for links a plan actually degrades.
func (nw *Network) InjectLinkFaults(node int, derate float64, flaps FlapSource) {
	nw.ensureLF()
	nw.lf[node].derate = derate
	nw.lf[node].flaps = flaps
}

// ForceDown takes a node's link down for [from, to) — the fault plane's
// crash outage. A pending flap restoration on the node is cancelled: the
// NIC reset on reboot supersedes the flap recovery, and the outage window
// governs admission until the restart completes.
func (nw *Network) ForceDown(node int, from, to float64) {
	nw.ensureLF()
	f := &nw.lf[node]
	f.forced = append(f.forced, window{from: from, to: to})
	if f.restore != nil && f.restore.Stop() {
		f.flapsCancelled++
		f.restore = nil
		f.down = false
	}
}

func (nw *Network) ensureLF() {
	if nw.lf == nil {
		nw.lf = make([]linkFault, len(nw.tx))
	}
}

// FlapDelays returns the fault plane's link-delay accounting summed over
// all nodes: how many bookings were pushed past a down window (flap or
// crash outage), the total service-start delay they paid, and how many
// flap restorations were cancelled by a crash.
func (nw *Network) FlapDelays() (delays uint64, seconds float64, cancelled uint64) {
	for i := range nw.lf {
		delays += nw.lf[i].flapDelays
		seconds += nw.lf[i].flapDelaySeconds
		cancelled += nw.lf[i].flapsCancelled
	}
	return delays, seconds, cancelled
}

// BytesSent returns the total bytes node has transmitted over the wire
// (intra-node traffic excluded).
func (nw *Network) BytesSent(node int) float64 { return nw.tx[node].bytes }

// BytesReceived returns the total bytes node has received over the wire.
func (nw *Network) BytesReceived(node int) float64 { return nw.rx[node].bytes }

// FabricBytes returns the total bytes that crossed the switch.
func (nw *Network) FabricBytes() float64 { return nw.fabric }

// IntraNodeBytes returns bytes moved through node's shared-memory path.
func (nw *Network) IntraNodeBytes(node int) float64 { return nw.loop[node].bytes }

// Messages returns the number of Deliver calls (wire and intra-node).
func (nw *Network) Messages() uint64 {
	n := nw.packets
	for i := range nw.loop {
		n += nw.loop[i].msgs
	}
	return n
}

// MinLookahead returns the minimum latency of any cross-node link — the
// conservative lookahead window for partitioned (PDES) execution: a
// message booked at time t cannot affect another node's calendar before
// t + MinLookahead. A non-positive value (the Ideal profile) means the
// network provides no usable lookahead and partitioned execution must
// fall back to the sequential engine.
func (nw *Network) MinLookahead() float64 { return nw.prof.Latency }

// TXBusy returns the accumulated busy seconds of a node's TX port.
func (nw *Network) TXBusy(node int) float64 { return nw.tx[node].busy }

// RXBusy returns the accumulated busy seconds of a node's RX port.
func (nw *Network) RXBusy(node int) float64 { return nw.rx[node].busy }

// LoopBusy returns the accumulated busy seconds of a node's intra-node
// shared-memory path.
func (nw *Network) LoopBusy(node int) float64 { return nw.loop[node].busy }

// Instrument attaches live observability to the network: every Deliver
// observes the message size and updates per-port queued-bytes high-water
// marks. Nil-safe — Instrument(nil) leaves the network uninstrumented,
// and the uninstrumented Deliver path pays a single nil check.
func (nw *Network) Instrument(s *obs.Scope) {
	if s == nil {
		return
	}
	nw.sizeHist = s.Histogram("message_size_bytes", obs.MessageSizeBuckets)
}

// SetDeliveryObserver attaches a booking observer (nil to detach). Must be
// installed before traffic flows so the observer sees every message.
func (nw *Network) SetDeliveryObserver(o DeliveryObserver) { nw.obsD = o }

// PublishMetrics exports the interconnect's accounting into a scope:
// switch totals plus, per port, busy seconds, carried bytes, and (on
// instrumented runs) the queued-bytes high-water mark. Ports publish in
// index order, so the snapshot is deterministic.
func (nw *Network) PublishMetrics(s *obs.Scope) {
	if s == nil {
		return
	}
	s.Counter("fabric_bytes").Add(nw.fabric)
	s.Counter("messages").Add(float64(nw.Messages()))
	for i := range nw.tx {
		ps := s.Scope(fmt.Sprintf("port%d", i))
		ps.Counter("tx_busy_s").Add(nw.tx[i].busy)
		ps.Counter("rx_busy_s").Add(nw.rx[i].busy)
		ps.Counter("tx_bytes").Add(nw.tx[i].bytes)
		ps.Counter("rx_bytes").Add(nw.rx[i].bytes)
		ps.Counter("loop_bytes").Add(nw.loop[i].bytes)
		ps.Gauge("tx_queued_bytes_hw").SetMax(nw.tx[i].queuedMax)
		ps.Gauge("rx_queued_bytes_hw").SetMax(nw.rx[i].queuedMax)
	}
}
