package network

import (
	"testing"

	"clustersoc/internal/obs"
	"clustersoc/internal/sim"
)

// queuedHW publishes the network's metrics and returns one port's
// queued-bytes high-water gauge.
func queuedHW(t *testing.T, nw *Network, gauge string) float64 {
	t.Helper()
	reg := obs.NewRegistry()
	nw.PublishMetrics(reg.Scope("network"))
	return reg.Snapshot().Value("network." + gauge)
}

// A message booked on an idle port enters service immediately: nothing is
// queued behind the port, so the high-water mark must stay zero. The old
// accounting counted the in-service message itself as backlog.
func TestQueuedHighWaterZeroOnIdlePort(t *testing.T) {
	nw := New(sim.NewEngine(), 2, TenGigE)
	nw.Instrument(obs.NewRegistry().Scope("network"))
	nw.Deliver(0, 1, 1<<20)
	for _, g := range []string{"port0.tx_queued_bytes_hw", "port1.rx_queued_bytes_hw"} {
		if got := queuedHW(t, nw, g); got != 0 {
			t.Fatalf("%s = %g after a single message on an idle port, want 0", g, got)
		}
	}
}

// Back-to-back bookings at one instant: the first is in service, the rest
// are backlog. The high-water mark must count exactly the waiting bytes —
// not the in-service message.
func TestQueuedHighWaterCountsOnlyWaitingBytes(t *testing.T) {
	nw := New(sim.NewEngine(), 3, TenGigE)
	nw.Instrument(obs.NewRegistry().Scope("network"))
	nw.Deliver(0, 1, 1000) // in service at t=0
	nw.Deliver(0, 1, 2000) // queued
	nw.Deliver(0, 2, 4000) // queued behind both (TX port is the bottleneck)
	if got := queuedHW(t, nw, "port0.tx_queued_bytes_hw"); got != 6000 {
		t.Fatalf("tx_queued_bytes_hw = %g, want 6000 (the two waiting messages)", got)
	}
	// RX port 1 saw the same first two messages: only the second waited.
	if got := queuedHW(t, nw, "port1.rx_queued_bytes_hw"); got != 2000 {
		t.Fatalf("rx_queued_bytes_hw = %g, want 2000", got)
	}
}

// Once time advances past a booking's service start it is no longer
// backlog: a later idle-port booking must not resurrect drained bytes.
func TestQueuedBacklogDrainsWithTime(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 2, TenGigE)
	nw.Instrument(obs.NewRegistry().Scope("network"))
	e.Spawn("sender", func(p *sim.Process) {
		nw.Deliver(0, 1, 1000)
		nw.Deliver(0, 1, 2000)
		_, arrival := nw.Deliver(0, 1, 3000)
		p.SleepUntil(arrival + 1) // everything drained
		nw.Deliver(0, 1, 8000)    // idle port again: queues nothing
	})
	e.Run()
	if got := queuedHW(t, nw, "port0.tx_queued_bytes_hw"); got != 5000 {
		t.Fatalf("tx_queued_bytes_hw = %g, want 5000 (peak backlog of the first burst)", got)
	}
}

// The m.start > now boundary in markQueued, pinned from both sides. A
// booking whose service start equals the current instant is in service —
// counting it as backlog would double-count the message the port is
// draining right now.
func TestQueuedEqualTimeBookingIsInServiceNotBacklog(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 2, TenGigE)
	nw.Instrument(obs.NewRegistry().Scope("network"))
	e.Spawn("sender", func(p *sim.Process) {
		sf1, _ := nw.Deliver(0, 1, 1000) // in service at t=0
		nw.Deliver(0, 1, 2000)           // queued; enters service exactly at sf1
		p.SleepUntil(sf1)                // now == the second booking's start, bit for bit
		nw.Deliver(0, 1, 4000)           // books behind the (now in-service) second message
	})
	e.Run()
	// At the third booking only the third message waits: the second's
	// start == now means it is on the wire. A >= boundary would have kept
	// it and recorded 6000.
	if got := queuedHW(t, nw, "port0.tx_queued_bytes_hw"); got != 4000 {
		t.Fatalf("tx_queued_bytes_hw = %g, want 4000 (equal-time booking is in service, not backlog)", got)
	}
}

// The other side of the boundary: a booking whose start is still strictly
// in the future must survive an intermediate markQueued prune — pruning
// it would drop waiting bytes from the high-water mark.
func TestQueuedFutureBookingNotDropped(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 2, TenGigE)
	nw.Instrument(obs.NewRegistry().Scope("network"))
	e.Spawn("sender", func(p *sim.Process) {
		sf1, _ := nw.Deliver(0, 1, 1000)
		nw.Deliver(0, 1, 2000) // waits until sf1
		p.SleepUntil(sf1 / 2)  // strictly before the second booking starts
		nw.Deliver(0, 1, 4000) // second message still waiting: 2000+4000 queued
	})
	e.Run()
	if got := queuedHW(t, nw, "port0.tx_queued_bytes_hw"); got != 6000 {
		t.Fatalf("tx_queued_bytes_hw = %g, want 6000 (future booking must stay in the backlog)", got)
	}
}

// The intra-node loop port uses the same accounting.
func TestQueuedHighWaterIntraNode(t *testing.T) {
	nw := New(sim.NewEngine(), 1, GigE)
	nw.Instrument(obs.NewRegistry().Scope("network"))
	nw.Deliver(0, 0, 500)
	if got := queuedHW(t, nw, "port0.tx_queued_bytes_hw"); got != 0 {
		t.Fatalf("loopback must not touch the TX high-water, got %g", got)
	}
	nw.Deliver(0, 0, 700) // queued behind the first loop transfer
	reg := obs.NewRegistry()
	nw.PublishMetrics(reg.Scope("network"))
	// The loop port publishes no dedicated gauge; assert via LoopBusy that
	// both transfers were booked, and that the wire gauges stayed zero.
	if nw.LoopBusy(0) <= 0 {
		t.Fatal("loop port never busy")
	}
	if got := reg.Snapshot().Value("network.port0.tx_queued_bytes_hw"); got != 0 {
		t.Fatalf("intra-node traffic leaked into the TX high-water: %g", got)
	}
}
