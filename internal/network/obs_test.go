package network

import (
	"testing"

	"clustersoc/internal/obs"
	"clustersoc/internal/sim"
)

// deliverScript books the same message pattern on a network and collects
// every Deliver return value: inter-node, intra-node, fan-in, fan-out.
func deliverScript(nw *Network) []float64 {
	var out []float64
	collect := func(a, b float64) {
		out = append(out, a, b)
	}
	collect(nw.Deliver(0, 1, 64<<10))
	collect(nw.Deliver(0, 2, 1<<20))
	collect(nw.Deliver(1, 1, 4<<10)) // intra-node loopback
	collect(nw.Deliver(2, 0, 128))
	collect(nw.Deliver(1, 0, 256<<10))
	return out
}

// TestInstrumentationDoesNotChangeDelivery locks in the zero-overhead
// contract at the network layer: an instrumented network books every
// message at exactly the times an uninstrumented one does.
func TestInstrumentationDoesNotChangeDelivery(t *testing.T) {
	plain := New(sim.NewEngine(), 3, TenGigE)
	instr := New(sim.NewEngine(), 3, TenGigE)
	instr.Instrument(obs.NewRegistry().Scope("network"))

	a := deliverScript(plain)
	b := deliverScript(instr)
	if len(a) != len(b) {
		t.Fatalf("return counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Deliver return %d differs: %g (plain) vs %g (instrumented)", i, a[i], b[i])
		}
	}
	if plain.FabricBytes() != instr.FabricBytes() || plain.Messages() != instr.Messages() {
		t.Fatalf("accounting differs: fabric %g/%g, messages %d/%d",
			plain.FabricBytes(), instr.FabricBytes(), plain.Messages(), instr.Messages())
	}
}

func TestInstrumentNilIsNoOp(t *testing.T) {
	nw := New(sim.NewEngine(), 2, GigE)
	nw.Instrument(nil)
	nw.Deliver(0, 1, 1024)
	nw.PublishMetrics(nil) // also a no-op
}

func TestMessageSizeHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	nw := New(sim.NewEngine(), 3, TenGigE)
	nw.Instrument(reg.Scope("network"))
	deliverScript(nw)

	h, ok := reg.Snapshot().Get("network.message_size_bytes")
	if !ok {
		t.Fatalf("message_size_bytes histogram not registered")
	}
	if h.Count != 5 {
		t.Fatalf("histogram observed %d messages, want 5", h.Count)
	}
	wantSum := float64(64<<10 + 1<<20 + 4<<10 + 128 + 256<<10)
	if h.Sum != wantSum {
		t.Fatalf("histogram sum = %g, want %g", h.Sum, wantSum)
	}
}

func TestPublishMetricsPerPort(t *testing.T) {
	reg := obs.NewRegistry()
	nw := New(sim.NewEngine(), 3, TenGigE)
	nw.Instrument(reg.Scope("network"))
	deliverScript(nw)
	nw.PublishMetrics(reg.Scope("network"))
	snap := reg.Snapshot()

	if got := snap.Value("network.messages"); got != 5 {
		t.Fatalf("network.messages = %g, want 5", got)
	}
	wantFabric := float64(64<<10 + 1<<20 + 128 + 256<<10) // loopback excluded
	if got := snap.Value("network.fabric_bytes"); got != wantFabric {
		t.Fatalf("network.fabric_bytes = %g, want %g", got, wantFabric)
	}
	if got := snap.Value("network.port0.tx_bytes"); got != float64(64<<10+1<<20) {
		t.Fatalf("port0 tx_bytes = %g", got)
	}
	if got := snap.Value("network.port1.loop_bytes"); got != float64(4<<10) {
		t.Fatalf("port1 loop_bytes = %g", got)
	}
	if got := snap.Value("network.port0.tx_busy_s"); got != nw.TXBusy(0) {
		t.Fatalf("port0 tx_busy_s = %g, want %g", got, nw.TXBusy(0))
	}
	if got := snap.Value("network.port0.rx_busy_s"); got != nw.RXBusy(0) {
		t.Fatalf("port0 rx_busy_s = %g, want %g", got, nw.RXBusy(0))
	}
	// Two messages booked back-to-back from node 0 at t=0: the second one
	// queues behind the first, so the TX queued-bytes high-water is
	// positive on an instrumented run.
	if got := snap.Value("network.port0.tx_queued_bytes_hw"); got <= 0 {
		t.Fatalf("port0 tx_queued_bytes_hw = %g, want > 0", got)
	}
}
