package network

import (
	"math"
	"testing"
	"testing/quick"

	"clustersoc/internal/sim"
	"clustersoc/internal/units"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b)) }

// A single large stream should achieve the profile's effective throughput,
// the way iperf measures it between two TX1 nodes.
func TestIperfStyleThroughput(t *testing.T) {
	for _, prof := range []Profile{GigE, TenGigE} {
		e := sim.NewEngine()
		nw := New(e, 2, prof)
		total := 1.0 * units.GB
		_, arrival := nw.Deliver(0, 1, total)
		e.Run()
		gbps := total * 8 / arrival / 1e9
		want := prof.Throughput * 8 / 1e9
		if !approx(gbps, want, 0.01) {
			t.Errorf("%s: measured %.3f Gb/s, want ~%.3f", prof.Name, gbps, want)
		}
	}
}

// Ping-pong: RTT of a tiny message is twice the one-way latency. The paper
// measures 200 us on 1 GbE and 50 us on 10 GbE.
func TestPingPongLatency(t *testing.T) {
	cases := []struct {
		prof Profile
		rtt  float64
	}{{GigE, 200 * units.Microsecond}, {TenGigE, 50 * units.Microsecond}}
	for _, c := range cases {
		e := sim.NewEngine()
		nw := New(e, 2, c.prof)
		_, a1 := nw.Deliver(0, 1, 1)
		e.ScheduleAt(a1, func() {})
		e.Run()
		// reply
		_, a2 := nw.Deliver(1, 0, 1)
		rtt := a2
		if rtt > c.rtt*1.05 || rtt < c.rtt*0.95 {
			t.Errorf("%s: rtt %.1f us, want ~%.1f", c.prof.Name, rtt/units.Microsecond, c.rtt/units.Microsecond)
		}
		e.Run()
	}
}

// Incast: N senders to one receiver serialize on the receiver's RX port.
func TestIncastSerializes(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 5, GigE)
	bytes := 10 * units.MB
	last := 0.0
	for s := 1; s < 5; s++ {
		_, a := nw.Deliver(s, 0, bytes)
		if a > last {
			last = a
		}
	}
	single := bytes/GigE.Throughput + GigE.Latency
	if !approx(last, 4*bytes/GigE.Throughput+GigE.Latency, 0.01) {
		t.Errorf("incast completion %.4f, want ~%.4f (4x single %.4f)", last, 4*bytes/GigE.Throughput, single)
	}
}

// Disjoint pairs run in parallel: (0->1) and (2->3) don't interfere.
func TestDisjointPairsParallel(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 4, TenGigE)
	bytes := 10 * units.MB
	_, a1 := nw.Deliver(0, 1, bytes)
	_, a2 := nw.Deliver(2, 3, bytes)
	if !approx(a1, a2, 1e-9) {
		t.Errorf("disjoint transfers serialized: %v vs %v", a1, a2)
	}
}

// Intra-node messages use the memory path, far faster than any NIC.
func TestIntraNodePath(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 2, GigE)
	bytes := 10 * units.MB
	_, mem := nw.Deliver(0, 0, bytes)
	_, net := nw.Deliver(0, 1, bytes)
	if mem >= net {
		t.Errorf("memory path (%v) not faster than network (%v)", mem, net)
	}
	if nw.IntraNodeBytes(0) != bytes {
		t.Errorf("intra-node bytes = %v", nw.IntraNodeBytes(0))
	}
	if nw.BytesSent(0) != bytes {
		t.Errorf("wire bytes = %v, want only the inter-node message", nw.BytesSent(0))
	}
}

// Property: byte accounting balances — everything sent over the wire is
// received, and fabric bytes match.
func TestByteConservationProperty(t *testing.T) {
	f := func(pairs []struct {
		S, D uint8
		B    uint16
	}) bool {
		e := sim.NewEngine()
		nw := New(e, 4, GigE)
		var wire float64
		for _, pr := range pairs {
			s, d := int(pr.S%4), int(pr.D%4)
			b := float64(pr.B) + 1
			nw.Deliver(s, d, b)
			if s != d {
				wire += b
			}
		}
		var sent, recv float64
		for n := 0; n < 4; n++ {
			sent += nw.BytesSent(n)
			recv += nw.BytesReceived(n)
		}
		return sent == recv && sent == wire && nw.FabricBytes() == wire
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The ideal profile used by replay is effectively free.
func TestIdealProfile(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, 2, Ideal)
	_, a := nw.Deliver(0, 1, 1*units.GB)
	if a > 1e-5 {
		t.Errorf("ideal network took %v", a)
	}
}
