package cluster

import (
	"fmt"

	"clustersoc/internal/cuda"
	"clustersoc/internal/faults"
	"clustersoc/internal/mpi"
	"clustersoc/internal/sim"
	"clustersoc/internal/soc"
)

// Context is the per-rank programming interface the workload models use:
// CPU compute, CUDA operations, and MPI communication, all instrumented
// for power, counters, and tracing.
type Context struct {
	cl    *Cluster
	Rank  int
	P     *sim.Process
	node  *Node
	comm  *mpi.Comm
	job   *Job
	fst   faults.RankState
	cpEnt int32 // critpath timeline handle; meaningful only when cl.cp != nil

	// credits is the rank-local FLOP-credit log of a partitioned run:
	// ranks on different partitions cannot share the cluster accumulator
	// without racing, so each logs (time, flops) and Finish merges the
	// logs in global time order (settlePDES). Nil on sequential runs.
	credits []flopCredit
}

// Size returns the number of ranks in the communicator.
func (ctx *Context) Size() int { return ctx.comm.Size() }

// Node returns this rank's node configuration.
func (ctx *Context) Node() soc.NodeConfig { return ctx.node.Type }

// NodeIndex returns the hosting node's index.
func (ctx *Context) NodeIndex() int { return ctx.node.Index }

// RanksPerNode returns the process density.
func (ctx *Context) RanksPerNode() int { return ctx.cl.ranksPerNode }

// Now returns the simulation time.
func (ctx *Context) Now() float64 { return ctx.P.Now() }

// Compute runs CPU work on one core of this rank's node: the time comes
// from the microarchitecture model, the DRAM traffic is booked on the
// node's shared memory pipe (where it contends with the integrated GPU),
// and the PMU counters accumulate.
func (ctx *Context) Compute(w soc.CPUWork) {
	ctx.ComputeParallel(w, 1)
}

// ComputeParallel runs CPU work spread over `cores` cores of the node
// (e.g. multi-threaded JPEG decoding): wall time divides by the core
// count, busy time and counters do not.
func (ctx *Context) ComputeParallel(w soc.CPUWork, cores int) {
	if cores < 1 {
		cores = 1
	}
	if cores > ctx.node.Type.CPU.Cores {
		cores = ctx.node.Type.CPU.Cores
	}
	sharers := ctx.cl.ranksPerNode
	if cores > sharers {
		sharers = cores
	}
	r := ctx.node.Type.CPU.Cost(w, sharers)
	if f := ctx.cl.inj.ComputeFactor(ctx.node.Index); f != 1 {
		// A straggler node's compute stretches uniformly: more wall time
		// and more of it stalled, but the same instructions and traffic.
		r.Seconds *= f
		r.MemStallSeconds *= f
	}
	start := ctx.P.Now()
	if r.DRAMBytes > 0 {
		// Book the traffic for contention accounting without serializing
		// the computation behind it (the stall time is already inside
		// r.Seconds).
		ctx.node.DRAM.TransferEvent(r.DRAMBytes, ctx.node.Type.CPU.MemBandwidth, nil)
	}
	dur := r.Seconds / float64(cores)
	ctx.P.Sleep(dur)
	ctx.node.PMU.Add(r.PMU)
	ctx.node.cpuBusy += r.Seconds
	ctx.node.cpuMemStall += r.MemStallSeconds
	ctx.node.Meter.AddDRAM(r.DRAMBytes)
	ctx.creditFlops(w.Flops)
	if ctx.cl.cp != nil {
		// The wall-clock stall share of the phase: MemStallSeconds is in
		// busy core-seconds, the span in wall seconds.
		stall := 0.0
		if r.Seconds > 0 {
			stall = dur * r.MemStallSeconds / r.Seconds
		}
		ctx.cl.cp.Compute(ctx.cpEnt, start, ctx.P.Now(), stall, ctx.cl.inj.ComputeFactor(ctx.node.Index))
	}
	if ctx.cl.Tracer != nil {
		ctx.cl.Tracer.RecordCompute(ctx.Rank, dur, start)
	}
}

// GPU returns this rank's CUDA device (nil on CPU-only systems).
func (ctx *Context) GPU() *cuda.Device { return ctx.node.GPU }

// Kernel launches a GPU kernel and blocks until it completes. GPU time is
// recorded as compute in the trace (it is local work for replay purposes).
// On a straggler node the kernel stretches by the node's compute factor
// (the SoC throttles CPU and GPU together — they share the same thermal
// and power envelope); async launches (KernelAsync) are deliberately
// unscaled, since their duration is buried in the device timeline.
func (ctx *Context) Kernel(k cuda.Kernel) {
	start := ctx.P.Now()
	ctx.node.GPU.Launch(ctx.P, k)
	f := ctx.cl.inj.ComputeFactor(ctx.node.Index)
	stall := ctx.node.GPU.LastLaunchStallSeconds()
	if f != 1 {
		ctx.P.Sleep((ctx.P.Now() - start) * (f - 1))
	}
	ctx.creditFlops(k.FLOPs)
	if ctx.cl.cp != nil {
		ctx.cl.cp.Kernel(ctx.cpEnt, start, ctx.P.Now(), stall, f)
	}
	if ctx.cl.Tracer != nil {
		ctx.cl.Tracer.RecordCompute(ctx.Rank, ctx.P.Now()-start, start)
	}
}

// KernelAsync starts a kernel and returns a gate that opens on completion
// (hpl lookahead). The FLOPs are credited immediately; the trace records
// the wait at WaitKernel. Under critpath recording the helper process is
// spawned here — with the same name and engine order as the cuda path, so
// event timing is untouched — and its kernel span lands on a dedicated
// helper timeline bound to the returned gate.
func (ctx *Context) KernelAsync(k cuda.Kernel) *sim.Gate {
	ctx.creditFlops(k.FLOPs)
	if cp := ctx.cl.cp; cp != nil {
		d := ctx.node.GPU
		aux := cp.SpawnAux(ctx.cpEnt, fmt.Sprintf("gpu%d:%s", ctx.node.Index, k.Name), ctx.node.Index)
		g := &sim.Gate{}
		cp.BindGate(g, aux)
		ctx.cl.Eng.Spawn("cuda-async:"+k.Name, func(hp *sim.Process) {
			s0 := hp.Now()
			d.Launch(hp, k)
			cp.Kernel(aux, s0, hp.Now(), d.LastLaunchStallSeconds(), 1)
			g.Open(ctx.cl.Eng)
		})
		return g
	}
	return ctx.node.GPU.LaunchAsync(k)
}

// WaitKernel blocks on an async kernel's completion gate.
func (ctx *Context) WaitKernel(g *sim.Gate) {
	start := ctx.P.Now()
	g.Wait(ctx.P)
	if ctx.cl.cp != nil {
		ctx.cl.cp.GateWait(ctx.cpEnt, g, start, ctx.P.Now())
	}
	if ctx.cl.Tracer != nil {
		ctx.cl.Tracer.RecordCompute(ctx.Rank, ctx.P.Now()-start, start)
	}
}

// CopyIn moves bytes host-to-device under the configured memory model.
func (ctx *Context) CopyIn(bytes float64) {
	start := ctx.P.Now()
	ctx.node.GPU.CopyIn(ctx.P, bytes)
	if ctx.cl.cp != nil {
		ctx.cl.cp.Copy(ctx.cpEnt, start, ctx.P.Now())
	}
	if ctx.cl.Tracer != nil {
		ctx.cl.Tracer.RecordCopy(ctx.Rank, ctx.P.Now()-start, start)
	}
}

// CopyOut moves bytes device-to-host.
func (ctx *Context) CopyOut(bytes float64) {
	start := ctx.P.Now()
	ctx.node.GPU.CopyOut(ctx.P, bytes)
	if ctx.cl.cp != nil {
		ctx.cl.cp.Copy(ctx.cpEnt, start, ctx.P.Now())
	}
	if ctx.cl.Tracer != nil {
		ctx.cl.Tracer.RecordCopy(ctx.Rank, ctx.P.Now()-start, start)
	}
}

// StageOut copies halo/exchange data device-to-host ahead of MPI — a
// no-op when the (hypothetical) GPUDirect path lets the NIC read device
// memory directly.
func (ctx *Context) StageOut(bytes float64) {
	if ctx.node.GPU != nil && ctx.node.GPU.Config.GPUDirect {
		return
	}
	ctx.CopyOut(bytes)
}

// StageIn copies received data host-to-device after MPI — a no-op under
// GPUDirect.
func (ctx *Context) StageIn(bytes float64) {
	if ctx.node.GPU != nil && ctx.node.GPU.Config.GPUDirect {
		return
	}
	ctx.CopyIn(bytes)
}

// Checkpoint marks a resilience point: the rank could restore from here
// with stateBytes of saved state. Workloads call it at natural iteration
// boundaries. Under a fault plan with a crash model it settles any crash
// of this node since the last hook (restart outage + redone work) and
// takes a checkpoint when the plan's interval has elapsed; otherwise it
// is free and changes nothing.
func (ctx *Context) Checkpoint(stateBytes float64) {
	start := ctx.P.Now()
	ctx.cl.inj.Checkpoint(ctx.P, ctx.node.Index, &ctx.fst, stateBytes)
	if ctx.cl.cp != nil {
		// Any time the hook consumed is fault-plane overhead: checkpoint
		// writes, crash outage settlement, redone work.
		ctx.cl.cp.Fault(ctx.cpEnt, start, ctx.P.Now())
	}
}

// Phase marks an iteration boundary for PARAVER-style trace chopping.
func (ctx *Context) Phase() {
	if ctx.cl.Tracer != nil {
		ctx.cl.Tracer.RecordPhase(ctx.Rank, ctx.P.Now())
	}
}

// Send transmits bytes to rank dst.
func (ctx *Context) Send(dst, tag int, bytes float64) {
	ctx.comm.Send(ctx.P, ctx.Rank, dst, tag, bytes)
}

// Recv blocks for a message from rank src.
func (ctx *Context) Recv(src, tag int) {
	ctx.comm.Recv(ctx.P, ctx.Rank, src, tag)
}

// Sendrecv exchanges with two peers.
func (ctx *Context) Sendrecv(dst, src, tag int, sendBytes, recvBytes float64) {
	ctx.comm.Sendrecv(ctx.P, ctx.Rank, dst, src, tag, sendBytes, recvBytes)
}

// Allreduce combines bytes across all ranks.
func (ctx *Context) Allreduce(bytes float64) {
	ctx.comm.Allreduce(ctx.P, ctx.Rank, bytes)
}

// Bcast broadcasts from root.
func (ctx *Context) Bcast(root int, bytes float64) {
	ctx.comm.Bcast(ctx.P, ctx.Rank, root, bytes)
}

// Reduce combines onto root.
func (ctx *Context) Reduce(root int, bytes float64) {
	ctx.comm.Reduce(ctx.P, ctx.Rank, root, bytes)
}

// Alltoall exchanges bytesPerPair with every other rank.
func (ctx *Context) Alltoall(bytesPerPair float64) {
	ctx.comm.Alltoall(ctx.P, ctx.Rank, bytesPerPair)
}

// Allgather shares each rank's contribution with everyone.
func (ctx *Context) Allgather(bytes float64) {
	ctx.comm.Allgather(ctx.P, ctx.Rank, bytes)
}

// Barrier synchronizes all ranks.
func (ctx *Context) Barrier() {
	ctx.comm.Barrier(ctx.P, ctx.Rank)
}

// CreditFlops adds useful FLOPs that were not run through Compute or
// Kernel (used by analytic phases).
func (ctx *Context) CreditFlops(f float64) { ctx.creditFlops(f) }

func (ctx *Context) creditFlops(f float64) {
	if ctx.cl.pd != nil {
		ctx.credits = append(ctx.credits, flopCredit{
			t: ctx.P.Now(), ord: ctx.P.Engine().CurOrder(), f: f,
		})
		return
	}
	ctx.cl.flops += f
	if ctx.job != nil {
		ctx.job.FLOPs += f
	}
}

// LocalStorageBandwidth is the sequential read rate of a node's local
// storage (the TX1's eMMC; binaries and model weights live there — the
// paper keeps binaries local and only logs/datasets on NFS).
const LocalStorageBandwidth = 150e6

// ReadLocal reads bytes from the node's local storage.
func (ctx *Context) ReadLocal(bytes float64) {
	start := ctx.P.Now()
	ctx.P.Sleep(bytes / LocalStorageBandwidth)
	if ctx.cl.cp != nil {
		ctx.cl.cp.Copy(ctx.cpEnt, start, ctx.P.Now())
	}
	if ctx.cl.Tracer != nil {
		ctx.cl.Tracer.RecordCopy(ctx.Rank, ctx.P.Now()-start, start)
	}
}

// Fetch pulls bytes from the cluster's file server over the network (NFS
// reads: images, model weights), blocking until the data arrives. The
// cluster must be configured with FileServer.
func (ctx *Context) Fetch(bytes float64) {
	if !ctx.cl.Cfg.FileServer {
		panic("cluster: Fetch requires Config.FileServer")
	}
	server := ctx.cl.Cfg.Nodes // last switch port
	_, arrival := ctx.cl.Net.DeliverFrom(ctx.P, server, ctx.node.Index, bytes)
	start := ctx.P.Now()
	var fetchID int32
	if ctx.cl.cp != nil {
		// Claim the Deliver booking before sleeping: another rank's send
		// would overwrite the pending slot while this process is parked.
		fetchID = ctx.cl.cp.FetchStart(ctx.cpEnt)
	}
	ctx.P.SleepUntil(arrival)
	if ctx.cl.cp != nil {
		ctx.cl.cp.FetchDone(ctx.cpEnt, fetchID, start, ctx.P.Now())
	}
	if ctx.cl.Tracer != nil {
		ctx.cl.Tracer.RecordCopy(ctx.Rank, ctx.P.Now()-start, start)
	}
}
