package cluster_test

import (
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"clustersoc/internal/cluster"
	"clustersoc/internal/network"
	"clustersoc/internal/workloads"
)

// cgReference runs the cg reference scenario (the 8-node TX1 cluster on
// 10GbE from the figures) once and returns the wall-clock duration and the
// number of simulation events processed.
func cgReference(b testing.TB, scale float64) (time.Duration, uint64) {
	w, err := workloads.ByName("cg")
	if err != nil {
		b.Fatal(err)
	}
	cfg := cluster.TX1Cluster(8, network.TenGigE)
	cfg.RanksPerNode = w.RanksPerNode()
	cl := cluster.New(cfg)
	body := w.Body(workloads.Config{Scale: scale})
	start := time.Now()
	res := cl.Run(body)
	return time.Since(start), res.Events
}

// TestPDESSpeedGuard asserts partitioned execution buys at least 2x
// aggregate events/s over the sequential engine on the cg reference
// scenario at 4 workers. Timing-based and parallelism-dependent, so it
// runs only under BENCH_GUARD=1 on a host with enough cores to actually
// run 4 partitions concurrently; plain `go test ./...` skips it.
func TestPDESSpeedGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("timing guard: set BENCH_GUARD=1 to run")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("PDES speed guard needs >= 4 CPUs, have %d", runtime.NumCPU())
	}

	const scale = 0.2
	const attempts = 3

	rate := func(workers int) float64 {
		prev := cluster.SetPDES(workers)
		defer cluster.SetPDES(prev)
		best := 0.0
		for i := 0; i < attempts; i++ {
			d, events := cgReference(t, scale)
			if r := float64(events) / d.Seconds(); r > best {
				best = r
			}
		}
		return best
	}

	// Interleave a warm-up of each before timing.
	rate(0)
	rate(4)
	seq, par := rate(0), rate(4)

	ratio := par / seq
	t.Logf("sequential %.0f events/s vs pdes(4) %.0f events/s (speedup %.2fx)", seq, par, ratio)
	if math.IsNaN(ratio) || ratio < 2 {
		t.Fatalf("PDES at 4 workers delivers %.2fx aggregate events/s on the cg reference, want >= 2x", ratio)
	}
}

// BenchmarkSequentialCG and BenchmarkPDESCG measure the cg reference
// scenario under both engines; compare with benchstat or -bench '.*CG'.
func BenchmarkSequentialCG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cgReference(b, 0.08)
	}
}

func BenchmarkPDESCG(b *testing.B) {
	prev := cluster.SetPDES(4)
	defer cluster.SetPDES(prev)
	for i := 0; i < b.N; i++ {
		cgReference(b, 0.08)
	}
}
