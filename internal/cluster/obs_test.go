package cluster

import (
	"encoding/json"
	"reflect"
	"testing"

	"clustersoc/internal/network"
	"clustersoc/internal/obs"
	"clustersoc/internal/soc"
	"clustersoc/internal/units"
)

// obsBody is a small workload body exercising CPU compute, DRAM traffic,
// and MPI communication — enough to touch every publish path.
func obsBody(ctx *Context) {
	w := soc.CPUWork{Instr: 1e8, Flops: 2e7, Branches: 1e6, BranchEntropy: 0.3,
		MemAccesses: 2e7, L1MissRate: 0.05, WorkingSet: 4 * units.MB, Bytes: 1e7}
	ctx.Compute(w)
	ctx.Allreduce(256 * units.KB)
	ctx.Compute(w)
	ctx.Barrier()
}

// TestInstrumentationDoesNotChangeClusterResult locks in the tentpole
// guarantee at the cluster layer: a run with an attached registry
// produces a Result byte-identical to an uninstrumented run.
func TestInstrumentationDoesNotChangeClusterResult(t *testing.T) {
	cfg := TX1Cluster(2, network.GigE)
	cfg.RanksPerNode = 2

	plainCl := New(cfg)
	plainCl.Instrument(nil) // explicit no-op
	plain := plainCl.Run(obsBody)

	reg := obs.NewRegistry()
	instrCl := New(cfg)
	instrCl.Instrument(reg)
	instr := instrCl.Run(obsBody)

	if !reflect.DeepEqual(plain, instr) {
		t.Fatalf("Result differs with instrumentation attached")
	}
	pb, _ := json.Marshal(plain)
	ib, _ := json.Marshal(instr)
	if string(pb) != string(ib) {
		t.Fatalf("Result JSON differs with instrumentation attached")
	}
}

func TestPublishedClusterMetrics(t *testing.T) {
	cfg := TX1Cluster(2, network.TenGigE)
	cfg.RanksPerNode = 1
	reg := obs.NewRegistry()
	cl := New(cfg)
	cl.Instrument(reg)
	res := cl.Run(obsBody)
	snap := reg.Snapshot()

	if got := snap.Value("cluster.runtime_s"); got != res.Runtime {
		t.Fatalf("cluster.runtime_s = %g, want %g", got, res.Runtime)
	}
	if got := snap.Value("cluster.flops"); got != res.FLOPs {
		t.Fatalf("cluster.flops = %g, want %g", got, res.FLOPs)
	}
	if got := snap.Value("sim.events"); got <= 0 {
		t.Fatalf("sim.events = %g, want > 0", got)
	}
	if got := snap.Value("network.messages"); got <= 0 {
		t.Fatalf("network.messages = %g, want > 0", got)
	}
	// Per-node breakdown in index order.
	for _, name := range []string{
		"cluster.node0.cpu_busy_s", "cluster.node1.cpu_busy_s",
		"cluster.node0.cpu_mem_stall_s", "cluster.node0.dram_bytes",
	} {
		if got := snap.Value(name); got <= 0 {
			t.Errorf("%s = %g, want > 0", name, got)
		}
	}
	// Per-rank blocked time publishes for every spawned rank (the value
	// may be zero here: eager sends mean a recv that finds its message
	// already posted just sleeps until arrival).
	for _, name := range []string{"cluster.rank.rank0_blocked_s", "cluster.rank.rank1_blocked_s"} {
		if _, ok := snap.Get(name); !ok {
			t.Errorf("%s missing from snapshot", name)
		}
	}
	// PMU counters fold in under their perf names.
	if got := snap.Value("pmu.INST_RETIRED"); got != res.PMU.InstRetired {
		t.Errorf("pmu.INST_RETIRED = %g, want %g", got, res.PMU.InstRetired)
	}
	// Busy fractions are fractions.
	if f := snap.Value("cluster.cpu_busy_frac"); f <= 0 || f > 1 {
		t.Errorf("cluster.cpu_busy_frac = %g, want in (0, 1]", f)
	}
}

// TestBlockedTimePublished: a receiver that posts before its sender has
// sent suspends, and the wait surfaces as per-rank blocked seconds.
func TestBlockedTimePublished(t *testing.T) {
	cfg := TX1Cluster(2, network.GigE)
	cfg.RanksPerNode = 1
	reg := obs.NewRegistry()
	cl := New(cfg)
	cl.Instrument(reg)
	cl.Run(func(ctx *Context) {
		if ctx.Rank == 0 {
			ctx.Compute(soc.CPUWork{Instr: 1e9, MemAccesses: 1e8, L1MissRate: 0.02, WorkingSet: 1e5})
			ctx.Send(1, 0, 1*units.MB)
		} else {
			ctx.Recv(0, 0) // posted at t=0, long before the send
		}
	})
	snap := reg.Snapshot()
	if got := snap.Value("cluster.rank.rank1_blocked_s"); got <= 0 {
		t.Fatalf("cluster.rank.rank1_blocked_s = %g, want > 0", got)
	}
	if got := snap.Value("sim.blocked_s"); got <= 0 {
		t.Fatalf("sim.blocked_s = %g, want > 0", got)
	}
}

// TestInstrumentedRunSnapshotDeterministic: instrumenting the same
// configuration twice yields byte-identical snapshots.
func TestInstrumentedRunSnapshotDeterministic(t *testing.T) {
	run := func() []byte {
		cfg := TX1Cluster(2, network.GigE)
		cfg.RanksPerNode = 2
		reg := obs.NewRegistry()
		cl := New(cfg)
		cl.Instrument(reg)
		cl.Run(obsBody)
		b, err := json.Marshal(reg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("snapshots of identical runs differ")
	}
}
