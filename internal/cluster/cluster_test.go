package cluster

import (
	"math"
	"testing"

	"clustersoc/internal/cuda"
	"clustersoc/internal/network"
	"clustersoc/internal/soc"
	"clustersoc/internal/units"
)

func TestTX1ClusterAssembly(t *testing.T) {
	cfg := TX1Cluster(4, network.TenGigE)
	cfg.RanksPerNode = 1
	cl := New(cfg)
	if len(cl.Nodes) != 4 || cl.Ranks() != 4 {
		t.Fatalf("nodes %d ranks %d", len(cl.Nodes), cl.Ranks())
	}
	for _, n := range cl.Nodes {
		if n.GPU == nil {
			t.Fatal("TX1 nodes must have a GPU")
		}
		if n.GPU.Config.DedicatedMemory {
			t.Fatal("the TX1 GPU shares DRAM")
		}
	}
}

func TestComputeAccounting(t *testing.T) {
	cfg := TX1Cluster(1, network.GigE)
	cfg.RanksPerNode = 1
	cl := New(cfg)
	w := soc.CPUWork{Instr: 1e9, Flops: 2e8, MemAccesses: 2e8, L1MissRate: 0.02,
		WorkingSet: 100e3, Bytes: 1e8}
	res := cl.Run(func(ctx *Context) { ctx.Compute(w) })
	if res.Runtime <= 0 {
		t.Fatal("no time elapsed")
	}
	if res.FLOPs != w.Flops {
		t.Fatalf("flops %v, want %v", res.FLOPs, w.Flops)
	}
	if res.PMU.InstRetired != w.Instr {
		t.Fatal("PMU not accumulated")
	}
	if math.Abs(res.CPUBusySeconds-res.Runtime) > 1e-9 {
		t.Fatalf("one busy core: busy %v vs runtime %v", res.CPUBusySeconds, res.Runtime)
	}
	if res.EnergyJoules <= 0 || res.AvgPowerWatts <= 0 {
		t.Fatal("power accounting missing")
	}
}

func TestComputeParallelDividesWallTime(t *testing.T) {
	w := soc.CPUWork{Instr: 4e9, MemAccesses: 1e8, L1MissRate: 0.01, WorkingSet: 1e5}
	run := func(cores int) Result {
		cfg := TX1Cluster(1, network.GigE)
		cfg.RanksPerNode = 1
		return New(cfg).Run(func(ctx *Context) { ctx.ComputeParallel(w, cores) })
	}
	one, four := run(1), run(4)
	// Spreading over 4 cores is ~4x faster in wall time with slightly
	// more total contention (sharers) — busy time stays the total.
	if four.Runtime > one.Runtime/3 {
		t.Fatalf("4-core run %v not ~4x faster than %v", four.Runtime, one.Runtime)
	}
	if four.CPUBusySeconds < one.CPUBusySeconds {
		t.Fatal("parallel run lost busy time")
	}
}

func TestGPUKernelSharesDRAMWithCPU(t *testing.T) {
	k := cuda.Kernel{Name: "stream", FLOPs: 1e6, Bytes: 2 * units.GB, L2HitRatio: 0}
	run := func(withCPU bool) float64 {
		cfg := TX1Cluster(1, network.GigE)
		cfg.RanksPerNode = 1
		cl := New(cfg)
		var kernelTime float64
		cl.Spawn(func(ctx *Context) {
			start := ctx.Now()
			ctx.Kernel(k)
			kernelTime = ctx.Now() - start
		})
		if withCPU {
			cl.SpawnWith(1, func(ctx *Context) {
				// A memory-hungry CPU job on the same node.
				ctx.Compute(soc.CPUWork{Instr: 1e9, MemAccesses: 5e8, L1MissRate: 0.5,
					WorkingSet: 64 * units.MiB, Bytes: 4 * units.GB})
			})
		}
		cl.Finish()
		return kernelTime
	}
	alone, contended := run(false), run(true)
	if contended <= alone*1.05 {
		t.Fatalf("CPU DRAM traffic should slow the integrated GPU: %v vs %v", contended, alone)
	}
}

func TestEnergyScalesWithIdleTime(t *testing.T) {
	cfg := TX1Cluster(2, network.GigE)
	cfg.RanksPerNode = 1
	short := New(cfg).Run(func(ctx *Context) { ctx.P.Sleep(1) })
	cfg2 := TX1Cluster(2, network.GigE)
	cfg2.RanksPerNode = 1
	long := New(cfg2).Run(func(ctx *Context) { ctx.P.Sleep(10) })
	ratio := long.EnergyJoules / short.EnergyJoules
	if math.Abs(ratio-10) > 0.01 {
		t.Fatalf("idle energy ratio %v, want 10", ratio)
	}
}

func TestNICPowerAdder(t *testing.T) {
	run := func(prof network.Profile) Result {
		cfg := TX1Cluster(4, prof)
		cfg.RanksPerNode = 1
		return New(cfg).Run(func(ctx *Context) { ctx.P.Sleep(1) })
	}
	g1, g10 := run(network.GigE), run(network.TenGigE)
	delta := g10.AvgPowerWatts - g1.AvgPowerWatts
	want := 4 * network.TenGigE.PowerWatts
	if math.Abs(delta-want) > 0.5 {
		t.Fatalf("10GbE power adder = %v W, want ~%v", delta, want)
	}
}

func TestTracedRunProducesTrace(t *testing.T) {
	cfg := TX1Cluster(2, network.TenGigE)
	cfg.RanksPerNode = 1
	cfg.Traced = true
	res := New(cfg).Run(func(ctx *Context) {
		ctx.Compute(soc.CPUWork{Instr: 1e8})
		if ctx.Rank == 0 {
			ctx.Send(1, 5, 1000)
		} else {
			ctx.Recv(0, 5)
		}
		ctx.Phase()
	})
	if res.Trace == nil {
		t.Fatal("no trace")
	}
	if res.Trace.Runtime != res.Runtime {
		t.Fatal("trace runtime not stamped")
	}
	comp := res.Trace.ComputeSeconds()
	if comp[0] <= 0 || comp[1] <= 0 {
		t.Fatal("compute not recorded")
	}
	if res.Trace.MessageBytes() != 1000 {
		t.Fatalf("message bytes %v", res.Trace.MessageBytes())
	}
}

func TestFetchCountsAsNetworkTraffic(t *testing.T) {
	cfg := TX1Cluster(2, network.TenGigE)
	cfg.RanksPerNode = 1
	cfg.FileServer = true
	res := New(cfg).Run(func(ctx *Context) { ctx.Fetch(5 * units.MB) })
	if math.Abs(res.NetBytes-10*units.MB) > 1 {
		t.Fatalf("fetch traffic %v, want 10MB", res.NetBytes)
	}
}

func TestJobTracksOwnThroughput(t *testing.T) {
	cfg := TX1Cluster(1, network.GigE)
	cfg.RanksPerNode = 1
	cl := New(cfg)
	fast := cl.Spawn(func(ctx *Context) {
		ctx.Compute(soc.CPUWork{Instr: 1e8, Flops: 1e8})
	})
	slow := cl.SpawnWith(1, func(ctx *Context) {
		ctx.P.Sleep(2)
		ctx.Compute(soc.CPUWork{Instr: 1e8, Flops: 1e8})
	})
	cl.Finish()
	if fast.Finish >= slow.Finish {
		t.Fatal("job finish times not tracked")
	}
	if fast.FLOPs != 1e8 || slow.FLOPs != 1e8 {
		t.Fatal("job flops not tracked")
	}
	if fast.Throughput() <= slow.Throughput() {
		t.Fatal("the earlier-finishing job must show higher throughput")
	}
}

func TestCaviumAssembly(t *testing.T) {
	cfg := CaviumServer(32)
	cl := New(cfg)
	if cl.Ranks() != 32 || len(cl.Nodes) != 1 {
		t.Fatalf("cavium ranks %d nodes %d", cl.Ranks(), len(cl.Nodes))
	}
	if cl.Nodes[0].GPU != nil {
		t.Fatal("the ThunderX has no GPU")
	}
	// All-rank barrier must work through the intra-node path.
	res := cl.Run(func(ctx *Context) { ctx.Barrier() })
	if res.NetBytes != 0 {
		t.Fatalf("single-node run produced wire traffic: %v", res.NetBytes)
	}
}

func TestGTX980UsesPCIe(t *testing.T) {
	cfg := GTX980Cluster(1)
	cl := New(cfg)
	var dur float64
	res := cl.Run(func(ctx *Context) {
		start := ctx.Now()
		ctx.CopyIn(1 * units.GB)
		dur = ctx.Now() - start
	})
	want := 1 * units.GB / cfg.NodeType.GPU.PCIeBandwidth
	if math.Abs(dur-want)/want > 0.05 {
		t.Fatalf("discrete copy %v, want PCIe-bound ~%v", dur, want)
	}
	_ = res
}

// Per-node stats decompose the cluster totals exactly.
func TestPerNodeStatsSumToTotals(t *testing.T) {
	cfg := TX1Cluster(4, network.TenGigE)
	cfg.RanksPerNode = 1
	res := New(cfg).Run(func(ctx *Context) {
		ctx.Compute(soc.CPUWork{Instr: 1e8 * float64(ctx.Rank+1), Flops: 1e7})
		if ctx.Rank > 0 {
			ctx.Send(0, 1, 1e6)
		} else {
			for s := 1; s < 4; s++ {
				ctx.Recv(s, 1)
			}
		}
	})
	if len(res.PerNode) != 4 {
		t.Fatalf("%d node entries", len(res.PerNode))
	}
	var cpu, energy, rx float64
	for _, n := range res.PerNode {
		cpu += n.CPUBusySeconds
		energy += n.EnergyJoules
		rx += n.NetRxBytes
	}
	if math.Abs(cpu-res.CPUBusySeconds) > 1e-9 {
		t.Fatal("CPU busy does not decompose")
	}
	if math.Abs(energy-res.EnergyJoules) > 1e-9 {
		t.Fatal("energy does not decompose")
	}
	if math.Abs(rx-res.NetBytes) > 1 {
		t.Fatal("traffic does not decompose")
	}
	// The imbalance is visible per node: node 3 did 4x node 0's work.
	if res.PerNode[3].CPUBusySeconds < 3*res.PerNode[0].CPUBusySeconds {
		t.Fatal("imbalance invisible in per-node stats")
	}
}

// Exercise the whole per-rank Context surface directly (the workloads
// package covers it indirectly; this keeps the contract pinned here).
func TestContextSurface(t *testing.T) {
	cfg := TX1Cluster(2, network.TenGigE)
	cfg.RanksPerNode = 2
	cfg.FileServer = true
	cl := New(cfg)
	res := cl.Run(func(ctx *Context) {
		if ctx.Size() != 4 || ctx.RanksPerNode() != 2 {
			t.Errorf("size %d rpn %d", ctx.Size(), ctx.RanksPerNode())
		}
		if ctx.NodeIndex() != ctx.Rank/2 {
			t.Errorf("rank %d on node %d", ctx.Rank, ctx.NodeIndex())
		}
		if ctx.Node().GPU == nil || ctx.GPU() == nil {
			t.Error("missing GPU on a TX1 node")
		}
		ctx.ReadLocal(1e6)
		g := ctx.KernelAsync(cuda.Kernel{Name: "k", FLOPs: 1e6})
		ctx.WaitKernel(g)
		ctx.CopyOut(1e5)
		ctx.StageOut(1e5)
		ctx.StageIn(1e5)
		ctx.Allreduce(64)
		ctx.Bcast(0, 1e4)
		ctx.Reduce(0, 1e4)
		ctx.Allgather(1e3)
		ctx.Alltoall(1e3)
		ctx.Sendrecv((ctx.Rank+1)%4, (ctx.Rank+3)%4, 9, 100, 100)
		ctx.Barrier()
		ctx.CreditFlops(5)
	})
	if res.Runtime <= 0 {
		t.Fatal("no time passed")
	}
	if res.FLOPs != 4*(1e6+5) {
		t.Fatalf("flops %v", res.FLOPs)
	}
	if res.MFLOPSPerWatt() <= 0 {
		t.Error("efficiency helper broken")
	}
	if res.NetTrafficRate() <= 0 || res.DRAMTrafficRate() <= 0 {
		t.Error("traffic-rate helpers broken")
	}
	// Zero-runtime result helpers are total.
	var zero Result
	if zero.NetTrafficRate() != 0 || zero.DRAMTrafficRate() != 0 {
		t.Error("zero-runtime rates should be zero")
	}
}

func TestConfigFingerprint(t *testing.T) {
	a := TX1Cluster(8, network.TenGigE)
	if a.Fingerprint() != TX1Cluster(8, network.TenGigE).Fingerprint() {
		t.Fatal("identical configs must share a fingerprint")
	}
	variants := []Config{
		TX1Cluster(4, network.TenGigE),
		TX1Cluster(8, network.GigE),
		CaviumServer(32),
		GTX980Cluster(8),
	}
	traced := a
	traced.Traced = true
	fs := a
	fs.FileServer = true
	gd := a
	gd.GPUDirect = true
	variants = append(variants, traced, fs, gd)
	seen := map[string]bool{a.Fingerprint(): true}
	for i, v := range variants {
		fp := v.Fingerprint()
		if seen[fp] {
			t.Errorf("variant %d collides with an earlier fingerprint", i)
		}
		seen[fp] = true
	}
}
