// Package cluster assembles simulated systems out of the hardware models —
// the 2/4/6/8-node Jetson TX1 cluster with 1 or 10 GbE, the Cavium
// ThunderX server, the Xeon + GTX 980 pair — and runs per-rank workload
// bodies on them, producing the measurements the paper reports: runtime,
// energy, power, throughput, traffic, PMU counters, GPU metrics, and an
// Extrae-style trace.
package cluster

import (
	"encoding/json"
	"fmt"

	"clustersoc/internal/critpath"
	"clustersoc/internal/cuda"
	"clustersoc/internal/faults"
	"clustersoc/internal/mpi"
	"clustersoc/internal/network"
	"clustersoc/internal/obs"
	"clustersoc/internal/perf"
	"clustersoc/internal/power"
	"clustersoc/internal/sim"
	"clustersoc/internal/soc"
	"clustersoc/internal/trace"
)

// Config describes one system to simulate.
type Config struct {
	Name         string
	Nodes        int
	NodeType     soc.NodeConfig
	Network      network.Profile
	RanksPerNode int
	MemModel     cuda.MemModel
	// Traced enables Extrae-style trace recording for replay analysis.
	Traced bool
	// FileServer attaches an NFS-style storage node to the switch (the
	// paper's SSD file server); Context.Fetch pulls data from it over the
	// network, as the AI image pipeline does.
	FileServer bool
	// GPUDirect enables the what-if the paper rules out on the TX1 (Sec.
	// III-B.2): NIC DMA straight into device memory, skipping the
	// host-staging copies around every halo exchange.
	GPUDirect bool
	// Faults, when set and enabled, injects the plan's failures into the
	// run (internal/faults): stragglers, link degradation and flaps,
	// message loss, node crashes. The plan is part of the fingerprint (a
	// seeded plan is a different scenario), and a nil or zero plan leaves
	// the run bit-identical to a fault-free one.
	Faults *faults.Plan `json:",omitempty"`
}

// Fingerprint returns a canonical, deterministic encoding of the
// configuration: two Configs describing the same system fingerprint
// identically. Every field that influences a run participates — node
// counts, the full SoC model (including the GPU config behind the
// pointer), the NIC profile, rank density, the CUDA memory model, and
// the tracing/file-server/GPUDirect switches. The run-plane in
// internal/runner keys its memoization cache on it.
func (c Config) Fingerprint() string {
	// JSON marshalling walks the nested structs (soc.NodeConfig,
	// network.Profile, power.Spec, *soc.GPUConfig) by value in struct
	// field order, which is exactly the canonical form needed; none of
	// the hardware-model types contain maps, so the encoding is stable.
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("cluster: config not fingerprintable: %v", err))
	}
	return string(b)
}

// TX1Cluster returns the paper's proposed organization: n Jetson TX1
// boards on the given network.
func TX1Cluster(n int, prof network.Profile) Config {
	return Config{
		Name:         fmt.Sprintf("%d-node TX1 %s", n, prof.Name),
		Nodes:        n,
		NodeType:     soc.JetsonTX1(),
		Network:      prof,
		RanksPerNode: 1,
	}
}

// CaviumServer returns the single-node many-core comparison system with
// the given MPI process count.
func CaviumServer(ranks int) Config {
	return Config{
		Name:         "Cavium ThunderX server",
		Nodes:        1,
		NodeType:     soc.CaviumThunderX(),
		Network:      network.GigE, // irrelevant: all traffic is intra-node
		RanksPerNode: ranks,
	}
}

// GTX980Cluster returns the discrete-GPU comparison system: n Xeon-hosted
// GTX 980 nodes on 10 GbE.
func GTX980Cluster(n int) Config {
	return Config{
		Name:         fmt.Sprintf("%dx GTX 980", n),
		Nodes:        n,
		NodeType:     soc.XeonGTX980(),
		Network:      network.TenGigE,
		RanksPerNode: 1,
	}
}

// Node is one running node instance.
type Node struct {
	Index int
	Type  soc.NodeConfig
	DRAM  *sim.Pipe
	Cores *sim.Resource
	GPU   *cuda.Device // nil for CPU-only nodes
	PMU   perf.PMU
	Meter power.Meter

	cpuBusy     float64 // core-seconds
	cpuMemStall float64 // core-seconds stalled on L2 misses (soc cost model)
}

// Cluster is an assembled system ready to run workload bodies.
type Cluster struct {
	Cfg    Config
	Eng    *sim.Engine
	Net    *network.Network
	Nodes  []*Node
	Comm   *mpi.Comm
	Tracer *trace.Tracer

	ranksPerNode int
	flops        float64 // useful FLOPs accumulated by contexts

	reg      *obs.Registry  // nil unless Instrument attached observability
	procs    []*sim.Process // spawned rank processes, in spawn order
	comms    []*mpi.Comm    // every communicator (Comm + SpawnWith's), for auditing
	checking bool           // propagate match-time validation to new comms
	inj      *faults.Injector
	cp       *critpath.Recorder // nil unless RecordCritPath enabled recording
	jobs     int                // spawnOn calls so far, for entity naming

	// pd is the conservative-PDES coordinator when this cluster runs
	// partitioned (see pdes.go); nil on sequential runs. ctxs collects
	// every rank context in spawn order so Finish can merge the per-rank
	// FLOP-credit logs deterministically.
	pd   *sim.PDES
	ctxs []*Context
	jobL []*Job // every spawned job, for finish-time settlement
}

// New assembles a cluster from a config. When a process-wide PDES worker
// count is installed (SetPDES / CLUSTERSOC_PDES) and the config is
// eligible, the cluster is partitioned by node onto conservative-PDES
// child engines; results are bit-identical either way.
func New(cfg Config) *Cluster {
	return assemble(cfg, PDESWorkers())
}

// NewSequential is New with partitioned execution suppressed for this one
// cluster regardless of the process-wide PDES setting. The run plane uses
// it for observer-attached runs (profiling, checking, critical-path
// recording), whose shared-state hooks require the single shared calendar.
func NewSequential(cfg Config) *Cluster {
	return assemble(cfg, 0)
}

func assemble(cfg Config, pdesWorkers int) *Cluster {
	if cfg.Nodes < 1 || cfg.RanksPerNode < 1 {
		panic("cluster: need at least one node and one rank per node")
	}
	e := sim.NewEngine()
	netNodes := cfg.Nodes
	if cfg.FileServer {
		netNodes++ // the server takes the last port on the switch
	}
	nw := network.New(e, netNodes, cfg.Network)
	cl := &Cluster{Cfg: cfg, Eng: e, Net: nw, ranksPerNode: cfg.RanksPerNode}
	if pdesWorkers > 0 && cfg.pdesEligible(nw.MinLookahead()) {
		cl.pd = sim.NewPDES(cfg.Nodes, nw.MinLookahead(), pdesWorkers)
	}
	if cfg.Faults.Enabled() {
		cl.inj = faults.NewInjector(*cfg.Faults, e, nw, cfg.Nodes)
	}
	for i := 0; i < cfg.Nodes; i++ {
		nt := cfg.NodeType
		ne := cl.nodeEng(i)
		node := &Node{
			Index: i,
			Type:  nt,
			DRAM:  sim.NewPipe(ne, fmt.Sprintf("dram%d", i), nt.DRAMBandwidth, 0),
			Cores: sim.NewResource(nt.CPU.Cores),
		}
		node.Meter.Spec = nt.Power
		node.Meter.Spec.NICWatts += cfg.Network.PowerWatts
		if nt.GPU != nil {
			if cfg.GPUDirect {
				g := *nt.GPU
				g.GPUDirect = true
				nt.GPU = &g
			}
			var mem, pcie *sim.Pipe
			if nt.GPU.DedicatedMemory {
				mem = sim.NewPipe(ne, fmt.Sprintf("gddr%d", i), nt.GPU.MemBandwidth, 0)
				pcie = sim.NewPipe(ne, fmt.Sprintf("pcie%d", i), nt.GPU.PCIeBandwidth, 5e-6)
			} else {
				mem = node.DRAM // the TX1 property: CPU and GPU share DRAM
			}
			node.GPU = cuda.New(ne, *nt.GPU, mem, pcie)
			node.GPU.Model = cfg.MemModel
		}
		cl.Nodes = append(cl.Nodes, node)
	}
	rankNode := make([]int, cfg.Nodes*cfg.RanksPerNode)
	for r := range rankNode {
		rankNode[r] = r / cfg.RanksPerNode
	}
	cl.Comm = mpi.NewComm(e, nw, rankNode)
	if cfg.Faults.LosesMessages() {
		cl.Comm.SetLossInjector(cl.inj)
	}
	cl.comms = append(cl.comms, cl.Comm)
	if cfg.Traced {
		cl.Tracer = trace.New(rankNode)
		cl.Comm.SetRecorder(cl.Tracer)
	}
	return cl
}

// Ranks returns the total MPI rank count.
func (cl *Cluster) Ranks() int { return cl.Cfg.Nodes * cl.ranksPerNode }

// Instrument attaches an observability registry to the cluster: live
// metrics (the network's message-size histogram) start recording, and
// Finish publishes the full simulated snapshot — engine diagnostics,
// per-port network accounting, per-node DRAM-arbitration stall and
// CPU/GPU busy time, per-rank blocked time, PMU counters, and GPU
// metrics. Instrument must be called before Spawn/Run.
//
// Instrument(nil) is a no-op. Instrumentation never alters the
// simulation: a run with and without a registry produces identical
// Result values, a property locked in by the runner determinism tests.
func (cl *Cluster) Instrument(reg *obs.Registry) {
	if reg != nil && cl.pd != nil {
		panic("cluster: Instrument is not supported on a partitioned (PDES) cluster; run sequentially to profile")
	}
	cl.reg = reg
	if reg == nil {
		return
	}
	cl.Net.Instrument(reg.Scope("network"))
}

// EnableChecking turns on match-time validation (simcheck) for every
// communicator of this cluster, current and future. Like Instrument it
// must be called before Spawn/Run, and like instrumentation it never
// alters the simulation — it only observes matches and collects
// diagnostics for the post-run audit.
func (cl *Cluster) EnableChecking() {
	if cl.pd != nil {
		panic("cluster: EnableChecking is not supported on a partitioned (PDES) cluster; run sequentially to audit")
	}
	cl.checking = true
	for _, c := range cl.comms {
		c.SetChecking(true)
	}
}

// Comms returns every communicator the cluster has created (the primary
// one first, then SpawnWith's in spawn order) for post-run auditing.
func (cl *Cluster) Comms() []*mpi.Comm { return cl.comms }

// RecordCritPath turns on causal event-graph recording (internal/critpath)
// for this run. Like Instrument it must be called before Spawn/Run, and
// like instrumentation it is strictly passive: the recorder only observes
// times the simulation already computed, so a recorded run stays
// bit-identical to an unrecorded one. Deliberately a method, not a Config
// field — recording is a property of one execution, not of the scenario,
// and must stay out of the fingerprint.
func (cl *Cluster) RecordCritPath() {
	if cl.pd != nil {
		panic("cluster: RecordCritPath is not supported on a partitioned (PDES) cluster; run sequentially to record")
	}
	if cl.cp != nil {
		return
	}
	cl.cp = critpath.NewRecorder(cl.Eng)
	cl.Net.SetDeliveryObserver(cl.cp)
}

// CritPath returns the recorder attached by RecordCritPath, or nil. The
// runner analyzes it after Finish.
func (cl *Cluster) CritPath() *critpath.Recorder { return cl.cp }

// Job tracks one spawned workload's own completion and FLOP tally, so
// co-scheduled workloads (the Table IV collocation) can report individual
// throughputs the way the paper's simultaneous hpl runs do.
type Job struct {
	FLOPs  float64
	Finish float64 // time the job's last rank returned

	// fin holds per-rank finish times on partitioned runs, where ranks
	// return concurrently and a shared max update would race; Finish is
	// settled from it (deterministically, as a max) after the run.
	fin []float64
}

// Throughput returns the job's FLOP/s over its own duration.
func (j *Job) Throughput() float64 {
	if j.Finish <= 0 {
		return 0
	}
	return j.FLOPs / j.Finish
}

// Run spawns body once per rank, runs the simulation to completion, and
// gathers the measurements.
func (cl *Cluster) Run(body func(ctx *Context)) Result {
	cl.Spawn(body)
	return cl.Finish()
}

// Spawn launches body on every rank without running the engine — used to
// co-schedule two workloads on one cluster (the CPU+GPU collocation
// experiment of Table IV). The caller composes with more Spawn calls on
// sibling communicators, then calls Finish.
func (cl *Cluster) Spawn(body func(ctx *Context)) *Job {
	return cl.spawnOn(cl.Comm, cl.ranksPerNode, body)
}

// SpawnWith launches body on a fresh communicator with its own process
// density — the collocation experiment runs the GPU hpl (1 rank/node) and
// the CPU hpl (3 ranks/node) side by side on the same nodes, NICs, and
// DRAM.
func (cl *Cluster) SpawnWith(ranksPerNode int, body func(ctx *Context)) *Job {
	rankNode := make([]int, cl.Cfg.Nodes*ranksPerNode)
	for r := range rankNode {
		rankNode[r] = r / ranksPerNode
	}
	comm := mpi.NewComm(cl.Eng, cl.Net, rankNode)
	comm.SetChecking(cl.checking)
	if cl.Cfg.Faults.LosesMessages() {
		comm.SetLossInjector(cl.inj)
	}
	cl.comms = append(cl.comms, comm)
	return cl.spawnOn(comm, ranksPerNode, body)
}

func (cl *Cluster) spawnOn(comm *mpi.Comm, ranksPerNode int, body func(ctx *Context)) *Job {
	job := &Job{}
	var ents []int32
	if cl.cp != nil {
		// One recorded timeline per rank of this communicator. The primary
		// job keeps bare rank names; co-scheduled jobs are prefixed, since
		// their rank numbering restarts.
		prefix := ""
		if cl.jobs > 0 {
			prefix = fmt.Sprintf("job%d.", cl.jobs)
		}
		ents = make([]int32, comm.Size())
		for r := range ents {
			ents[r] = cl.cp.NewEntity(fmt.Sprintf("%srank%d", prefix, r), comm.Node(r))
		}
		comm.SetPathRecorder(cl.cp.CommHooks(ents))
	}
	cl.jobs++
	cl.jobL = append(cl.jobL, job)
	if cl.pd != nil {
		job.fin = make([]float64, comm.Size())
	}
	for r := 0; r < comm.Size(); r++ {
		r := r
		ctx := &Context{cl: cl, Rank: r, node: cl.Nodes[r/ranksPerNode], comm: comm, job: job}
		if ents != nil {
			ctx.cpEnt = ents[r]
		}
		cl.ctxs = append(cl.ctxs, ctx)
		p := cl.nodeEng(r / ranksPerNode).Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Process) {
			ctx.P = p
			body(ctx)
			if job.fin != nil {
				job.fin[r] = p.Now() // partition-local; settled in Finish
				return
			}
			if p.Now() > job.Finish {
				job.Finish = p.Now()
			}
		})
		cl.procs = append(cl.procs, p)
	}
	return job
}

// Finish runs the engine to completion and collects the results.
func (cl *Cluster) Finish() Result {
	var runtime float64
	events := func() uint64 { return cl.Eng.Events() }
	if cl.pd != nil {
		runtime = cl.pd.Run()
		events = cl.pd.Events
		cl.settlePDES()
	} else {
		runtime = cl.Eng.Run()
	}
	res := Result{
		System:  cl.Cfg.Name,
		Network: cl.Cfg.Network.Name,
		Nodes:   cl.Cfg.Nodes,
		Ranks:   cl.Ranks(),
		Runtime: runtime,
		FLOPs:   cl.flops,
		Events:  events(),
	}
	for _, n := range cl.Nodes {
		n.Meter.AddCPU(n.cpuBusy)
		res.PMU.Add(n.PMU)
		res.CPUBusySeconds += n.cpuBusy
		res.DRAMBytes += n.DRAM.Bytes()
		ns := NodeStats{Index: n.Index, CPUBusySeconds: n.cpuBusy, DRAMBytes: n.DRAM.Bytes()}
		if n.GPU != nil {
			n.Meter.AddGPU(n.GPU.SMBusySeconds())
			n.Meter.AddDRAM(n.GPU.Metrics.DRAMBytes + 2*n.GPU.Metrics.CopyBytes)
			res.GPU.Add(n.GPU.Metrics)
			res.GPUBusySeconds += n.GPU.SMBusySeconds()
			ns.GPUBusySeconds = n.GPU.SMBusySeconds()
		}
		ns.EnergyJoules = n.Meter.Energy(runtime)
		res.EnergyJoules += ns.EnergyJoules
		// Count wire traffic at the receivers: every inter-node byte lands
		// on exactly one compute-node RX port, including file-server reads.
		ns.NetRxBytes = cl.Net.BytesReceived(n.Index)
		ns.NetTxBytes = cl.Net.BytesSent(n.Index)
		res.NetBytes += ns.NetRxBytes
		res.PerNode = append(res.PerNode, ns)
	}
	// The paper senses each system's AC socket; the switch is external to
	// those measurements, so cluster energy sums node meters only. The
	// switch draw is still reported separately.
	res.SwitchEnergyJoules = cl.Cfg.Network.SwitchWatts * runtime
	if runtime > 0 {
		res.AvgPowerWatts = res.EnergyJoules / runtime
		res.Throughput = res.FLOPs / runtime
		res.UnhaltedCPUCyclesPerSec = res.PMU.CPUCycles / runtime
	}
	if cl.Tracer != nil {
		cl.Tracer.Finish(runtime)
		res.Trace = &cl.Tracer.T
	}
	if cl.inj != nil {
		fs := cl.inj.Stats()
		for _, c := range cl.comms {
			for r := 0; r < c.Size(); r++ {
				fs.RetransmittedBytes += c.RetransmittedBytes(r)
			}
		}
		fs.LinkDownDelays, fs.LinkDownDelaySeconds, fs.FlapRestoresCancelled = cl.Net.FlapDelays()
		res.Faults = &fs
	}
	if cl.reg != nil {
		cl.publishMetrics(&res, runtime)
	}
	return res
}

// publishMetrics exports the run's simulated accounting into the
// attached registry. Everything published here derives from simulated
// quantities only — no wall clock — and iterates nodes, ranks, and ports
// in index order, so profiling the same scenario twice produces
// byte-identical snapshots.
func (cl *Cluster) publishMetrics(res *Result, runtime float64) {
	cl.Eng.PublishMetrics(cl.reg.Scope("sim"))
	cl.Net.PublishMetrics(cl.reg.Scope("network"))

	cs := cl.reg.Scope("cluster")
	cs.Gauge("runtime_s").Set(runtime)
	cs.Counter("flops").Add(res.FLOPs)
	cs.Counter("energy_j").Add(res.EnergyJoules)
	cs.Counter("net_bytes").Add(res.NetBytes)
	cs.Counter("dram_bytes").Add(res.DRAMBytes)
	cs.Counter("cpu_busy_s").Add(res.CPUBusySeconds)
	cs.Counter("gpu_busy_s").Add(res.GPUBusySeconds)
	if runtime > 0 {
		// The paper's CPU/GPU overlap question in two numbers: busy
		// fraction of all CPU cores vs all GPU SM time over the run.
		totalCores := float64(cl.Cfg.Nodes * cl.Cfg.NodeType.CPU.Cores)
		cs.Gauge("cpu_busy_frac").Set(res.CPUBusySeconds / (runtime * totalCores))
		if cl.Cfg.NodeType.GPU != nil {
			cs.Gauge("gpu_busy_frac").Set(res.GPUBusySeconds / (runtime * float64(cl.Cfg.Nodes)))
		}
	}

	for _, n := range cl.Nodes {
		ns := cs.Scope(fmt.Sprintf("node%d", n.Index))
		ns.Counter("dram_bytes").Add(n.DRAM.Bytes())
		ns.Counter("dram_stall_s").Add(n.DRAM.QueueWait())
		ns.Counter("cpu_busy_s").Add(n.cpuBusy)
		ns.Counter("cpu_mem_stall_s").Add(n.cpuMemStall)
		if n.GPU != nil {
			ns.Counter("gpu_busy_s").Add(n.GPU.SMBusySeconds())
		}
	}
	for _, p := range cl.procs {
		cs.Scope("rank").Counter(p.Name() + "_blocked_s").Add(p.BlockedSeconds())
	}
	if res.Faults != nil {
		fs := cl.reg.Scope("faults")
		fs.Gauge("straggler_nodes").Set(float64(res.Faults.StragglerNodes))
		fs.Gauge("derated_nodes").Set(float64(res.Faults.DeratedNodes))
		fs.Counter("crashes").Add(float64(res.Faults.Crashes))
		fs.Counter("crash_outage_s").Add(res.Faults.CrashOutageSeconds)
		fs.Counter("rework_s").Add(res.Faults.ReworkSeconds)
		fs.Counter("checkpoints").Add(float64(res.Faults.Checkpoints))
		fs.Counter("checkpoint_overhead_s").Add(res.Faults.CheckpointOverheadSeconds)
		fs.Counter("lost_messages").Add(float64(res.Faults.LostMessages))
		fs.Counter("retransmitted_bytes").Add(res.Faults.RetransmittedBytes)
		fs.Counter("link_down_delays").Add(float64(res.Faults.LinkDownDelays))
		fs.Counter("link_down_delay_s").Add(res.Faults.LinkDownDelaySeconds)
		fs.Counter("flap_restores_cancelled").Add(float64(res.Faults.FlapRestoresCancelled))
	}
	res.PMU.Publish(cl.reg.Scope("pmu"))
	res.GPU.Publish(cl.reg.Scope("gpu"))
}

// Result is one simulated run's measurements.
type Result struct {
	System  string
	Network string
	Nodes   int
	Ranks   int

	Runtime       float64
	EnergyJoules  float64
	AvgPowerWatts float64
	FLOPs         float64 // useful FLOPs credited by the workload
	Throughput    float64 // FLOPs / runtime

	// SwitchEnergyJoules is the switch's draw over the run, reported
	// separately because the paper's per-node AC probes exclude it.
	SwitchEnergyJoules float64

	NetBytes  float64 // bytes sent over the wire (cluster total)
	DRAMBytes float64 // bytes through node DRAM pipes (cluster total)

	CPUBusySeconds float64
	GPUBusySeconds float64

	UnhaltedCPUCyclesPerSec float64

	// Events is the number of simulation events the engine processed to
	// produce this run — the denominator of the simulator's events/s
	// throughput metric. A property of the simulator, not the modeled
	// system, so it stays out of JSON artifacts (like Profile on
	// runner.Result).
	Events uint64 `json:"-"`

	PMU   perf.PMU
	GPU   perf.GPUMetrics
	Trace *trace.Trace

	// Faults is the run's fault accounting, present only when a fault
	// plan was active — fault-free runs keep artifacts byte-identical.
	Faults *faults.Stats `json:"Faults,omitempty"`

	// PerNode breaks the cluster totals down, in node order — useful for
	// spotting imbalance (the paper's LB factor) directly in a run.
	PerNode []NodeStats
}

// NodeStats is one node's share of a run.
type NodeStats struct {
	Index          int
	CPUBusySeconds float64
	GPUBusySeconds float64
	DRAMBytes      float64
	NetRxBytes     float64
	NetTxBytes     float64
	EnergyJoules   float64
}

// MFLOPSPerWatt returns the paper's energy-efficiency metric.
func (r Result) MFLOPSPerWatt() float64 {
	return power.MFLOPSPerWatt(r.Throughput, r.AvgPowerWatts)
}

// NetTrafficRate returns average wire bytes/second over the run (the
// x-axis of Fig. 3).
func (r Result) NetTrafficRate() float64 {
	if r.Runtime == 0 {
		return 0
	}
	return r.NetBytes / r.Runtime
}

// DRAMTrafficRate returns average DRAM bytes/second (Fig. 3's y-axis).
func (r Result) DRAMTrafficRate() float64 {
	if r.Runtime == 0 {
		return 0
	}
	return r.DRAMBytes / r.Runtime
}
