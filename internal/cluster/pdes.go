package cluster

// Opt-in conservative-PDES run mode. SetPDES (or the CLUSTERSOC_PDES
// environment variable) installs a process-wide worker count; every
// cluster.New call after that partitions the simulation by node onto
// sim.PDES child engines when the configuration is eligible:
//
//   - more than one node (a single partition has nothing to parallelize),
//   - a network with positive minimum link latency (the conservative
//     lookahead window; the Ideal profile provides none),
//   - no fault plan (the fault plane's restore timers and crash windows
//     ride the shared network clock) and no trace recording (the tracer's
//     per-rank records interleave through shared state).
//
// Ineligible configurations silently fall back to the sequential engine —
// PDES is a property of one execution, never of the scenario, so the
// fallback keeps results identical by construction. Observer attachments
// that thread shared state through the hot path (Instrument,
// EnableChecking, RecordCritPath) panic on a partitioned cluster instead
// of racing; the runner requests a sequential run for those modes.

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync/atomic"

	"clustersoc/internal/sim"
)

var pdesWorkers atomic.Int32

func init() {
	// CLUSTERSOC_PDES lets test runs and CI enable partitioned execution
	// without touching call sites (the CLUSTERSOC_BACKEND idiom). The
	// value is the worker count; a typo must fail loudly, not silently
	// run sequentially.
	if v := os.Getenv("CLUSTERSOC_PDES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			panic(fmt.Sprintf("cluster: CLUSTERSOC_PDES must be a non-negative worker count, got %q", v))
		}
		pdesWorkers.Store(int32(n))
	}
}

// SetPDES installs the process-wide PDES worker count and returns the
// previous value (so tests can restore it). workers <= 0 disables
// partitioned execution; otherwise eligible clusters created afterwards
// run their partitions on up to that many concurrent workers.
func SetPDES(workers int) int {
	if workers < 0 {
		workers = 0
	}
	return int(pdesWorkers.Swap(int32(workers)))
}

// PDESWorkers returns the process-wide PDES worker count (0 = disabled).
func PDESWorkers() int { return int(pdesWorkers.Load()) }

// pdesEligible reports whether cfg can run partitioned (see the package
// comment above for the rules).
func (cfg Config) pdesEligible(lookahead float64) bool {
	return cfg.Nodes > 1 &&
		lookahead > 0 &&
		!cfg.Traced &&
		!cfg.Faults.Enabled() &&
		!cfg.Faults.LosesMessages()
}

// Partitioned reports whether this cluster runs under conservative PDES.
func (cl *Cluster) Partitioned() bool { return cl.pd != nil }

// nodeEng returns the engine that owns node i's components: the partition
// child under PDES, the shared engine otherwise.
func (cl *Cluster) nodeEng(i int) *sim.Engine {
	if cl.pd != nil {
		return cl.pd.Child(i)
	}
	return cl.Eng
}

// flopCredit is one deferred FLOP credit on a partitioned run: contexts
// log (time, order, flops) locally instead of adding into the shared
// accumulator, and settlePDES replays the logs in the global event order.
type flopCredit struct {
	t   float64
	ord sim.Order
	f   float64
}

// settlePDES merges the per-rank FLOP-credit logs and per-rank job finish
// times after a partitioned run. Credits replay in (time, causal order) —
// exactly the order the sequential engine's single accumulator sees them
// in — so the floating-point sums come out bit-identical. Credits from the
// same event (equal order tokens) keep their append order via the stable
// sort, which is their program order.
func (cl *Cluster) settlePDES() {
	type tagged struct {
		t   float64
		ord sim.Order
		f   float64
		ctx int
	}
	var all []tagged
	for i, ctx := range cl.ctxs {
		for _, c := range ctx.credits {
			all = append(all, tagged{t: c.t, ord: c.ord, f: c.f, ctx: i})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].t != all[j].t {
			return all[i].t < all[j].t
		}
		return all[i].ord.Before(all[j].ord)
	})
	for _, c := range all {
		cl.flops += c.f
		if job := cl.ctxs[c.ctx].job; job != nil {
			job.FLOPs += c.f
		}
	}
	for _, job := range cl.jobL {
		for _, t := range job.fin {
			if t > job.Finish {
				job.Finish = t
			}
		}
	}
}
