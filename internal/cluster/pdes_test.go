package cluster_test

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"clustersoc/internal/cluster"
	"clustersoc/internal/faults"
	"clustersoc/internal/network"
	"clustersoc/internal/workloads"
)

// withPDES runs fn with the process-wide PDES worker count set, restoring
// the previous value afterwards.
func withPDES(workers int, fn func()) {
	prev := cluster.SetPDES(workers)
	defer cluster.SetPDES(prev)
	fn()
}

// runWorkload assembles the cg reference system (or a variant via mutate),
// runs one workload at a small scale, and returns the Result JSON — the
// exact artifact encoding the experiment drivers persist.
func runWorkload(t *testing.T, name string, scale float64, mutate func(*cluster.Config)) []byte {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.TX1Cluster(8, network.TenGigE)
	cfg.RanksPerNode = w.RanksPerNode()
	if w.GPUAccelerated() {
		cfg.FileServer = true
	}
	if mutate != nil {
		mutate(&cfg)
	}
	cl := cluster.New(cfg)
	res := cl.Run(w.Body(workloads.Config{Scale: scale}))
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPDESByteIdenticalAcrossAllWorkloads is the tentpole determinism pin:
// every registered workload must produce byte-identical artifact JSON
// under partitioned execution, for every worker count in the sweep. The
// sequential result is the reference.
func TestPDESByteIdenticalAcrossAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every workload several times")
	}
	for _, w := range workloads.All() {
		name := w.Name()
		t.Run(name, func(t *testing.T) {
			seq := runWorkload(t, name, 0.02, nil)
			for _, workers := range []int{1, 2, 4, 8} {
				var par []byte
				withPDES(workers, func() { par = runWorkload(t, name, 0.02, nil) })
				if string(seq) != string(par) {
					t.Fatalf("workers=%d: PDES artifact diverges from sequential\nseq: %s\npar: %s",
						workers, seq, par)
				}
			}
		})
	}
}

// TestPDESByteIdenticalAcrossGOMAXPROCS sweeps the scheduler dimension on
// the cg reference scenario: identical bytes at GOMAXPROCS 1, 2, 4, 8.
func TestPDESByteIdenticalAcrossGOMAXPROCS(t *testing.T) {
	seq := runWorkload(t, "cg", 0.04, nil)
	for _, procs := range []int{1, 2, 4, 8} {
		old := runtime.GOMAXPROCS(procs)
		var par []byte
		withPDES(4, func() { par = runWorkload(t, "cg", 0.04, nil) })
		runtime.GOMAXPROCS(old)
		if string(seq) != string(par) {
			t.Fatalf("GOMAXPROCS=%d: PDES artifact diverges from sequential", procs)
		}
	}
}

// TestPDESIdenticalWithFileServer covers the cross-partition NFS path:
// Fetch crosses from the server port into the rank's node.
func TestPDESIdenticalWithFileServer(t *testing.T) {
	mutate := func(c *cluster.Config) { c.FileServer = true }
	seq := runWorkload(t, "alexnet", 0.05, mutate)
	var par []byte
	withPDES(4, func() { par = runWorkload(t, "alexnet", 0.05, mutate) })
	if string(seq) != string(par) {
		t.Fatalf("file-server run diverges under PDES\nseq: %s\npar: %s", seq, par)
	}
}

func TestPDESEligibilityGating(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*cluster.Config)
		want   bool
	}{
		{"eligible", nil, true},
		{"single node", func(c *cluster.Config) {
			c.Nodes = 1
			c.RanksPerNode = 4
		}, false},
		{"ideal network (no lookahead)", func(c *cluster.Config) { c.Network = network.Ideal }, false},
		{"traced", func(c *cluster.Config) { c.Traced = true }, false},
		{"faults", func(c *cluster.Config) {
			c.Faults = &faults.Plan{Seed: 1, StragglerFraction: 0.5, StragglerFactor: 2}
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := cluster.TX1Cluster(4, network.TenGigE)
			if tc.mutate != nil {
				tc.mutate(&cfg)
			}
			withPDES(4, func() {
				if got := cluster.New(cfg).Partitioned(); got != tc.want {
					t.Fatalf("Partitioned() = %v, want %v", got, tc.want)
				}
			})
		})
	}
	// Disabled process-wide: never partitioned.
	if cluster.New(cluster.TX1Cluster(4, network.TenGigE)).Partitioned() {
		t.Fatal("cluster partitioned with PDES disabled")
	}
	// NewSequential suppresses partitioning even when enabled.
	withPDES(4, func() {
		if cluster.NewSequential(cluster.TX1Cluster(4, network.TenGigE)).Partitioned() {
			t.Fatal("NewSequential built a partitioned cluster")
		}
	})
}

func TestPDESObserverAttachmentsPanic(t *testing.T) {
	attach := map[string]func(*cluster.Cluster){
		"Instrument":     func(cl *cluster.Cluster) { cl.Instrument(nil) },
		"EnableChecking": func(cl *cluster.Cluster) { cl.EnableChecking() },
		"RecordCritPath": func(cl *cluster.Cluster) { cl.RecordCritPath() },
	}
	for name, fn := range attach {
		t.Run(name, func(t *testing.T) {
			withPDES(2, func() {
				cl := cluster.New(cluster.TX1Cluster(4, network.TenGigE))
				if name == "Instrument" {
					// Instrument(nil) is the documented no-op; it must stay
					// allowed even on a partitioned cluster.
					fn(cl)
					return
				}
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("%s did not panic on a partitioned cluster", name)
					}
					if !strings.Contains(fmt.Sprint(r), "partitioned") {
						t.Fatalf("%s panic does not name the PDES conflict: %v", name, r)
					}
				}()
				fn(cl)
			})
		})
	}
}

func TestSetPDESRoundTrip(t *testing.T) {
	prev := cluster.SetPDES(7)
	defer cluster.SetPDES(prev)
	if got := cluster.PDESWorkers(); got != 7 {
		t.Fatalf("PDESWorkers() = %d after SetPDES(7)", got)
	}
	if old := cluster.SetPDES(0); old != 7 {
		t.Fatalf("SetPDES returned %d, want previous value 7", old)
	}
	if got := cluster.PDESWorkers(); got != 0 {
		t.Fatalf("PDESWorkers() = %d after disabling", got)
	}
	if cluster.SetPDES(-5); cluster.PDESWorkers() != 0 {
		t.Fatal("negative worker counts must clamp to disabled")
	}
}
