// Package plot renders small ASCII charts — line charts for the scaling
// curves (Figs. 5/6), scatter plots for the traffic and runtime/energy
// figures (Figs. 3/9), and log-log curves for the roofline (Fig. 4) — so
// cmd/experiments can show the paper's figures as figures, not just
// tables. Stdlib only, fixed-width output.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line or point set.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte // defaults to letters a, b, c... assigned by the chart
}

// Chart is an ASCII chart under construction.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 18)
	LogX   bool
	LogY   bool
	series []Series
}

// Add appends a series (skipping empty ones).
func (c *Chart) Add(s Series) {
	if len(s.X) == 0 || len(s.X) != len(s.Y) {
		return
	}
	c.series = append(c.series, s)
}

func (c *Chart) dims() (int, int) {
	w, h := c.Width, c.Height
	if w < 16 {
		w = 60
	}
	if h < 6 {
		h = 18
	}
	return w, h
}

// transform maps a value to axis space, honoring log scales.
func transform(v float64, log bool) (float64, bool) {
	if !log {
		return v, true
	}
	if v <= 0 {
		return 0, false
	}
	return math.Log10(v), true
}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.dims()
	// Collect the transformed extents.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.X {
			x, okx := transform(s.X[i], c.LogX)
			y, oky := transform(s.Y[i], c.LogY)
			if !okx || !oky {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) {
		return c.Title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.series {
		mark := s.Marker
		if mark == 0 {
			mark = byte('a' + si%26)
		}
		for i := range s.X {
			x, okx := transform(s.X[i], c.LogX)
			y, oky := transform(s.Y[i], c.LogY)
			if !okx || !oky {
				continue
			}
			col := int(math.Round((x - minX) / (maxX - minX) * float64(w-1)))
			row := h - 1 - int(math.Round((y-minY)/(maxY-minY)*float64(h-1)))
			if col >= 0 && col < w && row >= 0 && row < h {
				if grid[row][col] != ' ' && grid[row][col] != mark {
					grid[row][col] = '*' // overlapping series
				} else {
					grid[row][col] = mark
				}
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yLo, yHi := c.axisValue(minY, c.LogY), c.axisValue(maxY, c.LogY)
	fmt.Fprintf(&b, "%11s +%s+\n", trim(fmtAxis(yHi)), strings.Repeat("-", w))
	for r := 0; r < h; r++ {
		label := ""
		if r == h-1 {
			label = trim(fmtAxis(yLo))
		}
		fmt.Fprintf(&b, "%11s |%s|\n", label, string(grid[r]))
	}
	xLo, xHi := c.axisValue(minX, c.LogX), c.axisValue(maxX, c.LogX)
	fmt.Fprintf(&b, "%11s +%s+\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%12s%-*s%s\n", "", w-len(fmtAxis(xHi))+1, fmtAxis(xLo), fmtAxis(xHi))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%12sx: %s   y: %s\n", "", c.XLabel, c.YLabel)
	}
	// Legend, in insertion order.
	for si, s := range c.series {
		mark := s.Marker
		if mark == 0 {
			mark = byte('a' + si%26)
		}
		fmt.Fprintf(&b, "%12s%c = %s\n", "", mark, s.Name)
	}
	return b.String()
}

func (c *Chart) axisValue(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

func fmtAxis(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func trim(s string) string { return strings.TrimSpace(s) }

// Bars renders a labeled horizontal bar chart (for the Fig. 1/2 style
// per-workload values); values must be non-negative.
func Bars(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 40
	}
	max := 0.0
	wLabel := 0
	for i, l := range labels {
		if len(l) > wLabel {
			wLabel = len(l)
		}
		if i < len(values) && values[i] > max {
			max = values[i]
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, l := range labels {
		if i >= len(values) {
			break
		}
		n := int(math.Round(values[i] / max * float64(width)))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "  %-*s %6.2f |%s\n", wLabel, l, values[i], strings.Repeat("#", n))
	}
	return b.String()
}

// SortedKeys returns map keys in sorted order (a helper for deterministic
// chart assembly from maps).
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
