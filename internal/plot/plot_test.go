package plot

import (
	"strings"
	"testing"
)

func TestChartRendersSeries(t *testing.T) {
	c := Chart{Title: "speedup", XLabel: "nodes", YLabel: "S", Width: 40, Height: 10}
	c.Add(Series{Name: "jacobi", X: []float64{1, 2, 4, 8}, Y: []float64{1, 2, 3.9, 7.7}})
	c.Add(Series{Name: "ft", X: []float64{1, 2, 4, 8}, Y: []float64{1, 1.5, 2.2, 2.6}})
	out := c.Render()
	for _, want := range []string{"speedup", "a = jacobi", "b = ft", "x: nodes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatal("markers not plotted")
	}
	// Every plot row is the same width (fixed frame).
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	frame := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			if frame == 0 {
				frame = len(l)
			} else if len(l) != frame {
				t.Fatalf("ragged frame: %q", l)
			}
		}
	}
}

func TestChartLogScales(t *testing.T) {
	c := Chart{LogX: true, LogY: true, Width: 30, Height: 8}
	c.Add(Series{Name: "roof", X: []float64{0.01, 0.1, 1, 10, 100}, Y: []float64{0.2e9, 2e9, 16e9, 16e9, 16e9}})
	out := c.Render()
	if strings.Contains(out, "no data") {
		t.Fatal("log chart dropped all points")
	}
	// Non-positive points are skipped, not crashed on.
	c2 := Chart{LogX: true}
	c2.Add(Series{Name: "bad", X: []float64{-1, 0}, Y: []float64{1, 1}})
	if !strings.Contains(c2.Render(), "no data") {
		t.Fatal("expected empty log chart")
	}
}

func TestChartEmpty(t *testing.T) {
	c := Chart{Title: "t"}
	if !strings.Contains(c.Render(), "no data") {
		t.Fatal("empty chart should say so")
	}
	c.Add(Series{Name: "mismatched", X: []float64{1}, Y: nil}) // ignored
	if !strings.Contains(c.Render(), "no data") {
		t.Fatal("mismatched series should be ignored")
	}
}

func TestBars(t *testing.T) {
	out := Bars("energy", []string{"ft", "is"}, []float64{2.0, 1.0}, 20)
	if !strings.Contains(out, "ft") || !strings.Contains(out, "####") {
		t.Fatalf("bars missing:\n%s", out)
	}
	ftLine, isLine := "", ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "ft") {
			ftLine = l
		}
		if strings.Contains(l, "is") {
			isLine = l
		}
	}
	if strings.Count(ftLine, "#") <= strings.Count(isLine, "#") {
		t.Fatal("bar lengths not proportional")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if got[0] != "a" || got[2] != "c" {
		t.Fatalf("keys %v", got)
	}
}
