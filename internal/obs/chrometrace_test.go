package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"clustersoc/internal/trace"
)

// handTrace builds a small two-node, three-rank trace by hand:
//
//	rank0 (node0): compute 0..1s, send 1KiB to rank1 at 1..1.5s, phase @2s
//	rank1 (node0): recv from rank0 0..1.5s
//	rank2 (node1): copy 0..0.5s
func handTrace() *trace.Trace {
	tr := trace.New([]int{0, 0, 1})
	tr.RecordCompute(0, 1.0, 0)
	tr.RecordSend(0, 1, 7, 1024, 1.0, 1.5)
	tr.RecordPhase(0, 2.0)
	tr.RecordRecv(1, 0, 7, 0, 1.5)
	tr.RecordCopy(2, 0.5, 0)
	tr.Finish(2.0)
	return &tr.T
}

// chromeFile mirrors the JSON Object Format for decoding in tests.
type chromeFile struct {
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	OtherData       map[string]any   `json:"otherData"`
	TraceEvents     []map[string]any `json:"traceEvents"`
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	tt := handTrace()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tt, TraceSnapshot(tt)); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	if f.OtherData["runtime_s"] != 2.0 {
		t.Fatalf("otherData.runtime_s = %v", f.OtherData["runtime_s"])
	}
	if f.OtherData["metric.trace.messages"] != 1.0 {
		t.Fatalf("otherData.metric.trace.messages = %v", f.OtherData["metric.trace.messages"])
	}

	byPhase := map[string][]map[string]any{}
	for _, e := range f.TraceEvents {
		ph := e["ph"].(string)
		byPhase[ph] = append(byPhase[ph], e)
	}
	// 2 process_name + 3 thread_name metadata events.
	if len(byPhase["M"]) != 5 {
		t.Fatalf("got %d metadata events, want 5", len(byPhase["M"]))
	}
	// compute, send, recv, copy as complete slices; phase as instant.
	if len(byPhase["X"]) != 4 {
		t.Fatalf("got %d X events, want 4", len(byPhase["X"]))
	}
	if len(byPhase["i"]) != 1 {
		t.Fatalf("got %d instant events, want 1", len(byPhase["i"]))
	}

	var send map[string]any
	for _, e := range byPhase["X"] {
		if e["name"] == "send->1" {
			send = e
		}
	}
	if send == nil {
		t.Fatalf("no send event in %v", byPhase["X"])
	}
	if send["ts"] != 1.0*1e6 || send["dur"] != 0.5*1e6 {
		t.Fatalf("send ts/dur = %v/%v, want microseconds 1e6/5e5", send["ts"], send["dur"])
	}
	args := send["args"].(map[string]any)
	if args["bytes"] != 1024.0 || args["peer"] != 1.0 || args["tag"] != 7.0 {
		t.Fatalf("send args = %v", args)
	}
	if send["pid"] != 0.0 || send["tid"] != 0.0 {
		t.Fatalf("send pid/tid = %v/%v", send["pid"], send["tid"])
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	tt := handTrace()
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, tt, TraceSnapshot(tt)); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, tt, TraceSnapshot(tt)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two exports of the same trace differ")
	}
}

func TestTraceSnapshotValues(t *testing.T) {
	snap := TraceSnapshot(handTrace())
	checks := map[string]float64{
		"trace.ranks":         3,
		"trace.runtime_s":     2,
		"trace.ops":           5,
		"trace.compute_s":     1,
		"trace.copy_s":        0.5,
		"trace.messages":      1,
		"trace.message_bytes": 1024,
		// send blocked 1.0..1.5, recv blocked 0..1.5
		"trace.comm_wait_s": 2.0,
	}
	for name, want := range checks {
		if got := snap.Value(name); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	h, ok := snap.Get("trace.message_size_bytes")
	if !ok || h.Count != 1 || h.Sum != 1024 {
		t.Fatalf("message size histogram = %+v (ok=%v)", h, ok)
	}
}
