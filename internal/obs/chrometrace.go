package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"clustersoc/internal/trace"
)

// Chrome trace-event export: converts an Extrae-style trace.Trace into
// the JSON Object Format understood by chrome://tracing and Perfetto
// (ui.perfetto.dev -> Open trace file). Nodes map to processes, ranks to
// threads, ops to complete ("X") slices, phase markers to instants, and
// the optional metrics snapshot rides along in otherData so the values
// are visible from the trace viewer's info panel.
//
// Times are microseconds of simulated time. Output is deterministic:
// events are emitted in rank order and op order, and otherData keys are
// sorted by the JSON encoder.

// chromeEvent is one trace event. Field order is the serialization order.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

const secToUs = 1e6

// PathSlice is one highlighted interval of the critical-path track:
// internal/critpath converts its path segments into these so the exporter
// need not know the analysis types.
type PathSlice struct {
	Name  string
	Start float64 // seconds
	End   float64 // seconds
}

// WriteChromeTrace writes t as Chrome trace-event JSON. The snapshot may
// be empty; when present its metrics are attached under otherData.
func WriteChromeTrace(w io.Writer, t *trace.Trace, snap Snapshot) error {
	return WriteChromeTraceWithPath(w, t, snap, nil)
}

// WriteChromeTraceWithPath is WriteChromeTrace with an optional
// critical-path highlight: path slices render as a dedicated process
// (pid = one past the highest node id) so the path stands out as its own
// track above the per-node rank timelines. A nil path produces output
// byte-identical to WriteChromeTrace.
func WriteChromeTraceWithPath(w io.Writer, t *trace.Trace, snap Snapshot, path []PathSlice) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","otherData":`); err != nil {
		return err
	}
	other := map[string]any{"source": "clustersoc simulator", "runtime_s": t.Runtime}
	for _, m := range snap.Metrics {
		if m.Kind == "histogram" {
			other["metric."+m.Name+".count"] = m.Count
			other["metric."+m.Name+".sum"] = m.Sum
			continue
		}
		other["metric."+m.Name] = m.Value
	}
	ob, err := json.Marshal(other) // map keys serialize sorted
	if err != nil {
		return err
	}
	if _, err := bw.Write(ob); err != nil {
		return err
	}
	if _, err := bw.WriteString(`,"traceEvents":[`); err != nil {
		return err
	}

	first := true
	emit := func(e chromeEvent) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	// Name the processes (nodes) and threads (ranks) up front.
	seenNode := map[int]bool{}
	for _, r := range t.Ranks {
		if !seenNode[r.Node] {
			seenNode[r.Node] = true
			if err := emit(chromeEvent{Name: "process_name", Phase: "M", Pid: r.Node,
				Args: map[string]any{"name": fmt.Sprintf("node %d", r.Node)}}); err != nil {
				return err
			}
		}
		if err := emit(chromeEvent{Name: "thread_name", Phase: "M", Pid: r.Node, Tid: r.Rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r.Rank)}}); err != nil {
			return err
		}
	}

	for _, r := range t.Ranks {
		for _, op := range r.Ops {
			e := chromeEvent{Ts: op.Start * secToUs, Pid: r.Node, Tid: r.Rank}
			dur := (op.End - op.Start) * secToUs
			if dur < 0 {
				dur = 0
			}
			switch op.Kind {
			case trace.OpCompute:
				e.Name, e.Phase, e.Dur = "compute", "X", &dur
			case trace.OpCopy:
				e.Name, e.Phase, e.Dur = "copy", "X", &dur
			case trace.OpSend:
				e.Name, e.Phase, e.Dur = fmt.Sprintf("send->%d", op.Peer), "X", &dur
				e.Args = map[string]any{"peer": op.Peer, "tag": op.Tag, "bytes": op.Bytes}
			case trace.OpRecv:
				e.Name, e.Phase, e.Dur = fmt.Sprintf("recv<-%d", op.Peer), "X", &dur
				e.Args = map[string]any{"peer": op.Peer, "tag": op.Tag}
			case trace.OpPhase:
				e.Name, e.Phase, e.Scope = "phase", "i", "t"
			default:
				continue
			}
			if err := emit(e); err != nil {
				return err
			}
		}
	}
	if len(path) > 0 {
		cpPid := t.NodeCount()
		if err := emit(chromeEvent{Name: "process_name", Phase: "M", Pid: cpPid,
			Args: map[string]any{"name": "critical path"}}); err != nil {
			return err
		}
		if err := emit(chromeEvent{Name: "thread_name", Phase: "M", Pid: cpPid,
			Args: map[string]any{"name": "blame"}}); err != nil {
			return err
		}
		for _, s := range path {
			dur := (s.End - s.Start) * secToUs
			if dur < 0 {
				dur = 0
			}
			if err := emit(chromeEvent{Name: s.Name, Phase: "X",
				Ts: s.Start * secToUs, Dur: &dur, Pid: cpPid}); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// MessageSizeBuckets are the histogram bounds (bytes) shared by the
// network layer and TraceSnapshot, spanning control messages to bulk
// halo exchanges.
var MessageSizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

// TraceSnapshot derives an observability snapshot from a recorded trace:
// the view cmd/replay renders under -profile for traces loaded from disk,
// where no live registry exists.
func TraceSnapshot(t *trace.Trace) Snapshot {
	reg := NewRegistry()
	s := reg.Scope("trace")
	s.Gauge("ranks").Set(float64(len(t.Ranks)))
	s.Gauge("runtime_s").Set(t.Runtime)
	ops := s.Counter("ops")
	compute := s.Counter("compute_s")
	copies := s.Counter("copy_s")
	commWait := s.Counter("comm_wait_s")
	msgs := s.Counter("messages")
	bytes := s.Counter("message_bytes")
	sizes := s.Histogram("message_size_bytes", MessageSizeBuckets)
	for _, r := range t.Ranks {
		ops.Add(float64(len(r.Ops)))
		for _, op := range r.Ops {
			switch op.Kind {
			case trace.OpCompute:
				compute.Add(op.Dur)
			case trace.OpCopy:
				copies.Add(op.Dur)
			case trace.OpSend:
				msgs.Inc()
				bytes.Add(op.Bytes)
				sizes.Observe(op.Bytes)
				commWait.Add(op.End - op.Start)
			case trace.OpRecv:
				commWait.Add(op.End - op.Start)
			}
		}
	}
	return reg.Snapshot()
}
