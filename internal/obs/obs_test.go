package obs

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestNilLayerIsNoOp locks in the zero-overhead-when-disabled contract:
// a nil registry hands out nil scopes, nil scopes hand out nil metrics,
// and every mutating method on a nil receiver is a safe no-op.
func TestNilLayerIsNoOp(t *testing.T) {
	var r *Registry
	s := r.Scope("sim")
	if s != nil {
		t.Fatalf("nil registry returned non-nil scope")
	}
	s.Counter("c").Add(1)
	s.Counter("c").Inc()
	s.Gauge("g").Set(2)
	s.Gauge("g").SetMax(3)
	s.Histogram("h", []float64{1, 2}).Observe(5)
	s.Scope("nested").Counter("c2").Add(1)
	s.NonDeterministic().Counter("c3").Add(1)

	var c *Counter
	var g *Gauge
	var h *Histogram
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instrument accessors not zero")
	}
	if got := r.Snapshot(); len(got.Metrics) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", got)
	}
}

func TestSnapshotSortedByName(t *testing.T) {
	reg := NewRegistry()
	reg.Scope("zzz").Counter("last").Add(1)
	reg.Scope("aaa").Gauge("first").Set(2)
	reg.Scope("mmm").Scope("nested").Counter("mid").Add(3)

	snap := reg.Snapshot()
	var names []string
	for _, m := range snap.Metrics {
		names = append(names, m.Name)
	}
	want := []string{"aaa.first", "mmm.nested.mid", "zzz.last"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("snapshot order = %v, want %v", names, want)
	}
	if !reflect.DeepEqual(reg.Snapshot(), snap) {
		t.Fatalf("repeated snapshots differ")
	}
}

func TestRegistrationDedup(t *testing.T) {
	reg := NewRegistry()
	s := reg.Scope("s")
	c1 := s.Counter("x")
	c1.Add(1)
	c2 := s.Counter("x")
	c2.Add(2)
	if c1 != c2 {
		t.Fatalf("re-registering a counter returned a different instrument")
	}
	if got := reg.Snapshot().Value("s.x"); got != 3 {
		t.Fatalf("s.x = %g, want 3", got)
	}
	h1 := s.Histogram("h", []float64{1, 2})
	h2 := s.Histogram("h", []float64{99}) // bounds ignored on re-registration
	if h1 != h2 {
		t.Fatalf("re-registering a histogram returned a different instrument")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Scope("s").Counter("x")
	defer func() {
		if r := recover(); r == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Scope("s").Gauge("x")
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Scope("s").Histogram("sizes", []float64{1, 2})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3} {
		h.Observe(v)
	}
	m, ok := reg.Snapshot().Get("s.sizes")
	if !ok {
		t.Fatalf("histogram missing from snapshot")
	}
	if m.Count != 5 || m.Sum != 8 {
		t.Fatalf("count/sum = %d/%g, want 5/8", m.Count, m.Sum)
	}
	want := []Bucket{{UpperBound: 1, Count: 2}, {UpperBound: 2, Count: 2}}
	if !reflect.DeepEqual(m.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", m.Buckets, want)
	}
	if m.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1", m.Overflow)
	}
}

func TestGaugeSetMax(t *testing.T) {
	g := NewRegistry().Scope("s").Gauge("hw")
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("SetMax lowered the high-water mark: %g", g.Value())
	}
	g.SetMax(7)
	if g.Value() != 7 {
		t.Fatalf("SetMax did not raise the mark: %g", g.Value())
	}
}

func TestDeterministicStripsWallMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Scope("sim").Counter("events").Add(10)
	reg.Scope("runner").NonDeterministic().Counter("wall_s").Add(1.23)

	snap := reg.Snapshot()
	if m, _ := snap.Get("runner.wall_s"); !m.NonDeterministic {
		t.Fatalf("wall metric not flagged non-deterministic")
	}
	det := snap.Deterministic()
	if _, ok := det.Get("runner.wall_s"); ok {
		t.Fatalf("Deterministic kept a wall metric")
	}
	if _, ok := det.Get("sim.events"); !ok {
		t.Fatalf("Deterministic dropped a simulated metric")
	}
}

func TestMerge(t *testing.T) {
	mk := func(c, g float64, obs []float64) Snapshot {
		reg := NewRegistry()
		reg.Scope("s").Counter("c").Add(c)
		reg.Scope("s").Gauge("g").Set(g)
		h := reg.Scope("s").Histogram("h", []float64{1, 2})
		for _, v := range obs {
			h.Observe(v)
		}
		return reg.Snapshot()
	}
	m := Merge(mk(1, 5, []float64{0.5}), mk(2, 3, []float64{1.5, 9}))
	if got := m.Value("s.c"); got != 3 {
		t.Fatalf("merged counter = %g, want 3 (sum)", got)
	}
	if got := m.Value("s.g"); got != 5 {
		t.Fatalf("merged gauge = %g, want 5 (max)", got)
	}
	h, _ := m.Get("s.h")
	if h.Count != 3 || h.Sum != 11 || h.Overflow != 1 {
		t.Fatalf("merged histogram = %+v", h)
	}
	want := []Bucket{{UpperBound: 1, Count: 1}, {UpperBound: 2, Count: 1}}
	if !reflect.DeepEqual(h.Buckets, want) {
		t.Fatalf("merged buckets = %+v, want %+v", h.Buckets, want)
	}
	// Merge order must not matter.
	if !reflect.DeepEqual(Merge(mk(2, 3, nil), mk(1, 5, nil)).Metrics, Merge(mk(1, 5, nil), mk(2, 3, nil)).Metrics) {
		t.Fatalf("Merge is order-sensitive")
	}
}

func TestRender(t *testing.T) {
	reg := NewRegistry()
	reg.Scope("sim").Counter("events").Add(42)
	reg.Scope("runner").NonDeterministic().Counter("wall_s").Add(1.5)
	out := reg.Snapshot().Render()
	for _, want := range []string{"metric", "sim.events", "42", "runner.wall_s", "(wall)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render output missing %q:\n%s", want, out)
		}
	}
	if got := (Snapshot{}).Render(); got != "(no metrics)\n" {
		t.Fatalf("empty Render = %q", got)
	}
}

// TestConcurrentRegistration exercises the registry's only concurrent
// contract: registration from multiple goroutines (the run-plane profiles
// scenarios in parallel, each against its own registry, but scopes may be
// built concurrently). Run under -race in CI.
func TestConcurrentRegistration(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := reg.Scope("shared")
			s.Counter(fmt.Sprintf("own%d", i)).Add(float64(i))
			s.Gauge("common_gauge")
			s.Histogram("common_hist", []float64{1, 2, 4})
		}(i)
	}
	wg.Wait()
	snap := reg.Snapshot()
	if len(snap.Metrics) != 8+2 {
		t.Fatalf("got %d metrics, want 10", len(snap.Metrics))
	}
}
