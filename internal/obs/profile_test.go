package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

func sampleProfile(fp string, events float64) *Profile {
	reg := NewRegistry()
	reg.Scope("sim").Counter("events").Add(events)
	return &Profile{
		Scenario:    "hpl on " + fp,
		Fingerprint: fp,
		Sim:         reg.Snapshot(),
		Wall:        &WallStats{Note: WallNote, Seconds: 0.25},
	}
}

func TestProfilesRoundTrip(t *testing.T) {
	in := []*Profile{sampleProfile("bbb", 2), sampleProfile("aaa", 1)}
	var buf bytes.Buffer
	if err := WriteProfiles(&buf, in); err != nil {
		t.Fatalf("WriteProfiles: %v", err)
	}
	out, err := ReadProfiles(&buf)
	if err != nil {
		t.Fatalf("ReadProfiles: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d profiles, want 2", len(out))
	}
	// Sidecars sort by fingerprint regardless of input order.
	if out[0].Fingerprint != "aaa" || out[1].Fingerprint != "bbb" {
		t.Fatalf("profiles not sorted: %s, %s", out[0].Fingerprint, out[1].Fingerprint)
	}
	if got := out[1].Sim.Value("sim.events"); got != 2 {
		t.Fatalf("round-tripped sim.events = %g, want 2", got)
	}
	if out[0].Wall == nil || out[0].Wall.Note != WallNote {
		t.Fatalf("wall section lost in round trip: %+v", out[0].Wall)
	}

	// Sorting must not mutate the caller's slice.
	if in[0].Fingerprint != "bbb" {
		t.Fatalf("WriteProfiles reordered the input slice")
	}
}

func TestWriteProfilesRejectsDuplicateFingerprint(t *testing.T) {
	var buf bytes.Buffer
	err := WriteProfiles(&buf, []*Profile{sampleProfile("aaa", 1), sampleProfile("aaa", 2)})
	if !errors.Is(err, ErrDuplicateProfile) {
		t.Fatalf("WriteProfiles on duplicates = %v, want ErrDuplicateProfile", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("rejected sidecar still wrote %d bytes", buf.Len())
	}
}

func TestReadProfilesRejectsDuplicateFingerprint(t *testing.T) {
	// A duplicate-carrying file can only come from a foreign writer, so
	// build the envelope by hand.
	raw, err := json.Marshal(profileFile{
		Version:  ProfileFileVersion,
		Profiles: []*Profile{sampleProfile("aaa", 1), sampleProfile("aaa", 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfiles(bytes.NewReader(raw)); !errors.Is(err, ErrDuplicateProfile) {
		t.Fatalf("ReadProfiles on duplicates = %v, want ErrDuplicateProfile", err)
	}
}

func TestProfilesDuplicateRejectionRoundTrip(t *testing.T) {
	// A healthy sidecar survives the write→read round trip untouched by
	// the duplicate checks on both ends.
	var buf bytes.Buffer
	if err := WriteProfiles(&buf, []*Profile{sampleProfile("a", 1), sampleProfile("b", 2), sampleProfile("c", 3)}); err != nil {
		t.Fatalf("WriteProfiles: %v", err)
	}
	out, err := ReadProfiles(&buf)
	if err != nil {
		t.Fatalf("ReadProfiles: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d profiles, want 3", len(out))
	}
}

func TestWriteProfilesDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteProfiles(&a, []*Profile{sampleProfile("x", 1), sampleProfile("y", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := WriteProfiles(&b, []*Profile{sampleProfile("y", 2), sampleProfile("x", 1)}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("sidecar bytes depend on input order")
	}
}
