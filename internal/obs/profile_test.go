package obs

import (
	"bytes"
	"testing"
)

func sampleProfile(fp string, events float64) *Profile {
	reg := NewRegistry()
	reg.Scope("sim").Counter("events").Add(events)
	return &Profile{
		Scenario:    "hpl on " + fp,
		Fingerprint: fp,
		Sim:         reg.Snapshot(),
		Wall:        &WallStats{Note: WallNote, Seconds: 0.25},
	}
}

func TestProfilesRoundTrip(t *testing.T) {
	in := []*Profile{sampleProfile("bbb", 2), sampleProfile("aaa", 1)}
	var buf bytes.Buffer
	if err := WriteProfiles(&buf, in); err != nil {
		t.Fatalf("WriteProfiles: %v", err)
	}
	out, err := ReadProfiles(&buf)
	if err != nil {
		t.Fatalf("ReadProfiles: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d profiles, want 2", len(out))
	}
	// Sidecars sort by fingerprint regardless of input order.
	if out[0].Fingerprint != "aaa" || out[1].Fingerprint != "bbb" {
		t.Fatalf("profiles not sorted: %s, %s", out[0].Fingerprint, out[1].Fingerprint)
	}
	if got := out[1].Sim.Value("sim.events"); got != 2 {
		t.Fatalf("round-tripped sim.events = %g, want 2", got)
	}
	if out[0].Wall == nil || out[0].Wall.Note != WallNote {
		t.Fatalf("wall section lost in round trip: %+v", out[0].Wall)
	}

	// Sorting must not mutate the caller's slice.
	if in[0].Fingerprint != "bbb" {
		t.Fatalf("WriteProfiles reordered the input slice")
	}
}

func TestWriteProfilesDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteProfiles(&a, []*Profile{sampleProfile("x", 1), sampleProfile("y", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := WriteProfiles(&b, []*Profile{sampleProfile("y", 2), sampleProfile("x", 1)}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("sidecar bytes depend on input order")
	}
}
