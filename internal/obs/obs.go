// Package obs is the simulator-wide observability layer: a deterministic
// metrics registry (counters, gauges, fixed-bucket histograms) with named
// scopes, per-scenario profiles, and a Perfetto/Chrome trace-event
// exporter for execution traces.
//
// Two properties are load-bearing and locked in by tests elsewhere in the
// repo:
//
//   - Determinism. Snapshots are stable-sorted by metric name, metrics
//     derived from simulated quantities never touch the wall clock, and no
//     map-iteration order leaks into any output. A scenario profiled twice
//     produces byte-identical simulated sections.
//
//   - Zero overhead when disabled. Every mutating method is a no-op on a
//     nil receiver, and a nil *Registry hands out nil scopes which hand
//     out nil metrics, so instrumentation points in hot loops reduce to a
//     single nil check (or nothing at all) when observability is off.
//     Enabling observability must change no simulation result bytes.
//
// Concurrency: metric registration (Scope/Counter/Gauge/Histogram calls)
// is safe from multiple goroutines — the run-plane profiles scenarios
// concurrently — but each individual metric must be updated from a single
// goroutine at a time, which the single-threaded simulation engine
// guarantees for all simulated metrics.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counter is a monotonically growing sum. The nil Counter ignores Add.
type Counter struct {
	v float64
}

// Add accumulates d. No-op on a nil receiver.
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	c.v += d
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the accumulated sum (0 for a nil Counter).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time value. The nil Gauge ignores updates.
type Gauge struct {
	v float64
}

// Set records v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// SetMax records v only if it exceeds the current value — a high-water
// mark. No-op on a nil receiver.
func (g *Gauge) SetMax(v float64) {
	if g == nil || v <= g.v {
		return
	}
	g.v = v
}

// Value returns the current value (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket distribution: counts[i] tallies
// observations v <= bounds[i]; observations above the last bound land in
// the overflow bucket. The nil Histogram ignores Observe.
type Histogram struct {
	bounds   []float64
	counts   []uint64 // len(bounds)+1; the last entry is the overflow
	observed uint64
	sum      float64
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.observed++
	h.sum += v
	h.counts[sort.SearchFloat64s(h.bounds, v)]++
}

// Count returns the number of observations (0 for a nil Histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.observed
}

// Sum returns the sum of all observations (0 for a nil Histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// metric is one registered instrument with its full name.
type metric struct {
	kind   string // "counter", "gauge", "histogram"
	nondet bool
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. The nil Registry is the disabled layer:
// it hands out nil scopes, whose metric constructors return nil metrics.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// Scope opens a named scope ("sim", "network", ...) under which metrics
// register as "<scope>.<name>". Nil-safe: a nil registry returns a nil
// scope.
func (r *Registry) Scope(name string) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{reg: r, prefix: name}
}

// Scope is a named prefix in a registry. The nil Scope hands out nil
// metrics, so a disabled instrumentation point costs one nil check.
type Scope struct {
	reg    *Registry
	prefix string
	nondet bool
}

// Scope opens a nested scope ("cluster" -> "cluster.node0").
func (s *Scope) Scope(name string) *Scope {
	if s == nil {
		return nil
	}
	return &Scope{reg: s.reg, prefix: s.prefix + "." + name, nondet: s.nondet}
}

// NonDeterministic returns a view of the scope whose metrics are flagged
// as wall-clock-derived: they carry the flag into snapshots and are
// stripped by Snapshot.Deterministic, which keeps them out of anything
// compared byte-for-byte across runs.
func (s *Scope) NonDeterministic() *Scope {
	if s == nil {
		return nil
	}
	return &Scope{reg: s.reg, prefix: s.prefix, nondet: true}
}

// register returns the metric under the scope's prefix, creating it on
// first use. Re-registering an existing name returns the same instrument;
// re-registering it as a different kind is a programming bug and panics.
func (s *Scope) register(name, kind string, mk func() *metric) *metric {
	full := s.prefix + "." + name
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	if m, ok := s.reg.metrics[full]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (is %s)", full, kind, m.kind))
		}
		return m
	}
	m := mk()
	m.kind = kind
	m.nondet = s.nondet
	s.reg.metrics[full] = m
	return m
}

// Counter returns the named counter in this scope (nil on a nil scope).
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.register(name, "counter", func() *metric { return &metric{c: &Counter{}} }).c
}

// Gauge returns the named gauge in this scope (nil on a nil scope).
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.register(name, "gauge", func() *metric { return &metric{g: &Gauge{}} }).g
}

// Histogram returns the named histogram with the given ascending bucket
// upper bounds (nil on a nil scope). If the name already exists, the
// existing histogram is returned and the bounds argument is ignored.
func (s *Scope) Histogram(name string, bounds []float64) *Histogram {
	if s == nil {
		return nil
	}
	return s.register(name, "histogram", func() *metric {
		b := append([]float64(nil), bounds...)
		if !sort.Float64sAreSorted(b) {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", s.prefix+"."+name, bounds))
		}
		return &metric{h: &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}}
	}).h
}

// Bucket is one histogram bucket in a snapshot: the count of samples at
// or below the upper bound.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// Metric is one instrument's value in a snapshot.
type Metric struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Value carries a counter's sum or a gauge's level.
	Value float64 `json:"value"`
	// Count/Sum/Buckets/Overflow describe a histogram.
	Count    uint64   `json:"count,omitempty"`
	Sum      float64  `json:"sum,omitempty"`
	Buckets  []Bucket `json:"buckets,omitempty"`
	Overflow uint64   `json:"overflow,omitempty"`
	// NonDeterministic marks wall-clock-derived metrics; they never enter
	// artifacts that are compared byte-for-byte across runs.
	NonDeterministic bool `json:"nondeterministic,omitempty"`
}

// Snapshot is a stable view of a registry: metrics sorted by full name,
// independent of registration or map order.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot captures every registered metric, sorted by name. Nil-safe:
// a nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.metrics))
	for name, m := range r.metrics {
		e := Metric{Name: name, Kind: m.kind, NonDeterministic: m.nondet}
		switch m.kind {
		case "counter":
			e.Value = m.c.v
		case "gauge":
			e.Value = m.g.v
		case "histogram":
			e.Count = m.h.observed
			e.Sum = m.h.sum
			for i, b := range m.h.bounds {
				e.Buckets = append(e.Buckets, Bucket{UpperBound: b, Count: m.h.counts[i]})
			}
			e.Overflow = m.h.counts[len(m.h.bounds)]
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return Snapshot{Metrics: out}
}

// Get returns the named metric, if present.
func (s Snapshot) Get(name string) (Metric, bool) {
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Name >= name })
	if i < len(s.Metrics) && s.Metrics[i].Name == name {
		return s.Metrics[i], true
	}
	return Metric{}, false
}

// Value returns the named counter/gauge value (0 if absent).
func (s Snapshot) Value(name string) float64 {
	m, _ := s.Get(name)
	return m.Value
}

// Deterministic strips wall-clock-derived metrics, leaving only values
// that are identical across re-runs of the same scenario.
func (s Snapshot) Deterministic() Snapshot {
	out := Snapshot{}
	for _, m := range s.Metrics {
		if !m.NonDeterministic {
			out.Metrics = append(out.Metrics, m)
		}
	}
	return out
}

// Merge combines snapshots into one by metric name: counters, histogram
// buckets, counts, and sums add; gauges take the maximum (high-water
// semantics). Bucket layouts are merged positionally when they agree and
// dropped to count/sum-only when they do not. The result is sorted, so
// merging is deterministic regardless of input order.
func Merge(snaps ...Snapshot) Snapshot {
	byName := map[string]*Metric{}
	var names []string
	for _, s := range snaps {
		for _, m := range s.Metrics {
			prev, ok := byName[m.Name]
			if !ok {
				cp := m
				cp.Buckets = append([]Bucket(nil), m.Buckets...)
				byName[m.Name] = &cp
				names = append(names, m.Name)
				continue
			}
			prev.NonDeterministic = prev.NonDeterministic || m.NonDeterministic
			switch prev.Kind {
			case "gauge":
				if m.Value > prev.Value {
					prev.Value = m.Value
				}
			case "histogram":
				prev.Count += m.Count
				prev.Sum += m.Sum
				prev.Overflow += m.Overflow
				if len(prev.Buckets) == len(m.Buckets) {
					for i := range prev.Buckets {
						if prev.Buckets[i].UpperBound != m.Buckets[i].UpperBound {
							prev.Buckets = nil
							break
						}
						prev.Buckets[i].Count += m.Buckets[i].Count
					}
				} else {
					prev.Buckets = nil
				}
			default:
				prev.Value += m.Value
			}
		}
	}
	sort.Strings(names)
	out := Snapshot{Metrics: make([]Metric, 0, len(names))}
	for _, n := range names {
		out.Metrics = append(out.Metrics, *byName[n])
	}
	return out
}

// Render formats the snapshot as an aligned, human-readable table —
// the stderr view the CLIs print under -profile. Wall-clock-derived
// metrics are marked "(wall)".
func (s Snapshot) Render() string {
	if len(s.Metrics) == 0 {
		return "(no metrics)\n"
	}
	nameW := len("metric")
	for _, m := range s.Metrics {
		if len(m.Name) > nameW {
			nameW = len(m.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %-9s  %s\n", nameW, "metric", "kind", "value")
	for _, m := range s.Metrics {
		val := formatValue(m)
		if m.NonDeterministic {
			val += " (wall)"
		}
		fmt.Fprintf(&b, "%-*s  %-9s  %s\n", nameW, m.Name, m.Kind, val)
	}
	return b.String()
}

func formatValue(m Metric) string {
	if m.Kind != "histogram" {
		return fmt.Sprintf("%g", m.Value)
	}
	var parts []string
	cum := uint64(0)
	for _, bk := range m.Buckets {
		if bk.Count > 0 {
			parts = append(parts, fmt.Sprintf("<=%g:%d", bk.UpperBound, bk.Count))
		}
		cum += bk.Count
	}
	if m.Overflow > 0 {
		parts = append(parts, fmt.Sprintf(">max:%d", m.Overflow))
	}
	mean := 0.0
	if m.Count > 0 {
		mean = m.Sum / float64(m.Count)
	}
	return fmt.Sprintf("n=%d mean=%g [%s]", m.Count, mean, strings.Join(parts, " "))
}
