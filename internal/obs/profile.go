package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// ErrDuplicateProfile is returned when a profile sidecar would contain
// (or does contain) two profiles with the same scenario fingerprint. The
// run-plane memoizes per fingerprint, so a duplicate means the caller
// aggregated the same scenario twice — silently keeping both used to make
// round-trips lossy (readers picking "the" profile for a fingerprint got
// an arbitrary one).
var ErrDuplicateProfile = errors.New("obs: duplicate scenario fingerprint in profile sidecar")

// Profile is one scenario's observability record: the deterministic
// simulated-metrics snapshot plus an explicitly separated wall-clock
// section. Profiles of cached run-plane results are shared between
// duplicate submissions and must be treated as immutable, exactly like
// the results themselves.
type Profile struct {
	// Scenario is a human-readable identity (workload @ system | config).
	Scenario string `json:"scenario"`
	// Fingerprint is the run-plane's canonical cache key for the scenario;
	// profile files sort by it so their order is deterministic.
	Fingerprint string `json:"fingerprint"`
	// Sim holds metrics derived purely from simulated quantities. Two runs
	// of the same scenario produce byte-identical Sim sections.
	Sim Snapshot `json:"sim"`
	// Wall is the non-deterministic section: real-time measurements of the
	// run that produced this profile. It is excluded from any artifact
	// compared across runs; a cached result keeps the original execution's
	// wall stats.
	Wall *WallStats `json:"wall,omitempty"`
}

// WallStats are wall-clock measurements of one scenario execution. They
// vary run to run and machine to machine by nature.
type WallStats struct {
	Note    string  `json:"note"`
	Seconds float64 `json:"seconds"`
}

// WallNote is stamped into every WallStats so profile readers cannot
// mistake the section for simulated data.
const WallNote = "wall-clock measurements: non-deterministic, excluded from result artifacts"

// profileFile is the sidecar schema: a version header and the profiles.
type profileFile struct {
	Version  int        `json:"version"`
	Profiles []*Profile `json:"profiles"`
}

// ProfileFileVersion is bumped on incompatible sidecar schema changes.
const ProfileFileVersion = 1

// WriteProfiles serializes profiles as an indented JSON sidecar
// (*.profile.json), sorted by scenario fingerprint so the simulated
// content is byte-stable across runs and worker counts. Duplicate
// fingerprints are rejected with ErrDuplicateProfile.
func WriteProfiles(w io.Writer, profiles []*Profile) error {
	sorted := append([]*Profile(nil), profiles...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Fingerprint < sorted[j].Fingerprint })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Fingerprint == sorted[i-1].Fingerprint {
			return fmt.Errorf("%w: %q", ErrDuplicateProfile, sorted[i].Fingerprint)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(profileFile{Version: ProfileFileVersion, Profiles: sorted})
}

// ReadProfiles parses a sidecar written by WriteProfiles, rejecting
// files that carry the same fingerprint twice.
func ReadProfiles(r io.Reader) ([]*Profile, error) {
	var f profileFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(f.Profiles))
	for _, p := range f.Profiles {
		if seen[p.Fingerprint] {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateProfile, p.Fingerprint)
		}
		seen[p.Fingerprint] = true
	}
	return f.Profiles, nil
}
