package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"clustersoc/internal/trace"
)

// edgeTrace builds a trace exercising the exporter's corner cases in one
// artifact:
//
//   - zero-duration ops (a send whose drain window collapsed, an
//     instantaneous receive),
//   - an op recorded with End < Start (the exporter clamps, never emits
//     negative durations),
//   - same-timestamp ops appended out of chronological order (the
//     exporter preserves record order — viewers sort, the bytes must not
//     depend on it),
//   - more ranks than a 64-bit mask could track, spread over 3 nodes.
func edgeTrace() *trace.Trace {
	const ranks = 66
	nodes := make([]int, ranks)
	for i := range nodes {
		nodes[i] = i % 3
	}
	tr := trace.New(nodes)
	// Rank 0: the degenerate ops.
	tr.RecordSend(0, 1, 3, 0, 1.0, 1.0)  // zero-duration send
	tr.RecordRecv(0, 1, 4, 0.5, 0.5)     // zero-duration recv
	tr.RecordSend(0, 2, 5, 64, 2.0, 1.5) // End < Start: exporter clamps to 0
	// Rank 1: same timestamp, recorded out of order.
	tr.RecordSend(1, 0, 4, 128, 0.5, 0.5)
	tr.RecordCompute(1, 0.25, 0.5)
	tr.RecordPhase(1, 0.5)
	tr.RecordRecv(1, 0, 3, 1.0, 1.0)
	tr.RecordRecv(1, 0, 5, 1.5, 2.0)
	// Every remaining rank gets one op so all 66 thread lanes materialize.
	for r := 2; r < ranks; r++ {
		tr.RecordCompute(r, 0.125, float64(r)*0.01)
	}
	tr.Finish(2.0)
	return &tr.T
}

// TestChromeTraceEdgeCasesGolden pins the exporter's byte output on the
// degenerate trace. Regenerate with UPDATE_GOLDEN=1 after intentional
// format changes.
func TestChromeTraceEdgeCasesGolden(t *testing.T) {
	tt := edgeTrace()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tt, TraceSnapshot(tt)); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	golden := filepath.Join("testdata", "chrometrace_edge.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export differs from %s (run with UPDATE_GOLDEN=1 after intentional changes); got %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
}

func TestChromeTraceEdgeCasesSemantics(t *testing.T) {
	tt := edgeTrace()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tt, TraceSnapshot(tt)); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	meta, x := 0, 0
	for _, e := range f.TraceEvents {
		switch e["ph"] {
		case "M":
			meta++
		case "X":
			x++
			if d := e["dur"].(float64); d < 0 {
				t.Fatalf("negative duration slipped through: %v", e)
			}
			if e["name"] == "send->2" && e["dur"].(float64) != 0 {
				t.Fatalf("End<Start op not clamped to 0: %v", e)
			}
		}
	}
	// 3 process_name + 66 thread_name.
	if meta != 69 {
		t.Fatalf("got %d metadata events, want 69", meta)
	}
	// Rank 0: 3 ops; rank 1: 4 X ops (+1 instant); ranks 2..65: 1 each.
	if want := 3 + 4 + 64; x != want {
		t.Fatalf("got %d X events, want %d", x, want)
	}
}

// TestWriteChromeTraceWithPathNilIdentical locks in the -critpath off
// guarantee: a nil path produces bytes identical to the plain exporter.
func TestWriteChromeTraceWithPathNilIdentical(t *testing.T) {
	tt := edgeTrace()
	var plain, withNil bytes.Buffer
	if err := WriteChromeTrace(&plain, tt, TraceSnapshot(tt)); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTraceWithPath(&withNil, tt, TraceSnapshot(tt), nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), withNil.Bytes()) {
		t.Fatal("WriteChromeTraceWithPath(nil) differs from WriteChromeTrace")
	}
}

func TestWriteChromeTraceWithPathTrack(t *testing.T) {
	tt := edgeTrace()
	path := []PathSlice{
		{Name: "cpu-compute [rank0]", Start: 0, End: 1},
		{Name: "nic-wire [rank0]", Start: 1, End: 1}, // zero-duration slice
		{Name: "switch-queue [rank1]", Start: 2, End: 1.5},
	}
	var buf bytes.Buffer
	if err := WriteChromeTraceWithPath(&buf, tt, TraceSnapshot(tt), path); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// The path track lives one pid past the highest node id.
	cpPid := float64(tt.NodeCount())
	named, slices := false, 0
	for _, e := range f.TraceEvents {
		if e["pid"] != cpPid {
			continue
		}
		if e["ph"] == "M" && e["name"] == "process_name" {
			if got := e["args"].(map[string]any)["name"]; got != "critical path" {
				t.Fatalf("path process name = %v", got)
			}
			named = true
		}
		if e["ph"] == "X" {
			slices++
			if d := e["dur"].(float64); d < 0 {
				t.Fatalf("negative path duration: %v", e)
			}
		}
	}
	if !named {
		t.Fatal("no critical-path process_name metadata")
	}
	if slices != len(path) {
		t.Fatalf("got %d path slices, want %d", slices, len(path))
	}
}
