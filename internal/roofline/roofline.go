// Package roofline implements the classic Roofline model and the paper's
// extension for integrated-GPGPU clusters (Sec. III-B.3).
//
// The extension separates the two data paths that feed a node's GPU:
// DRAM traffic (locality) and network traffic between nodes
// (communication). It defines
//
//	operational intensity OI = FLOPs / DRAM bytes      (eq. 1)
//	network intensity     NI = FLOPs / network bytes   (eq. 2)
//	attainable = min(peak, memBW*OI, netBW*NI)         (eq. 3)
//
// so a workload is bounded by whichever of the compute, memory, or network
// roofs it hits first.
package roofline

import (
	"math"
	"sort"
)

// Limit identifies which roof binds a workload.
type Limit string

const (
	LimitCompute     Limit = "compute"
	LimitOperational Limit = "operational" // DRAM-bandwidth roof
	LimitNetwork     Limit = "network"
)

// Model is a per-node extended roofline: peak FLOP/s, memory bandwidth,
// and network bandwidth.
type Model struct {
	Name         string
	PeakFlops    float64 // per-node attainable peak (FLOP/s)
	MemBandwidth float64 // bytes/second to the GPU from DRAM
	NetBandwidth float64 // bytes/second per node over the NIC
}

// Attainable returns the peak performance for a workload with the given
// operational and network intensities (FLOP/byte). Infinite intensity
// (zero traffic on a path) removes that roof.
func (m Model) Attainable(oi, ni float64) float64 {
	peak := m.PeakFlops
	if !math.IsInf(oi, 1) && oi > 0 {
		peak = math.Min(peak, m.MemBandwidth*oi)
	}
	if !math.IsInf(ni, 1) && ni > 0 {
		peak = math.Min(peak, m.NetBandwidth*ni)
	}
	return peak
}

// LimitingFactor reports which roof bounds a workload at (oi, ni).
func (m Model) LimitingFactor(oi, ni float64) Limit {
	memRoof := math.Inf(1)
	if !math.IsInf(oi, 1) && oi > 0 {
		memRoof = m.MemBandwidth * oi
	}
	netRoof := math.Inf(1)
	if !math.IsInf(ni, 1) && ni > 0 {
		netRoof = m.NetBandwidth * ni
	}
	switch {
	case netRoof <= memRoof && netRoof <= m.PeakFlops:
		return LimitNetwork
	case memRoof <= m.PeakFlops:
		return LimitOperational
	default:
		return LimitCompute
	}
}

// RidgeOI returns the operational intensity where the memory roof meets
// the compute roof.
func (m Model) RidgeOI() float64 { return m.PeakFlops / m.MemBandwidth }

// RidgeNI returns the network intensity where the network roof meets the
// compute roof.
func (m Model) RidgeNI() float64 { return m.PeakFlops / m.NetBandwidth }

// Point is one measured workload on the extended roofline.
type Point struct {
	Name       string
	FLOPs      float64 // total FLOPs executed per node
	DRAMBytes  float64 // DRAM traffic per node
	NetBytes   float64 // network traffic per node
	Throughput float64 // achieved FLOP/s per node
}

// OI returns the point's operational intensity (eq. 1).
func (p Point) OI() float64 {
	if p.DRAMBytes == 0 {
		return math.Inf(1)
	}
	return p.FLOPs / p.DRAMBytes
}

// NI returns the point's network intensity (eq. 2).
func (p Point) NI() float64 {
	if p.NetBytes == 0 {
		return math.Inf(1)
	}
	return p.FLOPs / p.NetBytes
}

// Analysis is a row of the paper's Table II.
type Analysis struct {
	Name          string
	OI, NI        float64
	Throughput    float64 // achieved FLOP/s
	Peak          float64 // attainable under the model
	PercentOfPeak float64
	Limit         Limit
}

// Analyze places a measured point under the model.
func (m Model) Analyze(p Point) Analysis {
	oi, ni := p.OI(), p.NI()
	peak := m.Attainable(oi, ni)
	a := Analysis{
		Name:       p.Name,
		OI:         oi,
		NI:         ni,
		Throughput: p.Throughput,
		Peak:       peak,
		Limit:      m.LimitingFactor(oi, ni),
	}
	if peak > 0 {
		a.PercentOfPeak = 100 * p.Throughput / peak
	}
	return a
}

// SeriesPoint is one sample of a roofline curve for plotting.
type SeriesPoint struct {
	OI         float64
	Attainable float64
}

// MemorySeries samples the classic (memory+compute) roofline over a
// log-spaced OI grid from lo to hi — the curve of Fig. 4.
func (m Model) MemorySeries(lo, hi float64, n int) []SeriesPoint {
	if n < 2 || lo <= 0 || hi <= lo {
		return nil
	}
	out := make([]SeriesPoint, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	oi := lo
	for i := 0; i < n; i++ {
		out[i] = SeriesPoint{OI: oi, Attainable: math.Min(m.PeakFlops, m.MemBandwidth*oi)}
		oi *= ratio
	}
	return out
}

// NetworkCeiling returns the horizontal roof (FLOP/s) the network imposes
// at a given network intensity — the per-workload ceilings the extension
// adds to Fig. 4.
func (m Model) NetworkCeiling(ni float64) float64 {
	if math.IsInf(ni, 1) || ni <= 0 {
		return m.PeakFlops
	}
	return math.Min(m.PeakFlops, m.NetBandwidth*ni)
}

// SortAnalyses orders Table II rows by name for stable output.
func SortAnalyses(rows []Analysis) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
}
