package roofline_test

import (
	"fmt"

	"clustersoc/internal/roofline"
)

// Build the paper's extended roofline for a TX1 node on 10 GbE and place
// a workload on it — equations (1)-(3) of Sec. III-B.3.
func ExampleModel_Analyze() {
	m := roofline.Model{
		Name:         "TX1 + 10GbE",
		PeakFlops:    16e9,      // FP64
		MemBandwidth: 20e9,      // GPU STREAM
		NetBandwidth: 3.3e9 / 8, // effective 10GbE
	}
	hpl := roofline.Point{
		Name:       "hpl",
		FLOPs:      1e12,
		DRAMBytes:  2e12, // OI = 0.5
		NetBytes:   1e10, // NI = 100
		Throughput: 9e9,
	}
	a := m.Analyze(hpl)
	fmt.Printf("OI %.1f, NI %.0f\n", a.OI, a.NI)
	fmt.Printf("attainable %.0f GFLOPS, %.0f%% reached, %s-limited\n",
		a.Peak/1e9, a.PercentOfPeak, a.Limit)
	// Output:
	// OI 0.5, NI 100
	// attainable 10 GFLOPS, 90% reached, operational-limited
}

// The ridge points mark where each roof stops binding.
func ExampleModel_RidgeOI() {
	m := roofline.Model{PeakFlops: 16e9, MemBandwidth: 20e9, NetBandwidth: 3.3e9 / 8}
	fmt.Printf("memory ridge at OI %.2f FLOP/B\n", m.RidgeOI())
	fmt.Printf("network ridge at NI %.1f FLOP/B\n", m.RidgeNI())
	// Output:
	// memory ridge at OI 0.80 FLOP/B
	// network ridge at NI 38.8 FLOP/B
}
