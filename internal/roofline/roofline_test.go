package roofline

import (
	"math"
	"testing"
	"testing/quick"

	"clustersoc/internal/units"
)

// tx1Model mirrors the paper's per-node parameters: 16 GFLOPS FP64 peak,
// 20 GB/s GPU memory bandwidth, 3.3 Gb/s effective 10 GbE.
func tx1Model() Model {
	return Model{
		Name:         "TX1 + 10GbE",
		PeakFlops:    16 * units.GFLOPS,
		MemBandwidth: 20 * units.GBps,
		NetBandwidth: 3.3 * units.Gbps,
	}
}

func TestAttainableEnvelope(t *testing.T) {
	m := tx1Model()
	f := func(oiRaw, niRaw uint16) bool {
		oi := float64(oiRaw)/100 + 0.001
		ni := float64(niRaw)/100 + 0.001
		a := m.Attainable(oi, ni)
		return a <= m.PeakFlops+1e-6 &&
			a <= m.MemBandwidth*oi+1e-6 &&
			a <= m.NetBandwidth*ni+1e-6 &&
			(a == m.PeakFlops || a == m.MemBandwidth*oi || a == m.NetBandwidth*ni)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLimitingFactorRegions(t *testing.T) {
	m := tx1Model()
	// Huge intensities: compute bound.
	if l := m.LimitingFactor(1e6, 1e6); l != LimitCompute {
		t.Errorf("high intensities => %v, want compute", l)
	}
	// Tiny OI, huge NI: memory bound.
	if l := m.LimitingFactor(0.01, 1e6); l != LimitOperational {
		t.Errorf("low OI => %v, want operational", l)
	}
	// Huge OI, tiny NI: network bound.
	if l := m.LimitingFactor(1e6, 0.01); l != LimitNetwork {
		t.Errorf("low NI => %v, want network", l)
	}
}

func TestRidgePoints(t *testing.T) {
	m := tx1Model()
	oi := m.RidgeOI()
	if math.Abs(m.MemBandwidth*oi-m.PeakFlops) > 1 {
		t.Error("memory ridge point inconsistent")
	}
	ni := m.RidgeNI()
	if math.Abs(m.NetBandwidth*ni-m.PeakFlops) > 1 {
		t.Error("network ridge point inconsistent")
	}
	// The 10 GbE ridge NI must be lower than the 1 GbE one: a faster
	// network un-bounds workloads at lower network intensity.
	m1 := m
	m1.NetBandwidth = 0.94 * units.Gbps
	if m.RidgeNI() >= m1.RidgeNI() {
		t.Error("faster network should lower the network ridge intensity")
	}
}

func TestPointIntensities(t *testing.T) {
	p := Point{FLOPs: 100, DRAMBytes: 50, NetBytes: 25}
	if p.OI() != 2 || p.NI() != 4 {
		t.Fatalf("OI=%v NI=%v", p.OI(), p.NI())
	}
	// Zero traffic removes the roof.
	p2 := Point{FLOPs: 100}
	if !math.IsInf(p2.OI(), 1) || !math.IsInf(p2.NI(), 1) {
		t.Error("zero-traffic intensities should be +Inf")
	}
	m := tx1Model()
	if got := m.Attainable(p2.OI(), p2.NI()); got != m.PeakFlops {
		t.Errorf("no-traffic attainable = %v, want peak", got)
	}
}

func TestAnalyzePercent(t *testing.T) {
	m := tx1Model()
	p := Point{Name: "hpl", FLOPs: 1e12, DRAMBytes: 5e10, NetBytes: 1e10, Throughput: 8 * units.GFLOPS}
	a := m.Analyze(p)
	if a.PercentOfPeak <= 0 || a.PercentOfPeak > 100 {
		t.Fatalf("%%peak = %v", a.PercentOfPeak)
	}
	if a.Peak > m.PeakFlops {
		t.Error("attainable above hardware peak")
	}
}

// Faster network can only raise (or keep) the attainable roof; using it
// never changes the intensities themselves — the paper emphasizes both.
func TestNetworkUpgradeProperty(t *testing.T) {
	m1 := tx1Model()
	m1.NetBandwidth = 0.94 * units.Gbps
	m10 := tx1Model()
	f := func(oiRaw, niRaw uint16) bool {
		oi := float64(oiRaw)/50 + 0.001
		ni := float64(niRaw)/50 + 0.001
		return m10.Attainable(oi, ni) >= m1.Attainable(oi, ni)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemorySeriesShape(t *testing.T) {
	m := tx1Model()
	s := m.MemorySeries(0.01, 100, 64)
	if len(s) != 64 {
		t.Fatalf("series length %d", len(s))
	}
	prev := 0.0
	for _, pt := range s {
		if pt.Attainable < prev-1e-9 {
			t.Fatal("roofline series must be non-decreasing in OI")
		}
		prev = pt.Attainable
	}
	if s[len(s)-1].Attainable != m.PeakFlops {
		t.Error("series should reach the compute roof")
	}
	if s[0].Attainable >= m.PeakFlops {
		t.Error("series should start on the memory roof")
	}
	if m.MemorySeries(1, 0.5, 8) != nil || m.MemorySeries(1, 2, 1) != nil {
		t.Error("invalid grids should return nil")
	}
}

func TestNetworkCeiling(t *testing.T) {
	m := tx1Model()
	if c := m.NetworkCeiling(math.Inf(1)); c != m.PeakFlops {
		t.Error("infinite NI should give the compute roof")
	}
	if c := m.NetworkCeiling(1); math.Abs(c-m.NetBandwidth) > 1 {
		t.Errorf("NI=1 ceiling = %v, want netBW", c)
	}
}
