// Package kernels implements the numerical algorithms behind the paper's
// benchmarks (Table I and the NPB suite) as real, tested, parallel Go
// code: dense LU (hpl), Jacobi relaxation (jacobi), conjugate gradients on
// heat-equation operators (tealeaf, cg), an explicit compressible-Euler
// step (cloverleaf), FFTs (ft), bucket sort (is), multigrid (mg), and the
// embarrassingly-parallel Marsaglia generator (ep).
//
// The workload models in internal/workloads derive their FLOP, byte, and
// message counts from the Count functions here, so the simulated cluster
// executes the same arithmetic shapes these kernels are verified to have.
package kernels

import (
	"errors"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j].
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// ParallelFor runs body over [0,n) split into contiguous chunks across
// the available cores — the standard HPC decomposition, which keeps each
// worker streaming through adjacent memory. Exported for the other
// numeric packages (internal/nn) to share.
func ParallelFor(n int, body func(lo, hi int)) { parallelFor(n, body) }

// parallelFor runs body(i) for i in [0,n) across the available cores,
// splitting into contiguous chunks (the standard HPC decomposition, which
// keeps each worker streaming through adjacent memory).
func parallelFor(n int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul computes c = a*b in parallel over rows. Dimensions must agree.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, errors.New("kernels: matmul dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Cols)
	parallelFor(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*a.Cols : (i+1)*a.Cols]
			crow := c.Data[i*c.Cols : (i+1)*c.Cols]
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[k*b.Cols : (k+1)*b.Cols]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
	return c, nil
}

// MatVec computes y = a*x.
func MatVec(a *Matrix, x []float64) ([]float64, error) {
	if a.Cols != len(x) {
		return nil, errors.New("kernels: matvec dimension mismatch")
	}
	y := make([]float64, a.Rows)
	parallelFor(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Data[i*a.Cols : (i+1)*a.Cols]
			s := 0.0
			for j, v := range row {
				s += v * x[j]
			}
			y[i] = s
		}
	})
	return y, nil
}

// MatMulFlops returns the FLOPs of an (m x k) * (k x n) product.
func MatMulFlops(m, k, n int) float64 { return 2 * float64(m) * float64(k) * float64(n) }

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
