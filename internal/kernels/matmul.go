// Package kernels implements the numerical algorithms behind the paper's
// benchmarks (Table I and the NPB suite) as real, tested, parallel Go
// code: dense LU (hpl), Jacobi relaxation (jacobi), conjugate gradients on
// heat-equation operators (tealeaf, cg), an explicit compressible-Euler
// step (cloverleaf), FFTs (ft), bucket sort (is), multigrid (mg), and the
// embarrassingly-parallel Marsaglia generator (ep).
//
// The workload models in internal/workloads derive their FLOP, byte, and
// message counts from the Count functions here, so the simulated cluster
// executes the same arithmetic shapes these kernels are verified to have.
package kernels

import (
	"errors"
	"math"

	"clustersoc/internal/compute"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j].
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// ParallelFor runs body over [0,n) split into contiguous chunks across
// the available cores — the standard HPC decomposition, which keeps each
// worker streaming through adjacent memory. Exported for the other
// numeric packages (internal/nn) to share.
func ParallelFor(n int, body func(lo, hi int)) { compute.ParallelFor(n, body) }

// parallelFor is the package-internal alias the kernel loops use.
func parallelFor(n int, body func(lo, hi int)) { compute.ParallelFor(n, body) }

// backend returns the process-wide compute backend every dense primitive
// in this package dispatches through (see internal/compute; the default
// Reference backend reproduces the seed loops bit-for-bit).
func backend() compute.Backend { return compute.Default() }

// MatMul computes c = a*b through the compute backend. Dimensions must
// agree.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, errors.New("kernels: matmul dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Cols)
	backend().MatMul(c.Data, a.Data, b.Data, a.Rows, a.Cols, b.Cols)
	return c, nil
}

// MatVec computes y = a*x through the compute backend (an accumulating
// Gemv over a zeroed y).
func MatVec(a *Matrix, x []float64) ([]float64, error) {
	if a.Cols != len(x) {
		return nil, errors.New("kernels: matvec dimension mismatch")
	}
	y := make([]float64, a.Rows)
	backend().Gemv(y, a.Data, x, a.Rows, a.Cols)
	return y, nil
}

// MatMulFlops returns the FLOPs of an (m x k) * (k x n) product.
func MatMulFlops(m, k, n int) float64 { return 2 * float64(m) * float64(k) * float64(n) }

// Dot returns the inner product of two equal-length vectors, through the
// compute backend.
func Dot(a, b []float64) float64 { return backend().Dot(a, b) }

// Axpy computes y += alpha*x in place, through the compute backend.
func Axpy(alpha float64, x, y []float64) { backend().Axpy(alpha, x, y) }

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
