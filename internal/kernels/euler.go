package kernels

import "math"

// EulerState holds the conserved variables of the 2D compressible Euler
// equations on an nx x ny grid with a one-cell halo — the state cloverleaf
// advances with its explicit Lagrangian-Eulerian hydro scheme. This
// implementation uses a first-order Rusanov (local Lax-Friedrichs) finite
// volume update, which exercises the same per-cell arithmetic and halo
// pattern.
type EulerState struct {
	NX, NY int
	Gamma  float64
	Rho    *Grid2D // density
	MomX   *Grid2D // x-momentum
	MomY   *Grid2D // y-momentum
	Energy *Grid2D // total energy density
}

// NewEulerState allocates a state initialized to quiescent gas (rho=1,
// p=1, v=0) with gamma = 1.4.
func NewEulerState(nx, ny int) *EulerState {
	s := &EulerState{
		NX: nx, NY: ny, Gamma: 1.4,
		Rho: NewGrid2D(nx, ny), MomX: NewGrid2D(nx, ny),
		MomY: NewGrid2D(nx, ny), Energy: NewGrid2D(nx, ny),
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			s.Rho.Set(i, j, 1)
			s.Energy.Set(i, j, 1/(s.Gamma-1))
		}
	}
	return s
}

// Pressure returns the pressure of cell (i,j).
func (s *EulerState) Pressure(i, j int) float64 {
	rho := s.Rho.At(i, j)
	if rho <= 0 {
		return 0
	}
	u := s.MomX.At(i, j) / rho
	v := s.MomY.At(i, j) / rho
	kin := 0.5 * rho * (u*u + v*v)
	return (s.Gamma - 1) * (s.Energy.At(i, j) - kin)
}

// TotalMass returns the integral of density — conserved by the update up
// to boundary fluxes (the property test uses periodic-free interior
// setups where boundaries are quiescent).
func (s *EulerState) TotalMass() float64 {
	m := 0.0
	for i := 0; i < s.NX; i++ {
		for j := 0; j < s.NY; j++ {
			m += s.Rho.At(i, j)
		}
	}
	return m
}

// TotalEnergy returns the integral of the energy density.
func (s *EulerState) TotalEnergy() float64 {
	e := 0.0
	for i := 0; i < s.NX; i++ {
		for j := 0; j < s.NY; j++ {
			e += s.Energy.At(i, j)
		}
	}
	return e
}

// MaxWaveSpeed returns the CFL-limiting signal speed.
func (s *EulerState) MaxWaveSpeed() float64 {
	max := 0.0
	for i := 0; i < s.NX; i++ {
		for j := 0; j < s.NY; j++ {
			rho := s.Rho.At(i, j)
			if rho <= 0 {
				continue
			}
			u := math.Abs(s.MomX.At(i, j) / rho)
			v := math.Abs(s.MomY.At(i, j) / rho)
			c := math.Sqrt(s.Gamma * math.Max(s.Pressure(i, j), 0) / rho)
			if sp := math.Max(u, v) + c; sp > max {
				max = sp
			}
		}
	}
	return max
}

type fluxVec [4]float64

// physFluxX returns the x-direction flux of the conserved vector.
func (s *EulerState) cons(i, j int) fluxVec {
	return fluxVec{s.Rho.At(i, j), s.MomX.At(i, j), s.MomY.At(i, j), s.Energy.At(i, j)}
}

func (s *EulerState) physFlux(q fluxVec, p float64, dir int) fluxVec {
	rho := q[0]
	if rho <= 0 {
		return fluxVec{}
	}
	u, v := q[1]/rho, q[2]/rho
	vel := u
	if dir == 1 {
		vel = v
	}
	f := fluxVec{q[0] * vel, q[1] * vel, q[2] * vel, (q[3] + p) * vel}
	f[1+dir] += p
	return f
}

// Step advances the state by dt on spacing h with a Rusanov update,
// returning the timestep actually used (clamped to CFL 0.4). Interior rows
// update in parallel; halo cells act as reflective quiescent boundaries.
func (s *EulerState) Step(dt, h float64) float64 {
	speed := s.MaxWaveSpeed()
	if speed > 0 {
		cfl := 0.4 * h / speed
		if dt > cfl {
			dt = cfl
		}
	}
	nx, ny := s.NX, s.NY
	newRho := NewGrid2D(nx, ny)
	newMx := NewGrid2D(nx, ny)
	newMy := NewGrid2D(nx, ny)
	newEn := NewGrid2D(nx, ny)

	alpha := speed // global Rusanov dissipation speed
	flux := func(iL, jL, iR, jR, dir int) fluxVec {
		qL, qR := s.cons(iL, jL), s.cons(iR, jR)
		pL, pR := s.Pressure(iL, jL), s.Pressure(iR, jR)
		fL := s.physFlux(qL, pL, dir)
		fR := s.physFlux(qR, pR, dir)
		var out fluxVec
		for k := 0; k < 4; k++ {
			out[k] = 0.5*(fL[k]+fR[k]) - 0.5*alpha*(qR[k]-qL[k])
		}
		return out
	}
	clampIdx := func(i, n int) int {
		if i < 0 {
			return 0
		}
		if i >= n {
			return n - 1
		}
		return i
	}
	parallelFor(nx, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < ny; j++ {
				fxm := flux(clampIdx(i-1, nx), j, i, j, 0)
				fxp := flux(i, j, clampIdx(i+1, nx), j, 0)
				fym := flux(i, clampIdx(j-1, ny), i, j, 1)
				fyp := flux(i, j, i, clampIdx(j+1, ny), 1)
				q := s.cons(i, j)
				var out fluxVec
				for k := 0; k < 4; k++ {
					out[k] = q[k] - dt/h*(fxp[k]-fxm[k]) - dt/h*(fyp[k]-fym[k])
				}
				newRho.Set(i, j, out[0])
				newMx.Set(i, j, out[1])
				newMy.Set(i, j, out[2])
				newEn.Set(i, j, out[3])
			}
		}
	})
	s.Rho, s.MomX, s.MomY, s.Energy = newRho, newMx, newMy, newEn
	return dt
}

// EulerStepFlops estimates the FLOPs of one hydro step per cell: four
// Rusanov fluxes of four components plus the update (~130 FLOPs/cell,
// matching cloverleaf's published per-cell cost order).
const EulerStepFlopsPerCell = 130

// EulerFieldCount is the number of conserved field arrays exchanged at
// halos each step.
const EulerFieldCount = 4
