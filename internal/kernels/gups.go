package kernels

// GUPS — the HPCC RandomAccess benchmark (the suite the paper takes its
// CPU hpl and Latency-Bandwidth tests from): random read-modify-write
// updates over a table far larger than any cache, measured in Giga
// Updates Per Second. It is the pure antagonist of STREAM: zero spatial
// locality, so it measures the memory system's latency/parallelism rather
// than its bandwidth — the ThunderX-vs-A57 axis of Sec. IV-A.

// GUPSResult reports a RandomAccess run.
type GUPSResult struct {
	TableWords int
	Updates    int
	Checksum   uint64
}

// RunGUPS performs `updates` xor-updates at pseudo-random table positions
// using the HPCC polynomial generator, returning a checksum that the
// verification step can recompute. The table has 2^logSize words.
func RunGUPS(logSize, updates int) GUPSResult {
	size := 1 << logSize
	mask := uint64(size - 1)
	table := make([]uint64, size)
	for i := range table {
		table[i] = uint64(i)
	}
	ran := hpccStart(0)
	for i := 0; i < updates; i++ {
		ran = hpccNext(ran)
		idx := ran & mask
		table[idx] ^= ran
	}
	var sum uint64
	for _, v := range table {
		sum ^= v
	}
	return GUPSResult{TableWords: size, Updates: updates, Checksum: sum}
}

// VerifyGUPS re-applies the update stream and reports whether the
// checksum matches — HPCC's own self-verification strategy (xor updates
// commute, so replaying them must cancel back to the initial table).
func VerifyGUPS(res GUPSResult, logSize int) bool {
	again := RunGUPS(logSize, res.Updates)
	return again.Checksum == res.Checksum
}

// hpcc polynomial: x <- (x << 1) xor (x < 0 ? POLY : 0) over 64 bits.
const hpccPoly = 0x0000000000000007

// hpccStart returns the n-th value of the HPCC random sequence (here the
// seed for stream n; n = 0 gives the canonical start).
func hpccStart(n int64) uint64 {
	ran := uint64(0x1)
	for i := int64(0); i < n; i++ {
		ran = hpccNext(ran)
	}
	return ran
}

// hpccNext advances the HPCC LFSR.
func hpccNext(ran uint64) uint64 {
	hi := ran >> 63
	ran <<= 1
	if hi != 0 {
		ran ^= hpccPoly
	}
	return ran
}

// GUPSWork characterizes one update for the CPU model: an almost-certain
// cache miss (a random 8-byte touch in a multi-megabyte table), a couple
// of ALU ops, and one hard-to-predict branch in the generator.
const (
	GUPSInstrPerUpdate    = 10.0
	GUPSMemAccPerUpdate   = 2.0
	GUPSBranchesPerUpdate = 1.0
)
