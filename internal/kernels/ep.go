package kernels

import "math"

// EPResult mirrors NPB ep's output: counts of Gaussian pairs per annulus
// and the sums of the deviates.
type EPResult struct {
	Counts [10]int64
	SumX   float64
	SumY   float64
	Pairs  int64
}

// EmbarrassinglyParallel generates n pairs of uniform deviates with NPB's
// LCG, applies the Marsaglia polar method, and tallies acceptance annuli —
// the whole of NPB ep, which has essentially no communication and is the
// paper's control workload for network studies.
func EmbarrassinglyParallel(n int, seed float64) EPResult {
	r := NewNPBRandom(seed)
	var res EPResult
	for i := 0; i < n; i++ {
		x := 2*r.Next() - 1
		y := 2*r.Next() - 1
		t := x*x + y*y
		if t > 1 || t == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(t) / t)
		gx, gy := x*f, y*f
		m := int(math.Max(math.Abs(gx), math.Abs(gy)))
		if m > 9 {
			m = 9
		}
		res.Counts[m]++
		res.SumX += gx
		res.SumY += gy
		res.Pairs++
	}
	return res
}

// Merge combines partial results from independent streams, the only
// communication ep ever does (a tiny final reduction).
func (a EPResult) Merge(b EPResult) EPResult {
	out := a
	for i := range out.Counts {
		out.Counts[i] += b.Counts[i]
	}
	out.SumX += b.SumX
	out.SumY += b.SumY
	out.Pairs += b.Pairs
	return out
}

// EPFlopsPerPair is the approximate FLOPs spent per generated pair
// (two LCG updates, the polar test, sqrt/log on accepted pairs).
const EPFlopsPerPair = 30
