package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestThomasSolveAgainstLU(t *testing.T) {
	n := 24
	rng := rand.New(rand.NewSource(4))
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	d := make([]float64, n)
	full := NewMatrix(n, n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.Float64()
		c[i] = rng.Float64()
		b[i] = 3 + rng.Float64() // diagonally dominant
		d[i] = rng.NormFloat64()
		rhs[i] = d[i]
		full.Set(i, i, b[i])
		if i > 0 {
			full.Set(i, i-1, a[i])
		}
		if i < n-1 {
			full.Set(i, i+1, c[i])
		}
	}
	if err := ThomasSolve(a, b, c, d); err != nil {
		t.Fatal(err)
	}
	lu, err := Factor(full)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lu.Solve(rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-9 {
			t.Fatalf("x[%d] = %v, LU says %v", i, d[i], want[i])
		}
	}
}

func TestThomasSolveErrors(t *testing.T) {
	if err := ThomasSolve(make([]float64, 2), make([]float64, 3), make([]float64, 3), make([]float64, 3)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := ThomasSolve([]float64{0, 0}, []float64{0, 1}, []float64{0, 0}, []float64{1, 1}); err == nil {
		t.Fatal("zero pivot accepted")
	}
	if err := ThomasSolve(nil, nil, nil, nil); err != nil {
		t.Fatal("empty system should be a no-op")
	}
}

// Property: the Thomas solution satisfies the original tridiagonal system.
func TestThomasResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(seed&7)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		d := make([]float64, n)
		orig := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Float64()
			c[i] = rng.Float64()
			b[i] = 3 + rng.Float64()
			d[i] = rng.NormFloat64()
			orig[i] = d[i]
		}
		aa := append([]float64(nil), a...)
		bb := append([]float64(nil), b...)
		cc := append([]float64(nil), c...)
		if err := ThomasSolve(aa, bb, cc, d); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			got := b[i] * d[i]
			if i > 0 {
				got += a[i] * d[i-1]
			}
			if i < n-1 {
				got += c[i] * d[i+1]
			}
			if math.Abs(got-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// ADI decays toward the steady state (zero with zero boundaries) and
// conserves the sign structure of the heat equation.
func TestADIHeatDecays(t *testing.T) {
	n := 32
	h := 1.0 / float64(n+1)
	u := NewGrid2D(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x, y := float64(i+1)*h, float64(j+1)*h
			u.Set(i, j, math.Sin(math.Pi*x)*math.Sin(math.Pi*y))
		}
	}
	energy := func() float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s += u.At(i, j) * u.At(i, j)
			}
		}
		return s
	}
	e0 := energy()
	dt := 0.01 // far beyond the explicit stability limit h^2/4
	prev := e0
	for s := 0; s < 10; s++ {
		if err := ADIHeat2D(u, dt, h); err != nil {
			t.Fatal(err)
		}
		e := energy()
		if e >= prev {
			t.Fatalf("energy did not decay: %v -> %v", prev, e)
		}
		prev = e
	}
	if prev > 0.1*e0 {
		t.Fatalf("decay too slow: %v of %v left", prev, e0)
	}
}

// The fundamental mode of the heat equation decays as exp(-2 pi^2 t);
// ADI must track that rate within discretization error.
func TestADIDecayRate(t *testing.T) {
	n := 48
	h := 1.0 / float64(n+1)
	u := NewGrid2D(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x, y := float64(i+1)*h, float64(j+1)*h
			u.Set(i, j, math.Sin(math.Pi*x)*math.Sin(math.Pi*y))
		}
	}
	dt := 0.002
	steps := 20
	for s := 0; s < steps; s++ {
		if err := ADIHeat2D(u, dt, h); err != nil {
			t.Fatal(err)
		}
	}
	tEnd := dt * float64(steps)
	want := math.Exp(-2 * math.Pi * math.Pi * tEnd)
	got := u.At(n/2-1, n/2-1) / math.Sin(math.Pi*0.5*float64(n)/float64(n+1)) // ~ center amplitude
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("decay factor %v, analytic %v", got, want)
	}
}

func TestSSORSolvesPoisson(t *testing.T) {
	n := 32
	h := 1.0 / float64(n+1)
	f := NewGrid2D(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			f.Set(i, j, 1)
		}
	}
	u, iters := SolveSSOR(f, h, 1.5, 1e-6, 2000)
	if iters >= 2000 {
		t.Fatalf("SSOR did not converge (residual %v)", PoissonResidual(u, f, h))
	}
	// SSOR with over-relaxation beats plain Jacobi on sweep count.
	_, jIters := SolveJacobi(f, h, 1e-9, 20000)
	if iters*2 >= jIters { // each SSOR iteration is two sweeps
		t.Errorf("SSOR (%d symmetric iters) not faster than Jacobi (%d sweeps)", iters, jIters)
	}
}

func TestMG3DSolves(t *testing.T) {
	n := 15 // 2^4 - 1
	h := 1.0 / float64(n+1)
	f := NewGrid3D(n, n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				f.Set(i, j, k, 1)
			}
		}
	}
	u, cycles := MGSolve3D(f, h, 1e-6, 60)
	if cycles >= 60 {
		t.Fatalf("3D multigrid did not converge (residual %v)", Residual3D(u, f, h))
	}
	if r := Residual3D(u, f, h); r > 1e-6 {
		t.Fatalf("residual %v", r)
	}
	// Solution of -lap u = 1 on the unit cube is positive inside.
	if u.At(n/2, n/2, n/2) <= 0 {
		t.Fatal("interior solution should be positive")
	}
}

func TestStreamKernels(t *testing.T) {
	n := 4096
	res := RunStream(n, 2)
	if len(res) != 4 {
		t.Fatalf("%d results", len(res))
	}
	names := []string{"Copy", "Scale", "Add", "Triad"}
	for i, r := range res {
		if r.Name != names[i] {
			t.Fatalf("order %v", res)
		}
		if r.BytesPer <= 0 {
			t.Fatalf("%s reported no bandwidth", r.Name)
		}
	}
	// Functional checks.
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	c := make([]float64, 3)
	StreamAdd(a, b, c)
	if c[2] != 9 {
		t.Fatal("add wrong")
	}
	StreamTriad(c, a, b, 2)
	if c[0] != 1+2*4 {
		t.Fatal("triad wrong")
	}
	StreamScale(c, b, 3)
	if c[1] != 15 {
		t.Fatal("scale wrong")
	}
	StreamCopy(a, c)
	if c[2] != 3 {
		t.Fatal("copy wrong")
	}
}

func TestADIFlopsPositive(t *testing.T) {
	if ADIStepFlops(10, 10) <= 0 || SSORSweepFlops(10, 10) <= 0 {
		t.Fatal("count helpers broken")
	}
}

func TestGUPSVerifies(t *testing.T) {
	res := RunGUPS(16, 50000)
	if res.TableWords != 1<<16 || res.Updates != 50000 {
		t.Fatalf("result header %+v", res)
	}
	if !VerifyGUPS(res, 16) {
		t.Fatal("GUPS self-verification failed")
	}
	// A different update count must change the checksum (overwhelmingly).
	other := RunGUPS(16, 50001)
	if other.Checksum == res.Checksum {
		t.Fatal("checksum insensitive to the update stream")
	}
}

func TestHPCCGeneratorPeriodicity(t *testing.T) {
	// The LFSR must not get stuck and must be deterministic.
	a, b := hpccStart(0), hpccStart(0)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		a, b = hpccNext(a), hpccNext(b)
		if a != b {
			t.Fatal("generator not deterministic")
		}
		if seen[a] {
			t.Fatalf("cycle after %d steps", i)
		}
		seen[a] = true
	}
}
