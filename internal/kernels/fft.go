package kernels

import (
	"errors"
	"math"
	"math/cmplx"
)

// FFT computes the in-place radix-2 Cooley-Tukey transform of x (length
// must be a power of two). inverse selects the inverse transform with the
// 1/n scaling. This is the computational core of NPB ft.
func FFT(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return errors.New("kernels: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		ang := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}

// FFT2D transforms an nx x ny row-major complex field in place: rows in
// parallel, then columns in parallel — the transpose structure that makes
// distributed ft all-to-all heavy.
func FFT2D(data []complex128, nx, ny int, inverse bool) error {
	if len(data) != nx*ny {
		return errors.New("kernels: FFT2D size mismatch")
	}
	var rowErr error
	parallelFor(nx, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if err := FFT(data[i*ny:(i+1)*ny], inverse); err != nil {
				rowErr = err
			}
		}
	})
	if rowErr != nil {
		return rowErr
	}
	var colErr error
	parallelFor(ny, func(lo, hi int) {
		col := make([]complex128, nx)
		for j := lo; j < hi; j++ {
			for i := 0; i < nx; i++ {
				col[i] = data[i*ny+j]
			}
			if err := FFT(col, inverse); err != nil {
				colErr = err
			}
			for i := 0; i < nx; i++ {
				data[i*ny+j] = col[i]
			}
		}
	})
	return colErr
}

// FFTFlops returns the usual 5 n log2(n) FLOP count of a complex length-n
// transform.
func FFTFlops(n int) float64 {
	if n <= 1 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}
