package kernels

// Multigrid implements a geometric multigrid V-cycle for the 2D Poisson
// problem -lap(u) = f on the unit square — the algorithm family of NPB mg
// (which runs a 3D V-cycle; this 2D version exercises the same restrict /
// prolongate / smooth structure the workload model charges for).
//
// Grids are vertex-centered with Dirichlet halos: an n-point-per-side
// interior with n = 2^k - 1 coarsens to (n-1)/2 points, and coarse point I
// (0-indexed) coincides with fine point 2I+1.

// MGSolve runs V-cycles until the residual max-norm falls below tol or
// maxCycles pass, returning the solution and the number of cycles used.
// The interior must be (2^k - 1) points per side.
func MGSolve(f *Grid2D, h, tol float64, maxCycles int) (*Grid2D, int) {
	u := NewGrid2D(f.NX, f.NY)
	for c := 1; c <= maxCycles; c++ {
		VCycle(u, f, h, 2, 2)
		if PoissonResidual(u, f, h) < tol {
			return u, c
		}
	}
	return u, maxCycles
}

// VCycle performs one multigrid V-cycle on -lap(u) = f with pre/post
// weighted-Jacobi smoothing sweeps.
func VCycle(u, f *Grid2D, h float64, pre, post int) {
	if u.NX < 7 || u.NY < 7 || u.NX%2 == 0 || u.NY%2 == 0 {
		// Coarsest level: smooth hard instead of a direct solve.
		tmp := NewGrid2D(u.NX, u.NY)
		for s := 0; s < 30; s++ {
			DampedJacobiStep(tmp, u, f, h, 0.8)
			u.Data, tmp.Data = tmp.Data, u.Data
		}
		return
	}
	tmp := NewGrid2D(u.NX, u.NY)
	for s := 0; s < pre; s++ {
		DampedJacobiStep(tmp, u, f, h, 0.8)
		u.Data, tmp.Data = tmp.Data, u.Data
	}
	r := residualGrid(u, f, h)
	rc := Restrict(r)
	ec := NewGrid2D(rc.NX, rc.NY)
	VCycle(ec, rc, 2*h, pre, post)
	e := Prolongate(ec, u.NX, u.NY)
	for i := 0; i < u.NX; i++ {
		for j := 0; j < u.NY; j++ {
			u.Set(i, j, u.At(i, j)+e.At(i, j))
		}
	}
	for s := 0; s < post; s++ {
		DampedJacobiStep(tmp, u, f, h, 0.8)
		u.Data, tmp.Data = tmp.Data, u.Data
	}
}

// residualGrid returns r = f + lap(u) on the interior.
func residualGrid(u, f *Grid2D, h float64) *Grid2D {
	r := NewGrid2D(u.NX, u.NY)
	stride := u.NY + 2
	parallelFor(u.NX, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := (i + 1) * stride
			for j := 1; j <= u.NY; j++ {
				lap := (u.Data[row-stride+j] + u.Data[row+stride+j] +
					u.Data[row+j-1] + u.Data[row+j+1] - 4*u.Data[row+j]) / (h * h)
				r.Data[row+j] = f.Data[row+j] + lap
			}
		}
	})
	return r
}

// Restrict coarsens a fine grid to ((nx-1)/2, (ny-1)/2) by full weighting:
// the 9-point [1 2 1; 2 4 2; 1 2 1]/16 stencil centered on the coincident
// fine point. Dirichlet halos contribute zeros at the boundary.
func Restrict(fine *Grid2D) *Grid2D {
	cx, cy := (fine.NX-1)/2, (fine.NY-1)/2
	coarse := NewGrid2D(cx, cy)
	for i := 0; i < cx; i++ {
		fi := 2*i + 1
		for j := 0; j < cy; j++ {
			fj := 2*j + 1
			s := 4*fine.At(fi, fj) +
				2*(fine.At(fi-1, fj)+fine.At(fi+1, fj)+fine.At(fi, fj-1)+fine.At(fi, fj+1)) +
				fine.At(fi-1, fj-1) + fine.At(fi-1, fj+1) + fine.At(fi+1, fj-1) + fine.At(fi+1, fj+1)
			coarse.Set(i, j, s/16)
		}
	}
	return coarse
}

// Prolongate interpolates a coarse grid bilinearly up to an (nx, ny)
// interior; coincident points copy, edge points average two coarse
// neighbours, cell-center points average four. Halo zeros supply the
// Dirichlet boundary.
func Prolongate(coarse *Grid2D, nx, ny int) *Grid2D {
	fine := NewGrid2D(nx, ny)
	c := coarse.At // handles halo reads at -1 and NX/NY transparently
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			iOdd, jOdd := i%2 == 1, j%2 == 1
			var v float64
			switch {
			case iOdd && jOdd:
				v = c((i-1)/2, (j-1)/2)
			case !iOdd && jOdd:
				v = 0.5 * (c(i/2-1, (j-1)/2) + c(i/2, (j-1)/2))
			case iOdd && !jOdd:
				v = 0.5 * (c((i-1)/2, j/2-1) + c((i-1)/2, j/2))
			default:
				v = 0.25 * (c(i/2-1, j/2-1) + c(i/2-1, j/2) + c(i/2, j/2-1) + c(i/2, j/2))
			}
			fine.Set(i, j, v)
		}
	}
	return fine
}

// MGVCycleFlops estimates the FLOPs of one V-cycle on an n x n grid:
// the geometric series over levels of smoothing + residual + transfer
// work (~(pre+post)*6 + 8 FLOPs per cell per level, levels summing to
// 4/3 of the fine grid).
func MGVCycleFlops(n, pre, post int) float64 {
	perCell := float64((pre+post)*JacobiFlopsPerCell + 8)
	cells := float64(n) * float64(n)
	return perCell * cells * 4 / 3
}
