package kernels

import "math"

// Grid2D is a dense 2D scalar field with a one-cell halo on each side,
// stored row-major on (nx+2) x (ny+2) points. It is the data structure of
// the jacobi and tealeaf2d workloads.
type Grid2D struct {
	NX, NY int
	Data   []float64
}

// NewGrid2D allocates a grid of nx x ny interior points.
func NewGrid2D(nx, ny int) *Grid2D {
	return &Grid2D{NX: nx, NY: ny, Data: make([]float64, (nx+2)*(ny+2))}
}

// At returns the value at interior coordinates (i,j) in [0,nx) x [0,ny).
func (g *Grid2D) At(i, j int) float64 { return g.Data[(i+1)*(g.NY+2)+(j+1)] }

// Set assigns the interior point (i,j).
func (g *Grid2D) Set(i, j int, v float64) { g.Data[(i+1)*(g.NY+2)+(j+1)] = v }

// JacobiStep performs one weighted-Jacobi sweep for the Poisson problem
// -lap(u) = f on the unit square (5-point stencil, Dirichlet halo),
// writing into dst and returning the max-norm change. The sweep is the
// stencil-apply primitive of the compute backend.
func JacobiStep(dst, src, f *Grid2D, h float64) float64 {
	return backend().Jacobi5(dst.Data, src.Data, f.Data, src.NX, src.NY, h)
}

// DampedJacobiStep performs one weighted-Jacobi sweep with damping factor
// omega: dst = (1-omega)*src + omega*jacobi(src). Multigrid uses omega =
// 4/5, which makes Jacobi an effective high-frequency smoother (plain
// omega = 1 barely damps the highest mode).
func DampedJacobiStep(dst, src, f *Grid2D, h, omega float64) {
	nx, ny := src.NX, src.NY
	stride := ny + 2
	parallelFor(nx, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := (i + 1) * stride
			for j := 1; j <= ny; j++ {
				v := 0.25 * (src.Data[row-stride+j] + src.Data[row+stride+j] +
					src.Data[row+j-1] + src.Data[row+j+1] + h*h*f.Data[row+j])
				dst.Data[row+j] = (1-omega)*src.Data[row+j] + omega*v
			}
		}
	})
}

// SolveJacobi iterates Jacobi sweeps until the update falls below tol or
// maxIter sweeps pass, returning the solution and iteration count.
func SolveJacobi(f *Grid2D, h, tol float64, maxIter int) (*Grid2D, int) {
	u := NewGrid2D(f.NX, f.NY)
	v := NewGrid2D(f.NX, f.NY)
	for it := 1; it <= maxIter; it++ {
		d := JacobiStep(v, u, f, h)
		u, v = v, u
		if d < tol {
			return u, it
		}
	}
	return u, maxIter
}

// PoissonResidual returns ||f + lap(u)||_inf on the interior, the
// correctness check for the Poisson solvers (Jacobi and multigrid).
func PoissonResidual(u, f *Grid2D, h float64) float64 {
	nx, ny := u.NX, u.NY
	stride := ny + 2
	max := 0.0
	for i := 1; i <= nx; i++ {
		row := i * stride
		for j := 1; j <= ny; j++ {
			lap := (u.Data[row-stride+j] + u.Data[row+stride+j] +
				u.Data[row+j-1] + u.Data[row+j+1] - 4*u.Data[row+j]) / (h * h)
			r := math.Abs(f.Data[row+j] + lap)
			if r > max {
				max = r
			}
		}
	}
	return max
}

// JacobiFlopsPerCell is the FLOPs one Jacobi update spends per interior
// cell (4 adds + 1 fused scale + source term).
const JacobiFlopsPerCell = 6

// JacobiSweepFlops returns the FLOPs of one sweep on an nx x ny grid.
func JacobiSweepFlops(nx, ny int) float64 {
	return JacobiFlopsPerCell * float64(nx) * float64(ny)
}

// JacobiSweepBytes returns the memory traffic of one sweep: read u and f,
// write the new u (8-byte values; halo reuse makes neighbour loads cache
// hits, so each cell is charged once per array).
func JacobiSweepBytes(nx, ny int) float64 {
	return 3 * 8 * float64(nx) * float64(ny)
}

// HaloBytes2D returns the bytes one edge exchange moves for a strip
// decomposition of an nx-wide subdomain (one row of 8-byte values).
func HaloBytes2D(width int) float64 { return 8 * float64(width) }
