package kernels

import "errors"

// This file implements the algorithm family behind NPB bt and sp: an
// Alternating-Direction-Implicit (ADI) timestep for the 2D heat equation,
// built on the Thomas tridiagonal solver. Each half-step solves a
// tridiagonal system along one grid direction — the per-line solves that
// make bt/sp exchange faces between ranks each sweep.

// ThomasSolve solves the tridiagonal system with sub-diagonal a (a[0]
// unused), diagonal b, super-diagonal c (c[n-1] unused), and right-hand
// side d, in place, returning the solution in d. The classic O(n)
// forward-elimination / back-substitution; fails on a zero pivot.
func ThomasSolve(a, b, c, d []float64) error {
	n := len(d)
	if len(a) != n || len(b) != n || len(c) != n {
		return errors.New("kernels: tridiagonal arrays must have equal length")
	}
	if n == 0 {
		return nil
	}
	// Forward sweep with scratch copies so the inputs stay intact except d.
	cp := make([]float64, n)
	piv := b[0]
	if piv == 0 {
		return errors.New("kernels: zero pivot in Thomas solve")
	}
	cp[0] = c[0] / piv
	d[0] = d[0] / piv
	for i := 1; i < n; i++ {
		m := b[i] - a[i]*cp[i-1]
		if m == 0 {
			return errors.New("kernels: zero pivot in Thomas solve")
		}
		cp[i] = c[i] / m
		d[i] = (d[i] - a[i]*d[i-1]) / m
	}
	for i := n - 2; i >= 0; i-- {
		d[i] -= cp[i] * d[i+1]
	}
	return nil
}

// ADIHeat2D advances u_t = lap(u) on an nx x ny interior grid (Dirichlet
// zero boundary) by one timestep dt with the Peaceman-Rachford ADI
// scheme: an implicit x-sweep with an explicit y-term, then the reverse.
// Unconditionally stable and second order — the reason bt/sp take far
// larger steps than an explicit code.
func ADIHeat2D(u *Grid2D, dt, h float64) error {
	nx, ny := u.NX, u.NY
	r := dt / (2 * h * h)
	half := NewGrid2D(nx, ny)

	// Half-step 1: implicit in x (solve along columns), explicit in y.
	var solveErr error
	parallelFor(ny, func(lo, hi int) {
		a := make([]float64, nx)
		b := make([]float64, nx)
		c := make([]float64, nx)
		d := make([]float64, nx)
		for j := lo; j < hi; j++ {
			for i := 0; i < nx; i++ {
				a[i], b[i], c[i] = -r, 1+2*r, -r
				d[i] = u.At(i, j) + r*(u.At(i, j-1)-2*u.At(i, j)+u.At(i, j+1))
			}
			if err := ThomasSolve(a, b, c, d); err != nil {
				solveErr = err
				return
			}
			for i := 0; i < nx; i++ {
				half.Set(i, j, d[i])
			}
		}
	})
	if solveErr != nil {
		return solveErr
	}

	// Half-step 2: implicit in y (solve along rows), explicit in x.
	parallelFor(nx, func(lo, hi int) {
		a := make([]float64, ny)
		b := make([]float64, ny)
		c := make([]float64, ny)
		d := make([]float64, ny)
		for i := lo; i < hi; i++ {
			for j := 0; j < ny; j++ {
				a[j], b[j], c[j] = -r, 1+2*r, -r
				d[j] = half.At(i, j) + r*(half.At(i-1, j)-2*half.At(i, j)+half.At(i+1, j))
			}
			if err := ThomasSolve(a, b, c, d); err != nil {
				solveErr = err
				return
			}
			for j := 0; j < ny; j++ {
				u.Set(i, j, d[j])
			}
		}
	})
	return solveErr
}

// ADIStepFlops returns the FLOPs of one ADI timestep on an nx x ny grid:
// two sweeps of (rhs assembly ~6 + Thomas ~8) per cell.
func ADIStepFlops(nx, ny int) float64 {
	return 2 * 14 * float64(nx) * float64(ny)
}
