package kernels

import (
	"errors"
	"math"
)

// Operator is a linear operator y = A(x), the abstraction the CG solver
// needs: tealeaf's implicit heat-conduction matrices and NPB cg's sparse
// matrix both implement it.
type Operator interface {
	Apply(dst, src []float64)
	Len() int
}

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	Iterations int
	Residual   float64
}

// ConjugateGradient solves A x = b for symmetric positive definite A,
// starting from x (modified in place), until the residual norm falls
// below tol*||b|| or maxIter iterations. This is the solver inside the
// tealeaf heat-conduction benchmarks.
func ConjugateGradient(a Operator, x, b []float64, tol float64, maxIter int) (CGResult, error) {
	n := a.Len()
	if len(x) != n || len(b) != n {
		return CGResult{}, errors.New("kernels: CG dimension mismatch")
	}
	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	a.Apply(ap, x)
	for i := range r {
		r[i] = b[i] - ap[i]
		p[i] = r[i]
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	rr := Dot(r, r)
	for it := 1; it <= maxIter; it++ {
		a.Apply(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 {
			return CGResult{Iterations: it, Residual: math.Sqrt(rr) / bnorm},
				errors.New("kernels: operator not positive definite")
		}
		alpha := rr / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		rrNew := Dot(r, r)
		if math.Sqrt(rrNew)/bnorm < tol {
			return CGResult{Iterations: it, Residual: math.Sqrt(rrNew) / bnorm}, nil
		}
		beta := rrNew / rr
		// Search-direction update p = r + beta*p: a stream triad with the
		// destination aliasing c, dispatched through the compute backend.
		backend().Triad(p, r, p, beta)
		rr = rrNew
	}
	return CGResult{Iterations: maxIter, Residual: math.Sqrt(rr) / bnorm}, nil
}

// HeatOperator2D is the implicit operator (I + dt/h^2 * L) of the
// backward-Euler linear heat conduction equation tealeaf2d solves, on an
// nx x ny grid with conduction coefficient folded into tau = dt/h^2.
type HeatOperator2D struct {
	NX, NY int
	Tau    float64
}

// Len returns the vector length nx*ny.
func (h *HeatOperator2D) Len() int { return h.NX * h.NY }

// Apply computes dst = (I + tau*L) src with the 5-point Laplacian and
// homogeneous Dirichlet boundaries, rows in parallel.
func (h *HeatOperator2D) Apply(dst, src []float64) {
	nx, ny, tau := h.NX, h.NY, h.Tau
	at := func(i, j int) float64 {
		if i < 0 || i >= nx || j < 0 || j >= ny {
			return 0
		}
		return src[i*ny+j]
	}
	parallelFor(nx, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < ny; j++ {
				c := src[i*ny+j]
				lap := 4*c - at(i-1, j) - at(i+1, j) - at(i, j-1) - at(i, j+1)
				dst[i*ny+j] = c + tau*lap
			}
		}
	})
}

// HeatOperator3D is the 3D analogue (7-point stencil) used by tealeaf3d.
type HeatOperator3D struct {
	NX, NY, NZ int
	Tau        float64
}

// Len returns nx*ny*nz.
func (h *HeatOperator3D) Len() int { return h.NX * h.NY * h.NZ }

// Apply computes dst = (I + tau*L) src with the 7-point Laplacian.
func (h *HeatOperator3D) Apply(dst, src []float64) {
	nx, ny, nz, tau := h.NX, h.NY, h.NZ, h.Tau
	at := func(i, j, k int) float64 {
		if i < 0 || i >= nx || j < 0 || j >= ny || k < 0 || k >= nz {
			return 0
		}
		return src[(i*ny+j)*nz+k]
	}
	parallelFor(nx, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < ny; j++ {
				for k := 0; k < nz; k++ {
					c := src[(i*ny+j)*nz+k]
					lap := 6*c - at(i-1, j, k) - at(i+1, j, k) -
						at(i, j-1, k) - at(i, j+1, k) - at(i, j, k-1) - at(i, j, k+1)
					dst[(i*ny+j)*nz+k] = c + tau*lap
				}
			}
		}
	})
}

// CSR is a compressed-sparse-row matrix, the structure of NPB cg's
// random sparse SPD matrix.
type CSR struct {
	N      int
	RowPtr []int
	Col    []int
	Val    []float64
}

// Len returns the dimension.
func (m *CSR) Len() int { return m.N }

// Apply computes dst = M src (parallel SpMV).
func (m *CSR) Apply(dst, src []float64) {
	parallelFor(m.N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			for idx := m.RowPtr[i]; idx < m.RowPtr[i+1]; idx++ {
				s += m.Val[idx] * src[m.Col[idx]]
			}
			dst[i] = s
		}
	})
}

// RandomSPD builds a random sparse symmetric positive-definite CSR matrix
// of order n with about nnzPerRow off-diagonal entries per row, using a
// deterministic LCG (seeded like NPB's pseudo-random generator).
func RandomSPD(n, nnzPerRow int, seed uint64) *CSR {
	type entry struct {
		col int
		val float64
	}
	rows := make([][]entry, n)
	lcg := seed | 1
	next := func() uint64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return lcg
	}
	for i := 0; i < n; i++ {
		seen := map[int]bool{i: true}
		for k := 0; k < nnzPerRow; k++ {
			j := int(next() % uint64(n))
			if seen[j] {
				continue
			}
			seen[j] = true
			v := float64(next()%1000)/1000.0 - 0.5
			rows[i] = append(rows[i], entry{j, v})
			rows[j] = append(rows[j], entry{i, v}) // keep symmetry
		}
	}
	csr := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		// Diagonal dominance guarantees SPD.
		diag := 1.0
		for _, e := range rows[i] {
			diag += math.Abs(e.val)
		}
		csr.RowPtr[i+1] = csr.RowPtr[i] + len(rows[i]) + 1
		csr.Col = append(csr.Col, i)
		csr.Val = append(csr.Val, diag)
		for _, e := range rows[i] {
			csr.Col = append(csr.Col, e.col)
			csr.Val = append(csr.Val, e.val)
		}
	}
	return csr
}

// CGIterationFlops returns the FLOPs of one CG iteration on n unknowns
// with an operator costing opFlopsPerRow per row: one operator apply, two
// dots, three axpy-likes.
func CGIterationFlops(n int, opFlopsPerRow float64) float64 {
	fn := float64(n)
	return fn*opFlopsPerRow + 2*2*fn + 3*2*fn
}
