package kernels_test

import (
	"fmt"

	"clustersoc/internal/kernels"
)

// Factor and solve a small system — the core of the hpl benchmark.
func ExampleFactor() {
	a := kernels.NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 3)
	a.Set(1, 0, 6)
	a.Set(1, 1, 3)
	lu, err := kernels.Factor(a)
	if err != nil {
		fmt.Println(err)
		return
	}
	x, err := lu.Solve([]float64{10, 12})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("x = [%.0f %.0f]\n", x[0], x[1])
	fmt.Printf("scaled residual %.2g < 16: %v\n",
		kernels.Residual(a, x, []float64{10, 12}),
		kernels.Residual(a, x, []float64{10, 12}) < 16)
	// Output:
	// x = [1 2]
	// scaled residual 0 < 16: true
}

// Solve tealeaf's implicit heat system with conjugate gradients.
func ExampleConjugateGradient() {
	op := &kernels.HeatOperator2D{NX: 8, NY: 8, Tau: 0.25}
	b := make([]float64, op.Len())
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, op.Len())
	res, err := kernels.ConjugateGradient(op, x, b, 1e-10, 200)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("converged in under %d iterations: %v\n", 50, res.Iterations < 50)
	fmt.Printf("residual below tolerance: %v\n", res.Residual <= 1e-10)
	// Output:
	// converged in under 50 iterations: true
	// residual below tolerance: true
}

// The Thomas algorithm solves bt/sp's tridiagonal systems in O(n).
func ExampleThomasSolve() {
	a := []float64{0, -1, -1}
	b := []float64{2, 2, 2}
	c := []float64{-1, -1, 0}
	d := []float64{1, 0, 1}
	if err := kernels.ThomasSolve(a, b, c, d); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("x = [%.1f %.1f %.1f]\n", d[0], d[1], d[2])
	// Output:
	// x = [1.0 1.0 1.0]
}
