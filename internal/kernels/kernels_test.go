package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulIdentity(t *testing.T) {
	n := 8
	a := NewMatrix(n, n)
	id := NewMatrix(n, n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.Float64())
		}
	}
	c, err := MatMul(a, id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if math.Abs(c.Data[i]-a.Data[i]) > 1e-12 {
			t.Fatal("A*I != A")
		}
	}
	if _, err := MatMul(a, NewMatrix(n+1, n)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestMatVecMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewMatrix(5, 7)
	x := make([]float64, 7)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := NewMatrix(7, 1)
	copy(b.Data, x)
	viaMul, _ := MatMul(a, b)
	viaVec, err := MatVec(a, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range viaVec {
		if math.Abs(viaVec[i]-viaMul.Data[i]) > 1e-12 {
			t.Fatal("MatVec disagrees with MatMul")
		}
	}
}

// Property: LU reconstructs the original matrix and solves systems.
func TestLUReconstructProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(seed%5+5)%5
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance: well-conditioned
		}
		lu, err := Factor(a)
		if err != nil {
			return false
		}
		rec := lu.Reconstruct()
		for i := range a.Data {
			if math.Abs(rec.Data[i]-a.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLUSolveResidual(t *testing.T) {
	n := 64
	rng := rand.New(rand.NewSource(3))
	a := NewMatrix(n, n)
	b := make([]float64, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
		a.Set(i, i, a.At(i, i)+10)
	}
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := lu.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, x, b); r > 16 {
		t.Fatalf("hpl-scaled residual = %v, want < 16", r)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(3, 3) // all zeros
	if _, err := Factor(a); err == nil {
		t.Fatal("expected singularity error")
	}
}

func TestHPLFlopCounts(t *testing.T) {
	if HPLFlops(1000) < 6.6e8 || HPLFlops(1000) > 6.7e8 {
		t.Errorf("HPLFlops(1000) = %v", HPLFlops(1000))
	}
	// Sum of trailing updates + panels approximates the total.
	n, nb := 512, 32
	total := 0.0
	for k := 0; k < n; k += nb {
		total += HPLTrailingFlops(n, k, nb)
	}
	if total > HPLFlops(n) || total < 0.5*HPLFlops(n) {
		t.Errorf("trailing updates sum %v vs total %v", total, HPLFlops(n))
	}
}

func TestJacobiSolvesPoisson(t *testing.T) {
	// -lap(u) = f with u* = sin(pi x) sin(pi y), f = 2 pi^2 u*.
	n := 32
	h := 1.0 / float64(n+1)
	f := NewGrid2D(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x, y := float64(i+1)*h, float64(j+1)*h
			f.Set(i, j, 2*math.Pi*math.Pi*math.Sin(math.Pi*x)*math.Sin(math.Pi*y))
		}
	}
	u, iters := SolveJacobi(f, h, 1e-8, 20000)
	if iters >= 20000 {
		t.Fatal("Jacobi did not converge")
	}
	worst := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x, y := float64(i+1)*h, float64(j+1)*h
			want := math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
			if d := math.Abs(u.At(i, j) - want); d > worst {
				worst = d
			}
		}
	}
	if worst > 5e-3 { // second-order discretization error at n=32
		t.Fatalf("max error vs analytic solution = %v", worst)
	}
}

func TestMultigridBeatsJacobi(t *testing.T) {
	n := 63 // vertex-centered MG wants 2^k - 1 interior points
	h := 1.0 / float64(n+1)
	f := NewGrid2D(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			f.Set(i, j, 1)
		}
	}
	u, cycles := MGSolve(f, h, 1e-6, 60)
	if cycles >= 60 {
		t.Fatalf("multigrid did not converge (res %v)", PoissonResidual(u, f, h))
	}
	if r := PoissonResidual(u, f, h); r > 1e-6 {
		t.Fatalf("multigrid residual %v", r)
	}
	// Jacobi needs orders of magnitude more sweeps for the same target;
	// check it has not converged after the same count of fine-grid sweeps.
	uj := NewGrid2D(n, n)
	vj := NewGrid2D(n, n)
	for s := 0; s < cycles*4; s++ {
		JacobiStep(vj, uj, f, h)
		uj, vj = vj, uj
	}
	if PoissonResidual(uj, f, h) < 1e-6 {
		t.Error("plain Jacobi unexpectedly matched multigrid in the same work")
	}
}

func TestCGHeat2D(t *testing.T) {
	op := &HeatOperator2D{NX: 24, NY: 24, Tau: 0.3}
	n := op.Len()
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	res, err := ConjugateGradient(op, x, b, 1e-10, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-10 {
		t.Fatalf("CG residual = %v after %d iters", res.Residual, res.Iterations)
	}
	// Verify against a direct operator application.
	ax := make([]float64, n)
	op.Apply(ax, x)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-7 {
			t.Fatalf("CG solution check failed at %d: %v", i, ax[i]-b[i])
		}
	}
}

func TestCGHeat3D(t *testing.T) {
	op := &HeatOperator3D{NX: 8, NY: 8, NZ: 8, Tau: 0.2}
	n := op.Len()
	b := make([]float64, n)
	x := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	res, err := ConjugateGradient(op, x, b, 1e-9, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-9 {
		t.Fatalf("3D CG residual = %v", res.Residual)
	}
}

func TestCGRandomSPD(t *testing.T) {
	m := RandomSPD(200, 6, 12345)
	n := m.Len()
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	x := make([]float64, n)
	res, err := ConjugateGradient(m, x, b, 1e-9, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-9 {
		t.Fatalf("sparse CG residual = %v", res.Residual)
	}
}

func TestCSRSymmetric(t *testing.T) {
	m := RandomSPD(50, 4, 99)
	// Check symmetry by applying to basis-ish vectors.
	x := make([]float64, m.N)
	y := make([]float64, m.N)
	ax := make([]float64, m.N)
	ay := make([]float64, m.N)
	rng := rand.New(rand.NewSource(5))
	for i := range x {
		x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	m.Apply(ax, x)
	m.Apply(ay, y)
	if d := Dot(ax, y) - Dot(x, ay); math.Abs(d) > 1e-9 {
		t.Fatalf("matrix not symmetric: <Ax,y>-<x,Ay> = %v", d)
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (uint(seed%5+5)%5 + 3) // 8..128
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if FFT(x, false) != nil || FFT(x, true) != nil {
			return false
		}
		for i := range x {
			if math.Abs(real(x[i]-orig[i])) > 1e-9 || math.Abs(imag(x[i]-orig[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTDelta(t *testing.T) {
	n := 16
	x := make([]complex128, n)
	x[0] = 1
	if err := FFT(x, false); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(real(x[i])-1) > 1e-12 || math.Abs(imag(x[i])) > 1e-12 {
			t.Fatalf("delta transform not flat at %d: %v", i, x[i])
		}
	}
	if err := FFT(make([]complex128, 12), false); err == nil {
		t.Fatal("expected power-of-two error")
	}
}

func TestFFT2DRoundTrip(t *testing.T) {
	nx, ny := 16, 32
	data := make([]complex128, nx*ny)
	orig := make([]complex128, nx*ny)
	rng := rand.New(rand.NewSource(8))
	for i := range data {
		data[i] = complex(rng.NormFloat64(), 0)
		orig[i] = data[i]
	}
	if err := FFT2D(data, nx, ny, false); err != nil {
		t.Fatal(err)
	}
	if err := FFT2D(data, nx, ny, true); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(real(data[i]-orig[i])) > 1e-9 {
			t.Fatal("2D round trip failed")
		}
	}
}

func TestBucketSortProperty(t *testing.T) {
	f := func(raw []uint16, b uint8) bool {
		keys := make([]int32, len(raw))
		for i, r := range raw {
			keys[i] = int32(r % 1000)
		}
		before := KeyHistogram(keys)
		out := BucketSort(keys, 1000, int(b%8)+1)
		if len(out) != len(keys) || !IsSorted(out) {
			return false
		}
		after := KeyHistogram(out)
		if len(before) != len(after) {
			return false
		}
		for k, v := range before {
			if after[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNPBRandomRange(t *testing.T) {
	r := NewNPBRandom(314159265)
	for i := 0; i < 10000; i++ {
		v := r.Next()
		if v <= 0 || v >= 1 {
			t.Fatalf("deviate %v out of (0,1) at step %d", v, i)
		}
	}
	// Determinism.
	a, b := NewNPBRandom(77), NewNPBRandom(77)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestEPStatistics(t *testing.T) {
	res := EmbarrassinglyParallel(200000, 314159265)
	var sum int64
	for _, c := range res.Counts {
		sum += c
	}
	if sum != res.Pairs {
		t.Fatalf("annulus counts %d != pairs %d", sum, res.Pairs)
	}
	// Acceptance of the polar method is pi/4.
	accept := float64(res.Pairs) / 200000
	if math.Abs(accept-math.Pi/4) > 0.01 {
		t.Fatalf("acceptance %v, want ~pi/4", accept)
	}
	// Gaussian deviates have near-zero mean.
	if math.Abs(res.SumX/float64(res.Pairs)) > 0.02 {
		t.Errorf("mean X = %v", res.SumX/float64(res.Pairs))
	}
	// Merge is the correct reduction.
	half1 := EmbarrassinglyParallel(1000, 1)
	half2 := EmbarrassinglyParallel(1000, 2)
	merged := half1.Merge(half2)
	if merged.Pairs != half1.Pairs+half2.Pairs {
		t.Error("merge lost pairs")
	}
}

func TestEulerQuiescentStaysQuiescent(t *testing.T) {
	s := NewEulerState(16, 16)
	m0, e0 := s.TotalMass(), s.TotalEnergy()
	for step := 0; step < 5; step++ {
		s.Step(0.01, 1.0/16)
	}
	if math.Abs(s.TotalMass()-m0)/m0 > 1e-12 {
		t.Fatalf("quiescent mass drifted: %v -> %v", m0, s.TotalMass())
	}
	if math.Abs(s.TotalEnergy()-e0)/e0 > 1e-12 {
		t.Fatal("quiescent energy drifted")
	}
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if math.Abs(s.MomX.At(i, j)) > 1e-12 {
				t.Fatal("quiescent gas started moving")
			}
		}
	}
}

func TestEulerBlastConservesMassInterior(t *testing.T) {
	n := 32
	s := NewEulerState(n, n)
	// Central overpressure region.
	for i := n/2 - 2; i < n/2+2; i++ {
		for j := n/2 - 2; j < n/2+2; j++ {
			s.Energy.Set(i, j, 10/(s.Gamma-1))
		}
	}
	m0 := s.TotalMass()
	h := 1.0 / float64(n)
	tEnd, tAcc := 0.02, 0.0
	for tAcc < tEnd {
		dt := s.Step(0.005, h)
		if dt <= 0 {
			t.Fatal("timestep collapsed")
		}
		tAcc += dt
	}
	// Before the wave reaches the boundary, mass is conserved.
	if math.Abs(s.TotalMass()-m0)/m0 > 1e-6 {
		t.Fatalf("mass drifted %v -> %v", m0, s.TotalMass())
	}
	// The blast must actually move gas.
	moving := false
	for i := 0; i < n && !moving; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(s.MomX.At(i, j)) > 1e-6 {
				moving = true
				break
			}
		}
	}
	if !moving {
		t.Fatal("blast produced no motion")
	}
}

func TestCountHelpersPositive(t *testing.T) {
	if JacobiSweepFlops(100, 100) <= 0 || JacobiSweepBytes(100, 100) <= 0 {
		t.Error("jacobi counts")
	}
	if FFTFlops(1024) <= 0 || FFTFlops(1) != 0 {
		t.Error("fft counts")
	}
	if MGVCycleFlops(256, 2, 2) <= 0 {
		t.Error("mg counts")
	}
	if CGIterationFlops(1000, 10) <= 0 {
		t.Error("cg counts")
	}
	if MatMulFlops(2, 3, 4) != 48 {
		t.Error("matmul flops")
	}
	if HaloBytes2D(128) != 1024 {
		t.Error("halo bytes")
	}
}

// Blocked matmul must match the naive product for awkward shapes and any
// block size.
func TestMatMulBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := NewMatrix(37, 23)
	b := NewMatrix(23, 41)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	want, _ := MatMul(a, b)
	for _, bs := range []int{1, 7, 16, 64, 100} {
		got, err := MatMulBlocked(a, b, bs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("bs=%d: element %d differs", bs, i)
			}
		}
	}
	if _, err := MatMulBlocked(a, NewMatrix(5, 5), 16); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestGEMMOperationalIntensityGrowsWithBlock(t *testing.T) {
	if GEMMOperationalIntensity(64) <= GEMMOperationalIntensity(8) {
		t.Fatal("bigger tiles must raise OI")
	}
	// The TX1's 256 KB GPU L2 fits ~100x100 tiles; the resulting OI ~ 8
	// explains why hpl cannot reach GEMM's textbook intensity there.
	if oi := GEMMOperationalIntensity(100); oi < 4 || oi > 16 {
		t.Fatalf("OI(100) = %v, want single digits", oi)
	}
}

// Non-positive block sizes are caller bugs (they would silently change
// the modeled operational intensity) and must be rejected, not
// defaulted.
func TestMatMulBlockedRejectsBadBlockSize(t *testing.T) {
	a := NewMatrix(4, 4)
	b := NewMatrix(4, 4)
	cases := []struct {
		bs      int
		wantErr bool
	}{
		{-64, true},
		{-1, true},
		{0, true},
		{1, false},
		{64, false},
	}
	for _, tc := range cases {
		c, err := MatMulBlocked(a, b, tc.bs)
		if tc.wantErr {
			if err == nil {
				t.Errorf("bs=%d: accepted", tc.bs)
			} else if err.Error() != "kernels: block size must be positive" {
				t.Errorf("bs=%d: unexpected error %q", tc.bs, err)
			}
			if c != nil {
				t.Errorf("bs=%d: non-nil result with error", tc.bs)
			}
			continue
		}
		if err != nil {
			t.Errorf("bs=%d: rejected: %v", tc.bs, err)
		}
	}
}
