package kernels

import "time"

// This file implements the STREAM benchmark (McCalpin) the paper uses to
// measure each system's memory bandwidth: Copy, Scale, Add, and Triad
// over arrays sized well beyond any cache. The measured Triad rate is
// what calibrates the soc configs' MemBandwidth fields.

// StreamResult reports one STREAM kernel's measured bandwidth.
type StreamResult struct {
	Name     string
	Bytes    float64 // bytes moved per iteration
	Seconds  float64 // best time over the trials
	BytesPer float64 // bytes/second
}

// StreamCopy runs c = a.
func StreamCopy(a, c []float64) {
	parallelFor(len(a), func(lo, hi int) {
		copy(c[lo:hi], a[lo:hi])
	})
}

// StreamScale runs b = s*c.
func StreamScale(b, c []float64, s float64) {
	parallelFor(len(b), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b[i] = s * c[i]
		}
	})
}

// StreamAdd runs c = a + b.
func StreamAdd(a, b, c []float64) {
	parallelFor(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c[i] = a[i] + b[i]
		}
	})
}

// StreamTriad runs a = b + s*c — the headline STREAM kernel, dispatched
// through the compute backend.
func StreamTriad(a, b, c []float64, s float64) {
	backend().Triad(a, b, c, s)
}

// RunStream measures all four kernels over arrays of n doubles with the
// given number of trials (best-of, per STREAM convention) and returns the
// results in the canonical order.
func RunStream(n, trials int) []StreamResult {
	if n < 1 {
		n = 1
	}
	if trials < 1 {
		trials = 1
	}
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = 1
		b[i] = 2
		c[i] = 0.5
	}
	fn := float64(n)
	cases := []struct {
		name  string
		bytes float64
		run   func()
	}{
		{"Copy", 2 * 8 * fn, func() { StreamCopy(a, c) }},
		{"Scale", 2 * 8 * fn, func() { StreamScale(b, c, 3.0) }},
		{"Add", 3 * 8 * fn, func() { StreamAdd(a, b, c) }},
		{"Triad", 3 * 8 * fn, func() { StreamTriad(a, b, c, 3.0) }},
	}
	out := make([]StreamResult, 0, len(cases))
	for _, cse := range cases {
		best := 0.0
		for t := 0; t < trials; t++ {
			start := time.Now()
			cse.run()
			dur := time.Since(start).Seconds()
			if best == 0 || dur < best {
				best = dur
			}
		}
		r := StreamResult{Name: cse.name, Bytes: cse.bytes, Seconds: best}
		if best > 0 {
			r.BytesPer = cse.bytes / best
		}
		out = append(out, r)
	}
	return out
}
