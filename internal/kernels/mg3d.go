package kernels

// 3D geometric multigrid for -lap(u) = f on the unit cube — the actual
// dimensionality of NPB mg (the 2D V-cycle in mg.go exists for the
// jacobi-family tests). Vertex-centered grids with Dirichlet halos,
// interiors of (2^k - 1) points per side.

// Grid3D is a dense 3D field with one-cell halos, (n+2)^3 points.
type Grid3D struct {
	NX, NY, NZ int
	Data       []float64
}

// NewGrid3D allocates an nx x ny x nz interior.
func NewGrid3D(nx, ny, nz int) *Grid3D {
	return &Grid3D{NX: nx, NY: ny, NZ: nz, Data: make([]float64, (nx+2)*(ny+2)*(nz+2))}
}

func (g *Grid3D) idx(i, j, k int) int {
	return ((i+1)*(g.NY+2)+(j+1))*(g.NZ+2) + (k + 1)
}

// At reads interior/halo point (i,j,k); -1 and N reach the halo.
func (g *Grid3D) At(i, j, k int) float64 { return g.Data[g.idx(i, j, k)] }

// Set writes point (i,j,k).
func (g *Grid3D) Set(i, j, k int, v float64) { g.Data[g.idx(i, j, k)] = v }

// DampedJacobi3D performs one weighted-Jacobi sweep for the 7-point
// Laplacian: dst = (1-w)src + w*jacobi(src).
func DampedJacobi3D(dst, src, f *Grid3D, h, omega float64) {
	nx, ny, nz := src.NX, src.NY, src.NZ
	parallelFor(nx, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < ny; j++ {
				for k := 0; k < nz; k++ {
					v := (src.At(i-1, j, k) + src.At(i+1, j, k) +
						src.At(i, j-1, k) + src.At(i, j+1, k) +
						src.At(i, j, k-1) + src.At(i, j, k+1) +
						h*h*f.At(i, j, k)) / 6
					dst.Set(i, j, k, (1-omega)*src.At(i, j, k)+omega*v)
				}
			}
		}
	})
}

// Residual3D returns ||f + lap(u)||_inf on the interior.
func Residual3D(u, f *Grid3D, h float64) float64 {
	max := 0.0
	for i := 0; i < u.NX; i++ {
		for j := 0; j < u.NY; j++ {
			for k := 0; k < u.NZ; k++ {
				lap := (u.At(i-1, j, k) + u.At(i+1, j, k) +
					u.At(i, j-1, k) + u.At(i, j+1, k) +
					u.At(i, j, k-1) + u.At(i, j, k+1) - 6*u.At(i, j, k)) / (h * h)
				r := f.At(i, j, k) + lap
				if r < 0 {
					r = -r
				}
				if r > max {
					max = r
				}
			}
		}
	}
	return max
}

// residual3D computes r = f + lap(u).
func residual3D(u, f *Grid3D, h float64) *Grid3D {
	r := NewGrid3D(u.NX, u.NY, u.NZ)
	parallelFor(u.NX, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < u.NY; j++ {
				for k := 0; k < u.NZ; k++ {
					lap := (u.At(i-1, j, k) + u.At(i+1, j, k) +
						u.At(i, j-1, k) + u.At(i, j+1, k) +
						u.At(i, j, k-1) + u.At(i, j, k+1) - 6*u.At(i, j, k)) / (h * h)
					r.Set(i, j, k, f.At(i, j, k)+lap)
				}
			}
		}
	})
	return r
}

// Restrict3D coarsens by straight injection at the coincident points
// (coarse (I,J,K) = fine (2I+1, 2J+1, 2K+1)) averaged with the six face
// neighbours — a light full weighting that keeps the operator cheap, as
// NPB mg's restriction does.
func Restrict3D(fine *Grid3D) *Grid3D {
	cx, cy, cz := (fine.NX-1)/2, (fine.NY-1)/2, (fine.NZ-1)/2
	coarse := NewGrid3D(cx, cy, cz)
	for i := 0; i < cx; i++ {
		fi := 2*i + 1
		for j := 0; j < cy; j++ {
			fj := 2*j + 1
			for k := 0; k < cz; k++ {
				fk := 2*k + 1
				s := 6*fine.At(fi, fj, fk) +
					fine.At(fi-1, fj, fk) + fine.At(fi+1, fj, fk) +
					fine.At(fi, fj-1, fk) + fine.At(fi, fj+1, fk) +
					fine.At(fi, fj, fk-1) + fine.At(fi, fj, fk+1)
				coarse.Set(i, j, k, s/12)
			}
		}
	}
	return coarse
}

// Prolongate3D interpolates trilinearly up to an (nx,ny,nz) interior.
func Prolongate3D(coarse *Grid3D, nx, ny, nz int) *Grid3D {
	fine := NewGrid3D(nx, ny, nz)
	// Each fine point interpolates from the 1, 2, 4, or 8 nearest coarse
	// points depending on the parity of its coordinates.
	cAt := func(i, j, k int) float64 { return coarse.At(i, j, k) }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				var sum float64
				var cnt int
				iLo, iHi := neighborRange(i)
				jLo, jHi := neighborRange(j)
				kLo, kHi := neighborRange(k)
				for ci := iLo; ci <= iHi; ci++ {
					for cj := jLo; cj <= jHi; cj++ {
						for ck := kLo; ck <= kHi; ck++ {
							sum += cAt(ci, cj, ck)
							cnt++
						}
					}
				}
				fine.Set(i, j, k, sum/float64(cnt))
			}
		}
	}
	return fine
}

// neighborRange returns the coarse indices a fine coordinate interpolates
// between: odd coordinates coincide with one coarse point, even ones sit
// between two (halo zeros supply the boundary).
func neighborRange(i int) (int, int) {
	if i%2 == 1 {
		c := (i - 1) / 2
		return c, c
	}
	return i/2 - 1, i / 2
}

// VCycle3D performs one 3D V-cycle with pre/post damped-Jacobi smoothing.
func VCycle3D(u, f *Grid3D, h float64, pre, post int) {
	if u.NX < 7 || u.NX%2 == 0 {
		tmp := NewGrid3D(u.NX, u.NY, u.NZ)
		for s := 0; s < 30; s++ {
			DampedJacobi3D(tmp, u, f, h, 0.85)
			u.Data, tmp.Data = tmp.Data, u.Data
		}
		return
	}
	tmp := NewGrid3D(u.NX, u.NY, u.NZ)
	for s := 0; s < pre; s++ {
		DampedJacobi3D(tmp, u, f, h, 0.85)
		u.Data, tmp.Data = tmp.Data, u.Data
	}
	rc := Restrict3D(residual3D(u, f, h))
	ec := NewGrid3D(rc.NX, rc.NY, rc.NZ)
	VCycle3D(ec, rc, 2*h, pre, post)
	e := Prolongate3D(ec, u.NX, u.NY, u.NZ)
	for i := 0; i < u.NX; i++ {
		for j := 0; j < u.NY; j++ {
			for k := 0; k < u.NZ; k++ {
				u.Set(i, j, k, u.At(i, j, k)+e.At(i, j, k))
			}
		}
	}
	for s := 0; s < post; s++ {
		DampedJacobi3D(tmp, u, f, h, 0.85)
		u.Data, tmp.Data = tmp.Data, u.Data
	}
}

// MGSolve3D runs V-cycles to tolerance; the interior must be 2^k - 1 per
// side.
func MGSolve3D(f *Grid3D, h, tol float64, maxCycles int) (*Grid3D, int) {
	u := NewGrid3D(f.NX, f.NY, f.NZ)
	for c := 1; c <= maxCycles; c++ {
		VCycle3D(u, f, h, 2, 2)
		if Residual3D(u, f, h) < tol {
			return u, c
		}
	}
	return u, maxCycles
}
