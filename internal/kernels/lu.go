package kernels

import (
	"errors"
	"math"
)

// LU holds an in-place LU factorization with partial pivoting: the strict
// lower triangle stores L (unit diagonal implied), the upper triangle U,
// and Piv the row permutation. This is the factorization at the heart of
// hpl (High Performance Linpack), which solves Ax=b.
type LU struct {
	A   *Matrix
	Piv []int
}

// Factor computes the LU factorization of a copy of a. It fails on
// (numerically) singular matrices.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("kernels: LU needs a square matrix")
	}
	n := a.Rows
	m := a.Clone()
	piv := make([]int, n)
	lcol := make([]float64, n) // scratch: the gathered multiplier column
	for k := 0; k < n; k++ {
		// Partial pivoting: largest magnitude in column k.
		p := k
		max := math.Abs(m.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(m.At(i, k)); v > max {
				max, p = v, i
			}
		}
		if max < 1e-300 {
			return nil, errors.New("kernels: singular matrix in LU")
		}
		piv[k] = p
		if p != k {
			rk := m.Data[k*n : (k+1)*n]
			rp := m.Data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		pivot := m.At(k, k)
		// Panel: scale column k below the diagonal.
		for i := k + 1; i < n; i++ {
			m.Set(i, k, m.At(i, k)/pivot)
		}
		// Trailing update (the DGEMM-shaped bulk hpl offloads to the GPU):
		// a rank-1 update A' -= l ⊗ rowK dispatched through the compute
		// backend. alpha = -1 makes the backend's += alpha*x[i]*y[j]
		// bitwise the seed's row[j] -= l*rowK[j].
		if k+1 < n {
			for i := k + 1; i < n; i++ {
				lcol[i-k-1] = m.At(i, k)
			}
			backend().Ger(-1, lcol[:n-k-1], m.Data[k*n+k+1:(k+1)*n],
				m.Data[(k+1)*n+k+1:], n)
		}
	}
	return &LU{A: m, Piv: piv}, nil
}

// Solve solves Ax=b given the factorization.
func (lu *LU) Solve(b []float64) ([]float64, error) {
	n := lu.A.Rows
	if len(b) != n {
		return nil, errors.New("kernels: rhs length mismatch")
	}
	x := append([]float64(nil), b...)
	// Apply the pivots.
	for k := 0; k < n; k++ {
		if p := lu.Piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit L.
	for i := 1; i < n; i++ {
		s := x[i]
		row := lu.A.Data[i*n : i*n+i]
		for j, v := range row {
			s -= v * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := lu.A.Data[i*n : (i+1)*n]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// Reconstruct returns P^T*L*U, which must equal the original matrix —
// the property test for the factorization.
func (lu *LU) Reconstruct() *Matrix {
	n := lu.A.Rows
	out := NewMatrix(n, n)
	// out = L*U from the packed factors.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			kmax := i
			if j < kmax {
				kmax = j
			}
			for k := 0; k < kmax; k++ {
				s += lu.A.At(i, k) * lu.A.At(k, j)
			}
			if i <= j {
				s += lu.A.At(i, j) // unit diagonal of L times U(i,j)
			} else {
				s += lu.A.At(i, j) * lu.A.At(j, j)
			}
			out.Set(i, j, s)
		}
	}
	// Undo the pivoting (apply swaps in reverse).
	for k := n - 1; k >= 0; k-- {
		if p := lu.Piv[k]; p != k {
			rk := out.Data[k*n : (k+1)*n]
			rp := out.Data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
	}
	return out
}

// HPLFlops returns the canonical FLOP count credited to an hpl run of
// order n: 2/3 n^3 + 2 n^2.
func HPLFlops(n int) float64 {
	fn := float64(n)
	return 2.0/3.0*fn*fn*fn + 2*fn*fn
}

// HPLPanelBytes returns the bytes a panel broadcast moves at elimination
// step k with block size nb in an n-order problem (the column panel below
// the diagonal).
func HPLPanelBytes(n, k, nb int) float64 {
	rows := n - k
	if rows < 0 {
		rows = 0
	}
	return float64(rows) * float64(nb) * 8
}

// HPLTrailingFlops returns the FLOPs of the trailing DGEMM update at step
// k with block size nb.
func HPLTrailingFlops(n, k, nb int) float64 {
	rem := float64(n - k - nb)
	if rem < 0 {
		rem = 0
	}
	return 2 * rem * rem * float64(nb)
}

// Residual returns ||Ax-b||_inf / (||A||_inf * ||x||_inf * n * eps), the
// scaled residual hpl reports; below ~16 counts as a pass.
func Residual(a *Matrix, x, b []float64) float64 {
	n := a.Rows
	rmax := 0.0
	anorm := 0.0
	xnorm := 0.0
	for _, v := range x {
		if math.Abs(v) > xnorm {
			xnorm = math.Abs(v)
		}
	}
	for i := 0; i < n; i++ {
		s := -b[i]
		rowSum := 0.0
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			s += v * x[j]
			rowSum += math.Abs(v)
		}
		if math.Abs(s) > rmax {
			rmax = math.Abs(s)
		}
		if rowSum > anorm {
			anorm = rowSum
		}
	}
	den := anorm * xnorm * float64(n) * 2.220446049250313e-16
	if den == 0 {
		return 0
	}
	return rmax / den
}
