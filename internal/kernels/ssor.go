package kernels

import "sync"

// This file implements the algorithm behind NPB lu: symmetric successive
// over-relaxation (SSOR) with *wavefront* parallelism. A Gauss-Seidel
// sweep has a dependency from cell (i-1,j) and (i,j-1) into (i,j), so
// cells on the same anti-diagonal are independent — the wavefront lu
// pipelines across ranks, and the serialization (Ser) factor the paper's
// scalability analysis observes.

// SSORSweepForward performs one forward Gauss-Seidel/SOR sweep for
// -lap(u) = f with relaxation omega, updating u in place in dependency
// order, parallelized across each anti-diagonal's cells.
func SSORSweepForward(u, f *Grid2D, h, omega float64) {
	nx, ny := u.NX, u.NY
	for d := 0; d < nx+ny-1; d++ {
		lo := 0
		if d >= ny {
			lo = d - ny + 1
		}
		hi := d
		if hi > nx-1 {
			hi = nx - 1
		}
		wavefrontDo(lo, hi, func(i int) {
			j := d - i
			gs := 0.25 * (u.At(i-1, j) + u.At(i+1, j) + u.At(i, j-1) + u.At(i, j+1) + h*h*f.At(i, j))
			u.Set(i, j, (1-omega)*u.At(i, j)+omega*gs)
		})
	}
}

// SSORSweepBackward is the reverse sweep (the "symmetric" half).
func SSORSweepBackward(u, f *Grid2D, h, omega float64) {
	nx, ny := u.NX, u.NY
	for d := nx + ny - 2; d >= 0; d-- {
		lo := 0
		if d >= ny {
			lo = d - ny + 1
		}
		hi := d
		if hi > nx-1 {
			hi = nx - 1
		}
		wavefrontDo(lo, hi, func(i int) {
			j := d - i
			gs := 0.25 * (u.At(i-1, j) + u.At(i+1, j) + u.At(i, j-1) + u.At(i, j+1) + h*h*f.At(i, j))
			u.Set(i, j, (1-omega)*u.At(i, j)+omega*gs)
		})
	}
}

// wavefrontDo runs body(i) for i in [lo,hi] concurrently — every cell on
// one anti-diagonal is independent. Short diagonals run inline; long ones
// split across goroutines.
func wavefrontDo(lo, hi int, body func(i int)) {
	n := hi - lo + 1
	if n <= 0 {
		return
	}
	const grain = 64
	if n < 2*grain {
		for i := lo; i <= hi; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	for s := lo; s <= hi; s += grain {
		e := s + grain - 1
		if e > hi {
			e = hi
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			for i := s; i <= e; i++ {
				body(i)
			}
		}(s, e)
	}
	wg.Wait()
}

// SolveSSOR iterates symmetric sweeps until the residual max-norm falls
// below tol or maxIter sweeps pass.
func SolveSSOR(f *Grid2D, h, omega, tol float64, maxIter int) (*Grid2D, int) {
	u := NewGrid2D(f.NX, f.NY)
	for it := 1; it <= maxIter; it++ {
		SSORSweepForward(u, f, h, omega)
		SSORSweepBackward(u, f, h, omega)
		if PoissonResidual(u, f, h) < tol {
			return u, it
		}
	}
	return u, maxIter
}

// SSORSweepFlops returns the FLOPs of one symmetric (forward+backward)
// sweep: ~8 FLOPs per cell per direction.
func SSORSweepFlops(nx, ny int) float64 {
	return 2 * 8 * float64(nx) * float64(ny)
}
