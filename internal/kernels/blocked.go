package kernels

// Blocked (tiled) matrix multiply — the cache-blocking that separates a
// naive GEMM from an OpenBLAS-grade one, and the reason hpl's trailing
// update has a tunable operational intensity: a BxB tile keeps ~3B^2
// values hot, turning ~2 DRAM touches per FLOP into ~2/B.

// MatMulBlocked computes c = a*b with square tiling (block size bs).
// The block size must be positive: a non-positive bs is a caller bug
// (it would silently change the modeled operational intensity), so it is
// rejected rather than defaulted.
func MatMulBlocked(a, b *Matrix, bs int) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, errDim
	}
	if bs <= 0 {
		return nil, errBlockSize
	}
	c := NewMatrix(a.Rows, b.Cols)
	n, m, k := a.Rows, b.Cols, a.Cols
	// Parallel over row-tiles; each goroutine owns disjoint C rows.
	tiles := (n + bs - 1) / bs
	parallelFor(tiles, func(tlo, thi int) {
		for t := tlo; t < thi; t++ {
			i0 := t * bs
			i1 := i0 + bs
			if i1 > n {
				i1 = n
			}
			for k0 := 0; k0 < k; k0 += bs {
				k1 := k0 + bs
				if k1 > k {
					k1 = k
				}
				for j0 := 0; j0 < m; j0 += bs {
					j1 := j0 + bs
					if j1 > m {
						j1 = m
					}
					for i := i0; i < i1; i++ {
						crow := c.Data[i*m : (i+1)*m]
						for kk := k0; kk < k1; kk++ {
							av := a.Data[i*k+kk]
							if av == 0 {
								continue
							}
							brow := b.Data[kk*m : (kk+1)*m]
							for j := j0; j < j1; j++ {
								crow[j] += av * brow[j]
							}
						}
					}
				}
			}
		}
	})
	return c, nil
}

// errDim is the shared dimension-mismatch error.
var errDim = errDimension{}

type errDimension struct{}

func (errDimension) Error() string { return "kernels: matrix dimension mismatch" }

// ErrBlockSize rejects MatMulBlocked calls with a non-positive tile.
var errBlockSize = errBlock{}

type errBlock struct{}

func (errBlock) Error() string { return "kernels: block size must be positive" }

// GEMMOperationalIntensity returns the DRAM-level FLOP/byte of a blocked
// GEMM with tile size bs on 8-byte values: each tile pass streams ~3
// blocks for 2*bs^3 FLOPs.
func GEMMOperationalIntensity(bs int) float64 {
	if bs < 1 {
		bs = 1
	}
	return 2 * float64(bs) / (3 * 8)
}
