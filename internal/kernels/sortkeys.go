package kernels

import (
	"math"
	"sort"
)

// BucketSort sorts non-negative integer keys < maxKey with the
// bucket-then-count strategy of NPB is: keys are scattered into buckets by
// their high bits (the phase that becomes an all-to-all in the distributed
// version), then each bucket is counting-sorted in parallel.
func BucketSort(keys []int32, maxKey int32, buckets int) []int32 {
	if len(keys) == 0 {
		return nil
	}
	if buckets < 1 {
		buckets = 1
	}
	width := (int(maxKey) + buckets - 1) / buckets
	if width < 1 {
		width = 1
	}
	bins := make([][]int32, buckets)
	for _, k := range keys {
		b := int(k) / width
		if b >= buckets {
			b = buckets - 1
		}
		bins[b] = append(bins[b], k)
	}
	// Sort buckets in parallel (counting sort within each bucket range).
	parallelFor(buckets, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			bin := bins[b]
			if len(bin) == 0 {
				continue
			}
			base := int32(b * width)
			counts := make([]int32, width)
			for _, k := range bin {
				counts[k-base]++
			}
			idx := 0
			for off, c := range counts {
				for ; c > 0; c-- {
					bin[idx] = base + int32(off)
					idx++
				}
			}
		}
	})
	out := make([]int32, 0, len(keys))
	for _, bin := range bins {
		out = append(out, bin...)
	}
	return out
}

// IsSorted reports whether keys are non-decreasing.
func IsSorted(keys []int32) bool {
	return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
}

// KeyHistogram counts occurrences of each key value; sorting must preserve
// it (the permutation property test).
func KeyHistogram(keys []int32) map[int32]int {
	h := make(map[int32]int, len(keys))
	for _, k := range keys {
		h[k]++
	}
	return h
}

// NPBRandomKeys generates n pseudo-random keys in [0, maxKey) with NPB's
// multiplicative LCG (a = 5^13, modulus 2^46), the generator is/ep use.
type NPBRandom struct {
	seed float64
}

// NewNPBRandom seeds the generator (NPB uses 314159265).
func NewNPBRandom(seed float64) *NPBRandom { return &NPBRandom{seed: seed} }

const (
	npbA   = 1220703125.0 // 5^13
	npbR23 = 1.0 / (1 << 23)
	npbT23 = 1 << 23
	npbR46 = 1.0 / (1 << 46)
	npbT46 = 1 << 46
)

// Next returns the next uniform deviate in (0,1) using NPB's randlc: the
// multiplicative LCG x <- a*x mod 2^46 evaluated exactly in float64 by
// splitting both factors into 23-bit halves.
func (r *NPBRandom) Next() float64 {
	a1 := math.Trunc(npbR23 * npbA)
	a2 := npbA - npbT23*a1
	x1 := math.Trunc(npbR23 * r.seed)
	x2 := r.seed - npbT23*x1
	t1 := a1*x2 + a2*x1
	t2 := math.Trunc(npbR23 * t1)
	z := t1 - npbT23*t2
	t3 := npbT23*z + a2*x2
	t4 := math.Trunc(npbR46 * t3)
	r.seed = t3 - npbT46*t4
	return npbR46 * r.seed
}

// Keys draws n keys uniform in [0, maxKey).
func (r *NPBRandom) Keys(n int, maxKey int32) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.Next() * float64(maxKey))
		if out[i] >= maxKey {
			out[i] = maxKey - 1
		}
	}
	return out
}
