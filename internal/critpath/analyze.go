package critpath

import (
	"fmt"
	"math"
	"sort"
)

// Segment is one maximal critical-path interval: the path ran on entity
// Entity (hosted on Node) and its time was charged to Component.
type Segment struct {
	Entity    string  `json:"entity"`
	Node      int     `json:"node"`
	Component string  `json:"component"`
	Start     float64 `json:"start"`
	End       float64 `json:"end"`
}

// LinkSlack aggregates per-message slack over one directed node pair.
// Slack is how long a message's payload sat delivered before its receive
// was posted — the conservative-lookahead headroom of the link. Blocking
// counts messages a receiver was already waiting for (zero slack).
type LinkSlack struct {
	SrcNode   int     `json:"src_node"`
	DstNode   int     `json:"dst_node"`
	Messages  int     `json:"messages"`
	Blocking  int     `json:"blocking"`
	MinSlack  float64 `json:"min_slack_s"`
	MeanSlack float64 `json:"mean_slack_s"`
}

// WhatIf holds the forward-replay makespan bounds.
type WhatIf struct {
	// Replayed is the unmodified replay — a fidelity check that the
	// recorded graph reproduces the observed makespan.
	Replayed float64 `json:"replayed_s"`
	// IdealNetwork zeroes every message cost (queueing, service, latency):
	// the makespan if the interconnect were infinitely fast.
	IdealNetwork float64 `json:"ideal_network_s"`
	// NoStragglers divides stretched compute/kernel spans by their
	// straggler factor: the makespan with degraded nodes healed.
	NoStragglers float64 `json:"no_stragglers_s"`
	// NoDRAMStall removes the memory-stall share of compute and kernel
	// spans: the makespan with an uncontended memory system.
	NoDRAMStall float64 `json:"no_dram_stall_s"`
}

// Report is the analysis result shipped in the *.critpath.json sidecar.
type Report struct {
	Scenario    string  `json:"scenario"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	Makespan    float64 `json:"makespan_s"`
	// Blame charges every second of makespan to one component bucket;
	// values sum to Makespan by construction.
	Blame map[string]float64 `json:"blame_s"`
	// RankSeconds is the aggregate (non-causal) view: total rank-seconds
	// per bucket across all rank timelines, waits counted as mpi-blocked.
	// Values sum to Makespan x ranks.
	RankSeconds map[string]float64 `json:"rank_seconds"`
	WhatIf      WhatIf             `json:"what_if"`
	Links       []LinkSlack        `json:"links,omitempty"`
	// Path is the critical path itself, oldest segment first.
	Path     []Segment `json:"path,omitempty"`
	Entities int       `json:"entities"`
	Spans    int       `json:"spans"`
	Messages int       `json:"messages"`
}

// Analyze extracts the critical path from a finished recording. makespan
// is the run's observed wall time (engine end time); the walk starts
// there and pads any trailing window after the last recorded span (e.g.
// the asynchronous DRAM drain) as idle.
func Analyze(r *Recorder, scenario, fingerprint string, makespan float64) *Report {
	r.seal()
	w := &walker{r: r, idx: make([]int, len(r.ents))}
	for i := range r.ents {
		w.idx[i] = len(r.ents[i].spans) - 1
	}
	w.walk(makespan)

	rep := &Report{
		Scenario:    scenario,
		Fingerprint: fingerprint,
		Makespan:    makespan,
		Blame:       make(map[string]float64, numComponents),
		RankSeconds: rankSeconds(r, makespan),
		WhatIf: WhatIf{
			Replayed:     replay(r, replayOpts{}),
			IdealNetwork: replay(r, replayOpts{idealNet: true}),
			NoStragglers: replay(r, replayOpts{noStragglers: true}),
			NoDRAMStall:  replay(r, replayOpts{noDRAMStall: true}),
		},
		Links:    linkSlack(r),
		Path:     w.segments(),
		Entities: len(r.ents),
		Spans:    r.Spans(),
		Messages: len(r.msgs),
	}
	for c := Component(0); c < numComponents; c++ {
		rep.Blame[c.String()] = w.blame[c]
	}
	return rep
}

// walker runs the backward critical-path traversal. At every moment the
// cursor (entity e, time t) names the activity that had to finish at t
// for the run to finish when it did; processing a span moves the cursor
// earlier, possibly jumping to the sender of the message (or the helper
// behind the gate) whose completion released the entity.
type walker struct {
	r     *Recorder
	idx   []int // per-entity cursor into spans, from the back
	blame [numComponents]float64
	segs  []Segment // appended newest-first, reversed at the end
}

// charge attributes [from, min(hi,t)] on entity e to component c and
// returns the possibly clipped upper bound actually used.
func (w *walker) charge(e int32, c Component, from, to float64) {
	if to <= from {
		return
	}
	w.blame[c] += to - from
	en := &w.r.ents[e]
	// Merge with the previous (later-in-time) segment when contiguous.
	if n := len(w.segs); n > 0 {
		last := &w.segs[n-1]
		if last.Entity == en.name && last.Component == c.String() && last.Start == to {
			last.Start = from
			return
		}
	}
	w.segs = append(w.segs, Segment{
		Entity: en.name, Node: int(en.node), Component: c.String(), Start: from, End: to,
	})
}

// segments returns the path oldest-first.
func (w *walker) segments() []Segment {
	for i, j := 0, len(w.segs)-1; i < j; i, j = i+1, j-1 {
		w.segs[i], w.segs[j] = w.segs[j], w.segs[i]
	}
	return w.segs
}

func (w *walker) walk(makespan float64) {
	r := w.r
	// Start on the entity whose last span finishes latest; ties break on
	// the larger record sequence (the engine's total order).
	e := int32(-1)
	bestEnd, bestSeq := math.Inf(-1), uint64(0)
	for i := range r.ents {
		spans := r.ents[i].spans
		if len(spans) == 0 {
			continue
		}
		last := spans[len(spans)-1]
		if last.end > bestEnd || (last.end == bestEnd && last.seq > bestSeq) {
			e, bestEnd, bestSeq = int32(i), last.end, last.seq
		}
	}
	if e < 0 {
		// Nothing recorded: the whole run is unattributed.
		if makespan > 0 {
			w.blame[CompIdle] += makespan
		}
		return
	}
	t := makespan
	// Every iteration either strictly lowers t or consumes a span/entity,
	// so the walk is bounded by spans + entities (+1 slack per jump).
	maxSteps := 4*r.Spans() + 2*len(r.ents) + 16
	for steps := 0; t > 0; steps++ {
		if steps > maxSteps {
			panic("critpath: backward walk failed to make progress (recording bug)")
		}
		en := &r.ents[e]
		i := w.idx[e]
		for i >= 0 && en.spans[i].start >= t {
			i--
		}
		w.idx[e] = i
		if i < 0 {
			if en.parent >= 0 {
				// An exhausted helper hands the path back to its parent at
				// its spawn time.
				if en.origin < t {
					w.charge(e, CompIdle, en.origin, t)
					t = en.origin
				}
				e = en.parent
				continue
			}
			w.charge(e, CompIdle, 0, t)
			return
		}
		s := &en.spans[i]
		if s.end < t {
			w.charge(e, CompIdle, s.end, t)
			t = s.end
		}
		// Invariant here: s.start < t <= s.end.
		switch s.kind {
		case spanCompute, spanKernel:
			comp := CompCPU
			if s.kind == spanKernel {
				comp = CompGPU
			}
			frac := 1.0
			if s.end > s.start {
				frac = (t - s.start) / (s.end - s.start)
			}
			stall := math.Min(s.stall*frac, t-s.start)
			w.charge(e, comp, s.start+stall, t)
			w.charge(e, CompDRAMStall, s.start, s.start+stall)
			t = s.start
			w.idx[e] = i - 1
		case spanCopy:
			w.charge(e, CompCopy, s.start, t)
			t = s.start
			w.idx[e] = i - 1
		case spanFault:
			w.charge(e, CompFault, s.start, t)
			t = s.start
			w.idx[e] = i - 1
		case spanSend:
			// The sender's own drain window: queueing then wire service,
			// clipped to the cursor.
			m := &r.msgs[s.ref]
			w.charge(e, m.wireComponent(), m.start, math.Min(t, m.free))
			w.charge(e, m.preComponent(), s.start, math.Min(t, m.start))
			t = s.start
			w.idx[e] = i - 1
		case spanRecv:
			m := &r.msgs[s.ref]
			w.idx[e] = i - 1
			if t == s.end {
				// The wait ended when the message arrived: unwind the
				// transfer (service + latency as wire time, then queueing —
				// charged to the receiving timeline) and jump to the sender
				// at its post. Charges are issued newest-first so the
				// backward-built segment list stays ordered.
				w.charge(e, m.wireComponent(), math.Min(m.start, t), t)
				w.charge(e, m.preComponent(), m.post, math.Min(m.start, t))
				if m.srcEnt >= 0 {
					e = m.srcEnt
				}
				t = m.post
			} else {
				// Mid-wait cursor (defensive): the wait itself is the path.
				w.charge(e, CompBlocked, s.start, t)
				t = s.start
			}
		case spanFetch:
			// Like a receive, but the server is passive: unwind the booking
			// on this timeline and continue before the post.
			m := &r.msgs[s.ref]
			w.charge(e, m.wireComponent(), math.Min(m.start, t), t)
			w.charge(e, m.preComponent(), m.post, math.Min(m.start, t))
			t = m.post
			w.idx[e] = i - 1
		case spanGateWait:
			w.idx[e] = i - 1
			if t == s.end && s.ref >= 0 {
				// The kernel's completion opened the gate: follow the helper.
				e = s.ref
			} else {
				w.charge(e, CompBlocked, s.start, t)
				t = s.start
			}
		case spanSpawn:
			// Zero-duration marker; skipped by the start >= t advance, but
			// land here defensively if t sits exactly past it.
			w.idx[e] = i - 1
		default:
			panic(fmt.Sprintf("critpath: unknown span kind %d", s.kind))
		}
	}
}

// charge order note: the walker charges sub-intervals newest-first so the
// backward-built segment list stays sorted.

// rankSeconds computes the aggregate per-bucket rank-seconds view over
// top-level (rank) timelines: every span contributes its full duration,
// waits count as mpi-blocked, and the remainder up to makespan is idle.
// Asynchronous helpers are excluded — their kernels overlap the rank's
// own work and would double-count wall time.
func rankSeconds(r *Recorder, makespan float64) map[string]float64 {
	var acc [numComponents]float64
	ranks := 0
	for i := range r.ents {
		en := &r.ents[i]
		if en.parent >= 0 {
			continue
		}
		ranks++
		covered := 0.0
		for j := range en.spans {
			s := &en.spans[j]
			dur := s.end - s.start
			covered += dur
			switch s.kind {
			case spanCompute:
				acc[CompDRAMStall] += math.Min(s.stall, dur)
				acc[CompCPU] += dur - math.Min(s.stall, dur)
			case spanKernel:
				acc[CompDRAMStall] += math.Min(s.stall, dur)
				acc[CompGPU] += dur - math.Min(s.stall, dur)
			case spanCopy:
				acc[CompCopy] += dur
			case spanFault:
				acc[CompFault] += dur
			case spanSend:
				m := &r.msgs[s.ref]
				svc := math.Min(m.free, s.end) - math.Min(m.start, s.end)
				acc[m.wireComponent()] += math.Max(0, svc)
				acc[m.preComponent()] += math.Max(0, dur-math.Max(0, svc))
			case spanRecv, spanGateWait:
				acc[CompBlocked] += dur
			case spanFetch:
				m := &r.msgs[s.ref]
				pre := math.Min(m.start, s.end) - s.start
				acc[m.preComponent()] += math.Max(0, pre)
				acc[m.wireComponent()] += math.Max(0, dur-math.Max(0, pre))
			}
		}
		acc[CompIdle] += math.Max(0, makespan-covered)
	}
	out := make(map[string]float64, numComponents)
	for c := Component(0); c < numComponents; c++ {
		out[c.String()] = acc[c]
	}
	return out
}

// linkSlack aggregates per-message slack into directed node-pair rows.
func linkSlack(r *Recorder) []LinkSlack {
	type lk struct{ src, dst int32 }
	agg := make(map[lk]*LinkSlack)
	for i := range r.msgs {
		m := &r.msgs[i]
		if !m.matched {
			continue
		}
		k := lk{m.srcNode, m.dstNode}
		row := agg[k]
		if row == nil {
			row = &LinkSlack{SrcNode: int(m.srcNode), DstNode: int(m.dstNode), MinSlack: math.Inf(1)}
			agg[k] = row
		}
		slack := math.Max(0, m.recvPost-m.arrival)
		row.Messages++
		if slack == 0 {
			row.Blocking++
		}
		row.MinSlack = math.Min(row.MinSlack, slack)
		row.MeanSlack += slack
	}
	out := make([]LinkSlack, 0, len(agg))
	for _, row := range agg {
		row.MeanSlack /= float64(row.Messages)
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SrcNode != out[j].SrcNode {
			return out[i].SrcNode < out[j].SrcNode
		}
		return out[i].DstNode < out[j].DstNode
	})
	return out
}
