package critpath

import "math"

// replayOpts selects one counterfactual. Exactly one flag is set per
// what-if; the zero value replays the recorded costs unmodified (the
// fidelity baseline).
type replayOpts struct {
	idealNet     bool // message costs (queueing, service, latency) -> 0
	noStragglers bool // divide stretched compute/kernel spans by their factor
	noDRAMStall  bool // subtract the memory-stall share of compute/kernels
}

// replay runs the recorded graph forward under modified costs — the
// dimemas recipe over causal spans: every entity advances a clock through
// its span sequence; receive and gate spans are dependencies (the clock
// jumps to the producer's ready time if later), everything else is a
// duration. Multi-pass worklist, like dimemas.Replay; the recorded run is
// itself a witness that an execution order exists, so a stuck replay is a
// recording bug and panics.
//
// Bound caveat: non-network what-ifs keep message costs at their recorded
// values (bookings are not re-queued against counterfactual port
// schedules), so results are first-order bounds — exact for the ideal
// network, where every message cost vanishes.
func replay(r *Recorder, o replayOpts) float64 {
	n := len(r.ents)
	clock := make([]float64, n)
	idx := make([]int, n)
	started := make([]bool, n) // aux entities wait for their spawn marker
	done := make([]bool, n)
	auxDone := make([]float64, n)
	for i := range r.ents {
		started[i] = r.ents[i].parent < 0
	}
	msgReady := make([]bool, len(r.msgs))
	msgAt := make([]float64, len(r.msgs))

	remaining := r.Spans()
	for remaining > 0 {
		progress := false
		for e := 0; e < n; e++ {
			if !started[e] || done[e] {
				continue
			}
			en := &r.ents[e]
			for idx[e] < len(en.spans) {
				s := &en.spans[idx[e]]
				blocked := false
				switch s.kind {
				case spanRecv:
					if msgReady[s.ref] {
						clock[e] = math.Max(clock[e], msgAt[s.ref])
					} else {
						blocked = true
					}
				case spanGateWait:
					switch {
					case s.ref < 0:
						// Unbound gate (defensive): keep the recorded wait.
						clock[e] += s.end - s.start
					case done[s.ref]:
						clock[e] = math.Max(clock[e], auxDone[s.ref])
					default:
						blocked = true
					}
				case spanSpawn:
					started[s.ref] = true
					clock[s.ref] = clock[e]
				case spanSend:
					m := &r.msgs[s.ref]
					at := clock[e]
					if !o.idealNet {
						clock[e] += s.end - s.start // queueing + drain
						at = clock[e] + (m.arrival - m.free)
					}
					msgAt[s.ref] = at
					msgReady[s.ref] = true
				case spanFetch:
					if !o.idealNet {
						clock[e] += s.end - s.start
					}
				default:
					clock[e] += spanCost(s, o)
				}
				if blocked {
					break
				}
				idx[e]++
				remaining--
				progress = true
			}
			if idx[e] == len(en.spans) {
				done[e] = true
				auxDone[e] = clock[e]
			}
		}
		if !progress {
			panic("critpath: forward replay deadlocked (recording bug)")
		}
	}
	out := 0.0
	for e := 0; e < n; e++ {
		out = math.Max(out, clock[e])
	}
	return out
}

// spanCost returns a local span's duration under the counterfactual.
func spanCost(s *span, o replayOpts) float64 {
	dur := s.end - s.start
	switch s.kind {
	case spanCompute, spanKernel:
		if o.noStragglers && s.stretch > 1 {
			dur /= s.stretch
		}
		if o.noDRAMStall {
			dur -= math.Min(s.stall, dur)
		}
	}
	return dur
}
