// Integration tests of the critical-path analyzer against real simulated
// runs: blame conservation, replay fidelity, the dimemas cross-check,
// sidecar round-trips, and the BENCH_GUARD recording-overhead guard.
package critpath_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"clustersoc/internal/cluster"
	"clustersoc/internal/core"
	"clustersoc/internal/critpath"
	"clustersoc/internal/dimemas"
	"clustersoc/internal/runner"
	"clustersoc/internal/workloads"
)

// scenario builds a runner scenario the way core.Session does: ranks per
// node from the workload, clamped to the CPU core count.
func scenario(t *testing.T, workload string, nodes int, net core.NetworkChoice, scale float64, traced bool) runner.Scenario {
	t.Helper()
	cfg := core.TX1(nodes, net)
	w, err := workloads.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RanksPerNode = w.RanksPerNode()
	if cfg.NodeType.CPU.Cores < cfg.RanksPerNode {
		cfg.RanksPerNode = cfg.NodeType.CPU.Cores
	}
	cfg.Traced = traced
	return runner.Scenario{Cluster: cfg, Workload: workload, Config: workloads.Config{Scale: scale}}
}

func analyzed(t *testing.T, s runner.Scenario) *critpath.Report {
	t.Helper()
	res, err := runner.ExecuteCritPath(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.CritPath == nil {
		t.Fatal("ExecuteCritPath returned no report")
	}
	return res.CritPath
}

// TestBlameSumsToMakespan is the analyzer's conservation law: every
// second of the makespan is attributed to exactly one component, so the
// blame buckets sum back to the observed runtime (CI holds this within
// 0.1%; the construction makes it machine-precision exact).
func TestBlameSumsToMakespan(t *testing.T) {
	cases := []struct {
		name string
		s    runner.Scenario
	}{
		{"cg-10g", scenario(t, "cg", 8, core.TenGigE, 0.04, false)},
		{"cg-1g", scenario(t, "cg", 8, core.GigE, 0.04, false)},
		{"hpl-10g", scenario(t, "hpl", 4, core.TenGigE, 0.04, false)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := analyzed(t, tc.s)
			if rep.Makespan <= 0 {
				t.Fatalf("makespan = %g", rep.Makespan)
			}
			var sum float64
			for _, v := range rep.Blame {
				sum += v
			}
			if rel := math.Abs(sum-rep.Makespan) / rep.Makespan; rel > 1e-3 {
				t.Fatalf("blame sums to %g but makespan is %g (rel %.2e, budget 0.1%%)\nblame: %v",
					sum, rep.Makespan, rel, rep.Blame)
			}
			// The forward replay over the recorded graph must reproduce the
			// observed makespan: if it cannot, the happens-before edges are
			// incomplete and the what-if bounds are untrustworthy.
			if rel := math.Abs(rep.WhatIf.Replayed-rep.Makespan) / rep.Makespan; rel > 5e-3 {
				t.Fatalf("replay fidelity: replayed %g vs observed %g (rel %.2e, budget 0.5%%)",
					rep.WhatIf.Replayed, rep.Makespan, rel)
			}
			// The bounds are bounds.
			if rep.WhatIf.IdealNetwork > rep.WhatIf.Replayed*(1+1e-9) {
				t.Fatalf("ideal network %g exceeds baseline %g", rep.WhatIf.IdealNetwork, rep.WhatIf.Replayed)
			}
			if len(rep.Path) == 0 {
				t.Fatal("empty critical path")
			}
			// Path segments tile [0, makespan] back to front without gaps.
			if last := rep.Path[len(rep.Path)-1]; math.Abs(last.End-rep.Makespan) > 1e-12 {
				t.Fatalf("path ends at %g, makespan %g", last.End, rep.Makespan)
			}
			if first := rep.Path[0]; first.Start != 0 {
				t.Fatalf("path starts at %g, want 0", first.Start)
			}
			for i := 1; i < len(rep.Path); i++ {
				if rep.Path[i].Start != rep.Path[i-1].End {
					t.Fatalf("path gap between segment %d (end %g) and %d (start %g)",
						i-1, rep.Path[i-1].End, i, rep.Path[i].Start)
				}
			}
		})
	}
}

// TestIdealNetworkMatchesDimemas cross-checks the analyzer's analytic
// ideal-network bound against the independent dimemas trace replay on
// the reference scenario (cg is fully synchronous, so the two recipes
// model the same limit; the async-kernel workloads legitimately differ).
func TestIdealNetworkMatchesDimemas(t *testing.T) {
	s := scenario(t, "cg", 8, core.TenGigE, 0.04, true)
	res, err := runner.ExecuteCritPath(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace recorded")
	}
	ref := dimemas.Replay(res.Trace, dimemas.Options{Net: dimemas.IdealNetwork})
	got := res.CritPath.WhatIf.IdealNetwork
	if rel := math.Abs(got-ref) / ref; rel > 1e-3 {
		t.Fatalf("ideal-network what-if %g vs dimemas replay %g (rel %.2e, budget 0.1%%)", got, ref, rel)
	}
}

// TestRecordingLeavesResultIdentical locks in the opt-in guarantee at
// the Result level: a recorded run's JSON-visible fields are byte-equal
// to an unrecorded run's (CritPath is json:"-" exactly so sidecars, not
// result artifacts, carry the analysis).
func TestRecordingLeavesResultIdentical(t *testing.T) {
	s := scenario(t, "cg", 4, core.TenGigE, 0.04, true)
	off, err := runner.Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	on, err := runner.ExecuteCritPath(s)
	if err != nil {
		t.Fatal(err)
	}
	offJSON, err := json.Marshal(off)
	if err != nil {
		t.Fatal(err)
	}
	onJSON, err := json.Marshal(on)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(offJSON, onJSON) {
		t.Fatalf("recording changed the result artifact:\noff: %s\non:  %s", offJSON, onJSON)
	}
}

func sampleReport(fp string) *critpath.Report {
	return &critpath.Report{
		Scenario:    "cg on " + fp,
		Fingerprint: fp,
		Makespan:    1.5,
		Blame:       map[string]float64{"cpu-compute": 1.0, "nic-wire": 0.5},
		RankSeconds: map[string]float64{"cpu-compute": 4.0},
		WhatIf:      critpath.WhatIf{Replayed: 1.5, IdealNetwork: 1.0, NoStragglers: 1.5, NoDRAMStall: 1.4},
		Path:        []critpath.Segment{{Entity: "rank0", Component: "cpu-compute", Start: 0, End: 1.5}},
	}
}

func TestReportSidecarRoundTrip(t *testing.T) {
	in := []*critpath.Report{sampleReport("bbb"), sampleReport("aaa")}
	var buf bytes.Buffer
	if err := critpath.WriteReports(&buf, in); err != nil {
		t.Fatalf("WriteReports: %v", err)
	}
	out, err := critpath.ReadReports(&buf)
	if err != nil {
		t.Fatalf("ReadReports: %v", err)
	}
	if len(out) != 2 || out[0].Fingerprint != "aaa" || out[1].Fingerprint != "bbb" {
		t.Fatalf("round trip lost sorting or reports: %+v", out)
	}
	if out[0].Blame["cpu-compute"] != 1.0 || out[0].WhatIf.IdealNetwork != 1.0 {
		t.Fatalf("round trip lost values: %+v", out[0])
	}
	if in[0].Fingerprint != "bbb" {
		t.Fatal("WriteReports reordered the caller's slice")
	}
}

func TestReportSidecarRejectsDuplicates(t *testing.T) {
	var buf bytes.Buffer
	err := critpath.WriteReports(&buf, []*critpath.Report{sampleReport("x"), sampleReport("x")})
	if !errors.Is(err, critpath.ErrDuplicateReport) {
		t.Fatalf("WriteReports on duplicates = %v, want ErrDuplicateReport", err)
	}
}

// TestCritPathOverheadGuard bounds the recording tax on the engine loop:
// with recording on, the simulation may run at most 10% slower (events/s)
// than with it off. Analysis happens after the engine stops, so it sits
// outside the timed window — but it still runs each iteration so chunk
// storage recycles exactly as in production. Timing-based, so it only
// runs under BENCH_GUARD=1 (a dedicated CI step).
func TestCritPathOverheadGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("timing guard: set BENCH_GUARD=1 to run")
	}
	s := scenario(t, "cg", 8, core.TenGigE, 0.04, false)
	w, err := workloads.ByName(s.Workload)
	if err != nil {
		t.Fatal(err)
	}
	body := w.Body(s.Config)
	run := func(record bool) time.Duration {
		cl := cluster.New(s.Cluster)
		if record {
			cl.RecordCritPath()
		}
		// Drain GC debt from the previous iteration's analysis so the
		// timed window measures recording, not deferred collection.
		runtime.GC()
		start := time.Now()
		res := cl.Run(body)
		d := time.Since(start)
		if record {
			critpath.Analyze(cl.CritPath(), "guard", "", res.Runtime)
		}
		return d
	}
	run(false) // warm up both paths
	run(true)
	// Each round times a block of unrecorded runs back-to-back with a block
	// of recorded runs and takes the best of each; the guard passes on the
	// minimum per-round ratio. Blocks rather than strict alternation
	// because the recorder recycles its chunk storage through sync.Pools
	// and the GC fence between runs empties the pools' victim caches after
	// two collections — only consecutive recorded runs reach the steady
	// state the bound is about (a -critpath process records every run).
	// The per-round minimum asks whether any quiet window shows recording
	// within budget: machine drift (CPU frequency shifts, noisy
	// neighbours) poisons some windows, but a genuine regression past the
	// budget shows up in all of them.
	const rounds, perRound = 5, 4
	best := func(record bool) time.Duration {
		m := time.Duration(math.MaxInt64)
		for i := 0; i < perRound; i++ {
			if d := run(record); d < m {
				m = d
			}
		}
		return m
	}
	ratio := math.Inf(1)
	var off, on time.Duration
	for r := 0; r < rounds; r++ {
		o, n := best(false), best(true)
		if q := float64(n) / float64(o); q < ratio {
			ratio, off, on = q, o, n
		}
	}
	t.Logf("recorded %v vs unrecorded %v (ratio %.3f)", on, off, ratio)
	if ratio > 1.10 {
		t.Fatalf("recording costs %.1f%% (budget 10%%): %v vs %v", 100*(ratio-1), on, off)
	}
}
