// Package critpath records a compact causal event graph of a simulated run
// and extracts its critical path.
//
// The paper's contribution is attribution — explaining where time goes on
// SoC ARM clusters (CPU compute vs. shared-DRAM stalls vs. the 1G/10G
// interconnect) and what would change if one resource were faster.
// Aggregate metrics (internal/obs) cannot answer that: a cluster can be
// 90% network-busy while the network is never on the critical path. This
// package answers it causally.
//
// During a run the Recorder captures, per simulated process ("entity"),
// the sequence of attributed time spans — compute phases with their DRAM
// stall share, GPU kernels, host<->device copies, NIC drain windows,
// receive waits, gate waits on asynchronous kernels, NFS fetches, and
// checkpoint/crash settlement — plus one record per point-to-point
// message carrying the network's internal booking decomposition (queueing
// before service, wire service, latency, retransmission). Happens-before
// edges come from message send->deliver->recv chains (hooked into the mpi
// matching logic so the nth send and nth matching receive pair exactly),
// from gate open->wait pairs, and from spawn markers of asynchronous
// helper processes.
//
// Post-run, Analyze walks backward from the last-finishing entity,
// following the edge that ended each wait, and charges every second of
// makespan to exactly one component bucket — so the blame breakdown sums
// to the makespan by construction. A forward worklist replay over the
// same graph (the dimemas recipe, but over causal spans rather than rank
// traces) produces what-if bounds: makespan under an infinitely fast
// network, without straggler stretch, without DRAM stalls. Per-message
// slack (arrival vs. receive post) aggregates into per-link headroom —
// the conservative-lookahead distribution a future PDES run-plane needs.
//
// Recording is opt-in (cluster.RecordCritPath) and strictly passive: it
// observes times the simulation already computed and never schedules,
// sleeps, or perturbs event order, so an instrumented run is bit-identical
// to an uninstrumented one. Everything happens on the single engine
// goroutine, so the record order — and therefore the analysis and the
// JSON sidecar — is deterministic across run-planes and GOMAXPROCS.
package critpath

import (
	"fmt"
	"sync"

	"clustersoc/internal/sim"
)

// Component is one blame bucket of the makespan breakdown.
type Component uint8

const (
	// CompCPU is CPU compute time (the non-stalled share of a phase).
	CompCPU Component = iota
	// CompDRAMStall is time lost to shared-DRAM contention, on the CPU
	// (soc cost model MemStallSeconds) or inside a GPU kernel whose memory
	// time exceeds its compute time.
	CompDRAMStall
	// CompGPU is GPU kernel time net of DRAM stall.
	CompGPU
	// CompCopy is host<->device copy and local-read time.
	CompCopy
	// CompWire is NIC wire time: service (bytes/throughput) plus one-way
	// latency of cross-node messages.
	CompWire
	// CompQueue is switch/port queueing: the window between a message's
	// booking and its entering service, while healthy ports drain earlier
	// traffic.
	CompQueue
	// CompMemPath is the intra-node shared-memory message path.
	CompMemPath
	// CompBlocked is MPI blocked time that could not be causally chained
	// to a sender (defensive; zero on well-formed recordings) and, in the
	// per-rank aggregate view, all receive/gate waiting.
	CompBlocked
	// CompFault is fault-plane overhead: retransmit delays (timeout plus
	// the extra wire transit's queueing) and checkpoint/crash settlement.
	CompFault
	// CompIdle is unattributed time: gaps between recorded spans (process
	// startup, trailing DRAM drain after the last rank finishes).
	CompIdle

	numComponents
)

var componentNames = [numComponents]string{
	"cpu-compute",
	"dram-stall",
	"gpu-kernel",
	"copy",
	"nic-wire",
	"switch-queue",
	"mem-path",
	"mpi-blocked",
	"fault",
	"idle",
}

// String returns the bucket's sidecar key.
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return fmt.Sprintf("component%d", int(c))
}

// Components lists every bucket name in declaration order — the canonical
// key set of Report.Blame.
func Components() []string {
	out := make([]string, numComponents)
	copy(out, componentNames[:])
	return out
}

// spanKind classifies one recorded time span.
type spanKind uint8

const (
	spanCompute  spanKind = iota // CPU phase; stall share in span.stall
	spanKernel                   // GPU kernel; stall share in span.stall
	spanCopy                     // host<->device copy / local read
	spanSend                     // NIC drain window of a send; ref = message
	spanRecv                     // receive wait; ref = message (recorded even when zero)
	spanGateWait                 // wait on an async kernel's gate; ref = aux entity
	spanSpawn                    // zero-duration marker: aux entity ref spawned here
	spanFetch                    // blocking NFS fetch; ref = message (no source entity)
	spanFault                    // checkpoint write / crash settlement
)

// span is one attributed interval on an entity's timeline. Spans are
// recorded in completion order and never overlap within an entity.
type span struct {
	kind    spanKind
	start   float64
	end     float64
	stall   float64 // DRAM-stall share of a compute/kernel span
	stretch float64 // straggler factor applied to a compute/kernel span (>= 1)
	seq     uint64  // engine sequence at record time (deterministic tie-break)
	ref     int32   // message index or aux entity index, -1 if none
}

// message is one point-to-point transfer with its booking decomposition:
// post <= start <= free <= arrival; [post,start] is queueing (or the
// retransmit tax), [start,free] wire service, [free,arrival] latency.
type message struct {
	srcEnt, dstEnt   int32 // srcEnt == -1 for fetches from the file server
	srcNode, dstNode int32
	bytes            float64
	post             float64
	start            float64
	free             float64
	arrival          float64
	recvPost         float64 // when the receive was posted; valid once matched
	retrans          bool
	matched          bool
}

// wireComponent returns the bucket a message's service+latency belongs to.
func (m *message) wireComponent() Component {
	if m.srcNode == m.dstNode {
		return CompMemPath
	}
	return CompWire
}

// preComponent returns the bucket of a message's pre-service window.
func (m *message) preComponent() Component {
	if m.retrans {
		return CompFault
	}
	return CompQueue
}

// entity is one recorded timeline: a rank process or an asynchronous
// kernel helper.
type entity struct {
	name   string
	node   int32
	parent int32   // owning entity of an aux helper; -1 for ranks
	origin float64 // spawn time of an aux helper
	spans  []span
}

// Recording storage is chunked: the per-event appends never copy old
// data (slice regrowth re-copies hot timelines several times over a run
// and dominated the recording tax), and the allocator clears exactly the
// chunks ultimately used. seal() flattens the chunks into the contiguous
// slices the analysis passes index.
const (
	msgChunkBits = 11
	msgChunkLen  = 1 << msgChunkBits
	msgChunkMask = msgChunkLen - 1

	spanChunkBits = 12
	spanChunkLen  = 1 << spanChunkBits
	spanChunkMask = spanChunkLen - 1
)

// recSpan is one arena entry: all entities share the recording arena
// (exact per-entity slices are carved out at seal time), so each span
// carries its timeline. It has no sequence stamp — arena order refines
// the engine's event order, so seal derives each span's seq from its
// arena index, saving a Stamp call and eight bytes per recorded span.
type recSpan struct {
	start, end     float64
	stall, stretch float64
	ent, ref       int32
	kind           spanKind
}

// Chunks are pooled across runs: a batch run churns megabytes of
// recording storage per scenario, and the GC pressure from fresh
// allocations shows up as diffuse overhead across the whole engine loop.
// Slots past the recorded count are never read, so dirty reuse is safe
// and does not affect determinism.
var (
	msgChunkPool  = sync.Pool{New: func() any { return new([msgChunkLen]message) }}
	spanChunkPool = sync.Pool{New: func() any { return new([spanChunkLen]recSpan) }}
)

// Recorder accumulates the causal graph of one run. All methods run on
// the engine goroutine; none of them schedules or sleeps.
type Recorder struct {
	eng   *sim.Engine
	ents  []entity
	gates map[*sim.Gate]int32

	// pendID is the message record the network's latest delivery wrote,
	// waiting to be claimed by the mpi send (or fetch) that triggered it;
	// -1 when claimed. The engine is single-threaded and Deliver is called
	// synchronously from the send path, so at most one record is ever
	// pending.
	pendID int32

	msgChunks []*[msgChunkLen]message
	nMsgs     int

	// The span arena appends through a cursor into the newest chunk:
	// addSpan stays under the inlining budget that way, which matters at
	// two calls per message. spanN indexes spanCur; the total count is
	// (len(spanChunks)-1)*spanChunkLen + spanN.
	spanChunks []*[spanChunkLen]recSpan
	spanCur    *[spanChunkLen]recSpan
	spanN      int

	sealed bool
	nSpans int       // fixed at seal time; live count is liveSpanCount
	msgs   []message // contiguous after seal; empty while recording
}

// NewRecorder creates a recorder bound to the run's engine.
func NewRecorder(eng *sim.Engine) *Recorder {
	// spanN at the chunk boundary makes the first addSpan grow.
	return &Recorder{eng: eng, gates: make(map[*sim.Gate]int32), pendID: -1, spanN: spanChunkLen}
}

// NewEntity registers a top-level timeline (a rank process) and returns
// its handle.
func (r *Recorder) NewEntity(name string, node int) int32 {
	r.ents = append(r.ents, entity{name: name, node: int32(node), parent: -1})
	return int32(len(r.ents) - 1)
}

// SpawnAux registers an asynchronous helper timeline under parent and
// records the zero-duration spawn marker that anchors its start: the
// forward replay starts the helper's clock at the parent's clock here,
// and the backward walk returns from the helper to the parent at this
// point.
func (r *Recorder) SpawnAux(parent int32, name string, node int) int32 {
	now, _ := r.eng.Stamp()
	aux := int32(len(r.ents))
	r.ents = append(r.ents, entity{name: name, node: int32(node), parent: parent, origin: now})
	*r.slot() = recSpan{kind: spanSpawn, start: now, end: now, ent: parent, ref: aux}
	return aux
}

// BindGate associates a gate with the aux entity whose completion opens
// it, so a later GateWait can chain onto the helper's timeline.
func (r *Recorder) BindGate(g *sim.Gate, aux int32) { r.gates[g] = aux }

// slot returns the next arena entry for the caller to fill. Returning a
// pointer (rather than taking a recSpan parameter) keeps the append
// inlinable — by-value 48-byte arguments blow the inlining budget, and
// this runs twice per message plus once per compute phase.
func (r *Recorder) slot() *recSpan {
	if r.spanN == spanChunkLen {
		r.growSpans()
	}
	s := &r.spanCur[r.spanN]
	r.spanN++
	return s
}

func (r *Recorder) growSpans() {
	c := spanChunkPool.Get().(*[spanChunkLen]recSpan)
	r.spanChunks = append(r.spanChunks, c)
	r.spanCur = c
	r.spanN = 0
}

func (r *Recorder) growMsgs() {
	r.msgChunks = append(r.msgChunks, msgChunkPool.Get().(*[msgChunkLen]message))
}

// msgAt resolves a message id while recording is live (post-seal code
// indexes the flattened r.msgs directly).
func (r *Recorder) msgAt(id int32) *message {
	return &r.msgChunks[id>>msgChunkBits][id&msgChunkMask]
}

// seal flattens the chunked recording stores into contiguous storage:
// r.msgs ordered by id, and exact-size per-entity span slices carved from
// one backing array. A single forward pass over the arena preserves each
// timeline's chronological span order. Idempotent; called by Analyze once
// recording is over.
func (r *Recorder) seal() {
	if r.sealed {
		return
	}
	r.sealed = true
	r.nSpans = r.liveSpanCount()
	r.msgs = make([]message, r.nMsgs)
	for i, c := range r.msgChunks {
		copy(r.msgs[i<<msgChunkBits:], c[:])
		msgChunkPool.Put(c)
	}
	r.msgChunks = nil

	counts := make([]int, len(r.ents))
	r.eachRecorded(func(t *recSpan, _ int) { counts[t.ent]++ })
	all := make([]span, 0, r.nSpans)
	for i := range r.ents {
		n := len(all)
		r.ents[i].spans = all[n : n : n+counts[i]]
		all = all[:n+counts[i]]
	}
	r.eachRecorded(func(t *recSpan, idx int) {
		e := &r.ents[t.ent]
		e.spans = append(e.spans, span{
			kind: t.kind, start: t.start, end: t.end,
			stall: t.stall, stretch: t.stretch,
			seq: uint64(idx), ref: t.ref,
		})
		// Receive completion is recorded only as a span: back-filling the
		// message here keeps the hot path from re-touching a by-then
		// cache-cold message record at recv time.
		if t.kind == spanRecv || t.kind == spanFetch {
			m := &r.msgs[t.ref]
			m.recvPost = t.start
			m.matched = true
		}
	})
	for _, c := range r.spanChunks {
		spanChunkPool.Put(c)
	}
	r.spanChunks = nil
}

// eachRecorded visits the recorded arena entries in append order, passing
// each entry's arena index (the span's sequence stamp).
func (r *Recorder) eachRecorded(f func(*recSpan, int)) {
	idx := 0
	for _, c := range r.spanChunks {
		n := len(c)
		if rest := r.nSpans - idx; rest < n {
			n = rest
		}
		for i := 0; i < n; i++ {
			f(&c[i], idx)
			idx++
		}
	}
}

// Compute records a CPU phase with its DRAM-stall share and straggler
// stretch factor (1 when healthy).
func (r *Recorder) Compute(ent int32, start, end, stall, stretch float64) {
	if end <= start {
		return
	}
	*r.slot() = recSpan{kind: spanCompute, start: start, end: end, stall: stall, stretch: stretch, ent: ent, ref: -1}
}

// Kernel records a GPU kernel launch (including launch overhead and any
// straggler stretch) with its memory-stall share.
func (r *Recorder) Kernel(ent int32, start, end, stall, stretch float64) {
	if end <= start {
		return
	}
	*r.slot() = recSpan{kind: spanKernel, start: start, end: end, stall: stall, stretch: stretch, ent: ent, ref: -1}
}

// Copy records a host<->device transfer or local read.
func (r *Recorder) Copy(ent int32, start, end float64) {
	if end <= start {
		return
	}
	*r.slot() = recSpan{kind: spanCopy, start: start, end: end, ent: ent, ref: -1}
}

// Fault records checkpoint/crash settlement time charged by the fault
// plane.
func (r *Recorder) Fault(ent int32, start, end float64) {
	if end <= start {
		return
	}
	*r.slot() = recSpan{kind: spanFault, start: start, end: end, ent: ent, ref: -1}
}

// GateWait records a wait on an asynchronous kernel's gate. Zero-length
// waits are recorded too: the dependency still orders the forward replay
// even when the gate was already open.
func (r *Recorder) GateWait(ent int32, g *sim.Gate, start, end float64) {
	ref := int32(-1)
	if aux, ok := r.gates[g]; ok {
		ref = aux
	}
	*r.slot() = recSpan{kind: spanGateWait, start: start, end: end, ent: ent, ref: ref}
}

// FetchStart claims the pending network booking (the fetch's Deliver
// call) as a message with no source entity — the server is a passive
// port, so the chain ends at the booking, attributing queueing and wire
// time without jumping timelines. It must be called before the fetching
// process sleeps: the pending slot holds only the latest booking, and
// another rank's send would overwrite it during the sleep.
func (r *Recorder) FetchStart(ent int32) int32 {
	return r.claimBooking(ent, -1)
}

// FetchDone records the blocking read around the booking FetchStart
// claimed, once the fetching process has slept through the arrival.
// The message's recvPost/matched fields are back-filled from this span
// at seal time.
func (r *Recorder) FetchDone(ent, id int32, start, end float64) {
	*r.slot() = recSpan{kind: spanFetch, start: start, end: end, ent: ent, ref: id}
}

// ObserveDelivery implements network.DeliveryObserver: it writes the
// delivery's internal decomposition straight into the message store,
// leaving the record pending until the send (or fetch) that triggered it
// claims it. A retransmitted message books twice within the same send;
// the later booking — the copy the receiver actually sees — overwrites
// the still-pending record.
func (r *Recorder) ObserveDelivery(src, dst int, bytes, post, start, free, arrival float64) {
	id := r.pendID
	if id < 0 {
		c := r.nMsgs >> msgChunkBits
		if c == len(r.msgChunks) {
			r.growMsgs()
		}
		id = int32(r.nMsgs)
		r.nMsgs++
		r.pendID = id
	}
	*r.msgAt(id) = message{
		srcEnt: -1, dstEnt: -1,
		srcNode: int32(src), dstNode: int32(dst),
		bytes: bytes, post: post, start: start, free: free, arrival: arrival,
	}
}

// claimBooking hands the pending message record to its sender.
func (r *Recorder) claimBooking(dstEnt, srcEnt int32) int32 {
	id := r.pendID
	if id < 0 {
		panic("critpath: message completed without a network booking to claim")
	}
	r.pendID = -1
	m := r.msgAt(id)
	m.srcEnt, m.dstEnt = srcEnt, dstEnt
	return id
}

// CommHooks adapts the recorder to one communicator's rank numbering: ent
// maps the communicator's ranks to recorder entities. Each communicator
// gets its own adapter because co-scheduled jobs have independent rank
// spaces. Matching state lives in the communicator itself — PathSend
// hands back a message id that mpi threads through its inbox/waiter
// structures to the completing receive, so the hot path pays no map
// operations here.
type CommHooks struct {
	r   *Recorder
	ent []int32
}

// CommHooks returns the mpi.PathRecorder adapter for a communicator whose
// rank i runs on entity ent[i].
func (r *Recorder) CommHooks(ent []int32) *CommHooks {
	return &CommHooks{r: r, ent: ent}
}

// PathSend implements mpi.PathRecorder: it claims the network booking the
// send just made, records the sender's drain window, and returns the
// message id the communicator will hand to the matching PathRecv.
func (h *CommHooks) PathSend(src, dst, tag int, bytes, post, senderFree, arrival float64, retrans bool) int32 {
	r := h.r
	id := r.claimBooking(h.ent[dst], h.ent[src])
	m := r.msgAt(id)
	m.retrans = retrans
	if m.free != senderFree || m.arrival != arrival {
		panic(fmt.Sprintf("critpath: network booking does not pair with mpi send (free %g!=%g or arrival %g!=%g)",
			m.free, senderFree, m.arrival, arrival))
	}
	*r.slot() = recSpan{kind: spanSend, start: post, end: senderFree, ent: h.ent[src], ref: id}
	return id
}

// PathRecv implements mpi.PathRecorder: it records the receive wait —
// even a zero-length one, because the happens-before edge must survive
// for the forward replay. The message record is deliberately not touched
// here: by recv time its cache line is long cold, so marking it matched
// is deferred to seal's arena sweep.
func (h *CommHooks) PathRecv(dst int, id int32, post, end float64) {
	r := h.r
	if id < 0 {
		panic(fmt.Sprintf("critpath: receive on rank %d completed without a recorded send", dst))
	}
	*r.slot() = recSpan{kind: spanRecv, start: post, end: end, ent: h.ent[dst], ref: id}
}

// Entities returns the number of recorded timelines.
func (r *Recorder) Entities() int { return len(r.ents) }

// Messages returns the number of recorded point-to-point transfers.
func (r *Recorder) Messages() int { return r.nMsgs }

func (r *Recorder) liveSpanCount() int {
	if len(r.spanChunks) == 0 {
		return 0
	}
	return (len(r.spanChunks)-1)*spanChunkLen + r.spanN
}

// Spans returns the total recorded span count across entities.
func (r *Recorder) Spans() int {
	if r.sealed {
		return r.nSpans
	}
	return r.liveSpanCount()
}
