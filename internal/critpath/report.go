package critpath

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"clustersoc/internal/obs"
)

// ReportFileVersion is the schema version of the *.critpath.json sidecar.
const ReportFileVersion = 1

// ErrDuplicateReport is returned when a sidecar would contain (or does
// contain) two reports with the same scenario fingerprint — one run, one
// report.
var ErrDuplicateReport = errors.New("critpath: duplicate scenario fingerprint in sidecar")

// reportFile is the sidecar envelope.
type reportFile struct {
	Version int       `json:"version"`
	Reports []*Report `json:"reports"`
}

// reportKey identifies a report inside a sidecar: the fingerprint when
// present, the scenario label otherwise (cmd/clustersim writes reports
// without runner fingerprints).
func reportKey(r *Report) string {
	if r.Fingerprint != "" {
		return r.Fingerprint
	}
	return "scenario:" + r.Scenario
}

// WriteReports encodes reports as a versioned sidecar, sorted by
// fingerprint so the bytes are independent of completion order.
// Duplicate fingerprints are rejected with ErrDuplicateReport.
func WriteReports(w io.Writer, reports []*Report) error {
	sorted := append([]*Report(nil), reports...)
	sort.Slice(sorted, func(i, j int) bool { return reportKey(sorted[i]) < reportKey(sorted[j]) })
	for i := 1; i < len(sorted); i++ {
		if reportKey(sorted[i]) == reportKey(sorted[i-1]) {
			return fmt.Errorf("%w: %q", ErrDuplicateReport, reportKey(sorted[i]))
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reportFile{Version: ReportFileVersion, Reports: sorted})
}

// ReadReports decodes a sidecar written by WriteReports, rejecting
// unknown versions and duplicate fingerprints.
func ReadReports(r io.Reader) ([]*Report, error) {
	var f reportFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("critpath: decoding sidecar: %w", err)
	}
	if f.Version != ReportFileVersion {
		return nil, fmt.Errorf("critpath: unsupported sidecar version %d (want %d)", f.Version, ReportFileVersion)
	}
	seen := make(map[string]bool, len(f.Reports))
	for _, rep := range f.Reports {
		if seen[reportKey(rep)] {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateReport, reportKey(rep))
		}
		seen[reportKey(rep)] = true
	}
	return f.Reports, nil
}

// blameOrder lists buckets in render order: the taxonomy order, which
// also groups compute before network before overheads.
func blameOrder() []string { return Components() }

func fmtSeconds(s float64) string {
	return fmt.Sprintf("%.6f", s)
}

func fmtPct(x, total float64) string {
	if total <= 0 {
		return "-"
	}
	return fmt.Sprintf("%5.1f%%", 100*x/total)
}

// BlameTable renders the critical-path blame breakdown next to the
// aggregate rank-seconds view.
func (r *Report) BlameTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — makespan %ss\n", r.Scenario, fmtSeconds(r.Makespan))
	fmt.Fprintf(&b, "  %-14s %14s %7s %16s\n", "component", "critical-path", "share", "rank-seconds")
	for _, name := range blameOrder() {
		cp := r.Blame[name]
		rs := r.RankSeconds[name]
		if cp == 0 && rs == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-14s %13ss %7s %15ss\n", name, fmtSeconds(cp), fmtPct(cp, r.Makespan), fmtSeconds(rs))
	}
	var sum float64
	for _, v := range r.Blame {
		sum += v
	}
	fmt.Fprintf(&b, "  %-14s %13ss\n", "sum", fmtSeconds(sum))
	return b.String()
}

// WhatIfTable renders the forward-replay bounds as speedups over the
// replayed baseline.
func (r *Report) WhatIfTable() string {
	var b strings.Builder
	base := r.WhatIf.Replayed
	row := func(name string, v float64) {
		speedup := "-"
		if v > 0 {
			speedup = fmt.Sprintf("%.2fx", base/v)
		}
		fmt.Fprintf(&b, "  %-18s %13ss  %7s\n", name, fmtSeconds(v), speedup)
	}
	fmt.Fprintf(&b, "what-if bounds (replay baseline %ss, observed %ss)\n", fmtSeconds(base), fmtSeconds(r.Makespan))
	row("ideal network", r.WhatIf.IdealNetwork)
	row("no stragglers", r.WhatIf.NoStragglers)
	row("no DRAM stall", r.WhatIf.NoDRAMStall)
	return b.String()
}

// SlackTable renders the per-link slack rows, tightest links first, at
// most top rows (0 = all).
func (r *Report) SlackTable(top int) string {
	rows := append([]LinkSlack(nil), r.Links...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].MinSlack < rows[j].MinSlack })
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "per-link slack (lookahead headroom), tightest first\n")
	fmt.Fprintf(&b, "  %-10s %8s %9s %12s %12s\n", "link", "msgs", "blocking", "min", "mean")
	for _, l := range rows {
		fmt.Fprintf(&b, "  %3d->%-5d %8d %9d %11ss %11ss\n",
			l.SrcNode, l.DstNode, l.Messages, l.Blocking, fmtSeconds(l.MinSlack), fmtSeconds(l.MeanSlack))
	}
	return b.String()
}

// Diff renders the component-level difference between two reports of the
// same scenario (two code versions, or two configurations).
func Diff(a, b *Report) string {
	var out strings.Builder
	fmt.Fprintf(&out, "%s vs %s\n", a.Scenario, b.Scenario)
	fmt.Fprintf(&out, "  makespan: %ss -> %ss (%+.2f%%)\n",
		fmtSeconds(a.Makespan), fmtSeconds(b.Makespan), relDelta(a.Makespan, b.Makespan))
	fmt.Fprintf(&out, "  %-14s %14s %14s %10s\n", "component", "a", "b", "delta")
	for _, name := range blameOrder() {
		av, bv := a.Blame[name], b.Blame[name]
		if av == 0 && bv == 0 {
			continue
		}
		fmt.Fprintf(&out, "  %-14s %13ss %13ss %+9.6f\n", name, fmtSeconds(av), fmtSeconds(bv), bv-av)
	}
	fmt.Fprintf(&out, "  ideal network what-if: %ss -> %ss\n",
		fmtSeconds(a.WhatIf.IdealNetwork), fmtSeconds(b.WhatIf.IdealNetwork))
	return out.String()
}

func relDelta(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * (b - a) / a
}

// PathSlices converts the critical path into the Perfetto exporter's
// highlight track: one slice per path segment, labelled by component and
// the entity it ran on.
func (r *Report) PathSlices() []obs.PathSlice {
	out := make([]obs.PathSlice, 0, len(r.Path))
	for _, s := range r.Path {
		out = append(out, obs.PathSlice{
			Name:  fmt.Sprintf("%s [%s]", s.Component, s.Entity),
			Start: s.Start,
			End:   s.End,
		})
	}
	return out
}
