// Package soc models the systems-on-chip the paper compares: the Nvidia
// Jetson TX1 (4x Cortex-A57 + 2 Maxwell SMs, shared LPDDR4), the Cavium
// ThunderX many-core server CPU, and the Xeon + discrete GTX 980 node.
//
// The CPU model is an analytic first-order pipeline model: execution time
// is base issue time plus branch-misprediction and L2-miss stall terms.
// Those two terms are exactly the bottlenecks the paper's PLS analysis
// identifies on the ThunderX, so the model carries the mechanism, not just
// the outcome. PMU counters are synthesized from the same inputs.
package soc

import (
	"math"

	"clustersoc/internal/perf"
)

// CPUConfig describes one CPU microarchitecture + its memory hierarchy.
type CPUConfig struct {
	Name     string
	Cores    int
	FreqHz   float64
	ISA      string
	ProcTech string // e.g. "20nm", for the Table V/VII emitters

	// IssueWidth is the effective best-case IPC on clean, cache-resident
	// code (below the architectural width because of dependencies).
	IssueWidth float64
	// PredictorQuality in [0,1] is the fraction of worst-case branches the
	// predictor still gets right; the miss rate for a workload with branch
	// entropy e is (1-PredictorQuality) * e^PredictorEntropyExp.
	PredictorQuality float64
	// PredictorEntropyExp shapes how quickly the predictor degrades as
	// branches get harder: large history-based predictors (A57, Xeon) stay
	// accurate longer (exponent > 1); the ThunderX's simple predictor
	// degrades almost linearly.
	PredictorEntropyExp float64
	// BranchPenalty is the pipeline refill cost of a mispredict, cycles.
	BranchPenalty float64
	// SpecWidth is how many instructions are issued per cycle down a wrong
	// path before the mispredict resolves (feeds INST_SPEC).
	SpecWidth float64

	L1DBytes float64
	L1IBytes float64
	L2Bytes  float64
	// L2SharedBy is the number of cores that share one L2 slice; the
	// per-core effective capacity is L2Bytes / L2SharedBy. The ThunderX's
	// 16 MB / 48 cores per socket is the paper's diagnosed weakness.
	L2SharedBy int
	// L2Quality scales the *effective* capacity a thread can exploit:
	// below 1 for low-associativity, contention-prone designs (ThunderX),
	// above 1 when a further cache level backs the L2 (Xeon L3).
	L2Quality float64
	L3Bytes   float64

	// MemLatencyCycles is the L2-miss-to-DRAM latency in cycles.
	MemLatencyCycles float64
	// MLP is the memory-level parallelism: how many misses overlap, which
	// divides the visible stall time.
	MLP float64
	// MemBandwidth is the DRAM bandwidth achievable from the CPU side
	// (STREAM), bytes/second, for the whole chip.
	MemBandwidth float64

	TDPWatts float64
}

// CPUWork describes the cost of one compute phase as the workload models
// emit it: instruction/branch/memory volumes plus two characteristics
// (branch entropy, working set) that interact with the microarchitecture.
type CPUWork struct {
	Instr         float64 // dynamic instructions
	Flops         float64 // floating-point operations (subset of Instr)
	Branches      float64 // branch instructions
	BranchEntropy float64 // 0 = perfectly predictable, 1 = adversarial
	MemAccesses   float64 // loads + stores
	L1MissRate    float64 // fraction of accesses missing L1 (spatial locality)
	WorkingSet    float64 // bytes touched repeatedly (L2 pressure)
	Bytes         float64 // DRAM traffic generated (through the node DRAM pipe)
}

// Scale returns the work multiplied by f in all volume fields.
func (w CPUWork) Scale(f float64) CPUWork {
	w.Instr *= f
	w.Flops *= f
	w.Branches *= f
	w.MemAccesses *= f
	w.Bytes *= f
	return w
}

// CostResult is the outcome of running CPUWork on one core.
type CostResult struct {
	Seconds   float64
	DRAMBytes float64
	// MemStallSeconds is the share of Seconds the core spent stalled on
	// L2 misses — the CPU-side view of memory pressure, which the
	// observability layer aggregates per node next to the DRAM pipe's
	// arbitration stall.
	MemStallSeconds float64
	PMU             perf.PMU
}

// clamp01 bounds x into [0,1].
func clamp01(x float64) float64 { return math.Min(1, math.Max(0, x)) }

// BranchMissRate returns the predictor's miss rate for branches of the
// given entropy (0 = trivially predictable, 1 = adversarial).
func (c *CPUConfig) BranchMissRate(entropy float64) float64 {
	if entropy <= 0 {
		return 0
	}
	return (1 - c.PredictorQuality) * math.Pow(clamp01(entropy), c.PredictorEntropyExp)
}

// EffectiveL2Share returns the L2 capacity one thread can exploit with the
// given number of active sharers: the cache divided among the sharers,
// capped at 4x a thread's even split (a thread cannot monopolize a shared
// cache), scaled by the design's L2Quality.
func (c *CPUConfig) EffectiveL2Share(sharers int) float64 {
	if sharers < 1 {
		sharers = 1
	}
	share := c.L2Bytes / float64(sharers)
	even := c.L2Bytes / float64(c.L2SharedBy)
	if share > 4*even {
		share = 4 * even
	}
	q := c.L2Quality
	if q == 0 {
		q = 1
	}
	return share * q
}

// L2MissRatio returns the model's L2 miss ratio for a thread whose hot
// working set is workingSet bytes, with `sharers` threads contending. The
// resident fraction share/WS hits; the rest misses, with a 2% compulsory
// floor to keep streaming codes honest.
func (c *CPUConfig) L2MissRatio(workingSet float64, sharers int) float64 {
	if workingSet <= 0 {
		return 0.02
	}
	share := c.EffectiveL2Share(sharers)
	if share >= workingSet {
		return 0.02
	}
	return math.Max(0.02, 1-share/workingSet)
}

// Cost evaluates CPUWork on one core of this CPU with `sharers` active
// threads contending for the L2. It returns time, DRAM traffic, and the
// synthesized PMU counters.
func (c *CPUConfig) Cost(w CPUWork, sharers int) CostResult {
	missRate := c.BranchMissRate(w.BranchEntropy)
	mispred := w.Branches * missRate

	l1Refills := w.MemAccesses * clamp01(w.L1MissRate)
	l2Miss := c.L2MissRatio(w.WorkingSet, sharers)
	l2Refills := l1Refills * l2Miss

	stallMem := l2Refills * c.MemLatencyCycles / math.Max(1, c.MLP)
	stallBr := mispred * c.BranchPenalty
	base := w.Instr / c.IssueWidth
	cycles := base + stallMem + stallBr

	pmu := perf.PMU{
		CPUCycles:      cycles,
		InstRetired:    w.Instr,
		InstSpec:       w.Instr + mispred*c.BranchPenalty*c.SpecWidth,
		BrRetired:      w.Branches,
		BrMisPred:      mispred,
		L1DCache:       w.MemAccesses,
		L1DCacheRefill: l1Refills,
		L1ICache:       w.Instr,
		L1ICacheRefill: w.Instr * 0.001,
		L2DCache:       l1Refills,
		L2DCacheRefill: l2Refills,
		MemAccess:      w.MemAccesses,
		StallBackend:   stallMem,
	}
	return CostResult{
		Seconds:         cycles / c.FreqHz,
		DRAMBytes:       w.Bytes,
		MemStallSeconds: stallMem / c.FreqHz,
		PMU:             pmu,
	}
}

// PeakFlops returns the chip's peak double-precision FLOP/s assuming one
// scalar FMA per cycle per core (conservative, matching -O3 un-tuned code
// as the paper compiles it).
func (c *CPUConfig) PeakFlops() float64 {
	return float64(c.Cores) * c.FreqHz * 2
}
