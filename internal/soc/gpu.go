package soc

// GPUConfig describes a CUDA-capable GPU, integrated (TX1) or discrete
// (GTX 980). Both are Maxwell-family parts, which is why the paper picks
// the GTX 980 as the discrete comparator.
type GPUConfig struct {
	Name       string
	SMs        int
	CoresPerSM int
	FreqHz     float64
	// FP64Ratio is the double-precision throughput as a fraction of single
	// precision (1/32 on Maxwell).
	FP64Ratio float64
	// FP16Ratio is the half-precision throughput as a fraction of single
	// precision: 2.0 on the TX1 (vector FP16 is the Tegra Maxwell's
	// extension) but 1/64 on the desktop GM204 — one of the asymmetries
	// that favour the SoC for inference.
	FP16Ratio float64
	// GPUDirect marks NICs able to DMA straight into device memory. The
	// TX1 does not support it (Sec. III-B.2: "communication must be
	// handled by the CPU"); the flag exists to model the what-if.
	GPUDirect bool
	L2Bytes   float64
	// MemBandwidth is the achievable device-memory bandwidth for GPU
	// accesses: the GPU port of the shared LPDDR4 on the TX1, or GDDR5 on
	// the GTX 980. Bytes/second.
	MemBandwidth float64
	// DedicatedMemory: true for discrete cards with their own DRAM; false
	// when the GPU shares the node's DRAM with the CPU (the TX1 property
	// the paper builds on).
	DedicatedMemory bool
	MemoryBytes     float64
	// PCIeBandwidth is the host<->device copy bandwidth for discrete
	// cards (bytes/second); integrated parts copy through shared DRAM.
	PCIeBandwidth float64
	// LaunchOverhead is the fixed CPU-side cost per kernel launch.
	LaunchOverhead float64
	// Efficiency is the fraction of peak FLOP/s tuned kernels achieve.
	Efficiency float64
	// ZeroCopyPenalty scales memory bandwidth when zero-copy mappings
	// bypass the cache hierarchy (the TX1 coherency behaviour of Sec.
	// III-B.5); 1 = no penalty.
	ZeroCopyPenalty float64

	TDPWatts float64
}

// PeakFP32 returns peak single-precision FLOP/s (2 ops per core per cycle).
func (g *GPUConfig) PeakFP32() float64 {
	return float64(g.SMs*g.CoresPerSM) * 2 * g.FreqHz
}

// PeakFP64 returns peak double-precision FLOP/s.
func (g *GPUConfig) PeakFP64() float64 { return g.PeakFP32() * g.FP64Ratio }

// PeakFP16 returns peak half-precision FLOP/s.
func (g *GPUConfig) PeakFP16() float64 { return g.PeakFP32() * g.FP16Ratio }

// Cores returns the total CUDA core count.
func (g *GPUConfig) Cores() int { return g.SMs * g.CoresPerSM }
