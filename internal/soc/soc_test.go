package soc

import (
	"math"
	"testing"
	"testing/quick"

	"clustersoc/internal/units"
)

func TestPeakFlops(t *testing.T) {
	tx1 := JetsonTX1()
	// 256 CUDA cores * 2 ops * 0.998 GHz ~ 511 GFLOPS FP32; /32 FP64.
	fp32 := tx1.GPU.PeakFP32()
	if math.Abs(fp32-511e9) > 2e9 {
		t.Errorf("TX1 peak FP32 = %.1f GFLOPS, want ~511", fp32/1e9)
	}
	fp64 := tx1.GPU.PeakFP64()
	if math.Abs(fp64-16e9) > 0.1e9 {
		t.Errorf("TX1 peak FP64 = %.2f GFLOPS, want ~16", fp64/1e9)
	}
	gtx := XeonGTX980()
	if gtx.GPU.Cores() != 2048 {
		t.Errorf("GTX 980 cores = %d, want 2048", gtx.GPU.Cores())
	}
	if gtx.GPU.PeakFP32() < 5e12 {
		t.Errorf("GTX 980 peak FP32 = %v, want > 5 TFLOPS", gtx.GPU.PeakFP32())
	}
}

func TestBranchMissRateMonotonic(t *testing.T) {
	c := JetsonTX1().CPU
	prev := -1.0
	for e := 0.0; e <= 1.0; e += 0.1 {
		m := c.BranchMissRate(e)
		if m < prev {
			t.Fatalf("miss rate not monotonic in entropy at %v", e)
		}
		prev = m
	}
	if c.BranchMissRate(0) != 0 {
		t.Error("zero-entropy branches should never miss")
	}
	if c.BranchMissRate(1) > 1-c.PredictorQuality+1e-12 {
		t.Error("miss rate exceeds predictor worst case")
	}
}

// The ThunderX predictor must be worse than the A57's at every entropy,
// and the relative gap must WIDEN with entropy: both predictors nail
// heavily biased loop branches, but the A57's deep global history keeps
// it accurate on hard branches where the ThunderX's simple predictor
// collapses — which is why branchy mg exposes the Cavium worst (Fig. 8).
func TestThunderXPredictorWorse(t *testing.T) {
	a57 := JetsonTX1().CPU
	tx := CaviumThunderX().CPU
	ratioLow := tx.BranchMissRate(0.1) / a57.BranchMissRate(0.1)
	ratioHigh := tx.BranchMissRate(0.9) / a57.BranchMissRate(0.9)
	if ratioLow <= 1 || ratioHigh <= 1 {
		t.Fatalf("ThunderX predictor not worse: low %.2f, high %.2f", ratioLow, ratioHigh)
	}
	if ratioHigh <= ratioLow {
		t.Errorf("expected larger relative gap on hard branches: low %.2f vs high %.2f", ratioLow, ratioHigh)
	}
}

// With 32 ranks (the paper's NPB process count), a ThunderX thread sees
// less effective L2 than an A57 thread does, despite the bigger cache.
func TestThunderXL2ShareSmaller(t *testing.T) {
	a57 := JetsonTX1().CPU
	tx := CaviumThunderX().CPU
	// TX1 cluster: 4 ranks per node share the 2 MB L2.
	a57Share := a57.EffectiveL2Share(4)
	// Cavium: 32 ranks on one machine.
	txShare := tx.EffectiveL2Share(32)
	if txShare >= a57Share {
		t.Fatalf("ThunderX share %.0f KB >= A57 share %.0f KB", txShare/units.KiB, a57Share/units.KiB)
	}
}

func TestL2MissRatioBounds(t *testing.T) {
	c := JetsonTX1().CPU
	f := func(ws uint32, sharers uint8) bool {
		r := c.L2MissRatio(float64(ws), int(sharers%16)+1)
		return r >= 0.02-1e-12 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Bigger working sets miss more.
	if c.L2MissRatio(16*units.MiB, 4) <= c.L2MissRatio(256*units.KiB, 4) {
		t.Error("L2 miss ratio not monotonic in working set")
	}
	// More sharers miss more.
	if c.L2MissRatio(1*units.MiB, 4) < c.L2MissRatio(1*units.MiB, 1) {
		t.Error("L2 miss ratio decreased with more sharers")
	}
}

func TestCostBasics(t *testing.T) {
	c := JetsonTX1().CPU
	w := CPUWork{
		Instr:         1e9,
		Flops:         2e8,
		Branches:      1e8,
		BranchEntropy: 0.3,
		MemAccesses:   3e8,
		L1MissRate:    0.05,
		WorkingSet:    4 * units.MiB,
		Bytes:         1 * units.GB,
	}
	r := c.Cost(w, 4)
	if r.Seconds <= 1e9/c.IssueWidth/c.FreqHz {
		t.Error("cost must exceed ideal issue time")
	}
	if r.DRAMBytes != w.Bytes {
		t.Error("DRAM bytes not propagated")
	}
	if r.PMU.InstRetired != w.Instr || r.PMU.InstSpec <= w.Instr {
		t.Error("speculative instructions should exceed retired")
	}
	if got := r.PMU.IPC(); got <= 0 || got > c.IssueWidth {
		t.Errorf("IPC %v out of range", got)
	}
	// Counters must be self-consistent with the time.
	if math.Abs(r.PMU.CPUCycles/c.FreqHz-r.Seconds) > 1e-12*r.Seconds {
		t.Error("cycles and seconds disagree")
	}
}

// The paper's central Sec. IV-A finding: on branchy, cache-pressured work
// a ThunderX core loses to an A57 core even at a higher clock; on clean
// streaming work it is competitive.
func TestPerCoreA57VsThunderX(t *testing.T) {
	a57 := JetsonTX1().CPU
	tx := CaviumThunderX().CPU
	branchy := CPUWork{
		Instr: 1e9, Branches: 2e8, BranchEntropy: 0.5,
		MemAccesses: 3e8, L1MissRate: 0.08, WorkingSet: 2 * units.MiB,
	}
	clean := CPUWork{
		Instr: 1e9, Branches: 5e7, BranchEntropy: 0.02,
		MemAccesses: 2e8, L1MissRate: 0.01, WorkingSet: 128 * units.KiB,
	}
	slowdownBranchy := tx.Cost(branchy, 32).Seconds / a57.Cost(branchy, 4).Seconds
	slowdownClean := tx.Cost(clean, 32).Seconds / a57.Cost(clean, 4).Seconds
	if slowdownBranchy < 1.3 {
		t.Errorf("ThunderX should lose clearly on branchy work, slowdown=%.2f", slowdownBranchy)
	}
	if slowdownClean > slowdownBranchy {
		t.Errorf("clean work slowdown %.2f should be below branchy %.2f", slowdownClean, slowdownBranchy)
	}
}

// Scale is linear in all volume fields.
func TestWorkScaleProperty(t *testing.T) {
	c := JetsonTX1().CPU
	f := func(k uint8) bool {
		f64 := float64(k%10) + 1
		w := CPUWork{Instr: 1e8, Branches: 1e7, BranchEntropy: 0.4,
			MemAccesses: 3e7, L1MissRate: 0.05, WorkingSet: units.MiB, Bytes: 1e8}
		a := c.Cost(w.Scale(f64), 4).Seconds
		b := c.Cost(w, 4).Seconds * f64
		return math.Abs(a-b) < 1e-9*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The TX2 what-if: faster everywhere than the TX1 but the same power
// class — the upgrade path the companion thesis measures.
func TestJetsonTX2Config(t *testing.T) {
	tx1, tx2 := JetsonTX1(), JetsonTX2()
	if tx2.GPU.PeakFP32() <= tx1.GPU.PeakFP32() {
		t.Error("TX2 GPU should out-peak the TX1")
	}
	if tx2.GPU.PeakFP16() <= tx2.GPU.PeakFP32() {
		t.Error("TX2 keeps the Tegra 2x FP16 path")
	}
	if tx2.DRAMBandwidth <= tx1.DRAMBandwidth {
		t.Error("TX2 doubles the memory bandwidth")
	}
	if tx2.Power.IdleWatts != tx1.Power.IdleWatts {
		t.Error("same board power class expected")
	}
	// The original GPU config must not be mutated by the derivation.
	if tx1.GPU.FreqHz != 0.998*units.GHz {
		t.Error("JetsonTX2 mutated the TX1 GPU config")
	}
}
