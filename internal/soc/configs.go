package soc

import (
	"clustersoc/internal/power"
	"clustersoc/internal/units"
)

// NodeConfig assembles one node type: CPU, optional GPU, shared memory
// system, and a power specification.
type NodeConfig struct {
	Name string
	CPU  CPUConfig
	GPU  *GPUConfig // nil for CPU-only systems
	// DRAMBandwidth is the total bandwidth of the node's main memory in
	// bytes/second; CPU and (integrated) GPU ports contend for it.
	DRAMBandwidth float64
	DRAMBytes     float64
	Power         power.Spec
}

// JetsonTX1 returns the node the paper's cluster is built from: a Jetson
// TX1 board. 4x Cortex-A57 @ 1.73 GHz (the boards cap below the
// documented 1.9 GHz), 2 Maxwell SMs (256 CUDA cores) @ 0.998 GHz, 4 GB
// LPDDR4 shared between CPU and GPU. STREAM measures 10.7 GB/s from the
// CPU and 20 GB/s from the GPU.
func JetsonTX1() NodeConfig {
	return NodeConfig{
		Name: "Jetson TX1",
		CPU: CPUConfig{
			Name:                "Cortex-A57",
			Cores:               4,
			FreqHz:              1.73 * units.GHz,
			ISA:                 "64-bit ARMv8",
			ProcTech:            "20nm",
			IssueWidth:          2.0,
			PredictorQuality:    0.94,
			PredictorEntropyExp: 0.9,
			BranchPenalty:       16,
			SpecWidth:           2.0,
			L1DBytes:            32 * units.KiB,
			L1IBytes:            48 * units.KiB,
			L2Bytes:             2 * units.MiB,
			L2SharedBy:          4,
			L2Quality:           1.0,
			MemLatencyCycles:    220,
			MLP:                 4,
			MemBandwidth:        10.7 * units.GBps,
			TDPWatts:            15,
		},
		GPU: &GPUConfig{
			Name:            "TX1 Maxwell (integrated)",
			SMs:             2,
			CoresPerSM:      128,
			FreqHz:          0.998 * units.GHz,
			FP64Ratio:       1.0 / 32,
			FP16Ratio:       2.0, // Tegra Maxwell's vector half precision
			L2Bytes:         256 * units.KiB,
			MemBandwidth:    20 * units.GBps,
			DedicatedMemory: false,
			MemoryBytes:     4 * units.GiB, // shared with the CPU
			PCIeBandwidth:   0,
			LaunchOverhead:  12 * units.Microsecond,
			Efficiency:      0.70,
			ZeroCopyPenalty: 0.75,
			TDPWatts:        15,
		},
		DRAMBandwidth: 20 * units.GBps,
		DRAMBytes:     4 * units.GiB,
		Power: power.Spec{
			IdleWatts:        16, // whole board at the wall: SoC idle, DRAM, eMMC, fan, regulators
			CPUCoreWatts:     2.2,
			GPUSMWatts:       5.5,
			DRAMWattsPerGBps: 0.05,
			NICWatts:         0,    // set per network profile by the cluster builder
			PSUEfficiency:    0.80, // cheap per-board bricks
		},
	}
}

// CaviumThunderX returns the dual-socket Cavium ThunderX server of Sec.
// IV-A: 2 x 48 ARMv8 cores @ 2.0 GHz, 78 KB I / 32 KB D L1, 16 MB L2 per
// socket shared by all 48 cores, no L3. The microarchitectural parameters
// encode the paper's two diagnosed weaknesses: a weak branch predictor
// (short in-order pipeline descended from Octeon III) and very little L2
// per core under thread contention.
func CaviumThunderX() NodeConfig {
	return NodeConfig{
		Name: "Cavium ThunderX (2S)",
		CPU: CPUConfig{
			Name:                "ThunderX CN8890",
			Cores:               96,
			FreqHz:              2.0 * units.GHz,
			ISA:                 "64-bit ARMv8",
			ProcTech:            "28nm",
			IssueWidth:          1.25,
			PredictorQuality:    0.72,
			PredictorEntropyExp: 1.3,
			BranchPenalty:       9, // short pipeline keeps the penalty low...
			SpecWidth:           1.25,
			L1DBytes:            32 * units.KiB,
			L1IBytes:            78 * units.KiB,
			L2Bytes:             32 * units.MiB, // 16 MB per socket
			L2SharedBy:          96,
			L2Quality:           0.45,
			MemLatencyCycles:    320, // ...but the memory system is far away
			MLP:                 1.8,
			MemBandwidth:        68 * units.GBps, // 4x DDR4-2133 channels/socket
			TDPWatts:            240,             // two 120 W sockets
		},
		GPU:           nil,
		DRAMBandwidth: 68 * units.GBps,
		DRAMBytes:     128 * units.GiB,
		Power: power.Spec{
			IdleWatts:        120,
			CPUCoreWatts:     2.0,
			DRAMWattsPerGBps: 0.05,
			PSUEfficiency:    0.90,
		},
	}
}

// XeonGTX980 returns one node of the discrete-GPU comparison cluster of
// Sec. IV-B: an MSI GTX 980 (16 Maxwell SMs, 2048 CUDA cores @ 1.3 GHz,
// 4 GB GDDR5 @ 224 GB/s) hosted — because of ARM driver incompatibilities
// — in a Xeon E5-2630 v3 server, connected with 10 GbE.
func XeonGTX980() NodeConfig {
	return NodeConfig{
		Name: "Xeon + GTX 980",
		CPU: CPUConfig{
			Name:                "Xeon E5-2630 v3",
			Cores:               8,
			FreqHz:              2.4 * units.GHz,
			ISA:                 "x86-64",
			ProcTech:            "22nm",
			IssueWidth:          2.8,
			PredictorQuality:    0.985,
			PredictorEntropyExp: 0.85,
			BranchPenalty:       16,
			SpecWidth:           3.0,
			L1DBytes:            32 * units.KiB,
			L1IBytes:            32 * units.KiB,
			L2Bytes:             8 * 256 * units.KiB,
			L2SharedBy:          8,
			L2Quality:           1.6, // L3 backs the private L2s
			L3Bytes:             20 * units.MiB,
			MemLatencyCycles:    180,
			MLP:                 8,
			MemBandwidth:        45 * units.GBps,
			TDPWatts:            85,
		},
		GPU: &GPUConfig{
			Name:            "MSI GTX 980",
			SMs:             16,
			CoresPerSM:      128,
			FreqHz:          1.3 * units.GHz,
			FP64Ratio:       1.0 / 32,
			FP16Ratio:       1.0 / 64, // GM204 has no fast FP16 path
			L2Bytes:         2 * units.MiB,
			MemBandwidth:    224 * units.GBps * 0.7, // achievable GDDR5
			DedicatedMemory: true,
			MemoryBytes:     4 * units.GiB,
			PCIeBandwidth:   11 * units.GBps, // PCIe 3.0 x16 effective
			LaunchOverhead:  8 * units.Microsecond,
			Efficiency:      0.55, // driver + PCIe sync overheads on small per-iteration grids
			ZeroCopyPenalty: 0.50, // zero-copy over PCIe is worse still
			TDPWatts:        165,
		},
		DRAMBandwidth: 45 * units.GBps,
		DRAMBytes:     64 * units.GiB,
		Power: power.Spec{
			IdleWatts:        100, // the "Xeon power tax" the paper notes
			CPUCoreWatts:     5,
			GPUSMWatts:       9,
			DRAMWattsPerGBps: 0.05,
			PSUEfficiency:    0.88,
		},
	}
}

// JetsonTX2 returns the next-generation node the companion thesis (Fox,
// 2017) evaluates — the natural "what would the proposed organization
// look like a year later" extension: 4x Cortex-A57 plus 2 Denver cores
// (modeled as 4 fast A57-class cores at 2.0 GHz), 2 Pascal SMs (256 CUDA
// cores @ 1.3 GHz) with full-rate FP16, and almost 3x the memory
// bandwidth (LPDDR4-3732 x128).
func JetsonTX2() NodeConfig {
	cfg := JetsonTX1()
	cfg.Name = "Jetson TX2"
	cfg.CPU.Name = "Cortex-A57 + Denver2"
	cfg.CPU.FreqHz = 2.0 * units.GHz
	cfg.CPU.ProcTech = "16nm"
	cfg.CPU.MemBandwidth = 30 * units.GBps
	gpu := *cfg.GPU
	gpu.Name = "TX2 Pascal (integrated)"
	gpu.FreqHz = 1.3 * units.GHz
	gpu.FP64Ratio = 1.0 / 32
	gpu.FP16Ratio = 2.0
	gpu.MemBandwidth = 40 * units.GBps
	gpu.L2Bytes = 512 * units.KiB
	cfg.GPU = &gpu
	cfg.DRAMBandwidth = 40 * units.GBps
	cfg.DRAMBytes = 8 * units.GiB
	// Same board-power class as the TX1 at the wall.
	return cfg
}

// AppliedMicroXGene returns the X-Gene 1 server SoC the paper's related
// work studies (Azimi et al. [5] compare it against Xeon/Atom; the intro
// cites its 8 cores and the planned 32-core X-Gene 3): 8 custom ARMv8
// cores @ 2.4 GHz with a competent out-of-order pipeline but a dated
// memory system. Included so the NPB comparison can be extended across
// three ARM server generations.
func AppliedMicroXGene() NodeConfig {
	return NodeConfig{
		Name: "Applied Micro X-Gene 1",
		CPU: CPUConfig{
			Name:                "X-Gene 1",
			Cores:               8,
			FreqHz:              2.4 * units.GHz,
			ISA:                 "64-bit ARMv8",
			ProcTech:            "40nm",
			IssueWidth:          1.8,
			PredictorQuality:    0.9,
			PredictorEntropyExp: 1.1,
			BranchPenalty:       14,
			SpecWidth:           2.0,
			L1DBytes:            32 * units.KiB,
			L1IBytes:            32 * units.KiB,
			L2Bytes:             8 * units.MiB, // 256 KB L2/pair + 8 MB L3, folded
			L2SharedBy:          8,
			L2Quality:           0.9,
			MemLatencyCycles:    280,
			MLP:                 3,
			MemBandwidth:        22 * units.GBps,
			TDPWatts:            50,
		},
		GPU:           nil,
		DRAMBandwidth: 22 * units.GBps,
		DRAMBytes:     64 * units.GiB,
		Power: power.Spec{
			IdleWatts:        55,
			CPUCoreWatts:     4,
			DRAMWattsPerGBps: 0.05,
			PSUEfficiency:    0.88,
		},
	}
}
