// Package faults is the simulator's deterministic fault-injection plane.
//
// The paper's premise is that clusters of cheap commodity SoC boards can
// stand in for server-class machines — but commodity boards, PCIe-slot
// NICs, and unmanaged switches fail and straggle far more than the
// ThunderX-class servers they displace. This package lets a scenario
// declare that reality as a seeded Plan: straggler nodes (slowed compute),
// degraded and flapping links, message loss with an eager-retransmit
// latency tax, and whole-node crash+restart against a checkpoint/restart
// cost model (Young/Daly).
//
// Determinism contract: every random draw comes from a named sim.Stream
// derived from the plan seed (splitmix64, no math/rand), each cluster run
// builds its own Injector, and all draws happen inside the single-threaded
// simulation in event order. A seeded plan therefore produces bit-identical
// results across repeated runs and across the sequential and parallel
// run-planes, and the Plan participates in cluster.Config's fingerprint so
// the runner's memoization stays sound.
package faults

import (
	"math"
	"strconv"

	"clustersoc/internal/network"
	"clustersoc/internal/sim"
	"clustersoc/internal/units"
)

// DefaultRetransmitTimeout is the eager-retransmit delay charged for a
// lost message when the plan does not set one — the order of a commodity
// NIC driver's retransmit tick, far above the wire latencies modeled.
const DefaultRetransmitTimeout = 200 * units.Microsecond

// Plan declares what to inject. The zero value (and a nil *Plan) injects
// nothing: Enabled reports false and a cluster built with it is
// bit-identical to one built without a plan. All knobs are independent;
// any enabled subset composes.
type Plan struct {
	// Seed selects the plan's random universe. Two runs of the same plan
	// on the same scenario are bit-identical; changing only Seed redraws
	// which nodes straggle, when links flap, which messages are lost, and
	// when nodes crash.
	Seed uint64

	// StragglerFraction is the probability that a node is a straggler,
	// and StragglerFactor (> 1) the slowdown its compute pays — the
	// thermal-throttling / flaky-board effect testbed reports describe.
	StragglerFraction float64
	StragglerFactor   float64

	// DerateFraction is the probability that a node's link is degraded to
	// LinkDerate (in (0,1)) of profile throughput — a renegotiated or
	// half-duplex port.
	DerateFraction float64
	LinkDerate     float64

	// FlapMTBF, when > 0, gives every link an exponential flap clock with
	// that mean time between flaps; each flap lasts an exponential time
	// with mean FlapSeconds. During a flap the link admits no new service.
	FlapMTBF    float64
	FlapSeconds float64

	// MessageLossProb is the chance a cross-node message's first copy is
	// lost; the sender eagerly retransmits after RetransmitTimeout
	// (DefaultRetransmitTimeout if unset), paying a second wire transit.
	MessageLossProb   float64
	RetransmitTimeout float64

	// CrashMTBF, when > 0, gives every node an exponential crash clock.
	// A crash costs RestartSeconds of outage plus redoing all work since
	// the rank's last checkpoint. Checkpoints are taken at workload
	// checkpoint hooks once CheckpointInterval seconds have passed since
	// the previous one (0 = never checkpoint: every crash reworks from
	// the start), each costing CheckpointSeconds plus
	// stateBytes/CheckpointBandwidth (if a bandwidth is set).
	CrashMTBF           float64
	RestartSeconds      float64
	CheckpointInterval  float64
	CheckpointSeconds   float64
	CheckpointBandwidth float64
}

// Enabled reports whether the plan injects anything. Nil-safe.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.stragglers() || p.derates() ||
		p.FlapMTBF > 0 || p.MessageLossProb > 0 || p.CrashMTBF > 0
}

func (p *Plan) stragglers() bool { return p.StragglerFraction > 0 && p.StragglerFactor > 1 }
func (p *Plan) derates() bool    { return p.DerateFraction > 0 && p.LinkDerate > 0 && p.LinkDerate < 1 }

// LosesMessages reports whether the plan can lose messages (the simcheck
// audit uses it to flag retransmissions on a lossless plan).
func (p *Plan) LosesMessages() bool { return p != nil && p.MessageLossProb > 0 }

// Timeout returns the eager-retransmit delay (mpi.LossInjector).
func (p *Plan) timeout() float64 {
	if p.RetransmitTimeout > 0 {
		return p.RetransmitTimeout
	}
	return DefaultRetransmitTimeout
}

// OptimalInterval returns the Young/Daly first-order optimum for the
// checkpoint interval, sqrt(2 · C · MTBF), given the per-checkpoint cost
// C and the mean time between failures.
func OptimalInterval(checkpointCost, mtbf float64) float64 {
	return math.Sqrt(2 * checkpointCost * mtbf)
}

// Stats is a run's fault accounting, attached to cluster.Result (omitted
// from JSON artifacts when no plan was active, preserving byte-identical
// golden captures).
type Stats struct {
	StragglerNodes int // nodes drawn as stragglers
	DeratedNodes   int // nodes with degraded links

	Crashes            uint64  // node crashes observed by the workload
	CrashOutageSeconds float64 // restart outage paid across ranks
	ReworkSeconds      float64 // lost work redone across ranks

	Checkpoints               uint64  // checkpoints taken across ranks
	CheckpointOverheadSeconds float64 // time spent taking them

	LostMessages       uint64  // messages whose first wire copy was lost
	RetransmittedBytes float64 // extra wire bytes the retransmits carried

	LinkDownDelays        uint64  // bookings pushed past a down window
	LinkDownDelaySeconds  float64 // total service-start delay they paid
	FlapRestoresCancelled uint64  // flap recoveries superseded by a crash
}

// RankState is one rank's resilience state: how much productive work it
// has done since its last checkpoint (or crash settlement), when its
// last hook returned, and how many of its node's crashes it has already
// paid for. The zero value is correct for a rank starting at t=0 with an
// initial checkpoint.
//
// Rework is accounted in productive seconds, not wall time: the time a
// rank spends paying a crash penalty is not work that a later crash can
// destroy again. Accounting it in wall time compounds — with no
// checkpoints every simulated second is eventually re-paid as rework and
// the job (realistically, but uselessly) never finishes — while
// productive-time rework telescopes to at most the fault-free runtime.
type RankState struct {
	work        float64 // uncheckpointed productive seconds
	lastSeen    float64 // time the previous hook returned
	lastBlocked float64 // the rank's blocked-seconds at that hook
	crashIdx    int
}

// nodeCrash is one node's lazily materialized crash history: times is the
// strictly increasing sequence of crash instants drawn so far, reported
// counts how many of them have been charged to Stats (the first observing
// rank charges a crash; its node-mates redo work but don't recount it).
type nodeCrash struct {
	stream   *sim.Stream
	times    []float64
	reported int
}

// ensureUntil materializes crash times through t. Times strictly increase
// by at least the restart outage, so the loop terminates.
func (nc *nodeCrash) ensureUntil(t, mtbf, restart float64) {
	for {
		var last float64
		if n := len(nc.times); n > 0 {
			last = nc.times[n-1]
		}
		if last > t {
			return
		}
		nc.times = append(nc.times, last+restart+nc.stream.Exp(mtbf))
	}
}

// flapSource generates one link's flap windows on demand
// (network.FlapSource): exponential up-time, exponential down-time,
// windows strictly ordered and non-overlapping. Never exhausts.
type flapSource struct {
	s         *sim.Stream
	cursor    float64
	mtbf, dur float64
}

func (fs *flapSource) Next() (start, end float64) {
	start = fs.cursor + fs.s.Exp(fs.mtbf)
	end = start + fs.s.Exp(fs.dur)
	fs.cursor = end
	return start, end
}

// Injector is a plan instantiated against one cluster run: streams drawn,
// straggler/derate coins flipped, link faults installed. Build one per
// cluster (cluster.New does); sharing across runs would entangle their
// random sequences. All methods are nil-safe no-ops so fault-free paths
// need no branching at call sites.
type Injector struct {
	plan Plan
	eng  *sim.Engine
	nw   *network.Network

	factor []float64 // per-node compute multiplier (1 = healthy)
	loss   *sim.Stream
	crash  []nodeCrash

	stats Stats
}

// NewInjector draws the plan's static choices (which nodes straggle,
// which links degrade), installs link fault state into the network, and
// prepares the dynamic streams. nodes is the compute-node count — a file
// server port, if any, stays fault-free.
func NewInjector(plan Plan, eng *sim.Engine, nw *network.Network, nodes int) *Injector {
	in := &Injector{plan: plan, eng: eng, nw: nw, factor: make([]float64, nodes)}
	straggle := sim.NewStream(plan.Seed, "faults/straggler")
	derate := sim.NewStream(plan.Seed, "faults/derate")
	for i := 0; i < nodes; i++ {
		in.factor[i] = 1
		if plan.stragglers() && straggle.Float64() < plan.StragglerFraction {
			in.factor[i] = plan.StragglerFactor
			in.stats.StragglerNodes++
		}
		d := 0.0
		if plan.derates() && derate.Float64() < plan.DerateFraction {
			d = plan.LinkDerate
			in.stats.DeratedNodes++
		}
		var fs network.FlapSource
		if plan.FlapMTBF > 0 {
			fs = &flapSource{
				s:    sim.NewStream(plan.Seed, "faults/flap/"+strconv.Itoa(i)),
				mtbf: plan.FlapMTBF,
				dur:  math.Max(plan.FlapSeconds, 1*units.Microsecond),
			}
		}
		if d > 0 || fs != nil {
			nw.InjectLinkFaults(i, d, fs)
		}
	}
	if plan.MessageLossProb > 0 {
		in.loss = sim.NewStream(plan.Seed, "faults/loss")
	}
	if plan.CrashMTBF > 0 {
		in.crash = make([]nodeCrash, nodes)
		for i := range in.crash {
			in.crash[i].stream = sim.NewStream(plan.Seed, "faults/crash/"+strconv.Itoa(i))
		}
	}
	return in
}

// ComputeFactor returns the node's compute-slowdown multiplier (1 =
// healthy). Nil-safe.
func (in *Injector) ComputeFactor(node int) float64 {
	if in == nil || node >= len(in.factor) {
		return 1
	}
	return in.factor[node]
}

// Lose implements mpi.LossInjector: one deterministic coin per cross-node
// message, drawn in Send order inside the single-threaded engine.
func (in *Injector) Lose(src, dst int, bytes float64) bool {
	if in == nil || in.loss == nil {
		return false
	}
	if in.loss.Float64() < in.plan.MessageLossProb {
		in.stats.LostMessages++
		return true
	}
	return false
}

// Timeout implements mpi.LossInjector.
func (in *Injector) Timeout() float64 { return in.plan.timeout() }

// Checkpoint is the workload resilience hook, called at natural iteration
// boundaries with the rank's restorable state size. It settles any crash
// of the rank's node since the rank's last hook — the rank pays the
// restart outage plus redoing the work since its last checkpoint, and the
// first rank to observe a crash takes the node's link down for the
// restart window (cancelling a pending flap recovery: the NIC reset
// supersedes it) — then takes a checkpoint if the plan's interval has
// elapsed. Nil-safe: with no injector or no crash model it returns
// immediately.
func (in *Injector) Checkpoint(p *sim.Process, node int, st *RankState, stateBytes float64) {
	if in == nil || in.crash == nil {
		return
	}
	nc := &in.crash[node]
	now := p.Now()
	// Productive work excludes time the rank spent blocked on peers: a
	// neighbour's crash penalty stalls this rank's receives, and counting
	// that stall as work to be redone would let penalties compound across
	// ranks through the communication graph.
	if w := (now - st.lastSeen) - (p.BlockedSeconds() - st.lastBlocked); w > 0 {
		st.work += w
	}
	nc.ensureUntil(now, in.plan.CrashMTBF, in.plan.RestartSeconds)
	for st.crashIdx < len(nc.times) && nc.times[st.crashIdx] <= now {
		c := nc.times[st.crashIdx]
		st.crashIdx++
		if st.crashIdx > nc.reported {
			nc.reported = st.crashIdx
			in.stats.Crashes++
			in.nw.ForceDown(node, c, c+in.plan.RestartSeconds)
		}
		// The crash destroys the rank's uncheckpointed productive work;
		// the settlement redoes it and re-establishes state at the hook,
		// so successive settlements telescope instead of compounding.
		rework := st.work
		st.work = 0
		p.Sleep(in.plan.RestartSeconds + rework)
		in.stats.CrashOutageSeconds += in.plan.RestartSeconds
		in.stats.ReworkSeconds += rework
	}
	// Checkpoint once the plan's interval of productive work has
	// accumulated — "every N seconds of compute", the way applications
	// time their checkpoints.
	if iv := in.plan.CheckpointInterval; iv > 0 && st.work >= iv {
		cost := in.plan.CheckpointSeconds
		if bw := in.plan.CheckpointBandwidth; bw > 0 {
			cost += stateBytes / bw
		}
		p.Sleep(cost)
		st.work = 0
		in.stats.Checkpoints++
		in.stats.CheckpointOverheadSeconds += cost
	}
	st.lastSeen = p.Now()
	st.lastBlocked = p.BlockedSeconds()
}

// Stats returns the injector's own accounting. The cluster completes it
// with the communicator's retransmitted bytes and the network's link-down
// delay totals before attaching it to the Result.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}
