package faults

import (
	"math"
	"testing"

	"clustersoc/internal/network"
	"clustersoc/internal/sim"
)

func TestZeroPlanInjectsNothing(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Enabled() || nilPlan.LosesMessages() {
		t.Fatal("nil plan reports enabled")
	}
	if (&Plan{}).Enabled() {
		t.Fatal("zero plan reports enabled")
	}
	// A seed alone enables nothing: the seed only selects the universe.
	if (&Plan{Seed: 99}).Enabled() {
		t.Fatal("seed-only plan reports enabled")
	}
	// Degenerate knob values must not enable their class.
	for _, p := range []Plan{
		{StragglerFraction: 0.5},                     // no factor
		{StragglerFraction: 0.5, StragglerFactor: 1}, // factor 1 = healthy
		{DerateFraction: 0.5},                        // no derate level
		{DerateFraction: 0.5, LinkDerate: 1},         // full rate = healthy
	} {
		if p.Enabled() {
			t.Fatalf("degenerate plan %+v reports enabled", p)
		}
	}
	if !(&Plan{StragglerFraction: 0.5, StragglerFactor: 1.5}).Enabled() {
		t.Fatal("straggler plan reports disabled")
	}
	if !(&Plan{MessageLossProb: 0.1}).LosesMessages() {
		t.Fatal("lossy plan reports lossless")
	}
}

func TestOptimalInterval(t *testing.T) {
	// Young/Daly: sqrt(2 * C * MTBF).
	if got, want := OptimalInterval(2, 100), 20.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("OptimalInterval(2, 100) = %v, want %v", got, want)
	}
	if got := OptimalInterval(0, 100); got != 0 {
		t.Fatalf("free checkpoints should give interval 0 (checkpoint always), got %v", got)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if f := in.ComputeFactor(3); f != 1 {
		t.Fatalf("nil injector compute factor = %v, want 1", f)
	}
	if in.Lose(0, 1, 100) {
		t.Fatal("nil injector loses messages")
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector stats = %+v, want zero", s)
	}
	// Checkpoint on a nil injector must not touch the process.
	e := sim.NewEngine()
	e.Spawn("rank", func(p *sim.Process) {
		var st RankState
		in.Checkpoint(p, 0, &st, 1e6)
		if p.Now() != 0 {
			t.Error("nil injector Checkpoint advanced time")
		}
	})
	e.Run()
}

// Two injectors from the same plan draw identical static choices and
// identical dynamic sequences; a different seed redraws them.
func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{
		Seed:              7,
		StragglerFraction: 0.5, StragglerFactor: 2,
		DerateFraction: 0.5, LinkDerate: 0.3,
		MessageLossProb: 0.3,
	}
	mk := func(p Plan) *Injector {
		e := sim.NewEngine()
		return NewInjector(p, e, network.New(e, 8, network.GigE), 8)
	}
	a, b := mk(plan), mk(plan)
	for n := 0; n < 8; n++ {
		if a.ComputeFactor(n) != b.ComputeFactor(n) {
			t.Fatalf("node %d compute factor differs between identical plans", n)
		}
	}
	for i := 0; i < 100; i++ {
		if a.Lose(0, 1, 100) != b.Lose(0, 1, 100) {
			t.Fatalf("loss draw %d differs between identical plans", i)
		}
	}
	// A different seed must (for this configuration) give a different
	// universe — check the loss sequence, the highest-entropy stream.
	c := mk(Plan{Seed: 8, MessageLossProb: 0.3})
	diff := false
	for i := 0; i < 100; i++ {
		x := a.Lose(0, 1, 100)
		if c.Lose(0, 1, 100) != x {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seeds 7 and 8 produced identical loss sequences")
	}
}

// Straggler and derate coins are drawn per node in node order, so the set
// of afflicted nodes is a pure function of (seed, node count) — and the
// observed fractions track the plan over many nodes.
func TestStaticDrawFractions(t *testing.T) {
	plan := Plan{Seed: 3, StragglerFraction: 0.25, StragglerFactor: 1.5}
	e := sim.NewEngine()
	in := NewInjector(plan, e, network.New(e, 512, network.GigE), 512)
	n := in.Stats().StragglerNodes
	if n < 90 || n > 170 {
		t.Fatalf("512 nodes at fraction 0.25 drew %d stragglers — far off the mean of 128", n)
	}
	for i := 0; i < 512; i++ {
		f := in.ComputeFactor(i)
		if f != 1 && f != 1.5 {
			t.Fatalf("node %d compute factor %v, want 1 or 1.5", i, f)
		}
	}
}

// The crash settlement: a rank that did w productive seconds before its
// node's crash pays restart + w, telescoping — the penalty time itself is
// not re-paid at the next settlement.
func TestCrashSettlementTelescopes(t *testing.T) {
	const (
		mtbf    = 5.0
		restart = 1.0
	)
	plan := Plan{Seed: 1, CrashMTBF: mtbf, RestartSeconds: restart}
	e := sim.NewEngine()
	in := NewInjector(plan, e, network.New(e, 1, network.GigE), 1)

	// Materialize the node's first crash time to aim the test at it.
	in.crash[0].ensureUntil(0, mtbf, restart)
	c0 := in.crash[0].times[0]

	var afterFirst, afterSecond float64
	e.Spawn("rank", func(p *sim.Process) {
		var st RankState
		p.Sleep(c0 + 0.5) // work past the crash
		in.Checkpoint(p, 0, &st, 0)
		afterFirst = p.Now()
		// The settlement slept restart + (c0 + 0.5) of rework; none of that
		// penalty counts as work, so an immediate second hook pays nothing.
		in.Checkpoint(p, 0, &st, 0)
		afterSecond = p.Now()
	})
	e.Run()

	wantFirst := (c0 + 0.5) + restart + (c0 + 0.5)
	if math.Abs(afterFirst-wantFirst) > 1e-9 {
		t.Fatalf("first settlement ended at %v, want %v (restart + rework of all prior work)", afterFirst, wantFirst)
	}
	if afterSecond != afterFirst {
		t.Fatalf("second hook advanced time to %v from %v — penalty time was re-counted as work", afterSecond, afterFirst)
	}
	st := in.Stats()
	if st.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", st.Crashes)
	}
	if math.Abs(st.ReworkSeconds-(c0+0.5)) > 1e-9 {
		t.Fatalf("rework = %v, want %v", st.ReworkSeconds, c0+0.5)
	}
	if math.Abs(st.CrashOutageSeconds-restart) > 1e-9 {
		t.Fatalf("outage = %v, want %v", st.CrashOutageSeconds, restart)
	}
}

// A checkpoint caps the rework of a later crash at the work done since the
// checkpoint, and checkpoints fire on accumulated productive work, not on
// every hook.
func TestCheckpointLimitsRework(t *testing.T) {
	const (
		mtbf     = 1e9 // no crash interferes
		restart  = 1.0
		interval = 2.0
		cost     = 0.25
	)
	plan := Plan{
		Seed: 1, CrashMTBF: mtbf, RestartSeconds: restart,
		CheckpointInterval: interval, CheckpointSeconds: cost,
		CheckpointBandwidth: 1e6,
	}
	e := sim.NewEngine()
	in := NewInjector(plan, e, network.New(e, 1, network.GigE), 1)
	e.Spawn("rank", func(p *sim.Process) {
		var st RankState
		p.Sleep(1.0)
		in.Checkpoint(p, 0, &st, 5e5) // 1s of work < interval: no checkpoint
		if got := in.Stats().Checkpoints; got != 0 {
			t.Errorf("checkpointed after 1s of work with a 2s interval (%d)", got)
		}
		p.Sleep(1.5)
		in.Checkpoint(p, 0, &st, 5e5) // 2.5s accumulated: checkpoint
	})
	e.Run()
	st := in.Stats()
	if st.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", st.Checkpoints)
	}
	// Cost = CheckpointSeconds + stateBytes/bandwidth = 0.25 + 0.5.
	if want := cost + 5e5/1e6; math.Abs(st.CheckpointOverheadSeconds-want) > 1e-9 {
		t.Fatalf("checkpoint overhead = %v, want %v", st.CheckpointOverheadSeconds, want)
	}
}

// Crash times strictly increase and are separated by at least the restart
// outage, so settlement loops terminate.
func TestCrashTimesStrictlyIncrease(t *testing.T) {
	nc := nodeCrash{stream: sim.NewStream(5, "faults/crash/0")}
	nc.ensureUntil(100, 2.0, 0.5)
	if len(nc.times) < 10 {
		t.Fatalf("only %d crashes in 100s at MTBF 2", len(nc.times))
	}
	prev := 0.0
	for i, c := range nc.times {
		if c-prev < 0.5 {
			t.Fatalf("crash %d at %v within the restart outage of its predecessor at %v", i, c, prev)
		}
		prev = c
	}
}

// Flap windows are strictly ordered and non-overlapping.
func TestFlapSourceOrdered(t *testing.T) {
	fs := &flapSource{s: sim.NewStream(9, "faults/flap/0"), mtbf: 1, dur: 0.1}
	prevEnd := 0.0
	for i := 0; i < 1000; i++ {
		s, en := fs.Next()
		if s < prevEnd || en <= s {
			t.Fatalf("window %d [%v, %v) overlaps previous end %v or is empty", i, s, en, prevEnd)
		}
		prevEnd = en
	}
}
