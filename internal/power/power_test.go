package power

import (
	"math"
	"testing"
	"testing/quick"
)

func spec() Spec {
	return Spec{
		IdleWatts:        16,
		CPUCoreWatts:     2.2,
		GPUSMWatts:       5.5,
		DRAMWattsPerGBps: 0.05,
		NICWatts:         5,
		PSUEfficiency:    0.8,
	}
}

func TestIdleEnergy(t *testing.T) {
	m := Meter{Spec: spec()}
	e := m.Energy(10)
	want := 16.0*10/0.8 + 5*10
	if math.Abs(e-want) > 1e-9 {
		t.Fatalf("idle energy %v, want %v", e, want)
	}
}

func TestActivityEnergy(t *testing.T) {
	m := Meter{Spec: spec()}
	m.AddCPU(4)     // 4 core-seconds
	m.AddGPU(2)     // 2 SM-seconds
	m.AddDRAM(10e9) // 10 GB
	idle := Meter{Spec: spec()}
	e := m.Energy(1) - idle.Energy(1)
	want := (4*2.2 + 2*5.5 + 10*0.05) / 0.8
	if math.Abs(e-want) > 1e-9 {
		t.Fatalf("dynamic energy %v, want %v", e, want)
	}
}

func TestMaxWatts(t *testing.T) {
	s := spec()
	max := s.MaxWatts(4, 2, 20)
	want := (16+4*2.2+2*5.5+20*0.05)/0.8 + 5
	if math.Abs(max-want) > 1e-9 {
		t.Fatalf("max watts %v, want %v", max, want)
	}
	// A TX1-style node lands in the tens of watts, 8 of them near the
	// paper's ~350 W cluster.
	if max < 30 || max > 60 {
		t.Fatalf("node max %v W implausible", max)
	}
}

func TestAveragePower(t *testing.T) {
	m := Meter{Spec: spec()}
	m.AddCPU(5)
	if got := m.AveragePower(5); math.Abs(got-(16/0.8+5+2.2/0.8)) > 1e-9 {
		t.Fatalf("avg power %v", got)
	}
	if (&Meter{Spec: spec()}).AveragePower(0) != 0 {
		t.Fatal("zero duration should give zero power")
	}
}

// Energy is additive in busy time and monotone in duration.
func TestEnergyProperties(t *testing.T) {
	f := func(cpuRaw, gpuRaw uint8, durRaw uint8) bool {
		cpu, gpu := float64(cpuRaw)/10, float64(gpuRaw)/10
		dur := float64(durRaw)/10 + cpu + gpu + 1
		a := Meter{Spec: spec()}
		a.AddCPU(cpu)
		a.AddGPU(gpu)
		b := Meter{Spec: spec()}
		b.AddCPU(cpu)
		b.AddGPU(gpu)
		b.AddCPU(1) // extra work must cost extra energy
		return b.Energy(dur) > a.Energy(dur) && a.Energy(dur+1) > a.Energy(dur)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSensorIntegration(t *testing.T) {
	s := NewSensor(10) // the paper's 10 Hz probe
	for i := 0; i < 50; i++ {
		s.Sample(100) // constant 100 W for 5 seconds
	}
	if s.Samples() != 50 {
		t.Fatalf("samples %d", s.Samples())
	}
	if math.Abs(s.Energy()-500) > 1e-9 {
		t.Fatalf("sensor energy %v, want 500 J", s.Energy())
	}
	if NewSensor(0).Energy() != 0 {
		t.Fatal("zero-rate sensor should integrate nothing")
	}
}

func TestMFLOPSPerWatt(t *testing.T) {
	if got := MFLOPSPerWatt(1e9, 10); math.Abs(got-100) > 1e-9 {
		t.Fatalf("1 GFLOPS at 10 W = %v MFLOPS/W, want 100", got)
	}
	if MFLOPSPerWatt(1e9, 0) != 0 {
		t.Fatal("zero power must not divide")
	}
}

// A zero-value Spec (PSUEfficiency unset) models an ideal supply: dividing
// by the zero efficiency used to send energy to +Inf and poison every
// MFLOPS/W figure downstream.
func TestZeroValueSpecIsIdealSupply(t *testing.T) {
	var m Meter // zero Spec
	if e := m.Energy(10); e != 0 {
		t.Fatalf("zero-value meter energy = %v, want 0", e)
	}
	m.Spec.IdleWatts = 10
	if e := m.Energy(2); e != 20 {
		t.Fatalf("unset PSU efficiency must mean 1.0: energy = %v, want 20", e)
	}
	m.Spec.PSUEfficiency = math.NaN()
	if e := m.Energy(2); e != 20 {
		t.Fatalf("NaN PSU efficiency must mean 1.0: energy = %v, want 20", e)
	}
	s := Spec{IdleWatts: 10, PSUEfficiency: -0.5}
	if w := s.MaxWatts(0, 0, 0); w != 10 {
		t.Fatalf("negative PSU efficiency must mean 1.0: max watts = %v, want 10", w)
	}
}
