// Package power models the energy instrumentation of the paper: each
// system's power is sensed at the wall (a 10 Hz AC current probe) and two
// efficiency metrics are reported — total energy, and FLOPS per watt.
//
// The node model is the usual idle + activity decomposition: a constant
// idle draw plus dynamic power proportional to the busy time of each CPU
// core, GPU SM, and the NIC, divided by the PSU efficiency to convert DC
// component power into the AC-side numbers the paper reports.
package power

// Spec parameterizes one node's (or server's) power behaviour.
type Spec struct {
	// IdleWatts is the DC draw with everything idle (board, DRAM refresh,
	// storage, fans).
	IdleWatts float64
	// CPUCoreWatts is the additional draw of one fully-busy CPU core.
	CPUCoreWatts float64
	// GPUSMWatts is the additional draw of one fully-busy GPU SM.
	GPUSMWatts float64
	// DRAMWattsPerGBps is the activity cost of memory traffic.
	DRAMWattsPerGBps float64
	// NICWatts is the static adder of the installed NIC measured at the
	// wall (the 10 GbE card costs ~5 W per node).
	NICWatts float64
	// PSUEfficiency converts DC power to the AC wall power the paper's
	// probe sees. Unset (or otherwise non-positive / NaN) means an ideal
	// supply: a zero-value Spec must meter zero joules, not +Inf — an
	// unset efficiency once propagated silently into every MFLOPS/W
	// figure as NaN.
	PSUEfficiency float64
}

// psu returns the effective PSU efficiency, treating anything that is not
// a positive number as 1 (the comparison is written to also catch NaN).
func (s Spec) psu() float64 {
	if !(s.PSUEfficiency > 0) {
		return 1
	}
	return s.PSUEfficiency
}

// MaxWatts returns the AC power at full load with all cores and SMs busy
// and dramGBps of memory traffic.
func (s Spec) MaxWatts(cores, sms int, dramGBps float64) float64 {
	dc := s.IdleWatts + float64(cores)*s.CPUCoreWatts + float64(sms)*s.GPUSMWatts +
		dramGBps*s.DRAMWattsPerGBps
	return dc/s.psu() + s.NICWatts
}

// Meter integrates one node's energy over a run from component busy times.
type Meter struct {
	Spec Spec

	coreBusy float64 // core-seconds of CPU activity
	smBusy   float64 // SM-seconds of GPU activity
	dramGB   float64 // gigabytes moved through DRAM
}

// AddCPU records core-seconds of CPU activity.
func (m *Meter) AddCPU(coreSeconds float64) { m.coreBusy += coreSeconds }

// AddGPU records SM-seconds of GPU activity.
func (m *Meter) AddGPU(smSeconds float64) { m.smBusy += smSeconds }

// AddDRAM records bytes of DRAM traffic.
func (m *Meter) AddDRAM(bytes float64) { m.dramGB += bytes / 1e9 }

// Energy returns the AC-side joules consumed over a run of the given
// duration (seconds).
func (m *Meter) Energy(duration float64) float64 {
	dc := m.Spec.IdleWatts*duration +
		m.Spec.CPUCoreWatts*m.coreBusy +
		m.Spec.GPUSMWatts*m.smBusy +
		m.Spec.DRAMWattsPerGBps*m.dramGB
	return dc/m.Spec.psu() + m.Spec.NICWatts*duration
}

// AveragePower returns mean AC watts over the run.
func (m *Meter) AveragePower(duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	return m.Energy(duration) / duration
}

// Sensor mimics the paper's 10 Hz wall-power probe: it samples a power
// trace at fixed intervals and integrates, demonstrating that sampled and
// analytic energy agree for well-behaved traces.
type Sensor struct {
	Hz      float64
	samples []float64
}

// NewSensor returns a sensor sampling at hz.
func NewSensor(hz float64) *Sensor { return &Sensor{Hz: hz} }

// Sample records an instantaneous watts reading.
func (s *Sensor) Sample(watts float64) { s.samples = append(s.samples, watts) }

// Samples returns the number of samples recorded.
func (s *Sensor) Samples() int { return len(s.samples) }

// Energy integrates the sampled trace (rectangle rule).
func (s *Sensor) Energy() float64 {
	if s.Hz <= 0 {
		return 0
	}
	sum := 0.0
	for _, w := range s.samples {
		sum += w
	}
	return sum / s.Hz
}

// MFLOPSPerWatt converts a throughput (FLOP/s) and average power (W) into
// the paper's efficiency metric.
func MFLOPSPerWatt(flopsPerSec, watts float64) float64 {
	if watts <= 0 {
		return 0
	}
	return flopsPerSec / 1e6 / watts
}
