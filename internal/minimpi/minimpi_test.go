package minimpi

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSendRecv(t *testing.T) {
	w := NewWorld(2)
	var got []float64
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 5, []float64{1, 2, 3})
		} else {
			got = r.Recv(0, 5)
		}
	})
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSendCopiesData(t *testing.T) {
	w := NewWorld(2)
	var got []float64
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			buf := []float64{42}
			r.Send(1, 1, buf)
			buf[0] = -1 // mutate after send; receiver must see 42
			r.Barrier()
		} else {
			got = r.Recv(0, 1)
			r.Barrier()
		}
	})
	if got[0] != 42 {
		t.Fatal("send must copy the payload")
	}
}

func TestBarrierOrdersSides(t *testing.T) {
	w := NewWorld(4)
	var before, after int64
	w.Run(func(r *Rank) {
		atomic.AddInt64(&before, 1)
		r.Barrier()
		if atomic.LoadInt64(&before) != 4 {
			atomic.AddInt64(&after, 1) // someone left before all arrived
		}
	})
	if after != 0 {
		t.Fatal("barrier leaked")
	}
}

func TestBcast(t *testing.T) {
	w := NewWorld(5)
	results := make([][]float64, 5)
	w.Run(func(r *Rank) {
		var data []float64
		if r.ID == 2 {
			data = []float64{3.14, 2.72}
		}
		results[r.ID] = r.Bcast(2, 7, data)
	})
	for id, res := range results {
		if len(res) != 2 || res[0] != 3.14 {
			t.Fatalf("rank %d got %v", id, res)
		}
	}
}

func TestAllreduceSumMatchesSerial(t *testing.T) {
	f := func(vals [6]int8) bool {
		w := NewWorld(3)
		results := make([][]float64, 3)
		w.Run(func(r *Rank) {
			contrib := []float64{float64(vals[r.ID*2]), float64(vals[r.ID*2+1])}
			results[r.ID] = r.Allreduce(9, contrib, Sum)
		})
		want0 := float64(vals[0]) + float64(vals[2]) + float64(vals[4])
		want1 := float64(vals[1]) + float64(vals[3]) + float64(vals[5])
		for _, res := range results {
			if math.Abs(res[0]-want0) > 1e-12 || math.Abs(res[1]-want1) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMax(t *testing.T) {
	w := NewWorld(4)
	var out float64
	w.Run(func(r *Rank) {
		v := r.AllreduceScalar(3, float64(r.ID*r.ID), Max)
		if r.ID == 0 {
			out = v
		}
	})
	if out != 9 {
		t.Fatalf("max = %v", out)
	}
}

func TestAlltoallPermutesChunks(t *testing.T) {
	n := 4
	w := NewWorld(n)
	results := make([][][]float64, n)
	w.Run(func(r *Rank) {
		chunks := make([][]float64, n)
		for d := 0; d < n; d++ {
			chunks[d] = []float64{float64(r.ID*10 + d)}
		}
		results[r.ID] = r.Alltoall(4, chunks)
	})
	for me := 0; me < n; me++ {
		for src := 0; src < n; src++ {
			want := float64(src*10 + me)
			if results[me][src][0] != want {
				t.Fatalf("rank %d chunk from %d = %v, want %v", me, src, results[me][src][0], want)
			}
		}
	}
}

func TestAlltoallIntsVariableSizes(t *testing.T) {
	n := 3
	w := NewWorld(n)
	results := make([][][]int32, n)
	w.Run(func(r *Rank) {
		chunks := make([][]int32, n)
		for d := 0; d < n; d++ {
			for k := 0; k <= r.ID; k++ { // rank r sends r+1 keys everywhere
				chunks[d] = append(chunks[d], int32(r.ID))
			}
		}
		results[r.ID] = r.AlltoallInts(5, chunks)
	})
	for me := 0; me < n; me++ {
		for src := 0; src < n; src++ {
			if len(results[me][src]) != src+1 {
				t.Fatalf("rank %d got %d keys from %d, want %d", me, len(results[me][src]), src, src+1)
			}
		}
	}
}

func TestGatherOrdersByRank(t *testing.T) {
	w := NewWorld(4)
	var parts [][]float64
	w.Run(func(r *Rank) {
		got := r.Gather(1, 8, []float64{float64(r.ID)})
		if r.ID == 1 {
			parts = got
		}
	})
	for i, p := range parts {
		if p[0] != float64(i) {
			t.Fatalf("gather out of order: %v", parts)
		}
	}
}

func TestSingleRankCollectivesAreLocal(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(r *Rank) {
		if v := r.AllreduceScalar(1, 5, Sum); v != 5 {
			t.Errorf("allreduce %v", v)
		}
		if b := r.Bcast(0, 2, []float64{1}); b[0] != 1 {
			t.Errorf("bcast %v", b)
		}
		r.Barrier()
	})
}
