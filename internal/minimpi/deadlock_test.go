package minimpi

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// A chunked alltoall parks many messages per peer pair before anyone
// receives. With the historical fixed depth of 64 this pattern deadlocks
// as soon as chunks exceed the buffer; the world-scaled depth (4n) must
// absorb it.
func TestChunkedAlltoallExceedsOldBufferDepth(t *testing.T) {
	n := 20 // depth = 4*20 = 80
	chunks := 70
	if chunks <= 64 || chunks > eagerDepth(n) {
		t.Fatalf("test miscalibrated: chunks=%d must exceed the old depth 64 and fit the new depth %d", chunks, eagerDepth(n))
	}
	w := NewWorld(n)
	w.SetStallTimeout(5 * time.Second) // fail fast if the fix regresses
	var mu sync.Mutex
	received := 0
	w.Run(func(r *Rank) {
		// Send every chunk to every peer before receiving anything — the
		// bulk-synchronous worst case for eager buffering.
		for d := 0; d < n; d++ {
			if d == r.ID {
				continue
			}
			for k := 0; k < chunks; k++ {
				r.Send(d, k, []float64{float64(r.ID)})
			}
		}
		for s := 0; s < n; s++ {
			if s == r.ID {
				continue
			}
			for k := 0; k < chunks; k++ {
				got := r.Recv(s, k)
				if len(got) != 1 || got[0] != float64(s) {
					t.Errorf("rank %d: bad chunk from %d: %v", r.ID, s, got)
				}
				mu.Lock()
				received++
				mu.Unlock()
			}
		}
	})
	if want := n * (n - 1) * chunks; received != want {
		t.Fatalf("received %d chunks, want %d", received, want)
	}
}

func TestEagerDepthScalesWithWorld(t *testing.T) {
	if d := eagerDepth(2); d != 64 {
		t.Fatalf("small worlds must keep the historical depth 64, got %d", d)
	}
	if d := eagerDepth(100); d != 400 {
		t.Fatalf("eagerDepth(100) = %d, want 400", d)
	}
}

// A genuinely deadlocked exchange (the receiver never drains) must panic
// with a diagnostic instead of hanging the process forever.
func TestStallDetectorPanicsOnDeadlock(t *testing.T) {
	w := NewWorld(2)
	w.SetStallTimeout(100 * time.Millisecond)
	depth := eagerDepth(2)
	var mu sync.Mutex
	var diagnostic string
	w.Run(func(r *Rank) {
		if r.ID != 0 {
			return // never receives: rank 0's channel to it fills up
		}
		defer func() {
			if msg := recover(); msg != nil {
				mu.Lock()
				diagnostic, _ = msg.(string)
				mu.Unlock()
			}
		}()
		for i := 0; i <= depth; i++ { // one more than the buffer holds
			r.Send(1, i, []float64{1})
		}
		t.Error("overfilling send returned instead of panicking")
	})
	if !strings.Contains(diagnostic, "deadlocked") || !strings.Contains(diagnostic, "rank 0") {
		t.Fatalf("stall diagnostic missing context: %q", diagnostic)
	}
}

// A slow-but-draining receiver is not a deadlock: the send must wait out
// transient fullness without tripping the detector.
func TestStallDetectorToleratesSlowReceiver(t *testing.T) {
	w := NewWorld(2)
	w.SetStallTimeout(10 * time.Second)
	depth := eagerDepth(2)
	total := depth + 16
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			for i := 0; i < total; i++ {
				r.Send(1, 0, []float64{float64(i)})
			}
			return
		}
		time.Sleep(50 * time.Millisecond) // let the channel fill
		for i := 0; i < total; i++ {
			if got := r.Recv(0, 0); got[0] != float64(i) {
				t.Errorf("message %d out of order: %v", i, got)
			}
		}
	})
}
