package minimpi_test

import (
	"fmt"

	"clustersoc/internal/minimpi"
)

// A four-rank program: everyone contributes a value, the allreduce makes
// the sum visible everywhere — the runtime internal/apps builds the
// distributed solvers on.
func ExampleWorld_Run() {
	w := minimpi.NewWorld(4)
	results := make([]float64, 4)
	w.Run(func(r *minimpi.Rank) {
		sum := r.AllreduceScalar(1, float64(r.ID+1), minimpi.Sum)
		results[r.ID] = sum
	})
	fmt.Println(results)
	// Output:
	// [10 10 10 10]
}

// Halo exchange between neighbouring ranks, the stencil codes' pattern.
func ExampleRank_Sendrecv() {
	w := minimpi.NewWorld(2)
	got := make([]float64, 2)
	w.Run(func(r *minimpi.Rank) {
		peer := 1 - r.ID
		recv := r.Sendrecv(peer, peer, 7, []float64{float64(r.ID) * 100})
		got[r.ID] = recv[0]
	})
	fmt.Println(got)
	// Output:
	// [100 0]
}
