// Package minimpi is a real, in-process message-passing runtime: ranks
// are goroutines, messages are typed float64/int32 slices moving through
// channels. It exists alongside the *simulated* MPI of internal/mpi for
// two reasons:
//
//  1. internal/apps uses it to run genuinely distributed versions of the
//     paper's algorithms (Jacobi, CG, FFT transpose, bucket sort, EP) and
//     verify them against the serial kernels — proving the communication
//     schedules the workload models charge for are the ones the real
//     algorithms need; and
//  2. it is the library a user would actually program against when moving
//     code onto a cluster like the paper's.
//
// Collectives reduce in rank order, so results are bit-deterministic.
package minimpi

import (
	"fmt"
	"sync"
	"time"
)

// message is one typed payload.
type message struct {
	tag int
	f64 []float64
	i32 []int32
}

// DefaultStallTimeout is how long a send may block on a full eager
// channel before the runtime declares the exchange pattern deadlocked
// and panics with a diagnostic. A correct program only fills a channel
// transiently (the receiver is draining); a receiver that never posts
// leaves the sender stuck here forever, which used to hang silently.
const DefaultStallTimeout = 30 * time.Second

// eagerDepth is the per-channel eager buffer depth for an n-rank world:
// at least the historical 64, but scaled with the world so dense
// bulk-synchronous patterns (chunked alltoalls, deep send-ahead waves)
// that legitimately park several messages per peer pair do not fill a
// channel at large rank counts.
func eagerDepth(n int) int {
	if d := 4 * n; d > 64 {
		return d
	}
	return 64
}

// World connects n ranks with buffered point-to-point channels.
type World struct {
	n     int
	chans [][]chan message // chans[src][dst]
	stall time.Duration
}

// NewWorld creates a communicator for n ranks.
func NewWorld(n int) *World {
	if n < 1 {
		panic("minimpi: need at least one rank")
	}
	w := &World{n: n, chans: make([][]chan message, n), stall: DefaultStallTimeout}
	for s := 0; s < n; s++ {
		w.chans[s] = make([]chan message, n)
		for d := 0; d < n; d++ {
			// Deep buffering keeps simple send-then-receive exchange
			// patterns deadlock-free, like eager MPI.
			w.chans[s][d] = make(chan message, eagerDepth(n))
		}
	}
	return w
}

// SetStallTimeout adjusts how long a send may block on a full channel
// before the deadlock detector panics. Call before Run.
func (w *World) SetStallTimeout(d time.Duration) { w.stall = d }

// send enqueues a message, detecting exchange-pattern deadlocks: if the
// channel stays full past the stall timeout the receiver is not
// draining, and the runtime panics with a diagnostic instead of hanging
// the process silently.
func (w *World) send(src, dst int, m message) {
	ch := w.chans[src][dst]
	select {
	case ch <- m:
		return
	default:
	}
	t := time.NewTimer(w.stall)
	defer t.Stop()
	select {
	case ch <- m:
	case <-t.C:
		panic(fmt.Sprintf(
			"minimpi: rank %d stalled for %v sending tag %d to rank %d: eager channel full (%d messages buffered, depth %d) and the receiver is not draining — the exchange pattern has deadlocked",
			src, w.stall, m.tag, dst, len(ch), cap(ch)))
	}
}

// Size returns the rank count.
func (w *World) Size() int { return w.n }

// Run spawns body on every rank and waits for all to finish.
func (w *World) Run(body func(r *Rank)) {
	var wg sync.WaitGroup
	for id := 0; id < w.n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			body(&Rank{ID: id, w: w})
		}(id)
	}
	wg.Wait()
}

// Rank is one process's handle.
type Rank struct {
	ID int
	w  *World
}

// Size returns the communicator size.
func (r *Rank) Size() int { return r.w.n }

func (r *Rank) check(peer int) {
	if peer < 0 || peer >= r.w.n {
		panic(fmt.Sprintf("minimpi: peer %d out of range [0,%d)", peer, r.w.n))
	}
}

// Send transmits a float64 slice to dst (the data is copied; the caller
// keeps ownership of its buffer).
func (r *Rank) Send(dst, tag int, data []float64) {
	r.check(dst)
	cp := append([]float64(nil), data...)
	r.w.send(r.ID, dst, message{tag: tag, f64: cp})
}

// Recv blocks for a float64 message from src with the tag. Out-of-order
// tags are not supported (each (src,dst) pair is a FIFO); mismatches
// panic, which in this library means a program bug.
func (r *Rank) Recv(src, tag int) []float64 {
	r.check(src)
	m := <-r.w.chans[src][r.ID]
	if m.tag != tag {
		panic(fmt.Sprintf("minimpi: rank %d expected tag %d from %d, got %d", r.ID, tag, src, m.tag))
	}
	return m.f64
}

// SendInts transmits an int32 slice (the bucket-sort key exchange).
func (r *Rank) SendInts(dst, tag int, data []int32) {
	r.check(dst)
	cp := append([]int32(nil), data...)
	r.w.send(r.ID, dst, message{tag: tag, i32: cp})
}

// RecvInts blocks for an int32 message.
func (r *Rank) RecvInts(src, tag int) []int32 {
	r.check(src)
	m := <-r.w.chans[src][r.ID]
	if m.tag != tag {
		panic(fmt.Sprintf("minimpi: rank %d expected tag %d from %d, got %d", r.ID, tag, src, m.tag))
	}
	return m.i32
}

// Sendrecv exchanges float64 slices with two peers without deadlock.
func (r *Rank) Sendrecv(dst, src, tag int, data []float64) []float64 {
	r.Send(dst, tag, data)
	return r.Recv(src, tag)
}

// Barrier synchronizes all ranks (gather-to-0 + broadcast).
func (r *Rank) Barrier() {
	const tag = -1
	if r.ID == 0 {
		for s := 1; s < r.w.n; s++ {
			r.Recv(s, tag)
		}
		for d := 1; d < r.w.n; d++ {
			r.Send(d, tag, nil)
		}
		return
	}
	r.Send(0, tag, nil)
	r.Recv(0, tag)
}

// Bcast distributes root's data to every rank and returns each rank's
// copy (root's argument is returned as-is on root).
func (r *Rank) Bcast(root, tag int, data []float64) []float64 {
	if r.w.n == 1 {
		return data
	}
	if r.ID == root {
		for d := 0; d < r.w.n; d++ {
			if d != root {
				r.Send(d, tag, data)
			}
		}
		return data
	}
	return r.Recv(root, tag)
}

// ReduceOp combines two accumulators elementwise.
type ReduceOp func(acc, v float64) float64

// Sum is the addition reduction.
func Sum(a, v float64) float64 { return a + v }

// Max is the maximum reduction.
func Max(a, v float64) float64 {
	if v > a {
		return v
	}
	return a
}

// Allreduce combines each rank's vector elementwise with op and returns
// the combined vector on every rank. Reduction happens on rank 0 in rank
// order, so floating-point results are deterministic.
func (r *Rank) Allreduce(tag int, data []float64, op ReduceOp) []float64 {
	if r.w.n == 1 {
		return append([]float64(nil), data...)
	}
	if r.ID == 0 {
		acc := append([]float64(nil), data...)
		for s := 1; s < r.w.n; s++ {
			v := r.Recv(s, tag)
			for i := range acc {
				acc[i] = op(acc[i], v[i])
			}
		}
		for d := 1; d < r.w.n; d++ {
			r.Send(d, tag, acc)
		}
		return acc
	}
	r.Send(0, tag, data)
	return r.Recv(0, tag)
}

// AllreduceScalar reduces a single value.
func (r *Rank) AllreduceScalar(tag int, v float64, op ReduceOp) float64 {
	return r.Allreduce(tag, []float64{v}, op)[0]
}

// Alltoall sends chunks[d] to every rank d and returns the received
// chunks indexed by source (chunks[r.ID] round-trips locally).
func (r *Rank) Alltoall(tag int, chunks [][]float64) [][]float64 {
	n := r.w.n
	if len(chunks) != n {
		panic("minimpi: Alltoall needs one chunk per rank")
	}
	for d := 0; d < n; d++ {
		if d != r.ID {
			r.Send(d, tag, chunks[d])
		}
	}
	out := make([][]float64, n)
	out[r.ID] = append([]float64(nil), chunks[r.ID]...)
	for s := 0; s < n; s++ {
		if s != r.ID {
			out[s] = r.Recv(s, tag)
		}
	}
	return out
}

// AlltoallInts is Alltoall for int32 key exchanges; chunk sizes may
// differ per destination (an MPI_Alltoallv).
func (r *Rank) AlltoallInts(tag int, chunks [][]int32) [][]int32 {
	n := r.w.n
	if len(chunks) != n {
		panic("minimpi: AlltoallInts needs one chunk per rank")
	}
	for d := 0; d < n; d++ {
		if d != r.ID {
			r.SendInts(d, tag, chunks[d])
		}
	}
	out := make([][]int32, n)
	out[r.ID] = append([]int32(nil), chunks[r.ID]...)
	for s := 0; s < n; s++ {
		if s != r.ID {
			out[s] = r.RecvInts(s, tag)
		}
	}
	return out
}

// Gather collects each rank's slice on root (ordered by rank); non-root
// ranks receive nil.
func (r *Rank) Gather(root, tag int, data []float64) [][]float64 {
	if r.ID != root {
		r.Send(root, tag, data)
		return nil
	}
	out := make([][]float64, r.w.n)
	out[root] = append([]float64(nil), data...)
	for s := 0; s < r.w.n; s++ {
		if s != root {
			out[s] = r.Recv(s, tag)
		}
	}
	return out
}
