package apps

import (
	"testing"

	"clustersoc/internal/kernels"
	"clustersoc/internal/minimpi"
)

// Real-parallel benchmarks: the distributed apps on this host's cores.
// Comparing ranks=1 with ranks=4 shows genuine shared-memory speedup of
// the minimpi runtime (modulo the host's core count).

func benchJacobi(b *testing.B, ranks int) {
	n := 256
	h := 1.0 / float64(n+1)
	f := kernels.NewGrid2D(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			f.Set(i, j, 1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DistributedJacobi(minimpi.NewWorld(ranks), f, h, 20)
	}
}

func BenchmarkDistributedJacobi1(b *testing.B) { benchJacobi(b, 1) }
func BenchmarkDistributedJacobi4(b *testing.B) { benchJacobi(b, 4) }

func benchFFT(b *testing.B, ranks int) {
	nx, ny := 256, 256
	data := make([]complex128, nx*ny)
	for i := range data {
		data[i] = complex(float64(i%31), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DistributedFFT2D(minimpi.NewWorld(ranks), data, nx, ny, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedFFT1(b *testing.B) { benchFFT(b, 1) }
func BenchmarkDistributedFFT4(b *testing.B) { benchFFT(b, 4) }

func BenchmarkDistributedLU4(b *testing.B) {
	n := 96
	a := kernels.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, float64((i*37+j*11)%89)/89)
		}
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DistributedLU(minimpi.NewWorld(4), a)
	}
}
