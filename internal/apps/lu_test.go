package apps

import (
	"math"
	"math/rand"
	"testing"

	"clustersoc/internal/kernels"
	"clustersoc/internal/minimpi"
)

// The distributed factorization must choose the same pivots and produce
// the same packed factors as the serial kernels.Factor: the pivot rule
// and per-element arithmetic are identical.
func TestDistributedLUMatchesSerial(t *testing.T) {
	n := 40
	rng := rand.New(rand.NewSource(21))
	a := kernels.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	serial, err := kernels.Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 3, 5, 8} {
		packed, piv := DistributedLU(minimpi.NewWorld(ranks), a)
		for k := 0; k < n; k++ {
			if piv[k] != serial.Piv[k] {
				t.Fatalf("ranks=%d: pivot[%d] = %d, serial %d", ranks, k, piv[k], serial.Piv[k])
			}
		}
		for i := range packed.Data {
			if math.Abs(packed.Data[i]-serial.A.Data[i]) > 1e-12 {
				t.Fatalf("ranks=%d: factor element %d = %v, serial %v",
					ranks, i, packed.Data[i], serial.A.Data[i])
			}
		}
	}
}

// The distributed factors solve the original system.
func TestDistributedLUSolves(t *testing.T) {
	n := 24
	rng := rand.New(rand.NewSource(5))
	a := kernels.NewMatrix(n, n)
	b := make([]float64, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
		a.Set(i, i, a.At(i, i)+5)
	}
	packed, piv := DistributedLU(minimpi.NewWorld(4), a)
	lu := &kernels.LU{A: packed, Piv: piv}
	x, err := lu.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := kernels.Residual(a, x, b); r > 16 {
		t.Fatalf("scaled residual %v", r)
	}
}

// One distributed Euler step equals the serial step, field by field.
func TestDistributedEulerStepMatchesSerial(t *testing.T) {
	n := 24
	h := 1.0 / float64(n)
	build := func() *kernels.EulerState {
		s := kernels.NewEulerState(n, n)
		for i := n/2 - 2; i < n/2+2; i++ {
			for j := n/2 - 2; j < n/2+2; j++ {
				s.Energy.Set(i, j, 8/(s.Gamma-1))
			}
		}
		return s
	}
	serial := build()
	dtSerial := serial.Step(0.004, h)
	for _, ranks := range []int{1, 2, 4, 8} {
		dist := build()
		dtDist := DistributedEulerStep(minimpi.NewWorld(ranks), dist, 0.004, h)
		if math.Abs(dtDist-dtSerial) > 1e-15 {
			t.Fatalf("ranks=%d: dt %v vs serial %v", ranks, dtDist, dtSerial)
		}
		for _, pair := range []struct {
			name string
			a, b *kernels.Grid2D
		}{
			{"rho", dist.Rho, serial.Rho},
			{"momx", dist.MomX, serial.MomX},
			{"momy", dist.MomY, serial.MomY},
			{"energy", dist.Energy, serial.Energy},
		} {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d := math.Abs(pair.a.At(i, j) - pair.b.At(i, j)); d > 1e-12 {
						t.Fatalf("ranks=%d: %s(%d,%d) differs by %v", ranks, pair.name, i, j, d)
					}
				}
			}
		}
	}
}

// Multiple distributed steps conserve mass away from the boundary, like
// the serial kernel test.
func TestDistributedEulerConservesMass(t *testing.T) {
	n := 32
	h := 1.0 / float64(n)
	s := kernels.NewEulerState(n, n)
	for i := n/2 - 2; i < n/2+2; i++ {
		for j := n/2 - 2; j < n/2+2; j++ {
			s.Energy.Set(i, j, 10/(s.Gamma-1))
		}
	}
	m0 := s.TotalMass()
	w := minimpi.NewWorld(4)
	elapsed := 0.0
	for elapsed < 0.02 {
		dt := DistributedEulerStep(w, s, 0.005, h)
		if dt <= 0 {
			t.Fatal("timestep collapsed")
		}
		elapsed += dt
	}
	if math.Abs(s.TotalMass()-m0)/m0 > 1e-6 {
		t.Fatalf("mass drifted %v -> %v", m0, s.TotalMass())
	}
}

// The distributed wavefront SSOR must match the serial sweeps exactly:
// the per-cell Gauss-Seidel order is identical, only the pipeline differs.
func TestDistributedSSORMatchesSerial(t *testing.T) {
	n, sweeps := 24, 6
	h := 1.0 / float64(n+1)
	omega := 1.4
	f := kernels.NewGrid2D(n, n)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			f.Set(i, j, rng.NormFloat64())
		}
	}
	// Serial reference.
	want := kernels.NewGrid2D(n, n)
	for s := 0; s < sweeps; s++ {
		kernels.SSORSweepForward(want, f, h, omega)
		kernels.SSORSweepBackward(want, f, h, omega)
	}
	for _, ranks := range []int{1, 2, 4, 8} {
		got := DistributedSSOR(minimpi.NewWorld(ranks), f, h, omega, sweeps)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("ranks=%d: (%d,%d) = %v, serial %v", ranks, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

// Distributed ADI (transpose method) must match the serial ADI stepper.
func TestDistributedADIMatchesSerial(t *testing.T) {
	n, steps := 16, 3
	h := 1.0 / float64(n+1)
	dt := 0.004
	build := func() *kernels.Grid2D {
		u := kernels.NewGrid2D(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				u.Set(i, j, math.Sin(math.Pi*float64(i+1)*h)*math.Sin(math.Pi*float64(j+1)*h)+0.1*float64(i-j))
			}
		}
		return u
	}
	want := build()
	for s := 0; s < steps; s++ {
		if err := kernels.ADIHeat2D(want, dt, h); err != nil {
			t.Fatal(err)
		}
	}
	for _, ranks := range []int{1, 2, 4, 8} {
		got := DistributedADI(minimpi.NewWorld(ranks), build(), dt, h, steps)
		worst := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := math.Abs(got.At(i, j) - want.At(i, j)); d > worst {
					worst = d
				}
			}
		}
		if worst > 1e-12 {
			t.Fatalf("ranks=%d: max deviation %v", ranks, worst)
		}
	}
}
