package apps

import (
	"math"
	"math/rand"
	"testing"

	"clustersoc/internal/kernels"
	"clustersoc/internal/minimpi"
)

// Distributed Jacobi performs exactly the serial sweeps: halo rows carry
// the neighbour's previous iterate, which is what the serial grid reads,
// so the fields must match bit-for-bit.
func TestDistributedJacobiMatchesSerial(t *testing.T) {
	n, iters := 32, 40
	h := 1.0 / float64(n+1)
	f := kernels.NewGrid2D(n, n)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			f.Set(i, j, rng.NormFloat64())
		}
	}
	// Serial reference: the same number of sweeps.
	u := kernels.NewGrid2D(n, n)
	v := kernels.NewGrid2D(n, n)
	for it := 0; it < iters; it++ {
		kernels.JacobiStep(v, u, f, h)
		u, v = v, u
	}
	for _, ranks := range []int{1, 2, 4, 8} {
		got := DistributedJacobi(minimpi.NewWorld(ranks), f, h, iters)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got.At(i, j) != u.At(i, j) {
					t.Fatalf("ranks=%d: (%d,%d) = %v, serial %v", ranks, i, j, got.At(i, j), u.At(i, j))
				}
			}
		}
	}
}

// Distributed CG must solve the same system the serial CG solves: check
// the residual of the distributed solution under the serial operator.
func TestDistributedCGSolvesSystem(t *testing.T) {
	n := 24
	tau := 0.3
	b := make([]float64, n*n)
	rng := rand.New(rand.NewSource(7))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	op := &kernels.HeatOperator2D{NX: n, NY: n, Tau: tau}
	for _, ranks := range []int{1, 2, 4, 6} {
		if n%ranks != 0 {
			continue
		}
		x, iters := DistributedCG(minimpi.NewWorld(ranks), b, n, tau, 1e-10, 500)
		if iters >= 500 {
			t.Fatalf("ranks=%d: CG did not converge", ranks)
		}
		ax := make([]float64, n*n)
		op.Apply(ax, x)
		worst := 0.0
		for i := range ax {
			if d := math.Abs(ax[i] - b[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-7 {
			t.Fatalf("ranks=%d: residual %v", ranks, worst)
		}
	}
}

// The distributed transpose-FFT must match the serial 2D FFT exactly
// (same butterflies, same order — only the data placement differs).
func TestDistributedFFTMatchesSerial(t *testing.T) {
	nx, ny := 16, 32
	data := make([]complex128, nx*ny)
	rng := rand.New(rand.NewSource(3))
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := append([]complex128(nil), data...)
	if err := kernels.FFT2D(want, nx, ny, false); err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 4, 8} {
		got, err := DistributedFFT2D(minimpi.NewWorld(ranks), data, nx, ny, false)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if d := cmplxAbs(got[i] - want[i]); d > 1e-9 {
				t.Fatalf("ranks=%d: element %d differs by %v", ranks, i, d)
			}
		}
	}
}

func cmplxAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

func TestDistributedFFTRoundTrip(t *testing.T) {
	nx, ny := 16, 16
	data := make([]complex128, nx*ny)
	for i := range data {
		data[i] = complex(float64(i%13), float64(i%7))
	}
	fw, err := DistributedFFT2D(minimpi.NewWorld(4), data, nx, ny, false)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := DistributedFFT2D(minimpi.NewWorld(4), fw, nx, ny, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if cmplxAbs(bw[i]-data[i]) > 1e-9 {
			t.Fatalf("round trip broke at %d", i)
		}
	}
}

func TestDistributedFFTRejectsBadShapes(t *testing.T) {
	if _, err := DistributedFFT2D(minimpi.NewWorld(3), make([]complex128, 16*16), 16, 16, false); err == nil {
		t.Fatal("16x16 over 3 ranks should be rejected")
	}
	if _, err := DistributedFFT2D(minimpi.NewWorld(2), make([]complex128, 10), 4, 4, false); err == nil {
		t.Fatal("size mismatch should be rejected")
	}
}

func TestDistributedBucketSort(t *testing.T) {
	const maxKey = 1 << 14
	keys := kernels.NewNPBRandom(314159265).Keys(20000, maxKey)
	want := kernels.BucketSort(keys, maxKey, 8) // serial reference
	for _, ranks := range []int{1, 2, 4, 7} {
		got := DistributedBucketSort(minimpi.NewWorld(ranks), keys, maxKey)
		if len(got) != len(want) {
			t.Fatalf("ranks=%d: %d keys out, want %d", ranks, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ranks=%d: key %d = %d, want %d", ranks, i, got[i], want[i])
			}
		}
	}
}

func TestDistributedEP(t *testing.T) {
	res := DistributedEP(minimpi.NewWorld(4), 20000)
	if res.Pairs == 0 {
		t.Fatal("no pairs generated")
	}
	var sum int64
	for _, c := range res.Counts {
		sum += c
	}
	if sum != res.Pairs {
		t.Fatalf("counts %d != pairs %d", sum, res.Pairs)
	}
	// Acceptance ratio ~ pi/4 over the aggregate.
	accept := float64(res.Pairs) / (4 * 20000)
	if math.Abs(accept-math.Pi/4) > 0.02 {
		t.Fatalf("acceptance %v", accept)
	}
	// Determinism (fixed per-rank seeds).
	again := DistributedEP(minimpi.NewWorld(4), 20000)
	if again != res {
		t.Fatal("distributed EP not deterministic")
	}
}

// Distributed GUPS must equal a serial replay of the same update streams:
// xor updates commute, so bucketing and exchange order cannot matter.
func TestDistributedGUPSMatchesSerialReplay(t *testing.T) {
	const (
		logSize = 12
		perRank = 4000
		windows = 4
	)
	serial := func(ranks int) []uint64 {
		size := 1 << logSize
		table := make([]uint64, size)
		for i := range table {
			table[i] = uint64(i)
		}
		for r := 0; r < ranks; r++ {
			ran := hpccSeed(r)
			n := (perRank / windows) * windows // what the windows actually apply
			for i := 0; i < n; i++ {
				ran = hpccAdvance(ran)
				table[int(ran&uint64(size-1))] ^= ran
			}
		}
		return table
	}
	for _, ranks := range []int{1, 2, 4, 8} {
		got := DistributedGUPS(minimpi.NewWorld(ranks), logSize, perRank, windows)
		want := serial(ranks)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ranks=%d: table[%d] = %x, want %x", ranks, i, got[i], want[i])
			}
		}
	}
}
