package apps

import (
	"clustersoc/internal/kernels"
	"clustersoc/internal/minimpi"
)

// DistributedSSOR runs lu's real communication structure: forward and
// backward Gauss-Seidel wavefront sweeps for -lap(u) = f, with the grid
// strip-decomposed by rows. A rank may relax its strip only after its
// upper neighbour has sent the freshly-updated boundary row (forward
// sweep) — the pipelined dependency chain whose serialization the paper's
// Ser factor measures for lu. The result matches the serial
// SSORSweepForward/Backward bit-for-bit because the update order per cell
// is identical.
func DistributedSSOR(w *minimpi.World, f *kernels.Grid2D, h, omega float64, sweeps int) *kernels.Grid2D {
	n := f.NX
	p := w.Size()
	if n%p != 0 {
		panic("apps: grid rows not divisible by ranks")
	}
	rows := n / p
	result := kernels.NewGrid2D(n, n)

	w.Run(func(r *minimpi.Rank) {
		u := kernels.NewGrid2D(rows, n)
		lf := kernels.NewGrid2D(rows, n)
		base := r.ID * rows
		for i := 0; i < rows; i++ {
			for j := 0; j < n; j++ {
				lf.Set(i, j, f.At(base+i, j))
			}
		}
		rowOf := func(g *kernels.Grid2D, i int) []float64 {
			out := make([]float64, n)
			for j := 0; j < n; j++ {
				out[j] = g.At(i, j)
			}
			return out
		}
		setHalo := func(i int, vals []float64) {
			for j := 0; j < n; j++ {
				u.Set(i, j, vals[j])
			}
		}
		relaxForward := func(i int) {
			for j := 0; j < n; j++ {
				gs := 0.25 * (u.At(i-1, j) + u.At(i+1, j) + u.At(i, j-1) + u.At(i, j+1) + h*h*lf.At(i, j))
				u.Set(i, j, (1-omega)*u.At(i, j)+omega*gs)
			}
		}
		relaxBackward := func(i int) {
			for j := n - 1; j >= 0; j-- {
				gs := 0.25 * (u.At(i-1, j) + u.At(i+1, j) + u.At(i, j-1) + u.At(i, j+1) + h*h*lf.At(i, j))
				u.Set(i, j, (1-omega)*u.At(i, j)+omega*gs)
			}
		}
		for s := 0; s < sweeps; s++ {
			// Forward sweep (top-left to bottom-right): a cell reads NEW
			// values above/left and OLD values below/right. Across strips:
			// the halo above must be the upper strip's freshly-relaxed
			// bottom row (the wavefront), the halo below the lower strip's
			// pre-sweep top row.
			if r.ID > 0 {
				r.Send(r.ID-1, 150+s, rowOf(u, 0)) // my old top row, up
			}
			if r.ID < p-1 {
				setHalo(rows, r.Recv(r.ID+1, 150+s))
			}
			if r.ID > 0 {
				setHalo(-1, r.Recv(r.ID-1, 100+s)) // wavefront: blocks on the strip above
			}
			for i := 0; i < rows; i++ {
				relaxForward(i)
			}
			if r.ID < p-1 {
				r.Send(r.ID+1, 100+s, rowOf(u, rows-1)) // pass the wavefront down
			}

			// Backward sweep (bottom-right to top-left): mirrored.
			if r.ID < p-1 {
				r.Send(r.ID+1, 350+s, rowOf(u, rows-1)) // my pre-backward bottom row, down
			}
			if r.ID > 0 {
				setHalo(-1, r.Recv(r.ID-1, 350+s))
			}
			if r.ID < p-1 {
				setHalo(rows, r.Recv(r.ID+1, 300+s)) // wavefront from below
			}
			for i := rows - 1; i >= 0; i-- {
				relaxBackward(i)
			}
			if r.ID > 0 {
				r.Send(r.ID-1, 300+s, rowOf(u, 0)) // pass the wavefront up
			}
		}
		parts := r.Gather(0, 903, flatten(u, rows, n))
		if r.ID == 0 {
			for src, part := range parts {
				for i := 0; i < rows; i++ {
					for j := 0; j < n; j++ {
						result.Set(src*rows+i, j, part[i*n+j])
					}
				}
			}
		}
		r.Barrier()
	})
	return result
}

func flatten(g *kernels.Grid2D, rows, n int) []float64 {
	out := make([]float64, rows*n)
	for i := 0; i < rows; i++ {
		for j := 0; j < n; j++ {
			out[i*n+j] = g.At(i, j)
		}
	}
	return out
}

// DistributedADI advances u_t = lap(u) by ADI timesteps with the
// transpose method bt/sp use: the x-direction tridiagonal solves are
// local to row strips, then the field transposes with an all-to-all so
// the y-direction solves are local too, and transposes back — two full
// all-to-alls per step. Matches kernels.ADIHeat2D exactly.
func DistributedADI(w *minimpi.World, u *kernels.Grid2D, dt, h float64, steps int) *kernels.Grid2D {
	n := u.NX
	p := w.Size()
	if n%p != 0 {
		panic("apps: grid rows not divisible by ranks")
	}
	rows := n / p
	r2 := dt / (2 * h * h)
	result := kernels.NewGrid2D(n, n)

	w.Run(func(r *minimpi.Rank) {
		// Local strip as a flat rows x n block (no halos needed: each
		// half-step's coupling direction is made local by transposing).
		local := make([]float64, rows*n)
		base := r.ID * rows
		for i := 0; i < rows; i++ {
			for j := 0; j < n; j++ {
				local[i*n+j] = u.At(base+i, j)
			}
		}

		// transpose exchanges the strip so columns become rows.
		transpose := func(block []float64, tag int) []float64 {
			chunks := make([][]float64, p)
			for d := 0; d < p; d++ {
				blk := make([]float64, rows*rows)
				for i := 0; i < rows; i++ {
					for j := 0; j < rows; j++ {
						blk[j*rows+i] = block[i*n+d*rows+j]
					}
				}
				chunks[d] = blk
			}
			got := r.Alltoall(tag, chunks)
			out := make([]float64, rows*n)
			for s := 0; s < p; s++ {
				for j := 0; j < rows; j++ {
					copy(out[j*n+s*rows:j*n+(s+1)*rows], got[s][j*rows:(j+1)*rows])
				}
			}
			return out
		}

		// solveLines runs the implicit tridiagonal solve along each local
		// row of cur. The explicit cross-term runs ACROSS rows, so it
		// needs one halo row from each neighbour first (Dirichlet zeros at
		// the domain edges).
		solveLines := func(cur []float64, tag int) []float64 {
			up := make([]float64, n)
			down := make([]float64, n)
			if r.ID > 0 {
				copy(up, r.Sendrecv(r.ID-1, r.ID-1, tag, cur[:n]))
			}
			if r.ID < p-1 {
				copy(down, r.Sendrecv(r.ID+1, r.ID+1, tag, cur[(rows-1)*n:]))
			}
			at := func(i, j int) float64 {
				switch {
				case i < 0:
					return up[j]
				case i >= rows:
					return down[j]
				default:
					return cur[i*n+j]
				}
			}
			out := make([]float64, rows*n)
			a := make([]float64, n)
			b := make([]float64, n)
			c := make([]float64, n)
			d := make([]float64, n)
			for i := 0; i < rows; i++ {
				for j := 0; j < n; j++ {
					a[j], b[j], c[j] = -r2, 1+2*r2, -r2
					d[j] = at(i, j) + r2*(at(i-1, j)-2*at(i, j)+at(i+1, j))
				}
				if err := kernels.ThomasSolve(a, b, c, d); err != nil {
					panic(err)
				}
				copy(out[i*n:(i+1)*n], d)
			}
			return out
		}

		for s := 0; s < steps; s++ {
			// Half-step 1 of ADIHeat2D solves implicitly along x (columns
			// j vary) with the explicit term along y: transpose so the
			// serial code's "columns" are our local rows.
			tr := transpose(local, 1000+4*s)
			half := solveLines(tr, 2000+4*s)
			// Back to row-major orientation for half-step 2 (implicit
			// along y = the serial rows).
			back := transpose(half, 1001+4*s)
			local = solveLines(back, 2001+4*s)
		}

		parts := r.Gather(0, 904, local)
		if r.ID == 0 {
			for src, part := range parts {
				for i := 0; i < rows; i++ {
					for j := 0; j < n; j++ {
						result.Set(src*rows+i, j, part[i*n+j])
					}
				}
			}
		}
		r.Barrier()
	})
	return result
}
