package apps

import (
	"fmt"
	"sort"

	"clustersoc/internal/kernels"
	"clustersoc/internal/minimpi"
)

// DistributedFFT2D computes the 2D FFT of an nx x ny complex field
// (row-major, len nx*ny) the way NPB ft does: each rank transforms its
// block of rows locally, the field is transposed with an all-to-all,
// columns (now rows) are transformed, and the data is transposed back.
// This is the communication pattern that makes ft the most network-bound
// workload in Fig. 1. Returns the transformed field on every caller.
func DistributedFFT2D(w *minimpi.World, data []complex128, nx, ny int, inverse bool) ([]complex128, error) {
	p := w.Size()
	if len(data) != nx*ny {
		return nil, fmt.Errorf("apps: field size %d != %d x %d", len(data), nx, ny)
	}
	if nx%p != 0 || ny%p != 0 {
		return nil, fmt.Errorf("apps: %d x %d not divisible by %d ranks", nx, ny, p)
	}
	rowsX := nx / p // rows per rank in row-major orientation
	rowsY := ny / p // rows per rank after transpose
	out := make([]complex128, nx*ny)
	var ffErr error

	// complex <-> float packing for the float64 transport.
	pack := func(c []complex128) []float64 {
		f := make([]float64, 2*len(c))
		for i, v := range c {
			f[2*i], f[2*i+1] = real(v), imag(v)
		}
		return f
	}
	unpack := func(f []float64) []complex128 {
		c := make([]complex128, len(f)/2)
		for i := range c {
			c[i] = complex(f[2*i], f[2*i+1])
		}
		return c
	}

	w.Run(func(r *minimpi.Rank) {
		// Local block of rows.
		local := make([]complex128, rowsX*ny)
		copy(local, data[r.ID*rowsX*ny:(r.ID+1)*rowsX*ny])
		for i := 0; i < rowsX; i++ {
			if err := kernels.FFT(local[i*ny:(i+1)*ny], inverse); err != nil {
				ffErr = err
				return
			}
		}
		// All-to-all transpose: chunk d carries my rows' columns
		// [d*rowsY, (d+1)*rowsY), transposed so the receiver gets them as
		// rows.
		chunks := make([][]float64, p)
		for d := 0; d < p; d++ {
			blk := make([]complex128, rowsX*rowsY)
			for i := 0; i < rowsX; i++ {
				for j := 0; j < rowsY; j++ {
					blk[j*rowsX+i] = local[i*ny+d*rowsY+j] // transpose in flight
				}
			}
			chunks[d] = pack(blk)
		}
		got := r.Alltoall(100, chunks)
		// Assemble the transposed local block: rowsY rows of nx values.
		tlocal := make([]complex128, rowsY*nx)
		for s := 0; s < p; s++ {
			blk := unpack(got[s])
			for j := 0; j < rowsY; j++ {
				copy(tlocal[j*nx+s*rowsX:j*nx+(s+1)*rowsX], blk[j*rowsX:(j+1)*rowsX])
			}
		}
		for j := 0; j < rowsY; j++ {
			if err := kernels.FFT(tlocal[j*nx:(j+1)*nx], inverse); err != nil {
				ffErr = err
				return
			}
		}
		// Transpose back so the result is row-major like the input.
		back := make([][]float64, p)
		for d := 0; d < p; d++ {
			blk := make([]complex128, rowsY*rowsX)
			for j := 0; j < rowsY; j++ {
				for i := 0; i < rowsX; i++ {
					blk[i*rowsY+j] = tlocal[j*nx+d*rowsX+i]
				}
			}
			back[d] = pack(blk)
		}
		got2 := r.Alltoall(101, back)
		final := make([]complex128, rowsX*ny)
		for s := 0; s < p; s++ {
			blk := unpack(got2[s])
			for i := 0; i < rowsX; i++ {
				copy(final[i*ny+s*rowsY:i*ny+(s+1)*rowsY], blk[i*rowsY:(i+1)*rowsY])
			}
		}
		parts := r.Gather(0, 902, pack(final))
		if r.ID == 0 {
			for s, part := range parts {
				copy(out[s*rowsX*ny:], unpack(part))
			}
		}
		r.Barrier()
	})
	return out, ffErr
}

// DistributedBucketSort sorts int32 keys in [0, maxKey) across the
// world: each rank buckets its share by key range and exchanges buckets
// all-to-all (is's full-dataset scatter), then sorts its range locally.
// Returns the globally sorted keys.
func DistributedBucketSort(w *minimpi.World, keys []int32, maxKey int32) []int32 {
	p := w.Size()
	width := (int(maxKey) + p - 1) / p
	if width < 1 {
		width = 1
	}
	share := (len(keys) + p - 1) / p
	var mu sortedParts
	mu.parts = make([][]int32, p)

	w.Run(func(r *minimpi.Rank) {
		lo := r.ID * share
		hi := lo + share
		if lo > len(keys) {
			lo = len(keys)
		}
		if hi > len(keys) {
			hi = len(keys)
		}
		mine := keys[lo:hi]
		// Scatter into per-destination buckets by key range.
		chunks := make([][]int32, p)
		for _, k := range mine {
			d := int(k) / width
			if d >= p {
				d = p - 1
			}
			chunks[d] = append(chunks[d], k)
		}
		got := r.AlltoallInts(200, chunks)
		var local []int32
		for _, g := range got {
			local = append(local, g...)
		}
		sort.Slice(local, func(i, j int) bool { return local[i] < local[j] })
		mu.set(r.ID, local)
	})

	var out []int32
	for _, part := range mu.parts {
		out = append(out, part...)
	}
	return out
}

// sortedParts collects per-rank outputs; each slot is written by exactly
// one goroutine, so no lock is needed, but the type documents the intent.
type sortedParts struct {
	parts [][]int32
}

func (s *sortedParts) set(i int, v []int32) { s.parts[i] = v }

// DistributedGUPS runs HPCC RandomAccess across the world: each rank owns
// a contiguous table slice and an independent generator stream; updates
// are bucketed by destination slice and exchanged all-to-all in windows
// (exactly the is-style scatter the gups workload model charges), then
// applied locally. The xor-commutativity of the updates makes the result
// independent of delivery order, which the test exploits against a serial
// replay.
func DistributedGUPS(w *minimpi.World, logSize, updatesPerRank, windows int) []uint64 {
	p := w.Size()
	size := 1 << logSize
	if size%p != 0 {
		panic("apps: table not divisible by ranks")
	}
	slice := size / p
	table := make([]uint64, size)
	for i := range table {
		table[i] = uint64(i)
	}
	if windows < 1 {
		windows = 1
	}
	perWindow := updatesPerRank / windows

	w.Run(func(r *minimpi.Rank) {
		ran := hpccSeed(r.ID)
		base := r.ID * slice
		for win := 0; win < windows; win++ {
			buckets := make([][]int32, p) // reuse the int32 transport: pack as two lanes
			vals := make([][]float64, p)
			for i := 0; i < perWindow; i++ {
				ran = hpccAdvance(ran)
				idx := int(ran & uint64(size-1))
				d := idx / slice
				buckets[d] = append(buckets[d], int32(idx-d*slice))
				vals[d] = append(vals[d], float64(ran&0xFFFFFFFF)) // low lane
				vals[d] = append(vals[d], float64(ran>>32))        // high lane
			}
			gotIdx := r.AlltoallInts(600+win, buckets)
			gotVal := r.Alltoall(700+win, vals)
			for src := 0; src < p; src++ {
				for k, off := range gotIdx[src] {
					lo := uint64(gotVal[src][2*k])
					hi := uint64(gotVal[src][2*k+1])
					table[base+int(off)] ^= lo | hi<<32
				}
			}
		}
		r.Barrier()
	})
	return table
}

// hpccSeed gives rank r its own LFSR start (r advances from the origin).
func hpccSeed(r int) uint64 {
	ran := uint64(1)
	for i := 0; i < r*1024; i++ {
		ran = hpccAdvance(ran)
	}
	return ran
}

// hpccAdvance is the HPCC polynomial step (mirrors kernels.hpccNext; kept
// local so apps depends only on kernels' exported surface).
func hpccAdvance(ran uint64) uint64 {
	hi := ran >> 63
	ran <<= 1
	if hi != 0 {
		ran ^= 0x0000000000000007
	}
	return ran
}
