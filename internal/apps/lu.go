package apps

import (
	"math"

	"clustersoc/internal/kernels"
	"clustersoc/internal/minimpi"
)

// DistributedLU factors an n x n matrix with partial pivoting across the
// world's ranks, columns distributed cyclically (hpl's layout with block
// size 1): at each elimination step the owner factors its column, then
// broadcasts the pivot index and the scaled column, and every rank swaps
// and updates the columns it owns — the panel-broadcast + trailing-update
// structure the hpl workload model charges the simulator for.
//
// It returns the packed LU factors (L below the unit diagonal, U on and
// above) and the pivot vector, assembled on every caller, matching
// kernels.Factor bit-for-bit because the pivot rule and per-element
// arithmetic are identical.
func DistributedLU(w *minimpi.World, a *kernels.Matrix) (*kernels.Matrix, []int) {
	n := a.Rows
	p := w.Size()
	packed := kernels.NewMatrix(n, n)
	piv := make([]int, n)

	w.Run(func(r *minimpi.Rank) {
		// Local copy of owned columns: col j lives on rank j % p.
		mine := map[int][]float64{}
		for j := r.ID; j < n; j += p {
			col := make([]float64, n)
			for i := 0; i < n; i++ {
				col[i] = a.At(i, j)
			}
			mine[j] = col
		}

		for k := 0; k < n; k++ {
			owner := k % p
			// payload = [pivotIndex, column values k..n-1 (scaled)]
			var payload []float64
			if r.ID == owner {
				col := mine[k]
				// Partial pivoting: strictly-greater rule, exactly as
				// kernels.Factor chooses.
				pk := k
				max := math.Abs(col[k])
				for i := k + 1; i < n; i++ {
					if v := math.Abs(col[i]); v > max {
						max, pk = v, i
					}
				}
				col[k], col[pk] = col[pk], col[k]
				pivot := col[k]
				for i := k + 1; i < n; i++ {
					col[i] /= pivot
				}
				payload = make([]float64, 1+n-k)
				payload[0] = float64(pk)
				copy(payload[1:], col[k:])
			}
			payload = r.Bcast(owner, 3000+k, payload)
			pk := int(payload[0])
			colK := payload[1:] // col[k..n-1] after swap+scale

			// Apply the row swap to every owned column (the serial code
			// swaps whole rows, including the already-factored L part),
			// then the rank-1 update to the trailing columns only.
			for j, col := range mine {
				if j == k {
					continue // the owner already swapped within column k
				}
				col[k], col[pk] = col[pk], col[k]
				if j < k {
					continue
				}
				akj := col[k]
				if akj != 0 {
					for i := k + 1; i < n; i++ {
						col[i] -= colK[i-k] * akj
					}
				}
			}
			if r.ID == 0 {
				piv[k] = pk
			}
		}

		// Assemble the packed factors on rank 0 (column by column, in
		// owner order).
		for j := 0; j < n; j++ {
			owner := j % p
			var col []float64
			if r.ID == owner {
				col = mine[j]
			}
			if owner == 0 {
				if r.ID == 0 {
					for i := 0; i < n; i++ {
						packed.Set(i, j, col[i])
					}
				}
				continue
			}
			if r.ID == owner {
				r.Send(0, 4000+j, col)
			} else if r.ID == 0 {
				got := r.Recv(owner, 4000+j)
				for i := 0; i < n; i++ {
					packed.Set(i, j, got[i])
				}
			}
		}
		r.Barrier()
	})
	return packed, piv
}

// DistributedEulerStep advances a 2D Euler state by one Rusanov timestep
// across the world's ranks: a global max-wave-speed allreduce (the CFL
// reduction the cloverleaf model charges), one-row halo exchanges for all
// four conserved fields, and the local flux update. It mutates state in
// place and returns the dt actually used — matching
// kernels.EulerState.Step cell-for-cell.
func DistributedEulerStep(w *minimpi.World, state *kernels.EulerState, dt, h float64) float64 {
	nx, ny := state.NX, state.NY
	p := w.Size()
	if nx%p != 0 {
		panic("apps: Euler rows not divisible by ranks")
	}
	rows := nx / p
	fields := []*kernels.Grid2D{state.Rho, state.MomX, state.MomY, state.Energy}
	gamma := state.Gamma

	// Per-rank results written into disjoint row ranges.
	newFields := make([]*kernels.Grid2D, 4)
	for fi := range newFields {
		newFields[fi] = kernels.NewGrid2D(nx, ny)
	}
	var usedDT float64

	w.Run(func(r *minimpi.Rank) {
		base := r.ID * rows
		// Local wave speed, then the global CFL allreduce.
		local := 0.0
		for i := base; i < base+rows; i++ {
			for j := 0; j < ny; j++ {
				rho := state.Rho.At(i, j)
				if rho <= 0 {
					continue
				}
				u := math.Abs(state.MomX.At(i, j) / rho)
				v := math.Abs(state.MomY.At(i, j) / rho)
				pr := pressureAt(state, i, j)
				c := math.Sqrt(gamma * math.Max(pr, 0) / rho)
				if sp := math.Max(u, v) + c; sp > local {
					local = sp
				}
			}
		}
		speed := r.AllreduceScalar(5000, local, minimpi.Max)
		step := dt
		if speed > 0 {
			if cfl := 0.4 * h / speed; step > cfl {
				step = cfl
			}
		}

		// Halo rows for the four fields (packed into one message per
		// direction, as a real halo exchange would).
		loHalo := make([]float64, 4*ny) // row base-1, from rank-1
		hiHalo := make([]float64, 4*ny) // row base+rows, from rank+1
		packRow := func(i int) []float64 {
			out := make([]float64, 4*ny)
			for fi, g := range fields {
				for j := 0; j < ny; j++ {
					out[fi*ny+j] = g.At(i, j)
				}
			}
			return out
		}
		if r.ID > 0 {
			copy(loHalo, r.Sendrecv(r.ID-1, r.ID-1, 5100, packRow(base)))
		}
		if r.ID < p-1 {
			copy(hiHalo, r.Sendrecv(r.ID+1, r.ID+1, 5100, packRow(base+rows-1)))
		}

		at := func(fi, i, j int) float64 {
			switch {
			case i == base-1 && r.ID > 0:
				return loHalo[fi*ny+j]
			case i == base+rows && r.ID < p-1:
				return hiHalo[fi*ny+j]
			default:
				return fields[fi].At(i, j)
			}
		}
		clampI := func(i int) int {
			if i < 0 {
				return 0
			}
			if i >= nx {
				return nx - 1
			}
			return i
		}
		clampJ := func(j int) int {
			if j < 0 {
				return 0
			}
			if j >= ny {
				return ny - 1
			}
			return j
		}
		cons := func(i, j int) [4]float64 {
			return [4]float64{at(0, i, j), at(1, i, j), at(2, i, j), at(3, i, j)}
		}
		press := func(q [4]float64) float64 {
			rho := q[0]
			if rho <= 0 {
				return 0
			}
			u, v := q[1]/rho, q[2]/rho
			return (gamma - 1) * (q[3] - 0.5*rho*(u*u+v*v))
		}
		phys := func(q [4]float64, pr float64, dir int) [4]float64 {
			rho := q[0]
			if rho <= 0 {
				return [4]float64{}
			}
			u, v := q[1]/rho, q[2]/rho
			vel := u
			if dir == 1 {
				vel = v
			}
			f := [4]float64{q[0] * vel, q[1] * vel, q[2] * vel, (q[3] + pr) * vel}
			f[1+dir] += pr
			return f
		}
		flux := func(iL, jL, iR, jR, dir int) [4]float64 {
			qL, qR := cons(iL, jL), cons(iR, jR)
			fL := phys(qL, press(qL), dir)
			fR := phys(qR, press(qR), dir)
			var out [4]float64
			for c := 0; c < 4; c++ {
				out[c] = 0.5*(fL[c]+fR[c]) - 0.5*speed*(qR[c]-qL[c])
			}
			return out
		}

		for i := base; i < base+rows; i++ {
			for j := 0; j < ny; j++ {
				fxm := flux(clampI(i-1), j, i, j, 0)
				fxp := flux(i, j, clampI(i+1), j, 0)
				fym := flux(i, clampJ(j-1), i, j, 1)
				fyp := flux(i, j, i, clampJ(j+1), 1)
				q := cons(i, j)
				for c := 0; c < 4; c++ {
					v := q[c] - step/h*(fxp[c]-fxm[c]) - step/h*(fyp[c]-fym[c])
					newFields[c].Set(i, j, v)
				}
			}
		}
		if r.ID == 0 {
			usedDT = step
		}
		r.Barrier()
	})
	state.Rho, state.MomX, state.MomY, state.Energy = newFields[0], newFields[1], newFields[2], newFields[3]
	return usedDT
}

// pressureAt mirrors EulerState.Pressure without needing method access to
// unexported pieces.
func pressureAt(s *kernels.EulerState, i, j int) float64 {
	rho := s.Rho.At(i, j)
	if rho <= 0 {
		return 0
	}
	u := s.MomX.At(i, j) / rho
	v := s.MomY.At(i, j) / rho
	return (s.Gamma - 1) * (s.Energy.At(i, j) - 0.5*rho*(u*u+v*v))
}
