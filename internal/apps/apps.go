// Package apps contains genuinely distributed implementations of the
// paper's benchmark algorithms, running real numerics over the real
// message-passing runtime of internal/minimpi: a halo-exchanging Jacobi
// solver, a distributed conjugate-gradient heat solver (tealeaf's
// structure), a transpose-based distributed FFT (ft's structure), a
// key-exchange bucket sort (is), and the embarrassingly-parallel
// Marsaglia generator (ep).
//
// Their tests verify each distributed result against the serial kernels
// in internal/kernels — which pins down that the communication schedules
// internal/workloads charges the simulator for (halos, dot-product
// allreduces, all-to-all transposes, key scatters) are the ones the real
// algorithms actually require.
//
// The numerics themselves (Jacobi sweeps, CG dot/axpy, matmuls) execute
// through the process-wide compute backend (internal/compute): the
// default "reference" engine reproduces the seed loops byte-for-byte,
// while "blocked" runs the same math tiled and goroutine-parallel.
package apps

import (
	"fmt"

	"clustersoc/internal/kernels"
	"clustersoc/internal/minimpi"
)

// DistributedJacobi solves -lap(u) = f on an n x n interior grid with
// Dirichlet boundaries using weighted-Jacobi sweeps, strip-decomposed
// over the world's ranks with one-row halo exchanges per sweep. It
// returns the assembled solution (on every rank) after iters sweeps.
func DistributedJacobi(w *minimpi.World, f *kernels.Grid2D, h float64, iters int) *kernels.Grid2D {
	n := f.NX
	p := w.Size()
	if n%p != 0 {
		panic(fmt.Sprintf("apps: grid rows %d not divisible by %d ranks", n, p))
	}
	rows := n / p
	result := kernels.NewGrid2D(n, n)

	w.Run(func(r *minimpi.Rank) {
		// Local strip with halo rows; local f slice.
		u := kernels.NewGrid2D(rows, n)
		v := kernels.NewGrid2D(rows, n)
		lf := kernels.NewGrid2D(rows, n)
		base := r.ID * rows
		for i := 0; i < rows; i++ {
			for j := 0; j < n; j++ {
				lf.Set(i, j, f.At(base+i, j))
			}
		}
		rowOf := func(g *kernels.Grid2D, i int) []float64 {
			out := make([]float64, n)
			for j := 0; j < n; j++ {
				out[j] = g.At(i, j)
			}
			return out
		}
		setHalo := func(g *kernels.Grid2D, i int, vals []float64) {
			for j := 0; j < n; j++ {
				g.Set(i, j, vals[j])
			}
		}
		for it := 0; it < iters; it++ {
			// Halo exchange: first with the lower neighbour, then upper —
			// the order every strip code uses.
			if r.ID > 0 {
				got := r.Sendrecv(r.ID-1, r.ID-1, 10+it, rowOf(u, 0))
				setHalo(u, -1, got)
			}
			if r.ID < p-1 {
				got := r.Sendrecv(r.ID+1, r.ID+1, 10+it, rowOf(u, rows-1))
				setHalo(u, rows, got)
			}
			kernels.JacobiStep(v, u, lf, h)
			u, v = v, u
		}
		// Assemble on rank 0 and broadcast so every rank returns the same
		// field (and the caller can read `result` after Run returns).
		flat := make([]float64, rows*n)
		for i := 0; i < rows; i++ {
			for j := 0; j < n; j++ {
				flat[i*n+j] = u.At(i, j)
			}
		}
		parts := r.Gather(0, 900, flat)
		if r.ID == 0 {
			for src, part := range parts {
				for i := 0; i < rows; i++ {
					for j := 0; j < n; j++ {
						result.Set(src*rows+i, j, part[i*n+j])
					}
				}
			}
		}
		r.Barrier()
	})
	return result
}

// DistributedCG solves the tealeaf-style implicit heat system
// (I + tau*L) x = b on an n x n grid with the conjugate-gradient method,
// strip-decomposed: the operator apply exchanges one halo row with each
// neighbour and the two dot products are allreduces — exactly the
// communication schedule the tealeaf workload model charges per
// iteration. Returns the assembled solution and the iteration count.
func DistributedCG(w *minimpi.World, b []float64, n int, tau, tol float64, maxIter int) ([]float64, int) {
	p := w.Size()
	if n%p != 0 {
		panic(fmt.Sprintf("apps: grid rows %d not divisible by %d ranks", n, p))
	}
	rows := n / p
	result := make([]float64, n*n)
	var itersOut int

	w.Run(func(r *minimpi.Rank) {
		base := r.ID * rows * n
		lb := append([]float64(nil), b[base:base+rows*n]...)
		x := make([]float64, rows*n)
		res := make([]float64, rows*n)
		pv := make([]float64, rows*n)
		ap := make([]float64, rows*n)

		// applyLocal computes ap = (I + tau*L) pvec on the strip, with
		// halo rows fetched from the neighbours.
		tagSeq := 0
		apply := func(dst, src []float64) {
			tagSeq++
			lo := make([]float64, n) // halo row below (from rank-1)
			hi := make([]float64, n) // halo row above (from rank+1)
			if r.ID > 0 {
				copy(lo, r.Sendrecv(r.ID-1, r.ID-1, 1000+tagSeq, src[:n]))
			}
			if r.ID < p-1 {
				copy(hi, r.Sendrecv(r.ID+1, r.ID+1, 1000+tagSeq, src[(rows-1)*n:]))
			}
			at := func(i, j int) float64 {
				switch {
				case j < 0 || j >= n:
					return 0
				case i < 0:
					return lo[j]
				case i >= rows:
					return hi[j]
				default:
					return src[i*n+j]
				}
			}
			for i := 0; i < rows; i++ {
				for j := 0; j < n; j++ {
					c := src[i*n+j]
					lap := 4*c - at(i-1, j) - at(i+1, j) - at(i, j-1) - at(i, j+1)
					dst[i*n+j] = c + tau*lap
				}
			}
		}
		dot := func(a, c []float64, tag int) float64 {
			local := kernels.Dot(a, c)
			return r.AllreduceScalar(tag, local, minimpi.Sum)
		}

		apply(ap, x)
		for i := range res {
			res[i] = lb[i] - ap[i]
			pv[i] = res[i]
		}
		bnorm := dot(lb, lb, 2)
		if bnorm == 0 {
			bnorm = 1
		}
		rr := dot(res, res, 3)
		iters := 0
		for it := 1; it <= maxIter; it++ {
			iters = it
			apply(ap, pv)
			pap := dot(pv, ap, 4)
			alpha := rr / pap
			kernels.Axpy(alpha, pv, x)
			kernels.Axpy(-alpha, ap, res)
			rrNew := dot(res, res, 5)
			if rrNew/bnorm < tol*tol {
				break
			}
			beta := rrNew / rr
			for i := range pv {
				pv[i] = res[i] + beta*pv[i]
			}
			rr = rrNew
		}
		parts := r.Gather(0, 901, x)
		if r.ID == 0 {
			for src, part := range parts {
				copy(result[src*rows*n:], part)
			}
			itersOut = iters
		}
		r.Barrier()
	})
	return result, itersOut
}

// DistributedEP runs kernels.EmbarrassinglyParallel split across the
// ranks with independent NPB streams and reduces the tallies — ep's
// whole communication is the final 80-byte reduction.
func DistributedEP(w *minimpi.World, pairsPerRank int) kernels.EPResult {
	var out kernels.EPResult
	w.Run(func(r *minimpi.Rank) {
		local := kernels.EmbarrassinglyParallel(pairsPerRank, float64(271828183+r.ID*99991))
		vec := make([]float64, 13)
		for i, c := range local.Counts {
			vec[i] = float64(c)
		}
		vec[10], vec[11], vec[12] = local.SumX, local.SumY, float64(local.Pairs)
		sum := r.Allreduce(700, vec, minimpi.Sum)
		if r.ID == 0 {
			for i := range out.Counts {
				out.Counts[i] = int64(sum[i])
			}
			out.SumX, out.SumY, out.Pairs = sum[10], sum[11], int64(sum[12])
		}
	})
	return out
}
