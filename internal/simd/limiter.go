package simd

import (
	"math"
	"sync"
	"time"
)

// limiter is a per-client token-bucket rate limiter: each client
// identity gets a bucket of `burst` tokens refilled at `rate` tokens per
// second, and each scenario request spends one token. Buckets are
// created full on first sight, so a new client can burst immediately;
// a drained bucket yields the wait until enough tokens accrue, which
// the server surfaces as Retry-After.
type limiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newLimiter returns a limiter, or nil when rate <= 0 (unlimited).
func newLimiter(rate float64, burst int) *limiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, rate)
	}
	return &limiter{rate: rate, burst: b, buckets: map[string]*bucket{}}
}

// take spends n tokens from client's bucket. When the bucket holds too
// few, nothing is spent and the second return is how long until n are
// available — the Retry-After hint. A nil limiter always admits.
func (l *limiter) take(client string, n int, now time.Time) (ok bool, wait time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, found := l.buckets[client]
	if !found {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	need := float64(n)
	if need > l.burst {
		// A batch larger than the bucket can never be admitted whole;
		// report a wait sized to the shortfall so the client splits or
		// backs off (the server separately caps batch size).
		need = l.burst
	}
	if b.tokens >= float64(n) {
		b.tokens -= float64(n)
		return true, 0
	}
	return false, time.Duration((need - b.tokens) / l.rate * float64(time.Second))
}
