package simd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"clustersoc/internal/obs"
	"clustersoc/internal/runner"
)

// Config tunes a Server. The zero value of every field means its
// default.
type Config struct {
	// Runner is the run-plane the server fronts (required). Attach a
	// persistent store to it (runner.SetStore) to make the service's
	// answers durable and shared across replicas.
	Runner *runner.Runner
	// MaxPending bounds admitted-but-unfinished scenarios across all
	// clients; batches that would exceed it get 429 + Retry-After.
	// Default 256.
	MaxPending int
	// MaxBatch bounds scenarios per POST (default MaxPending). Larger
	// batches get 413: they could never be admitted whole.
	MaxBatch int
	// RatePerSec is the per-client token refill rate (tokens are
	// scenario requests). 0 means unlimited.
	RatePerSec float64
	// Burst is the per-client bucket size (default max(1, RatePerSec)).
	Burst int
}

// Server is the simulation service: an http.Handler serving /simulate,
// /statusz, and /healthz over one shared run-plane. Create with
// NewServer, mount Handler on any http.Server, and call Drain before
// shutting that server down.
type Server struct {
	r          *runner.Runner
	maxPending int64
	maxBatch   int
	lim        *limiter
	start      time.Time

	pending  atomic.Int64
	draining atomic.Bool

	// Host-side serving counters (non-deterministic diagnostics, exposed
	// via /statusz as a "simd" obs scope).
	batches       atomic.Uint64
	accepted      atomic.Uint64
	rejectedQueue atomic.Uint64
	rejectedRate  atomic.Uint64
	rejectedBatch atomic.Uint64
	badRequests   atomic.Uint64
	served        atomic.Uint64
	servedMemory  atomic.Uint64
	servedStore   atomic.Uint64
	simulated     atomic.Uint64
	coalesced     atomic.Uint64
	failed        atomic.Uint64
	pendingPeak   atomic.Int64
}

// NewServer assembles a Server over cfg.Runner.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Runner == nil {
		return nil, errors.New("simd: Config.Runner is required")
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 256
	}
	if cfg.MaxBatch <= 0 || cfg.MaxBatch > cfg.MaxPending {
		cfg.MaxBatch = cfg.MaxPending
	}
	return &Server{
		r:          cfg.Runner,
		maxPending: int64(cfg.MaxPending),
		maxBatch:   cfg.MaxBatch,
		lim:        newLimiter(cfg.RatePerSec, cfg.Burst),
		start:      time.Now(),
	}, nil
}

// Runner exposes the served run-plane.
func (s *Server) Runner() *runner.Runner { return s.r }

// Drain switches the server into drain mode: new /simulate batches are
// refused with 503 while in-flight batches keep streaming. Call it just
// before http.Server.Shutdown, which then waits for the active streams.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/simulate", s.handleSimulate)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// admit reserves n pending slots, or reports how many are outstanding.
func (s *Server) admit(n int64) bool {
	for {
		cur := s.pending.Load()
		if cur+n > s.maxPending {
			return false
		}
		if s.pending.CompareAndSwap(cur, cur+n) {
			for {
				peak := s.pendingPeak.Load()
				if cur+n <= peak || s.pendingPeak.CompareAndSwap(peak, cur+n) {
					break
				}
			}
			return true
		}
	}
}

// clientID identifies the caller for rate limiting: the self-declared
// X-Client header when present (cooperating tools name themselves), else
// the remote host.
func clientID(req *http.Request) string {
	if c := req.Header.Get("X-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(req.RemoteAddr)
	if err != nil {
		return req.RemoteAddr
	}
	return host
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// retryAfter writes a 429 with a Retry-After hint of at least one
// second (the header is whole seconds).
func retryAfter(w http.ResponseWriter, wait time.Duration, format string, args ...any) {
	secs := int(wait / time.Second)
	if wait%time.Second != 0 || secs < 1 {
		secs++
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	httpError(w, http.StatusTooManyRequests, format, args...)
}

func (s *Server) handleSimulate(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a batch of scenario requests")
		return
	}
	s.batches.Add(1)
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var batch Batch
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		s.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "undecodable batch: %v", err)
		return
	}
	n := len(batch.Requests)
	if n == 0 {
		s.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if n > s.maxBatch {
		s.rejectedBatch.Add(1)
		httpError(w, http.StatusRequestEntityTooLarge,
			"batch of %d exceeds the %d-scenario limit; split it", n, s.maxBatch)
		return
	}
	// Resolve the whole batch before admitting any of it: an invalid
	// request rejects the batch, so every admitted scenario is runnable
	// and the stream carries only simulation results (or failures).
	scenarios := make([]runner.Scenario, n)
	for i, q := range batch.Requests {
		sc, err := q.Resolve()
		if err != nil {
			s.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, "request %d: %v", i, err)
			return
		}
		scenarios[i] = sc
	}
	if ok, wait := s.lim.take(clientID(req), n, time.Now()); !ok {
		s.rejectedRate.Add(1)
		retryAfter(w, wait, "client %s over its request rate", clientID(req))
		return
	}
	if !s.admit(int64(n)) {
		s.rejectedQueue.Add(1)
		retryAfter(w, time.Second, "pending queue full (%d scenarios)", s.pending.Load())
		return
	}
	s.accepted.Add(uint64(n))

	// Stream: one goroutine per scenario submits to the run-plane (which
	// bounds actual simulation concurrency and coalesces duplicates);
	// lines go out in completion order, flushed per line.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	lines := make(chan Response, n)
	for i := range scenarios {
		go func(i int) {
			defer s.pending.Add(-1)
			res, out, err := s.r.RunTracked(scenarios[i])
			line := Response{
				ID:          batch.Requests[i].ID,
				Index:       i,
				Fingerprint: scenarios[i].Fingerprint(),
				Source:      out.Source,
				Coalesced:   out.Coalesced,
			}
			if err != nil {
				s.failed.Add(1)
				line.Error = err.Error()
			} else {
				line.Result = &res
				s.served.Add(1)
				switch out.Source {
				case runner.SourceMemory:
					s.servedMemory.Add(1)
				case runner.SourceStore:
					s.servedStore.Add(1)
				case runner.SourceSimulated:
					s.simulated.Add(1)
				}
				if out.Coalesced {
					s.coalesced.Add(1)
				}
			}
			lines <- line
		}(i)
	}
	enc := json.NewEncoder(w)
	for i := 0; i < n; i++ {
		if err := enc.Encode(<-lines); err != nil {
			// The client went away mid-stream; drain the remaining
			// results so the pending accounting settles, then stop.
			for j := i + 1; j < n; j++ {
				<-lines
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// Status is the /statusz body: service posture plus the merged obs
// snapshot of the serving layer, the run-plane, and the store.
type Status struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Draining      bool         `json:"draining"`
	Pending       int64        `json:"pending"`
	MaxPending    int64        `json:"max_pending"`
	Workers       int          `json:"workers"`
	Runner        runner.Stats `json:"runner"`
	StoreDir      string       `json:"store_dir,omitempty"`
	StoreSchema   int          `json:"store_schema,omitempty"`
	// Metrics merges the "simd", "runner", and "store" scopes through
	// the obs snapshot machinery — every counter a dashboard needs, in
	// one sorted, stable list.
	Metrics obs.Snapshot `json:"metrics"`
}

// snapshot renders the serving-layer counters as a "simd"-scoped obs
// snapshot. Like the store's, the scope is NonDeterministic: traffic is
// host-side state.
func (s *Server) snapshot() obs.Snapshot {
	reg := obs.NewRegistry()
	sc := reg.Scope("simd").NonDeterministic()
	sc.Counter("batches").Add(float64(s.batches.Load()))
	sc.Counter("accepted").Add(float64(s.accepted.Load()))
	sc.Counter("rejected_queue").Add(float64(s.rejectedQueue.Load()))
	sc.Counter("rejected_rate").Add(float64(s.rejectedRate.Load()))
	sc.Counter("rejected_batch").Add(float64(s.rejectedBatch.Load()))
	sc.Counter("bad_requests").Add(float64(s.badRequests.Load()))
	sc.Counter("served").Add(float64(s.served.Load()))
	sc.Counter("served_memory").Add(float64(s.servedMemory.Load()))
	sc.Counter("served_store").Add(float64(s.servedStore.Load()))
	sc.Counter("simulated").Add(float64(s.simulated.Load()))
	sc.Counter("coalesced").Add(float64(s.coalesced.Load()))
	sc.Counter("failed").Add(float64(s.failed.Load()))
	sc.Gauge("pending").Set(float64(s.pending.Load()))
	sc.Gauge("pending_peak").Set(float64(s.pendingPeak.Load()))
	return reg.Snapshot()
}

func (s *Server) handleStatusz(w http.ResponseWriter, req *http.Request) {
	stats := s.r.Stats()
	st := Status{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.draining.Load(),
		Pending:       s.pending.Load(),
		MaxPending:    s.maxPending,
		Workers:       s.r.Workers(),
		Runner:        stats,
		Metrics:       obs.Merge(s.snapshot(), stats.Snapshot()),
	}
	if ps := s.r.Store(); ps != nil {
		st.StoreDir = ps.Dir()
		st.StoreSchema = ps.Schema()
		st.Metrics = obs.Merge(st.Metrics, ps.Snapshot())
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"ok":true}`)
}
