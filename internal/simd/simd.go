// Package simd is simulation-as-a-service: an HTTP/JSON front end over
// the memoized run-plane. Clients POST batches of serializable scenario
// requests (registry workloads on named system presets or fully
// specified cluster configs); the server resolves each request to the
// run-plane's canonical fingerprint and serves it through the two cache
// tiers — the in-memory fingerprint map, then the persistent
// content-addressed store, then simulation. Results are deterministic,
// so every scenario anyone has ever simulated against a shared store is
// a pure-decode answer for every later client.
//
// The serving properties the server layers on top of the run-plane:
//
//   - Cross-client coalescing. Duplicate in-flight requests for one
//     fingerprint — from any number of connections — join the same
//     execution via the run-plane's singleflight; a batch of N clients
//     asking the same cold question costs one simulation.
//
//   - Admission control. A bounded pending queue: batches that would
//     push the server past its bound are refused with 429 and a
//     Retry-After hint instead of queueing unboundedly.
//
//   - Per-client rate limits. A token bucket per client identity
//     (X-Client header, else the remote host) bounds sustained request
//     rate independently of queue pressure.
//
//   - Streaming. Results return as NDJSON, one line per scenario as it
//     completes, so a mixed warm/cold batch streams its cache hits
//     immediately instead of waiting on the slowest simulation.
//
//   - Graceful drain. On shutdown the server stops admitting new work
//     and lets in-flight batches stream to completion.
package simd

import (
	"fmt"

	"clustersoc/internal/cluster"
	"clustersoc/internal/core"
	"clustersoc/internal/experiments"
	"clustersoc/internal/faults"
	"clustersoc/internal/network"
	"clustersoc/internal/runner"
	"clustersoc/internal/workloads"
)

// Request is one serializable scenario ask. The zero knobs mean the
// paper's defaults (8-node TX1 cluster, 10 GbE, full problem scale), so
// {"workload":"cg"} is a complete request.
type Request struct {
	// ID is an opaque client correlation tag echoed on the response line.
	ID string `json:"id,omitempty"`
	// Workload names a registry workload (hpl, jacobi, cloverleaf,
	// tealeaf2d/3d, alexnet, googlenet, and the NPB suite).
	Workload string `json:"workload"`
	// System picks a named preset: "tx1" (default), "cavium" (the
	// ThunderX server; Nodes is the MPI process count there), or
	// "gtx980" (the discrete-GPU baseline). Ignored when Cluster is set.
	System string `json:"system,omitempty"`
	// Nodes is the cluster size (default 8); for "cavium" it is the MPI
	// rank count (default 32, the Table VI configuration).
	Nodes int `json:"nodes,omitempty"`
	// Network picks the NIC for "tx1": "10GbE" (default), "1GbE", or
	// "ideal".
	Network string `json:"network,omitempty"`
	// Scale, GPUWorkRatio, HalfPrecision, and WeakScaling are the
	// workload knobs (see workloads.Config); zero values mean defaults.
	Scale         float64 `json:"scale,omitempty"`
	GPUWorkRatio  float64 `json:"gpu_work_ratio,omitempty"`
	HalfPrecision bool    `json:"half_precision,omitempty"`
	WeakScaling   bool    `json:"weak_scaling,omitempty"`
	// Traced enables Extrae-style trace recording (a distinct
	// fingerprint: traced and untraced runs never collide).
	Traced bool `json:"traced,omitempty"`
	// Faults attaches a seeded fault plan; it participates in the
	// fingerprint, so faulted variants are distinct cache entries.
	Faults *faults.Plan `json:"faults,omitempty"`
	// Cluster, when set, bypasses the presets and simulates the workload
	// on this fully specified system (normalized by core.NewScenario, so
	// fingerprints match the library face).
	Cluster *cluster.Config `json:"cluster,omitempty"`
}

// config assembles the workload knobs.
func (q Request) config() workloads.Config {
	return workloads.Config{
		Scale:         q.Scale,
		GPUWorkRatio:  q.GPUWorkRatio,
		HalfPrecision: q.HalfPrecision,
		WeakScaling:   q.WeakScaling,
	}
}

// netProfile resolves the NIC name.
func netProfile(name string) (network.Profile, error) {
	switch name {
	case "", "10GbE":
		return network.TenGigE, nil
	case "1GbE":
		return network.GigE, nil
	case "ideal":
		return network.Ideal, nil
	}
	return network.Profile{}, fmt.Errorf("simd: unknown network %q (want 1GbE, 10GbE, or ideal)", name)
}

// Resolve turns the request into the run-plane's canonical Scenario.
// Preset requests resolve through the same constructors the experiment
// generators use, so a store warmed by cmd/experiments serves them as
// pure decodes; custom-cluster requests normalize through
// core.NewScenario, matching the library face.
func (q Request) Resolve() (runner.Scenario, error) {
	if q.Workload == "" {
		return runner.Scenario{}, fmt.Errorf("simd: request missing workload")
	}
	if q.Nodes < 0 {
		return runner.Scenario{}, fmt.Errorf("simd: negative node count %d", q.Nodes)
	}
	var sc runner.Scenario
	switch {
	case q.Cluster != nil:
		var err error
		sc, err = core.NewScenario(*q.Cluster, q.Workload, q.config())
		if err != nil {
			return runner.Scenario{}, err
		}
	case q.System == "" || q.System == "tx1":
		prof, err := netProfile(q.Network)
		if err != nil {
			return runner.Scenario{}, err
		}
		nodes := q.Nodes
		if nodes == 0 {
			nodes = 8
		}
		sc, err = experiments.StandardScenario(q.Workload, nodes, prof, q.Scale)
		if err != nil {
			return runner.Scenario{}, err
		}
		sc.Config = q.config()
	case q.System == "cavium":
		w, err := workloads.ByName(q.Workload)
		if err != nil {
			return runner.Scenario{}, err
		}
		if w.GPUAccelerated() {
			return runner.Scenario{}, fmt.Errorf("simd: workload %s needs a GPU; the Cavium server has none", q.Workload)
		}
		ranks := q.Nodes
		if ranks == 0 {
			ranks = 32 // the Table VI configuration
		}
		sc = runner.Scenario{Cluster: cluster.CaviumServer(ranks), Workload: q.Workload, Config: q.config()}
	case q.System == "gtx980":
		if _, err := workloads.ByName(q.Workload); err != nil {
			return runner.Scenario{}, err
		}
		nodes := q.Nodes
		if nodes == 0 {
			nodes = 2 // the Fig. 9 baseline
		}
		// Mirrors the Fig. 9 generator: file server attached, one rank
		// per Xeon host — same fingerprints as the discrete study.
		cfg := cluster.GTX980Cluster(nodes)
		cfg.FileServer = true
		sc = runner.Scenario{Cluster: cfg, Workload: q.Workload, Config: q.config()}
	default:
		return runner.Scenario{}, fmt.Errorf("simd: unknown system %q (want tx1, cavium, or gtx980)", q.System)
	}
	if q.Traced {
		sc.Cluster.Traced = true
	}
	if q.Faults != nil {
		sc.Cluster.Faults = q.Faults
	}
	return sc, nil
}

// Batch is the request body of POST /simulate.
type Batch struct {
	Requests []Request `json:"requests"`
}

// Response is one NDJSON line of the result stream: the request's echo
// tags, the canonical fingerprint it resolved to, how it was served, and
// the full run-plane Result (or the scenario's error). Lines stream in
// completion order; Index ties each back to its request.
type Response struct {
	ID          string `json:"id,omitempty"`
	Index       int    `json:"index"`
	Fingerprint string `json:"fingerprint"`
	// Source is which tier served this submission: "memory", "store", or
	// "simulated". Coalesced marks a join on another request's run.
	Source    string `json:"source,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	// Result is byte-identical to marshalling the run-plane's Result
	// directly — the serving layer adds nothing and strips nothing.
	Result *runner.Result `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}
