package simd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"clustersoc/internal/cluster"
	"clustersoc/internal/core"
	"clustersoc/internal/network"
	"clustersoc/internal/runner"
	"clustersoc/internal/workloads"
)

// tiny returns a cheap cold request: cg on a 2-node TX1 cluster at 1%
// problem scale (sub-millisecond to simulate).
func tiny() Request { return Request{Workload: "cg", Nodes: 2, Scale: 0.01} }

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Runner == nil {
		cfg.Runner = runner.New(2)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postBatch(t *testing.T, url, client string, reqs ...Request) *http.Response {
	t.Helper()
	body, err := json.Marshal(Batch{Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/simulate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set("X-Client", client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readLines consumes an NDJSON stream into decoded Response lines.
func readLines(t *testing.T, resp *http.Response) []Response {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var out []Response
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line Response
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("undecodable line %q: %v", sc.Text(), err)
		}
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCoalescingAcrossClients is the tentpole serving property: two
// clients racing on the same cold fingerprint cost one simulation, and
// both receive the full result.
func TestCoalescingAcrossClients(t *testing.T) {
	s, ts := newTestServer(t, Config{Runner: runner.New(2)})
	const clients = 2
	lines := make([][]Response, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/simulate", "application/json",
				bytes.NewReader(mustJSON(t, Batch{Requests: []Request{tiny()}})))
			if err != nil {
				t.Error(err)
				return
			}
			lines[c] = readLines(t, resp)
		}(c)
	}
	wg.Wait()
	if st := s.Runner().Stats(); st.Simulated != 1 {
		t.Fatalf("Simulated = %d, want exactly 1 for %d racing clients", st.Simulated, clients)
	}
	for c, ls := range lines {
		if len(ls) != 1 || ls[0].Error != "" || ls[0].Result == nil {
			t.Fatalf("client %d: unexpected stream %+v", c, ls)
		}
	}
	if lines[0][0].Fingerprint != lines[1][0].Fingerprint {
		t.Fatalf("fingerprints diverge: %s vs %s", lines[0][0].Fingerprint, lines[1][0].Fingerprint)
	}
	// Exactly one submission executed; the other joined it (in flight or
	// after completion — either way, served from memory as a coalesced hit).
	sources := map[string]int{lines[0][0].Source: 1}
	sources[lines[1][0].Source]++
	if sources[runner.SourceSimulated] != 1 || sources[runner.SourceMemory] != 1 {
		t.Fatalf("sources = %v, want one simulated + one memory", sources)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestQueueOverflowRejectsWith429 fills the pending queue and checks the
// refusal carries Retry-After instead of queueing unboundedly.
func TestQueueOverflowRejectsWith429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxPending: 2})
	s.pending.Store(2) // simulate two admitted, unfinished scenarios
	resp := postBatch(t, ts.URL, "", tiny())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	s.pending.Store(0)
	resp2 := postBatch(t, ts.URL, "", tiny())
	if got := readLines(t, resp2); len(got) != 1 || got[0].Error != "" {
		t.Fatalf("after queue drains, want one clean line, got %+v", got)
	}
	if s.rejectedQueue.Load() != 1 {
		t.Fatalf("rejected_queue = %d, want 1", s.rejectedQueue.Load())
	}
}

// TestPerClientRateLimit checks token accounting: a client's burst
// admits, the next request is refused with a Retry-After sized to the
// refill rate, and other clients are unaffected.
func TestPerClientRateLimit(t *testing.T) {
	s, ts := newTestServer(t, Config{RatePerSec: 0.1, Burst: 2})
	s.Runner().Run(mustResolve(t, tiny())) // pre-warm so admitted requests return instantly
	for i := 0; i < 2; i++ {
		resp := postBatch(t, ts.URL, "alice", tiny())
		if got := readLines(t, resp); len(got) != 1 || got[0].Error != "" {
			t.Fatalf("burst request %d refused: %+v", i, got)
		}
	}
	resp := postBatch(t, ts.URL, "alice", tiny())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 after burst", resp.StatusCode)
	}
	// One token at 0.1/s is 10 s away; the hint must say so (whole seconds).
	if ra, _ := strconv.Atoi(resp.Header.Get("Retry-After")); ra < 9 {
		t.Fatalf("Retry-After = %q, want >= 9s at 0.1 tokens/s", resp.Header.Get("Retry-After"))
	}
	if s.rejectedRate.Load() != 1 {
		t.Fatalf("rejected_rate = %d, want 1", s.rejectedRate.Load())
	}
	other := postBatch(t, ts.URL, "bob", tiny())
	if got := readLines(t, other); len(got) != 1 || got[0].Error != "" {
		t.Fatalf("other client's bucket drained by alice: %+v", got)
	}
}

func mustResolve(t *testing.T, q Request) runner.Scenario {
	t.Helper()
	sc, err := q.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestStreamCarriesEveryIndexOnce posts a mixed batch and checks the
// NDJSON stream: every index exactly once, IDs echoed, fingerprints
// matching an independent resolution of the same requests.
func TestStreamCarriesEveryIndexOnce(t *testing.T) {
	_, ts := newTestServer(t, Config{Runner: runner.New(4)})
	reqs := []Request{
		{ID: "a", Workload: "cg", Nodes: 2, Scale: 0.01},
		{ID: "b", Workload: "mg", Nodes: 2, Scale: 0.01},
		{ID: "c", Workload: "cg", Nodes: 4, Scale: 0.01},
		{ID: "d", Workload: "cg", Nodes: 2, Scale: 0.01}, // dup of a
	}
	lines := readLines(t, postBatch(t, ts.URL, "", reqs...))
	if len(lines) != len(reqs) {
		t.Fatalf("got %d lines, want %d", len(lines), len(reqs))
	}
	seen := map[int]Response{}
	for _, l := range lines {
		if _, dup := seen[l.Index]; dup {
			t.Fatalf("index %d streamed twice", l.Index)
		}
		seen[l.Index] = l
	}
	for i, q := range reqs {
		l, ok := seen[i]
		if !ok {
			t.Fatalf("index %d missing from stream", i)
		}
		if l.ID != q.ID {
			t.Fatalf("index %d: ID = %q, want %q", i, l.ID, q.ID)
		}
		if want := mustResolve(t, q).Fingerprint(); l.Fingerprint != want {
			t.Fatalf("index %d: fingerprint %s, want %s", i, l.Fingerprint, want)
		}
		if l.Error != "" || l.Result == nil {
			t.Fatalf("index %d: incomplete line %+v", i, l)
		}
	}
	if seen[0].Result.Result.Runtime != seen[3].Result.Result.Runtime {
		t.Fatal("duplicate requests disagree on runtime")
	}
}

// TestServedBytesMatchDirectRunner is the fidelity check: the result
// embedded in a stream line is byte-identical to marshalling the
// run-plane's Result directly — the service adds nothing, strips
// nothing, warms from any tier.
func TestServedBytesMatchDirectRunner(t *testing.T) {
	dir := t.TempDir()
	st, err := runner.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := runner.New(1)
	warm.SetStore(st)
	direct, err := warm.Run(mustResolve(t, tiny()))
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, direct)

	// A fresh runner on the same store: the service answer is a store
	// decode, and must carry the same bytes.
	st2, err := runner.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := runner.New(1)
	r.SetStore(st2)
	_, ts := newTestServer(t, Config{Runner: r})
	resp := postBatch(t, ts.URL, "", tiny())
	defer resp.Body.Close()
	var line struct {
		Source string          `json:"source"`
		Result json.RawMessage `json:"result"`
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("empty stream: %v", sc.Err())
	}
	if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
		t.Fatal(err)
	}
	if line.Source != runner.SourceStore {
		t.Fatalf("source = %q, want store", line.Source)
	}
	if !bytes.Equal(line.Result, want) {
		t.Fatalf("served result bytes diverge from direct runner output:\n  served: %s\n  direct: %s", line.Result, want)
	}
	if st := r.Stats(); st.Simulated != 0 {
		t.Fatalf("warm serve simulated %d times, want 0", st.Simulated)
	}
}

// TestGracefulDrain checks drain semantics: an in-flight batch streams
// to completion while new batches and health checks are refused.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Runner: runner.New(1)})
	reqs := []Request{
		{Workload: "cg", Nodes: 2, Scale: 0.02},
		{Workload: "cg", Nodes: 4, Scale: 0.02},
		{Workload: "cg", Nodes: 6, Scale: 0.02},
		{Workload: "cg", Nodes: 8, Scale: 0.02},
	}
	type outcome struct {
		lines []Response
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/simulate", "application/json",
			bytes.NewReader(mustJSON(t, Batch{Requests: reqs})))
		if err != nil {
			t.Error(err)
			done <- outcome{}
			return
		}
		done <- outcome{lines: readLines(t, resp)}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.pending.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	s.Drain()
	refused := postBatch(t, ts.URL, "", tiny())
	refused.Body.Close()
	if refused.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain batch: status = %d, want 503", refused.StatusCode)
	}
	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain health: status = %d, want 503", health.StatusCode)
	}
	out := <-done
	if len(out.lines) != len(reqs) {
		t.Fatalf("in-flight batch truncated by drain: %d of %d lines", len(out.lines), len(reqs))
	}
	for _, l := range out.lines {
		if l.Error != "" || l.Result == nil {
			t.Fatalf("in-flight line failed under drain: %+v", l)
		}
	}
	if s.pending.Load() != 0 {
		t.Fatalf("pending = %d after drain completes, want 0", s.pending.Load())
	}
}

// TestStatuszExposesAllScopes checks /statusz merges the simd, runner,
// and store observability scopes.
func TestStatuszExposesAllScopes(t *testing.T) {
	st, err := runner.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := runner.New(2)
	r.SetStore(st)
	s, ts := newTestServer(t, Config{Runner: r})
	_ = readLines(t, postBatch(t, ts.URL, "", tiny()))
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status Status
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Workers != 2 {
		t.Fatalf("workers = %d, want 2", status.Workers)
	}
	if status.StoreDir == "" || status.StoreSchema == 0 {
		t.Fatalf("store identity missing: %+v", status)
	}
	if status.Runner.Submitted != 1 || status.Runner.Simulated != 1 {
		t.Fatalf("runner stats = %+v, want 1 submitted / 1 simulated", status.Runner)
	}
	for _, name := range []string{"simd.served", "simd.batches", "runner.simulated", "store.write"} {
		m, ok := status.Metrics.Get(name)
		if !ok {
			t.Fatalf("metric %s missing from /statusz", name)
		}
		if m.Value != 1 {
			t.Fatalf("metric %s = %v, want 1", name, m.Value)
		}
	}
	if s.served.Load() != 1 {
		t.Fatalf("served = %d, want 1", s.served.Load())
	}
}

// TestRequestValidation checks the 400/405/413 surfaces.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty batch", `{"requests":[]}`, http.StatusBadRequest},
		{"garbage", `{nope`, http.StatusBadRequest},
		{"unknown field", `{"requests":[{"workload":"cg","bogus":1}]}`, http.StatusBadRequest},
		{"unknown workload", `{"requests":[{"workload":"doom"}]}`, http.StatusBadRequest},
		{"unknown system", `{"requests":[{"workload":"cg","system":"cray"}]}`, http.StatusBadRequest},
		{"unknown network", `{"requests":[{"workload":"cg","network":"token-ring"}]}`, http.StatusBadRequest},
		{"gpu code on cavium", `{"requests":[{"workload":"hpl","system":"cavium"}]}`, http.StatusBadRequest},
		{"negative nodes", `{"requests":[{"workload":"cg","nodes":-1}]}`, http.StatusBadRequest},
		{"oversized batch", `{"requests":[{"workload":"cg"},{"workload":"mg"},{"workload":"ft"}]}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/simulate", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	get, err := http.Get(ts.URL + "/simulate")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /simulate: status = %d, want 405", get.StatusCode)
	}
}

// TestResolvePresetParity pins the canonical-fingerprint contract: the
// service presets resolve to the exact fingerprints the experiment
// generators and the library face produce, so any store they warm is a
// pure decode for the service.
func TestResolvePresetParity(t *testing.T) {
	// tx1 preset == experiments' standard scenario.
	svc := mustResolve(t, Request{Workload: "hpl", Nodes: 4, Scale: 0.05})
	w, err := workloads.ByName("hpl")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.TX1Cluster(4, network.TenGigE)
	cfg.RanksPerNode = w.RanksPerNode()
	cfg.FileServer = true
	exp := runner.Scenario{Cluster: cfg, Workload: "hpl", Config: workloads.Config{Scale: 0.05}}
	if svc.Fingerprint() != exp.Fingerprint() {
		t.Fatalf("tx1 preset fingerprint diverges from the experiments constructor")
	}
	// Cavium preset == the Table VI generator's scenario (explicit rank
	// count, no per-workload normalization).
	viaPreset := mustResolve(t, Request{Workload: "cg", System: "cavium", Scale: 0.05})
	tableVI := runner.Scenario{Cluster: cluster.CaviumServer(32), Workload: "cg", Config: workloads.Config{Scale: 0.05}}
	if viaPreset.Fingerprint() != tableVI.Fingerprint() {
		t.Fatalf("cavium preset fingerprint diverges from the Table VI generator")
	}
	// Custom cluster normalizes through core.NewScenario: RanksPerNode is
	// derived from the workload, exactly as the library face does.
	custom := cluster.CaviumServer(16)
	viaCluster := mustResolve(t, Request{Workload: "cg", Cluster: &custom, Scale: 0.05})
	lib, err := core.NewScenario(custom, "cg", workloads.Config{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if viaCluster.Fingerprint() != lib.Fingerprint() {
		t.Fatalf("explicit-cluster fingerprint diverges from core.NewScenario")
	}
	// Traced and faulted variants never collide with the plain run.
	plain := mustResolve(t, tiny())
	traced := mustResolve(t, Request{Workload: "cg", Nodes: 2, Scale: 0.01, Traced: true})
	if plain.Fingerprint() == traced.Fingerprint() {
		t.Fatal("traced variant shares the untraced fingerprint")
	}
}

// TestLimiterAccounting unit-tests the token bucket.
func TestLimiterAccounting(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newLimiter(2, 4)
	if ok, _ := l.take("c", 4, now); !ok {
		t.Fatal("full bucket refused its burst")
	}
	ok, wait := l.take("c", 2, now)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if want := time.Second; wait != want {
		t.Fatalf("wait = %v, want %v (2 tokens at 2/s)", wait, want)
	}
	if ok, _ := l.take("c", 2, now.Add(time.Second)); !ok {
		t.Fatal("refilled bucket refused")
	}
	// Oversized ask: wait is clamped to a full bucket, not infinity.
	_, wait = l.take("c", 100, now.Add(time.Second))
	if wait > 2*time.Second {
		t.Fatalf("oversized ask wait = %v, want <= full-bucket refill", wait)
	}
	if l := newLimiter(0, 0); l != nil {
		t.Fatal("rate 0 should mean unlimited (nil limiter)")
	}
	var nilL *limiter
	if ok, _ := nilL.take("c", 1000, now); !ok {
		t.Fatal("nil limiter must admit everything")
	}
}

// TestStoreTierVisibleInResponses: a second service instance on the same
// store answers from the store tier with zero simulations — the
// cross-replica property CI leans on.
func TestStoreTierVisibleInResponses(t *testing.T) {
	dir := t.TempDir()
	st1, err := runner.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := runner.New(1)
	r1.SetStore(st1)
	_, ts1 := newTestServer(t, Config{Runner: r1})
	lines := readLines(t, postBatch(t, ts1.URL, "", tiny()))
	if lines[0].Source != runner.SourceSimulated {
		t.Fatalf("cold source = %q, want simulated", lines[0].Source)
	}

	st2, err := runner.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := runner.New(1)
	r2.SetStore(st2)
	_, ts2 := newTestServer(t, Config{Runner: r2})
	warm := readLines(t, postBatch(t, ts2.URL, "", tiny()))
	if warm[0].Source != runner.SourceStore {
		t.Fatalf("warm source = %q, want store", warm[0].Source)
	}
	if r2.Stats().Simulated != 0 {
		t.Fatalf("replica simulated %d times, want 0", r2.Stats().Simulated)
	}
	// And a repeat on the same replica is an in-memory hit.
	again := readLines(t, postBatch(t, ts2.URL, "", tiny()))
	if again[0].Source != runner.SourceMemory || !again[0].Coalesced {
		t.Fatalf("repeat source = %q coalesced=%v, want memory/coalesced", again[0].Source, again[0].Coalesced)
	}
}
