package trace

import (
	"bytes"
	"testing"
)

// goldenTrace builds a two-rank trace whose timings are exact binary
// fractions (bucket width 1/16 s at width 16), so the timeline bucketing
// has no float rounding and the rendering is exactly reproducible:
//
//	rank0: compute 0..0.5s, then send 0.5..1.0s
//	rank1: recv 0..0.5s, copy 0.5..0.75s, compute 0.75..1.0s
func goldenTrace() *Trace {
	tr := New([]int{0, 0})
	tr.RecordCompute(0, 0.5, 0)
	tr.RecordSend(0, 1, 0, 1024, 0.5, 1.0)
	tr.RecordRecv(1, 0, 0, 0, 0.5)
	tr.RecordCopy(1, 0.25, 0.5)
	tr.RecordCompute(1, 0.25, 0.75)
	tr.Finish(1.0)
	return &tr.T
}

// TestTimelineGolden locks the exact rendering: glyph priorities
// (compute over copy over comm), bucket boundaries, and the utilization
// footer.
func TestTimelineGolden(t *testing.T) {
	want := "timeline: 62.50ms per cell, '#' compute, '=' copy, '.' comm wait\n" +
		"rank   0 |#########.......|\n" +
		"rank   1 |........====####|\n" +
		"\n" +
		"utilization (compute+copy / runtime):\n" +
		"rank   0  50.0% ***************\n" +
		"rank   1  50.0% ***************\n"
	got := goldenTrace().Timeline(16)
	if got != want {
		t.Fatalf("Timeline mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTimelineEmptyTrace(t *testing.T) {
	tr := New([]int{0})
	if got := tr.T.Timeline(16); got != "(empty trace)\n" {
		t.Fatalf("empty trace rendered %q", got)
	}
}

// TestGoldenTraceRoundTripPreservesSummary: writing and re-reading the
// hand-built trace preserves its aggregate view and its rendering.
func TestGoldenTraceRoundTripPreservesSummary(t *testing.T) {
	orig := goldenTrace()
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if orig.Summarize() != back.Summarize() {
		t.Fatalf("summary changed in round trip:\n%+v\nvs\n%+v", orig.Summarize(), back.Summarize())
	}
	s := back.Summarize()
	if s.Ranks != 2 || s.Ops != 5 || s.Compute != 0.75 || s.Copies != 0.25 ||
		s.Messages != 1 || s.Bytes != 1024 || s.Runtime != 1.0 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if orig.Timeline(16) != back.Timeline(16) {
		t.Fatalf("timeline rendering changed in round trip")
	}
}
