package trace

import (
	"fmt"
	"strings"
)

// Timeline renders a PARAVER-style per-rank activity view of the trace:
// one row per rank, time bucketed into fixed-width cells, each cell
// showing the dominant activity — compute ('#'), host<->device copies
// ('='), blocked in communication ('.'), or idle (' '). The paper reads
// exactly this kind of view off its Extrae traces to reason about LB and
// Ser before replaying with DIMEMAS.

// timeline activity classes, by display priority.
const (
	actIdle = iota
	actComm
	actCopy
	actCompute
)

var actGlyph = [...]byte{' ', '.', '=', '#'}

// Timeline renders the trace over `width` time buckets.
func (t *Trace) Timeline(width int) string {
	if width < 10 {
		width = 80
	}
	end := t.Runtime
	if end <= 0 {
		for _, r := range t.Ranks {
			for _, op := range r.Ops {
				if op.End > end {
					end = op.End
				}
			}
		}
	}
	if end <= 0 {
		return "(empty trace)\n"
	}
	bucket := end / float64(width)

	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %s per cell, '#' compute, '=' copy, '.' comm wait\n", fmtDur(bucket))
	for _, r := range t.Ranks {
		cells := make([]int, width)
		mark := func(start, stop float64, act int) {
			if stop <= start {
				return
			}
			lo := int(start / bucket)
			hi := int(stop / bucket)
			if hi >= width {
				hi = width - 1
			}
			for c := lo; c <= hi; c++ {
				if act > cells[c] {
					cells[c] = act
				}
			}
		}
		for _, op := range r.Ops {
			switch op.Kind {
			case OpCompute:
				mark(op.Start, op.End, actCompute)
			case OpCopy:
				mark(op.Start, op.End, actCopy)
			case OpSend, OpRecv:
				mark(op.Start, op.End, actComm)
			}
		}
		row := make([]byte, width)
		for c, act := range cells {
			row[c] = actGlyph[act]
		}
		fmt.Fprintf(&b, "rank %3d |%s|\n", r.Rank, string(row))
	}

	// Per-rank utilization summary.
	comp := t.ComputeSeconds()
	fmt.Fprintf(&b, "\nutilization (compute+copy / runtime):\n")
	for i, c := range comp {
		frac := 0.0
		if end > 0 {
			frac = c / end
		}
		fmt.Fprintf(&b, "rank %3d %5.1f%% %s\n", i, 100*frac, strings.Repeat("*", int(frac*30)))
	}
	return b.String()
}

func fmtDur(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fus", s*1e6)
	}
}
