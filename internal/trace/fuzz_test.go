package trace

import (
	"bytes"
	"testing"
)

// FuzzRead hardens the trace parser: arbitrary input must produce either
// a valid trace or an error — never a panic, never a trace that breaks
// the replayer's invariants.
func FuzzRead(f *testing.F) {
	// Seed with a valid trace.
	tr := New([]int{0, 1})
	tr.RecordCompute(0, 1, 0)
	tr.RecordSend(0, 1, 3, 100, 1, 1.1)
	tr.RecordRecv(1, 0, 3, 0, 1.2)
	tr.Finish(1.2)
	var buf bytes.Buffer
	if err := tr.T.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"version":1,"ranks":0,"runtime":0}`))
	f.Add([]byte(`{"version":1,"ranks":1,"runtime":1}` + "\n" + `{"rank":0,"node":0,"ops":[{"Kind":0,"Dur":1}]}`))
	f.Add([]byte("garbage"))
	f.Add([]byte(`{"version":1,"ranks":-5}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed trace must be structurally sound.
		for i, r := range got.Ranks {
			if r == nil {
				t.Fatalf("rank %d nil in accepted trace", i)
			}
			if r.Rank != i {
				t.Fatalf("rank %d mislabeled as %d", i, r.Rank)
			}
		}
		// Round trip: what we read must write and re-read identically.
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(again.Ranks) != len(got.Ranks) {
			t.Fatal("round trip changed rank count")
		}
	})
}
