package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Traces serialize to a line-oriented JSON format (one header line, then
// one line per rank) so large traces stream without holding a second copy
// in memory — the workflow is: clustersim -trace out.trace, then
// cmd/replay re-times it under a different network, like the paper's
// Extrae -> DIMEMAS pipeline.

// header is the first line of a trace file.
type header struct {
	Version int     `json:"version"`
	Ranks   int     `json:"ranks"`
	Runtime float64 `json:"runtime"`
}

// rankLine is one rank's serialized ops.
type rankLine struct {
	Rank int  `json:"rank"`
	Node int  `json:"node"`
	Ops  []Op `json:"ops"`
}

// currentVersion is bumped on incompatible format changes.
const currentVersion = 1

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Version: currentVersion, Ranks: len(t.Ranks), Runtime: t.Runtime}); err != nil {
		return err
	}
	for _, r := range t.Ranks {
		if err := enc.Encode(rankLine{Rank: r.Rank, Node: r.Node, Ops: r.Ops}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if h.Version != currentVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", h.Version)
	}
	if h.Ranks < 0 || h.Ranks > 1<<20 {
		return nil, fmt.Errorf("trace: implausible rank count %d", h.Ranks)
	}
	t := &Trace{Runtime: h.Runtime, Ranks: make([]*RankTrace, h.Ranks)}
	for i := 0; i < h.Ranks; i++ {
		var line rankLine
		if err := dec.Decode(&line); err != nil {
			return nil, fmt.Errorf("trace: rank line %d: %w", i, err)
		}
		if line.Rank < 0 || line.Rank >= h.Ranks {
			return nil, fmt.Errorf("trace: rank %d out of range", line.Rank)
		}
		if t.Ranks[line.Rank] != nil {
			return nil, fmt.Errorf("trace: duplicate rank %d", line.Rank)
		}
		t.Ranks[line.Rank] = &RankTrace{Rank: line.Rank, Node: line.Node, Ops: line.Ops}
	}
	for i, r := range t.Ranks {
		if r == nil {
			return nil, fmt.Errorf("trace: missing rank %d", i)
		}
	}
	return t, nil
}

// Summary aggregates a trace for human inspection.
type Summary struct {
	Ranks    int
	Runtime  float64
	Ops      int
	Compute  float64 // total compute seconds across ranks
	Copies   float64 // total copy seconds
	Messages int
	Bytes    float64
}

// Summarize computes the aggregate view.
func (t *Trace) Summarize() Summary {
	s := Summary{Ranks: len(t.Ranks), Runtime: t.Runtime}
	for _, r := range t.Ranks {
		s.Ops += len(r.Ops)
		for _, op := range r.Ops {
			switch op.Kind {
			case OpCompute:
				s.Compute += op.Dur
			case OpCopy:
				s.Copies += op.Dur
			case OpSend:
				s.Messages++
				s.Bytes += op.Bytes
			}
		}
	}
	return s
}
