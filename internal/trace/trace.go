// Package trace records Extrae-style execution traces of a simulated run:
// per-rank sequences of compute intervals, host<->device copies, and
// point-to-point messages (collectives appear as the p2p pattern their
// algorithm generates, exactly as a real MPI trace would show them).
//
// Traces are the input to the scalability methodology of Sec. III-B.4
// (Rosas et al.): internal/dimemas replays them under modified conditions
// (ideal network, ideal load balance) to attribute parallel inefficiency.
package trace

// OpKind classifies one trace operation.
type OpKind int

const (
	// OpCompute is local work (CPU or GPU kernel time).
	OpCompute OpKind = iota
	// OpCopy is a host<->device transfer; like compute it is local time,
	// but it is not rebalanced by the ideal-load-balance scenario because
	// it is data-movement, not work.
	OpCopy
	// OpSend transmits Bytes to Peer with Tag.
	OpSend
	// OpRecv blocks for a message from Peer with Tag.
	OpRecv
	// OpPhase marks an iteration boundary; the PARAVER-style chopping of
	// Sec. III-B.4 groups ops between markers into phases.
	OpPhase
)

// Op is one recorded operation.
type Op struct {
	Kind  OpKind
	Dur   float64 // compute/copy duration
	Peer  int     // send/recv partner rank
	Bytes float64 // send payload
	Tag   int     // send/recv matching tag
	Start float64 // observed start time
	End   float64 // observed end time
}

// RankTrace is the op sequence of one rank.
type RankTrace struct {
	Rank int
	Node int // network node hosting the rank
	Ops  []Op
}

// Trace is a whole-application trace.
type Trace struct {
	Ranks   []*RankTrace
	Runtime float64 // observed wall time of the traced run
}

// Tracer records a run. It implements the mpi recorder interface, and the
// cluster run context feeds it compute/copy/phase records.
type Tracer struct {
	T Trace
}

// New creates a tracer for n ranks placed on the given nodes.
func New(rankNode []int) *Tracer {
	tr := &Tracer{}
	tr.T.Ranks = make([]*RankTrace, len(rankNode))
	for i, node := range rankNode {
		tr.T.Ranks[i] = &RankTrace{Rank: i, Node: node}
	}
	return tr
}

// RecordSend logs a point-to-point send (mpi recorder interface).
func (tr *Tracer) RecordSend(rank, peer, tag int, bytes, start, end float64) {
	r := tr.T.Ranks[rank]
	r.Ops = append(r.Ops, Op{Kind: OpSend, Peer: peer, Tag: tag, Bytes: bytes, Start: start, End: end})
}

// RecordRecv logs a point-to-point receive completion.
func (tr *Tracer) RecordRecv(rank, peer, tag int, start, end float64) {
	r := tr.T.Ranks[rank]
	r.Ops = append(r.Ops, Op{Kind: OpRecv, Peer: peer, Tag: tag, Start: start, End: end})
}

// RecordCompute logs local work on a rank.
func (tr *Tracer) RecordCompute(rank int, dur, start float64) {
	if dur <= 0 {
		return
	}
	r := tr.T.Ranks[rank]
	r.Ops = append(r.Ops, Op{Kind: OpCompute, Dur: dur, Start: start, End: start + dur})
}

// RecordCopy logs a host<->device transfer on a rank.
func (tr *Tracer) RecordCopy(rank int, dur, start float64) {
	if dur <= 0 {
		return
	}
	r := tr.T.Ranks[rank]
	r.Ops = append(r.Ops, Op{Kind: OpCopy, Dur: dur, Start: start, End: start + dur})
}

// RecordPhase logs an iteration boundary on a rank.
func (tr *Tracer) RecordPhase(rank int, at float64) {
	r := tr.T.Ranks[rank]
	r.Ops = append(r.Ops, Op{Kind: OpPhase, Start: at, End: at})
}

// Finish stamps the observed runtime.
func (tr *Tracer) Finish(runtime float64) { tr.T.Runtime = runtime }

// NodeCount returns one past the highest node id hosting a rank — the
// number of distinct process tracks a viewer needs, and the first free
// process id for synthetic tracks (the exporter's critical-path lane).
func (t *Trace) NodeCount() int {
	max := -1
	for _, r := range t.Ranks {
		if r.Node > max {
			max = r.Node
		}
	}
	return max + 1
}

// ComputeSeconds returns each rank's total compute (+copy) time, the C_i
// of the efficiency decomposition.
func (t *Trace) ComputeSeconds() []float64 {
	out := make([]float64, len(t.Ranks))
	for i, r := range t.Ranks {
		for _, op := range r.Ops {
			if op.Kind == OpCompute || op.Kind == OpCopy {
				out[i] += op.Dur
			}
		}
	}
	return out
}

// MessageBytes returns the total bytes sent across all ranks.
func (t *Trace) MessageBytes() float64 {
	var b float64
	for _, r := range t.Ranks {
		for _, op := range r.Ops {
			if op.Kind == OpSend {
				b += op.Bytes
			}
		}
	}
	return b
}

// Phases returns, for every rank, the per-phase compute+copy seconds.
// Ranks must carry the same number of phase markers (they mark iteration
// boundaries, which are collective by construction). The slice has one
// entry per phase; each entry has one value per rank.
func (t *Trace) Phases() [][]float64 {
	nRanks := len(t.Ranks)
	var phases [][]float64
	cur := make([]float64, nRanks)
	maxPhases := 0
	perRank := make([][]float64, nRanks)
	for i, r := range t.Ranks {
		for _, op := range r.Ops {
			switch op.Kind {
			case OpCompute, OpCopy:
				cur[i] += op.Dur
			case OpPhase:
				perRank[i] = append(perRank[i], cur[i])
				cur[i] = 0
			}
		}
		perRank[i] = append(perRank[i], cur[i]) // trailing partial phase
		if len(perRank[i]) > maxPhases {
			maxPhases = len(perRank[i])
		}
	}
	for ph := 0; ph < maxPhases; ph++ {
		row := make([]float64, nRanks)
		for i := range row {
			if ph < len(perRank[i]) {
				row[i] = perRank[i][ph]
			}
		}
		phases = append(phases, row)
	}
	return phases
}
