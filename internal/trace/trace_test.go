package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordAndAggregate(t *testing.T) {
	tr := New([]int{0, 0, 1})
	tr.RecordCompute(0, 1.5, 0)
	tr.RecordCopy(0, 0.5, 1.5)
	tr.RecordCompute(1, 2.0, 0)
	tr.RecordSend(0, 2, 7, 1000, 2.0, 2.1)
	tr.RecordRecv(2, 0, 7, 0, 2.2)
	tr.Finish(2.2)

	comp := tr.T.ComputeSeconds()
	if math.Abs(comp[0]-2.0) > 1e-12 || math.Abs(comp[1]-2.0) > 1e-12 || comp[2] != 0 {
		t.Fatalf("compute seconds %v", comp)
	}
	if tr.T.MessageBytes() != 1000 {
		t.Fatalf("message bytes %v", tr.T.MessageBytes())
	}
	if tr.T.Runtime != 2.2 {
		t.Fatal("runtime not stamped")
	}
	if tr.T.Ranks[0].Node != 0 || tr.T.Ranks[2].Node != 1 {
		t.Fatal("rank-node mapping lost")
	}
}

func TestZeroDurationOpsDropped(t *testing.T) {
	tr := New([]int{0})
	tr.RecordCompute(0, 0, 1)
	tr.RecordCopy(0, -1, 1)
	if len(tr.T.Ranks[0].Ops) != 0 {
		t.Fatal("zero/negative durations should not be recorded")
	}
}

func TestPhases(t *testing.T) {
	tr := New([]int{0, 1})
	for it := 0; it < 3; it++ {
		tr.RecordCompute(0, 1, float64(it))
		tr.RecordCompute(1, 2, float64(it))
		tr.RecordPhase(0, float64(it)+1)
		tr.RecordPhase(1, float64(it)+1)
	}
	ph := tr.T.Phases()
	if len(ph) != 4 { // 3 marked phases + empty tail
		t.Fatalf("phases = %d", len(ph))
	}
	for i := 0; i < 3; i++ {
		if ph[i][0] != 1 || ph[i][1] != 2 {
			t.Fatalf("phase %d = %v", i, ph[i])
		}
	}
}

// Property: total compute equals the sum over phases for any op sequence.
func TestPhaseConservationProperty(t *testing.T) {
	f := func(durRaw []uint8) bool {
		tr := New([]int{0})
		total := 0.0
		for i, d := range durRaw {
			dur := float64(d)/10 + 0.1
			tr.RecordCompute(0, dur, 0)
			total += dur
			if i%3 == 2 {
				tr.RecordPhase(0, 0)
			}
		}
		sum := 0.0
		for _, ph := range tr.T.Phases() {
			sum += ph[0]
		}
		return math.Abs(sum-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := New([]int{0, 0, 1})
	tr.RecordCompute(0, 1.5, 0)
	tr.RecordSend(0, 2, 7, 1000, 1.5, 1.6)
	tr.RecordRecv(2, 0, 7, 0, 1.7)
	tr.RecordPhase(1, 2)
	tr.RecordCopy(1, 0.25, 0)
	tr.Finish(2.5)

	var buf bytes.Buffer
	if err := tr.T.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Runtime != 2.5 || len(got.Ranks) != 3 {
		t.Fatalf("header lost: %+v", got)
	}
	for i, r := range got.Ranks {
		orig := tr.T.Ranks[i]
		if r.Node != orig.Node || len(r.Ops) != len(orig.Ops) {
			t.Fatalf("rank %d mismatch", i)
		}
		for j, op := range r.Ops {
			if op != orig.Ops[j] {
				t.Fatalf("rank %d op %d: %+v vs %+v", i, j, op, orig.Ops[j])
			}
		}
	}
	// Summaries agree.
	a, b := tr.T.Summarize(), got.Summarize()
	if a != b {
		t.Fatalf("summaries differ: %+v vs %+v", a, b)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewBufferString(`{"version":99,"ranks":1,"runtime":1}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := Read(bytes.NewBufferString(`{"version":1,"ranks":2,"runtime":1}` + "\n" +
		`{"rank":0,"node":0,"ops":[]}` + "\n" + `{"rank":0,"node":0,"ops":[]}`)); err == nil {
		t.Fatal("duplicate rank accepted")
	}
}

func TestSummarize(t *testing.T) {
	tr := New([]int{0, 1})
	tr.RecordCompute(0, 2, 0)
	tr.RecordCopy(0, 1, 2)
	tr.RecordSend(0, 1, 1, 500, 3, 3.1)
	tr.RecordRecv(1, 0, 1, 0, 3.2)
	tr.Finish(3.2)
	s := tr.T.Summarize()
	if s.Compute != 2 || s.Copies != 1 || s.Messages != 1 || s.Bytes != 500 || s.Ops != 4 {
		t.Fatalf("summary %+v", s)
	}
}

func TestTimelineRenders(t *testing.T) {
	tr := New([]int{0, 1})
	tr.RecordCompute(0, 0.6, 0)
	tr.RecordSend(0, 1, 1, 100, 0.6, 0.7)
	tr.RecordCopy(1, 0.2, 0)
	tr.RecordRecv(1, 0, 1, 0.2, 0.7)
	tr.Finish(1.0)
	out := tr.T.Timeline(20)
	for _, want := range []string{"rank   0", "rank   1", "#", "=", ".", "utilization"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// Empty trace handled.
	if !strings.Contains((&Trace{}).Timeline(20), "empty") {
		t.Fatal("empty trace should say so")
	}
	// Tiny width clamps up rather than panicking.
	if (&Trace{Runtime: 1, Ranks: []*RankTrace{{}}}).Timeline(1) == "" {
		t.Fatal("clamped width broke rendering")
	}
}
