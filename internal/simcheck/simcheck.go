// Package simcheck is the simulator's physical-invariant validation
// layer. The real testbed pushes back when a model is wrong — a switch
// cannot deliver bytes nobody sent, a port cannot be busier than the run
// is long — but the simulator has no physics of its own, so a bug in a
// collective schedule or a port-queueing path silently corrupts every
// downstream figure. simcheck restores the push-back: it audits finished
// simulations against conservation laws (flow balance at every port,
// send/receive matching in every communicator) and closed-form
// alpha-beta cost models for every collective algorithm.
//
// The audit is read-only and runs after the simulation completes, so
// enabling it never changes a result byte — a property locked in by
// regression tests in internal/runner and internal/experiments. The
// run-plane (internal/runner) audits every memoized scenario once per
// fingerprint when checking is enabled, and cmd/experiments -check /
// cmd/replay -check expose it on the command line.
package simcheck

import (
	"fmt"
	"strings"

	"clustersoc/internal/cluster"
)

// relTol is the relative slack allowed on floating-point conservation
// comparisons: sums accumulated in different orders may disagree in the
// last bits, never by more.
const relTol = 1e-9

// Violation is one broken invariant: the rule that failed and a
// human-readable diagnostic naming the offending entity (node, rank,
// tag, ...).
type Violation struct {
	Rule   string
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Error folds violations into a single error, or nil when the audit
// passed.
func Error(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	lines := make([]string, len(vs))
	for i, v := range vs {
		lines[i] = "  " + v.String()
	}
	return fmt.Errorf("simcheck: %d invariant violation(s):\n%s", len(vs), strings.Join(lines, "\n"))
}

// approxEqual reports a ~ b within relative tolerance (and a small absolute
// floor for values near zero).
func approxEqual(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > scale {
		scale = b
	}
	return diff <= relTol*scale+1e-6
}

// AuditCluster validates a finished cluster run against its conservation
// laws:
//
//   - flow conservation at the switch: total bytes transmitted equals
//     total bytes received equals the fabric counter, and everything the
//     communicators sent (plus file-server reads) is accounted for on a
//     TX port or the intra-node path;
//   - port utilization: no TX, RX, or intra-node path was busy for
//     longer than the run's makespan;
//   - schedule hygiene in every communicator: send and receive counts
//     balance, inboxes are empty, no receiver is left suspended, the
//     collective tag sequence stayed in lockstep, and every declared
//     receive size matched its sender (collected under EnableChecking);
//   - engine hygiene: no negative or NaN delays were clamped.
//
// The returned slice is empty when every invariant holds; its order is
// deterministic.
func AuditCluster(cl *cluster.Cluster, res cluster.Result) []Violation {
	var vs []Violation
	add := func(rule, format string, args ...any) {
		vs = append(vs, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}

	nw := cl.Net
	var tx, rx, loop float64
	for i := 0; i < nw.Nodes(); i++ {
		tx += nw.BytesSent(i)
		rx += nw.BytesReceived(i)
		loop += nw.IntraNodeBytes(i)
	}
	if !approxEqual(tx, rx) {
		add("flow-conservation", "nodes transmitted %g B over the wire but received %g B", tx, rx)
	}
	if !approxEqual(tx, nw.FabricBytes()) {
		add("flow-conservation", "TX ports carried %g B but the fabric counter says %g B", tx, nw.FabricBytes())
	}

	for i := 0; i < nw.Nodes(); i++ {
		for _, p := range []struct {
			kind string
			busy float64
		}{
			{"TX", nw.TXBusy(i)},
			{"RX", nw.RXBusy(i)},
			{"intra-node", nw.LoopBusy(i)},
		} {
			if p.busy > res.Runtime*(1+relTol)+1e-9 {
				add("port-utilization", "node %d %s path busy for %g s of a %g s run", i, p.kind, p.busy, res.Runtime)
			}
		}
	}

	var commSent, retrans float64
	for ci, c := range cl.Comms() {
		for _, d := range c.Audit() {
			add("mpi-schedule", "comm %d: %s", ci, d)
		}
		for r := 0; r < c.Size(); r++ {
			commSent += c.SentBytes(r)
			retrans += c.RetransmittedBytes(r)
		}
	}
	served := 0.0
	if cl.Cfg.FileServer {
		// The file server holds the last switch port and only ever sends.
		served = nw.BytesSent(cl.Cfg.Nodes)
	}
	// Retransmitted payloads cross the wire a second time: the fault
	// plane's loss model charges them to the ports but not to SentBytes,
	// so they enter the balance on the send side explicitly.
	if !approxEqual(commSent+served+retrans, tx+loop) {
		add("flow-conservation",
			"communicators sent %g B (+%g B retransmitted) and the file server %g B, but the network carried %g B (wire) + %g B (intra-node)",
			commSent, retrans, served, tx, loop)
	}
	if retrans > 0 && !cl.Cfg.Faults.LosesMessages() {
		add("fault-hygiene", "%g B were retransmitted but the fault plan injects no message loss", retrans)
	}

	if neg, nan := cl.Eng.ClampedDelays(); neg+nan > 0 {
		add("engine-hygiene", "%d negative and %d NaN event delays were clamped to zero — a model emitted invalid delays", neg, nan)
	}
	return vs
}
