package simcheck_test

import (
	"strings"
	"testing"

	"clustersoc/internal/cluster"
	"clustersoc/internal/network"
	"clustersoc/internal/simcheck"
	"clustersoc/internal/soc"
	"clustersoc/internal/units"
)

// cpuCluster builds a small checked CPU-only cluster for audit tests.
func cpuCluster(nodes, ranksPerNode int, prof network.Profile) *cluster.Cluster {
	cfg := cluster.Config{
		Name:         "audit-test",
		Nodes:        nodes,
		NodeType:     soc.JetsonTX1(),
		Network:      prof,
		RanksPerNode: ranksPerNode,
	}
	cl := cluster.New(cfg)
	cl.EnableChecking()
	return cl
}

// A balanced run — collectives, point-to-point, compute — audits clean.
func TestAuditClusterCleanRun(t *testing.T) {
	cl := cpuCluster(4, 1, network.TenGigE)
	res := cl.Run(func(ctx *cluster.Context) {
		ctx.Compute(soc.CPUWork{Instr: 2e6, Flops: 1e6, Bytes: 1e5})
		ctx.Allreduce(100 * units.KB)
		ctx.Alltoall(10 * units.KB)
		if ctx.Rank == 0 {
			ctx.Send(1, 7, 5000)
		}
		if ctx.Rank == 1 {
			ctx.Recv(0, 7)
		}
		ctx.Bcast(2, 1*units.MB)
	})
	if vs := simcheck.AuditCluster(cl, res); len(vs) != 0 {
		for _, v := range vs {
			t.Error(v)
		}
	}
}

// Multi-rank nodes route intra-node traffic over the memory path; the
// conservation identity must account for both planes.
func TestAuditClusterIntraNodeTraffic(t *testing.T) {
	cl := cpuCluster(2, 2, network.GigE)
	res := cl.Run(func(ctx *cluster.Context) {
		ctx.Allreduce(64 * units.KB) // mixes wire and shared-memory hops
		ctx.Barrier()
	})
	if vs := simcheck.AuditCluster(cl, res); len(vs) != 0 {
		for _, v := range vs {
			t.Error(v)
		}
	}
}

// A schedule that loses a message must fail the audit with the mpi
// diagnostics attached.
func TestAuditClusterFlagsLostMessage(t *testing.T) {
	cl := cpuCluster(2, 1, network.TenGigE)
	res := cl.Run(func(ctx *cluster.Context) {
		if ctx.Rank == 0 {
			ctx.Send(1, 3, 1000) // nobody receives this
		}
	})
	vs := simcheck.AuditCluster(cl, res)
	if len(vs) == 0 {
		t.Fatal("lost message passed the audit")
	}
	err := simcheck.Error(vs)
	if !strings.Contains(err.Error(), "mpi-schedule") || !strings.Contains(err.Error(), "tag 3") {
		t.Fatalf("diagnostics missing rule/tag context: %v", err)
	}
}

// Error folds nothing into nil.
func TestErrorNilOnClean(t *testing.T) {
	if err := simcheck.Error(nil); err != nil {
		t.Fatalf("Error(nil) = %v", err)
	}
}

// An asymmetric Sendrecv — the bug class the Sendrecv fix targets — is
// caught end-to-end through the cluster audit.
func TestAuditClusterFlagsSendrecvMismatch(t *testing.T) {
	cl := cpuCluster(2, 1, network.TenGigE)
	res := cl.Run(func(ctx *cluster.Context) {
		peer := 1 - ctx.Rank
		send := 1000.0
		if ctx.Rank == 1 {
			send = 3000 // rank 0 declared 1000 below
		}
		ctx.Sendrecv(peer, peer, 5, send, 1000)
	})
	err := simcheck.Error(simcheck.AuditCluster(cl, res))
	if err == nil || !strings.Contains(err.Error(), "expected 1000 bytes") {
		t.Fatalf("size mismatch not reported: %v", err)
	}
}
