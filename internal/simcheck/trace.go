package simcheck

import (
	"fmt"
	"sort"

	"clustersoc/internal/trace"
)

// AuditTrace validates a recorded execution trace against the invariants
// any real Extrae capture would satisfy:
//
//   - every operation has Start <= End, starts at or after time zero, and
//     ends at or before the recorded runtime;
//   - each rank's operations appear in non-decreasing start order (ranks
//     are single-threaded blocking processes);
//   - point-to-point traffic balances: for every (sender, receiver, tag)
//     triple, the number of recorded sends equals the number of recorded
//     receives.
//
// cmd/replay -check runs this before re-timing a trace, so a corrupt or
// hand-edited input fails loudly instead of replaying into nonsense.
func AuditTrace(t *trace.Trace) []Violation {
	var vs []Violation
	add := func(rule, format string, args ...any) {
		vs = append(vs, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}

	type flow struct{ src, dst, tag int }
	sends := map[flow]int{}
	recvs := map[flow]int{}

	for _, r := range t.Ranks {
		prev := 0.0
		for i, op := range r.Ops {
			if op.Start > op.End {
				add("trace-timing", "rank %d op %d starts at %g after it ends at %g", r.Rank, i, op.Start, op.End)
			}
			if op.Start < 0 {
				add("trace-timing", "rank %d op %d starts at %g, before the run began", r.Rank, i, op.Start)
			}
			if op.End > t.Runtime*(1+relTol)+1e-9 {
				add("trace-timing", "rank %d op %d ends at %g, after the recorded runtime %g", r.Rank, i, op.End, t.Runtime)
			}
			if op.Start < prev {
				add("trace-ordering", "rank %d op %d starts at %g, before its predecessor's start %g", r.Rank, i, op.Start, prev)
			}
			prev = op.Start
			switch op.Kind {
			case trace.OpSend:
				sends[flow{r.Rank, op.Peer, op.Tag}]++
			case trace.OpRecv:
				recvs[flow{op.Peer, r.Rank, op.Tag}]++
			}
		}
	}

	flows := make(map[flow]bool, len(sends)+len(recvs))
	for f := range sends {
		flows[f] = true
	}
	for f := range recvs {
		flows[f] = true
	}
	ordered := make([]flow, 0, len(flows))
	for f := range flows {
		ordered = append(ordered, f)
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.tag < b.tag
	})
	for _, f := range ordered {
		if s, r := sends[f], recvs[f]; s != r {
			add("trace-matching", "rank %d recorded %d send(s) to rank %d with tag %d but %d receive(s) matched",
				f.src, s, f.dst, f.tag, r)
		}
	}
	return vs
}
