package simcheck_test

import (
	"testing"

	"clustersoc/internal/network"
	"clustersoc/internal/simcheck"
)

// bandNs spans powers of two (exact algorithms) and odd sizes (fallback
// compositions); bandSizes spans both sides of the 256 KiB broadcast and
// 512 KiB allreduce thresholds.
var (
	bandNs    = []int{2, 3, 4, 5, 7, 8, 16}
	bandSizes = []float64{1024, 64 * 1024, 1 << 20, 4 << 20}
	bandProfs = []network.Profile{network.GigE, network.TenGigE}
)

// TestCollectiveDurationsInsideAnalyticBands is the alpha-beta
// cross-check matrix: every collective algorithm, at every communicator
// size, payload regime, and NIC profile, must complete inside its
// closed-form cost window.
func TestCollectiveDurationsInsideAnalyticBands(t *testing.T) {
	for _, prof := range bandProfs {
		for _, op := range simcheck.Ops {
			for _, n := range bandNs {
				for _, bytes := range bandSizes {
					band := simcheck.CollectiveBand(op, n, bytes, prof)
					if band.Lower > band.Upper {
						t.Fatalf("%s n=%d %gB %s: inverted band [%g, %g]",
							op, n, bytes, prof.Name, band.Lower, band.Upper)
					}
					got := simcheck.MeasureCollective(op, n, bytes, prof)
					if got <= 0 {
						t.Fatalf("%s n=%d %gB %s: makespan %g, want > 0", op, n, bytes, prof.Name, got)
					}
					if !band.Contains(got) {
						t.Errorf("%s n=%d %gB %s: took %gs, outside [%g, %g]",
							op, n, bytes, prof.Name, got, band.Lower, band.Upper)
					}
				}
			}
		}
	}
}

// The trivial communicator costs nothing, and its band says so.
func TestCollectiveBandSingleRank(t *testing.T) {
	for _, op := range simcheck.Ops {
		band := simcheck.CollectiveBand(op, 1, 1<<20, network.GigE)
		if band.Lower != 0 || band.Upper != 0 {
			t.Fatalf("%s n=1: band [%g, %g], want [0, 0]", op, band.Lower, band.Upper)
		}
		if got := simcheck.MeasureCollective(op, 1, 1<<20, network.GigE); got != 0 {
			t.Fatalf("%s n=1: makespan %g, want 0", op, got)
		}
	}
}

// AuditCollectives is the same matrix packaged as an audit: on a correct
// simulator it returns nothing.
func TestAuditCollectivesClean(t *testing.T) {
	if vs := simcheck.AuditCollectives(); len(vs) != 0 {
		for _, v := range vs {
			t.Error(v)
		}
	}
}

// Metamorphic property: the ideal network lower-bounds both real NIC
// profiles for every collective, and 10 GbE never loses to 1 GbE.
func TestIdealNetworkLowerBoundsCollectives(t *testing.T) {
	for _, op := range simcheck.Ops {
		for _, n := range []int{2, 5, 8} {
			for _, bytes := range []float64{8 * 1024, 1 << 20} {
				ideal := simcheck.MeasureCollective(op, n, bytes, network.Ideal)
				ten := simcheck.MeasureCollective(op, n, bytes, network.TenGigE)
				gig := simcheck.MeasureCollective(op, n, bytes, network.GigE)
				if ideal > ten || ideal > gig {
					t.Errorf("%s n=%d %gB: ideal %g exceeds a real NIC (10GbE %g, 1GbE %g)",
						op, n, bytes, ideal, ten, gig)
				}
				if ten > gig {
					t.Errorf("%s n=%d %gB: 10GbE (%g) slower than 1GbE (%g)", op, n, bytes, ten, gig)
				}
			}
		}
	}
}
