package simcheck_test

import (
	"testing"

	"clustersoc/internal/cluster"
	"clustersoc/internal/network"
	"clustersoc/internal/runner"
	"clustersoc/internal/workloads"
)

// scenario builds one checked-executable scenario at a small scale.
func scenario(workload string, nodes int, prof network.Profile) runner.Scenario {
	cfg := cluster.TX1Cluster(nodes, prof)
	w, err := workloads.ByName(workload)
	if err != nil {
		panic(err)
	}
	cfg.RanksPerNode = w.RanksPerNode()
	if w.GPUAccelerated() {
		cfg.FileServer = true
	}
	return runner.Scenario{Cluster: cfg, Workload: workload, Config: workloads.Config{Scale: 0.02}}
}

func runtimeOf(t *testing.T, s runner.Scenario) float64 {
	t.Helper()
	res, err := runner.ExecuteChecked(s)
	if err != nil {
		t.Fatalf("%s on %s failed its audit: %v", s.Workload, s.Cluster.Name, err)
	}
	return res.Runtime
}

// Metamorphic property: raising network bandwidth (and lowering latency)
// never slows a scenario down — 10 GbE beats 1 GbE, and the ideal
// network lower-bounds both. Every run is audited along the way.
func TestMoreBandwidthNeverSlows(t *testing.T) {
	for _, wl := range []string{"hpl", "cg", "jacobi", "ft"} {
		for _, nodes := range []int{2, 4, 8} {
			gig := runtimeOf(t, scenario(wl, nodes, network.GigE))
			ten := runtimeOf(t, scenario(wl, nodes, network.TenGigE))
			ideal := runtimeOf(t, scenario(wl, nodes, network.Ideal))
			if ten > gig {
				t.Errorf("%s @%d nodes: 10GbE (%g) slower than 1GbE (%g)", wl, nodes, ten, gig)
			}
			if ideal > ten || ideal > gig {
				t.Errorf("%s @%d nodes: ideal network (%g) not a lower bound (10GbE %g, 1GbE %g)",
					wl, nodes, ideal, ten, gig)
			}
		}
	}
}

// Metamorphic property: strong scaling divides a fixed problem — adding
// nodes never increases any rank's share of the compute. (Runtime may
// regress when communication dominates; per-rank compute must not.)
func TestMoreNodesNeverIncreasePerRankCompute(t *testing.T) {
	for _, wl := range []string{"hpl", "cg", "ft"} {
		prev := 0.0
		for i, nodes := range []int{2, 4, 8} {
			res, err := runner.ExecuteChecked(scenario(wl, nodes, network.TenGigE))
			if err != nil {
				t.Fatal(err)
			}
			perRank := (res.CPUBusySeconds + res.GPUBusySeconds) / float64(res.Ranks)
			if i > 0 && perRank > prev*(1+1e-9) {
				t.Errorf("%s: per-rank busy time grew from %g (at %d ranks' predecessor) to %g at %d nodes",
					wl, prev, nodes/2, perRank, nodes)
			}
			prev = perRank
		}
	}
}
