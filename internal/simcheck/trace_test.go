package simcheck_test

import (
	"strings"
	"testing"

	"clustersoc/internal/network"
	"clustersoc/internal/runner"
	"clustersoc/internal/simcheck"
	"clustersoc/internal/trace"
)

// A trace recorded from a real run audits clean.
func TestAuditTraceFromRealRun(t *testing.T) {
	s := scenario("cg", 4, network.TenGigE)
	s.Cluster.Traced = true
	res, err := runner.Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("traced run produced no trace")
	}
	if vs := simcheck.AuditTrace(res.Trace); len(vs) != 0 {
		for _, v := range vs {
			t.Error(v)
		}
	}
}

func handTrace() *trace.Trace {
	tr := trace.New([]int{0, 1})
	tr.RecordCompute(0, 1.0, 0)
	tr.RecordSend(0, 1, 5, 1000, 1.0, 1.2)
	tr.RecordRecv(1, 0, 5, 0, 1.3)
	tr.RecordCompute(1, 0.5, 1.3)
	tr.Finish(2.0)
	return &tr.T
}

func TestAuditTraceCleanHandTrace(t *testing.T) {
	if vs := simcheck.AuditTrace(handTrace()); len(vs) != 0 {
		t.Fatalf("clean trace audited dirty: %v", vs)
	}
}

func TestAuditTraceFlagsUnmatchedSend(t *testing.T) {
	tr := handTrace()
	tr.Ranks[1].Ops = tr.Ranks[1].Ops[1:] // drop the receive
	err := simcheck.Error(simcheck.AuditTrace(tr))
	if err == nil || !strings.Contains(err.Error(), "1 send(s) to rank 1 with tag 5 but 0 receive(s)") {
		t.Fatalf("unmatched send not reported: %v", err)
	}
}

func TestAuditTraceFlagsTimingCorruption(t *testing.T) {
	tr := handTrace()
	tr.Ranks[0].Ops[1].End = 0.5 // send ends before it starts
	tr.Ranks[1].Ops[1].Start = -1
	tr.Runtime = 1.0 // now rank 1's recv ends past the runtime
	vs := simcheck.AuditTrace(tr)
	rules := map[string]bool{}
	for _, v := range vs {
		rules[v.Rule] = true
	}
	for _, want := range []string{"trace-timing", "trace-ordering"} {
		if !rules[want] {
			t.Errorf("corrupted trace missing a %s violation: %v", want, vs)
		}
	}
}
