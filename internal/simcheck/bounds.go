package simcheck

import (
	"fmt"
	"math/bits"

	"clustersoc/internal/mpi"
	"clustersoc/internal/network"
	"clustersoc/internal/sim"
)

// CollectiveOp names one collective algorithm of internal/mpi.
type CollectiveOp string

const (
	Bcast     CollectiveOp = "bcast"
	Reduce    CollectiveOp = "reduce"
	Allreduce CollectiveOp = "allreduce"
	Allgather CollectiveOp = "allgather"
	Alltoall  CollectiveOp = "alltoall"
	Gather    CollectiveOp = "gather"
)

// Ops lists every banded collective, in a fixed order.
var Ops = []CollectiveOp{Bcast, Reduce, Allreduce, Allgather, Alltoall, Gather}

// Band is an analytic [Lower, Upper] window (seconds) that a collective's
// simulated makespan must fall inside.
type Band struct {
	Lower, Upper float64
}

// Contains reports whether t falls inside the band, allowing relative
// floating-point slack (several bands are exact: Lower == Upper).
func (b Band) Contains(t float64) bool {
	return t >= b.Lower*(1-relTol)-1e-12 && t <= b.Upper*(1+relTol)+1e-12
}

// ceilLog2 returns ceil(log2 n) for n >= 1 — the round count of the
// binomial and recursive-doubling algorithms.
func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// CollectiveBand returns the alpha-beta cost window for one collective on
// n single-rank nodes of the given NIC profile, mirroring the algorithm
// selection internal/mpi performs (binomial vs van de Geijn broadcast,
// recursive doubling vs Rabenseifner vs reduce+broadcast allreduce).
//
// The bands assume the crossbar model of internal/network: a message of b
// bytes occupies its TX and RX ports for svc(b) = b/Throughput seconds
// and arrives Latency seconds after service completes, fan-out
// serializing at the sender and fan-in at the receiver. With alpha the
// latency, svc the service time, r = ceil(log2 n) and all ranks entering
// at the same instant:
//
//	binomial bcast/reduce   root moves r serialized messages, the deepest
//	                        chain interleaves r services and hops:
//	                        [r*svc + alpha, r*(svc+alpha)]  (exact upper
//	                        for powers of two)
//	van de Geijn bcast      scatter (~svc(b)) + ring allgather (~svc(b));
//	                        a leaf receives b bytes through one RX port:
//	                        [svc(b) + alpha, 3*svc(b) + (n+r)*alpha]
//	recursive doubling      r synchronized full-size exchange rounds:
//	                        exactly r*(svc+alpha)
//	Rabenseifner            halving then doubling rounds moving
//	                        2b(1-1/n) per rank: exactly
//	                        2*svc(b)*(1-1/n) + 2r*alpha
//	ring allgather          n-1 synchronized rounds: exactly
//	                        (n-1)*(svc+alpha)
//	pairwise alltoall       n-1 balanced rounds: exactly (n-1)*(svc+alpha)
//	direct gather           n-1 sends serialized at root's RX port:
//	                        exactly (n-1)*svc + alpha
//
// Exact entries still carry a non-trivial window on the lower side where
// the algorithm's synchronization could only be broken by a bug that
// loses traffic (which flow conservation catches first).
func CollectiveBand(op CollectiveOp, n int, bytes float64, prof network.Profile) Band {
	if n <= 1 {
		return Band{0, 0}
	}
	svc := bytes / prof.Throughput
	alpha := prof.Latency
	r := float64(ceilLog2(n))
	rounds := float64(n - 1)
	switch op {
	case Bcast:
		return bcastBand(n, bytes, prof)
	case Reduce:
		return Band{Lower: r*svc + alpha, Upper: r * (svc + alpha)}
	case Allreduce:
		if n&(n-1) != 0 {
			red := CollectiveBand(Reduce, n, bytes, prof)
			bc := bcastBand(n, bytes, prof)
			return Band{Lower: red.Lower + bc.Lower, Upper: red.Upper + bc.Upper}
		}
		if bytes >= mpi.AllreduceLargeThreshold && n > 2 {
			exact := 2*svc*(1-1/float64(n)) + 2*r*alpha
			return Band{Lower: 2*svc*(1-1/float64(n)) + alpha, Upper: exact}
		}
		return Band{Lower: r*svc + alpha, Upper: r * (svc + alpha)}
	case Allgather, Alltoall:
		return Band{Lower: rounds*svc + alpha, Upper: rounds * (svc + alpha)}
	case Gather:
		exact := rounds*svc + alpha
		return Band{Lower: exact, Upper: exact}
	}
	panic(fmt.Sprintf("simcheck: unknown collective %q", op))
}

// bcastBand mirrors Bcast's algorithm selection; Allreduce's non-power-
// of-two fallback composes it with the reduce band.
func bcastBand(n int, bytes float64, prof network.Profile) Band {
	svc := bytes / prof.Throughput
	alpha := prof.Latency
	r := float64(ceilLog2(n))
	if bytes >= mpi.BcastLargeThreshold && n > 2 {
		return Band{
			Lower: svc + alpha,
			Upper: 3*svc + (float64(n)+r)*alpha,
		}
	}
	return Band{Lower: r*svc + alpha, Upper: r * (svc + alpha)}
}

// MeasureCollective simulates one collective in isolation — n ranks, one
// per node, entering the operation at time zero on an otherwise idle
// network — and returns its makespan. This is the harness the band tests
// and AuditCollectives drive.
func MeasureCollective(op CollectiveOp, n int, bytes float64, prof network.Profile) float64 {
	e := sim.NewEngine()
	nw := network.New(e, n, prof)
	rankNode := make([]int, n)
	for i := range rankNode {
		rankNode[i] = i
	}
	c := mpi.NewComm(e, nw, rankNode)
	for rank := 0; rank < n; rank++ {
		rank := rank
		e.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Process) {
			runCollective(c, p, rank, op, bytes)
		})
	}
	return e.Run()
}

func runCollective(c *mpi.Comm, p *sim.Process, rank int, op CollectiveOp, bytes float64) {
	switch op {
	case Bcast:
		c.Bcast(p, rank, 0, bytes)
	case Reduce:
		c.Reduce(p, rank, 0, bytes)
	case Allreduce:
		c.Allreduce(p, rank, bytes)
	case Allgather:
		c.Allgather(p, rank, bytes)
	case Alltoall:
		c.Alltoall(p, rank, bytes)
	case Gather:
		c.Gather(p, rank, 0, bytes)
	default:
		panic(fmt.Sprintf("simcheck: unknown collective %q", op))
	}
}

// auditSizes spans both algorithm regimes: 8 KiB keeps every collective
// on its small-message path, 1 MiB crosses both the broadcast (256 KiB)
// and allreduce (512 KiB) thresholds.
var auditSizes = []float64{8 * 1024, 1 << 20}

// auditNs covers powers of two (where the algorithms are exact) and odd
// communicator sizes (where the fallback compositions kick in).
var auditNs = []int{2, 3, 4, 5, 8}

// AuditCollectives cross-checks every collective algorithm against its
// analytic alpha-beta band over a matrix of communicator sizes, payload
// sizes (both sides of the large-message thresholds), and both NIC
// profiles. An empty result means every simulated makespan fell inside
// its window.
func AuditCollectives() []Violation {
	var vs []Violation
	for _, prof := range []network.Profile{network.GigE, network.TenGigE} {
		for _, op := range Ops {
			for _, n := range auditNs {
				for _, bytes := range auditSizes {
					band := CollectiveBand(op, n, bytes, prof)
					got := MeasureCollective(op, n, bytes, prof)
					if !band.Contains(got) {
						vs = append(vs, Violation{
							Rule: "collective-cost",
							Detail: fmt.Sprintf("%s n=%d %gB over %s took %gs, outside the analytic band [%g, %g]",
								op, n, bytes, prof.Name, got, band.Lower, band.Upper),
						})
					}
				}
			}
		}
	}
	return vs
}
