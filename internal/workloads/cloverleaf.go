package workloads

import (
	"clustersoc/internal/cluster"
	"clustersoc/internal/kernels"
)

// CloverLeaf models the Table I "cloverleaf" benchmark: the compressible
// Euler equations advanced explicitly on a 3840^2 staggered grid. Each
// timestep runs the hydro kernels (the ~130 FLOP/cell cost measured on
// kernels.EulerState.Step), exchanges halos for the conserved field
// arrays, and computes the CFL timestep with an allreduce. Its moderate
// network and DRAM traffic put it in the middle band of Fig. 3: no
// appreciable speedup from 10 GbE.
type CloverLeaf struct {
	N     int // cells per side
	Steps int
}

// NewCloverLeaf returns the paper-sized configuration.
func NewCloverLeaf() *CloverLeaf { return &CloverLeaf{N: 3840, Steps: 500} }

func (c *CloverLeaf) Name() string         { return "cloverleaf" }
func (c *CloverLeaf) GPUAccelerated() bool { return true }
func (c *CloverLeaf) RanksPerNode() int    { return 1 }

// Body returns the per-rank program.
func (c *CloverLeaf) Body(cfg Config) func(*cluster.Context) {
	steps := cfg.scaledIters(c.Steps, 6)
	return func(ctx *cluster.Context) {
		p, rank := ctx.Size(), ctx.Rank
		cellsPerRank := float64(c.N) * float64(c.N) / float64(p)
		flops := kernels.EulerStepFlopsPerCell * cellsPerRank
		// Several field arrays per cell stream each step: low OI.
		k := gpuKernel("clover_hydro", flops, 0.18, 0.30, false)
		imb := imbalance(rank, 0.08)
		k.FLOPs *= imb
		k.Bytes *= imb

		// Halos carry the four conserved fields (and velocities on the
		// staggered mesh, folded into the field count).
		halo := kernels.EulerFieldCount * kernels.HaloBytes2D(c.N)

		for s := 0; s < steps; s++ {
			ctx.Kernel(k)
			ctx.StageOut(2 * halo)
			ctx.Compute(hostDriverWork(2*halo, 14))
			if rank > 0 {
				ctx.Sendrecv(rank-1, rank-1, 400+s, halo, halo)
			}
			if rank < p-1 {
				ctx.Sendrecv(rank+1, rank+1, 400+s, halo, halo)
			}
			ctx.StageIn(2 * halo)
			// Global CFL reduction.
			ctx.Allreduce(8)
			ctx.Phase()
		}
	}
}

func init() { register(NewCloverLeaf()) }
