// Package workloads models the paper's benchmarks (Table I and the NPB
// suite) as per-rank programs against the cluster simulation API. Each
// model's FLOP, byte, halo, and collective schedule follows the real
// algorithm implemented and verified in internal/kernels and internal/nn;
// microarchitectural characteristics (branch entropy, locality, working
// sets) are fixed per workload and documented inline.
package workloads

import (
	"fmt"
	"sort"

	"clustersoc/internal/cluster"
	"clustersoc/internal/cuda"
)

// Config adjusts a workload run.
type Config struct {
	// Scale in (0,1] shrinks the iteration count (and for hpl the matrix
	// order) so tests and benchmarks run quickly; 1 is the paper-sized
	// problem. Zero means 1.
	Scale float64
	// GPUWorkRatio in (0,1] is the fraction of hpl's trailing update run
	// on the GPU (Fig. 7); the rest runs on one CPU core. Zero means 1.
	GPUWorkRatio float64
	// HalfPrecision runs the AI forward passes in FP16 — 2x throughput on
	// the TX1's Tegra Maxwell, a 64x penalty on the desktop GM204 (an
	// extension experiment beyond the paper's FP32 runs).
	HalfPrecision bool
	// WeakScaling grows the problem with the rank count (hpl: N ~ sqrt(P)
	// keeps memory per node constant) — the regime Tibidabo reported its
	// MFLOPS/W under (Sec. II-A), versus the paper's strong-scaling runs.
	WeakScaling bool
}

func (c Config) scale() float64 {
	if c.Scale <= 0 || c.Scale > 1 {
		return 1
	}
	return c.Scale
}

// workRatio normalizes GPUWorkRatio: zero (or out-of-range) means the
// all-GPU split, exactly as the workload bodies interpret it.
func (c Config) workRatio() float64 {
	if c.GPUWorkRatio <= 0 || c.GPUWorkRatio > 1 {
		return 1
	}
	return c.GPUWorkRatio
}

// Key returns the canonical fingerprint of a workload configuration:
// two Configs that produce identical runs produce identical keys, with
// unset fields folded onto their effective defaults (Scale 0 == 1,
// GPUWorkRatio 0 == 1). The run-plane in internal/runner keys its
// result cache on it.
func (c Config) Key() string {
	return fmt.Sprintf("scale=%g;ratio=%g;fp16=%t;weak=%t",
		c.scale(), c.workRatio(), c.HalfPrecision, c.WeakScaling)
}

// scaledIters shrinks an iteration count, keeping at least min.
func (c Config) scaledIters(full, min int) int {
	n := int(float64(full) * c.scale())
	if n < min {
		n = min
	}
	return n
}

// Workload is one benchmark.
type Workload interface {
	// Name is the paper's tag for the benchmark (Table I / NPB).
	Name() string
	// GPUAccelerated distinguishes the CUDA+MPI set from the CPU NPB set.
	GPUAccelerated() bool
	// RanksPerNode is the MPI process density the paper uses: 1 for the
	// GPU codes (one process drives the GPU), 4 for NPB on the TX1.
	RanksPerNode() int
	// Body returns the per-rank program.
	Body(cfg Config) func(ctx *cluster.Context)
}

// imbalance returns a deterministic per-rank compute multiplier in
// [1, 1+amp): the load imbalance each workload exhibits (the LB factor of
// the scalability analysis). Knuth-hash keeps it reproducible and
// independent of rank count.
func imbalance(rank int, amp float64) float64 {
	h := uint32(rank+1) * 2654435761
	return 1 + amp*float64(h%1024)/1024
}

// gpuKernel builds a kernel whose DRAM-level operational intensity (eq. 1)
// is oiDRAM: requested L2 traffic is inflated so that after the hit ratio,
// DRAM sees flops/oiDRAM bytes.
func gpuKernel(name string, flops, oiDRAM, l2hit float64, single bool) cuda.Kernel {
	return cuda.Kernel{
		Name:            name,
		FLOPs:           flops,
		Bytes:           flops / (oiDRAM * (1 - l2hit)),
		L2HitRatio:      l2hit,
		SinglePrecision: single,
	}
}

var registry = map[string]Workload{}

func register(w Workload) { registry[w.Name()] = w }

// ByName returns a registered workload.
func ByName(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return w, nil
}

// GPUWorkloads returns the seven GPGPU-accelerated benchmarks of Table I,
// in the paper's order.
func GPUWorkloads() []Workload {
	return pick("hpl", "jacobi", "cloverleaf", "tealeaf2d", "tealeaf3d", "alexnet", "googlenet")
}

// NPBWorkloads returns the NPB class C suite in the paper's order.
func NPBWorkloads() []Workload {
	return pick("bt", "cg", "ep", "ft", "is", "lu", "mg", "sp")
}

// All returns every registered workload, sorted by name.
func All() []Workload {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return pick(names...)
}

func pick(names ...string) []Workload {
	out := make([]Workload, 0, len(names))
	for _, n := range names {
		w, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, w)
	}
	return out
}
