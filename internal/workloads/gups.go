package workloads

import (
	"clustersoc/internal/cluster"
	"clustersoc/internal/kernels"
	"clustersoc/internal/soc"
)

// GUPS is the HPCC RandomAccess benchmark (the suite the paper's CPU hpl
// and Latency-Bandwidth tests come from) as a cluster workload: each rank
// owns a slice of a giant table, generates random updates, buckets them
// by destination, and exchanges the buckets all-to-all each window — the
// canonical latency-and-network antagonist, and a sharp probe of the
// ThunderX-vs-A57 memory-parallelism gap (Sec. IV-A).
type GUPS struct {
	LogTableBytes int // total table size, log2
	Updates       float64
	Windows       int
}

// NewGUPS returns the standard configuration: a 2 GiB table and 2^31
// updates in 16 exchange windows.
func NewGUPS() *GUPS {
	return &GUPS{LogTableBytes: 31, Updates: float64(int64(1) << 31), Windows: 16}
}

func (g *GUPS) Name() string         { return "gups" }
func (g *GUPS) GPUAccelerated() bool { return false }
func (g *GUPS) RanksPerNode() int    { return 4 }

// Body returns the per-rank program.
func (g *GUPS) Body(cfg Config) func(*cluster.Context) {
	windows := cfg.scaledIters(g.Windows, 4)
	updatesPerWindow := g.Updates * cfg.scale() / float64(windows)
	return func(ctx *cluster.Context) {
		p := ctx.Size()
		perRank := updatesPerWindow / float64(p)
		tableShare := float64(int64(1)<<g.LogTableBytes) / float64(p)
		w := soc.CPUWork{
			Instr: perRank * kernels.GUPSInstrPerUpdate,
			Flops: perRank, // one xor-update credited per update
			// The generator's acceptance branch is data-random.
			Branches:      perRank * kernels.GUPSBranchesPerUpdate,
			BranchEntropy: 0.6,
			MemAccesses:   perRank * kernels.GUPSMemAccPerUpdate,
			// Every table touch misses: no spatial locality at all.
			L1MissRate: 0.5,
			WorkingSet: tableShare,
			Bytes:      perRank * 16, // a read and a write per update
		}
		for win := 0; win < windows; win++ {
			ctx.Compute(w)
			if p > 1 {
				// Updates scatter uniformly: 1/p stay local, the rest
				// travel 8 bytes each.
				ctx.Alltoall(perRank * 8 / float64(p))
			}
			ctx.Phase()
		}
		ctx.Allreduce(8) // checksum verification
	}
}

func init() { register(NewGUPS()) }
