package workloads

import (
	"clustersoc/internal/cluster"
	"clustersoc/internal/kernels"
	"clustersoc/internal/soc"
)

// Jacobi is the Table I "jacobi" benchmark: the CUDA+MPI Poisson solver on
// a rectangle (matrix size 16384^2), decomposed into row strips with halo
// exchanges between neighbours and a periodic residual allreduce. Its
// kernel is the 5-point stencil of kernels.JacobiStep: 6 FLOPs and three
// 8-byte array touches per cell, giving a low DRAM-level operational
// intensity — the workload is memory-roof-limited on both networks
// (Table II) and gains little from 10 GbE (Fig. 1).
type Jacobi struct {
	N     int // grid points per side
	Iters int
}

// NewJacobi returns the paper-sized configuration.
func NewJacobi() *Jacobi { return &Jacobi{N: 16384, Iters: 1000} }

func (j *Jacobi) Name() string         { return "jacobi" }
func (j *Jacobi) GPUAccelerated() bool { return true }
func (j *Jacobi) RanksPerNode() int    { return 1 }

// hostDriverWork is the per-iteration CPU cost of driving the GPU and MPI:
// kernel launches, device synchronizations that fetch reduction results,
// pointer swaps, and halo pack/unpack. launches counts the kernel-launch +
// sync round trips the iteration performs — the host-device
// synchronization cost the paper identifies as the Ser limiter of the
// GPGPU codes (Sec. III-B.4).
func hostDriverWork(haloBytes float64, launches int) soc.CPUWork {
	l := float64(launches)
	return soc.CPUWork{
		Instr:         1.5e6*l + haloBytes/4,
		Branches:      1.5e5 * l,
		BranchEntropy: 0.1,
		MemAccesses:   4e5*l + haloBytes/8,
		L1MissRate:    0.05,
		WorkingSet:    256 * 1024,
		Bytes:         2 * haloBytes,
	}
}

// Body returns the per-rank program.
func (j *Jacobi) Body(cfg Config) func(*cluster.Context) {
	iters := cfg.scaledIters(j.Iters, 8)
	return func(ctx *cluster.Context) {
		p, rank := ctx.Size(), ctx.Rank
		rows := j.N / p
		cells := float64(rows) * float64(j.N)
		flops := kernels.JacobiSweepFlops(rows, j.N) // 6 per cell
		halo := kernels.HaloBytes2D(j.N)
		_ = cells

		// Restorable state: this rank's strip of the grid (one copy —
		// the checkpoint writes the converged-so-far field).
		stateBytes := float64(rows) * float64(j.N) * 8

		// The sweep kernel: DRAM OI ~ 6/24 = 0.25 FLOP/B; the TX1 L2
		// captures some neighbour reuse.
		k := gpuKernel("jacobi_sweep", flops, 0.25, 0.40, false)

		for it := 0; it < iters; it++ {
			ctx.Kernel(k)
			// Halo exchange: D2H, neighbour sendrecv, H2D.
			ctx.StageOut(2 * halo)
			ctx.Compute(hostDriverWork(2*halo, 1))
			if rank > 0 {
				ctx.Sendrecv(rank-1, rank-1, 100+it, halo, halo)
			}
			if rank < p-1 {
				ctx.Sendrecv(rank+1, rank+1, 100+it, halo, halo)
			}
			ctx.StageIn(2 * halo)
			// Convergence check every 10 sweeps: residual allreduce.
			if it%10 == 9 {
				ctx.Allreduce(8)
			}
			ctx.Checkpoint(stateBytes)
			ctx.Phase()
		}
	}
}

func init() { register(NewJacobi()) }
