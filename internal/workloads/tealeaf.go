package workloads

import (
	"clustersoc/internal/cluster"
	"clustersoc/internal/kernels"
)

// TeaLeaf models the Table I tealeaf2d/tealeaf3d benchmarks: the linear
// heat-conduction equation solved implicitly with the conjugate-gradient
// solver of kernels.ConjugateGradient on a 5-point (2D) or 7-point (3D)
// operator. Each CG iteration launches stencil/vector kernels, exchanges
// halos, and runs two scalar allreduces (the dot products) — the
// allreduce-per-iteration pattern that makes tealeaf latency-sensitive,
// and in 3D the large faces make it bandwidth-hungry too, which is why
// tealeaf3d is network-limited on 1 GbE (Table II) and among the biggest
// 10 GbE winners (Fig. 1).
type TeaLeaf struct {
	Tag          string
	NX, NY, NZ   int // NZ = 1 for 2D
	Steps        int
	CGIterations int // inner solver iterations per timestep
}

// NewTeaLeaf2D returns the 2D configuration (4096x4096 cells).
func NewTeaLeaf2D() *TeaLeaf {
	return &TeaLeaf{Tag: "tealeaf2d", NX: 4096, NY: 4096, NZ: 1, Steps: 100, CGIterations: 30}
}

// NewTeaLeaf3D returns the 3D configuration (256^3 cells).
func NewTeaLeaf3D() *TeaLeaf {
	return &TeaLeaf{Tag: "tealeaf3d", NX: 256, NY: 256, NZ: 256, Steps: 50, CGIterations: 40}
}

func (t *TeaLeaf) Name() string         { return t.Tag }
func (t *TeaLeaf) GPUAccelerated() bool { return true }
func (t *TeaLeaf) RanksPerNode() int    { return 1 }

// Body returns the per-rank program: Steps outer timesteps, each running
// CGIterations of the solver on the rank's strip of the domain.
func (t *TeaLeaf) Body(cfg Config) func(*cluster.Context) {
	steps := cfg.scaledIters(t.Steps, 4)
	return func(ctx *cluster.Context) {
		p, rank := ctx.Size(), ctx.Rank
		cellsPerRank := float64(t.NX) * float64(t.NY) * float64(t.NZ) / float64(p)

		// One CG iteration: operator apply (7 or 9 FLOPs/cell), two dots
		// (4 FLOPs/cell), three axpys (6 FLOPs/cell).
		opFlops := 9.0
		haloBytes := kernels.HaloBytes2D(t.NX) // 2D: one row
		oi := 0.22
		if t.NZ > 1 {
			opFlops = 11
			haloBytes = 8 * float64(t.NY) * float64(t.NZ) // 3D: a full face
			oi = 0.18
		}
		cgFlops := (opFlops + 4 + 6) * cellsPerRank
		k := gpuKernel(t.Tag+"_cg", cgFlops, oi, 0.35, false)

		imb := imbalance(rank, t.imbalanceAmp())
		kImb := k
		kImb.FLOPs *= imb
		kImb.Bytes *= imb

		for s := 0; s < steps; s++ {
			for it := 0; it < t.CGIterations; it++ {
				ctx.Kernel(kImb)
				ctx.StageOut(2 * haloBytes)
				ctx.Compute(hostDriverWork(2*haloBytes, 6))
				if rank > 0 {
					ctx.Sendrecv(rank-1, rank-1, 300+it, haloBytes, haloBytes)
				}
				if rank < p-1 {
					ctx.Sendrecv(rank+1, rank+1, 300+it, haloBytes, haloBytes)
				}
				ctx.StageIn(2 * haloBytes)
				// The two CG dot products.
				ctx.Allreduce(8)
				ctx.Allreduce(8)
			}
			ctx.Phase()
		}
	}
}

// imbalanceAmp: the 2D decomposition splits unevenly (the paper's ideal-
// load-balance replay helps tealeaf2d the most among the GPU codes).
func (t *TeaLeaf) imbalanceAmp() float64 {
	if t.NZ == 1 {
		return 0.18
	}
	return 0.06
}

func init() {
	register(NewTeaLeaf2D())
	register(NewTeaLeaf3D())
}
