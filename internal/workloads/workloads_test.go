package workloads

import (
	"math"
	"testing"
	"testing/quick"

	"clustersoc/internal/cluster"
	"clustersoc/internal/network"
)

// runOn executes a workload on an n-node TX1 cluster.
func runOn(t *testing.T, w Workload, n int, prof network.Profile, scale float64) cluster.Result {
	t.Helper()
	cfg := cluster.TX1Cluster(n, prof)
	cfg.RanksPerNode = w.RanksPerNode()
	if w.GPUAccelerated() {
		cfg.FileServer = true
	}
	return cluster.New(cfg).Run(w.Body(Config{Scale: scale}))
}

func TestRegistryComplete(t *testing.T) {
	if got := len(GPUWorkloads()); got != 7 {
		t.Fatalf("GPU workloads = %d, want the paper's 7", got)
	}
	if got := len(NPBWorkloads()); got != 8 {
		t.Fatalf("NPB workloads = %d, want 8", got)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("unknown workload should error")
	}
	for _, w := range All() {
		if w.Name() == "" || w.RanksPerNode() < 1 {
			t.Fatalf("malformed workload %+v", w)
		}
	}
}

// Every workload runs to completion on several cluster sizes, produces
// positive runtime/FLOPs, and is deterministic.
func TestAllWorkloadsRunEverywhere(t *testing.T) {
	for _, w := range All() {
		for _, n := range []int{1, 3, 4} {
			res := runOn(t, w, n, network.TenGigE, 0.02)
			if res.Runtime <= 0 {
				t.Fatalf("%s@%d: no runtime", w.Name(), n)
			}
			if res.FLOPs <= 0 {
				t.Fatalf("%s@%d: no FLOPs credited", w.Name(), n)
			}
			again := runOn(t, w, n, network.TenGigE, 0.02)
			if again.Runtime != res.Runtime || again.EnergyJoules != res.EnergyJoules {
				t.Fatalf("%s@%d: nondeterministic run", w.Name(), n)
			}
		}
	}
}

// GPU workloads must actually use the GPU; NPB must not.
func TestWorkloadKindsUseTheRightEngines(t *testing.T) {
	for _, w := range All() {
		res := runOn(t, w, 2, network.TenGigE, 0.02)
		if w.GPUAccelerated() && res.GPU.Launches == 0 {
			t.Errorf("%s: GPU workload launched no kernels", w.Name())
		}
		if !w.GPUAccelerated() && res.GPU.Launches != 0 {
			t.Errorf("%s: CPU workload touched the GPU", w.Name())
		}
	}
}

// Strong scaling sanity: 4 nodes beat 1 node for every workload.
func TestStrongScalingDirection(t *testing.T) {
	for _, w := range All() {
		one := runOn(t, w, 1, network.TenGigE, 0.02)
		four := runOn(t, w, 4, network.TenGigE, 0.02)
		if four.Runtime >= one.Runtime {
			t.Errorf("%s: no speedup from 1 to 4 nodes (%.3f vs %.3f)", w.Name(), one.Runtime, four.Runtime)
		}
	}
}

// The same problem moves the same total FLOPs regardless of the network.
func TestFlopsNetworkInvariant(t *testing.T) {
	for _, name := range []string{"hpl", "tealeaf3d", "ft"} {
		w, _ := ByName(name)
		a := runOn(t, w, 4, network.GigE, 0.02)
		b := runOn(t, w, 4, network.TenGigE, 0.02)
		if math.Abs(a.FLOPs-b.FLOPs) > 1e-6*a.FLOPs {
			t.Errorf("%s: FLOPs changed with the NIC", name)
		}
	}
}

func TestHPLScaledN(t *testing.T) {
	h := NewHPL()
	full := h.scaledN(Config{Scale: 1})
	small := h.scaledN(Config{Scale: 0.05})
	if full != 20480 {
		t.Fatalf("full N = %d", full)
	}
	if small >= full || small%h.NB != 0 || small < 16*h.NB {
		t.Fatalf("scaled N = %d", small)
	}
}

func TestFig7RatioReducesThroughput(t *testing.T) {
	w, _ := ByName("hpl")
	cfg := cluster.TX1Cluster(2, network.TenGigE)
	cfg.RanksPerNode = 1
	cfg.FileServer = true
	all := cluster.New(cfg).Run(w.Body(Config{Scale: 0.03, GPUWorkRatio: 1}))
	cfg2 := cfg
	half := cluster.New(cfg2).Run(w.Body(Config{Scale: 0.03, GPUWorkRatio: 0.5}))
	if half.Runtime <= all.Runtime {
		t.Fatal("moving half the update to one CPU core must slow hpl down")
	}
	if math.Abs(half.FLOPs-all.FLOPs) > 1e-6*all.FLOPs {
		t.Fatal("the work split must not change total FLOPs")
	}
}

func TestImbalanceProperty(t *testing.T) {
	f := func(rank uint16, ampRaw uint8) bool {
		amp := float64(ampRaw) / 255.0
		v := imbalance(int(rank), amp)
		return v >= 1 && v < 1+amp+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if imbalance(3, 0.5) != imbalance(3, 0.5) {
		t.Fatal("imbalance must be deterministic")
	}
}

func TestGPUKernelHelper(t *testing.T) {
	k := gpuKernel("k", 1e9, 0.5, 0.4, false)
	dram := k.Bytes * (1 - k.L2HitRatio)
	oi := k.FLOPs / dram
	if math.Abs(oi-0.5) > 1e-9 {
		t.Fatalf("helper produced DRAM OI %v, want 0.5", oi)
	}
}

func TestScaledIters(t *testing.T) {
	c := Config{Scale: 0.1}
	if got := c.scaledIters(100, 4); got != 10 {
		t.Fatalf("scaledIters = %d", got)
	}
	if got := c.scaledIters(10, 4); got != 4 {
		t.Fatalf("min clamp = %d", got)
	}
	if got := (Config{}).scaledIters(100, 4); got != 100 {
		t.Fatalf("zero scale should mean full size, got %d", got)
	}
}

// Network traffic per rank shrinks as ranks grow for the strong-scaled
// halo codes (the per-rank strip narrows).
func TestHaloTrafficShrinksWithRanks(t *testing.T) {
	w, _ := ByName("cloverleaf")
	four := runOn(t, w, 4, network.TenGigE, 0.02)
	eight := runOn(t, w, 8, network.TenGigE, 0.02)
	perRank4 := four.NetBytes / 4
	perRank8 := eight.NetBytes / 8
	// Halo size per rank is constant for a 1D strip code once interior
	// ranks dominate, so per-rank traffic is roughly flat from 4 to 8.
	if perRank8 > perRank4*1.25 || perRank8 < perRank4*0.75 {
		t.Errorf("per-rank halo traffic not flat: %v -> %v", perRank4, perRank8)
	}
}

// FP16 speeds the AI pipeline on the TX1 (never slows it) and the run
// stays deterministic.
func TestHalfPrecisionOption(t *testing.T) {
	w, _ := ByName("googlenet")
	cfg := cluster.TX1Cluster(2, network.TenGigE)
	cfg.RanksPerNode = 1
	cfg.FileServer = true
	fp32 := cluster.New(cfg).Run(w.Body(Config{Scale: 0.02}))
	cfg2 := cfg
	fp16 := cluster.New(cfg2).Run(w.Body(Config{Scale: 0.02, HalfPrecision: true}))
	if fp16.Runtime > fp32.Runtime {
		t.Fatalf("FP16 slower than FP32 on the TX1: %v vs %v", fp16.Runtime, fp32.Runtime)
	}
}

// GPUDirect removes the host staging copies around halo exchanges: never
// slower, and the GPU copy byte count drops.
func TestGPUDirectOption(t *testing.T) {
	w, _ := ByName("tealeaf3d")
	base := cluster.TX1Cluster(4, network.TenGigE)
	base.RanksPerNode = 1
	base.FileServer = true
	staged := cluster.New(base).Run(w.Body(Config{Scale: 0.02}))
	direct := base
	direct.GPUDirect = true
	dres := cluster.New(direct).Run(w.Body(Config{Scale: 0.02}))
	if dres.Runtime > staged.Runtime {
		t.Fatalf("GPUDirect slower: %v vs %v", dres.Runtime, staged.Runtime)
	}
	if dres.GPU.CopyBytes >= staged.GPU.CopyBytes {
		t.Fatalf("GPUDirect did not remove staging copies: %v vs %v", dres.GPU.CopyBytes, staged.GPU.CopyBytes)
	}
}

func TestConfigKeyCanonicalizesDefaults(t *testing.T) {
	if (Config{}).Key() != (Config{Scale: 1, GPUWorkRatio: 1}).Key() {
		t.Error("zero config and explicit defaults must share a key")
	}
	distinct := []Config{
		{Scale: 0.5},
		{Scale: 0.5, GPUWorkRatio: 0.7},
		{Scale: 0.5, HalfPrecision: true},
		{Scale: 0.5, WeakScaling: true},
	}
	seen := map[string]bool{(Config{}).Key(): true}
	for i, c := range distinct {
		if seen[c.Key()] {
			t.Errorf("config %d collides with an earlier key", i)
		}
		seen[c.Key()] = true
	}
}
