package workloads

import (
	"math"

	"clustersoc/internal/cluster"
	"clustersoc/internal/soc"
	"clustersoc/internal/units"
)

// The NPB class C suite is the paper's CPU-side workload set (largest
// class that fits a TX1 node's memory, except ft). Each benchmark is
// modeled by its documented class C work volume, its communication
// schedule, and a microarchitectural profile (branch entropy, locality,
// hot working set) that reproduces its published behaviour on the two ARM
// systems: bt/ep/mg/sp are compute-shaped and expose the ThunderX's
// branch predictor and L2 (Sec. IV-A); cg/ft/is/lu are communication- and
// imbalance-shaped and scale poorly on the cluster (Fig. 6).
//
// The kernels behind these models are implemented and verified in
// internal/kernels: CG (cg), FFT (ft), bucket sort (is), multigrid (mg),
// Marsaglia pairs (ep), and the stencil/solver building blocks (bt/sp/lu).
type npb struct {
	name  string
	flops float64 // total class C useful FLOPs (ops for is)
	iters int

	instrPerFlop   float64
	branchPerInstr float64
	entropy        float64
	memAccPerInstr float64
	l1Miss         float64
	workingSet     float64 // hot per-thread working set
	dramPerInstr   float64 // DRAM bytes per instruction
	imbalanceAmp   float64

	// computeInComm moves the per-iteration compute inside the comm
	// schedule (cg's inner solver, lu's wavefront stages), so waits and
	// compute interleave the way the real code's do.
	computeInComm bool

	comm func(w *npb, ctx *cluster.Context, it int, cw soc.CPUWork)
}

func (w *npb) Name() string         { return w.name }
func (w *npb) GPUAccelerated() bool { return false }
func (w *npb) RanksPerNode() int    { return 4 }

// work returns the per-iteration CPU work for one rank.
func (w *npb) work(ranks int) soc.CPUWork {
	instr := w.flops * w.instrPerFlop / float64(w.iters) / float64(ranks)
	return soc.CPUWork{
		Instr:         instr,
		Flops:         w.flops / float64(w.iters) / float64(ranks),
		Branches:      instr * w.branchPerInstr,
		BranchEntropy: w.entropy,
		MemAccesses:   instr * w.memAccPerInstr,
		L1MissRate:    w.l1Miss,
		WorkingSet:    w.workingSet,
		Bytes:         instr * w.dramPerInstr,
	}
}

// Body returns the per-rank program: iterate compute + the benchmark's
// communication schedule.
func (w *npb) Body(cfg Config) func(*cluster.Context) {
	iters := cfg.scaledIters(w.iters, 4)
	return func(ctx *cluster.Context) {
		// Scale shrinks the run by dropping iterations; per-iteration work
		// and traffic keep their true ratio, so shapes are scale-invariant.
		base := w.work(ctx.Size())
		cw := base.Scale(imbalance(ctx.Rank, w.imbalanceAmp))
		for it := 0; it < iters; it++ {
			if !w.computeInComm {
				ctx.Compute(cw)
			}
			if w.comm != nil {
				w.comm(w, ctx, it, cw)
			}
			ctx.Phase()
		}
		ctx.Allreduce(64) // final verification reduction
	}
}

// ringComm exchanges face data with both grid neighbours (bt/sp's ADI
// face exchanges, collapsed to a ring).
func ringComm(faceBytes func(ranks int) float64) func(*npb, *cluster.Context, int, soc.CPUWork) {
	return func(w *npb, ctx *cluster.Context, it int, _ soc.CPUWork) {
		p, r := ctx.Size(), ctx.Rank
		if p == 1 {
			return
		}
		b := faceBytes(p)
		ctx.Sendrecv((r+1)%p, (r-1+p)%p, 700+it, b, b)
		ctx.Sendrecv((r-1+p)%p, (r+1)%p, 700+it, b, b)
	}
}

// npbBT: 162^3 ADI solver, 200 timesteps.
func npbBT() *npb {
	return &npb{
		name: "bt", flops: 5.7e11, iters: 200,
		instrPerFlop: 2.6, branchPerInstr: 0.12, entropy: 0.45,
		memAccPerInstr: 0.35, l1Miss: 0.07, workingSet: 1.5 * units.MiB,
		dramPerInstr: 0.15, imbalanceAmp: 0.05,
		comm: ringComm(func(p int) float64 { return 162 * 162 * 5 * 8 / float64(p) * 3 }),
	}
}

// npbSP: 162^3 scalar penta-diagonal solver, 400 timesteps.
func npbSP() *npb {
	return &npb{
		name: "sp", flops: 4.7e11, iters: 400,
		instrPerFlop: 2.8, branchPerInstr: 0.12, entropy: 0.40,
		memAccPerInstr: 0.40, l1Miss: 0.10, workingSet: 2 * units.MiB,
		dramPerInstr: 0.2, imbalanceAmp: 0.05,
		comm: ringComm(func(p int) float64 { return 162 * 162 * 5 * 8 / float64(p) * 2 }),
	}
}

// npbMG: 512^3 multigrid V-cycles — the paper's worst case for the
// ThunderX: the irregular level traversal defeats its branch predictor
// (highest BR_MIS_PRED and INST_SPEC of Fig. 8) and thrashes its thin
// per-core L2 slice.
func npbMG() *npb {
	w := &npb{
		name: "mg", flops: 1.5e11, iters: 20,
		instrPerFlop: 2.8, branchPerInstr: 0.20, entropy: 0.85,
		memAccPerInstr: 0.45, l1Miss: 0.15, workingSet: 0.9 * units.MiB,
		dramPerInstr: 0.5, imbalanceAmp: 0.05,
	}
	w.comm = func(_ *npb, ctx *cluster.Context, it int, _ soc.CPUWork) {
		p, r := ctx.Size(), ctx.Rank
		if p == 1 {
			return
		}
		// Halo exchanges on every grid level, geometrically shrinking.
		for level := 0; level < 5; level++ {
			b := 6 * 512 * 512 * 8 / float64(p) / math.Pow(4, float64(level))
			ctx.Sendrecv((r+1)%p, (r-1+p)%p, 710+8*it+level, b, b)
		}
		ctx.Allreduce(8) // residual norm
	}
	return w
}

// npbEP: 2^32 Marsaglia pairs (kernels.EmbarrassinglyParallel), almost no
// communication — the control case for the network experiments — but the
// data-dependent rejection branch and the tally tables give it the
// suite's highest L2 miss ratio on the ThunderX (Sec. IV-A).
func npbEP() *npb {
	w := &npb{
		name: "ep", flops: 1.3e11, iters: 16,
		instrPerFlop: 1.8, branchPerInstr: 0.20, entropy: 0.75,
		memAccPerInstr: 0.20, l1Miss: 0.06, workingSet: 0.95 * units.MiB,
		dramPerInstr: 0.02, imbalanceAmp: 0.02,
	}
	w.comm = func(_ *npb, ctx *cluster.Context, it int, _ soc.CPUWork) {
		ctx.Allreduce(80) // annulus counters
	}
	return w
}

// npbCG: conjugate gradients on a 150000-row random sparse matrix
// (kernels.RandomSPD): per inner iteration two latency-bound dot-product
// allreduces plus large irregular vector exchanges — the network and
// load-imbalance profile that makes cg favour the single-box Cavium.
func npbCG() *npb {
	w := &npb{
		name: "cg", flops: 1.6e11, iters: 75, // outer iterations
		instrPerFlop: 2.5, branchPerInstr: 0.10, entropy: 0.20,
		memAccPerInstr: 0.30, l1Miss: 0.04, workingSet: 0.4 * units.MiB,
		dramPerInstr: 0.2, imbalanceAmp: 0.25,
	}
	w.computeInComm = true
	const inner = 25
	w.comm = func(_ *npb, ctx *cluster.Context, it int, cw soc.CPUWork) {
		p, r := ctx.Size(), ctx.Rank
		step := cw.Scale(1.0 / inner)
		ex := 150000.0 * 8 * 3 / math.Sqrt(float64(p))
		for in := 0; in < inner; in++ {
			ctx.Compute(step)
			if p == 1 {
				continue
			}
			// Hypercube-style exchange partner; with a non-power-of-two
			// communicator the missing partner's exchange is simply skipped
			// (ranks pair by XOR, so the skip is symmetric).
			partner := r ^ (1 << (in % intLog2(p)))
			if partner < p {
				ctx.Sendrecv(partner, partner, 720+inner*it+in, ex, ex)
			}
			ctx.Allreduce(8)
			ctx.Allreduce(8)
		}
	}
	return w
}

// npbFT: 512^3 spectral solver (kernels.FFT2D's transpose structure): one
// full-volume all-to-all per iteration — the most network-bound workload
// of the suite, with the biggest 10 GbE gain in Fig. 1.
func npbFT() *npb {
	w := &npb{
		name: "ft", flops: 3.8e11, iters: 20,
		instrPerFlop: 1.2, branchPerInstr: 0.06, entropy: 0.20,
		memAccPerInstr: 0.30, l1Miss: 0.05, workingSet: 0.4 * units.MiB,
		dramPerInstr: 0.5, imbalanceAmp: 0.03,
	}
	w.comm = func(_ *npb, ctx *cluster.Context, it int, _ soc.CPUWork) {
		p := ctx.Size()
		if p == 1 {
			return
		}
		total := 512.0 * 512 * 512 * 16 // complex grid
		ctx.Alltoall(total / float64(p) / float64(p))
	}
	return w
}

// npbIS: 2^27-key integer bucket sort (kernels.BucketSort): the key
// scatter is an all-to-all of the entire dataset every iteration; very
// little arithmetic.
func npbIS() *npb {
	w := &npb{
		name: "is", flops: 3.5e10, iters: 10, // "ops": integer work
		instrPerFlop: 1.0, branchPerInstr: 0.15, entropy: 0.30,
		memAccPerInstr: 0.40, l1Miss: 0.10, workingSet: 0.4 * units.MiB,
		dramPerInstr: 0.8, imbalanceAmp: 0.05,
	}
	w.comm = func(_ *npb, ctx *cluster.Context, it int, _ soc.CPUWork) {
		p := ctx.Size()
		if p == 1 {
			return
		}
		keys := math.Pow(2, 27) * 4 // bytes
		ctx.Alltoall(keys / float64(p) / float64(p))
		ctx.Allreduce(1 << 13) // bucket histograms
	}
	return w
}

// npbLU: 162^3 SSOR solver: the lower/upper triangular sweeps form a
// wavefront pipeline across the rank grid — the serialization (Ser) and
// load-imbalance profile of Fig. 6, plus tens of thousands of small
// latency-bound messages.
func npbLU() *npb {
	w := &npb{
		name: "lu", flops: 4.0e11, iters: 60, // time-step blocks
		instrPerFlop: 2.2, branchPerInstr: 0.15, entropy: 0.25,
		memAccPerInstr: 0.25, l1Miss: 0.012, workingSet: 0.4 * units.MiB,
		dramPerInstr: 0.1, imbalanceAmp: 0.30,
	}
	w.computeInComm = true
	const stages = 24
	w.comm = func(_ *npb, ctx *cluster.Context, it int, cw soc.CPUWork) {
		p, r := ctx.Size(), ctx.Rank
		step := cw.Scale(1.0 / (2 * stages))
		if p == 1 {
			for s := 0; s < 2*stages; s++ {
				ctx.Compute(step)
			}
			return
		}
		// The SSOR wavefront sweeps the whole rank chain; every hop pays
		// the interconnect's latency and serialization, which is what makes
		// lu prefer the single box (Sec. IV-A).
		chain := 1
		msg := 162.0 * 162 * 5 * 8 * 3 / float64(p)
		for sweep := 0; sweep < 2; sweep++ {
			for s := 0; s < stages; s++ {
				tag := 740 + (it*2+sweep)*stages + s
				if r >= chain {
					ctx.Recv(r-chain, tag)
				}
				ctx.Compute(step)
				if r+chain < p {
					ctx.Send(r+chain, tag, msg)
				}
			}
		}
	}
	return w
}

// intLog2 returns floor(log2(n)) with a minimum of 1.
func intLog2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}

func init() {
	register(npbBT())
	register(npbCG())
	register(npbEP())
	register(npbFT())
	register(npbIS())
	register(npbLU())
	register(npbMG())
	register(npbSP())
}
