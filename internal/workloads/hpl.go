package workloads

import (
	"math"

	"clustersoc/internal/cluster"
	"clustersoc/internal/kernels"
	"clustersoc/internal/sim"
	"clustersoc/internal/soc"
)

// HPL is the Table I "hpl" benchmark: High Performance Linpack solving
// Ax=b by LU factorization with partial pivoting (the algorithm of
// kernels.Factor) distributed block-cyclically. Each elimination step
// factors a column panel on the owner's CPU, broadcasts it, exchanges
// pivot/U rows, and runs the trailing DGEMM update on the GPU — the
// structure that makes hpl both the highest-throughput and, on 1 GbE, the
// most network-limited workload of Table II.
//
// GPUWorkRatio < 1 reproduces the Fig. 7 experiment: that fraction of the
// trailing update runs on the GPU and the remainder on one CPU core,
// overlapped.
type HPL struct {
	N  int // matrix order (paper: sized to fill cluster memory)
	NB int // block size
}

// NewHPL returns the paper-sized configuration.
func NewHPL() *HPL { return &HPL{N: 20480, NB: 128} }

func (h *HPL) Name() string         { return "hpl" }
func (h *HPL) GPUAccelerated() bool { return true }
func (h *HPL) RanksPerNode() int    { return 1 }

// scaledN shrinks the matrix order with the cube root of Scale, so the
// FLOP volume (~N^3) scales roughly linearly with Scale.
func (h *HPL) scaledN(cfg Config) int {
	n := int(float64(h.N) * math.Cbrt(cfg.scale()))
	// Keep a multiple of NB, at least 16 panels.
	if n < 16*h.NB {
		n = 16 * h.NB
	}
	return (n / h.NB) * h.NB
}

// panelWork is the CPU cost of factoring a rows x nb panel: rows*nb^2
// FLOPs of column operations, run threaded across the node's cores the
// way HPL's panel factorization is.
func panelWork(rows, nb int) soc.CPUWork {
	flops := float64(rows) * float64(nb) * float64(nb)
	return soc.CPUWork{
		Instr:         1.0 * flops,
		Flops:         flops,
		Branches:      0.05 * flops,
		BranchEntropy: 0.15,
		MemAccesses:   0.5 * flops,
		L1MissRate:    0.04,
		WorkingSet:    float64(rows*nb) * 8,
		Bytes:         float64(rows*nb) * 8,
	}
}

// dgemmCPUWork is the cost of a trailing-update chunk on CPU cores with
// OpenBLAS-grade blocking (~1.5 GFLOPS per A57 core, as -O3 unturned HPL
// achieves).
func dgemmCPUWork(flops float64) soc.CPUWork {
	return soc.CPUWork{
		Instr:         2.2 * flops,
		Flops:         flops,
		Branches:      0.02 * flops,
		BranchEntropy: 0.05,
		MemAccesses:   0.45 * flops,
		L1MissRate:    0.02,
		WorkingSet:    1.5e6,
		Bytes:         flops * 0.25, // blocked GEMM DRAM traffic
	}
}

// weakN grows the matrix order with sqrt(P) so per-node memory (~N^2/P)
// stays constant under weak scaling.
func (h *HPL) weakN(base, ranks int) int {
	n := int(float64(base) * math.Sqrt(float64(ranks)))
	return (n / h.NB) * h.NB
}

// Body returns the GPU-accelerated per-rank program.
func (h *HPL) Body(cfg Config) func(*cluster.Context) {
	baseN := h.scaledN(cfg)
	ratio := cfg.workRatio()
	return func(ctx *cluster.Context) {
		p, rank := ctx.Size(), ctx.Rank
		n := baseN
		if cfg.WeakScaling {
			n = h.weakN(baseN, p)
		}
		// Lookahead: step k's trailing update runs on the GPU while step
		// k+1's panel is factored, broadcast, and staged — HPL's standard
		// overlap, which is what lets it approach the roofline (Table II).
		var pending *sim.Gate
		for k := 0; k+h.NB <= n; k += h.NB {
			step := k / h.NB
			owner := step % p
			rows := n - k
			panelBytes := kernels.HPLPanelBytes(n, k, h.NB)

			if rank == owner {
				ctx.ComputeParallel(panelWork(rows, h.NB), ctx.Node().CPU.Cores)
			}
			ctx.Bcast(owner, panelBytes)
			ctx.CopyIn(panelBytes)

			// Pivot-row / U-panel exchange: nb pivot rows scatter across the
			// process ring and the U panel returns, so each step moves about
			// twice the rank's nb x cols share in each direction.
			cols := (n - k) / p
			uBytes := 2 * float64(h.NB) * float64(cols) * 8
			next, prev := (rank+1)%p, (rank-1+p)%p
			if p > 1 {
				ctx.Sendrecv(next, prev, 500+step, uBytes, uBytes)
				ctx.Sendrecv(prev, next, 500+step, uBytes, uBytes)
			}

			// Trailing update: DGEMM-shaped, split CPU/GPU by ratio. The
			// previous step's update must land before this one launches.
			if pending != nil {
				ctx.WaitKernel(pending)
			}
			trailFlops := kernels.HPLTrailingFlops(n, k, h.NB) / float64(p)
			gpuFlops := trailFlops * ratio
			cpuFlops := trailFlops - gpuFlops
			pending = ctx.KernelAsync(gpuKernel("hpl_dgemm", gpuFlops, 0.5, 0.55, false))
			if cpuFlops > 0 {
				ctx.Compute(dgemmCPUWork(cpuFlops))
			}
			// Restorable state: this rank's share of the factored matrix.
			ctx.Checkpoint(float64(n) * float64(n) * 8 / float64(p))
			ctx.Phase()
		}
		if pending != nil {
			ctx.WaitKernel(pending)
		}
		// Back-substitution: 2 N^2 FLOPs, cheap, on the root's CPU.
		if rank == 0 {
			w := dgemmCPUWork(2 * float64(n) * float64(n))
			ctx.Compute(w)
		}
		ctx.Barrier()
	}
}

// HPLCPU is the CPU-only hpl from the HPCC suite (Table IV's "CPU" rows):
// the same elimination structure with the trailing update on the CPU
// cores, typically 4 MPI ranks per TX1 node (or 3 when collocated with
// the GPU version).
type HPLCPU struct {
	HPL
	Ranks int // ranks per node
}

// NewHPLCPU returns the CPU variant with the given process density.
func NewHPLCPU(ranksPerNode int) *HPLCPU {
	return &HPLCPU{HPL: *NewHPL(), Ranks: ranksPerNode}
}

func (h *HPLCPU) Name() string         { return "hpl-cpu" }
func (h *HPLCPU) GPUAccelerated() bool { return false }
func (h *HPLCPU) RanksPerNode() int    { return h.Ranks }

// Body returns the CPU per-rank program.
func (h *HPLCPU) Body(cfg Config) func(*cluster.Context) {
	n := h.scaledN(cfg)
	return func(ctx *cluster.Context) {
		p, rank := ctx.Size(), ctx.Rank
		for k := 0; k+h.NB <= n; k += h.NB {
			step := k / h.NB
			owner := step % p
			rows := n - k
			panelBytes := kernels.HPLPanelBytes(n, k, h.NB)
			if rank == owner {
				ctx.Compute(panelWork(rows, h.NB))
			}
			ctx.Bcast(owner, panelBytes)
			cols := (n - k) / p
			uBytes := float64(h.NB) * float64(cols) * 8
			if p > 1 {
				next, prev := (rank+1)%p, (rank-1+p)%p
				ctx.Sendrecv(next, prev, 600+step, uBytes, uBytes)
			}
			trailFlops := kernels.HPLTrailingFlops(n, k, h.NB) / float64(p)
			ctx.Compute(dgemmCPUWork(trailFlops))
			ctx.Checkpoint(float64(n) * float64(n) * 8 / float64(p))
			ctx.Phase()
		}
		ctx.Barrier()
	}
}

func init() {
	register(NewHPL())
	register(NewHPLCPU(4))
}
