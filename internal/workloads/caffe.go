package workloads

import (
	"clustersoc/internal/cluster"
	"clustersoc/internal/nn"
	"clustersoc/internal/sim"
	"clustersoc/internal/soc"
)

// Caffe models the paper's two AI workloads: ImageNet classification with
// AlexNet and GoogleNet under a Caffe-style pipeline. Images are
// embarrassingly parallel across nodes (the paper distributes them with
// scripts; there is no inter-rank communication), but each image must be
// fetched from the NFS file server and JPEG-decoded on the CPU before the
// GPU runs the FP32 forward pass — the CPU:GPU balance that Sec. IV-B
// shows favouring the TX1 cluster over the discrete-GPU system (Fig. 10).
type Caffe struct {
	Net       *nn.Network
	Images    int
	BatchSize int
	// OIDram is the forward pass's DRAM-level operational intensity:
	// cuDNN convolutions reuse weights and activations through the cache
	// hierarchy, so it sits more than an order of magnitude above the
	// stencil codes (Table II) — ~16 FLOP/B, consistent with TX1 AlexNet
	// throughput measurements (~200 img/s FP32).
	OIDram float64
}

// NewAlexNet returns the alexnet workload (8192 ImageNet images).
func NewAlexNet() *Caffe {
	return &Caffe{Net: nn.AlexNet(), Images: 8192, BatchSize: 32, OIDram: 16}
}

// NewGoogleNet returns the googlenet workload.
func NewGoogleNet() *Caffe {
	return &Caffe{Net: nn.GoogleNet(), Images: 8192, BatchSize: 32, OIDram: 17}
}

func (c *Caffe) Name() string         { return c.Net.Name }
func (c *Caffe) GPUAccelerated() bool { return true }
func (c *Caffe) RanksPerNode() int    { return 1 }

// averageJPEGBytes is the typical size of an ImageNet validation JPEG.
const averageJPEGBytes = 110e3

// decodeWork is the CPU cost of fetching + decoding a batch of JPEGs
// (entropy decode, IDCT, resize to the network input).
func decodeWork(batch int) soc.CPUWork {
	instr, flops, branches := nn.JPEGDecodeCost(nn.ImageNetJPEGWidth, nn.ImageNetJPEGHeight)
	b := float64(batch)
	return soc.CPUWork{
		Instr:         instr * b,
		Flops:         flops * b,
		Branches:      branches * b,
		BranchEntropy: 0.55, // Huffman decoding is data-dependent
		MemAccesses:   0.4 * instr * b,
		L1MissRate:    0.03,
		WorkingSet:    800e3,
		Bytes:         3 * float64(nn.ImageNetJPEGWidth*nn.ImageNetJPEGHeight) * b,
	}
}

// Body returns the per-rank program: a software pipeline that decodes
// batch i+1 on the CPU cores while the GPU classifies batch i.
func (c *Caffe) Body(cfg Config) func(*cluster.Context) {
	// Keep enough images that weight-loading and pipeline fill amortize
	// even in scaled-down runs.
	images := cfg.scaledIters(c.Images, 64*c.BatchSize)
	return func(ctx *cluster.Context) {
		p, rank := ctx.Size(), ctx.Rank
		myImages := images / p
		if rank < images%p {
			myImages++
		}
		batches := (myImages + c.BatchSize - 1) / c.BatchSize

		// Load the model weights once from local eMMC (the paper keeps
		// binaries and models local; only images come over NFS), then
		// stage them onto the device.
		ctx.ReadLocal(c.Net.WeightBytes())
		ctx.CopyIn(c.Net.WeightBytes())

		// Caffe 1.x's image data layer decodes on a single thread, so one
		// core per node does the JPEG work regardless of core count — the
		// reason per-node CPU core count (not per-core speed) sets the
		// pipeline's feed rate (Fig. 10).
		decodeCores := 1

		batchFlops := c.Net.TotalFLOPs() * float64(c.BatchSize)
		forward := gpuKernel(c.Net.Name+"_fwd", batchFlops, c.OIDram, 0.60, true)
		if cfg.HalfPrecision {
			forward.HalfPrecision = true
		}
		inputBytes := 4 * float64(c.Net.Input.Elems()*c.BatchSize)

		var pending *sim.Gate
		for b := 0; b < batches; b++ {
			// Fetch and decode the next batch while the GPU works.
			ctx.Fetch(averageJPEGBytes * float64(c.BatchSize))
			ctx.ComputeParallel(decodeWork(c.BatchSize), decodeCores)
			ctx.CopyIn(inputBytes)
			if pending != nil {
				ctx.WaitKernel(pending)
			}
			pending = ctx.KernelAsync(forward)
			ctx.Phase()
		}
		if pending != nil {
			ctx.WaitKernel(pending)
		}
	}
}

func init() {
	register(NewAlexNet())
	register(NewGoogleNet())
}
