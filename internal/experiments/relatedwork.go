package experiments

import (
	"clustersoc/internal/cluster"
	"clustersoc/internal/network"
	"clustersoc/internal/runner"
	"clustersoc/internal/soc"
	"clustersoc/internal/workloads"
)

// RelatedWork extends the Sec. IV-A comparison across the ARM server
// generations the paper's introduction and related work discuss: the
// X-Gene 1 (8 big cores — the chip Azimi et al. studied before this
// paper), the Cavium ThunderX (96 small cores), and the proposed 8-node
// TX1 cluster (32 mobile cores + GPUs idle for NPB). Runtimes are
// normalized to the TX1 cluster, like Table VI.

// RelatedWorkRow is one benchmark across the three systems.
type RelatedWorkRow struct {
	Workload string

	TX1Runtime    float64
	CaviumRuntime float64
	XGeneRuntime  float64

	NormCavium float64 // Cavium / TX1
	NormXGene  float64 // X-Gene / TX1
}

// RelatedWorkStudy holds the three-way comparison.
type RelatedWorkStudy struct {
	Rows []RelatedWorkRow
}

// RelatedWorkCompare runs a representative NPB subset on all three
// systems. The X-Gene's 8 ranks get proportionally less of the class C
// problem per rank-second, which is the point: core count and per-core
// strength trade off differently on every chip.
func RelatedWorkCompare(o Options) *RelatedWorkStudy {
	xgene := cluster.Config{
		Name:         "X-Gene 1 server",
		Nodes:        1,
		NodeType:     soc.AppliedMicroXGene(),
		Network:      network.GigE,
		RanksPerNode: 8,
	}
	names := []string{"ep", "cg", "mg", "ft"}
	wcfg := workloads.Config{Scale: o.scale()}
	var scenarios []runner.Scenario
	for _, name := range names {
		w, _ := workloads.ByName(name)
		scenarios = append(scenarios,
			tx1Scenario(w, 8, network.GigE, o.scale()),
			runner.Scenario{Cluster: cluster.CaviumServer(32), Workload: name, Config: wcfg},
			runner.Scenario{Cluster: xgene, Workload: name, Config: wcfg})
	}
	res := runAll(o, scenarios)
	out := &RelatedWorkStudy{}
	for i, name := range names {
		tx, cav, xg := res[3*i], res[3*i+1], res[3*i+2]
		out.Rows = append(out.Rows, RelatedWorkRow{
			Workload:      name,
			TX1Runtime:    tx.Runtime,
			CaviumRuntime: cav.Runtime,
			XGeneRuntime:  xg.Runtime,
			NormCavium:    cav.Runtime / tx.Runtime,
			NormXGene:     xg.Runtime / tx.Runtime,
		})
	}
	return out
}

// Row returns one benchmark's entry, or nil.
func (rw *RelatedWorkStudy) Row(name string) *RelatedWorkRow {
	for i := range rw.Rows {
		if rw.Rows[i].Workload == name {
			return &rw.Rows[i]
		}
	}
	return nil
}

// String renders the comparison.
func (rw *RelatedWorkStudy) String() string {
	t := &table{header: []string{"benchmark", "Cavium/TX1", "X-Gene/TX1"}}
	for _, r := range rw.Rows {
		t.add(r.Workload, f2(r.NormCavium), f2(r.NormXGene))
	}
	return t.String()
}
