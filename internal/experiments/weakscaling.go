package experiments

import (
	"clustersoc/internal/cluster"
	"clustersoc/internal/network"
	"clustersoc/internal/runner"
	"clustersoc/internal/workloads"
)

// Weak scaling is an extension beyond the paper's strong-scaling
// evaluation: its related work (Tibidabo, Sec. II-A) reports hpl
// MFLOPS/W under weak scaling, where the matrix grows with the cluster so
// memory per node stays constant. The interesting shape: efficiency per
// node holds roughly flat as the cluster grows — the regime where ARM
// clusters look their best.

// WeakScalingRow is one cluster size of the weak-scaling hpl sweep.
type WeakScalingRow struct {
	Nodes            int
	MatrixOrder      int // grows ~ sqrt(P)
	Runtime          float64
	ThroughputGFLOPS float64
	PerNodeGFLOPS    float64
	MFLOPSPerWatt    float64
}

// WeakScalingStudy holds the sweep.
type WeakScalingStudy struct {
	Rows []WeakScalingRow
}

// WeakScaling runs hpl with the problem growing alongside the cluster.
func WeakScaling(o Options) *WeakScalingStudy {
	sizes := append([]int{1}, o.sizes()...)
	var scenarios []runner.Scenario
	for _, nodes := range sizes {
		cfg := cluster.TX1Cluster(nodes, network.TenGigE)
		cfg.RanksPerNode = 1
		cfg.FileServer = true
		scenarios = append(scenarios, runner.Scenario{
			Cluster:  cfg,
			Workload: "hpl",
			Config:   workloads.Config{Scale: o.scale(), WeakScaling: true},
		})
	}
	results := runAll(o, scenarios)
	out := &WeakScalingStudy{}
	for i, nodes := range sizes {
		res := results[i]
		out.Rows = append(out.Rows, WeakScalingRow{
			Nodes:            nodes,
			Runtime:          res.Runtime,
			ThroughputGFLOPS: res.Throughput / 1e9,
			PerNodeGFLOPS:    res.Throughput / 1e9 / float64(nodes),
			MFLOPSPerWatt:    res.MFLOPSPerWatt(),
		})
	}
	return out
}

// Efficiency returns per-node throughput at the largest size relative to
// one node — weak-scaling efficiency.
func (ws *WeakScalingStudy) Efficiency() float64 {
	if len(ws.Rows) < 2 {
		return 1
	}
	first := ws.Rows[0].PerNodeGFLOPS
	last := ws.Rows[len(ws.Rows)-1].PerNodeGFLOPS
	if first == 0 {
		return 0
	}
	return last / first
}

// String renders the study.
func (ws *WeakScalingStudy) String() string {
	t := &table{header: []string{"nodes", "runtime(s)", "GFLOPS", "GFLOPS/node", "MFLOPS/W"}}
	for _, r := range ws.Rows {
		t.add(f1(float64(r.Nodes)), f2(r.Runtime), f1(r.ThroughputGFLOPS), f2(r.PerNodeGFLOPS), f1(r.MFLOPSPerWatt))
	}
	return t.String()
}
