package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"clustersoc/internal/cluster"
	"clustersoc/internal/runner"
)

// TestArtifactsByteIdenticalUnderPDES regenerates the full cmd/experiments
// artifact set with partitioned execution enabled process-wide and requires
// the bytes to match the same sequential golden file as
// TestArtifactsByteIdenticalToGolden. This is the end-to-end determinism
// pin for the PDES mode: every eligible scenario runs partitioned, every
// ineligible one (traced, faulted, single-node, ideal-network) falls back
// to the sequential engine, and the artifact set must not move by a single
// byte either way.
func TestArtifactsByteIdenticalUnderPDES(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every artifact")
	}
	prev := cluster.SetPDES(4)
	defer cluster.SetPDES(prev)

	o := DefaultOptions()
	o.Scale = 0.04
	o.Runner = runner.New(4)

	var got bytes.Buffer
	if err := WriteArtifactsJSON(&got, Artifacts(o)); err != nil {
		t.Fatal(err)
	}

	want, err := os.ReadFile(filepath.Join("testdata", "artifacts-scale0.04.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		gl := bytes.Split(got.Bytes(), []byte("\n"))
		wl := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("PDES artifact JSON diverges from sequential golden at line %d:\n got: %s\nwant: %s",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("PDES artifact JSON length changed: got %d bytes, golden %d", got.Len(), len(want))
	}
}
