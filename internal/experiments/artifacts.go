package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Artifacts regenerates every Options-driven artifact of the evaluation
// and returns them under the same keys cmd/experiments uses for its -json
// output. Sharing one generator list between the CLI and the golden
// regression test keeps "the artifacts" a single well-defined set: any
// change to simulation results shows up as a golden diff.
func Artifacts(o Options) map[string]any {
	return map[string]any{
		"fig1_fig2":   Fig1(o),
		"fig3":        Fig3(o),
		"table2_fig4": Table2(o),
		"fig5":        Fig5(o),
		"fig6":        Fig6(o),
		"table3":      Table3(o),
		"fig7":        Fig7(o),
		"table4":      Table4(o),
		"table6_fig8": Table6(o),
		"fig9":        Fig9(o),
		"fig10":       Fig10(o),
		"related":     RelatedWorkCompare(o),
		"weak":        WeakScaling(o),
	}
}

// WriteArtifactsJSON emits the artifact map with keys in sorted order,
// one top-level entry at a time. The bytes are identical to encoding the
// whole map with a json.Encoder at two-space indent (Go's map encoding
// sorts keys too) — the explicit ordering just makes the contract visible
// and independent of the container type.
func WriteArtifactsJSON(w io.Writer, artifacts map[string]any) error {
	keys := make([]string, 0, len(artifacts))
	for k := range artifacts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, k := range keys {
		kb, err := json.Marshal(k)
		if err != nil {
			return err
		}
		vb, err := json.MarshalIndent(artifacts[k], "  ", "  ")
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(keys)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "  %s: %s%s", kb, vb, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
