package experiments

import (
	"math"
	"strings"
	"testing"

	"clustersoc/internal/cluster"
	"clustersoc/internal/cuda"
	"clustersoc/internal/dimemas"
	"clustersoc/internal/network"
	"clustersoc/internal/roofline"
	"clustersoc/internal/workloads"
)

// The integration tests assert the *shapes* DESIGN.md commits to — who
// wins, in which direction, where the limits fall — not absolute numbers.
// They are the executable form of the EXPERIMENTS.md paper-vs-measured
// record.

func testOptions() Options {
	return Options{Scale: 0.05, Sizes: []int{2, 4, 8}}
}

func TestFig1And2Shapes(t *testing.T) {
	nc := Fig1(testOptions())

	// Every speedup is >= ~1: a faster NIC never hurts.
	for _, r := range nc.Rows {
		if r.Speedup() < 0.99 {
			t.Errorf("%s@%d: 10GbE slowed the run down (%.2f)", r.Workload, r.Nodes, r.Speedup())
		}
	}
	// The network-bound set gains the most at 8 nodes.
	for _, name := range []string{"tealeaf3d", "ft", "is", "cg"} {
		if s := nc.Row(name, 8).Speedup(); s < 1.5 {
			t.Errorf("%s@8: network-bound speedup only %.2f", name, s)
		}
	}
	// hpl gains more than the stencil codes (second tier).
	if nc.Row("hpl", 8).Speedup() <= nc.Row("jacobi", 8).Speedup() {
		t.Error("hpl should benefit more from 10GbE than jacobi")
	}
	// The compute-bound controls barely move.
	for _, name := range []string{"ep", "bt", "mg", "jacobi", "alexnet"} {
		if s := nc.Row(name, 8).Speedup(); s > 1.25 {
			t.Errorf("%s@8: unexpected network sensitivity %.2f", name, s)
		}
	}
	// Speedup grows (or holds) with cluster size for the network-bound set:
	// inter-node communication rises with node count (Sec. III-B.1).
	for _, name := range []string{"tealeaf3d", "ft", "hpl"} {
		if nc.Row(name, 8).Speedup() < nc.Row(name, 2).Speedup()-0.05 {
			t.Errorf("%s: speedup shrank with cluster size", name)
		}
	}
	// Fig. 2: the big winners also save energy despite the +5 W NICs...
	for _, name := range []string{"tealeaf3d", "ft", "is", "cg"} {
		if e := nc.Row(name, 8).EnergyRatio(); e > 0.95 {
			t.Errorf("%s@8: energy ratio %.2f, want < 0.95", name, e)
		}
	}
	// ...while the insensitive ones pay a modest premium, never a huge one.
	for _, r := range nc.Rows {
		if e := r.EnergyRatio(); e > 1.3 {
			t.Errorf("%s@%d: energy ratio %.2f implausibly high", r.Workload, r.Nodes, e)
		}
	}
}

func TestFig3Shapes(t *testing.T) {
	tr := Fig3(testOptions())

	// hpl and tealeaf3d were starved by 1 GbE: their DRAM traffic rate
	// rises substantially when the network gets out of the way (the paper
	// reports +93%/+99%).
	for _, name := range []string{"tealeaf3d", "hpl"} {
		g1 := tr.Point(name, "1GbE").DRAMRate
		g10 := tr.Point(name, "10GbE").DRAMRate
		if g10 < 1.3*g1 {
			t.Errorf("%s: DRAM rate gained only %.0f%% from 10GbE", name, 100*(g10/g1-1))
		}
	}
	// The AI workloads sit at a large DRAM:network ratio — their data is
	// node-local except the image stream.
	for _, name := range []string{"alexnet", "googlenet"} {
		p := tr.Point(name, "10GbE")
		if p.DRAMRate/p.NetRate < 50 {
			t.Errorf("%s: DRAM:network ratio %.0f, want node-local behaviour", name, p.DRAMRate/p.NetRate)
		}
	}
	// The moderate middle band barely changes between networks.
	for _, name := range []string{"jacobi", "cloverleaf", "tealeaf2d"} {
		g1 := tr.Point(name, "1GbE").DRAMRate
		g10 := tr.Point(name, "10GbE").DRAMRate
		if g10 > 1.25*g1 {
			t.Errorf("%s: middle-band workload moved too much (%.2fx)", name, g10/g1)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	rf := Table2(testOptions())

	// No workload beats its roof.
	for _, r := range rf.Rows {
		if r.PercentOfPeak > 100.5 {
			t.Errorf("%s/%s exceeds the roofline: %.1f%%", r.Workload, r.Network, r.PercentOfPeak)
		}
	}
	// The stencil codes are memory-roof ("operational") limited on both
	// networks, as in Table II.
	for _, name := range []string{"jacobi", "cloverleaf", "tealeaf2d"} {
		for _, net := range []string{"1GbE", "10GbE"} {
			if l := rf.Row(name, net).Limit; l != roofline.LimitOperational {
				t.Errorf("%s/%s limit = %s, want operational", name, net, l)
			}
		}
	}
	// hpl comes closest to its attainable peak among the DP scientific
	// codes on 10 GbE ("hpl comes closest to reaching the peak").
	best := rf.Row("hpl", "10GbE").PercentOfPeak
	for _, name := range []string{"cloverleaf", "tealeaf2d", "tealeaf3d"} {
		if rf.Row(name, "10GbE").PercentOfPeak >= best {
			t.Errorf("%s reaches %.1f%% of peak, above hpl's %.1f%%", name, rf.Row(name, "10GbE").PercentOfPeak, best)
		}
	}
	// The AI codes have order-of-magnitude larger intensities.
	if rf.Row("alexnet", "10GbE").OI < 4*rf.Row("jacobi", "10GbE").OI {
		t.Error("alexnet OI should dwarf the stencil codes'")
	}
	// Intensities are workload properties: identical across networks.
	for _, name := range []string{"hpl", "jacobi", "tealeaf3d"} {
		a, b := rf.Row(name, "1GbE"), rf.Row(name, "10GbE")
		if math.Abs(a.OI-b.OI) > 1e-9*a.OI {
			t.Errorf("%s: OI changed with the network", name)
		}
	}
	// The Fig. 4 roof series exists and is monotone.
	if len(rf.Series10G) == 0 || len(rf.Series1G) == 0 {
		t.Fatal("missing roofline series")
	}
}

func TestFig5Shapes(t *testing.T) {
	s := Fig5(testOptions())

	// hpl and jacobi scale best; tealeaf3d worst (Sec. III-B.4).
	hpl := s.Curve("hpl")
	jac := s.Curve("jacobi")
	t3d := s.Curve("tealeaf3d")
	last := len(hpl.Nodes) - 1
	if jac.Speedup10G(last) < 6 {
		t.Errorf("jacobi speedup@8 = %.2f, want near-linear", jac.Speedup10G(last))
	}
	if t3d.Speedup10G(last) > jac.Speedup10G(last)-1 {
		t.Errorf("tealeaf3d (%.2f) should scale clearly worse than jacobi (%.2f)",
			t3d.Speedup10G(last), jac.Speedup10G(last))
	}
	// The two network-bound codes gain the most from the ideal-network
	// replay (paper: ~1.7x for hpl and tealeaf3d).
	for _, c := range s.Curves {
		gain := c.IdealNetGain(last)
		if c.Workload == "hpl" || c.Workload == "tealeaf3d" {
			if gain < 1.3 {
				t.Errorf("%s ideal-network gain %.2f, want > 1.3", c.Workload, gain)
			}
		} else if gain > 1.25 {
			t.Errorf("%s ideal-network gain %.2f suspiciously high", c.Workload, gain)
		}
	}
	// tealeaf2d shows the worst load balance of the GPU set.
	worstLB, worstName := 1.0, ""
	for _, c := range s.Curves {
		if lb := c.Eff[last].LB; lb < worstLB {
			worstLB, worstName = lb, c.Workload
		}
	}
	if worstName != "tealeaf2d" {
		t.Errorf("worst-LB GPU workload = %s (LB %.2f), want tealeaf2d", worstName, worstLB)
	}
	// Fits are good (the paper reports r2 ~ 0.98).
	if s.AverageR2() < 0.9 {
		t.Errorf("average fit r2 = %.3f", s.AverageR2())
	}
}

func TestFig6Shapes(t *testing.T) {
	s := Fig6(testOptions())
	last := 3 // sizes 1,2,4,8

	// ft and is are the suite's network victims: biggest ideal-network
	// gains (paper: ~3.3x average for the two).
	for _, name := range []string{"ft", "is"} {
		if g := s.Curve(name).IdealNetGain(last); g < 1.8 {
			t.Errorf("%s ideal-network gain %.2f, want > 1.8", name, g)
		}
	}
	// cg and lu are the load-imbalance victims: lowest LB factors.
	for _, name := range []string{"cg", "lu"} {
		if lb := s.Curve(name).Eff[last].LB; lb > 0.93 {
			t.Errorf("%s LB = %.2f, want < 0.93", name, lb)
		}
	}
	// The well-scaling four approach linear speedup.
	for _, name := range []string{"bt", "ep", "mg", "sp"} {
		if sp := s.Curve(name).Speedup10G(last); sp < 6.5 {
			t.Errorf("%s speedup@8 = %.2f, want near-linear", name, sp)
		}
	}
	// The poor scalers stay clearly below.
	for _, name := range []string{"cg", "ft", "is"} {
		if sp := s.Curve(name).Speedup10G(last); sp > 5.5 {
			t.Errorf("%s speedup@8 = %.2f, expected poor scaling", name, sp)
		}
	}
}

func TestTable3Shapes(t *testing.T) {
	m := Table3(testOptions())
	for _, nodes := range []int{1, 8} {
		zc := m.Row(nodes, cuda.ZeroCopy)
		um := m.Row(nodes, cuda.Unified)
		// Zero-copy: ~2x runtime, collapsed cache metrics, more stalls
		// (Table III / the Nvidia-confirmed cache bypass).
		if zc.RuntimeNorm < 1.6 || zc.RuntimeNorm > 3.2 {
			t.Errorf("%d nodes: zero-copy runtime %.2fx, want ~2x", nodes, zc.RuntimeNorm)
		}
		if zc.L2UtilNorm > 0.05 || zc.L2ReadNorm > 0.05 {
			t.Errorf("%d nodes: zero-copy should bypass the L2", nodes)
		}
		if zc.StallsNorm <= 1.1 {
			t.Errorf("%d nodes: zero-copy stalls %.2f, want elevated", nodes, zc.StallsNorm)
		}
		// Unified memory matches host-and-device within a few percent.
		if um.RuntimeNorm < 0.97 || um.RuntimeNorm > 1.06 {
			t.Errorf("%d nodes: unified runtime %.2f, want ~1.0", nodes, um.RuntimeNorm)
		}
		if um.L2UtilNorm < 0.95 {
			t.Errorf("%d nodes: unified memory must keep the cache hierarchy", nodes)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	wr := Fig7(Options{Scale: 0.05, Sizes: []int{4, 8}})
	for _, nodes := range []int{4, 8} {
		prev := 0.0
		for _, ratio := range []float64{0.5, 0.7, 0.9, 1.0} {
			p := wr.At(nodes, ratio)
			if p == nil {
				t.Fatalf("missing point %d/%v", nodes, ratio)
			}
			// Allow a small hump near ratio 1: offloading a sliver of work
			// to an otherwise-idle core can slightly beat pure-GPU while
			// the GPU remains the bottleneck.
			if p.Normalized < prev-0.05 {
				t.Errorf("%d nodes: efficiency not monotone in GPU ratio", nodes)
			}
			prev = p.Normalized
		}
		// Shifting half the work to one CPU core costs roughly half the
		// efficiency (the paper: a core is ~45-55% less efficient than
		// the SMs).
		if h := wr.At(nodes, 0.5).Normalized; h < 0.25 || h > 0.75 {
			t.Errorf("%d nodes: 50%% ratio efficiency %.2f outside the plausible band", nodes, h)
		}
	}
}

func TestTable4Shapes(t *testing.T) {
	c := Table4(Options{Scale: 0.05, Sizes: []int{4, 8}})
	for _, net := range []string{"1GbE", "10GbE"} {
		for _, nodes := range []int{4, 8} {
			cpu := c.Row("CPU", net, nodes)
			gpu := c.Row("GPU", net, nodes)
			both := c.Row("CPU+GPU", net, nodes)
			// The GPU version clearly beats the CPU version.
			if gpu.ThroughputGFLOPS < 1.5*cpu.ThroughputGFLOPS {
				t.Errorf("%s@%d: GPU %.1f GF vs CPU %.1f GF", net, nodes, gpu.ThroughputGFLOPS, cpu.ThroughputGFLOPS)
			}
			// Collocation adds throughput over either alone.
			if both.ThroughputGFLOPS < gpu.ThroughputGFLOPS {
				t.Errorf("%s@%d: collocated %.1f < GPU %.1f", net, nodes, both.ThroughputGFLOPS, gpu.ThroughputGFLOPS)
			}
			// And improves energy efficiency over the best single engine
			// (the paper reports ~1.5x).
			best := math.Max(cpu.MFLOPSPerWatt, gpu.MFLOPSPerWatt)
			if both.MFLOPSPerWatt < best {
				t.Errorf("%s@%d: collocated %.1f MF/W below best single %.1f", net, nodes, both.MFLOPSPerWatt, best)
			}
		}
	}
	// 10 GbE beats 1 GbE for every configuration at 8 nodes.
	for _, config := range []string{"CPU", "GPU", "CPU+GPU"} {
		if c.Row(config, "10GbE", 8).ThroughputGFLOPS < c.Row(config, "1GbE", 8).ThroughputGFLOPS {
			t.Errorf("%s: 10GbE slower than 1GbE", config)
		}
	}
}

func TestTable6AndFig8Shapes(t *testing.T) {
	cc := Table6(testOptions())

	// The communication/imbalance-bound group favours the single box...
	for _, name := range []string{"cg", "ft", "is"} {
		if r := cc.Row(name).NormRuntime; r > 0.95 {
			t.Errorf("%s: Cavium normalized runtime %.2f, want < 0.95", name, r)
		}
	}
	// ...the compute-shaped group favours the TX1 cluster, mg worst of all.
	for _, name := range []string{"bt", "ep", "mg", "sp"} {
		if r := cc.Row(name).NormRuntime; r < 1.5 {
			t.Errorf("%s: Cavium normalized runtime %.2f, want > 1.5", name, r)
		}
	}
	worst, worstName := 0.0, ""
	for _, r := range cc.Rows {
		if r.NormRuntime > worst {
			worst, worstName = r.NormRuntime, r.Workload
		}
	}
	if worstName != "mg" {
		t.Errorf("worst Cavium benchmark = %s, want mg (the paper's Fig. 8 standout)", worstName)
	}
	// mg shows the highest relative branch misprediction and speculative
	// instructions; ep the highest relative L2 miss ratio.
	for _, metric := range []string{"BR_MIS_PRED", "INST_SPEC"} {
		if cc.Row("mg").RelMetric(metric) < cc.Row("ft").RelMetric(metric) {
			t.Errorf("mg should out-%s ft", metric)
		}
	}
	if cc.Row("ep").RelMetric("LD_MISS_RATIO") <= cc.Row("cg").RelMetric("LD_MISS_RATIO") {
		t.Error("ep should have the elevated relative L2 miss ratio")
	}
	// PLS: three components suffice, and the top variables tell the
	// paper's story: branch speculation plus the memory hierarchy.
	if cc.Components95 > 3 {
		t.Errorf("PLS needs %d components for 95%%, paper finds 3", cc.Components95)
	}
	tops := strings.Join(cc.TopVariables, ",")
	if !strings.Contains(tops, "BR_MIS_PRED") && !strings.Contains(tops, "INST_SPEC") {
		t.Errorf("PLS top variables %v miss the branch story", cc.TopVariables)
	}
	if !strings.Contains(tops, "STALL_BACKEND") && !strings.Contains(tops, "LD_MISS_RATIO") &&
		!strings.Contains(tops, "L2D_CACHE_REFILL") {
		t.Errorf("PLS top variables %v miss the memory story", cc.TopVariables)
	}
}

func TestFig9Shapes(t *testing.T) {
	d := Fig9(testOptions())

	// Small TX1 clusters: slower but cheaper than 2x GTX 980 (class 1).
	for _, name := range []string{"hpl", "jacobi", "tealeaf3d"} {
		r := d.Row(name, 2)
		if r.NormRuntime < 1 {
			t.Errorf("%s@2: TX1 should not outrun 2 GTX 980s (%.2f)", name, r.NormRuntime)
		}
	}
	// Poor scalers burn more energy as nodes are added (class 2).
	if d.Row("tealeaf3d", 8).NormEnergy <= d.Row("tealeaf3d", 2).NormEnergy {
		t.Error("tealeaf3d energy should degrade with cluster size")
	}
	// The well-scaling AI workloads reach or beat the discrete system on
	// both axes at 8 nodes (class 3 / the paper's headline).
	for _, name := range []string{"alexnet", "googlenet"} {
		r := d.Row(name, 8)
		if r.NormRuntime > 1.05 {
			t.Errorf("%s@8: runtime vs GTX %.2f, want <= ~1", name, r.NormRuntime)
		}
		if r.NormEnergy > 1.0 {
			t.Errorf("%s@8: energy vs GTX %.2f, want < 1", name, r.NormEnergy)
		}
	}
	// Scalable workloads improve in runtime with size.
	for _, name := range []string{"hpl", "jacobi", "alexnet", "googlenet"} {
		if d.Row(name, 8).NormRuntime >= d.Row(name, 2).NormRuntime {
			t.Errorf("%s: no runtime improvement from 2 to 8 nodes", name)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	a := Fig10(testOptions())
	for _, name := range []string{"alexnet", "googlenet"} {
		// Speedup and CPU-cycle rate grow with cluster size.
		if a.Row(name, 8).Speedup <= a.Row(name, 2).Speedup {
			t.Errorf("%s: speedup not growing with nodes", name)
		}
		// At 8 nodes the scale-out system wins and leverages more CPU
		// cycles per second than the scale-up system (the Fig. 10 claim).
		if s := a.Row(name, 8).Speedup; s < 1.0 {
			t.Errorf("%s@8: speedup vs scale-up %.2f, want >= 1", name, s)
		}
		if c := a.Row(name, 8).NormCPUCyclesSec; c < 1.2 {
			t.Errorf("%s@8: CPU cycle rate ratio %.2f, want > 1.2", name, c)
		}
	}
}

func TestStaticTables(t *testing.T) {
	for name, s := range map[string]string{"I": Table1(), "V": Table5(), "VII": Table7()} {
		if len(s) == 0 {
			t.Errorf("Table %s empty", name)
		}
	}
	if !strings.Contains(Table5(), "96") || !strings.Contains(Table5(), "Cortex-A57") {
		t.Error("Table V missing the configurations")
	}
	if !strings.Contains(Table7(), "2048") {
		t.Error("Table VII missing the GTX 980 core count")
	}
	if !strings.Contains(Table1(), "hpl") || !strings.Contains(Table1(), "googlenet") {
		t.Error("Table I missing workloads")
	}
}

func TestWeakScalingShapes(t *testing.T) {
	ws := WeakScaling(Options{Scale: 0.05, Sizes: []int{2, 4, 8}})
	if len(ws.Rows) != 4 {
		t.Fatalf("%d rows", len(ws.Rows))
	}
	// Total throughput grows with the cluster...
	for i := 1; i < len(ws.Rows); i++ {
		if ws.Rows[i].ThroughputGFLOPS <= ws.Rows[i-1].ThroughputGFLOPS {
			t.Fatalf("throughput not growing at %d nodes", ws.Rows[i].Nodes)
		}
	}
	// ...and per-node efficiency holds far better than strong scaling
	// would at the same sizes (Tibidabo's regime).
	if eff := ws.Efficiency(); eff < 0.6 || eff > 1.2 {
		t.Fatalf("weak-scaling efficiency %.2f outside the plausible band", eff)
	}
}

func TestRelatedWorkShapes(t *testing.T) {
	rw := RelatedWorkCompare(Options{Scale: 0.05})
	if len(rw.Rows) != 4 {
		t.Fatalf("%d rows", len(rw.Rows))
	}
	// The 8-core X-Gene has a quarter of the ranks: it loses the
	// compute-shaped benchmarks to the cluster (its 2.4 GHz out-of-order
	// cores claw back most, but not all, of the 4x rank deficit).
	for _, name := range []string{"ep", "mg"} {
		if rw.Row(name).NormXGene < 1.05 {
			t.Errorf("%s: X-Gene/TX1 = %.2f, want the cluster ahead", name, rw.Row(name).NormXGene)
		}
	}
	// The communication-heavy benchmarks keep the single boxes closer (or
	// ahead), as in Table VI.
	if rw.Row("ft").NormCavium > 1 {
		t.Errorf("ft should favour the Cavium over the 1GbE cluster (got %.2f)", rw.Row("ft").NormCavium)
	}
	for _, r := range rw.Rows {
		if r.TX1Runtime <= 0 || r.CaviumRuntime <= 0 || r.XGeneRuntime <= 0 {
			t.Fatalf("%s: missing runtimes", r.Workload)
		}
	}
}

// Replay fidelity across real workloads: re-timing a traced run under its
// own network parameters must track the simulated runtime. The replay
// deliberately ignores port contention (DIMEMAS's L1 model), so
// contention-heavy runs (cg's 4-ranks-per-NIC exchanges) come back up to
// ~30% optimistic; everything else sits within ~15%.
func TestReplayIdentityAcrossWorkloads(t *testing.T) {
	for _, pair := range []struct {
		name string
		prof network.Profile
	}{
		{"jacobi", network.TenGigE},
		{"tealeaf3d", network.GigE},
		{"cg", network.TenGigE},
		{"bt", network.GigE},
	} {
		w, _ := workloads.ByName(pair.name)
		cfg := cluster.TX1Cluster(4, pair.prof)
		cfg.RanksPerNode = w.RanksPerNode()
		cfg.Traced = true
		if w.GPUAccelerated() {
			cfg.FileServer = true
		}
		res := cluster.New(cfg).Run(w.Body(workloads.Config{Scale: 0.04}))
		replayed := dimemas.Replay(res.Trace, dimemas.Options{Net: netModel(pair.prof)})
		ratio := replayed / res.Runtime
		if ratio < 0.6 || ratio > 1.2 {
			t.Errorf("%s on %s: identity replay ratio %.3f", pair.name, pair.prof.Name, ratio)
		}
	}
}

// The String renderers and aggregate helpers are part of the CLI surface;
// exercise them all on small runs.
func TestRenderersAndAggregates(t *testing.T) {
	o := Options{Scale: 0.04, Sizes: []int{2, 4}}
	nc := Fig1(o)
	if nc.String() == "" || nc.AverageSpeedup(4) <= 0 {
		t.Error("netchoice rendering/aggregates broken")
	}
	if nc.AverageSpeedup(99) != 0 || nc.AverageEnergyImprovement(99) != 0 {
		t.Error("missing sizes should aggregate to zero")
	}
	_ = nc.AverageEnergyImprovement(4)
	if Fig3(o).String() == "" {
		t.Error("traffic rendering broken")
	}
	if Table2(o).String() == "" {
		t.Error("roofline rendering broken")
	}
	s := Fig5(Options{Scale: 0.04, Sizes: []int{2, 4}})
	if s.String() == "" || s.AverageIdealNetGain() <= 0 || s.AverageIdealLBGain() <= 0 {
		t.Error("scaling rendering/aggregates broken")
	}
	for _, c := range s.Curves {
		if c.IdealLBGain(len(c.Nodes)-1) <= 0 {
			t.Error("LB gain helper broken")
		}
	}
	if Table3(o).String() == "" {
		t.Error("memmodels rendering broken")
	}
	if Fig7(Options{Scale: 0.04, Sizes: []int{2}}).String() == "" {
		t.Error("workratio rendering broken")
	}
	if Table4(Options{Scale: 0.04, Sizes: []int{2}}).String() == "" {
		t.Error("collocation rendering broken")
	}
	cc := Table6(o)
	if cc.String() == "" {
		t.Error("cavium rendering broken")
	}
	if Fig9(Options{Scale: 0.04, Sizes: []int{2}}).String() == "" {
		t.Error("discrete rendering broken")
	}
	if Fig10(Options{Scale: 0.04, Sizes: []int{2}}).String() == "" {
		t.Error("aibalance rendering broken")
	}
	if WeakScaling(Options{Scale: 0.04, Sizes: []int{2}}).String() == "" {
		t.Error("weak-scaling rendering broken")
	}
	if RelatedWorkCompare(Options{Scale: 0.04}).String() == "" {
		t.Error("related-work rendering broken")
	}
	def := DefaultOptions()
	if def.Scale <= 0 || len(def.Sizes) != 4 {
		t.Errorf("default options %+v", def)
	}
	// Missing-row lookups return nil rather than panicking.
	if nc.Row("nope", 2) != nil || Fig3(o).Point("nope", "1GbE") != nil ||
		cc.Row("nope") != nil {
		t.Error("missing-row lookups should be nil")
	}
}
