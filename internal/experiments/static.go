package experiments

import (
	"fmt"

	"clustersoc/internal/network"
	"clustersoc/internal/soc"
	"clustersoc/internal/units"
	"clustersoc/internal/workloads"
)

// tenGig is a tiny helper so the generators read like the paper.
func tenGig() network.Profile { return network.TenGigE }

// Table1 renders Table I: the GPGPU-accelerated workload summary, emitted
// from the same registry the simulator runs, so the documentation cannot
// drift from the models.
func Table1() string {
	desc := map[string][2]string{
		"hpl":        {"High Performance Linpack solving Ax=b", "N=20480"},
		"cloverleaf": {"Solves compressible Euler equations", "3840^2 cells, 500 steps"},
		"tealeaf2d":  {"Solves the linear heat conduction equation in 2D", "4096x4096 cells, 100 steps"},
		"tealeaf3d":  {"Solves the linear heat conduction equation in 3D", "256^3 cells, 50 steps"},
		"jacobi":     {"Solves Poisson equation on a rectangle", "matrix size 16384"},
		"alexnet":    {"Parallelized Caffe classifying ImageNet with AlexNet", "8192 images"},
		"googlenet":  {"Parallelized Caffe classifying ImageNet with GoogleNet", "8192 images"},
	}
	t := &table{header: []string{"tag", "description", "input size"}}
	for _, w := range workloads.GPUWorkloads() {
		d := desc[w.Name()]
		t.add(w.Name(), d[0], d[1])
	}
	return t.String()
}

// Table5 renders Table V: the many-core ARM server vs TX1 configuration,
// from the soc configs the simulator runs on.
func Table5() string {
	cav := soc.CaviumThunderX()
	tx := soc.JetsonTX1()
	t := &table{header: []string{"", "Cavium ThunderX", "NVIDIA TX1"}}
	t.add("ISA", cav.CPU.ISA, tx.CPU.ISA+" & PTX")
	t.add("tech", cav.CPU.ProcTech, tx.CPU.ProcTech)
	t.add("CPU cores", fmt.Sprintf("%d", cav.CPU.Cores), fmt.Sprintf("%d %s", tx.CPU.Cores, tx.CPU.Name))
	t.add("CPU freq", fmt.Sprintf("%.1f GHz", cav.CPU.FreqHz/units.GHz), fmt.Sprintf("%.2f GHz", tx.CPU.FreqHz/units.GHz))
	t.add("GPGPU", "-", fmt.Sprintf("%d Maxwell SM", tx.GPU.SMs))
	t.add("L1 (I/D)", fmtKB(cav.CPU.L1IBytes)+"/"+fmtKB(cav.CPU.L1DBytes), fmtKB(tx.CPU.L1IBytes)+"/"+fmtKB(tx.CPU.L1DBytes))
	t.add("L2 size", fmtMB(cav.CPU.L2Bytes), fmtMB(tx.CPU.L2Bytes))
	t.add("SoC TDP", fmt.Sprintf("%.0f W", cav.CPU.TDPWatts), fmt.Sprintf("%.0f W", tx.CPU.TDPWatts))
	return t.String()
}

// Table7 renders Table VII: the discrete vs integrated GPGPU configuration.
func Table7() string {
	gtx := soc.XeonGTX980()
	tx := soc.JetsonTX1()
	t := &table{header: []string{"", "MSI GTX 980", "NVIDIA TX1"}}
	t.add("cores", fmt.Sprintf("%d Maxwell SM", gtx.GPU.SMs), fmt.Sprintf("%d Maxwell SM", tx.GPU.SMs))
	t.add("CUDA cores", fmt.Sprintf("%d", gtx.GPU.Cores()), fmt.Sprintf("%d", tx.GPU.Cores()))
	t.add("GPGPU freq", fmt.Sprintf("%.1f GHz", gtx.GPU.FreqHz/units.GHz), fmt.Sprintf("%.3f GHz", tx.GPU.FreqHz/units.GHz))
	t.add("L2 size", fmtMB(gtx.GPU.L2Bytes), fmtMB(tx.GPU.L2Bytes))
	t.add("memory", "4 GB GDDR5", "4 GB LPDDR4 (shared)")
	t.add("mem bandwidth", units.Rate(gtx.GPU.MemBandwidth), units.Rate(tx.GPU.MemBandwidth))
	t.add("TDP", fmt.Sprintf("%.0f W", gtx.GPU.TDPWatts), fmt.Sprintf("%.0f W", tx.GPU.TDPWatts))
	return t.String()
}

func fmtKB(b float64) string { return fmt.Sprintf("%.0fKB", b/units.KiB) }
func fmtMB(b float64) string {
	if b >= units.MiB {
		return fmt.Sprintf("%.1fMB", b/units.MiB)
	}
	return fmtKB(b)
}
