package experiments

import (
	"clustersoc/internal/cluster"
	"clustersoc/internal/cuda"
	"clustersoc/internal/network"
	"clustersoc/internal/runner"
	"clustersoc/internal/workloads"
)

// MemModelRow is one Table III column group: jacobi under one CUDA
// memory-management model at one cluster size, normalized to the
// host-and-device model.
type MemModelRow struct {
	Nodes int
	Model cuda.MemModel

	Runtime          float64
	L2Utilization    float64
	L2ReadThroughput float64
	MemoryStalls     float64

	// Normalized values (relative to HostDevice at the same size).
	RuntimeNorm float64
	L2UtilNorm  float64
	L2ReadNorm  float64
	StallsNorm  float64
}

// MemModels holds Table III.
type MemModels struct {
	Rows []MemModelRow
}

// Table3 regenerates Table III: jacobi under the three CUDA memory
// management models on 1 node and 8 nodes, 10 GbE.
func Table3(o Options) *MemModels {
	sizes := []int{1, 8}
	models := []cuda.MemModel{cuda.HostDevice, cuda.ZeroCopy, cuda.Unified}
	var scenarios []runner.Scenario
	for _, nodes := range sizes {
		for _, model := range models {
			cfg := cluster.TX1Cluster(nodes, network.TenGigE)
			cfg.RanksPerNode = 1
			cfg.MemModel = model
			cfg.FileServer = true
			scenarios = append(scenarios, runner.Scenario{
				Cluster:  cfg,
				Workload: "jacobi",
				Config:   workloads.Config{Scale: o.scale()},
			})
		}
	}
	results := runAll(o, scenarios)
	out := &MemModels{}
	i := 0
	for _, nodes := range sizes {
		var base MemModelRow
		for _, model := range models {
			res := results[i]
			i++
			row := MemModelRow{
				Nodes:            nodes,
				Model:            model,
				Runtime:          res.Runtime,
				L2Utilization:    res.GPU.L2Utilization(),
				L2ReadThroughput: res.GPU.L2ReadThroughput(),
				MemoryStalls:     res.GPU.MemoryStallFraction(),
			}
			if model == cuda.HostDevice {
				base = row
			}
			norm := func(v, b float64) float64 {
				if b == 0 {
					return 0
				}
				return v / b
			}
			row.RuntimeNorm = norm(row.Runtime, base.Runtime)
			row.L2UtilNorm = norm(row.L2Utilization, base.L2Utilization)
			row.L2ReadNorm = norm(row.L2ReadThroughput, base.L2ReadThroughput)
			row.StallsNorm = norm(row.MemoryStalls, base.MemoryStalls)
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// Row returns the entry for (nodes, model), or nil.
func (m *MemModels) Row(nodes int, model cuda.MemModel) *MemModelRow {
	for i := range m.Rows {
		if m.Rows[i].Nodes == nodes && m.Rows[i].Model == model {
			return &m.Rows[i]
		}
	}
	return nil
}

// String renders Table III (normalized to H & D, as the paper prints it).
func (m *MemModels) String() string {
	t := &table{header: []string{"nodes", "model", "runtime", "L2 usage", "L2 read thpt", "memory stalls"}}
	for _, r := range m.Rows {
		t.add(f1(float64(r.Nodes)), r.Model.String(), f2(r.RuntimeNorm), f2(r.L2UtilNorm), f2(r.L2ReadNorm), f2(r.StallsNorm))
	}
	return t.String()
}
