package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"clustersoc/internal/faults"
	"clustersoc/internal/runner"
)

// A zero-value (non-nil but disabled) fault plan attached to every scenario
// must reproduce the seed artifacts byte for byte: the disabled path builds
// no injector, draws no randomness, and attaches no Faults block to any
// result. This pins the "plan off = bit-identical" half of the injection
// plane's contract at full-artifact granularity.
func TestZeroFaultPlanPreservesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every artifact")
	}
	o := DefaultOptions()
	o.Scale = 0.04
	o.Runner = runner.New(4)
	o.Faults = &faults.Plan{}

	var got bytes.Buffer
	if err := WriteArtifactsJSON(&got, Artifacts(o)); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "artifacts-scale0.04.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		gl := bytes.Split(got.Bytes(), []byte("\n"))
		wl := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("zero fault plan changed artifact JSON at line %d:\n got: %s\nwant: %s",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("zero fault plan changed artifact JSON length: got %d bytes, golden %d", got.Len(), len(want))
	}
}
