package experiments

import (
	"clustersoc/internal/dimemas"
	"clustersoc/internal/network"
	"clustersoc/internal/runner"
	"clustersoc/internal/stats"
	"clustersoc/internal/workloads"
)

// netModel converts a NIC profile into the DIMEMAS-style replay network.
func netModel(prof network.Profile) dimemas.NetworkModel {
	return dimemas.NetworkModel{
		Name:           prof.Name,
		Bandwidth:      prof.Throughput,
		Latency:        prof.Latency,
		IntraBandwidth: network.MemoryPathBandwidth,
		IntraLatency:   network.MemoryPathLatency,
	}
}

// ScalingCurve is one workload's strong-scaling study (Fig. 5 / Fig. 6).
type ScalingCurve struct {
	Workload string
	Nodes    []int

	// Measured runtimes per size and network.
	Runtime1G  []float64
	Runtime10G []float64
	// Replayed runtimes from the 10 GbE traces.
	IdealNet []float64
	IdealLB  []float64

	// Efficiency decomposition per size (from the 10 GbE traces).
	Eff []dimemas.Efficiency

	// Fitted runtime models T(P) = a + b/P + c ln P.
	Fit1G, Fit10G stats.ScalingFit
}

// Speedup10G returns measured speedup at the i-th size vs one node.
func (s *ScalingCurve) Speedup10G(i int) float64 { return s.Runtime10G[0] / s.Runtime10G[i] }

// IdealNetGain returns the ideal-network replay improvement at the i-th
// size (the paper reports the average and the hpl/tealeaf3d extremes).
func (s *ScalingCurve) IdealNetGain(i int) float64 { return s.Runtime10G[i] / s.IdealNet[i] }

// IdealLBGain returns the ideal-load-balance replay improvement.
func (s *ScalingCurve) IdealLBGain(i int) float64 { return s.Runtime10G[i] / s.IdealLB[i] }

// Scaling holds Fig. 5 (GPU workloads) or Fig. 6 (NPB).
type Scaling struct {
	Curves []*ScalingCurve
	// ExtrapolateTo is the largest node count the fitted curves are
	// extrapolated to (the paper extrapolates well past the 8 measured).
	ExtrapolateTo int
}

// scalingFor runs the study for a set of workloads. Per workload and
// size it needs two runs: the 1 GbE measurement (the Fig. 1 scenarios at
// the shared sweep sizes) and a traced 10 GbE run feeding the
// DIMEMAS-style replays.
func scalingFor(ws []workloads.Workload, o Options) *Scaling {
	sizes := append([]int{1}, o.sizes()...)
	var scenarios []runner.Scenario
	for _, w := range ws {
		for _, n := range sizes {
			traced := tx1Scenario(w, n, network.TenGigE, o.scale())
			traced.Cluster.Traced = true
			scenarios = append(scenarios, tx1Scenario(w, n, network.GigE, o.scale()), traced)
		}
	}
	res := runAll(o, scenarios)
	out := &Scaling{ExtrapolateTo: 64}
	i := 0
	for _, w := range ws {
		c := &ScalingCurve{Workload: w.Name(), Nodes: sizes}
		for range sizes {
			r1, r10 := res[i], res[i+1]
			i += 2
			c.Runtime1G = append(c.Runtime1G, r1.Runtime)
			c.Runtime10G = append(c.Runtime10G, r10.Runtime)

			tr := r10.Trace
			c.IdealNet = append(c.IdealNet, dimemas.Replay(tr, dimemas.Options{Net: dimemas.IdealNetwork}))
			c.IdealLB = append(c.IdealLB, dimemas.Replay(tr, dimemas.Options{
				Net:              netModel(network.TenGigE),
				IdealLoadBalance: true,
			}))
			c.Eff = append(c.Eff, dimemas.Decompose(tr))
		}
		c.Fit1G, _ = stats.FitScaling(sizes, c.Runtime1G)
		c.Fit10G, _ = stats.FitScaling(sizes, c.Runtime10G)
		out.Curves = append(out.Curves, c)
	}
	return out
}

// Fig5 regenerates the GPGPU scalability study (hpl, jacobi, cloverleaf,
// tealeaf2d, tealeaf3d; alexnet/googlenet are excluded because they do
// not communicate to solve a problem — Sec. III-B.4).
func Fig5(o Options) *Scaling {
	var ws []workloads.Workload
	for _, name := range []string{"hpl", "jacobi", "cloverleaf", "tealeaf2d", "tealeaf3d"} {
		w, _ := workloads.ByName(name)
		ws = append(ws, w)
	}
	return scalingFor(ws, o)
}

// Fig6 regenerates the NPB scalability study.
func Fig6(o Options) *Scaling {
	return scalingFor(workloads.NPBWorkloads(), o)
}

// Curve returns a workload's curve, or nil.
func (s *Scaling) Curve(name string) *ScalingCurve {
	for _, c := range s.Curves {
		if c.Workload == name {
			return c
		}
	}
	return nil
}

// AverageR2 returns the mean r-squared of the 10 GbE fits (the paper
// reports 0.98-ish averages for its fits).
func (s *Scaling) AverageR2() float64 {
	sum := 0.0
	for _, c := range s.Curves {
		sum += c.Fit10G.R2
	}
	return sum / float64(len(s.Curves))
}

// AverageIdealNetGain returns the mean ideal-network improvement at the
// largest measured size.
func (s *Scaling) AverageIdealNetGain() float64 {
	sum := 0.0
	last := 0
	for _, c := range s.Curves {
		last = len(c.Nodes) - 1
		sum += c.IdealNetGain(last)
	}
	_ = last
	return sum / float64(len(s.Curves))
}

// AverageIdealLBGain returns the mean ideal-load-balance improvement at
// the largest measured size.
func (s *Scaling) AverageIdealLBGain() float64 {
	sum := 0.0
	for _, c := range s.Curves {
		sum += c.IdealLBGain(len(c.Nodes) - 1)
	}
	return sum / float64(len(s.Curves))
}

// String renders the study.
func (s *Scaling) String() string {
	t := &table{header: []string{"workload", "speedup@8(10G)", "extrap@64", "idealNet gain", "idealLB gain", "LB", "Ser", "Trf", "r2"}}
	for _, c := range s.Curves {
		last := len(c.Nodes) - 1
		e := c.Eff[last]
		t.add(c.Workload,
			f2(c.Speedup10G(last)),
			f2(c.Fit10G.Speedup(s.ExtrapolateTo)),
			f2(c.IdealNetGain(last)),
			f2(c.IdealLBGain(last)),
			f2(e.LB), f2(e.Ser), f2(e.Trf), f2(c.Fit10G.R2))
	}
	return t.String()
}
