package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"clustersoc/internal/runner"
)

// TestArtifactsByteIdenticalToGolden regenerates the full cmd/experiments
// artifact set and requires the JSON encoding to be byte-identical to the
// checked-in golden file, which was captured from the seed engine. This is
// the regression net under every engine/perf PR: optimizations must not
// move a single simulated number. Refresh deliberately with
// UPDATE_GOLDEN=1 go test ./internal/experiments -run Golden
// after a change that intentionally alters results.
func TestArtifactsByteIdenticalToGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every artifact")
	}
	o := DefaultOptions()
	o.Scale = 0.04
	o.Runner = runner.New(4)

	var got bytes.Buffer
	if err := WriteArtifactsJSON(&got, Artifacts(o)); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "artifacts-scale0.04.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, got.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		// Find the first divergent line for a usable failure message.
		gl := bytes.Split(got.Bytes(), []byte("\n"))
		wl := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("artifact JSON diverges from golden at line %d:\n got: %s\nwant: %s",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("artifact JSON length changed: got %d bytes, golden %d", got.Len(), len(want))
	}
}
