package experiments

import (
	"math"

	"clustersoc/internal/network"
	"clustersoc/internal/roofline"
	"clustersoc/internal/runner"
	"clustersoc/internal/soc"
	"clustersoc/internal/workloads"
)

// tx1RooflineModel builds the extended-roofline model for one TX1 node
// under a NIC profile. Single-precision workloads (the AI codes) see the
// FP32 roof; the scientific codes the FP64 roof.
func tx1RooflineModel(prof network.Profile, singlePrecision bool) roofline.Model {
	node := soc.JetsonTX1()
	peak := node.GPU.PeakFP64()
	if singlePrecision {
		peak = node.GPU.PeakFP32()
	}
	return roofline.Model{
		Name:         "TX1 + " + prof.Name,
		PeakFlops:    peak,
		MemBandwidth: node.GPU.MemBandwidth,
		NetBandwidth: prof.Throughput,
	}
}

// RooflineRow is one Table II row under one network.
type RooflineRow struct {
	Workload string
	Network  string
	roofline.Analysis
}

// Roofline holds Table II plus the Fig. 4 roof series.
type Roofline struct {
	Rows []RooflineRow
	// Series1G and Series10G sample the memory/compute roof (identical
	// curve; the network changes only the per-workload ceilings).
	Series1G, Series10G []roofline.SeriesPoint
	// Ceilings are the per-workload network roofs for Fig. 4's dashed
	// lines, keyed by workload then network name.
	Ceilings map[string]map[string]float64
}

// Table2 regenerates Table II and the Fig. 4 data: the extended-roofline
// placement of every GPGPU workload at 8 nodes under both NICs. The runs
// are the same scenarios Fig. 1 and Fig. 3 submit, so a shared run-plane
// serves the whole table from cache.
func Table2(o Options) *Roofline {
	const nodes = 8
	type key struct {
		w    workloads.Workload
		prof network.Profile
	}
	var keys []key
	var scenarios []runner.Scenario
	for _, w := range workloads.GPUWorkloads() {
		for _, prof := range []network.Profile{network.GigE, network.TenGigE} {
			keys = append(keys, key{w, prof})
			scenarios = append(scenarios, tx1Scenario(w, nodes, prof, o.scale()))
		}
	}
	results := runAll(o, scenarios)
	out := &Roofline{Ceilings: map[string]map[string]float64{}}
	for i, k := range keys {
		w, prof, res := k.w, k.prof, results[i]
		single := w.Name() == "alexnet" || w.Name() == "googlenet"
		model := tx1RooflineModel(prof, single)
		pt := roofline.Point{
			Name:       w.Name(),
			FLOPs:      res.FLOPs / nodes,
			DRAMBytes:  res.DRAMBytes / nodes,
			NetBytes:   res.NetBytes / nodes,
			Throughput: res.Throughput / nodes,
		}
		out.Rows = append(out.Rows, RooflineRow{
			Workload: w.Name(),
			Network:  prof.Name,
			Analysis: model.Analyze(pt),
		})
		if out.Ceilings[w.Name()] == nil {
			out.Ceilings[w.Name()] = map[string]float64{}
		}
		out.Ceilings[w.Name()][prof.Name] = model.NetworkCeiling(pt.NI())
	}
	m1 := tx1RooflineModel(network.GigE, false)
	m10 := tx1RooflineModel(network.TenGigE, false)
	out.Series1G = m1.MemorySeries(0.01, 100, 64)
	out.Series10G = m10.MemorySeries(0.01, 100, 64)
	return out
}

// Row returns the entry for (workload, network), or nil.
func (rf *Roofline) Row(name, net string) *RooflineRow {
	for i := range rf.Rows {
		if rf.Rows[i].Workload == name && rf.Rows[i].Network == net {
			return &rf.Rows[i]
		}
	}
	return nil
}

// String renders Table II.
func (rf *Roofline) String() string {
	t := &table{header: []string{"benchmark", "net", "OI(F/B)", "NI(F/B)", "GFLOPS/node", "%peak", "limit"}}
	for _, r := range rf.Rows {
		ni := "inf"
		if !math.IsInf(r.NI, 1) {
			ni = f1(r.NI)
		}
		t.add(r.Workload, r.Network, f2(r.OI), ni, f2(r.Throughput/1e9), f1(r.PercentOfPeak), string(r.Limit))
	}
	return t.String()
}
