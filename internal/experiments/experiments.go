// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated testbed. Each generator returns structured
// rows (and can render itself as text), and is exercised by
// cmd/experiments, the top-level benchmarks, and the integration tests.
//
// DESIGN.md carries the experiment index; EXPERIMENTS.md records the
// paper-vs-measured comparison produced from these generators.
package experiments

import (
	"fmt"
	"strings"

	"clustersoc/internal/cluster"
	"clustersoc/internal/faults"
	"clustersoc/internal/network"
	"clustersoc/internal/runner"
	"clustersoc/internal/workloads"
)

// Options tunes how heavy the regeneration is.
type Options struct {
	// Scale is the problem scale passed to every workload (1 = paper
	// size). The default used by the CLI and benches is 0.08: shapes are
	// scale-invariant (see workloads), runs are ~12x cheaper.
	Scale float64
	// Sizes are the cluster sizes swept (paper: 2, 4, 6, 8).
	Sizes []int
	// Runner is the scenario run-plane the generators submit to. Sharing
	// one Runner across generators dedupes identical simulations between
	// artifacts (Fig. 3 and Table II re-place the Fig. 1 runs; Fig. 9
	// re-sweeps them; Table VI re-runs the NPB set) and, with more than
	// one worker, runs independent scenarios concurrently. Nil means a
	// private sequential runner per generator call — the seed behaviour.
	Runner *runner.Runner
	// Faults attaches a fault plan to every scenario the generators
	// declare. A nil or zero (disabled) plan reproduces the fault-free
	// artifacts byte-for-byte; the Faults generator builds its own plans
	// and ignores this field.
	Faults *faults.Plan
}

// DefaultOptions returns the standard regeneration settings.
func DefaultOptions() Options {
	return Options{Scale: 0.08, Sizes: []int{2, 4, 6, 8}}
}

func (o Options) scale() float64 {
	if o.Scale <= 0 || o.Scale > 1 {
		return 0.08
	}
	return o.Scale
}

func (o Options) sizes() []int {
	if len(o.Sizes) == 0 {
		return []int{2, 4, 6, 8}
	}
	return o.Sizes
}

func (o Options) runner() *runner.Runner {
	if o.Runner != nil {
		return o.Runner
	}
	return runner.New(1)
}

// runAll submits a generator's declared scenario set to the run-plane,
// attaching the Options-level fault plan (if any) to every scenario —
// the plan participates in the cluster fingerprint, so faulted and
// fault-free variants of one run never collide in the cache. Every
// scenario references registry workloads, so an error is a programming
// bug, not an input condition.
func runAll(o Options, scenarios []runner.Scenario) []runner.Result {
	if o.Faults != nil {
		for i := range scenarios {
			scenarios[i].Cluster.Faults = o.Faults
		}
	}
	res, err := o.runner().RunAll(scenarios)
	if err != nil {
		panic(fmt.Sprintf("experiments: scenario failed: %v", err))
	}
	return res
}

// tx1Scenario declares the figures' standard run: one workload on an
// n-node TX1 cluster with the given NIC (GPU codes get the file server,
// as in the paper's testbed).
func tx1Scenario(w workloads.Workload, n int, prof network.Profile, scale float64) runner.Scenario {
	cfg := cluster.TX1Cluster(n, prof)
	cfg.RanksPerNode = w.RanksPerNode()
	if w.GPUAccelerated() {
		cfg.FileServer = true
	}
	return runner.Scenario{Cluster: cfg, Workload: w.Name(), Config: workloads.Config{Scale: scale}}
}

// StandardScenario declares the canonical TX1 run the figure generators
// declare for (workload, nodes, NIC, scale) — same fingerprint, so a
// store warmed by one artifact regeneration serves any front end
// (cmd/simd, the test suites) requesting the same scenario.
func StandardScenario(workload string, nodes int, prof network.Profile, scale float64) (runner.Scenario, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return runner.Scenario{}, err
	}
	return tx1Scenario(w, nodes, prof, scale), nil
}

// TracedScenario declares a workload's standard TX1 run with trace
// recording enabled — the scenario behind cmd/experiments -trace-out.
// Traced participates in the cluster fingerprint, so it never collides
// with the figures' untraced runs in the run-plane cache.
func TracedScenario(o Options, workload string, nodes int, prof network.Profile) (runner.Scenario, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return runner.Scenario{}, err
	}
	s := tx1Scenario(w, nodes, prof, o.scale())
	s.Cluster.Traced = true
	return s, nil
}

// allWorkloads returns the paper's Fig. 1/2 x-axis: the seven GPGPU codes
// followed by the NPB suite.
func allWorkloads() []workloads.Workload {
	return append(workloads.GPUWorkloads(), workloads.NPBWorkloads()...)
}

// table is a tiny text-table builder shared by the generators' String
// methods.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
