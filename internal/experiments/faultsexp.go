package experiments

import (
	"fmt"

	"clustersoc/internal/cluster"
	"clustersoc/internal/faults"
	"clustersoc/internal/network"
	"clustersoc/internal/runner"
	"clustersoc/internal/workloads"
)

// The fault study extends the paper's failure-free evaluation with the
// resilience question its premise raises: commodity SoC boards, PCIe-slot
// NICs, and unmanaged switches fail and straggle far more than the
// server-class machines they displace (the pain point the Arm-testbed
// experience reports call out). It answers two things on the simulated
// 8-node TX1 10 GbE cluster running jacobi:
//
//  1. how much each fault class alone costs (straggler node, degraded
//     link, link flaps, message loss, crash+restart), and
//  2. where the checkpoint-interval sweet spot sits for the crash model,
//     compared against the Young/Daly first-order optimum
//     sqrt(2 C MTBF).
//
// All fault parameters derive from the baseline (fault-free) runtime T,
// so the study is meaningful at any -scale.

// FaultSeed is the study's fixed plan seed: the point is a reproducible
// fault universe, not a fault distribution sweep.
const FaultSeed = 42

// FaultClassRow is one fault class's cost relative to the baseline.
type FaultClassRow struct {
	Class    string
	Runtime  float64
	Slowdown float64 // runtime / fault-free runtime
	Stats    faults.Stats
}

// CheckpointRow is one point of the checkpoint-interval sweep.
type CheckpointRow struct {
	Label           string
	Interval        float64 // seconds between checkpoints; 0 = never
	Runtime         float64
	Slowdown        float64
	Checkpoints     uint64
	OverheadSeconds float64 // time spent taking checkpoints
	ReworkSeconds   float64 // lost work redone after crashes
}

// FaultStudy holds both parts of the study.
type FaultStudy struct {
	Workload        string
	Nodes           int
	BaselineRuntime float64
	Classes         []FaultClassRow
	DalyInterval    float64 // Young/Daly optimum for the sweep's crash plan
	Sweep           []CheckpointRow
}

// faultScenario is the study's fixed subject with one plan attached.
func faultScenario(o Options, plan *faults.Plan) runner.Scenario {
	w, err := workloads.ByName("jacobi")
	if err != nil {
		panic(err)
	}
	cfg := cluster.TX1Cluster(8, network.TenGigE)
	cfg.RanksPerNode = w.RanksPerNode()
	cfg.FileServer = true
	cfg.Faults = plan
	return runner.Scenario{Cluster: cfg, Workload: w.Name(), Config: workloads.Config{Scale: o.scale()}}
}

// Faults runs the fault-injection study. It ignores Options.Faults — the
// study builds its own plans around the measured baseline.
func Faults(o Options) *FaultStudy {
	base := runAll(Options{Scale: o.Scale, Runner: o.Runner}, []runner.Scenario{faultScenario(o, nil)})[0]
	T := base.Runtime
	st := &FaultStudy{Workload: "jacobi", Nodes: 8, BaselineRuntime: T}

	// The crash model shared by the class matrix and the sweep: each node
	// crashes about once per two fault-free runtimes (a handful of
	// crashes per 8-node run), a restart costs 2.5% of the run, a
	// checkpoint 0.5%. MTBF well above the checkpoint cost keeps the
	// interval sweep's optimum interior — crash-dominated regimes
	// degenerate to "checkpoint constantly".
	crash := faults.Plan{
		Seed:               FaultSeed,
		CrashMTBF:          2 * T,
		RestartSeconds:     T / 40,
		CheckpointSeconds:  T / 200,
		CheckpointInterval: faults.OptimalInterval(T/200, 2*T),
	}
	st.DalyInterval = crash.CheckpointInterval

	classes := []struct {
		name string
		plan faults.Plan
	}{
		{"straggler", faults.Plan{Seed: FaultSeed, StragglerFraction: 0.25, StragglerFactor: 1.5}},
		{"link-derate", faults.Plan{Seed: FaultSeed, DerateFraction: 0.25, LinkDerate: 0.4}},
		{"link-flaps", faults.Plan{Seed: FaultSeed, FlapMTBF: T / 5, FlapSeconds: T / 200}},
		{"msg-loss", faults.Plan{Seed: FaultSeed, MessageLossProb: 0.01}},
		{"crash+ckpt", crash},
	}
	var scenarios []runner.Scenario
	for i := range classes {
		scenarios = append(scenarios, faultScenario(o, &classes[i].plan))
	}
	results := runAll(Options{Scale: o.Scale, Runner: o.Runner}, scenarios)
	for i, c := range classes {
		res := results[i]
		row := FaultClassRow{Class: c.name, Runtime: res.Runtime, Slowdown: res.Runtime / T}
		if res.Faults != nil {
			row.Stats = *res.Faults
		}
		st.Classes = append(st.Classes, row)
	}

	// Checkpoint-interval sweep under the crash plan: never, a geometric
	// ladder of fractions of the run, and the Daly optimum.
	type point struct {
		label    string
		interval float64
	}
	points := []point{{"none", 0}}
	for _, div := range []float64{64, 32, 16, 8, 4, 2} {
		points = append(points, point{fmt.Sprintf("T/%.0f", div), T / div})
	}
	points = append(points, point{"daly", st.DalyInterval})
	scenarios = scenarios[:0]
	plans := make([]faults.Plan, len(points))
	for i, pt := range points {
		plans[i] = crash
		plans[i].CheckpointInterval = pt.interval
		scenarios = append(scenarios, faultScenario(o, &plans[i]))
	}
	results = runAll(Options{Scale: o.Scale, Runner: o.Runner}, scenarios)
	for i, pt := range points {
		res := results[i]
		row := CheckpointRow{
			Label:    pt.label,
			Interval: pt.interval,
			Runtime:  res.Runtime,
			Slowdown: res.Runtime / T,
		}
		if res.Faults != nil {
			row.Checkpoints = res.Faults.Checkpoints
			row.OverheadSeconds = res.Faults.CheckpointOverheadSeconds
			row.ReworkSeconds = res.Faults.ReworkSeconds
		}
		st.Sweep = append(st.Sweep, row)
	}
	return st
}

// BestInterval returns the sweep label with the lowest runtime.
func (st *FaultStudy) BestInterval() string {
	best, bestRT := "", 0.0
	for _, r := range st.Sweep {
		if best == "" || r.Runtime < bestRT {
			best, bestRT = r.Label, r.Runtime
		}
	}
	return best
}

// String renders both tables.
func (st *FaultStudy) String() string {
	t := &table{header: []string{"fault class", "runtime(s)", "slowdown", "detail"}}
	for _, r := range st.Classes {
		detail := ""
		switch r.Class {
		case "straggler":
			detail = fmt.Sprintf("%d straggler node(s)", r.Stats.StragglerNodes)
		case "link-derate":
			detail = fmt.Sprintf("%d derated link(s)", r.Stats.DeratedNodes)
		case "link-flaps":
			detail = fmt.Sprintf("%d delayed booking(s), %.3fs delay", r.Stats.LinkDownDelays, r.Stats.LinkDownDelaySeconds)
		case "msg-loss":
			detail = fmt.Sprintf("%d lost msg(s), %.0f B retransmitted", r.Stats.LostMessages, r.Stats.RetransmittedBytes)
		case "crash+ckpt":
			detail = fmt.Sprintf("%d crash(es), %d checkpoint(s)", r.Stats.Crashes, r.Stats.Checkpoints)
		}
		t.add(r.Class, f2(r.Runtime), f2(r.Slowdown), detail)
	}
	s := fmt.Sprintf("fault classes on %d-node TX1 10GbE %s (baseline %.2fs, seed %d):\n%s",
		st.Nodes, st.Workload, st.BaselineRuntime, FaultSeed, t.String())

	t = &table{header: []string{"ckpt interval", "seconds", "runtime(s)", "slowdown", "ckpts", "overhead(s)", "rework(s)"}}
	for _, r := range st.Sweep {
		t.add(r.Label, f2(r.Interval), f2(r.Runtime), f2(r.Slowdown),
			fmt.Sprintf("%d", r.Checkpoints), f2(r.OverheadSeconds), f2(r.ReworkSeconds))
	}
	return s + fmt.Sprintf("\ncheckpoint-interval sweep (Daly optimum %.2fs, best: %s):\n%s",
		st.DalyInterval, st.BestInterval(), t.String())
}
