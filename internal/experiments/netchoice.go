package experiments

import (
	"clustersoc/internal/network"
	"clustersoc/internal/runner"
	"clustersoc/internal/units"
	"clustersoc/internal/workloads"
)

// NetRow is one workload at one cluster size under both networks — the
// data behind Figs. 1 and 2.
type NetRow struct {
	Workload string
	GPU      bool
	Nodes    int

	Runtime1G  float64
	Runtime10G float64
	Energy1G   float64
	Energy10G  float64
}

// Speedup returns the Fig. 1 value: runtime(1G) / runtime(10G).
func (r NetRow) Speedup() float64 { return r.Runtime1G / r.Runtime10G }

// EnergyRatio returns the Fig. 2 value: energy(10G) / energy(1G); below 1
// means the 10 GbE card pays for itself.
func (r NetRow) EnergyRatio() float64 { return r.Energy10G / r.Energy1G }

// NetworkChoice runs every workload at every cluster size under 1 GbE and
// 10 GbE (Sec. III-B.1).
type NetworkChoice struct {
	Rows []NetRow
}

// Fig1 regenerates Figures 1 and 2 (they share the runs). The scenario
// set — every workload at every size under both NICs — is declared up
// front and submitted to the run-plane as one batch.
func Fig1(o Options) *NetworkChoice {
	type key struct {
		w workloads.Workload
		n int
	}
	var keys []key
	var scenarios []runner.Scenario
	for _, w := range allWorkloads() {
		for _, n := range o.sizes() {
			keys = append(keys, key{w, n})
			scenarios = append(scenarios,
				tx1Scenario(w, n, network.GigE, o.scale()),
				tx1Scenario(w, n, network.TenGigE, o.scale()))
		}
	}
	res := runAll(o, scenarios)
	out := &NetworkChoice{}
	for i, k := range keys {
		r1, r10 := res[2*i], res[2*i+1]
		out.Rows = append(out.Rows, NetRow{
			Workload:   k.w.Name(),
			GPU:        k.w.GPUAccelerated(),
			Nodes:      k.n,
			Runtime1G:  r1.Runtime,
			Runtime10G: r10.Runtime,
			Energy1G:   r1.EnergyJoules,
			Energy10G:  r10.EnergyJoules,
		})
	}
	return out
}

// AverageSpeedup returns the mean Fig. 1 speedup at one cluster size.
func (nc *NetworkChoice) AverageSpeedup(nodes int) float64 {
	sum, cnt := 0.0, 0
	for _, r := range nc.Rows {
		if r.Nodes == nodes {
			sum += r.Speedup()
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// AverageEnergyImprovement returns the mean (1 - energy ratio) at one
// cluster size: the paper reports ~X% energy-efficiency improvement at 8
// nodes.
func (nc *NetworkChoice) AverageEnergyImprovement(nodes int) float64 {
	sum, cnt := 0.0, 0
	for _, r := range nc.Rows {
		if r.Nodes == nodes {
			sum += 1 - r.EnergyRatio()
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// Row returns the entry for a workload at a size, or nil.
func (nc *NetworkChoice) Row(name string, nodes int) *NetRow {
	for i := range nc.Rows {
		if nc.Rows[i].Workload == name && nc.Rows[i].Nodes == nodes {
			return &nc.Rows[i]
		}
	}
	return nil
}

// String renders the Fig. 1 + Fig. 2 data as a table.
func (nc *NetworkChoice) String() string {
	t := &table{header: []string{"workload", "nodes", "speedup(10G/1G)", "energy(10G/1G)"}}
	for _, r := range nc.Rows {
		t.add(r.Workload, f1(float64(r.Nodes)), f2(r.Speedup()), f2(r.EnergyRatio()))
	}
	return t.String()
}

// TrafficPoint is one point of the Fig. 3 scatter: average per-node DRAM
// and network traffic for a GPGPU workload under one NIC, on 8 nodes.
type TrafficPoint struct {
	Workload string
	Network  string
	// Rates are per node, bytes/second, as the paper plots them.
	DRAMRate float64
	NetRate  float64
}

// Traffic holds Fig. 3.
type Traffic struct {
	Points []TrafficPoint
}

// Fig3 regenerates the DRAM-vs-network traffic scatter (8 nodes, both
// NICs, GPGPU workloads). Every scenario duplicates a Fig. 1 run: with a
// shared run-plane the whole figure comes from the cache.
func Fig3(o Options) *Traffic {
	const nodes = 8
	type key struct {
		w    workloads.Workload
		prof network.Profile
	}
	var keys []key
	var scenarios []runner.Scenario
	for _, w := range workloads.GPUWorkloads() {
		for _, prof := range []network.Profile{network.GigE, network.TenGigE} {
			keys = append(keys, key{w, prof})
			scenarios = append(scenarios, tx1Scenario(w, nodes, prof, o.scale()))
		}
	}
	res := runAll(o, scenarios)
	out := &Traffic{}
	for i, k := range keys {
		out.Points = append(out.Points, TrafficPoint{
			Workload: k.w.Name(),
			Network:  k.prof.Name,
			DRAMRate: res[i].DRAMTrafficRate() / nodes,
			NetRate:  res[i].NetTrafficRate() / nodes,
		})
	}
	return out
}

// Point returns the entry for (workload, network name), or nil.
func (tr *Traffic) Point(name, net string) *TrafficPoint {
	for i := range tr.Points {
		if tr.Points[i].Workload == name && tr.Points[i].Network == net {
			return &tr.Points[i]
		}
	}
	return nil
}

// String renders Fig. 3's points.
func (tr *Traffic) String() string {
	t := &table{header: []string{"workload", "network", "DRAM/node", "net/node"}}
	for _, p := range tr.Points {
		t.add(p.Workload, p.Network, units.Rate(p.DRAMRate), units.Rate(p.NetRate))
	}
	return t.String()
}
