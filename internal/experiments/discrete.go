package experiments

import (
	"clustersoc/internal/cluster"
	"clustersoc/internal/runner"
	"clustersoc/internal/workloads"
)

// gtx980Scenario declares the discrete-GPU baseline run: a workload on n
// Xeon-hosted GTX 980 nodes with the file server attached.
func gtx980Scenario(w workloads.Workload, n int, scale float64) runner.Scenario {
	cfg := cluster.GTX980Cluster(n)
	cfg.FileServer = true
	return runner.Scenario{Cluster: cfg, Workload: w.Name(), Config: workloads.Config{Scale: scale}}
}

// DiscreteRow is one Fig. 9 point: a GPGPU workload on a TX1 cluster of
// some size, normalized to the 2x GTX 980 discrete cluster.
type DiscreteRow struct {
	Workload string
	Nodes    int

	NormRuntime float64 // TX1 / GTX (x-axis; < 1: TX1 faster)
	NormEnergy  float64 // TX1 / GTX (y-axis; < 1: TX1 cheaper)
}

// Discrete holds Fig. 9.
type Discrete struct {
	Rows []DiscreteRow
	// GTXRuntime and GTXEnergy index the 2-card baseline by workload.
	GTXRuntime map[string]float64
	GTXEnergy  map[string]float64
}

// Fig9 regenerates the discrete-GPGPU comparison: every GPGPU workload on
// TX1 clusters of 2-8 nodes, normalized to two GTX 980 hosts. Both
// clusters sit on 10 GbE and roughly the same wall power (Sec. IV-B).
func Fig9(o Options) *Discrete {
	gpu := workloads.GPUWorkloads()
	var scenarios []runner.Scenario
	for _, w := range gpu {
		scenarios = append(scenarios, gtx980Scenario(w, 2, o.scale()))
		for _, nodes := range o.sizes() {
			scenarios = append(scenarios, tx1Scenario(w, nodes, tenGig(), o.scale()))
		}
	}
	res := runAll(o, scenarios)
	out := &Discrete{GTXRuntime: map[string]float64{}, GTXEnergy: map[string]float64{}}
	i := 0
	for _, w := range gpu {
		g := res[i]
		i++
		out.GTXRuntime[w.Name()] = g.Runtime
		out.GTXEnergy[w.Name()] = g.EnergyJoules
		for _, nodes := range o.sizes() {
			r := res[i]
			i++
			out.Rows = append(out.Rows, DiscreteRow{
				Workload:    w.Name(),
				Nodes:       nodes,
				NormRuntime: r.Runtime / g.Runtime,
				NormEnergy:  r.EnergyJoules / g.EnergyJoules,
			})
		}
	}
	return out
}

// Row returns the entry for (workload, nodes), or nil.
func (d *Discrete) Row(name string, nodes int) *DiscreteRow {
	for i := range d.Rows {
		if d.Rows[i].Workload == name && d.Rows[i].Nodes == nodes {
			return &d.Rows[i]
		}
	}
	return nil
}

// String renders Fig. 9's points.
func (d *Discrete) String() string {
	t := &table{header: []string{"workload", "nodes", "runtime vs 2xGTX", "energy vs 2xGTX"}}
	for _, r := range d.Rows {
		t.add(r.Workload, f1(float64(r.Nodes)), f2(r.NormRuntime), f2(r.NormEnergy))
	}
	return t.String()
}

// AIBalanceRow is one Fig. 10 point: an AI workload on a scale-out TX1
// cluster vs the scale-up discrete system.
type AIBalanceRow struct {
	Workload string
	Nodes    int

	Speedup          float64 // GTX runtime / TX1 runtime (> 1: TX1 faster)
	NormCPUCyclesSec float64 // unhalted CPU cycles/second vs the GTX system
}

// AIBalance holds Fig. 10.
type AIBalance struct {
	Rows []AIBalanceRow
}

// Fig10 regenerates the CPU:GPU balance study: alexnet and googlenet
// speedup and unhalted-CPU-cycles rate for scale-out cluster sizes,
// normalized to the 2x GTX 980 scale-up system.
func Fig10(o Options) *AIBalance {
	names := []string{"alexnet", "googlenet"}
	var scenarios []runner.Scenario
	for _, name := range names {
		w, _ := workloads.ByName(name)
		scenarios = append(scenarios, gtx980Scenario(w, 2, o.scale()))
		for _, nodes := range o.sizes() {
			scenarios = append(scenarios, tx1Scenario(w, nodes, tenGig(), o.scale()))
		}
	}
	res := runAll(o, scenarios)
	out := &AIBalance{}
	i := 0
	for _, name := range names {
		g := res[i]
		i++
		for _, nodes := range o.sizes() {
			r := res[i]
			i++
			out.Rows = append(out.Rows, AIBalanceRow{
				Workload:         name,
				Nodes:            nodes,
				Speedup:          g.Runtime / r.Runtime,
				NormCPUCyclesSec: r.UnhaltedCPUCyclesPerSec / g.UnhaltedCPUCyclesPerSec,
			})
		}
	}
	return out
}

// Row returns the entry for (workload, nodes), or nil.
func (a *AIBalance) Row(name string, nodes int) *AIBalanceRow {
	for i := range a.Rows {
		if a.Rows[i].Workload == name && a.Rows[i].Nodes == nodes {
			return &a.Rows[i]
		}
	}
	return nil
}

// String renders Fig. 10.
func (a *AIBalance) String() string {
	t := &table{header: []string{"workload", "nodes", "speedup vs 2xGTX", "CPU cycles/s vs 2xGTX"}}
	for _, r := range a.Rows {
		t.add(r.Workload, f1(float64(r.Nodes)), f2(r.Speedup), f2(r.NormCPUCyclesSec))
	}
	return t.String()
}
