package experiments

import (
	"clustersoc/internal/cluster"
	"clustersoc/internal/network"
	"clustersoc/internal/perf"
	"clustersoc/internal/runner"
	"clustersoc/internal/stats"
	"clustersoc/internal/workloads"
)

// CaviumRow is one Table VI row: the Cavium server's runtime, power, and
// energy on an NPB benchmark, normalized to the 8-node TX1 cluster.
type CaviumRow struct {
	Workload string

	TX1Runtime    float64
	CaviumRuntime float64

	NormRuntime float64 // Cavium / TX1 (> 1: TX1 wins)
	NormPower   float64
	NormEnergy  float64

	// Relative counter vector (Cavium / TX1) in perf.MetricNames order —
	// the observation matrix row for the PLS study.
	RelCounters []float64
}

// CaviumCompare holds Table VI and the Fig. 8 inputs/results.
type CaviumCompare struct {
	Rows []CaviumRow

	// PLS results (Fig. 8).
	TopVariables []string
	Components95 int
	PLS          *stats.PLSResult
}

// Table6 regenerates the many-core ARM server comparison of Sec. IV-A:
// NPB class C with 32 MPI processes on both systems. The TX1 cluster runs
// its NPB baseline configuration (8 nodes, 4 ranks/node, the on-board
// 1 GbE — the network the CPU-only suite shipped with).
func Table6(o Options) *CaviumCompare {
	npb := workloads.NPBWorkloads()
	var scenarios []runner.Scenario
	for _, w := range npb {
		scenarios = append(scenarios,
			tx1Scenario(w, 8, network.GigE, o.scale()),
			runner.Scenario{
				Cluster:  cluster.CaviumServer(32),
				Workload: w.Name(),
				Config:   workloads.Config{Scale: o.scale()},
			})
	}
	res := runAll(o, scenarios)
	out := &CaviumCompare{}
	for i, w := range npb {
		tx, cav := res[2*i], res[2*i+1]
		rel := relativeCounters(cav.PMU, tx.PMU)
		out.Rows = append(out.Rows, CaviumRow{
			Workload:      w.Name(),
			TX1Runtime:    tx.Runtime,
			CaviumRuntime: cav.Runtime,
			NormRuntime:   cav.Runtime / tx.Runtime,
			NormPower:     cav.AvgPowerWatts / tx.AvgPowerWatts,
			NormEnergy:    cav.EnergyJoules / tx.EnergyJoules,
			RelCounters:   rel,
		})
	}
	out.runPLS()
	return out
}

// relativeCounters builds the per-benchmark observation row: each metric
// on the Cavium relative to the TX1 cluster.
func relativeCounters(cav, tx perf.PMU) []float64 {
	cv, tv := cav.Vector(), tx.Vector()
	out := make([]float64, len(cv))
	for i := range cv {
		if tv[i] != 0 {
			out[i] = cv[i] / tv[i]
		}
	}
	return out
}

// runPLS reproduces the Sec. IV-A methodology: PLS of the relative
// counter matrix against relative performance, keep the components that
// explain 95% of the variance, pick the three largest-coefficient
// variables. The paper finds BR_MIS_PRED, INST_SPEC, and the L2 miss
// ratio.
func (cc *CaviumCompare) runPLS() {
	// CPU_CYCLES and IPC are excluded from the observation matrix: the
	// relative cycle count *is* the response variable (runtime x a fixed
	// frequency ratio), so keeping them would only let PLS rediscover the
	// tautology. BR_MISS_RATIO is excluded because in relative space it is
	// exactly BR_MIS_PRED (the branch counts cancel) — a perfectly
	// collinear duplicate.
	var cols []int
	for i, name := range perf.MetricNames {
		if name != "CPU_CYCLES" && name != "IPC" && name != "BR_MISS_RATIO" {
			cols = append(cols, i)
		}
	}
	x := make([][]float64, len(cc.Rows))
	y := make([]float64, len(cc.Rows))
	for i, r := range cc.Rows {
		row := make([]float64, len(cols))
		for j, c := range cols {
			row[j] = r.RelCounters[c]
		}
		x[i] = row
		y[i] = r.NormRuntime
	}
	res, err := stats.PLS1(x, y, 3)
	if err != nil {
		return
	}
	cc.PLS = res
	cc.Components95 = res.ComponentsFor(0.95)
	for _, idx := range res.TopVariables(3) {
		cc.TopVariables = append(cc.TopVariables, perf.MetricNames[cols[idx]])
	}
}

// Row returns the entry for a workload, or nil.
func (cc *CaviumCompare) Row(name string) *CaviumRow {
	for i := range cc.Rows {
		if cc.Rows[i].Workload == name {
			return &cc.Rows[i]
		}
	}
	return nil
}

// RelMetric returns a workload's relative counter value by metric name.
func (r *CaviumRow) RelMetric(name string) float64 {
	for i, n := range perf.MetricNames {
		if n == name {
			return r.RelCounters[i]
		}
	}
	return 0
}

// String renders Table VI plus the Fig. 8 summary.
func (cc *CaviumCompare) String() string {
	t := &table{header: []string{"benchmark", "norm runtime", "norm power", "norm energy", "BR_MIS_PRED", "INST_SPEC", "LD_MISS_RATIO"}}
	for i := range cc.Rows {
		r := &cc.Rows[i]
		t.add(r.Workload, f2(r.NormRuntime), f2(r.NormPower), f2(r.NormEnergy),
			f2(r.RelMetric("BR_MIS_PRED")), f2(r.RelMetric("INST_SPEC")), f2(r.RelMetric("LD_MISS_RATIO")))
	}
	s := t.String()
	if len(cc.TopVariables) > 0 {
		s += "PLS top variables: "
		for i, v := range cc.TopVariables {
			if i > 0 {
				s += ", "
			}
			s += v
		}
		s += "\n"
	}
	return s
}
