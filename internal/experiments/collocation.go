package experiments

import (
	"clustersoc/internal/cluster"
	"clustersoc/internal/network"
	"clustersoc/internal/power"
	"clustersoc/internal/runner"
	"clustersoc/internal/workloads"
)

// WorkRatioPoint is one Fig. 7 sample: hpl energy efficiency when the
// GPU handles `Ratio` of the trailing update and one CPU core the rest,
// normalized to the all-GPU case.
type WorkRatioPoint struct {
	Nodes      int
	Ratio      float64
	Efficiency float64 // MFLOPS/W
	Normalized float64 // vs Ratio = 1 at the same size
}

// WorkRatio holds Fig. 7.
type WorkRatio struct {
	Points []WorkRatioPoint
}

// Fig7 regenerates the CPU/GPU work-ratio sweep for hpl. The ratio-1.0
// scenarios are the plain hpl runs of Figs. 1/9 (workload configs
// canonicalize the all-GPU split), so a shared run-plane reuses them.
func Fig7(o Options) *WorkRatio {
	ratios := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	var scenarios []runner.Scenario
	for _, nodes := range o.sizes() {
		for _, ratio := range ratios {
			cfg := cluster.TX1Cluster(nodes, network.TenGigE)
			cfg.RanksPerNode = 1
			cfg.FileServer = true
			scenarios = append(scenarios, runner.Scenario{
				Cluster:  cfg,
				Workload: "hpl",
				Config:   workloads.Config{Scale: o.scale(), GPUWorkRatio: ratio},
			})
		}
	}
	res := runAll(o, scenarios)
	out := &WorkRatio{}
	i := 0
	for _, nodes := range o.sizes() {
		pts := make([]WorkRatioPoint, len(ratios))
		var baseline float64
		for j, ratio := range ratios {
			eff := res[i].MFLOPSPerWatt()
			i++
			if ratio == 1.0 {
				baseline = eff
			}
			pts[j] = WorkRatioPoint{Nodes: nodes, Ratio: ratio, Efficiency: eff}
		}
		for j := range pts {
			if baseline > 0 {
				pts[j].Normalized = pts[j].Efficiency / baseline
			}
		}
		out.Points = append(out.Points, pts...)
	}
	return out
}

// At returns the point for (nodes, ratio), or nil.
func (wr *WorkRatio) At(nodes int, ratio float64) *WorkRatioPoint {
	for i := range wr.Points {
		p := &wr.Points[i]
		if p.Nodes == nodes && p.Ratio > ratio-1e-9 && p.Ratio < ratio+1e-9 {
			return p
		}
	}
	return nil
}

// String renders Fig. 7.
func (wr *WorkRatio) String() string {
	t := &table{header: []string{"nodes", "GPU work ratio", "MFLOPS/W", "normalized"}}
	for _, p := range wr.Points {
		t.add(f1(float64(p.Nodes)), f2(p.Ratio), f1(p.Efficiency), f2(p.Normalized))
	}
	return t.String()
}

// CollocationRow is one Table IV row: an hpl configuration under one
// network at every cluster size.
type CollocationRow struct {
	Config  string // "CPU", "GPU", "CPU+GPU"
	Network string
	Nodes   int

	ThroughputGFLOPS float64
	MFLOPSPerWatt    float64
}

// Collocation holds Table IV.
type Collocation struct {
	Rows []CollocationRow
}

// Table4 regenerates Table IV: hpl throughput and energy efficiency for
// the CPU-only version (4 ranks/node), the GPU version, and both running
// collocated (GPU + 3 CPU ranks/node), under both networks.
func Table4(o Options) *Collocation {
	wcfg := workloads.Config{Scale: o.scale()}
	var scenarios []runner.Scenario
	for _, prof := range []network.Profile{network.GigE, network.TenGigE} {
		for _, nodes := range o.sizes() {
			// CPU-only: the HPCC hpl on all 4 cores.
			cfgC := cluster.TX1Cluster(nodes, prof)
			cfgC.RanksPerNode = 4
			scenarios = append(scenarios, runner.Scenario{Cluster: cfgC, Workload: "hpl-cpu", Config: wcfg})

			// GPU version — the Fig. 1 hpl scenario for this NIC and size.
			cfgG := cluster.TX1Cluster(nodes, prof)
			cfgG.RanksPerNode = 1
			cfgG.FileServer = true
			scenarios = append(scenarios, runner.Scenario{Cluster: cfgG, Workload: "hpl", Config: wcfg})

			// Collocated: GPU hpl (1 rank/node, one core for transfers)
			// plus the CPU hpl on the remaining 3 cores, simultaneously.
			// Each run solves its own system, so the combined throughput is
			// the sum of the two jobs' own rates under contention — the way
			// the paper tallies its simultaneous runs.
			scenarios = append(scenarios, runner.Scenario{
				Cluster: cfgG, Workload: "hpl", Config: wcfg,
				Colocated: []runner.Job{{Workload: "hpl-cpu", RanksPerNode: 3, Config: wcfg}},
			})
		}
	}
	res := runAll(o, scenarios)
	out := &Collocation{}
	i := 0
	for _, prof := range []network.Profile{network.GigE, network.TenGigE} {
		for _, nodes := range o.sizes() {
			resC, resG, resB := res[i], res[i+1], res[i+2]
			i += 3
			out.Rows = append(out.Rows, CollocationRow{
				Config: "CPU", Network: prof.Name, Nodes: nodes,
				ThroughputGFLOPS: resC.Throughput / 1e9,
				MFLOPSPerWatt:    resC.MFLOPSPerWatt(),
			})
			out.Rows = append(out.Rows, CollocationRow{
				Config: "GPU", Network: prof.Name, Nodes: nodes,
				ThroughputGFLOPS: resG.Throughput / 1e9,
				MFLOPSPerWatt:    resG.MFLOPSPerWatt(),
			})
			combined := resB.JobThroughputs[0] + resB.JobThroughputs[1]
			out.Rows = append(out.Rows, CollocationRow{
				Config: "CPU+GPU", Network: prof.Name, Nodes: nodes,
				ThroughputGFLOPS: combined / 1e9,
				MFLOPSPerWatt:    power.MFLOPSPerWatt(combined, resB.AvgPowerWatts),
			})
		}
	}
	return out
}

// Row returns the entry for (config, network, nodes), or nil.
func (c *Collocation) Row(config, net string, nodes int) *CollocationRow {
	for i := range c.Rows {
		r := &c.Rows[i]
		if r.Config == config && r.Network == net && r.Nodes == nodes {
			return r
		}
	}
	return nil
}

// String renders Table IV.
func (c *Collocation) String() string {
	t := &table{header: []string{"configuration", "nodes", "GFLOPS", "MFLOPS/W"}}
	for _, r := range c.Rows {
		t.add(r.Config+"+"+r.Network, f1(float64(r.Nodes)), f1(r.ThroughputGFLOPS), f1(r.MFLOPSPerWatt))
	}
	return t.String()
}
