package experiments

import (
	"clustersoc/internal/cluster"
	"clustersoc/internal/network"
	"clustersoc/internal/power"
	"clustersoc/internal/workloads"
)

// WorkRatioPoint is one Fig. 7 sample: hpl energy efficiency when the
// GPU handles `Ratio` of the trailing update and one CPU core the rest,
// normalized to the all-GPU case.
type WorkRatioPoint struct {
	Nodes      int
	Ratio      float64
	Efficiency float64 // MFLOPS/W
	Normalized float64 // vs Ratio = 1 at the same size
}

// WorkRatio holds Fig. 7.
type WorkRatio struct {
	Points []WorkRatioPoint
}

// Fig7 regenerates the CPU/GPU work-ratio sweep for hpl.
func Fig7(o Options) *WorkRatio {
	out := &WorkRatio{}
	ratios := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	for _, nodes := range o.sizes() {
		var baseline float64
		// Sweep from 1.0 down so the baseline exists first.
		var pts []WorkRatioPoint
		for i := len(ratios) - 1; i >= 0; i-- {
			ratio := ratios[i]
			w, _ := workloads.ByName("hpl")
			cfg := cluster.TX1Cluster(nodes, network.TenGigE)
			cfg.RanksPerNode = 1
			cfg.FileServer = true
			res := cluster.New(cfg).Run(w.Body(workloads.Config{Scale: o.scale(), GPUWorkRatio: ratio}))
			eff := res.MFLOPSPerWatt()
			if ratio == 1.0 {
				baseline = eff
			}
			pts = append(pts, WorkRatioPoint{Nodes: nodes, Ratio: ratio, Efficiency: eff})
		}
		for i := range pts {
			if baseline > 0 {
				pts[i].Normalized = pts[i].Efficiency / baseline
			}
		}
		// Restore ascending-ratio order for presentation.
		for i := len(pts) - 1; i >= 0; i-- {
			out.Points = append(out.Points, pts[i])
		}
	}
	return out
}

// At returns the point for (nodes, ratio), or nil.
func (wr *WorkRatio) At(nodes int, ratio float64) *WorkRatioPoint {
	for i := range wr.Points {
		p := &wr.Points[i]
		if p.Nodes == nodes && p.Ratio > ratio-1e-9 && p.Ratio < ratio+1e-9 {
			return p
		}
	}
	return nil
}

// String renders Fig. 7.
func (wr *WorkRatio) String() string {
	t := &table{header: []string{"nodes", "GPU work ratio", "MFLOPS/W", "normalized"}}
	for _, p := range wr.Points {
		t.add(f1(float64(p.Nodes)), f2(p.Ratio), f1(p.Efficiency), f2(p.Normalized))
	}
	return t.String()
}

// CollocationRow is one Table IV row: an hpl configuration under one
// network at every cluster size.
type CollocationRow struct {
	Config  string // "CPU", "GPU", "CPU+GPU"
	Network string
	Nodes   int

	ThroughputGFLOPS float64
	MFLOPSPerWatt    float64
}

// Collocation holds Table IV.
type Collocation struct {
	Rows []CollocationRow
}

// Table4 regenerates Table IV: hpl throughput and energy efficiency for
// the CPU-only version (4 ranks/node), the GPU version, and both running
// collocated (GPU + 3 CPU ranks/node), under both networks.
func Table4(o Options) *Collocation {
	out := &Collocation{}
	for _, prof := range []network.Profile{network.GigE, network.TenGigE} {
		for _, nodes := range o.sizes() {
			// CPU-only: the HPCC hpl on all 4 cores.
			cpu := workloads.NewHPLCPU(4)
			cfgC := cluster.TX1Cluster(nodes, prof)
			cfgC.RanksPerNode = 4
			resC := cluster.New(cfgC).Run(cpu.Body(workloads.Config{Scale: o.scale()}))
			out.Rows = append(out.Rows, CollocationRow{
				Config: "CPU", Network: prof.Name, Nodes: nodes,
				ThroughputGFLOPS: resC.Throughput / 1e9,
				MFLOPSPerWatt:    resC.MFLOPSPerWatt(),
			})

			// GPU version.
			gpu, _ := workloads.ByName("hpl")
			cfgG := cluster.TX1Cluster(nodes, prof)
			cfgG.RanksPerNode = 1
			cfgG.FileServer = true
			resG := cluster.New(cfgG).Run(gpu.Body(workloads.Config{Scale: o.scale()}))
			out.Rows = append(out.Rows, CollocationRow{
				Config: "GPU", Network: prof.Name, Nodes: nodes,
				ThroughputGFLOPS: resG.Throughput / 1e9,
				MFLOPSPerWatt:    resG.MFLOPSPerWatt(),
			})

			// Collocated: GPU hpl (1 rank/node, one core for transfers)
			// plus the CPU hpl on the remaining 3 cores, simultaneously.
			// Each run solves its own system, so the combined throughput is
			// the sum of the two jobs' own rates under contention — the way
			// the paper tallies its simultaneous runs.
			cfgB := cluster.TX1Cluster(nodes, prof)
			cfgB.RanksPerNode = 1
			cfgB.FileServer = true
			cl := cluster.New(cfgB)
			jobGPU := cl.Spawn(gpu.Body(workloads.Config{Scale: o.scale()}))
			cpu3 := workloads.NewHPLCPU(3)
			jobCPU := cl.SpawnWith(3, cpu3.Body(workloads.Config{Scale: o.scale()}))
			resB := cl.Finish()
			combined := jobGPU.Throughput() + jobCPU.Throughput()
			out.Rows = append(out.Rows, CollocationRow{
				Config: "CPU+GPU", Network: prof.Name, Nodes: nodes,
				ThroughputGFLOPS: combined / 1e9,
				MFLOPSPerWatt:    power.MFLOPSPerWatt(combined, resB.AvgPowerWatts),
			})
		}
	}
	return out
}

// Row returns the entry for (config, network, nodes), or nil.
func (c *Collocation) Row(config, net string, nodes int) *CollocationRow {
	for i := range c.Rows {
		r := &c.Rows[i]
		if r.Config == config && r.Network == net && r.Nodes == nodes {
			return r
		}
	}
	return nil
}

// String renders Table IV.
func (c *Collocation) String() string {
	t := &table{header: []string{"configuration", "nodes", "GFLOPS", "MFLOPS/W"}}
	for _, r := range c.Rows {
		t.add(r.Config+"+"+r.Network, f1(float64(r.Nodes)), f1(r.ThroughputGFLOPS), f1(r.MFLOPSPerWatt))
	}
	return t.String()
}
