package experiments

import (
	"reflect"
	"testing"

	"clustersoc/internal/runner"
)

// TestSharedRunnerDedupesAcrossGenerators drives several generators
// through one parallel run-plane — the cmd/experiments configuration —
// and checks both halves of the contract: artifacts are identical to the
// sequential per-generator runs, and scenarios shared between artifacts
// (the Fig. 1 TenGigE runs reappear in Fig. 3 and Table II) simulate
// only once.
func TestSharedRunnerDedupesAcrossGenerators(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full generators")
	}
	seqOpts := testOptions()
	wantFig1 := Fig1(seqOpts)
	wantFig3 := Fig3(seqOpts)
	wantTab2 := Table2(seqOpts)

	shared := testOptions()
	shared.Runner = runner.New(4)
	gotFig1 := Fig1(shared)
	gotFig3 := Fig3(shared)
	gotTab2 := Table2(shared)

	if !reflect.DeepEqual(gotFig1, wantFig1) {
		t.Error("Fig1 under the shared parallel runner differs from the sequential run")
	}
	if !reflect.DeepEqual(gotFig3, wantFig3) {
		t.Error("Fig3 under the shared parallel runner differs from the sequential run")
	}
	if !reflect.DeepEqual(gotTab2, wantTab2) {
		t.Error("Table2 under the shared parallel runner differs from the sequential run")
	}

	st := shared.Runner.Stats()
	if st.Hits == 0 {
		t.Error("expected cache hits: Fig. 3 and Table II reuse the Fig. 1 scenarios")
	}
	if st.Submitted != st.Hits+st.Simulated {
		t.Errorf("stats don't balance: %+v", st)
	}
	// Fig. 3 and Table II each re-submit the full 14-scenario set at 8
	// nodes, and all 14 are already simulated for Fig. 1.
	if st.Hits < 28 {
		t.Errorf("only %d hits; Fig. 3 + Table II alone should contribute 28", st.Hits)
	}
}

// TestOptionsDefaultRunnerIsSequential pins the zero-value behaviour:
// generators called without a Runner run exactly as the seed did.
func TestOptionsDefaultRunnerIsSequential(t *testing.T) {
	o := testOptions()
	if o.Runner != nil {
		t.Fatal("testOptions must not pre-wire a runner")
	}
	r := o.runner()
	if r.Workers() != 1 {
		t.Errorf("default run-plane has %d workers, want 1", r.Workers())
	}
}
