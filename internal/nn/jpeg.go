package nn

import "math"

// The AI pipeline of Sec. IV-B decodes JPEG images on the CPU before the
// GPU runs the network forward pass — the work that lets the TX1 cluster's
// larger CPU-core pool beat the Xeon hosts (Fig. 10). This file provides a
// real 8x8 block (I)DCT — the arithmetic core of JPEG decoding — and the
// cost model the workload charges per image.

// DCT8x8 computes the forward 8x8 type-II DCT of block into out.
func DCT8x8(block, out *[64]float64) {
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			sum := 0.0
			for x := 0; x < 8; x++ {
				for y := 0; y < 8; y++ {
					sum += block[x*8+y] *
						math.Cos((2*float64(x)+1)*float64(u)*math.Pi/16) *
						math.Cos((2*float64(y)+1)*float64(v)*math.Pi/16)
				}
			}
			cu, cv := 1.0, 1.0
			if u == 0 {
				cu = 1 / math.Sqrt2
			}
			if v == 0 {
				cv = 1 / math.Sqrt2
			}
			out[u*8+v] = 0.25 * cu * cv * sum
		}
	}
}

// IDCT8x8 computes the inverse 8x8 DCT of coef into out; it must invert
// DCT8x8 exactly (up to rounding).
func IDCT8x8(coef, out *[64]float64) {
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			sum := 0.0
			for u := 0; u < 8; u++ {
				for v := 0; v < 8; v++ {
					cu, cv := 1.0, 1.0
					if u == 0 {
						cu = 1 / math.Sqrt2
					}
					if v == 0 {
						cv = 1 / math.Sqrt2
					}
					sum += cu * cv * coef[u*8+v] *
						math.Cos((2*float64(x)+1)*float64(u)*math.Pi/16) *
						math.Cos((2*float64(y)+1)*float64(v)*math.Pi/16)
				}
			}
			out[x*8+y] = 0.25 * sum
		}
	}
}

// JPEGDecodeCost models the CPU cost of decoding one baseline JPEG of the
// given pixel dimensions: entropy decode + dequantize + IDCT + color
// convert. Returns (instructions, flops, branches) per image. The per-
// pixel constants follow libjpeg profiles (~300 instructions/pixel for
// typical quality settings on in-order ARM cores).
func JPEGDecodeCost(width, height int) (instr, flops, branches float64) {
	pixels := float64(width * height)
	// Entropy decoding is branchy bit-twiddling; IDCT is the FLOP bulk
	// (a fast separable IDCT spends ~10 ops/pixel/component).
	instr = 300 * pixels
	flops = 3 * 10 * pixels
	branches = 45 * pixels
	return instr, flops, branches
}

// ImageNetJPEGDims is the nominal decoded size of an ImageNet validation
// JPEG as the Caffe pipeline resizes it.
const (
	ImageNetJPEGWidth  = 256
	ImageNetJPEGHeight = 256
)
