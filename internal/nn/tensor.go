// Package nn is a minimal deep-learning inference engine sufficient to
// run the paper's two AI workloads: image classification with the AlexNet
// and GoogleNet models under Caffe (Table I). It provides CHW tensors,
// the layer types those networks use, exact FLOP/parameter accounting per
// layer (which feeds the cluster workload model), and graph builders that
// reproduce both architectures layer-for-layer.
package nn

import "fmt"

// Shape is a CHW tensor shape.
type Shape struct {
	C, H, W int
}

// Elems returns the element count.
func (s Shape) Elems() int { return s.C * s.H * s.W }

// String formats the shape.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Tensor is a dense CHW float64 tensor.
type Tensor struct {
	Shape Shape
	Data  []float64
}

// NewTensor allocates a zero tensor.
func NewTensor(s Shape) *Tensor {
	return &Tensor{Shape: s, Data: make([]float64, s.Elems())}
}

// At returns t[c,h,w].
func (t *Tensor) At(c, h, w int) float64 {
	return t.Data[(c*t.Shape.H+h)*t.Shape.W+w]
}

// Set assigns t[c,h,w].
func (t *Tensor) Set(c, h, w int, v float64) {
	t.Data[(c*t.Shape.H+h)*t.Shape.W+w] = v
}

// lcg is a tiny deterministic generator for reproducible synthetic
// weights: inference cost is weight-value independent, so any fixed
// pseudo-random initialization exercises the real code path.
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(uint32(*l>>32))/float64(1<<32)*2 - 1
}

// fillWeights deterministically initializes a weight slice with small
// values scaled by fan-in.
func fillWeights(w []float64, seed uint64, fanIn int) {
	g := lcg(seed | 1)
	scale := 1.0
	if fanIn > 0 {
		scale = 1.0 / float64(fanIn)
	}
	for i := range w {
		w[i] = g.next() * scale
	}
}
