package nn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConvShapeAndDirectValue(t *testing.T) {
	// 1-channel 4x4 input, 1 output channel, k=3 s=1 p=1 -> 4x4 out.
	c := NewConv("c", 1, 3, 1, 1, 1, 5)
	in := NewTensor(Shape{C: 1, H: 4, W: 4})
	for i := range in.Data {
		in.Data[i] = float64(i)
	}
	out := c.Forward(in)
	if out.Shape != (Shape{C: 1, H: 4, W: 4}) {
		t.Fatalf("shape %v", out.Shape)
	}
	// Check one interior value against a direct computation.
	want := c.bias[0]
	for kh := 0; kh < 3; kh++ {
		for kw := 0; kw < 3; kw++ {
			want += c.weights[kh*3+kw] * in.At(0, 1+kh-1, 1+kw-1)
		}
	}
	if math.Abs(out.At(0, 1, 1)-want) > 1e-12 {
		t.Fatalf("conv value %v, want %v", out.At(0, 1, 1), want)
	}
}

func TestConvGroupsHalveMACs(t *testing.T) {
	in := Shape{C: 64, H: 16, W: 16}
	g1 := NewConv("g1", 128, 3, 1, 1, 1, 1)
	g2 := NewConv("g2", 128, 3, 1, 1, 2, 1)
	if g2.FLOPs(in) >= g1.FLOPs(in) {
		t.Fatal("grouped conv should cost less")
	}
	ratio := g1.FLOPs(in) / g2.FLOPs(in)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("groups=2 FLOP ratio %v, want ~2", ratio)
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{"r"}
	in := NewTensor(Shape{C: 1, H: 1, W: 4})
	copy(in.Data, []float64{-1, 0, 2, -3})
	out := r.Forward(in)
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("relu %v", out.Data)
		}
	}
}

func TestMaxPool(t *testing.T) {
	p := &Pool{Label: "p", K: 2, Stride: 2}
	in := NewTensor(Shape{C: 1, H: 4, W: 4})
	for i := range in.Data {
		in.Data[i] = float64(i)
	}
	out := p.Forward(in)
	if out.Shape.H != 2 || out.Shape.W != 2 {
		t.Fatalf("pool shape %v", out.Shape)
	}
	if out.At(0, 0, 0) != 5 || out.At(0, 1, 1) != 15 {
		t.Fatalf("pool values %v", out.Data)
	}
}

func TestGlobalAveragePool(t *testing.T) {
	p := &Pool{Label: "g", Global: true, Average: true, K: 3}
	in := NewTensor(Shape{C: 2, H: 3, W: 3})
	for i := 0; i < 9; i++ {
		in.Data[i] = 2            // channel 0
		in.Data[9+i] = float64(i) // channel 1: mean 4
	}
	out := p.Forward(in)
	if out.Shape != (Shape{C: 2, H: 1, W: 1}) {
		t.Fatalf("shape %v", out.Shape)
	}
	if math.Abs(out.Data[0]-2) > 1e-12 || math.Abs(out.Data[1]-4) > 1e-12 {
		t.Fatalf("global avg %v", out.Data)
	}
}

func TestSoftmaxProbabilities(t *testing.T) {
	s := &Softmax{"s"}
	f := func(raw [6]int8) bool {
		in := NewTensor(Shape{C: 6, H: 1, W: 1})
		for i, v := range raw {
			in.Data[i] = float64(v) / 16
		}
		out := s.Forward(in)
		sum := 0.0
		for _, v := range out.Data {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFCMatchesManual(t *testing.T) {
	fc := NewFC("f", 3, 9)
	in := NewTensor(Shape{C: 4, H: 1, W: 1})
	copy(in.Data, []float64{1, 2, 3, 4})
	out := fc.Forward(in)
	for o := 0; o < 3; o++ {
		want := fc.bias[o]
		for i, v := range in.Data {
			want += fc.weights[o*4+i] * v
		}
		if math.Abs(out.Data[o]-want) > 1e-12 {
			t.Fatalf("fc output %d: %v want %v", o, out.Data[o], want)
		}
	}
}

func TestAlexNetArchitecture(t *testing.T) {
	net := AlexNet()
	if got := net.OutShape(); got != (Shape{C: 1000, H: 1, W: 1}) {
		t.Fatalf("alexnet output %v", got)
	}
	params := net.TotalParams()
	if params < 58e6 || params > 64e6 {
		t.Fatalf("alexnet params = %d, want ~61M", params)
	}
	fl := net.TotalFLOPs()
	if fl < 1.2e9 || fl > 1.8e9 {
		t.Fatalf("alexnet FLOPs = %g, want ~1.45G", fl)
	}
}

func TestGoogleNetArchitecture(t *testing.T) {
	net := GoogleNet()
	if got := net.OutShape(); got != (Shape{C: 1000, H: 1, W: 1}) {
		t.Fatalf("googlenet output %v", got)
	}
	params := net.TotalParams()
	if params < 5.5e6 || params > 8e6 {
		t.Fatalf("googlenet params = %d, want ~7M", params)
	}
	fl := net.TotalFLOPs()
	if fl < 2.5e9 || fl > 4e9 {
		t.Fatalf("googlenet FLOPs = %g, want ~3.2G", fl)
	}
	// GoogleNet: more FLOPs than AlexNet but far fewer parameters — the
	// property that shapes their different cluster behaviour.
	alex := AlexNet()
	if fl <= alex.TotalFLOPs() {
		t.Error("googlenet should out-FLOP alexnet")
	}
	if params >= alex.TotalParams() {
		t.Error("googlenet should have far fewer parameters")
	}
}

func TestAlexNetForwardRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full forward pass is slow")
	}
	net := AlexNet()
	in := NewTensor(net.Input)
	g := lcg(99)
	for i := range in.Data {
		in.Data[i] = g.next()
	}
	out, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range out.Data {
		if v < 0 || math.IsNaN(v) {
			t.Fatal("invalid probability")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestInceptionConcat(t *testing.T) {
	m := inception("i", 4, 2, 6, 2, 3, 5, 1)
	in := NewTensor(Shape{C: 8, H: 6, W: 6})
	for i := range in.Data {
		in.Data[i] = float64(i%13) / 13
	}
	out := m.Forward(in)
	want := Shape{C: 4 + 6 + 3 + 5, H: 6, W: 6}
	if out.Shape != want {
		t.Fatalf("inception out %v, want %v", out.Shape, want)
	}
	if m.OutShape(in.Shape) != want {
		t.Fatal("OutShape disagrees with Forward")
	}
}

func TestDCTRoundTripProperty(t *testing.T) {
	f := func(raw [64]int8) bool {
		var block, coef, back [64]float64
		for i, v := range raw {
			block[i] = float64(v)
		}
		DCT8x8(&block, &coef)
		IDCT8x8(&coef, &back)
		for i := range block {
			if math.Abs(block[i]-back[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestJPEGDecodeCostScales(t *testing.T) {
	i1, f1, b1 := JPEGDecodeCost(256, 256)
	i2, f2, b2 := JPEGDecodeCost(512, 512)
	if i2 != 4*i1 || f2 != 4*f1 || b2 != 4*b1 {
		t.Fatal("decode cost must scale with pixels")
	}
	if b1 >= i1 || f1 <= 0 {
		t.Fatal("cost proportions nonsensical")
	}
}

// im2col + GEMM must agree with the direct convolution loops — the same
// equivalence Caffe relies on.
func TestForwardGEMMMatchesDirect(t *testing.T) {
	cases := []*Conv{
		NewConv("a", 6, 3, 1, 1, 1, 21),
		NewConv("b", 8, 5, 2, 2, 1, 22),
		NewConv("c", 8, 3, 1, 1, 2, 23), // grouped, like AlexNet's conv2
		NewConv("d", 4, 1, 1, 0, 1, 24), // 1x1, like the inception reducers
	}
	in := NewTensor(Shape{C: 4, H: 11, W: 13})
	g := lcg(77)
	for i := range in.Data {
		in.Data[i] = g.next()
	}
	for _, c := range cases {
		direct := c.Forward(in)
		gemm, err := c.ForwardGEMM(in)
		if err != nil {
			t.Fatal(err)
		}
		if gemm.Shape != direct.Shape {
			t.Fatalf("%s: shapes differ", c.Label)
		}
		for i := range direct.Data {
			if math.Abs(gemm.Data[i]-direct.Data[i]) > 1e-9 {
				t.Fatalf("%s: element %d = %v vs direct %v", c.Label, i, gemm.Data[i], direct.Data[i])
			}
		}
	}
}

func TestIm2colShape(t *testing.T) {
	in := NewTensor(Shape{C: 3, H: 8, W: 8})
	m, err := Im2col(in, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3*9 || m.Cols != 64 {
		t.Fatalf("im2col shape %dx%d", m.Rows, m.Cols)
	}
}

// The im2col patch matrix must agree with Conv.OutShape for every
// geometry, including the zero-padding edge cases (pad 0, pad >= k/2,
// stride > 1, kernel as large as the padded input).
func TestIm2colShapeMatchesConvOutShape(t *testing.T) {
	in := NewTensor(Shape{C: 3, H: 9, W: 7})
	cases := []struct{ k, stride, pad int }{
		{1, 1, 0}, {3, 1, 0}, {3, 1, 1}, {3, 2, 1}, {5, 2, 2},
		{7, 1, 0}, {7, 3, 3}, {9, 1, 1}, {5, 4, 0},
	}
	for _, tc := range cases {
		m, err := Im2col(in, tc.k, tc.stride, tc.pad)
		if err != nil {
			t.Fatalf("k=%d s=%d p=%d: %v", tc.k, tc.stride, tc.pad, err)
		}
		conv := NewConv("probe", 1, tc.k, tc.stride, tc.pad, 1, 1)
		want := conv.OutShape(in.Shape)
		if m.Rows != in.Shape.C*tc.k*tc.k {
			t.Fatalf("k=%d s=%d p=%d: rows %d, want %d", tc.k, tc.stride, tc.pad,
				m.Rows, in.Shape.C*tc.k*tc.k)
		}
		if m.Cols != want.H*want.W {
			t.Fatalf("k=%d s=%d p=%d: cols %d, want %dx%d from Conv.OutShape",
				tc.k, tc.stride, tc.pad, m.Cols, want.H, want.W)
		}
	}
}

// Degenerate geometries must be rejected, not silently produce empty or
// negatively-shaped patch matrices.
func TestIm2colRejectsBadGeometry(t *testing.T) {
	in := NewTensor(Shape{C: 2, H: 5, W: 5})
	cases := []struct {
		name           string
		k, stride, pad int
	}{
		{"zero kernel", 0, 1, 0},
		{"negative kernel", -3, 1, 0},
		{"zero stride", 3, 0, 1},
		{"negative stride", 3, -1, 1},
		{"negative padding", 3, 1, -1},
		{"kernel exceeds padded input", 8, 1, 1},
		{"kernel exceeds unpadded input", 7, 1, 0},
	}
	for _, tc := range cases {
		if _, err := Im2col(in, tc.k, tc.stride, tc.pad); err == nil {
			t.Errorf("%s (k=%d s=%d p=%d): accepted", tc.name, tc.k, tc.stride, tc.pad)
		}
	}
	// The boundary case is legal: a kernel exactly filling the padded input.
	if _, err := Im2col(in, 7, 1, 1); err != nil {
		t.Errorf("kernel == padded input rejected: %v", err)
	}
}
