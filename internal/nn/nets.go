package nn

// AlexNet builds the Caffe bvlc_alexnet deploy network (Krizhevsky et
// al.), the first of the paper's two image-classification workloads:
// 5 convolutions (two grouped), 3 max pools, 2 LRNs, 3 fully connected
// layers, ~61 M parameters, ~1.45 GFLOP per 227x227 image.
func AlexNet() *Network {
	lrn := func(label string) *LRN { return &LRN{Label: label, Size: 5, Alpha: 1e-4, Beta: 0.75} }
	return &Network{
		Name:  "alexnet",
		Input: Shape{C: 3, H: 227, W: 227},
		Layers: []Layer{
			NewConv("conv1", 96, 11, 4, 0, 1, 11),
			&ReLU{"relu1"},
			lrn("norm1"),
			&Pool{Label: "pool1", K: 3, Stride: 2},
			NewConv("conv2", 256, 5, 1, 2, 2, 12),
			&ReLU{"relu2"},
			lrn("norm2"),
			&Pool{Label: "pool2", K: 3, Stride: 2},
			NewConv("conv3", 384, 3, 1, 1, 1, 13),
			&ReLU{"relu3"},
			NewConv("conv4", 384, 3, 1, 1, 2, 14),
			&ReLU{"relu4"},
			NewConv("conv5", 256, 3, 1, 1, 2, 15),
			&ReLU{"relu5"},
			&Pool{Label: "pool5", K: 3, Stride: 2},
			NewFC("fc6", 4096, 16),
			&ReLU{"relu6"},
			&Dropout{"drop6"},
			NewFC("fc7", 4096, 17),
			&ReLU{"relu7"},
			&Dropout{"drop7"},
			NewFC("fc8", 1000, 18),
			&Softmax{"prob"},
		},
	}
}

// inception builds one GoogleNet module with the canonical four branches:
// 1x1; 1x1->3x3; 1x1->5x5; maxpool->1x1.
func inception(label string, c1, c3r, c3, c5r, c5, pp int, seed uint64) *Inception {
	return &Inception{
		Label: label,
		Branches: [][]Layer{
			{NewConv(label+"/1x1", c1, 1, 1, 0, 1, seed), &ReLU{label + "/relu_1x1"}},
			{NewConv(label+"/3x3_reduce", c3r, 1, 1, 0, 1, seed+1), &ReLU{label + "/relu_3x3r"},
				NewConv(label+"/3x3", c3, 3, 1, 1, 1, seed+2), &ReLU{label + "/relu_3x3"}},
			{NewConv(label+"/5x5_reduce", c5r, 1, 1, 0, 1, seed+3), &ReLU{label + "/relu_5x5r"},
				NewConv(label+"/5x5", c5, 5, 1, 2, 1, seed+4), &ReLU{label + "/relu_5x5"}},
			{&Pool{Label: label + "/pool", K: 3, Stride: 1, Pad: 1},
				NewConv(label+"/pool_proj", pp, 1, 1, 0, 1, seed+5), &ReLU{label + "/relu_pp"}},
		},
	}
}

// GoogleNet builds the Caffe bvlc_googlenet deploy network (Szegedy et
// al., Inception v1) without the training-time auxiliary heads: nine
// inception modules, ~7 M parameters, ~3.2 GFLOP per 224x224 image — the
// paper's second AI workload, the one that most benefits from the TX1
// cluster's CPU:GPU balance (Fig. 10).
func GoogleNet() *Network {
	return &Network{
		Name:  "googlenet",
		Input: Shape{C: 3, H: 224, W: 224},
		Layers: []Layer{
			NewConv("conv1/7x7_s2", 64, 7, 2, 3, 1, 100),
			&ReLU{"conv1/relu"},
			&Pool{Label: "pool1/3x3_s2", K: 3, Stride: 2},
			&LRN{Label: "pool1/norm1", Size: 5, Alpha: 1e-4, Beta: 0.75},
			NewConv("conv2/3x3_reduce", 64, 1, 1, 0, 1, 101),
			&ReLU{"conv2/relu_reduce"},
			NewConv("conv2/3x3", 192, 3, 1, 1, 1, 102),
			&ReLU{"conv2/relu"},
			&LRN{Label: "conv2/norm2", Size: 5, Alpha: 1e-4, Beta: 0.75},
			&Pool{Label: "pool2/3x3_s2", K: 3, Stride: 2},
			inception("inception_3a", 64, 96, 128, 16, 32, 32, 200),
			inception("inception_3b", 128, 128, 192, 32, 96, 64, 210),
			&Pool{Label: "pool3/3x3_s2", K: 3, Stride: 2},
			inception("inception_4a", 192, 96, 208, 16, 48, 64, 220),
			inception("inception_4b", 160, 112, 224, 24, 64, 64, 230),
			inception("inception_4c", 128, 128, 256, 24, 64, 64, 240),
			inception("inception_4d", 112, 144, 288, 32, 64, 64, 250),
			inception("inception_4e", 256, 160, 320, 32, 128, 128, 260),
			&Pool{Label: "pool4/3x3_s2", K: 3, Stride: 2},
			inception("inception_5a", 256, 160, 320, 32, 128, 128, 270),
			inception("inception_5b", 384, 192, 384, 48, 128, 128, 280),
			&Pool{Label: "pool5/global", Global: true, Average: true, K: 7, Stride: 1},
			&Dropout{"pool5/drop"},
			NewFC("loss3/classifier", 1000, 300),
			&Softmax{"prob"},
		},
	}
}
