package nn

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"clustersoc/internal/compute"
)

// withBackend runs f with b as the process default backend, restoring
// the previous default afterwards.
func withBackend(b compute.Backend, f func()) {
	prev := compute.SetDefault(b)
	defer compute.SetDefault(prev)
	f()
}

func randTensor(r *rand.Rand, s Shape) *Tensor {
	t := NewTensor(s)
	for i := range t.Data {
		t.Data[i] = r.NormFloat64()
	}
	return t
}

// closeEnough compares within a relative-or-absolute tolerance
// (reassociation-only differences between the backends).
func closeEnough(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// The blocked backend routes Conv through im2col+GEMM while the
// reference runs the direct loop nest; outputs must agree within
// reassociation tolerance. The table covers the AlexNet conv layers —
// conv2/conv4/conv5 are the grouped ones — at reduced spatial size.
func TestConvForwardBackendsAgree(t *testing.T) {
	cases := []struct {
		name                      string
		inC, outC, k, stride, pad int
		groups                    int
		h, w                      int
	}{
		{"conv1-style", 3, 24, 11, 4, 0, 1, 51, 51},
		{"conv2-grouped", 96, 64, 5, 1, 2, 2, 13, 13},
		{"conv3-plain", 64, 48, 3, 1, 1, 1, 13, 13},
		{"conv5-grouped", 48, 32, 3, 1, 1, 2, 13, 13},
		{"pointwise", 32, 16, 1, 1, 0, 1, 9, 9},
	}
	r := rand.New(rand.NewSource(23))
	for _, tc := range cases {
		conv := NewConv(tc.name, tc.outC, tc.k, tc.stride, tc.pad, tc.groups, 7)
		in := randTensor(r, Shape{C: tc.inC, H: tc.h, W: tc.w})

		var ref, blk *Tensor
		withBackend(compute.Reference{}, func() { ref = conv.Forward(in) })
		withBackend(compute.Blocked{}, func() { blk = conv.Forward(in) })

		if ref.Shape != blk.Shape {
			t.Fatalf("%s: shape %v vs %v", tc.name, ref.Shape, blk.Shape)
		}
		for i := range ref.Data {
			if !closeEnough(ref.Data[i], blk.Data[i], 1e-9) {
				t.Fatalf("%s: out[%d] = %v (blocked) vs %v (reference)",
					tc.name, i, blk.Data[i], ref.Data[i])
			}
		}
	}
}

// A full small network — conv (grouped), ReLU, pool, FC, softmax — must
// produce the same classification scores under both backends.
func TestNetworkForwardBackendsAgree(t *testing.T) {
	net := &Network{
		Name:  "micronet",
		Input: Shape{C: 6, H: 25, W: 25},
		Layers: []Layer{
			NewConv("c1", 16, 5, 2, 1, 2, 3),
			&ReLU{"r1"},
			&Pool{Label: "p1", K: 3, Stride: 2},
			NewConv("c2", 24, 3, 1, 1, 1, 4),
			&ReLU{"r2"},
			NewFC("fc", 10, 5),
			&Softmax{"prob"},
		},
	}
	in := randTensor(rand.New(rand.NewSource(29)), net.Input)

	var ref, blk *Tensor
	withBackend(compute.Reference{}, func() {
		out, err := net.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		ref = out
	})
	withBackend(compute.Blocked{}, func() {
		out, err := net.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		blk = out
	})

	for i := range ref.Data {
		if !closeEnough(ref.Data[i], blk.Data[i], 1e-7) {
			t.Fatalf("score[%d] = %v (blocked) vs %v (reference)", i, blk.Data[i], ref.Data[i])
		}
	}
}

// Under the blocked backend a fixed-seed forward pass must produce
// identical bytes across repeated runs and across GOMAXPROCS settings:
// the parallel GEMM partitions work deterministically.
func TestBlockedForwardDeterministic(t *testing.T) {
	conv := NewConv("det", 32, 3, 1, 1, 2, 9) // grouped, im2col+GEMM path
	in := randTensor(rand.New(rand.NewSource(31)), Shape{C: 16, H: 21, W: 21})

	run := func() []uint64 {
		var out *Tensor
		withBackend(compute.Blocked{}, func() { out = conv.Forward(in) })
		bits := make([]uint64, len(out.Data))
		for i, v := range out.Data {
			bits[i] = math.Float64bits(v)
		}
		return bits
	}

	first := run()
	for trial := 0; trial < 3; trial++ {
		if got := run(); !sameBits(first, got) {
			t.Fatalf("rerun %d changed bytes", trial)
		}
	}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, procs := range []int{1, 2, 3, orig} {
		runtime.GOMAXPROCS(procs)
		if got := run(); !sameBits(first, got) {
			t.Fatalf("GOMAXPROCS=%d changed bytes", procs)
		}
	}
}

func sameBits(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
