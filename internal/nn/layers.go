package nn

import (
	"fmt"
	"math"

	"clustersoc/internal/compute"
	"clustersoc/internal/kernels"
)

// Layer is one network stage.
type Layer interface {
	Name() string
	// OutShape returns the output shape for a given input shape.
	OutShape(in Shape) Shape
	// Forward runs inference.
	Forward(in *Tensor) *Tensor
	// FLOPs returns the floating-point operations for one input of the
	// given shape (multiply and add counted separately).
	FLOPs(in Shape) float64
	// Params returns the learned parameter count.
	Params(in Shape) int
}

// Conv is a 2D convolution with square kernels, ReLU optional via Act.
type Conv struct {
	Label       string
	OutC, K     int
	Stride, Pad int
	Groups      int
	seed        uint64
	weights     []float64
	bias        []float64
	weightsInC  int
}

// NewConv builds a convolution layer. groups=2 reproduces AlexNet's split
// convolutions.
func NewConv(label string, outC, k, stride, pad, groups int, seed uint64) *Conv {
	if groups < 1 {
		groups = 1
	}
	return &Conv{Label: label, OutC: outC, K: k, Stride: stride, Pad: pad, Groups: groups, seed: seed}
}

// Name returns the layer label.
func (c *Conv) Name() string { return c.Label }

// OutShape computes the convolution output shape.
func (c *Conv) OutShape(in Shape) Shape {
	oh := (in.H+2*c.Pad-c.K)/c.Stride + 1
	ow := (in.W+2*c.Pad-c.K)/c.Stride + 1
	return Shape{C: c.OutC, H: oh, W: ow}
}

// Params counts weights + biases.
func (c *Conv) Params(in Shape) int {
	return c.OutC*(in.C/c.Groups)*c.K*c.K + c.OutC
}

// FLOPs counts 2 ops (mul+add) per MAC plus the bias add.
func (c *Conv) FLOPs(in Shape) float64 {
	out := c.OutShape(in)
	macs := float64(out.Elems()) * float64(in.C/c.Groups) * float64(c.K*c.K)
	return 2*macs + float64(out.Elems())
}

func (c *Conv) ensureWeights(inC int) {
	if c.weights != nil && c.weightsInC == inC {
		return
	}
	c.weightsInC = inC
	c.weights = make([]float64, c.OutC*(inC/c.Groups)*c.K*c.K)
	c.bias = make([]float64, c.OutC)
	fillWeights(c.weights, c.seed, (inC/c.Groups)*c.K*c.K)
	fillWeights(c.bias, c.seed^0x9e3779b9, 1)
}

// Forward runs the convolution. Under the default Reference backend it
// executes the seed's direct loops (output channels in parallel),
// preserving the exact summation order; an accelerated backend routes
// through the im2col→GEMM path — the dispatch Caffe makes when cuDNN is
// available — falling back to the direct loops if the geometry is one
// im2col rejects.
func (c *Conv) Forward(in *Tensor) *Tensor {
	c.ensureWeights(in.Shape.C)
	if compute.Default().Accelerated() {
		if out, err := c.ForwardGEMM(in); err == nil {
			return out
		}
	}
	out := NewTensor(c.OutShape(in.Shape))
	inCPerG := in.Shape.C / c.Groups
	outCPerG := c.OutC / c.Groups
	kernels.ParallelFor(c.OutC, func(lo, hi int) {
		for oc := lo; oc < hi; oc++ {
			g := oc / outCPerG
			for oh := 0; oh < out.Shape.H; oh++ {
				for ow := 0; ow < out.Shape.W; ow++ {
					sum := c.bias[oc]
					for ic := 0; ic < inCPerG; ic++ {
						icAbs := g*inCPerG + ic
						wBase := ((oc*inCPerG + ic) * c.K) * c.K
						for kh := 0; kh < c.K; kh++ {
							ih := oh*c.Stride + kh - c.Pad
							if ih < 0 || ih >= in.Shape.H {
								continue
							}
							for kw := 0; kw < c.K; kw++ {
								iw := ow*c.Stride + kw - c.Pad
								if iw < 0 || iw >= in.Shape.W {
									continue
								}
								sum += c.weights[wBase+kh*c.K+kw] * in.At(icAbs, ih, iw)
							}
						}
					}
					out.Set(oc, oh, ow, sum)
				}
			}
		}
	})
	return out
}

// ReLU is the rectifier activation.
type ReLU struct{ Label string }

func (r *ReLU) Name() string            { return r.Label }
func (r *ReLU) OutShape(in Shape) Shape { return in }
func (r *ReLU) Params(Shape) int        { return 0 }
func (r *ReLU) FLOPs(in Shape) float64  { return float64(in.Elems()) }

// Forward clamps negatives to zero.
func (r *ReLU) Forward(in *Tensor) *Tensor {
	out := NewTensor(in.Shape)
	for i, v := range in.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// Pool is max or average pooling.
type Pool struct {
	Label   string
	K       int
	Stride  int
	Pad     int
	Average bool
	// Global pools the whole spatial extent (GoogleNet's final layer).
	Global bool
}

func (p *Pool) Name() string { return p.Label }

// OutShape computes the pooled shape (ceil mode, as Caffe pools).
func (p *Pool) OutShape(in Shape) Shape {
	if p.Global {
		return Shape{C: in.C, H: 1, W: 1}
	}
	oh := int(math.Ceil(float64(in.H+2*p.Pad-p.K)/float64(p.Stride))) + 1
	ow := int(math.Ceil(float64(in.W+2*p.Pad-p.K)/float64(p.Stride))) + 1
	return Shape{C: in.C, H: oh, W: ow}
}

func (p *Pool) Params(Shape) int { return 0 }

// FLOPs counts one op per window element.
func (p *Pool) FLOPs(in Shape) float64 {
	out := p.OutShape(in)
	k := p.K
	if p.Global {
		return float64(in.Elems())
	}
	return float64(out.Elems()) * float64(k*k)
}

// Forward pools.
func (p *Pool) Forward(in *Tensor) *Tensor {
	out := NewTensor(p.OutShape(in.Shape))
	k, stride, pad := p.K, p.Stride, p.Pad
	if p.Global {
		k, stride, pad = in.Shape.H, 1, 0
	}
	kernels.ParallelFor(in.Shape.C, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			for oh := 0; oh < out.Shape.H; oh++ {
				for ow := 0; ow < out.Shape.W; ow++ {
					best := math.Inf(-1)
					sum, cnt := 0.0, 0
					for kh := 0; kh < k; kh++ {
						ih := oh*stride + kh - pad
						if ih < 0 || ih >= in.Shape.H {
							continue
						}
						for kw := 0; kw < k; kw++ {
							iw := ow*stride + kw - pad
							if iw < 0 || iw >= in.Shape.W {
								continue
							}
							v := in.At(c, ih, iw)
							if v > best {
								best = v
							}
							sum += v
							cnt++
						}
					}
					if cnt == 0 {
						continue
					}
					if p.Average || p.Global {
						out.Set(c, oh, ow, sum/float64(cnt))
					} else {
						out.Set(c, oh, ow, best)
					}
				}
			}
		}
	})
	return out
}

// LRN is AlexNet/GoogleNet's local response normalization across channels.
type LRN struct {
	Label       string
	Size        int
	Alpha, Beta float64
}

func (l *LRN) Name() string            { return l.Label }
func (l *LRN) OutShape(in Shape) Shape { return in }
func (l *LRN) Params(Shape) int        { return 0 }

// FLOPs charges the window sum plus the power/divide per element.
func (l *LRN) FLOPs(in Shape) float64 { return float64(in.Elems()) * float64(l.Size+6) }

// Forward normalizes each activation by its cross-channel neighbourhood.
func (l *LRN) Forward(in *Tensor) *Tensor {
	out := NewTensor(in.Shape)
	half := l.Size / 2
	kernels.ParallelFor(in.Shape.C, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			for h := 0; h < in.Shape.H; h++ {
				for w := 0; w < in.Shape.W; w++ {
					sum := 0.0
					for cc := c - half; cc <= c+half; cc++ {
						if cc < 0 || cc >= in.Shape.C {
							continue
						}
						v := in.At(cc, h, w)
						sum += v * v
					}
					scale := math.Pow(1+l.Alpha*sum/float64(l.Size), -l.Beta)
					out.Set(c, h, w, in.At(c, h, w)*scale)
				}
			}
		}
	})
	return out
}

// FC is a fully connected layer over the flattened input.
type FC struct {
	Label   string
	Out     int
	seed    uint64
	weights []float64
	bias    []float64
	inLen   int
}

// NewFC builds a fully connected layer.
func NewFC(label string, out int, seed uint64) *FC {
	return &FC{Label: label, Out: out, seed: seed}
}

func (f *FC) Name() string            { return f.Label }
func (f *FC) OutShape(in Shape) Shape { return Shape{C: f.Out, H: 1, W: 1} }
func (f *FC) Params(in Shape) int     { return f.Out*in.Elems() + f.Out }
func (f *FC) FLOPs(in Shape) float64  { return 2*float64(f.Out)*float64(in.Elems()) + float64(f.Out) }

// Forward multiplies by the weight matrix.
func (f *FC) Forward(in *Tensor) *Tensor {
	n := in.Shape.Elems()
	if f.weights == nil || f.inLen != n {
		f.inLen = n
		f.weights = make([]float64, f.Out*n)
		f.bias = make([]float64, f.Out)
		fillWeights(f.weights, f.seed, n)
		fillWeights(f.bias, f.seed^0xabcdef, 1)
	}
	// y = W*x + b as an accumulating Gemv over the bias vector, through
	// the compute backend: the Reference engine reproduces the seed loop
	// (s starts at the bias, then adds in column order) bit-for-bit.
	out := NewTensor(Shape{C: f.Out, H: 1, W: 1})
	copy(out.Data, f.bias)
	compute.Default().Gemv(out.Data, f.weights, in.Data, f.Out, n)
	return out
}

// Softmax converts logits to probabilities.
type Softmax struct{ Label string }

func (s *Softmax) Name() string            { return s.Label }
func (s *Softmax) OutShape(in Shape) Shape { return in }
func (s *Softmax) Params(Shape) int        { return 0 }
func (s *Softmax) FLOPs(in Shape) float64  { return 4 * float64(in.Elems()) }

// Forward computes a numerically stable softmax over all elements.
func (s *Softmax) Forward(in *Tensor) *Tensor {
	out := NewTensor(in.Shape)
	max := math.Inf(-1)
	for _, v := range in.Data {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range in.Data {
		e := math.Exp(v - max)
		out.Data[i] = e
		sum += e
	}
	for i := range out.Data {
		out.Data[i] /= sum
	}
	return out
}

// Dropout is inference-mode identity (kept so graphs match the prototxt).
type Dropout struct{ Label string }

func (d *Dropout) Name() string               { return d.Label }
func (d *Dropout) OutShape(in Shape) Shape    { return in }
func (d *Dropout) Params(Shape) int           { return 0 }
func (d *Dropout) FLOPs(Shape) float64        { return 0 }
func (d *Dropout) Forward(in *Tensor) *Tensor { return in }

// Inception is GoogleNet's module: four parallel branches concatenated
// along channels.
type Inception struct {
	Label    string
	Branches [][]Layer
}

func (m *Inception) Name() string { return m.Label }

// OutShape concatenates branch channels.
func (m *Inception) OutShape(in Shape) Shape {
	var c int
	var hw Shape
	for _, br := range m.Branches {
		s := in
		for _, l := range br {
			s = l.OutShape(s)
		}
		c += s.C
		hw = s
	}
	return Shape{C: c, H: hw.H, W: hw.W}
}

// Params sums branch parameters.
func (m *Inception) Params(in Shape) int {
	total := 0
	for _, br := range m.Branches {
		s := in
		for _, l := range br {
			total += l.Params(s)
			s = l.OutShape(s)
		}
	}
	return total
}

// FLOPs sums branch FLOPs.
func (m *Inception) FLOPs(in Shape) float64 {
	total := 0.0
	for _, br := range m.Branches {
		s := in
		for _, l := range br {
			total += l.FLOPs(s)
			s = l.OutShape(s)
		}
	}
	return total
}

// Forward runs the branches and concatenates.
func (m *Inception) Forward(in *Tensor) *Tensor {
	outs := make([]*Tensor, len(m.Branches))
	for i, br := range m.Branches {
		t := in
		for _, l := range br {
			t = l.Forward(t)
		}
		outs[i] = t
	}
	shape := m.OutShape(in.Shape)
	out := NewTensor(shape)
	cOff := 0
	for _, t := range outs {
		copy(out.Data[cOff*shape.H*shape.W:], t.Data)
		cOff += t.Shape.C
	}
	return out
}

// Network is a sequential stack of layers.
type Network struct {
	Name   string
	Input  Shape
	Layers []Layer
}

// OutShape returns the network's final output shape.
func (n *Network) OutShape() Shape {
	s := n.Input
	for _, l := range n.Layers {
		s = l.OutShape(s)
	}
	return s
}

// TotalFLOPs returns the forward-pass FLOPs for one input.
func (n *Network) TotalFLOPs() float64 {
	s := n.Input
	total := 0.0
	for _, l := range n.Layers {
		total += l.FLOPs(s)
		s = l.OutShape(s)
	}
	return total
}

// TotalParams returns the learned parameter count.
func (n *Network) TotalParams() int {
	s := n.Input
	total := 0
	for _, l := range n.Layers {
		total += l.Params(s)
		s = l.OutShape(s)
	}
	return total
}

// Forward runs one image through the network.
func (n *Network) Forward(in *Tensor) (*Tensor, error) {
	if in.Shape != n.Input {
		return nil, fmt.Errorf("nn: %s expects input %v, got %v", n.Name, n.Input, in.Shape)
	}
	t := in
	for _, l := range n.Layers {
		t = l.Forward(t)
	}
	return t, nil
}

// WeightBytes returns the model size in bytes at 4 bytes/parameter (FP32,
// as Caffe deploys).
func (n *Network) WeightBytes() float64 { return 4 * float64(n.TotalParams()) }
