package nn

import "clustersoc/internal/kernels"

// im2col + GEMM convolution — the algorithm Caffe actually executes on
// the GPU (and the reason conv layers inherit GEMM's high operational
// intensity in Table II): the input patches are unrolled into a matrix
// and the convolution becomes one big multiply against the unrolled
// weights. ForwardGEMM must produce exactly what the direct loops in
// Conv.Forward produce.

// Im2col unrolls the input into a (C*K*K) x (outH*outW) matrix for the
// given convolution geometry. Out-of-bounds taps contribute zeros.
func Im2col(in *Tensor, k, stride, pad int) *kernels.Matrix {
	outH := (in.Shape.H+2*pad-k)/stride + 1
	outW := (in.Shape.W+2*pad-k)/stride + 1
	rows := in.Shape.C * k * k
	cols := outH * outW
	m := kernels.NewMatrix(rows, cols)
	for c := 0; c < in.Shape.C; c++ {
		for kh := 0; kh < k; kh++ {
			for kw := 0; kw < k; kw++ {
				row := (c*k+kh)*k + kw
				for oh := 0; oh < outH; oh++ {
					ih := oh*stride + kh - pad
					if ih < 0 || ih >= in.Shape.H {
						continue
					}
					for ow := 0; ow < outW; ow++ {
						iw := ow*stride + kw - pad
						if iw < 0 || iw >= in.Shape.W {
							continue
						}
						m.Set(row, oh*outW+ow, in.At(c, ih, iw))
					}
				}
			}
		}
	}
	return m
}

// ForwardGEMM runs the convolution as weights x im2col(input) + bias,
// per group. It is bit-compatible with Conv.Forward up to floating-point
// summation order within a row, and exercised against it in the tests.
func (c *Conv) ForwardGEMM(in *Tensor) (*Tensor, error) {
	c.ensureWeights(in.Shape.C)
	out := NewTensor(c.OutShape(in.Shape))
	inCPerG := in.Shape.C / c.Groups
	outCPerG := c.OutC / c.Groups
	spatial := out.Shape.H * out.Shape.W

	for g := 0; g < c.Groups; g++ {
		// Slice the group's input channels into a view tensor.
		gin := NewTensor(Shape{C: inCPerG, H: in.Shape.H, W: in.Shape.W})
		copy(gin.Data, in.Data[g*inCPerG*in.Shape.H*in.Shape.W:(g+1)*inCPerG*in.Shape.H*in.Shape.W])
		cols := Im2col(gin, c.K, c.Stride, c.Pad)

		// Weight matrix for the group: outCPerG x (inCPerG*K*K).
		wm := kernels.NewMatrix(outCPerG, inCPerG*c.K*c.K)
		copy(wm.Data, c.weights[g*outCPerG*inCPerG*c.K*c.K:(g+1)*outCPerG*inCPerG*c.K*c.K])

		prod, err := kernels.MatMul(wm, cols)
		if err != nil {
			return nil, err
		}
		for oc := 0; oc < outCPerG; oc++ {
			ocAbs := g*outCPerG + oc
			base := ocAbs * spatial
			bias := c.bias[ocAbs]
			for s := 0; s < spatial; s++ {
				out.Data[base+s] = prod.Data[oc*spatial+s] + bias
			}
		}
	}
	return out, nil
}
