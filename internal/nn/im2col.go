package nn

import (
	"fmt"

	"clustersoc/internal/compute"
	"clustersoc/internal/kernels"
)

// im2col + GEMM convolution — the algorithm Caffe actually executes on
// the GPU (and the reason conv layers inherit GEMM's high operational
// intensity in Table II): the input patches are unrolled into a matrix
// and the convolution becomes one big multiply against the unrolled
// weights. Both the unroll and the GEMM dispatch through the compute
// backend (internal/compute), so an accelerated engine speeds up exactly
// the operations cuDNN would.

// Im2col unrolls the input into a (C*K*K) x (outH*outW) matrix for the
// given convolution geometry. Out-of-bounds taps contribute zeros. The
// geometry is validated: the kernel must be positive and fit inside the
// zero-padded input, the stride positive, and the padding non-negative —
// the degenerate cases that would otherwise produce an empty or
// negatively-shaped patch matrix.
func Im2col(in *Tensor, k, stride, pad int) (*kernels.Matrix, error) {
	if in.Shape.C < 1 || in.Shape.H < 1 || in.Shape.W < 1 {
		return nil, fmt.Errorf("nn: im2col on empty input %v", in.Shape)
	}
	if k < 1 {
		return nil, fmt.Errorf("nn: im2col kernel %d must be positive", k)
	}
	if stride < 1 {
		return nil, fmt.Errorf("nn: im2col stride %d must be positive", stride)
	}
	if pad < 0 {
		return nil, fmt.Errorf("nn: im2col padding %d must be non-negative", pad)
	}
	if k > in.Shape.H+2*pad || k > in.Shape.W+2*pad {
		return nil, fmt.Errorf("nn: im2col kernel %d exceeds padded input %dx%d (pad %d)",
			k, in.Shape.H, in.Shape.W, pad)
	}
	outH := (in.Shape.H+2*pad-k)/stride + 1
	outW := (in.Shape.W+2*pad-k)/stride + 1
	m := kernels.NewMatrix(in.Shape.C*k*k, outH*outW)
	compute.Default().Im2col(m.Data, in.Data, in.Shape.C, in.Shape.H, in.Shape.W, k, stride, pad)
	return m, nil
}

// ForwardGEMM runs the convolution as weights x im2col(input) + bias,
// per group. It is bit-compatible with Conv.Forward up to floating-point
// summation order within a row, and exercised against it in the tests.
func (c *Conv) ForwardGEMM(in *Tensor) (*Tensor, error) {
	c.ensureWeights(in.Shape.C)
	out := NewTensor(c.OutShape(in.Shape))
	inCPerG := in.Shape.C / c.Groups
	outCPerG := c.OutC / c.Groups
	spatial := out.Shape.H * out.Shape.W

	for g := 0; g < c.Groups; g++ {
		// Slice the group's input channels into a view tensor.
		gin := NewTensor(Shape{C: inCPerG, H: in.Shape.H, W: in.Shape.W})
		copy(gin.Data, in.Data[g*inCPerG*in.Shape.H*in.Shape.W:(g+1)*inCPerG*in.Shape.H*in.Shape.W])
		cols, err := Im2col(gin, c.K, c.Stride, c.Pad)
		if err != nil {
			return nil, err
		}

		// Weight matrix for the group: outCPerG x (inCPerG*K*K).
		wm := kernels.NewMatrix(outCPerG, inCPerG*c.K*c.K)
		copy(wm.Data, c.weights[g*outCPerG*inCPerG*c.K*c.K:(g+1)*outCPerG*inCPerG*c.K*c.K])

		prod, err := kernels.MatMul(wm, cols)
		if err != nil {
			return nil, err
		}
		for oc := 0; oc < outCPerG; oc++ {
			ocAbs := g*outCPerG + oc
			base := ocAbs * spatial
			bias := c.bias[ocAbs]
			for s := 0; s < spatial; s++ {
				out.Data[base+s] = prod.Data[oc*spatial+s] + bias
			}
		}
	}
	return out, nil
}
