package sim

// Conservative parallel discrete-event simulation (PDES).
//
// A PDES run partitions the simulation into per-node child engines, each
// with its own calendar, clock, and sequence counter. Children execute
// event bursts concurrently on a bounded worker pool inside a conservative
// window derived from the network's minimum link latency (the lookahead):
// no partition may execute an event at or beyond the current bound, so a
// cross-partition message booked at time t — whose earliest effect on a
// peer calendar is t + lookahead — can never land behind a peer's executed
// frontier.
//
// Cross-partition operations (MPI sends crossing nodes, NFS fetches) do
// not ride the window: they read and mutate shared port state and the
// destination rank's matching structures at the instant they execute, so
// they are serialized. The issuing process parks (AcquireCross) and the
// coordinator grants parked operations one at a time in canonical
// (time, pedigree) order — the position the operation's executing event
// holds in the sequential total order — each grant only firing once every
// other partition provably cannot produce an earlier one. Grant order — not
// goroutine scheduling — therefore determines every shared-state mutation
// order, which is what makes a PDES run bit-identical across worker
// counts and GOMAXPROCS settings.
//
// Determinism argument, inductively: given identical partition states at a
// round boundary, the stall positions, grant sequence, and released bound
// are pure functions of that state; bursts between boundaries touch only
// partition-local state; therefore the states at the next boundary are
// identical too. Nothing in the protocol reads wall-clock time or depends
// on which worker executes a burst.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// childPhase is the coordinator's view of one partition child.
type childPhase uint8

const (
	// cPaused: stalled — either at the conservative bound or with an empty
	// calendar — with pos holding the next event time (+Inf when none).
	cPaused childPhase = iota
	// cGo: released by the coordinator; the runner should start a burst.
	cGo
	// cRunning: a burst is in progress on the child's runner.
	cRunning
	// cParked: a process parked in AcquireCross; pos/note hold the
	// operation's time and destination.
	cParked
	// cGrant: the coordinator told the runner to deliver the grant.
	cGrant
)

// crossNote describes a parked cross-partition operation.
type crossNote struct {
	t   float64 // simulation time of the operation
	ped *ped    // pedigree of the event executing the operation
	dst int     // destination partition (may be out of range: no child)
}

// childState is the coordinator-side record for one child. All fields are
// guarded by PDES.mu.
type childState struct {
	phase childPhase
	pos   float64    // stall position (valid when paused or parked)
	note  *crossNote // the parked operation (parked/grant phases)
	excl  bool       // grant delivered, exclusive section still open
}

// PDES coordinates conservative parallel execution across partition child
// engines. Construct with NewPDES, bind one partition per network node via
// Child, then call Run once all processes are spawned.
type PDES struct {
	kids []*Engine
	look float64 // conservative lookahead window, seconds (> 0)

	mu       sync.Mutex
	cond     *sync.Cond
	st       []childState
	exit     bool
	panicked any
	slots    chan struct{} // bounds concurrently bursting children
	wg       sync.WaitGroup
	rootSeq  uint32 // pre-run spawn counter, shared across children (pedigree roots)
}

// NewPDES creates a coordinator with parts partition children. lookahead
// is the conservative window (the network's minimum link latency) and must
// be positive; workers bounds how many partitions burst concurrently
// (clamped to [1, parts]).
func NewPDES(parts int, lookahead float64, workers int) *PDES {
	if parts <= 0 {
		panic("sim: NewPDES needs at least one partition")
	}
	if !(lookahead > 0) {
		panic(fmt.Sprintf("sim: NewPDES lookahead must be positive, got %g", lookahead))
	}
	if workers < 1 {
		workers = 1
	}
	if workers > parts {
		workers = parts
	}
	d := &PDES{
		kids:  make([]*Engine, parts),
		look:  lookahead,
		st:    make([]childState, parts),
		slots: make(chan struct{}, workers),
	}
	d.cond = sync.NewCond(&d.mu)
	for i := range d.kids {
		c := NewEngine()
		c.pd = d
		c.pid = i
		c.strict = true
		c.grant = make(chan struct{})
		d.kids[i] = c
	}
	return d
}

// Parts returns the number of partitions.
func (d *PDES) Parts() int { return len(d.kids) }

// Lookahead returns the conservative window in seconds.
func (d *PDES) Lookahead() float64 { return d.look }

// Child returns partition i's engine. Model components belonging to node i
// (processes, pipes, accelerators) must be constructed against it.
func (d *PDES) Child(i int) *Engine { return d.kids[i] }

// AcquireCross parks the driving process until the PDES coordinator grants
// its cross-partition operation. dst names the destination partition (an
// out-of-range value — e.g. the file-server node, which has no partition —
// waives the destination-stall requirement). On a sequential engine, or
// when the process is already inside an open exclusive section
// (back-to-back zero-delay operations), this is a no-op.
//
// The exclusive section it opens ends at the process's next yield; until
// then the process may freely touch shared network/matching state and
// insert events into the (stalled) destination partition's calendar.
func (e *Engine) AcquireCross(dst int) {
	if e.pd == nil || e.exclArmed {
		return
	}
	e.ret <- runStatus{cross: &crossNote{t: e.now, ped: e.curPed, dst: dst}}
	<-e.grant
	e.exclArmed = true
}

// atomicNow returns the child's clock as last published by its event loop.
// Safe to call from the coordinator while the child bursts.
func (e *Engine) atomicNow() float64 {
	return math.Float64frombits(atomic.LoadUint64(&e.atomNow))
}

// nextTime returns the child's earliest pending event time, or +Inf.
// Callers must know the child is stalled.
func (e *Engine) nextTime() float64 {
	if len(e.queue) == 0 {
		return math.Inf(1)
	}
	return e.queue[0].time
}

// Run executes all partitions to completion and returns the final
// simulation time (the maximum child clock). It panics with an aggregate
// diagnostic if the simulation deadlocks, and re-raises any panic escaping
// a process body. Run must be called exactly once.
func (d *PDES) Run() float64 {
	for i := range d.kids {
		d.st[i] = childState{phase: cPaused, pos: d.kids[i].nextTime()}
		d.wg.Add(1)
		go d.runChild(i)
	}
	d.mu.Lock()
	for {
		d.waitAllStalled()
		if d.panicked != nil {
			break
		}
		if d.grantLoop() {
			// Granted children are bursting; wait for them to stall again
			// before computing the next bound (they may park new ops).
			continue
		}
		if d.panicked != nil {
			break
		}
		// All stalled, no grantable operation. Find the horizon. Paused
		// positions are re-read from the calendars: a granted operation may
		// have inserted events into a stalled destination since that child
		// last reported its stall.
		minPos, parkT := math.Inf(1), math.Inf(1)
		var parkPed *ped
		for i := range d.st {
			s := &d.st[i]
			if s.phase == cPaused {
				s.pos = d.kids[i].nextTime()
			}
			if s.pos < minPos {
				minPos = s.pos
			}
			if s.phase == cParked &&
				(s.pos < parkT || (s.pos == parkT && pedBefore(s.note.ped, parkPed))) {
				parkT, parkPed = s.pos, s.note.ped
			}
		}
		if math.IsInf(minPos, 1) {
			break // nothing pending anywhere: finished (or deadlocked)
		}
		// Release paused children up to the conservative bound. The bound
		// never passes a parked operation: its port bookings and match
		// mutations happen at its own (time, pedigree) position, and peers
		// must not execute anything ordered after it. Events tying the
		// parked time but ordered before it by pedigree — the events a
		// sequential run would execute first — are admitted via limitPed.
		limT, limPed := minPos+d.look, (*ped)(nil)
		if parkT < limT {
			limT, limPed = parkT, parkPed
		}
		for i := range d.st {
			s := &d.st[i]
			if s.phase != cPaused {
				continue
			}
			c := d.kids[i]
			if len(c.queue) == 0 {
				continue
			}
			h := &c.queue[0]
			if h.time < limT || (h.time == limT && limPed != nil && pedBefore(h.ped, limPed)) {
				c.limit = limT
				c.limitPed = limPed
				s.phase = cGo
			}
		}
		d.cond.Broadcast()
	}
	d.exit = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
	if d.panicked != nil {
		panic(d.panicked)
	}
	procs := 0
	for _, c := range d.kids {
		procs += c.procs
	}
	if procs > 0 {
		msg := fmt.Sprintf("sim: deadlock: %d process(es) blocked across %d partitions with no pending events", procs, len(d.kids))
		var neg, nan uint64
		for _, c := range d.kids {
			neg += c.clampedNeg
			nan += c.clampedNaN
		}
		if neg+nan > 0 {
			msg += fmt.Sprintf(" (%d negative and %d NaN delays were clamped to 0 — a model emitted invalid delays)", neg, nan)
		}
		panic(msg)
	}
	final := 0.0
	for _, c := range d.kids {
		if c.now > final {
			final = c.now
		}
	}
	return final
}

// waitAllStalled blocks until no child is running, released, or inside an
// open exclusive section. Called with mu held.
func (d *PDES) waitAllStalled() {
	for {
		busy := false
		for i := range d.st {
			s := &d.st[i]
			if s.phase == cRunning || s.phase == cGo || s.phase == cGrant || s.excl {
				busy = true
				break
			}
		}
		if !busy {
			return
		}
		d.cond.Wait()
	}
}

// grantLoop grants parked cross-partition operations in canonical
// (time, pedigree) order for as long as one is provably safe to release.
// Returns whether any grant was delivered. Called with mu held.
func (d *PDES) grantLoop() bool {
	granted := false
	for d.panicked == nil {
		// Earliest parked operation by (time, pedigree) — the position its
		// executing event holds in the sequential total order.
		best := -1
		for i := range d.st {
			s := &d.st[i]
			if s.phase != cParked {
				continue
			}
			if best < 0 || s.pos < d.st[best].pos ||
				(s.pos == d.st[best].pos && pedBefore(s.note.ped, d.st[best].note.ped)) {
				best = i
			}
		}
		if best < 0 {
			return granted
		}
		t, bp := d.st[best].pos, d.st[best].note.ped
		// A paused child whose calendar head orders before the candidate —
		// earlier time, or the same time with an earlier pedigree — would
		// execute first in a sequential run and could itself produce an
		// earlier operation, so the bound must release it before anything
		// is granted.
		ready := true
		for i := range d.st {
			s := &d.st[i]
			if i == best {
				continue
			}
			switch s.phase {
			case cPaused:
				// Fresh read: an earlier grant may have fed this calendar.
				c := d.kids[i]
				if len(c.queue) > 0 {
					h := &c.queue[0]
					if h.time < t || (h.time == t && pedBefore(h.ped, bp)) {
						return granted // bound release must come first
					}
				}
			case cParked:
				// Ordered after best by (time, pedigree); no constraint.
			default:
				// Running (or mid-grant): must have provably passed t, or
				// it could still park an operation ordered before best's.
				if d.kids[i].atomicNow() <= t {
					ready = false
				}
			}
		}
		// Memory safety: the destination partition's calendar and matching
		// state are mutated by the granted process, so the destination must
		// be stalled (it stays stalled: only this coordinator releases).
		if dst := d.st[best].note.dst; ready && dst >= 0 && dst < len(d.st) && dst != best {
			if ph := d.st[dst].phase; ph == cRunning || ph == cGo || ph == cGrant || d.st[dst].excl {
				ready = false
			}
		}
		if !ready {
			d.cond.Wait() // horizons only advance; re-evaluate on any stall
			continue
		}
		s := &d.st[best]
		s.phase = cGrant
		s.excl = true
		granted = true
		d.cond.Broadcast()
		// Wait for the exclusive section to close before ordering the next
		// grant; the child then keeps bursting concurrently.
		for d.st[best].excl && d.panicked == nil {
			d.cond.Wait()
		}
	}
	return granted
}

// runChild is the per-partition runner goroutine: it starts bursts and
// delivers grants when told to, and reports stalls back to the
// coordinator. The actual event work runs on process goroutines via the
// engine's baton protocol; the runner is the stationary endpoint of the
// child's ret channel.
func (d *PDES) runChild(pid int) {
	defer d.wg.Done()
	c := d.kids[pid]
	d.mu.Lock()
	for {
		for d.st[pid].phase != cGo && d.st[pid].phase != cGrant && !d.exit {
			d.cond.Wait()
		}
		if d.exit {
			d.mu.Unlock()
			return
		}
		grant := d.st[pid].phase == cGrant
		d.st[pid].phase = cRunning
		d.mu.Unlock()

		d.slots <- struct{}{} // acquire a worker slot
		if grant {
			c.grant <- struct{}{}
			d.pump(pid, c)
		} else if c.drive(nil) == drivePaused {
			d.stallPaused(pid, c)
		} else {
			d.pump(pid, c)
		}
		d.mu.Lock()
	}
}

// pump consumes the child's ret channel until the burst stalls (pause,
// park, or panic), maintaining coordinator state along the way.
func (d *PDES) pump(pid int, c *Engine) {
	for {
		st := <-c.ret
		switch {
		case st.panicVal != nil:
			<-d.slots
			d.mu.Lock()
			if d.panicked == nil {
				d.panicked = st.panicVal
			}
			d.st[pid].phase = cPaused
			d.st[pid].pos = math.Inf(1)
			d.st[pid].excl = false
			d.cond.Broadcast()
			d.mu.Unlock()
			return
		case st.exclEnd:
			d.mu.Lock()
			d.st[pid].excl = false
			d.cond.Broadcast()
			d.mu.Unlock()
		case st.cross != nil:
			<-d.slots
			d.mu.Lock()
			d.st[pid].phase = cParked
			d.st[pid].pos = st.cross.t
			d.st[pid].note = st.cross
			d.cond.Broadcast()
			d.mu.Unlock()
			return
		default:
			d.stallPaused(pid, c)
			return
		}
	}
}

// stallPaused records a bound stall (releasing the worker slot) and wakes
// the coordinator.
func (d *PDES) stallPaused(pid int, c *Engine) {
	<-d.slots
	d.mu.Lock()
	d.st[pid].phase = cPaused
	d.st[pid].pos = c.nextTime()
	d.st[pid].note = nil
	d.cond.Broadcast()
	d.mu.Unlock()
}

// Events returns the total events processed across all partitions.
func (d *PDES) Events() uint64 {
	var n uint64
	for _, c := range d.kids {
		n += c.events
	}
	return n
}

// StaleWakes returns the total stale wake-ups across all partitions.
func (d *PDES) StaleWakes() uint64 {
	var n uint64
	for _, c := range d.kids {
		n += c.staleWakes
	}
	return n
}

// BlockedSeconds sums blocked time across partitions in partition order.
// Note the sum is FP-associated per partition first, unlike the sequential
// engine's single accumulator; profiles (not artifacts) may differ in
// final bits.
func (d *PDES) BlockedSeconds() float64 {
	var s float64
	for _, c := range d.kids {
		s += c.blocked
	}
	return s
}

// QueueHighWater returns the deepest any partition calendar has been.
func (d *PDES) QueueHighWater() int {
	m := 0
	for _, c := range d.kids {
		if c.maxQueue > m {
			m = c.maxQueue
		}
	}
	return m
}

// ClampedDelays aggregates clamp counters across partitions.
func (d *PDES) ClampedDelays() (negative, nan uint64) {
	for _, c := range d.kids {
		negative += c.clampedNeg
		nan += c.clampedNaN
	}
	return
}
