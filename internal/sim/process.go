package sim

// Process is a goroutine-backed simulation process. A process body runs on
// its own goroutine but only while it holds the engine's baton, so the
// ensemble behaves like a set of coroutines: there is no true concurrency
// and no need for locks anywhere in the simulation.
//
// A process blocks by calling Sleep, Wait, Pipe.Transfer, or
// Resource.Acquire; each of those schedules a resumption event and yields
// control back to the engine.
type Process struct {
	eng     *Engine
	name    string
	resume  chan struct{}
	done    bool
	blocked float64 // simulated seconds spent blocked (no scheduled resumption)
}

// Spawn creates a process running body and schedules its first activation
// at the current simulation time. Spawn may be called before Run or from
// inside any event/process context.
//
// When the body returns, the goroutine does not hand control anywhere —
// it keeps driving the event loop itself (drive) until the loop activates
// another process or pauses, then exits. A panic escaping the body (or a
// callback the goroutine was driving) is recovered and forwarded to the
// Run/RunUntil caller, which re-raises it.
func (e *Engine) Spawn(name string, body func(p *Process)) *Process {
	p := &Process{eng: e, name: name, resume: make(chan struct{})}
	e.procs++
	go func() {
		defer func() {
			if r := recover(); r != nil {
				e.ret <- runStatus{panicVal: r}
			}
		}()
		<-p.resume
		body(p)
		p.done = true
		e.procs--
		e.drive(p)
	}()
	e.wake(0, p)
	return p
}

// yield passes the baton on and parks until this process's next activation.
// The caller must already have arranged for a future activation (otherwise
// the process never runs again and the engine reports a deadlock when the
// calendar drains). Driving the loop from the yielding goroutine — rather
// than waking a central engine goroutine that then wakes the next process —
// is what makes a wake-up a single channel handoff.
func (p *Process) yield() {
	if p.eng.drive(p) == driveSelf {
		// Our own wake-up was the next event: keep running.
		return
	}
	<-p.resume
}

// block is yield with blocked-time accounting: it is the path taken when
// the process parks with no scheduled resumption (message wait, resource
// queue, gate/signal wait) and some other component wakes it later. The
// elapsed simulated time is attributed to the process and to the engine
// total, which the observability layer exports.
func (p *Process) block() {
	t0 := p.eng.now
	p.yield()
	d := p.eng.now - t0
	p.blocked += d
	p.eng.blocked += d
}

// BlockedSeconds returns the simulated time this process has spent
// blocked (excluding voluntary Sleep).
func (p *Process) BlockedSeconds() float64 { return p.blocked }

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// Engine returns the engine that owns this process.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current simulation time.
func (p *Process) Now() float64 { return p.eng.now }

// Done reports whether the process body has returned.
func (p *Process) Done() bool { return p.done }

// Sleep suspends the process for d seconds of simulated time. It rides
// the engine's typed wake-up path: no closure is allocated per call.
func (p *Process) Sleep(d float64) {
	p.eng.wake(d, p)
	p.yield()
}

// SleepUntil suspends the process until absolute time t (no-op if t has
// passed).
func (p *Process) SleepUntil(t float64) {
	if t <= p.eng.now {
		return
	}
	p.eng.wakeAt(t, p)
	p.yield()
}

// Suspend parks the process with no scheduled resumption; some other
// component must later call Engine.Resume / Engine.ResumeAt, or the engine
// will report a deadlock.
func (p *Process) Suspend() { p.block() }

// Resume schedules p to continue at the current time. Only valid for a
// process parked with Suspend (or registered in a Signal the caller
// manages itself). If p lives on a different engine (a PDES partition
// peer), the activation is inserted into p's own calendar at the caller's
// current time.
func (e *Engine) Resume(p *Process) {
	if p.eng == e {
		e.wake(0, p)
		return
	}
	p.eng.push(event{time: e.now, proc: p, kind: evWake, ped: e.stamp()})
}

// ResumeAt schedules p to continue at absolute time t. Cross-engine
// resumptions (PDES) compute the wake time with the caller's clock — the
// exact arithmetic the sequential engine performs — and insert the event
// directly into p's calendar, so partitioned runs reproduce sequential
// timestamps bit-for-bit.
func (e *Engine) ResumeAt(t float64, p *Process) {
	if p.eng == e {
		e.wakeAt(t, p)
		return
	}
	tt := t
	if t != e.now {
		tt = e.now + e.clampDelay(t-e.now)
	}
	p.eng.push(event{time: tt, proc: p, kind: evWake, ped: e.stamp()})
}

// Signal is a broadcast condition: processes Wait on it and a later Fire
// resumes all current waiters (in Wait order). Fire-then-Wait does not
// wake; use Gate for level-triggered behaviour.
type Signal struct {
	waiters []*Process
}

// Wait suspends p until the next Fire.
func (s *Signal) Wait(p *Process) {
	s.waiters = append(s.waiters, p)
	p.block()
}

// Fire resumes every currently waiting process at the present time, in the
// order they called Wait. Waiters living on a different engine (PDES
// partition peers) get the activation inserted into their own calendar.
func (s *Signal) Fire(e *Engine) {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		if w.eng == e {
			e.wake(0, w)
		} else {
			w.eng.push(event{time: e.now, proc: w, kind: evWake, ped: e.stamp()})
		}
	}
}

// Pending returns the number of processes currently waiting.
func (s *Signal) Pending() int { return len(s.waiters) }

// Gate is a level-triggered latch: Wait returns immediately once Open has
// been called, regardless of ordering.
type Gate struct {
	open bool
	sig  Signal
}

// Open releases the gate, waking current and future waiters.
func (g *Gate) Open(e *Engine) {
	if g.open {
		return
	}
	g.open = true
	g.sig.Fire(e)
}

// Wait blocks p until the gate is open.
func (g *Gate) Wait(p *Process) {
	if g.open {
		return
	}
	g.sig.Wait(p)
}

// IsOpen reports whether Open has been called.
func (g *Gate) IsOpen() bool { return g.open }

// Resource is a FIFO counting semaphore (e.g. CPU cores on a node, kernel
// engines on a GPU).
type Resource struct {
	Capacity int
	inUse    int
	queue    []*Process
	busy     float64 // accumulated unit-seconds of use
	lastT    float64
}

// NewResource returns a resource with the given capacity.
func NewResource(capacity int) *Resource {
	return &Resource{Capacity: capacity}
}

func (r *Resource) account(e *Engine) {
	r.busy += float64(r.inUse) * (e.now - r.lastT)
	r.lastT = e.now
}

// Acquire blocks p until a unit is available and then takes it.
func (r *Resource) Acquire(p *Process) {
	e := p.eng
	if r.inUse < r.Capacity && len(r.queue) == 0 {
		r.account(e)
		r.inUse++
		return
	}
	r.queue = append(r.queue, p)
	p.block()
	// The releaser accounted and incremented on our behalf.
}

// Release returns one unit, waking the longest waiter if any.
func (r *Resource) Release(e *Engine) {
	r.account(e)
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		// The unit passes directly to next; inUse stays the same.
		e.wake(0, next)
		return
	}
	r.inUse--
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// BusyTime returns accumulated unit-seconds of utilization up to t.
func (r *Resource) BusyTime(e *Engine) float64 {
	r.account(e)
	return r.busy
}
