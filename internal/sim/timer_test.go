package sim

import (
	"math"
	"testing"
)

func TestTimerFires(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	tm := e.After(2.5, func() { at = e.Now() })
	e.Run()
	if at != 2.5 {
		t.Fatalf("timer fired at %g, want 2.5", at)
	}
	if !tm.Fired() || tm.Stopped() {
		t.Fatalf("timer state after firing: fired=%v stopped=%v", tm.Fired(), tm.Stopped())
	}
	if tm.Stop() {
		t.Fatal("Stop after firing must report false")
	}
}

func TestTimerStopPreventsCallback(t *testing.T) {
	e := NewEngine()
	ran := false
	tm := e.After(5, func() { ran = true })
	e.Schedule(1, func() {
		if !tm.Stop() {
			t.Error("Stop before firing must report true")
		}
		if tm.Stop() {
			t.Error("second Stop must report false")
		}
	})
	e.Run()
	if ran {
		t.Fatal("cancelled timer callback ran")
	}
	if tm.Fired() {
		t.Fatal("cancelled timer reports fired")
	}
	// The dead calendar entry still pops, so the clock advances to it.
	if e.Now() != 5 {
		t.Fatalf("clock at %g, want 5 (cancelled entry still pops)", e.Now())
	}
}

func TestTimerAfterAt(t *testing.T) {
	e := NewEngine()
	var order []float64
	e.Schedule(1, func() {
		e.AfterAt(3, func() { order = append(order, e.Now()) })
		e.AfterAt(1, func() { order = append(order, e.Now()) }) // t == now fast path
	})
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("AfterAt firings = %v, want [1 3]", order)
	}
}

func TestTimerStopIsDeterministicWithEqualTimes(t *testing.T) {
	// A timer cancelled at the same instant it would fire: the cancel was
	// scheduled first, so it pops first and the callback never runs.
	e := NewEngine()
	ran := false
	e.Schedule(1, func() {})
	var tm *Timer
	e.Schedule(0, func() {
		e.Schedule(1, func() { tm.Stop() })
		tm = e.After(1, func() { ran = true })
	})
	e.Run()
	if ran {
		t.Fatal("timer fired despite an earlier-scheduled same-time Stop")
	}
}

func TestStreamDeterministicAndDecorrelated(t *testing.T) {
	a1 := NewStream(42, "crash/0")
	a2 := NewStream(42, "crash/0")
	b := NewStream(42, "crash/1")
	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatal("same (seed, salt) streams diverged")
		}
	}
	same := 0
	a := NewStream(42, "crash/0")
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("differently salted streams collided %d/100 draws", same)
	}
}

func TestStreamDraws(t *testing.T) {
	s := NewStream(7, "x")
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 || math.IsNaN(f) {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
	s = NewStream(7, "exp")
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		d := s.Exp(3.0)
		if d <= 0 || math.IsInf(d, 0) || math.IsNaN(d) {
			t.Fatalf("Exp draw invalid: %g", d)
		}
		sum += d
	}
	if mean := sum / n; mean < 2.8 || mean > 3.2 {
		t.Fatalf("Exp(3) sample mean %g, want ~3", mean)
	}
}
