package sim

import (
	"container/heap"
	"math"
	"os"
	"testing"
	"time"
)

// seedEvent and seedHeap replicate the engine's calendar as it was in the
// seed: heap-boxed *event nodes ordered through container/heap, with the
// interface boxing that implies on every push and pop. They are the
// baseline both guards compare against.
type seedEvent struct {
	time float64
	seq  uint64
	fn   func()
}

type seedHeap []*seedEvent

func (h seedHeap) Len() int { return len(h) }
func (h seedHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h seedHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *seedHeap) Push(x any)   { *h = append(*h, x.(*seedEvent)) }
func (h *seedHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// seedEngine replicates the seed event loop: no clamp counting, no queue
// high-water tracking, no blocked-time accounting, pointer-per-event
// calendar.
type seedEngine struct {
	now   float64
	queue seedHeap
	seq   uint64
}

func (e *seedEngine) schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	e.seq++
	heap.Push(&e.queue, &seedEvent{time: e.now + delay, seq: e.seq, fn: fn})
}

func (e *seedEngine) run() {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*seedEvent)
		e.now = ev.time
		ev.fn()
	}
}

// seedProcess replicates the seed's process wake-up machinery: every
// Sleep allocated a fresh activation closure and pushed it through the
// boxed calendar. It is the baseline TestTypedWakeupSpeedGuard holds the
// typed wake-up path against.
type seedProcess struct {
	eng    *seedEngine
	park   chan struct{}
	resume chan struct{}
}

func (p *seedProcess) sleep(d float64) {
	p.eng.schedule(d, func() { p.activate() })
	p.park <- struct{}{}
	<-p.resume
}

func (p *seedProcess) activate() {
	p.resume <- struct{}{}
	<-p.park
}

// TestEngineOverheadGuard asserts the always-on diagnostic accounting in
// Schedule/RunUntil keeps the uninstrumented engine within 5% of the
// seed event loop. Timing-based, so it only runs when BENCH_GUARD=1 is
// set (a dedicated CI step); plain `go test ./...` skips it.
func TestEngineOverheadGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("timing guard: set BENCH_GUARD=1 to run")
	}

	const events = 1_000_000
	const attempts = 5

	// Each event schedules its successor: a pure event-chain drive that
	// spends its whole life in Schedule + the run loop.
	current := func() time.Duration {
		e := NewEngine()
		n := 0
		var step func()
		step = func() {
			if n++; n < events {
				e.Schedule(1e-6, step)
			}
		}
		e.Schedule(1e-6, step)
		start := time.Now()
		e.Run()
		return time.Since(start)
	}
	seed := func() time.Duration {
		e := &seedEngine{}
		n := 0
		var step func()
		step = func() {
			if n++; n < events {
				e.schedule(1e-6, step)
			}
		}
		e.schedule(1e-6, step)
		start := time.Now()
		e.run()
		return time.Since(start)
	}

	// Interleave a warm-up of each before timing.
	current()
	seed()
	cur, base := bestOf(attempts, current), bestOf(attempts, seed)

	ratio := float64(cur) / float64(base)
	t.Logf("current %v vs seed %v (ratio %.3f)", cur, base, ratio)
	if ratio > 1.05 {
		t.Fatalf("uninstrumented engine is %.1f%% slower than the seed loop (budget 5%%): %v vs %v",
			100*(ratio-1), cur, base)
	}
}

// TestTypedWakeupSpeedGuard asserts the typed wake-up path (Sleep through
// the value-typed calendar) is no slower than the seed's closure-per-wake
// design driving the same sleep loop. Timing-based, BENCH_GUARD-gated
// like the overhead guard.
func TestTypedWakeupSpeedGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("timing guard: set BENCH_GUARD=1 to run")
	}

	const wakeups = 300_000
	const attempts = 5

	current := func() time.Duration {
		e := NewEngine()
		e.Spawn("sleeper", func(p *Process) {
			for i := 0; i < wakeups; i++ {
				p.Sleep(1e-6)
			}
		})
		start := time.Now()
		e.Run()
		return time.Since(start)
	}
	seed := func() time.Duration {
		e := &seedEngine{}
		p := &seedProcess{eng: e, park: make(chan struct{}), resume: make(chan struct{})}
		go func() {
			<-p.resume
			for i := 0; i < wakeups; i++ {
				p.sleep(1e-6)
			}
			p.park <- struct{}{}
		}()
		e.schedule(0, func() { p.activate() })
		start := time.Now()
		e.run()
		return time.Since(start)
	}

	current()
	seed()
	cur, base := bestOf(attempts, current), bestOf(attempts, seed)

	ratio := float64(cur) / float64(base)
	t.Logf("typed %v vs seed closures %v (ratio %.3f)", cur, base, ratio)
	if ratio > 1.05 {
		t.Fatalf("typed wake-up path is %.1f%% slower than the seed closure path (budget 5%%): %v vs %v",
			100*(ratio-1), cur, base)
	}
}

// TestTypedWakeupAllocFree asserts the typed wake-up path allocates
// nothing in steady state: Sleep and Resume push value events into the
// calendar's existing backing array, with no closure and no boxed node.
// Deterministic (allocation counting, not timing), so it always runs; it
// is also part of the BENCH_GUARD CI step.
func TestTypedWakeupAllocFree(t *testing.T) {
	e := NewEngine()
	waiter := e.Spawn("waiter", func(p *Process) {
		for {
			p.Suspend()
		}
	})
	e.Spawn("driver", func(p *Process) {
		for {
			p.Sleep(1)            // typed relative wake
			p.Engine().ResumeAt(p.Now()+0.5, waiter) // typed absolute wake
		}
	})
	limit := 100.0
	e.RunUntil(limit) // warm up: calendar capacity, goroutine stacks

	allocs := testing.AllocsPerRun(10, func() {
		limit += 100
		e.RunUntil(limit)
	})
	if allocs != 0 {
		t.Fatalf("typed wake-up path allocates %.1f objects per 100 simulated wake-ups, want 0", allocs)
	}
}

// bestOf returns the minimum duration over n runs of f.
func bestOf(n int, f func() time.Duration) time.Duration {
	m := time.Duration(math.MaxInt64)
	for i := 0; i < n; i++ {
		if d := f(); d < m {
			m = d
		}
	}
	return m
}
