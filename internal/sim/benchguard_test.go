package sim

import (
	"container/heap"
	"math"
	"os"
	"testing"
	"time"
)

// seedEngine replicates the engine's event loop as it was before the
// observability layer landed: no clamp counting, no queue high-water
// tracking, no blocked-time accounting. It is the baseline the overhead
// guard compares against.
type seedEngine struct {
	now   float64
	queue eventHeap
	seq   uint64
}

func (e *seedEngine) schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	e.seq++
	heap.Push(&e.queue, &event{time: e.now + delay, seq: e.seq, fn: fn})
}

func (e *seedEngine) run() {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.time
		ev.fn()
	}
}

// TestEngineOverheadGuard asserts the always-on diagnostic accounting in
// Schedule/RunUntil keeps the uninstrumented engine within 5% of the
// seed event loop. Timing-based, so it only runs when BENCH_GUARD=1 is
// set (a dedicated CI step); plain `go test ./...` skips it.
func TestEngineOverheadGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("timing guard: set BENCH_GUARD=1 to run")
	}

	const events = 1_000_000
	const attempts = 5

	// Each event schedules its successor: a pure event-chain drive that
	// spends its whole life in Schedule + the run loop.
	current := func() time.Duration {
		e := NewEngine()
		n := 0
		var step func()
		step = func() {
			if n++; n < events {
				e.Schedule(1e-6, step)
			}
		}
		e.Schedule(1e-6, step)
		start := time.Now()
		e.Run()
		return time.Since(start)
	}
	seed := func() time.Duration {
		e := &seedEngine{}
		n := 0
		var step func()
		step = func() {
			if n++; n < events {
				e.schedule(1e-6, step)
			}
		}
		e.schedule(1e-6, step)
		start := time.Now()
		e.run()
		return time.Since(start)
	}

	best := func(f func() time.Duration) time.Duration {
		m := time.Duration(math.MaxInt64)
		for i := 0; i < attempts; i++ {
			if d := f(); d < m {
				m = d
			}
		}
		return m
	}
	// Interleave a warm-up of each before timing.
	current()
	seed()
	cur, base := best(current), best(seed)

	ratio := float64(cur) / float64(base)
	t.Logf("current %v vs seed %v (ratio %.3f)", cur, base, ratio)
	if ratio > 1.05 {
		t.Fatalf("uninstrumented engine is %.1f%% slower than the seed loop (budget 5%%): %v vs %v",
			100*(ratio-1), cur, base)
	}
}
