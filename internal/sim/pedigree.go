package sim

// Causal pedigrees: the partitioned (PDES) replacement for the sequential
// engine's global sequence numbers.
//
// The sequential engine breaks time ties by seq — global push order. Push
// order is itself determined by execution order: pushes happen while events
// execute, events execute in (time, seq) order, and pushes within one event
// follow program order. So the push order of two events is the lexicographic
// order of their causal pedigrees:
//
//	(pusher's execution time, pusher's own pedigree, intra-pusher push index)
//
// grounded at the pre-run spawns, which are ordered by a global spawn
// counter. A partitioned run can reconstruct this order without ever seeing
// the sequential interleaving: each push records an immutable pedigree node
// pointing at the pedigree of the event that performed it. Comparing two
// pedigrees then walks the ancestor chains in lockstep until either the
// push times differ or a common ancestor (or the spawn roots) is reached —
// which is exactly the recursion that defines sequential seq order.
//
// Pedigrees exist only on partitioned engines (Engine.pd != nil); a
// sequential engine stamps nil and keeps ordering by seq, so the hot path
// pays one nil comparison and nothing else.
type ped struct {
	parent *ped    // pedigree of the event that performed this push; nil for spawn roots
	t      float64 // execution time of the pushing event; -1 for spawn roots
	i      uint32  // push index within the pushing event (spawn roots: global spawn order)
}

// pedBefore reports whether push a happened before push b in the
// sequential execution order. a and b must be distinct pushes (the engine
// never stamps the same node onto two events); identical nodes compare
// not-before in both directions, which sorts treat as equal.
func pedBefore(a, b *ped) bool {
	for {
		if a == b {
			return false
		}
		if a.t != b.t {
			return a.t < b.t
		}
		if a.parent == b.parent {
			// Same pushing event (or both spawn roots): program order.
			return a.i < b.i
		}
		// Same push time, different pushers: order by the pushers' own
		// push order. Chains can only tie in time back to a common
		// ancestor or to the roots (t = -1, parent nil), so the walk
		// terminates before either side dereferences a nil parent.
		a, b = a.parent, b.parent
	}
}

// stamp allocates the pedigree node for a push performed by e's current
// execution context. Sequential engines return nil. A nil curPed means no
// event has run yet — the pre-run spawn context, ordered by the
// coordinator's global spawn counter so partitioned spawns keep the exact
// sequence a single shared calendar would have assigned.
func (e *Engine) stamp() *ped {
	if e.pd == nil {
		return nil
	}
	if e.curPed == nil {
		i := e.pd.rootSeq
		e.pd.rootSeq++
		return &ped{t: -1, i: i}
	}
	i := e.pushIdx
	e.pushIdx++
	return &ped{parent: e.curPed, t: e.now, i: i}
}

// Order is an opaque causal-order token: the position of the caller's
// current event in the global (time, push-order) total order. On a
// sequential engine every token is zero and Before is always false —
// callers there already observe effects in execution order. Partitioned
// runs use tokens to merge per-partition logs (e.g. FLOP credits) into the
// exact order a sequential run would have accumulated them in.
type Order struct{ p *ped }

// CurOrder returns the order token of the event e is currently executing.
func (e *Engine) CurOrder() Order { return Order{p: e.curPed} }

// Before reports whether o's event executed before q's. Zero tokens
// (sequential engines) never order before anything.
func (o Order) Before(q Order) bool {
	if o.p == nil || q.p == nil {
		return false
	}
	return pedBefore(o.p, q.p)
}
