package sim

// Timer is a cancellable scheduled callback. The fault plane uses timers
// for state that must be revertible before it fires: a link flap schedules
// its restoration, and a node crash during the flap cancels that
// restoration (the NIC reset on reboot supersedes the flap recovery).
//
// A Timer rides the ordinary evCall path: cancellation marks the timer
// stopped and the wrapper closure drops the callback when the event pops,
// so the calendar needs no removal operation and the event layout (and
// therefore the engine's hot-path cost) is unchanged.
type Timer struct {
	stopped bool
	fired   bool
}

// After schedules fn to run after delay seconds and returns its timer.
// A negative or NaN delay is clamped like Schedule's.
func (e *Engine) After(delay float64, fn func()) *Timer {
	t := &Timer{}
	e.Schedule(delay, func() {
		if t.stopped {
			return
		}
		t.fired = true
		fn()
	})
	return t
}

// AfterAt is After at an absolute time (clamped to now, like ScheduleAt).
func (e *Engine) AfterAt(at float64, fn func()) *Timer {
	t := &Timer{}
	e.ScheduleAt(at, func() {
		if t.stopped {
			return
		}
		t.fired = true
		fn()
	})
	return t
}

// Stop cancels the timer and reports whether it did: false means the
// callback already ran (or Stop was already called). The calendar entry
// stays in place and is discarded when it pops.
func (t *Timer) Stop() bool {
	if t.stopped || t.fired {
		return false
	}
	t.stopped = true
	return true
}

// Fired reports whether the callback has run.
func (t *Timer) Fired() bool { return t.fired }

// Stopped reports whether the timer was cancelled before firing.
func (t *Timer) Stopped() bool { return t.stopped }
