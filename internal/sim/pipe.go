package sim

import "math"

// Pipe is a FIFO store-and-forward bandwidth server: a NIC direction, a
// PCIe link, a DRAM port. A transfer of B bytes occupies the server for
// B/rate seconds after all previously queued transfers have drained, where
// rate is min(Bandwidth, the requester's own cap). Latency is added once
// per transfer, pipelined (it delays completion but does not occupy the
// server), which matches how wire latency behaves on real links.
type Pipe struct {
	Name      string
	Bandwidth float64 // bytes per second
	Latency   float64 // seconds per transfer

	eng    *Engine
	free   float64 // time the server becomes free
	bytes  float64 // total bytes carried
	busy   float64 // total seconds of server occupancy
	waited float64 // total seconds transfers queued behind earlier ones
	count  uint64  // number of transfers
}

// NewPipe returns a pipe on engine e with the given service bandwidth
// (bytes/second) and per-transfer latency (seconds).
func NewPipe(e *Engine, name string, bandwidth, latency float64) *Pipe {
	return &Pipe{Name: name, Bandwidth: bandwidth, Latency: latency, eng: e}
}

// schedule books bytes onto the server with an additional per-requester
// rate cap and returns the completion time.
func (pp *Pipe) schedule(bytes, rateCap float64) float64 {
	e := pp.eng
	rate := pp.Bandwidth
	if rateCap > 0 && rateCap < rate {
		rate = rateCap
	}
	start := math.Max(e.now, pp.free)
	if start > e.now {
		pp.waited += start - e.now
	}
	dur := 0.0
	if bytes > 0 {
		dur = bytes / rate
	}
	pp.free = start + dur
	pp.bytes += bytes
	pp.busy += dur
	pp.count++
	return pp.free + pp.Latency
}

// Transfer moves bytes through the pipe, blocking p until completion.
func (pp *Pipe) Transfer(p *Process, bytes float64) {
	pp.TransferRated(p, bytes, 0)
}

// TransferRated is Transfer with an additional per-requester bandwidth cap
// (e.g. the CPU port of a shared DRAM achieves less than the DRAM itself).
// A cap of 0 means "no extra cap".
func (pp *Pipe) TransferRated(p *Process, bytes, rateCap float64) {
	done := pp.schedule(bytes, rateCap)
	p.eng.wakeAt(done, p)
	p.yield()
}

// TransferEvent books the transfer and invokes fn at completion without
// blocking the caller. It returns the completion time.
func (pp *Pipe) TransferEvent(bytes, rateCap float64, fn func()) float64 {
	done := pp.schedule(bytes, rateCap)
	if fn != nil {
		pp.eng.ScheduleAt(done, fn)
	}
	return done
}

// EstimateOnly returns the duration bytes would need at the pipe's nominal
// rate, ignoring queueing — useful for analytic cross-checks in tests.
func (pp *Pipe) EstimateOnly(bytes float64) float64 {
	if bytes <= 0 {
		return pp.Latency
	}
	return bytes/pp.Bandwidth + pp.Latency
}

// Bytes returns the total bytes carried so far.
func (pp *Pipe) Bytes() float64 { return pp.bytes }

// BusyTime returns the total seconds the server has been occupied.
func (pp *Pipe) BusyTime() float64 { return pp.busy }

// QueueWait returns the total seconds transfers have spent queued behind
// earlier transfers before starting service — the arbitration stall a
// shared DRAM port inflicts on its contenders.
func (pp *Pipe) QueueWait() float64 { return pp.waited }

// Transfers returns the number of transfers carried.
func (pp *Pipe) Transfers() uint64 { return pp.count }

// Utilization returns busy time divided by elapsed simulation time.
func (pp *Pipe) Utilization() float64 {
	if pp.eng.now == 0 {
		return 0
	}
	return pp.busy / pp.eng.now
}
