// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives goroutine-backed processes one at a time: exactly one
// process (or event callback) runs at any instant, and control is handed
// back to the engine explicitly, so a simulation produces bit-identical
// results across runs. Determinism is required by the trace/replay
// methodology in internal/dimemas and keeps every experiment reproducible.
//
// Time is a float64 number of seconds since the start of the simulation.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"clustersoc/internal/obs"
)

// event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (seq is the tie-breaker), which keeps the engine
// deterministic.
type event struct {
	time float64
	seq  uint64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event { return h[0] }

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now    float64
	queue  eventHeap
	seq    uint64
	park   chan struct{} // handed a token when a process yields back
	events uint64        // total events processed, for diagnostics
	procs  int           // live (spawned, unfinished) processes

	// Diagnostic accounting. These are plain integer/float updates on
	// paths that already branch, so they stay on even when the
	// observability layer is disabled; PublishMetrics exports them.
	clampedNeg uint64  // Schedule calls with a negative delay (clamped to 0)
	clampedNaN uint64  // Schedule calls with a NaN delay (clamped to 0)
	maxQueue   int     // calendar depth high-water mark
	blocked    float64 // total simulated seconds processes spent blocked
}

// NewEngine returns an engine with the clock at zero and an empty calendar.
func NewEngine() *Engine {
	return &Engine{park: make(chan struct{})}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Events returns the number of events processed so far.
func (e *Engine) Events() uint64 { return e.events }

// Schedule enqueues fn to run after delay seconds of simulated time.
// A negative or NaN delay is treated as zero, but never silently: each
// clamp is counted (see ClampedDelays) and reported in the deadlock
// panic, because a model emitting such delays is buggy even when the
// clamped schedule happens to complete.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		if math.IsNaN(delay) {
			e.clampedNaN++
		} else {
			e.clampedNeg++
		}
		delay = 0
	}
	e.seq++
	heap.Push(&e.queue, &event{time: e.now + delay, seq: e.seq, fn: fn})
	if len(e.queue) > e.maxQueue {
		e.maxQueue = len(e.queue)
	}
}

// ScheduleAt enqueues fn at absolute time t (clamped to now).
func (e *Engine) ScheduleAt(t float64, fn func()) {
	e.Schedule(t-e.now, fn)
}

// Run processes events until the calendar is empty. It returns the final
// simulation time. If processes remain blocked with no pending events (a
// deadlock, e.g. a Recv with no matching Send), Run panics with a
// diagnostic: in a correct model that indicates a workload bug.
func (e *Engine) Run() float64 {
	return e.RunUntil(math.Inf(1))
}

// RunUntil processes events with time <= limit and returns the simulation
// time afterwards (min of limit and the last event time).
func (e *Engine) RunUntil(limit float64) float64 {
	for len(e.queue) > 0 && e.queue.peek().time <= limit {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.time
		e.events++
		ev.fn()
	}
	if len(e.queue) == 0 && e.procs > 0 {
		msg := fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events at t=%g", e.procs, e.now)
		if e.clampedNeg+e.clampedNaN > 0 {
			msg += fmt.Sprintf(" (%d negative and %d NaN delays were clamped to 0 — a model emitted invalid delays)",
				e.clampedNeg, e.clampedNaN)
		}
		panic(msg)
	}
	if len(e.queue) > 0 && e.now < limit {
		e.now = limit
	}
	return e.now
}

// Idle reports whether no events are pending.
func (e *Engine) Idle() bool { return len(e.queue) == 0 }

// ClampedDelays returns the number of Schedule calls whose delay was
// clamped to zero, split into negative and NaN inputs. Non-zero counts
// indicate a model bug upstream.
func (e *Engine) ClampedDelays() (negative, nan uint64) { return e.clampedNeg, e.clampedNaN }

// QueueHighWater returns the deepest the event calendar has been.
func (e *Engine) QueueHighWater() int { return e.maxQueue }

// BlockedSeconds returns the total simulated time processes have spent
// blocked (suspended with no scheduled resumption: message waits,
// resource queues, gate/signal waits), summed across processes.
func (e *Engine) BlockedSeconds() float64 { return e.blocked }

// PublishMetrics exports the engine's diagnostic accounting into an
// observability scope. Nil-safe: publishing into a nil scope is a no-op.
func (e *Engine) PublishMetrics(s *obs.Scope) {
	if s == nil {
		return
	}
	s.Counter("events").Add(float64(e.events))
	s.Gauge("queue_high_water").Set(float64(e.maxQueue))
	s.Counter("blocked_s").Add(e.blocked)
	s.Counter("clamped_neg_delays").Add(float64(e.clampedNeg))
	s.Counter("clamped_nan_delays").Add(float64(e.clampedNaN))
}
