// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives goroutine-backed processes one at a time: exactly one
// process (or event callback) runs at any instant. The event loop is not
// pinned to a dedicated goroutine — a baton migrates between the caller of
// Run and the process goroutines, and whoever holds it drives the loop —
// but the execution order is fully serialized, so a simulation produces
// bit-identical results across runs. Determinism is required by the
// trace/replay methodology in internal/dimemas and keeps every experiment
// reproducible.
//
// Time is a float64 number of seconds since the start of the simulation.
package sim

import (
	"fmt"
	"math"
	"sync/atomic"

	"clustersoc/internal/obs"
)

// eventKind discriminates the calendar's two event flavours. The split
// exists so the hot wake-up path (process activations: Sleep, Resume,
// pipe completions, resource grants) carries a *Process directly instead
// of a freshly allocated closure.
type eventKind uint8

const (
	// evCall runs a general callback — the Schedule(delay, fn) API.
	evCall eventKind = iota
	// evWake activates a parked process. No closure is involved: the
	// event's proc field is the whole payload.
	evWake
)

// event is one calendar entry. Events are stored by value inside the
// calendar slice — no per-event heap allocation — and events with equal
// times fire in the order they were scheduled (seq is the tie-breaker),
// which keeps the engine deterministic.
type event struct {
	time float64
	seq  uint64
	ped  *ped     // causal pedigree; non-nil only on partitioned engines
	fn   func()   // evCall payload (nil for evWake)
	proc *Process // evWake payload (nil for evCall)
	kind eventKind
}

// calendar is a value-typed 4-ary min-heap ordered by (time, seq). It
// replaces container/heap to avoid the interface boxing on every push and
// pop and the pointer-per-event layout of the seed engine; the wider fan-
// out also halves the tree depth, which matters because sift-down — the
// pop cost — dominates a simulation's heap traffic. Since seq is unique,
// (time, seq) is a total order: any correct heap pops the exact same
// sequence, so swapping the arity cannot perturb event order.
type calendar []event

// less orders the heap by time, then by schedule order. On a partitioned
// engine "schedule order" means the global causal pedigree (see
// pedigree.go), which reproduces the exact tie order a single shared
// calendar's seq counter would have assigned; sequentially it is the local
// seq counter itself.
func (c calendar) less(i, j int) bool {
	if c[i].time != c[j].time {
		return c[i].time < c[j].time
	}
	if c[i].ped != nil {
		return pedBefore(c[i].ped, c[j].ped)
	}
	return c[i].seq < c[j].seq
}

// siftUp restores the heap property from leaf i toward the root.
func (c calendar) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !c.less(i, parent) {
			break
		}
		c[i], c[parent] = c[parent], c[i]
		i = parent
	}
}

// siftDown restores the heap property from i toward the leaves.
func (c calendar) siftDown(i int) {
	n := len(c)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for k := first + 1; k < last; k++ {
			if c.less(k, min) {
				min = k
			}
		}
		if !c.less(min, i) {
			return
		}
		c[i], c[min] = c[min], c[i]
		i = min
	}
}

// runStatus is the message a process goroutine sends on Engine.ret when it
// pauses the event loop and returns control to the Run/RunUntil caller. A
// non-nil panicVal carries a panic recovered on a process goroutine (a model
// bug in a body or callback it was driving) so it can re-surface on the
// caller's stack, where tests and callers expect it.
type runStatus struct {
	panicVal any
	// PDES protocol messages (see pdes.go). exclEnd closes a cross-partition
	// exclusive section; a non-nil cross parks the driving process until the
	// coordinator grants its cross-partition operation.
	exclEnd bool
	cross   *crossNote
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now    float64
	queue  calendar
	seq    uint64
	ret    chan runStatus // control hand-back to the Run/RunUntil caller
	limit  float64        // current RunUntil horizon, valid while running
	events uint64         // total events processed, for diagnostics
	procs  int            // live (spawned, unfinished) processes

	// Diagnostic accounting. These are plain integer/float updates on
	// paths that already branch, so they stay on even when the
	// observability layer is disabled; PublishMetrics exports them.
	clampedNeg uint64  // Schedule calls with a negative delay (clamped to 0)
	clampedNaN uint64  // Schedule calls with a NaN delay (clamped to 0)
	maxQueue   int     // calendar depth high-water mark
	blocked    float64 // total simulated seconds processes spent blocked
	staleWakes uint64  // wake-ups popped after their process finished

	// PDES partition-child fields (nil/zero on a sequential engine; see
	// pdes.go). strict makes drive pause at events with time == limit so a
	// partition never executes events at the conservative bound itself;
	// atomNow mirrors now (float64 bits) for lock-free coordinator reads.
	pd        *PDES
	pid       int
	strict    bool
	exclArmed bool
	grant     chan struct{}
	atomNow   uint64
	curPed    *ped   // pedigree of the event currently executing (nil pre-run)
	pushIdx   uint32 // pushes performed so far by the current event
	limitPed  *ped   // with strict: events at time == limit run only if their
	// pedigree orders before limitPed (nil = none do)
}

// NewEngine returns an engine with the clock at zero and an empty calendar.
func NewEngine() *Engine {
	return &Engine{ret: make(chan runStatus)}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Stamp returns the current (time, sequence) pair. The sequence counter
// advances with every scheduled event, so two observations at the same
// simulated time are still totally ordered — the deterministic tie-break
// the critical-path recorder uses.
func (e *Engine) Stamp() (float64, uint64) { return e.now, e.seq }

// Events returns the number of events processed so far.
func (e *Engine) Events() uint64 { return e.events }

// clampDelay validates a relative delay: negative or NaN inputs are
// treated as zero, but never silently — each clamp is counted (see
// ClampedDelays) and reported in the deadlock panic, because a model
// emitting such delays is buggy even when the clamped schedule happens to
// complete.
func (e *Engine) clampDelay(delay float64) float64 {
	if delay < 0 || math.IsNaN(delay) {
		if math.IsNaN(delay) {
			e.clampedNaN++
		} else {
			e.clampedNeg++
		}
		return 0
	}
	return delay
}

// push stamps the next sequence number onto ev and inserts it. On a
// partitioned engine it also stamps the causal pedigree of e's current
// execution context — unless the caller pre-stamped one, which is how
// cross-partition pushes carry the *source* engine's context (see
// Resume/ResumeAt and Signal.Fire).
func (e *Engine) push(ev event) {
	if e.pd != nil && ev.ped == nil {
		ev.ped = e.stamp()
	}
	e.seq++
	ev.seq = e.seq
	e.queue = append(e.queue, ev)
	e.queue.siftUp(len(e.queue) - 1)
	if len(e.queue) > e.maxQueue {
		e.maxQueue = len(e.queue)
	}
}

// pop removes and returns the earliest event. The vacated tail slot is
// zeroed so the calendar does not pin dead fn/proc references.
func (e *Engine) pop() event {
	q := e.queue
	ev := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	e.queue = q[:n]
	if n > 1 {
		e.queue.siftDown(0)
	}
	return ev
}

// Schedule enqueues fn to run after delay seconds of simulated time.
// A negative or NaN delay is treated as zero but counted (clampDelay).
func (e *Engine) Schedule(delay float64, fn func()) {
	e.push(event{time: e.now + e.clampDelay(delay), fn: fn, kind: evCall})
}

// ScheduleAt enqueues fn at absolute time t (clamped to now). An exact
// t == now takes a fast path that never forms t - now: the subtraction is
// where a caller-computed "now" can round just below zero and count a
// spurious negative-delay clamp.
func (e *Engine) ScheduleAt(t float64, fn func()) {
	if t == e.now {
		e.push(event{time: e.now, fn: fn, kind: evCall})
		return
	}
	e.Schedule(t-e.now, fn)
}

// wake enqueues p's activation after delay seconds — the typed fast path
// behind Sleep, Resume, pipe completions, and resource grants. It is
// Schedule with the closure replaced by the process pointer itself, so a
// steady-state wake-up allocates nothing.
func (e *Engine) wake(delay float64, p *Process) {
	e.push(event{time: e.now + e.clampDelay(delay), proc: p, kind: evWake})
}

// wakeAt is wake at an absolute time, with the same exact-equality fast
// path as ScheduleAt.
func (e *Engine) wakeAt(t float64, p *Process) {
	if t == e.now {
		e.push(event{time: e.now, proc: p, kind: evWake})
		return
	}
	e.wake(t-e.now, p)
}

// Run processes events until the calendar is empty. It returns the final
// simulation time. If processes remain blocked with no pending events (a
// deadlock, e.g. a Recv with no matching Send), Run panics with a
// diagnostic: in a correct model that indicates a workload bug.
func (e *Engine) Run() float64 {
	return e.RunUntil(math.Inf(1))
}

// RunUntil processes events with time <= limit and returns the simulation
// time afterwards (min of limit and the last event time).
//
// The loop itself runs on whichever goroutine currently holds the baton
// (see drive): the caller drives until the first process activation, then
// control migrates between process goroutines — each yield hands the baton
// directly to the next runner — and comes back here only when the calendar
// pauses. That halves the channel handoffs per wake-up compared to a
// dedicated engine goroutine, without changing the serialized one-runner-
// at-a-time execution model.
func (e *Engine) RunUntil(limit float64) float64 {
	e.limit = limit
	if e.drive(nil) == driveHandedOff {
		// A process goroutine took the baton; wait for the loop to pause.
		st := <-e.ret
		if st.panicVal != nil {
			panic(st.panicVal)
		}
	}
	if len(e.queue) == 0 && e.procs > 0 {
		msg := fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events at t=%g", e.procs, e.now)
		if e.clampedNeg+e.clampedNaN > 0 {
			msg += fmt.Sprintf(" (%d negative and %d NaN delays were clamped to 0 — a model emitted invalid delays)",
				e.clampedNeg, e.clampedNaN)
		}
		panic(msg)
	}
	if len(e.queue) > 0 && e.now < limit {
		e.now = limit
	}
	return e.now
}

// driveResult says how a drive call gave the baton up.
type driveResult uint8

const (
	// drivePaused: calendar empty or next event beyond the horizon. A
	// process driver has already handed control back to the RunUntil
	// caller via e.ret before returning this.
	drivePaused driveResult = iota
	// driveHandedOff: another process was activated and now owns the
	// baton.
	driveHandedOff
	// driveSelf: the popped event was the driving process's own wake-up,
	// so the driver keeps the baton and simply continues running — a
	// Sleep whose wake is the next event costs no channel operation at
	// all.
	driveSelf
)

// drive runs the event loop while the calling goroutine holds the baton.
// self is the process whose goroutine is driving, or nil when the
// Run/RunUntil caller drives. Exactly one goroutine executes drive at any
// instant, so all engine state stays single-threaded; the baton transfers
// (resume and ret channel sends) provide the happens-before edges between
// consecutive holders.
func (e *Engine) drive(self *Process) driveResult {
	if e.exclArmed {
		// First yield after a granted cross-partition operation: close the
		// exclusive section before touching the calendar so the coordinator
		// can proceed while this partition keeps draining.
		e.exclArmed = false
		e.ret <- runStatus{exclEnd: true}
	}
	for {
		if len(e.queue) == 0 || e.queue[0].time > e.limit ||
			(e.strict && e.queue[0].time == e.limit &&
				(e.limitPed == nil || !pedBefore(e.queue[0].ped, e.limitPed))) {
			if self != nil {
				e.ret <- runStatus{}
			}
			return drivePaused
		}
		ev := e.pop()
		e.now = ev.time
		if e.pd != nil {
			atomic.StoreUint64(&e.atomNow, math.Float64bits(ev.time))
			e.curPed = ev.ped
			e.pushIdx = 0
		}
		if ev.kind == evCall {
			e.events++
			ev.fn()
			continue
		}
		if ev.proc.done {
			// A wake-up landed after its process finished (e.g. a timed
			// resumption racing a message match). It performs no work, so
			// it must not count toward Events() — that would inflate the
			// events/s metric — but it is tracked separately.
			e.staleWakes++
			continue
		}
		e.events++
		if ev.proc == self {
			return driveSelf
		}
		ev.proc.resume <- struct{}{}
		return driveHandedOff
	}
}

// Idle reports whether no events are pending.
func (e *Engine) Idle() bool { return len(e.queue) == 0 }

// ClampedDelays returns the number of Schedule calls whose delay was
// clamped to zero, split into negative and NaN inputs. Non-zero counts
// indicate a model bug upstream.
func (e *Engine) ClampedDelays() (negative, nan uint64) { return e.clampedNeg, e.clampedNaN }

// StaleWakes returns the number of wake-up events that were popped after
// their process had already finished. These perform no work and are
// excluded from Events().
func (e *Engine) StaleWakes() uint64 { return e.staleWakes }

// QueueHighWater returns the deepest the event calendar has been.
func (e *Engine) QueueHighWater() int { return e.maxQueue }

// BlockedSeconds returns the total simulated time processes have spent
// blocked (suspended with no scheduled resumption: message waits,
// resource queues, gate/signal waits), summed across processes.
func (e *Engine) BlockedSeconds() float64 { return e.blocked }

// PublishMetrics exports the engine's diagnostic accounting into an
// observability scope. Nil-safe: publishing into a nil scope is a no-op.
func (e *Engine) PublishMetrics(s *obs.Scope) {
	if s == nil {
		return
	}
	s.Counter("events").Add(float64(e.events))
	s.Counter("stale_wakes").Add(float64(e.staleWakes))
	s.Gauge("queue_high_water").Set(float64(e.maxQueue))
	s.Counter("blocked_s").Add(e.blocked)
	s.Counter("clamped_neg_delays").Add(float64(e.clampedNeg))
	s.Counter("clamped_nan_delays").Add(float64(e.clampedNaN))
}
