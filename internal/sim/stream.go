package sim

import "math"

// Stream is a deterministic pseudo-random number stream (splitmix64).
// The fault-injection plane derives one named stream per purpose (per-node
// crash clocks, per-link flap clocks, the message-loss coin) from a single
// plan seed, so every draw is a pure function of (seed, salt, draw index):
// independent of host, of Go version (no math/rand), of scheduling, and of
// whether any other stream was consulted. That is what lets a seeded fault
// plan stay bit-identical across sequential and parallel run-planes.
type Stream struct {
	state uint64
}

// fnv64 hashes a salt string (FNV-1a) so differently named streams derived
// from one seed are decorrelated.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// NewStream returns the stream identified by (seed, salt).
func NewStream(seed uint64, salt string) *Stream {
	s := &Stream{state: seed ^ fnv64(salt)}
	// One warm-up step separates streams whose XORed states are close.
	s.Uint64()
	return s
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed draw with the given mean —
// the inter-arrival law of the fault plane's crash and flap clocks.
// The result is strictly positive (Float64 never returns 1).
func (s *Stream) Exp(mean float64) float64 {
	return -mean * math.Log(1-s.Float64())
}
