package sim

import (
	"math"
	"strings"
	"testing"

	"clustersoc/internal/obs"
)

func TestScheduleClampCounting(t *testing.T) {
	e := NewEngine()
	var ran int
	e.Schedule(-1, func() { ran++ })
	e.Schedule(math.NaN(), func() { ran++ })
	e.Schedule(0.5, func() { ran++ })
	e.Run()
	if ran != 3 {
		t.Fatalf("ran %d events, want 3 (clamped delays still fire)", ran)
	}
	neg, nan := e.ClampedDelays()
	if neg != 1 || nan != 1 {
		t.Fatalf("ClampedDelays = (%d, %d), want (1, 1)", neg, nan)
	}
}

func TestDeadlockPanicReportsClamps(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", func(p *Process) { p.Suspend() })
	e.Schedule(-2, func() {})
	e.Schedule(math.NaN(), func() {})
	e.Schedule(-0.5, func() {})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("deadlocked run did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value is %T, want string", r)
		}
		if !strings.Contains(msg, "deadlock") {
			t.Fatalf("panic does not mention deadlock: %q", msg)
		}
		if !strings.Contains(msg, "2 negative and 1 NaN delays were clamped") {
			t.Fatalf("panic does not report the clamp counts: %q", msg)
		}
	}()
	e.Run()
}

func TestDeadlockPanicWithoutClampsOmitsClampNote(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", func(p *Process) { p.Suspend() })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("deadlocked run did not panic")
		}
		if strings.Contains(r.(string), "clamped") {
			t.Fatalf("clean run's deadlock panic mentions clamps: %q", r)
		}
	}()
	e.Run()
}

func TestQueueHighWater(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(float64(i), func() {})
	}
	if hw := e.QueueHighWater(); hw != 5 {
		t.Fatalf("QueueHighWater = %d before run, want 5", hw)
	}
	e.Run()
	if hw := e.QueueHighWater(); hw != 5 {
		t.Fatalf("QueueHighWater = %d after run, want 5 (high-water, not depth)", hw)
	}
}

func TestBlockedSecondsAccounting(t *testing.T) {
	e := NewEngine()
	var sig Signal
	waiter := e.Spawn("waiter", func(p *Process) { sig.Wait(p) })
	e.Spawn("firer", func(p *Process) {
		p.Sleep(5)
		sig.Fire(e)
	})
	e.Run()
	if got := waiter.BlockedSeconds(); got != 5 {
		t.Fatalf("waiter BlockedSeconds = %g, want 5", got)
	}
	// The firer slept voluntarily; Sleep is not blocked time.
	if got := e.BlockedSeconds(); got != 5 {
		t.Fatalf("engine BlockedSeconds = %g, want 5", got)
	}
}

func TestEnginePublishMetrics(t *testing.T) {
	e := NewEngine()
	e.Schedule(-1, func() {})
	e.Schedule(1, func() {})
	e.Run()

	e.PublishMetrics(nil) // must be a safe no-op

	reg := obs.NewRegistry()
	e.PublishMetrics(reg.Scope("sim"))
	snap := reg.Snapshot()
	if got := snap.Value("sim.events"); got != float64(e.Events()) {
		t.Fatalf("sim.events = %g, want %d", got, e.Events())
	}
	if got := snap.Value("sim.clamped_neg_delays"); got != 1 {
		t.Fatalf("sim.clamped_neg_delays = %g, want 1", got)
	}
	if got := snap.Value("sim.queue_high_water"); got != 2 {
		t.Fatalf("sim.queue_high_water = %g, want 2", got)
	}
}
