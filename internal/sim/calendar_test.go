package sim

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"
)

// oracleHeap is a container/heap reference implementation with the same
// (time, seq) ordering the calendar promises — the independent oracle the
// property test checks the inlined 4-ary heap against.
type oracleHeap []event

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// calPush mirrors Engine.push on a bare calendar for white-box testing.
func calPush(c *calendar, ev event) {
	*c = append(*c, ev)
	c.siftUp(len(*c) - 1)
}

// calPop mirrors Engine.pop on a bare calendar.
func calPop(c *calendar) event {
	q := *c
	ev := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	*c = q[:n]
	if n > 1 {
		c.siftDown(0)
	}
	return ev
}

// TestCalendarMatchesOracleProperty drives a randomized interleave of
// pushes and pops through both the 4-ary value calendar and a
// container/heap oracle and checks every popped (time, seq) pair agrees.
// Times are drawn from a small discrete set so equal-time ties are
// frequent and the seq tie-break is genuinely exercised.
func TestCalendarMatchesOracleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var cal calendar
		var oracle oracleHeap
		var seq uint64
		ops := 2000
		for i := 0; i < ops; i++ {
			if len(cal) != len(oracle) {
				t.Fatalf("trial %d: calendar has %d events, oracle %d", trial, len(cal), len(oracle))
			}
			// Push-biased so the structures grow, with bursts of pops.
			if len(cal) == 0 || rng.Intn(3) != 0 {
				seq++
				ev := event{time: float64(rng.Intn(16)), seq: seq}
				calPush(&cal, ev)
				heap.Push(&oracle, ev)
				continue
			}
			got := calPop(&cal)
			want := heap.Pop(&oracle).(event)
			if got.time != want.time || got.seq != want.seq {
				t.Fatalf("trial %d op %d: calendar popped (t=%g seq=%d), oracle (t=%g seq=%d)",
					trial, i, got.time, got.seq, want.time, want.seq)
			}
		}
		// Drain both and check the tail agrees too.
		for len(cal) > 0 {
			got := calPop(&cal)
			want := heap.Pop(&oracle).(event)
			if got.time != want.time || got.seq != want.seq {
				t.Fatalf("trial %d drain: calendar popped (t=%g seq=%d), oracle (t=%g seq=%d)",
					trial, got.time, got.seq, want.time, want.seq)
			}
		}
	}
}

// TestCalendarDrainIsSorted pushes random events and drains: the pop
// sequence must be non-decreasing in time and strictly increasing in seq
// within each time — the (time, seq) total order the engine's determinism
// rests on.
func TestCalendarDrainIsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var cal calendar
	for seq := uint64(1); seq <= 5000; seq++ {
		calPush(&cal, event{time: float64(rng.Intn(32)), seq: seq})
	}
	prev := event{time: math.Inf(-1)}
	for len(cal) > 0 {
		ev := calPop(&cal)
		if ev.time < prev.time {
			t.Fatalf("time went backwards: %g after %g", ev.time, prev.time)
		}
		if ev.time == prev.time && ev.seq <= prev.seq {
			t.Fatalf("seq order violated at t=%g: %d after %d", ev.time, ev.seq, prev.seq)
		}
		prev = ev
	}
}

// TestEqualTimeFIFOAtDepth schedules >10k events at the same instant and
// checks they fire in exactly the order scheduled. A deep equal-time
// burst is where a heap without the seq tie-break (or with a buggy sift)
// scrambles order; MPI collectives produce exactly this shape.
func TestEqualTimeFIFOAtDepth(t *testing.T) {
	const n = 15000
	e := NewEngine()
	got := make([]int, 0, n)
	for i := 0; i < n; i++ {
		i := i
		e.Schedule(1.0, func() { got = append(got, i) })
	}
	if hw := e.QueueHighWater(); hw != n {
		t.Fatalf("QueueHighWater = %d, want %d", hw, n)
	}
	e.Run()
	if len(got) != n {
		t.Fatalf("fired %d events, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events out of FIFO order at %d: got %d", i, v)
		}
	}
}

// TestScheduleAtNowExactFastPath is the regression test for the
// ScheduleAt exact-equality fast path: scheduling at precisely the
// current time must never count a delay clamp, must fire at exactly now,
// and must keep FIFO order with Schedule(0, ...) calls — across clock
// values where t - now is most exposed to float rounding.
func TestScheduleAtNowExactFastPath(t *testing.T) {
	for _, now := range []float64{0, 1e-300, 3.3333333333333335e-5, 1.0, 1e16, 4.5e15 + 0.125} {
		now := now
		e := NewEngine()
		var order []int
		var fireTime float64
		e.ScheduleAt(now, func() {
			// Clock has advanced to now; interleave both APIs at t == now.
			e.Schedule(0, func() { order = append(order, 1) })
			e.ScheduleAt(e.Now(), func() {
				order = append(order, 2)
				fireTime = e.Now()
			})
			e.Schedule(0, func() { order = append(order, 3) })
		})
		e.Run()
		if neg, nan := e.ClampedDelays(); neg != 0 || nan != 0 {
			t.Fatalf("now=%g: ScheduleAt(now) counted clamps (%d neg, %d NaN), want none", now, neg, nan)
		}
		if fireTime != now {
			t.Fatalf("now=%g: ScheduleAt(now) fired at %g", now, fireTime)
		}
		if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
			t.Fatalf("now=%g: ScheduleAt(now) broke FIFO with Schedule(0): %v", now, order)
		}
	}
}

// TestScheduleAtPastStillClamps pins that the fast path did not widen:
// an absolute time genuinely below now still clamps (and is counted), as
// before.
func TestScheduleAtPastStillClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(5, func() {
		e.ScheduleAt(4.5, func() { fired = true })
	})
	e.Run()
	if !fired {
		t.Fatal("past-time event never fired")
	}
	if e.Now() != 5 {
		t.Fatalf("time went backwards: %v", e.Now())
	}
	if neg, _ := e.ClampedDelays(); neg != 1 {
		t.Fatalf("clamped negatives = %d, want 1", neg)
	}
}

// --- Microbenchmarks on the engine's two scheduling paths ---------------

// BenchmarkScheduleChain measures the general callback path: each event
// schedules its successor, so an iteration is one push + one pop + one
// closure dispatch.
func BenchmarkScheduleChain(b *testing.B) {
	e := NewEngine()
	n := 0
	var step func()
	step = func() {
		if n++; n < b.N {
			e.Schedule(1e-6, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(1e-6, step)
	e.Run()
}

// BenchmarkTypedWakeup measures the typed wake-up path end to end: one
// iteration is a Sleep round trip — push + pop of a value event plus the
// two coroutine handoffs.
func BenchmarkTypedWakeup(b *testing.B) {
	e := NewEngine()
	e.Spawn("sleeper", func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1e-6)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkCalendarDepth measures push+pop cost at a standing calendar
// depth of 4096 — the regime of wide MPI collectives, where the 4-ary
// layout's shallower tree pays off.
func BenchmarkCalendarDepth(b *testing.B) {
	e := NewEngine()
	const depth = 4096
	for i := 0; i < depth; i++ {
		e.Schedule(float64(i)*1e-3, func() {})
	}
	var refill func()
	n := 0
	refill = func() {
		if n++; n < b.N {
			e.Schedule(depth*1e-3, refill)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(0, refill)
	e.Run()
}
