package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(2.0, func() { got = append(got, 2) })
	e.Schedule(1.0, func() { got = append(got, 1) })
	e.Schedule(3.0, func() { got = append(got, 3) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 3.0 {
		t.Fatalf("final time = %v, want 3", e.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1.0, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(5, func() {
		e.Schedule(-3, func() { fired = true })
	})
	e.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if e.Now() != 5 {
		t.Fatalf("time went backwards: %v", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(float64(i), func() { count++ })
	}
	e.RunUntil(5.5)
	if count != 5 {
		t.Fatalf("RunUntil processed %d events, want 5", count)
	}
	if e.Now() != 5.5 {
		t.Fatalf("Now = %v, want 5.5", e.Now())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("Run processed %d events total, want 10", count)
	}
}

func TestProcessSleep(t *testing.T) {
	e := NewEngine()
	var wake []float64
	e.Spawn("sleeper", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Sleep(1.5)
			wake = append(wake, p.Now())
		}
	})
	e.Run()
	want := []float64{1.5, 3.0, 4.5}
	for i, w := range want {
		if !almostEqual(wake[i], w) {
			t.Fatalf("wake times = %v, want %v", wake, want)
		}
	}
}

func TestTwoProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		e.Spawn("a", func(p *Process) {
			for i := 0; i < 3; i++ {
				p.Sleep(1)
				log = append(log, "a")
			}
		})
		e.Spawn("b", func(p *Process) {
			for i := 0; i < 3; i++ {
				p.Sleep(1)
				log = append(log, "b")
			}
		})
		e.Run()
		return log
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestSignalFireWakesAllWaitersInOrder(t *testing.T) {
	e := NewEngine()
	var sig Signal
	var woke []string
	for _, name := range []string{"p0", "p1", "p2"} {
		name := name
		e.Spawn(name, func(p *Process) {
			sig.Wait(p)
			woke = append(woke, name)
		})
	}
	e.Spawn("firer", func(p *Process) {
		p.Sleep(2)
		sig.Fire(e)
	})
	e.Run()
	if len(woke) != 3 {
		t.Fatalf("woke %d, want 3", len(woke))
	}
	for i, w := range []string{"p0", "p1", "p2"} {
		if woke[i] != w {
			t.Fatalf("wake order %v", woke)
		}
	}
}

func TestGateLevelTriggered(t *testing.T) {
	e := NewEngine()
	var g Gate
	passed := 0
	e.Spawn("early", func(p *Process) {
		g.Wait(p) // blocks until open
		passed++
	})
	e.Spawn("opener", func(p *Process) {
		p.Sleep(1)
		g.Open(e)
	})
	e.Spawn("late", func(p *Process) {
		p.Sleep(2)
		g.Wait(p) // already open: returns immediately
		passed++
	})
	e.Run()
	if passed != 2 {
		t.Fatalf("passed = %d, want 2", passed)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn("w", func(p *Process) {
			p.Sleep(float64(i) * 0.001) // stagger arrival
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(1)
			r.Release(e)
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("resource not FIFO: %v", order)
		}
	}
	if got := r.BusyTime(e); !almostEqual(got, 4.0) {
		t.Fatalf("busy time = %v, want 4", got)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEngine()
	r := NewResource(2)
	var finish []float64
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Process) {
			r.Acquire(p)
			p.Sleep(1)
			r.Release(e)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	sort.Float64s(finish)
	want := []float64{1, 1, 2, 2}
	for i := range want {
		if !almostEqual(finish[i], want[i]) {
			t.Fatalf("finish times %v, want %v", finish, want)
		}
	}
}

func TestPipeSingleTransfer(t *testing.T) {
	e := NewEngine()
	pp := NewPipe(e, "link", 100, 0.5) // 100 B/s, 0.5 s latency
	var doneAt float64
	e.Spawn("tx", func(p *Process) {
		pp.Transfer(p, 200)
		doneAt = p.Now()
	})
	e.Run()
	if !almostEqual(doneAt, 2.5) {
		t.Fatalf("transfer done at %v, want 2.5", doneAt)
	}
	if pp.Bytes() != 200 {
		t.Fatalf("bytes = %v", pp.Bytes())
	}
}

func TestPipeFIFOQueueing(t *testing.T) {
	e := NewEngine()
	pp := NewPipe(e, "link", 100, 0) // 100 B/s, no latency
	var done []float64
	for i := 0; i < 3; i++ {
		e.Spawn("tx", func(p *Process) {
			pp.Transfer(p, 100) // 1 s each, serialized
			done = append(done, p.Now())
		})
	}
	e.Run()
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEqual(done[i], want[i]) {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestPipeLatencyIsPipelined(t *testing.T) {
	e := NewEngine()
	pp := NewPipe(e, "link", 100, 10) // huge latency, small service time
	var done []float64
	for i := 0; i < 2; i++ {
		e.Spawn("tx", func(p *Process) {
			pp.Transfer(p, 100)
			done = append(done, p.Now())
		})
	}
	e.Run()
	// Service times serialize (1 s each) but the 10 s latency overlaps:
	// completions at 11 and 12, not 11 and 22.
	if !almostEqual(done[0], 11) || !almostEqual(done[1], 12) {
		t.Fatalf("done = %v, want [11 12]", done)
	}
}

func TestPipeRateCap(t *testing.T) {
	e := NewEngine()
	pp := NewPipe(e, "dram", 1000, 0)
	var doneAt float64
	e.Spawn("cpu", func(p *Process) {
		pp.TransferRated(p, 1000, 250) // capped at 250 B/s -> 4 s
		doneAt = p.Now()
	})
	e.Run()
	if !almostEqual(doneAt, 4) {
		t.Fatalf("done at %v, want 4", doneAt)
	}
}

func TestPipeTransferEventNonBlocking(t *testing.T) {
	e := NewEngine()
	pp := NewPipe(e, "link", 100, 0)
	var cbAt float64
	e.Spawn("tx", func(p *Process) {
		finish := pp.TransferEvent(100, 0, func() { cbAt = e.Now() })
		if !almostEqual(finish, 1) {
			t.Errorf("predicted finish %v, want 1", finish)
		}
		// The caller is free immediately.
		if p.Now() != 0 {
			t.Errorf("caller blocked")
		}
	})
	e.Run()
	if !almostEqual(cbAt, 1) {
		t.Fatalf("callback at %v, want 1", cbAt)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := NewEngine()
	var sig Signal
	e.Spawn("stuck", func(p *Process) { sig.Wait(p) })
	e.Run()
}

// Property: for any batch of same-priority transfers, a FIFO pipe conserves
// bytes and the last completion equals total service time (no latency).
func TestPipeConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		e := NewEngine()
		pp := NewPipe(e, "link", 1000, 0)
		total := 0.0
		var last float64
		for _, s := range sizes {
			b := float64(s) + 1
			total += b
			e.Spawn("tx", func(p *Process) {
				pp.Transfer(p, b)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		e.Run()
		return almostEqual(pp.Bytes(), total) && almostEqual(last, total/1000)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: event timestamps observed by a process are non-decreasing for
// arbitrary sleep sequences.
func TestMonotonicClockProperty(t *testing.T) {
	f := func(delays []uint8) bool {
		e := NewEngine()
		ok := true
		e.Spawn("p", func(p *Process) {
			prev := 0.0
			for _, d := range delays {
				p.Sleep(float64(d) / 255.0)
				if p.Now() < prev {
					ok = false
				}
				prev = p.Now()
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineIntrospection(t *testing.T) {
	e := NewEngine()
	if !e.Idle() {
		t.Fatal("fresh engine should be idle")
	}
	e.Schedule(1, func() {})
	if e.Idle() {
		t.Fatal("scheduled engine is not idle")
	}
	e.Run()
	if e.Events() != 1 {
		t.Fatalf("events = %d", e.Events())
	}
	pp := NewPipe(e, "p", 100, 0.5)
	if got := pp.EstimateOnly(100); got != 1.5 {
		t.Fatalf("estimate %v", got)
	}
	if got := pp.EstimateOnly(0); got != 0.5 {
		t.Fatalf("zero-byte estimate %v", got)
	}
	e.Spawn("t", func(p *Process) { pp.Transfer(p, 200) })
	e.Run()
	if pp.Transfers() != 1 || pp.BusyTime() != 2 {
		t.Fatalf("pipe stats: %d transfers, %v busy", pp.Transfers(), pp.BusyTime())
	}
	if u := pp.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization %v", u)
	}
}
