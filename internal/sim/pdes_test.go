package sim

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
)

// ringScenario builds a PDES with `parts` partitions, one process per
// partition, passing a token around the ring `rounds` times: each hop
// computes (Sleep), performs a cross-partition operation under
// AcquireCross (modelling an MPI send's shared-state mutation), and
// resumes the next partition's process lookahead seconds later. It
// returns the final time and a shared mutation log filled strictly inside
// exclusive sections.
func ringScenario(parts, rounds, workers int, look float64) (float64, []string, uint64) {
	d := NewPDES(parts, look, workers)
	var log []string // mutated only inside exclusive sections / pre-run
	procs := make([]*Process, parts)
	for i := 0; i < parts; i++ {
		i := i
		procs[i] = d.Child(i).Spawn(fmt.Sprintf("ring%d", i), func(p *Process) {
			for r := 0; r < rounds; r++ {
				if !(i == 0 && r == 0) {
					p.Suspend() // wait for the token
				}
				p.Sleep(1e-4) // local compute
				next := (i + 1) % parts
				if i == parts-1 && r == rounds-1 {
					return // token retired
				}
				e := p.Engine()
				e.AcquireCross(next)
				log = append(log, fmt.Sprintf("%d->%d@%.6f", i, next, p.Now()))
				e.ResumeAt(p.Now()+look, procs[next])
			}
		})
	}
	final := d.Run()
	return final, log, d.Events()
}

func TestPDESRingCompletes(t *testing.T) {
	final, log, events := ringScenario(4, 3, 2, 25e-6)
	// 12 hops minus the retired final hop = 11 cross operations.
	if len(log) != 11 {
		t.Fatalf("expected 11 cross operations, got %d: %v", len(log), log)
	}
	// Each hop costs one compute sleep plus one lookahead flight.
	want := 12*1e-4 + 11*25e-6
	if math.Abs(final-want) > 1e-12 {
		t.Fatalf("final time %.9f, want %.9f", final, want)
	}
	if events == 0 {
		t.Fatal("aggregate event count is zero")
	}
}

func TestPDESDeterministicAcrossWorkerCounts(t *testing.T) {
	refFinal, refLog, refEvents := ringScenario(5, 4, 1, 10e-6)
	for _, workers := range []int{2, 3, 5, 8} {
		final, log, events := ringScenario(5, 4, workers, 10e-6)
		if final != refFinal {
			t.Errorf("workers=%d: final time %.17g != %.17g", workers, final, refFinal)
		}
		if events != refEvents {
			t.Errorf("workers=%d: events %d != %d", workers, events, refEvents)
		}
		if strings.Join(log, ";") != strings.Join(refLog, ";") {
			t.Errorf("workers=%d: mutation order diverged:\n%v\nvs\n%v", workers, log, refLog)
		}
	}
}

func TestPDESDeterministicAcrossGOMAXPROCS(t *testing.T) {
	refFinal, refLog, _ := ringScenario(4, 3, 4, 10e-6)
	for _, procs := range []int{1, 2, 8} {
		old := runtime.GOMAXPROCS(procs)
		final, log, _ := ringScenario(4, 3, 4, 10e-6)
		runtime.GOMAXPROCS(old)
		if final != refFinal || strings.Join(log, ";") != strings.Join(refLog, ";") {
			t.Errorf("GOMAXPROCS=%d: run diverged (final %.17g vs %.17g)", procs, final, refFinal)
		}
	}
}

func TestPDESValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero parts":     func() { NewPDES(0, 1e-6, 1) },
		"zero lookahead": func() { NewPDES(2, 0, 1) },
		"nan lookahead":  func() { NewPDES(2, math.NaN(), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	d := NewPDES(3, 1e-6, 99)
	if d.Parts() != 3 || d.Lookahead() != 1e-6 {
		t.Fatalf("accessors: parts=%d look=%g", d.Parts(), d.Lookahead())
	}
}

func TestPDESDeadlockPanicsWithAggregateDiagnostic(t *testing.T) {
	d := NewPDES(2, 1e-6, 2)
	d.Child(0).Spawn("stuck", func(p *Process) { p.Suspend() })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "2 partitions") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	d.Run()
}

func TestPDESPanicPropagatesFromChildProcess(t *testing.T) {
	d := NewPDES(2, 1e-6, 2)
	d.Child(0).Spawn("ok", func(p *Process) { p.Sleep(1e-3) })
	d.Child(1).Spawn("boom", func(p *Process) {
		p.Sleep(1e-5)
		panic("model bug")
	})
	defer func() {
		if r := recover(); r != "model bug" {
			t.Fatalf("expected process panic to re-surface, got %v", r)
		}
	}()
	d.Run()
}

// TestPDESStaleWakeAggregation pins the satellite stale-wake fix on the
// partitioned path too: wakes landing after a child process finished are
// excluded from Events() and aggregated separately.
func TestPDESStaleWakeAggregation(t *testing.T) {
	d := NewPDES(2, 1e-6, 2)
	var target *Process
	target = d.Child(0).Spawn("short", func(p *Process) { p.Suspend() })
	d.Child(1).Spawn("waker", func(p *Process) {
		p.Sleep(1e-5)
		e := p.Engine()
		e.AcquireCross(0)
		e.Resume(target) // wakes it; body returns
		e.Resume(target) // lands after it finished: stale
	})
	d.Run()
	if got := d.StaleWakes(); got != 1 {
		t.Fatalf("StaleWakes() = %d, want 1", got)
	}
}

// TestStaleWakeExcludedFromEvents pins the sequential-engine satellite
// fix: drive must not count wake-ups of finished processes toward
// Events(), and must track them in StaleWakes instead.
func TestStaleWakeExcludedFromEvents(t *testing.T) {
	e := NewEngine()
	var target *Process
	target = e.Spawn("short", func(p *Process) { p.Suspend() })
	e.Spawn("waker", func(p *Process) {
		p.Sleep(1e-5)
		e.Resume(target)
		e.Resume(target)
		e.Resume(target)
	})
	e.Run()
	// Events: 2 spawn wakes + waker's sleep wake + target's (useful)
	// resume + waker finishing its body = deterministic; the two stale
	// resumes must not be in it.
	if got := e.StaleWakes(); got != 2 {
		t.Fatalf("StaleWakes() = %d, want 2", got)
	}
	// The same schedule with only one (useful) resume processes the same
	// number of *useful* events.
	e2 := NewEngine()
	var t2 *Process
	t2 = e2.Spawn("short", func(p *Process) { p.Suspend() })
	e2.Spawn("waker", func(p *Process) {
		p.Sleep(1e-5)
		e2.Resume(t2)
	})
	e2.Run()
	if e2.StaleWakes() != 0 {
		t.Fatalf("control run has %d stale wakes, want 0", e2.StaleWakes())
	}
	if e.Events() != e2.Events() {
		t.Fatalf("stale wakes leaked into Events(): %d (with stales) vs %d (without)",
			e.Events(), e2.Events())
	}
}
