package perf

import (
	"math"
	"testing"
	"testing/quick"
)

func sample() PMU {
	return PMU{
		CPUCycles:      1e9,
		InstRetired:    8e8,
		InstSpec:       9e8,
		BrRetired:      1e8,
		BrMisPred:      5e6,
		L1DCache:       3e8,
		L1DCacheRefill: 1.5e7,
		L2DCache:       1.5e7,
		L2DCacheRefill: 6e6,
		MemAccess:      3e8,
		StallBackend:   2e8,
	}
}

func TestDerivedMetrics(t *testing.T) {
	p := sample()
	if math.Abs(p.IPC()-0.8) > 1e-12 {
		t.Errorf("IPC %v", p.IPC())
	}
	if math.Abs(p.BranchMissRatio()-0.05) > 1e-12 {
		t.Errorf("branch miss %v", p.BranchMissRatio())
	}
	if math.Abs(p.L1DMissRatio()-0.05) > 1e-12 {
		t.Errorf("L1 miss %v", p.L1DMissRatio())
	}
	if math.Abs(p.L2MissRatio()-0.4) > 1e-12 {
		t.Errorf("L2 miss %v", p.L2MissRatio())
	}
	zero := &PMU{}
	if zero.IPC() != 0 || zero.L2MissRatio() != 0 {
		t.Error("zero counters must not divide by zero")
	}
}

func TestAddIsComponentwise(t *testing.T) {
	a, b := sample(), sample()
	a.Add(b)
	if a.CPUCycles != 2e9 || a.BrMisPred != 1e7 || a.StallBackend != 4e8 {
		t.Fatalf("add broken: %+v", a)
	}
	// Ratios are scale-invariant under self-addition.
	orig := sample()
	if math.Abs(a.IPC()-orig.IPC()) > 1e-12 {
		t.Error("IPC changed under doubling")
	}
}

func TestVectorMatchesMetricNames(t *testing.T) {
	p := sample()
	v := p.Vector()
	if len(v) != len(MetricNames) {
		t.Fatalf("vector length %d vs %d names", len(v), len(MetricNames))
	}
	byName := map[string]float64{}
	for i, n := range MetricNames {
		byName[n] = v[i]
	}
	if byName["BR_MIS_PRED"] != p.BrMisPred {
		t.Error("BR_MIS_PRED misplaced")
	}
	if math.Abs(byName["LD_MISS_RATIO"]-p.L2MissRatio()) > 1e-12 {
		t.Error("LD_MISS_RATIO misplaced")
	}
	if math.Abs(byName["IPC"]-p.IPC()) > 1e-12 {
		t.Error("IPC misplaced")
	}
}

func TestGPUMetrics(t *testing.T) {
	g := GPUMetrics{
		Launches: 10, KernelSeconds: 2, FLOPs: 4e9,
		DRAMBytes: 1e9, L2Accesses: 2e9, L2Hits: 1e9,
		StallSeconds: 0.5, ComputeSeconds: 1.5,
	}
	if math.Abs(g.L2Utilization()-0.5) > 1e-12 {
		t.Errorf("L2 util %v", g.L2Utilization())
	}
	if math.Abs(g.L2ReadThroughput()-5e8) > 1e-3 {
		t.Errorf("L2 rate %v", g.L2ReadThroughput())
	}
	if math.Abs(g.MemoryStallFraction()-0.25) > 1e-12 {
		t.Errorf("stalls %v", g.MemoryStallFraction())
	}
	if math.Abs(g.Throughput()-2e9) > 1e-3 {
		t.Errorf("throughput %v", g.Throughput())
	}
	h := g
	h.Add(g)
	if h.Launches != 20 || h.FLOPs != 8e9 {
		t.Fatal("GPU add broken")
	}
	if math.Abs(h.Throughput()-g.Throughput()) > 1e-6 {
		t.Error("throughput not scale-invariant under self-add")
	}
}

// Ratios always land in [0, 1] for physically consistent counters.
func TestRatioBoundsProperty(t *testing.T) {
	f := func(hits uint32, extra uint32) bool {
		p := PMU{
			L2DCache:       float64(hits) + float64(extra) + 1,
			L2DCacheRefill: float64(hits),
			BrRetired:      float64(hits) + float64(extra) + 1,
			BrMisPred:      float64(extra),
		}
		return p.L2MissRatio() >= 0 && p.L2MissRatio() <= 1 &&
			p.BranchMissRatio() >= 0 && p.BranchMissRatio() <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
