// Package perf models the performance-monitoring instrumentation the paper
// uses: the ARMv8 PMUv3 counter subset collected with Linux perf on both
// the Cortex-A57 cluster and the Cavium ThunderX server, and the
// nvprof-style GPU metrics used to diagnose the CUDA memory-management
// models.
//
// Counters are synthesized by the CPU/GPU timing models from the same
// quantities that produce the runtimes, so an analysis over counters (the
// PLS study of Fig. 8) sees a self-consistent machine.
package perf

import "clustersoc/internal/obs"

// PMU holds the twelve ARMv8 PMUv3 events the paper restricts itself to
// (cross-vendor comparable, unlike implementation-specific events).
type PMU struct {
	CPUCycles      float64
	InstRetired    float64
	InstSpec       float64 // speculatively executed instructions
	BrRetired      float64 // branches architecturally executed
	BrMisPred      float64 // mispredicted branches
	L1DCache       float64 // L1 data cache accesses
	L1DCacheRefill float64
	L1ICache       float64
	L1ICacheRefill float64
	L2DCache       float64 // L2 (unified) accesses
	L2DCacheRefill float64
	MemAccess      float64 // data memory accesses
	StallBackend   float64 // cycles stalled on the backend (memory)
}

// Add accumulates another sample into p.
func (p *PMU) Add(q PMU) {
	p.CPUCycles += q.CPUCycles
	p.InstRetired += q.InstRetired
	p.InstSpec += q.InstSpec
	p.BrRetired += q.BrRetired
	p.BrMisPred += q.BrMisPred
	p.L1DCache += q.L1DCache
	p.L1DCacheRefill += q.L1DCacheRefill
	p.L1ICache += q.L1ICache
	p.L1ICacheRefill += q.L1ICacheRefill
	p.L2DCache += q.L2DCache
	p.L2DCacheRefill += q.L2DCacheRefill
	p.MemAccess += q.MemAccess
	p.StallBackend += q.StallBackend
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// IPC returns retired instructions per cycle.
func (p *PMU) IPC() float64 { return ratio(p.InstRetired, p.CPUCycles) }

// BranchMissRatio returns mispredicted branches per executed branch.
func (p *PMU) BranchMissRatio() float64 { return ratio(p.BrMisPred, p.BrRetired) }

// L1DMissRatio returns L1D refills per L1D access.
func (p *PMU) L1DMissRatio() float64 { return ratio(p.L1DCacheRefill, p.L1DCache) }

// L2MissRatio returns L2 refills per L2 access — the "LD_MISS_RATIO" the
// paper's PLS analysis selects.
func (p *PMU) L2MissRatio() float64 { return ratio(p.L2DCacheRefill, p.L2DCache) }

// MetricNames lists the derived event/metric names used as columns of the
// observation matrix for the PLS study, in a fixed order.
var MetricNames = []string{
	"CPU_CYCLES",
	"INST_RETIRED",
	"INST_SPEC",
	"BR_RETIRED",
	"BR_MIS_PRED",
	"L1D_CACHE",
	"L1D_CACHE_REFILL",
	"L2D_CACHE",
	"L2D_CACHE_REFILL",
	"MEM_ACCESS",
	"STALL_BACKEND",
	"LD_MISS_RATIO", // derived: L2 miss ratio
	"BR_MISS_RATIO", // derived
	"IPC",           // derived
}

// Vector returns the counter/metric values in MetricNames order.
func (p *PMU) Vector() []float64 {
	return []float64{
		p.CPUCycles,
		p.InstRetired,
		p.InstSpec,
		p.BrRetired,
		p.BrMisPred,
		p.L1DCache,
		p.L1DCacheRefill,
		p.L2DCache,
		p.L2DCacheRefill,
		p.MemAccess,
		p.StallBackend,
		p.L2MissRatio(),
		p.BranchMissRatio(),
		p.IPC(),
	}
}

// Publish exports the counter values into an observability scope under
// their MetricNames, plus the derived ratios. Nil-safe on a nil scope.
func (p *PMU) Publish(s *obs.Scope) {
	if s == nil {
		return
	}
	vec := p.Vector()
	for i, name := range MetricNames {
		switch name {
		case "LD_MISS_RATIO", "BR_MISS_RATIO", "IPC": // derived ratios, not sums
			s.Gauge(name).Set(vec[i])
		default:
			s.Counter(name).Add(vec[i])
		}
	}
}

// GPUMetrics mirrors the nvprof events the paper collects for Table III.
type GPUMetrics struct {
	Launches       uint64
	KernelSeconds  float64
	FLOPs          float64
	DRAMBytes      float64 // bytes actually moved to/from DRAM by kernels
	L2Accesses     float64 // bytes requested through the L2
	L2Hits         float64 // bytes served by the L2
	CopySeconds    float64 // explicit/implicit host<->device copy time
	CopyBytes      float64
	StallSeconds   float64 // kernel time attributable to memory stalls
	ComputeSeconds float64 // kernel time attributable to the ALUs
}

// Add accumulates another sample.
func (g *GPUMetrics) Add(h GPUMetrics) {
	g.Launches += h.Launches
	g.KernelSeconds += h.KernelSeconds
	g.FLOPs += h.FLOPs
	g.DRAMBytes += h.DRAMBytes
	g.L2Accesses += h.L2Accesses
	g.L2Hits += h.L2Hits
	g.CopySeconds += h.CopySeconds
	g.CopyBytes += h.CopyBytes
	g.StallSeconds += h.StallSeconds
	g.ComputeSeconds += h.ComputeSeconds
}

// L2Utilization returns the fraction of L2 traffic served by the cache.
func (g *GPUMetrics) L2Utilization() float64 { return ratio(g.L2Hits, g.L2Accesses) }

// L2ReadThroughput returns bytes/second served by the L2 during kernels.
func (g *GPUMetrics) L2ReadThroughput() float64 { return ratio(g.L2Hits, g.KernelSeconds) }

// MemoryStallFraction returns the fraction of kernel time stalled on memory.
func (g *GPUMetrics) MemoryStallFraction() float64 { return ratio(g.StallSeconds, g.KernelSeconds) }

// Throughput returns achieved FLOP/s over kernel time.
func (g *GPUMetrics) Throughput() float64 { return ratio(g.FLOPs, g.KernelSeconds) }

// Publish exports the GPU metrics into an observability scope — the
// nvprof view of a run, folded into the simulator-wide registry.
// Nil-safe on a nil scope.
func (g *GPUMetrics) Publish(s *obs.Scope) {
	if s == nil {
		return
	}
	s.Counter("launches").Add(float64(g.Launches))
	s.Counter("kernel_s").Add(g.KernelSeconds)
	s.Counter("flops").Add(g.FLOPs)
	s.Counter("dram_bytes").Add(g.DRAMBytes)
	s.Counter("l2_access_bytes").Add(g.L2Accesses)
	s.Counter("l2_hit_bytes").Add(g.L2Hits)
	s.Counter("copy_s").Add(g.CopySeconds)
	s.Counter("copy_bytes").Add(g.CopyBytes)
	s.Counter("mem_stall_s").Add(g.StallSeconds)
	s.Counter("compute_s").Add(g.ComputeSeconds)
	s.Gauge("mem_stall_frac").Set(g.MemoryStallFraction())
	s.Gauge("l2_hit_frac").Set(g.L2Utilization())
}
