package perf

import (
	"testing"

	"clustersoc/internal/compute"
)

// Host calibration returns one well-formed entry per kernel for every
// backend. No timing assertions: wall times only need to be positive.
func TestMeasureHostKernels(t *testing.T) {
	for _, name := range compute.Names() {
		be, err := compute.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ks := MeasureHostKernels(be, 48, 1)
		if len(ks) != 4 {
			t.Fatalf("%s: got %d kernels", name, len(ks))
		}
		seen := map[string]bool{}
		for _, k := range ks {
			if seen[k.Name] {
				t.Errorf("%s: duplicate kernel %q", name, k.Name)
			}
			seen[k.Name] = true
			if k.Backend != name {
				t.Errorf("%s/%s: backend label %q", name, k.Name, k.Backend)
			}
			if k.Flops <= 0 || k.Bytes <= 0 {
				t.Errorf("%s/%s: non-positive work: %v FLOPs, %v bytes", name, k.Name, k.Flops, k.Bytes)
			}
			if k.Seconds <= 0 {
				t.Errorf("%s/%s: non-positive wall time %v", name, k.Name, k.Seconds)
			}
			if k.FlopRate() <= 0 {
				t.Errorf("%s/%s: non-positive FLOP rate", name, k.Name)
			}
			if k.OI() <= 0 {
				t.Errorf("%s/%s: non-positive OI", name, k.Name)
			}
		}
	}
}

// MeasureHostKernels must clamp trials below 1 and tolerate tiny grids.
func TestMeasureHostKernelsClampsTrials(t *testing.T) {
	ks := MeasureHostKernels(compute.Reference{}, 8, 0)
	if len(ks) != 4 {
		t.Fatalf("got %d kernels", len(ks))
	}
	for _, k := range ks {
		if k.Seconds <= 0 {
			t.Errorf("%s: non-positive wall time with clamped trials", k.Name)
		}
	}
}

// The OI of the calibration GEMM must exceed the streaming kernels' —
// the property the roofline placement relies on.
func TestHostKernelOIOrdering(t *testing.T) {
	ks := MeasureHostKernels(compute.Reference{}, 32, 1)
	oi := map[string]float64{}
	for _, k := range ks {
		oi[k.Name] = k.OI()
	}
	if oi["gemm"] <= oi["triad"] || oi["gemm"] <= oi["dot"] {
		t.Fatalf("gemm OI %v not above streaming kernels (triad %v, dot %v)",
			oi["gemm"], oi["triad"], oi["dot"])
	}
}
