package perf

import (
	"math/rand"
	"time"

	"clustersoc/internal/compute"
)

// HostKernel is one calibration kernel timed on the host machine through
// a compute backend. The simulator's rooflines are analytic; these
// measurements anchor them — the same kernels the timing models count
// FLOPs for, actually executed, so a model/host discrepancy is visible
// as a rate gap rather than hidden inside a constant.
type HostKernel struct {
	Name    string  // gemm, triad, dot, jacobi
	Backend string  // compute backend that produced the timing
	Flops   float64 // floating-point operations per run
	Bytes   float64 // bytes the streaming model charges per run
	Seconds float64 // best-of-trials wall time for one run
}

// FlopRate returns the measured FLOP/s.
func (h HostKernel) FlopRate() float64 {
	if h.Seconds <= 0 {
		return 0
	}
	return h.Flops / h.Seconds
}

// OI returns the kernel's operational intensity in FLOP/B under the same
// streaming-traffic model the simulator uses.
func (h HostKernel) OI() float64 {
	if h.Bytes == 0 {
		return 0
	}
	return h.Flops / h.Bytes
}

// MeasureHostKernels times the four calibration kernels on the host
// under backend b and returns one entry per kernel: an n x n x n GEMM,
// a STREAM triad and a dot product over n*n elements, and one 5-point
// Jacobi sweep of an n x n grid. Each kernel keeps the best of trials
// runs (trials < 1 is treated as 1). Inputs are deterministic, so two
// calls differ only in the measured wall time.
func MeasureHostKernels(b compute.Backend, n, trials int) []HostKernel {
	if trials < 1 {
		trials = 1
	}
	r := rand.New(rand.NewSource(1))
	fill := func(m int) []float64 {
		v := make([]float64, m)
		for i := range v {
			v[i] = r.Float64() + 0.5
		}
		return v
	}
	best := func(run func()) float64 {
		bestS := 0.0
		for t := 0; t < trials; t++ {
			start := time.Now()
			run()
			if s := time.Since(start).Seconds(); t == 0 || s < bestS {
				bestS = s
			}
		}
		return bestS
	}

	m := n * n
	am, bm, cm := fill(m), fill(m), make([]float64, m)
	va, vb, vc := fill(m), fill(m), fill(m)
	halo := (n + 2) * (n + 2) // Jacobi5 grids carry a one-cell halo
	grid, src, f := make([]float64, halo), fill(halo), fill(halo)
	fn, fm := float64(n), float64(m)

	out := []HostKernel{
		{
			Name: "gemm", Backend: b.Name(),
			Flops: 2 * fn * fn * fn,
			Bytes: 3 * 8 * fm, // stream A and B, write C
			Seconds: best(func() {
				for i := range cm {
					cm[i] = 0
				}
				b.MatMul(cm, am, bm, n, n, n)
			}),
		},
		{
			Name: "triad", Backend: b.Name(),
			Flops:   2 * fm,
			Bytes:   3 * 8 * fm, // read b and c, write a
			Seconds: best(func() { b.Triad(va, vb, vc, 3.0) }),
		},
		{
			Name: "dot", Backend: b.Name(),
			Flops:   2 * fm,
			Bytes:   2 * 8 * fm,
			Seconds: best(func() { _ = b.Dot(vb, vc) }),
		},
		{
			Name: "jacobi", Backend: b.Name(),
			Flops:   6 * fm,
			Bytes:   3 * 8 * fm, // read src and f, write dst
			Seconds: best(func() { _ = b.Jacobi5(grid, src, f, n, n, 1.0/fn) }),
		},
	}
	return out
}
